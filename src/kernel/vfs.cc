#include "src/kernel/vfs.h"

#include <algorithm>
#include <cstring>

namespace ufork {

Result<std::shared_ptr<OpenFile>> RamFs::Open(const std::string& path, uint32_t flags) {
  if ((flags & (kOpenRead | kOpenWrite)) == 0) {
    return Error{Code::kErrInval, "open without read or write"};
  }
  auto it = inodes_.find(path);
  if (it == inodes_.end()) {
    if ((flags & kOpenCreate) == 0) {
      return Error{Code::kErrNoEnt, "no such file: " + path};
    }
    it = inodes_.emplace(path, std::make_shared<Inode>()).first;
  }
  if ((flags & kOpenTrunc) != 0 && (flags & kOpenWrite) != 0) {
    {
      std::lock_guard<std::mutex> lk(it->second->mu);
      it->second->data.clear();
    }
    if (on_invalidate_) {
      on_invalidate_(it->second.get());
    }
  }
  return std::static_pointer_cast<OpenFile>(
      std::make_shared<RamFileHandle>(it->second, flags, injector_, on_invalidate_));
}

Result<void> RamFs::Unlink(const std::string& path) {
  auto it = inodes_.find(path);
  if (it == inodes_.end()) {
    return Error{Code::kErrNoEnt, "unlink: no such file"};
  }
  const void* key = it->second.get();
  inodes_.erase(it);
  if (on_invalidate_) {
    on_invalidate_(key);
  }
  return OkResult();
}

Result<void> RamFs::Rename(const std::string& from, const std::string& to) {
  auto it = inodes_.find(from);
  if (it == inodes_.end()) {
    return Error{Code::kErrNoEnt, "rename: no such file"};
  }
  const auto replaced = inodes_.find(to);
  const void* replaced_key =
      (replaced != inodes_.end() && replaced->second != it->second) ? replaced->second.get()
                                                                    : nullptr;
  inodes_[to] = it->second;
  inodes_.erase(from);
  if (replaced_key != nullptr && on_invalidate_) {
    on_invalidate_(replaced_key);  // rename-over: the overwritten inode's pages are stale
  }
  return OkResult();
}

std::shared_ptr<RamFs::Inode> RamFs::InodeOf(const std::string& path) const {
  auto it = inodes_.find(path);
  return it == inodes_.end() ? nullptr : it->second;
}

Result<uint64_t> RamFs::FileSize(const std::string& path) const {
  auto it = inodes_.find(path);
  if (it == inodes_.end()) {
    return Error{Code::kErrNoEnt, "stat: no such file"};
  }
  std::lock_guard<std::mutex> lk(it->second->mu);
  return it->second->data.size();
}

std::vector<std::string> RamFs::List() const {
  std::vector<std::string> names;
  names.reserve(inodes_.size());
  for (const auto& [name, inode] : inodes_) {
    names.push_back(name);
  }
  return names;
}

uint64_t RamFs::TotalBytes() const {
  uint64_t total = 0;
  for (const auto& [name, inode] : inodes_) {
    std::lock_guard<std::mutex> lk(inode->mu);
    total += inode->data.size();
  }
  return total;
}

SimTask<Result<int64_t>> RamFileHandle::Read(std::span<std::byte> out) {
  if ((flags_ & kOpenRead) == 0) {
    co_return Error{Code::kErrBadFd, "read on write-only file"};
  }
  std::lock_guard<std::mutex> lk(inode_->mu);
  const uint64_t size = inode_->data.size();
  if (offset_ >= size) {
    co_return 0;  // EOF
  }
  const uint64_t n = std::min<uint64_t>(out.size(), size - offset_);
  std::memcpy(out.data(), inode_->data.data() + offset_, n);
  offset_ += n;
  co_return static_cast<int64_t>(n);
}

SimTask<Result<int64_t>> RamFileHandle::Write(std::span<const std::byte> in) {
  if ((flags_ & kOpenWrite) == 0) {
    co_return Error{Code::kErrBadFd, "write on read-only file"};
  }
  {
    std::lock_guard<std::mutex> lk(inode_->mu);
    if ((flags_ & kOpenAppend) != 0) {
      offset_ = inode_->data.size();
    }
    if (offset_ + in.size() > inode_->data.size()) {
      if (injector_ != nullptr) {
        // One probe per 4 KiB growth block, all checked before the resize: a failed write
        // leaves both the file contents and its size untouched (ENOSPC, disk full).
        const uint64_t growth = offset_ + in.size() - inode_->data.size();
        for (uint64_t charged = 0; charged < growth; charged += kVfsBlockSize) {
          if (injector_->ShouldFail(FaultSite::kVfsGrow)) {
            co_return Error{Code::kErrNoSpc, "ramdisk block allocation failed (injected)"};
          }
        }
      }
      inode_->data.resize(offset_ + in.size());
    }
    std::memcpy(inode_->data.data() + offset_, in.data(), in.size());
    offset_ += in.size();
  }
  if (invalidate_) {
    invalidate_(inode_.get());  // bytes changed: stale cached pages must not serve fills
  }
  co_return static_cast<int64_t>(in.size());
}

Result<int64_t> RamFileHandle::Seek(int64_t offset, int whence) {
  std::lock_guard<std::mutex> lk(inode_->mu);
  int64_t base = 0;
  switch (whence) {
    case kSeekSet:
      base = 0;
      break;
    case kSeekCur:
      base = static_cast<int64_t>(offset_);
      break;
    case kSeekEnd:
      base = static_cast<int64_t>(inode_->data.size());
      break;
    default:
      return Error{Code::kErrInval, "bad whence"};
  }
  const int64_t target = base + offset;
  if (target < 0) {
    return Error{Code::kErrInval, "seek before start"};
  }
  offset_ = static_cast<uint64_t>(target);
  return target;
}

}  // namespace ufork
