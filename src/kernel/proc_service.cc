#include "src/kernel/proc_service.h"

#include <algorithm>
#include <vector>

#include "src/base/log.h"
#include "src/kernel/kernel.h"
#include "src/kernel/syscall_scope.h"

namespace ufork {

SimTask<Result<void>> ProcService::AdmitNewUproc(Uproc& caller) {
  // Admission happens at the front door, before the syscall enters its kernel section: a
  // parked forker holds no lock, and a rejected one never pays for construction it would
  // only roll back. Existing μprocesses are never throttled — only *new* ones are refused,
  // so the frames that remain let the admitted fleet run to completion (§4.10).
  AdmissionController& admission = kernel_.admission();
  if (!admission.enabled()) {
    co_return OkResult();
  }
  for (;;) {
    switch (admission.Evaluate()) {
      case AdmissionController::Decision::kAdmit:
        co_return OkResult();
      case AdmissionController::Decision::kReject:
        co_return Error{Code::kErrAgain,
                        "admission control: free frames below the low watermark"};
      case AdmissionController::Decision::kPark:
        // Backpressure: wait for the frame pool to clear, then re-contend. Queued per tenant
        // so the aging drain can round-robin across tenants (oldest-first within each).
        co_await admission.ParkUntilDrained(caller.tenant);
        break;
    }
  }
}

SimTask<Result<Pid>> ProcService::Fork(Uproc& caller, UprocEntry child_entry) {
  {
    auto admitted = co_await AdmitNewUproc(caller);
    if (!admitted.ok()) {
      co_return admitted.error();
    }
  }
  SyscallScope scope(kernel_, caller, Sys::kFork);
  {
    auto entered = co_await scope.Enter();
    if (!entered.ok()) {
      co_return entered.error();
    }
  }
  const Cycles start = kernel_.sched().Now();
  auto child = kernel_.backend().Fork(kernel_, caller, std::move(child_entry));
  if (child.ok()) {
    ++kernel_.stats().forks;
    ++caller.forks_performed;
    Uproc* child_proc = kernel_.FindUproc(*child);
    UF_CHECK(child_proc != nullptr);
    child_proc->fork_stats.latency = kernel_.sched().Now() - start;
    // Demand-paging state is backend-agnostic, so it is inherited here rather than in each
    // backend's sweep. SAS backends place the child at a different base; MAS/VM-clone keep
    // the parent's layout (base delta zero).
    const uint64_t delta = child_proc->base - caller.base;
    child_proc->heap_break = caller.heap_break + delta;
    child_proc->file_mappings = caller.file_mappings;
    for (auto& mapping : child_proc->file_mappings) {
      mapping.va += delta;
    }
  }
  co_return child;
}

SimTask<Result<WaitResult>> ProcService::Wait(Uproc& caller) {
  co_await DeliverSignals(caller);
  SyscallScope scope(kernel_, caller, Sys::kWait);
  {
    auto entered = co_await scope.Enter();
    if (!entered.ok()) {
      co_return entered.error();
    }
  }
  for (;;) {
    Uproc* zombie = nullptr;
    bool has_children = false;
    for (Pid child_pid : caller.children) {
      Uproc* child = kernel_.FindUproc(child_pid);
      if (child == nullptr) {
        continue;
      }
      has_children = true;
      if (child->state == Uproc::State::kZombie) {
        zombie = child;
        break;
      }
    }
    if (zombie != nullptr) {
      const WaitResult result{zombie->pid(), zombie->exit_code};
      ReapZombie(*zombie);
      kernel_.machine().Charge(kernel_.costs().sched_wakeup);
      co_return result;
    }
    if (!has_children) {
      co_return Error{Code::kErrChild, "wait() with no children"};
    }
    scope.Leave();
    co_await caller.child_wait.Wait();
    co_await scope.Reacquire();
  }
}

void ProcService::ReapZombie(Uproc& zombie) {
  if (Uproc* parent = kernel_.FindUproc(zombie.parent_pid)) {
    auto& kids = parent->children;
    kids.erase(std::remove(kids.begin(), kids.end(), zombie.pid()), kids.end());
  }
  zombie.state = Uproc::State::kDead;
  kernel_.EraseUproc(zombie.pid());
}

SimTask<void> ProcService::Exit(Uproc& caller, int code) {
  SyscallScope scope(kernel_, caller, Sys::kExit);
  {
    auto entered = co_await scope.Enter();
    UF_CHECK_MSG(entered.ok(), "exit() must always reach the kernel");
  }
  Machine& machine = kernel_.machine();
  Scheduler& sched = kernel_.sched();
  machine.Charge(kernel_.costs().proc_teardown);
  ++kernel_.stats().exits;
  caller.exit_code = code;
  caller.state = Uproc::State::kZombie;
  // exit() terminates the whole μprocess: every sibling thread dies with it (POSIX).
  for (const ThreadId tid : caller.threads) {
    if (sched.IsAlive(tid) && (!sched.InThread() || tid != sched.Current().tid())) {
      sched.Kill(tid);
    }
  }
  caller.threads.clear();
  kernel_.backend().OnExit(kernel_, caller);
  caller.fds->CloseAll();
  kernel_.ReleaseUprocMemory(caller);
  // Reparent running children to init (pid 1); reap zombie children now.
  std::vector<Pid> children = caller.children;
  Uproc* init = kernel_.FindUproc(1);
  for (Pid child_pid : children) {
    Uproc* child = kernel_.FindUproc(child_pid);
    if (child == nullptr) {
      continue;
    }
    if (child->state == Uproc::State::kZombie) {
      ReapZombie(*child);
    } else {
      // Orphans are reparented to init when possible; a fully orphaned child self-reaps at
      // its own exit.
      const bool init_alive = init != nullptr && init->state == Uproc::State::kRunning &&
                              init->pid() != caller.pid();
      child->parent_pid = init_alive ? 1 : kInvalidPid;
      if (init_alive) {
        init->children.push_back(child_pid);
      }
    }
  }
  caller.children.clear();
  // Wake the parent (SIGCHLD delivery) or self-reap when orphaned.
  Uproc* parent = kernel_.FindUproc(caller.parent_pid);
  if (parent != nullptr && parent->state == Uproc::State::kRunning) {
    machine.Charge(kernel_.costs().sched_wakeup);
    parent->signals.Raise(kSigChld);
    parent->child_wait.WakeAll();
  } else {
    ReapZombie(caller);
  }
  scope.Leave();
  co_await sched.ExitThread();
}

SimTask<Result<Pid>> ProcService::GetPid(Uproc& caller) {
  SyscallScope scope(kernel_, caller, Sys::kGetPid);
  {
    auto entered = co_await scope.Enter();
    if (!entered.ok()) {
      co_return entered.error();
    }
  }
  co_return caller.pid();
}

SimTask<Result<Pid>> ProcService::GetPPid(Uproc& caller) {
  SyscallScope scope(kernel_, caller, Sys::kGetPPid);
  {
    auto entered = co_await scope.Enter();
    if (!entered.ok()) {
      co_return entered.error();
    }
  }
  co_return caller.parent_pid;
}

SimTask<Result<void>> ProcService::Kill(Uproc& caller, Pid target, int signal) {
  SyscallScope scope(kernel_, caller, Sys::kKill);
  {
    auto entered = co_await scope.Enter();
    if (!entered.ok()) {
      co_return entered.error();
    }
  }
  if (signal <= 0 || signal > kMaxSignal) {
    co_return Error{Code::kErrInval, "bad signal number"};
  }
  Uproc* victim = kernel_.FindUproc(target);
  if (victim == nullptr || victim->state != Uproc::State::kRunning) {
    co_return Error{Code::kErrSrch, "no such process"};
  }
  if (signal != kSigKill) {
    // Queued; the target observes it at its next delivery point.
    victim->signals.Raise(signal);
    co_return OkResult();
  }
  if (victim == &caller) {
    co_return Error{Code::kErrInval, "SIGKILL to self: call exit()"};
  }
  Scheduler& sched = kernel_.sched();
  if (sched.num_shards() > 1 && sched.InParallelPhase() &&
      sched.ThreadShard(victim->thread) != sched.CurrentShardIndex()) {
    // Cross-shard SIGKILL (DESIGN.md §4.11): the victim's state — threads, descriptors, page
    // mappings — is owned by its home shard, so teardown is deferred to the next epoch
    // barrier, where the coordinator replays queued kills in pid order. POSIX-visible
    // semantics are unchanged: kill(2) returns once the termination is committed, and the
    // victim cannot observe the gap (it never runs again past the barrier).
    kernel_.QueueCrossShardKill(victim->pid());
    co_return OkResult();
  }
  KillUproc(*victim);
  co_return OkResult();
}

void ProcService::KillCrossShard(Pid pid) {
  // Epoch-coordinator context: no executing simulated thread, all shards quiescent. The
  // victim may have exited, execed away, or been killed since the sender queued this —
  // re-resolve and re-check liveness before tearing anything down.
  Uproc* victim = kernel_.FindUproc(pid);
  if (victim == nullptr || victim->state != Uproc::State::kRunning) {
    return;
  }
  KillUproc(*victim);
}

SimTask<Result<void>> ProcService::Sigaction(Uproc& caller, int signal,
                                             SignalHandler handler) {
  SyscallScope scope(kernel_, caller, Sys::kSigaction);
  {
    auto entered = co_await scope.Enter();
    if (!entered.ok()) {
      co_return entered.error();
    }
  }
  if (signal <= 0 || signal > kMaxSignal || signal == kSigKill) {
    co_return Error{Code::kErrInval, "signal disposition cannot be changed"};
  }
  if (handler) {
    caller.signals.SetHandler(signal, std::move(handler));
  } else {
    caller.signals.ResetHandler(signal);
  }
  co_return OkResult();
}

SimTask<Result<void>> ProcService::CheckSignals(Uproc& caller) {
  // A delivery point, not a kernel entry (SyscallClass::kNoEntry): no sealed-entry
  // invocation, no charge, no lock, no syscall count.
  co_await DeliverSignals(caller);
  co_return OkResult();
}

SimTask<void> ProcService::RaiseFault(Uproc& uproc, const Error& fault) {
  // Crash containment (§4.9): a capability or translation fault the resolvers could not claim
  // is the μprocess's bug, never the host's. Deliver SIGSEGV — a handler may run; the default
  // action terminates with status 128 + SIGSEGV, leaving every other μprocess untouched.
  UF_LOG(kInfo) << uproc.name << " pid " << uproc.pid() << ": " << CodeName(fault.code)
                << " (" << fault.message << ") -> SIGSEGV";
  ++uproc.faults_contained;
  uproc.last_fault = fault.code;
  ++kernel_.stats().faults_contained;
  uproc.signals.Raise(kSigSegv);
  co_await DeliverSignals(uproc);
}

SimTask<void> ProcService::DeliverSignals(Uproc& uproc) {
  // Runs as the target μprocess, outside any kernel lock: handlers are guest code.
  while (uproc.state == Uproc::State::kRunning && uproc.signals.AnyPending()) {
    const int signal = uproc.signals.TakePending();
    if (signal == 0) {
      break;
    }
    kernel_.machine().Charge(kernel_.costs().sched_wakeup);  // signal frame setup
    if (const SignalHandler* installed = uproc.signals.HandlerFor(signal)) {
      const SignalHandler handler = *installed;  // the handler may replace itself
      co_await handler(kernel_, uproc, signal);
      continue;
    }
    if (DefaultActionFor(signal) == SignalDefault::kIgnore) {
      continue;
    }
    co_await Exit(uproc, 128 + signal);  // default action: terminate (never returns)
  }
}

void ProcService::KillUproc(Uproc& victim) {
  Scheduler& sched = kernel_.sched();
  kernel_.machine().Charge(kernel_.costs().proc_teardown);
  ++kernel_.stats().exits;
  for (const ThreadId tid : victim.threads) {
    sched.Kill(tid);
  }
  victim.threads.clear();
  sched.Kill(victim.thread);
  victim.exit_code = -9;  // SIGKILL
  victim.state = Uproc::State::kZombie;
  kernel_.backend().OnExit(kernel_, victim);
  victim.fds->CloseAll();
  kernel_.ReleaseUprocMemory(victim);
  Uproc* parent = kernel_.FindUproc(victim.parent_pid);
  if (parent != nullptr && parent->state == Uproc::State::kRunning) {
    parent->signals.Raise(kSigChld);
    parent->child_wait.WakeAll();
  } else {
    ReapZombie(victim);
  }
}

// --- exec / spawn ---------------------------------------------------------------------------

void ProcService::RegisterProgram(std::string name, UprocEntry entry) {
  programs_[std::move(name)] = std::move(entry);
}

Result<void> ProcService::ResetUprocImage(Uproc& uproc) {
  // Tear down every mapping (shared windows included: POSIX drops mappings on exec) and build
  // a fresh zeroed image.
  Machine& machine = kernel_.machine();
  std::vector<uint64_t> pages;
  uproc.page_table->ForEachMapped(uproc.base, uproc.base + uproc.size,
                                  [&pages](uint64_t va, const Pte&) { pages.push_back(va); });
  for (const uint64_t va : pages) {
    machine.Charge(kernel_.costs().pte_update / 4);
    machine.frames().Release(uproc.page_table->Unmap(va));
  }
  UF_RETURN_IF_ERROR(kernel_.MapFreshImage(uproc));
  uproc.mmap_cursor = uproc.base + kernel_.layout().mmap_off();
  kernel_.InstallArchCaps(uproc);
  uproc.signals.ClearPending();
  return OkResult();
}

SimTask<Result<void>> ProcService::Exec(Uproc& caller, std::string program) {
  SyscallScope scope(kernel_, caller, Sys::kExec);
  {
    auto entered = co_await scope.Enter();
    if (!entered.ok()) {
      co_return entered.error();
    }
  }
  auto it = programs_.find(program);
  if (it == programs_.end()) {
    co_return Error{Code::kErrNoEnt, "no such program: " + program};
  }
  kernel_.machine().Charge(kernel_.costs().exec_base);
  auto reset = ResetUprocImage(caller);
  if (!reset.ok()) {
    // Past the point of no return: the old image is already torn down, so exec cannot
    // "return -1" into a program that no longer exists. POSIX kills the process instead.
    scope.Leave();
    co_await Exit(caller, 128 + kSigKill);
    UF_UNREACHABLE();
  }
  caller.forked_child = false;  // the fresh image runs its own runtime initialization
  caller.name = program;
  // POSIX: exec terminates every thread but the calling one.
  Scheduler& sched = kernel_.sched();
  for (const ThreadId tid : caller.threads) {
    if (sched.IsAlive(tid) && tid != sched.Current().tid()) {
      sched.Kill(tid);
    }
  }
  UprocEntry entry = it->second;
  scope.Leave();
  // The μprocess (PID, parent, descriptors, children) continues under a new thread running
  // the new image; the old thread — whose program no longer exists — retires here.
  kernel_.StartUprocThread(caller, std::move(entry));
  co_await sched.ExitThread();
}

SimTask<Result<Pid>> ProcService::Spawn(Uproc& caller, std::string program) {
  {
    auto admitted = co_await AdmitNewUproc(caller);
    if (!admitted.ok()) {
      co_return admitted.error();
    }
  }
  SyscallScope scope(kernel_, caller, Sys::kSpawn);
  {
    auto entered = co_await scope.Enter();
    if (!entered.ok()) {
      co_return entered.error();
    }
  }
  auto it = programs_.find(program);
  if (it == programs_.end()) {
    co_return Error{Code::kErrNoEnt, "no such program: " + program};
  }
  kernel_.machine().Charge(kernel_.costs().exec_base);
  Uproc& child = kernel_.CreateUprocShell(program, caller.pid());
  auto constructed = [&]() -> Result<void> {
    UF_RETURN_IF_ERROR(
        kernel_.AllocateUprocMemory(child, kernel_.backend().private_page_tables()));
    UF_RETURN_IF_ERROR(kernel_.MapFreshImage(child));
    return OkResult();
  }();
  if (!constructed.ok()) {
    kernel_.ReleaseUprocMemory(child);
    kernel_.DestroyUprocShell(child);
    co_return constructed.error();
  }
  kernel_.InstallArchCaps(child);
  child.fds = caller.fds->Clone();  // posix_spawn file-actions default: inherit descriptors
  kernel_.machine().Charge(kernel_.costs().fd_dup *
                           static_cast<uint64_t>(child.fds->OpenCount()));
  UprocEntry entry = it->second;
  kernel_.StartUprocThread(child, std::move(entry), caller.child_affinity);
  co_return child.pid();
}

SimTask<Result<void>> ProcService::Nanosleep(Uproc& caller, Cycles duration) {
  co_await DeliverSignals(caller);
  SyscallScope scope(kernel_, caller, Sys::kNanosleep);
  {
    auto entered = co_await scope.Enter();
    if (!entered.ok()) {
      co_return entered.error();
    }
  }
  scope.Leave();
  co_await kernel_.sched().Sleep(duration);
  co_return OkResult();
}

// --- threads --------------------------------------------------------------------------------

SimTask<Result<ThreadId>> ProcService::ThreadCreate(Uproc& caller, UprocEntry entry) {
  SyscallScope scope(kernel_, caller, Sys::kThreadCreate);
  {
    auto entered = co_await scope.Enter();
    if (!entered.ok()) {
      co_return entered.error();
    }
  }
  Scheduler& sched = kernel_.sched();
  kernel_.machine().Charge(kernel_.costs().sched_wakeup);
  // Secondary threads share everything; when their entry returns, only the thread ends.
  auto wrapper = [](Kernel& kernel, Uproc& proc, UprocEntry fn) -> SimTask<void> {
    co_await fn(kernel, proc);
    if (proc.thread_exit_wait != nullptr) {
      proc.thread_exit_wait->WakeAll();
    }
  };
  int affinity = caller.child_affinity;
  if (sched.num_shards() > 1 && affinity >= 0 &&
      sched.ShardOfCore(affinity) != sched.ThreadShard(caller.thread)) {
    // μprocesses are shard-pinned (DESIGN.md §4.11): every thread of a μprocess must run in
    // its home shard, so an affinity request for a foreign shard's core degrades to "any
    // core in this shard". The decision is deterministic — both the home shard and the core
    // partition are fixed at spawn.
    affinity = -1;
  }
  const ThreadId tid = sched.Spawn(wrapper(kernel_, caller, std::move(entry)),
                                   caller.name + ":thr", affinity);
  sched.SetThreadContext(tid, &caller);
  caller.threads.push_back(tid);
  co_return tid;
}

SimTask<Result<void>> ProcService::ThreadJoin(Uproc& caller, ThreadId tid) {
  SyscallScope scope(kernel_, caller, Sys::kThreadJoin);
  {
    auto entered = co_await scope.Enter();
    if (!entered.ok()) {
      co_return entered.error();
    }
  }
  const bool known =
      std::find(caller.threads.begin(), caller.threads.end(), tid) != caller.threads.end();
  scope.Leave();
  if (!known) {
    co_return Error{Code::kErrSrch, "join of a thread not in this μprocess"};
  }
  Scheduler& sched = kernel_.sched();
  if (sched.InThread() && sched.Current().tid() == tid) {
    co_return Error{Code::kErrInval, "a thread cannot join itself"};
  }
  while (sched.IsAlive(tid)) {
    co_await caller.thread_exit_wait->Wait();
  }
  auto& threads = caller.threads;
  threads.erase(std::remove(threads.begin(), threads.end(), tid), threads.end());
  co_return OkResult();
}

// --- anonymous mmap -------------------------------------------------------------------------

SimTask<Result<Capability>> ProcService::MmapAnon(Uproc& caller, uint64_t length) {
  SyscallScope scope(kernel_, caller, Sys::kMmapAnon);
  {
    auto entered = co_await scope.Enter();
    if (!entered.ok()) {
      co_return entered.error();
    }
  }
  Machine& machine = kernel_.machine();
  const UprocLayout& layout = kernel_.layout();
  // POSIX mmap rejects a zero or non-page-multiple length outright (EINVAL) — exhaustion of
  // the zone is the only ENOMEM condition.
  if (length == 0 || length % kPageSize != 0) {
    co_return Error{Code::kErrInval, "mmap length must be a non-zero page multiple"};
  }
  const uint64_t zone_end = caller.base + layout.mmap_off() + layout.mmap_size();
  if (caller.mmap_cursor + length > zone_end) {
    co_return Error{Code::kErrNoMem, "mmap zone exhausted"};
  }
  const uint64_t addr = caller.mmap_cursor;
  if (kernel_.config().demand_paging) {
    // Reserve-only: frames arrive on first touch via the demand-fill resolver. A reservation
    // cannot fail on physical exhaustion — ENOMEM moves to fault time (SIGSEGV containment
    // if unresolvable there).
    for (uint64_t off = 0; off < length; off += kPageSize) {
      machine.Charge(kernel_.costs().pte_dup);
      caller.page_table->Map(addr + off, kInvalidFrame, kPteNotPresent | kPteZeroFill);
    }
  } else {
    for (uint64_t off = 0; off < length; off += kPageSize) {
      auto frame = machine.frames().Allocate();
      if (!frame.ok()) {
        // All-or-nothing: unmap and release the pages this call already mapped, or the next
        // mmap over the same cursor would double-map them.
        for (uint64_t undo = 0; undo < off; undo += kPageSize) {
          machine.frames().Release(caller.page_table->Unmap(addr + undo));
        }
        co_return frame.error();
      }
      machine.Charge(kernel_.costs().frame_alloc + kernel_.costs().pte_update);
      caller.page_table->Map(addr + off, *frame, kPteRw);
    }
  }
  caller.mmap_cursor += length;
  // The returned capability is derived from the μprocess's own authority — it cannot exceed
  // the region (security invariant, §4.2).
  co_return caller.regs.ddc.WithBounds(addr, length);
}

// --- sbrk -----------------------------------------------------------------------------------

SimTask<Result<uint64_t>> ProcService::Sbrk(Uproc& caller, int64_t delta) {
  SyscallScope scope(kernel_, caller, Sys::kSbrk);
  {
    auto entered = co_await scope.Enter();
    if (!entered.ok()) {
      co_return entered.error();
    }
  }
  Machine& machine = kernel_.machine();
  const UprocLayout& layout = kernel_.layout();
  const uint64_t heap_lo = caller.base + layout.heap_off();
  const uint64_t heap_top = heap_lo + layout.heap_size();
  const uint64_t old_break = caller.heap_break;
  if (delta == 0) {
    co_return old_break;
  }
  if (delta < 0) {
    const uint64_t shrink = static_cast<uint64_t>(-delta);
    // The floor preserves the first heap page: it holds the guest allocator's root record
    // (tinyalloc.h) and every μprocess relies on it existing.
    if (shrink > old_break || old_break - shrink < heap_lo + kPageSize) {
      co_return Error{Code::kErrInval, "sbrk shrink below the heap floor"};
    }
    const uint64_t new_break = old_break - shrink;
    // Whole pages above the new break are returned: frames released, reservations dropped.
    for (uint64_t va = AlignUp(new_break, kPageSize); va < AlignUp(old_break, kPageSize);
         va += kPageSize) {
      machine.Charge(kernel_.costs().pte_update);
      const FrameId frame = caller.page_table->Unmap(va);
      if (frame != kInvalidFrame) {
        machine.frames().Release(frame);
      }
    }
    caller.heap_break = new_break;
    co_return old_break;
  }
  const uint64_t new_break = old_break + static_cast<uint64_t>(delta);
  if (new_break < old_break || new_break > heap_top) {
    // The heap is statically sized at build time (§4.2): the break can never move past it.
    co_return Error{Code::kErrNoMem, "sbrk beyond the static heap"};
  }
  const uint64_t map_lo = AlignUp(old_break, kPageSize);
  const uint64_t map_hi = AlignUp(new_break, kPageSize);
  if (kernel_.config().demand_paging) {
    // Lazy zero-fill growth: reservations only; frames arrive on first touch.
    for (uint64_t va = map_lo; va < map_hi; va += kPageSize) {
      machine.Charge(kernel_.costs().pte_dup);
      caller.page_table->Map(va, kInvalidFrame, kPteNotPresent | kPteZeroFill);
    }
  } else {
    for (uint64_t va = map_lo; va < map_hi; va += kPageSize) {
      auto frame = machine.frames().Allocate();
      if (!frame.ok()) {
        // All-or-nothing: a failed growth leaves the break (and every page) where it was.
        for (uint64_t undo = map_lo; undo < va; undo += kPageSize) {
          machine.frames().Release(caller.page_table->Unmap(undo));
        }
        co_return frame.error();
      }
      machine.Charge(kernel_.costs().frame_alloc + kernel_.costs().pte_update);
      caller.page_table->Map(va, *frame, kPteRw);
    }
  }
  caller.heap_break = new_break;
  co_return old_break;
}

}  // namespace ufork
