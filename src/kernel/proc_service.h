// ProcService: process-lifecycle syscalls and state.
//
// Owns everything in the kProc lock domain — fork/wait/exit, pids, signals, exec/spawn and the
// registered program images, plus threads and the anonymous-mmap grower (it mutates the
// caller's region, a per-process resource). Fork itself is delegated to the kernel's
// ForkBackend; this service wraps it in the syscall protocol and the fork accounting.
#ifndef UFORK_SRC_KERNEL_PROC_SERVICE_H_
#define UFORK_SRC_KERNEL_PROC_SERVICE_H_

#include <map>
#include <string>
#include <utility>

#include "src/base/status.h"
#include "src/cheri/capability.h"
#include "src/kernel/fork_backend.h"
#include "src/kernel/kernel_core.h"
#include "src/kernel/signal.h"
#include "src/kernel/uproc.h"
#include "src/sched/task.h"

namespace ufork {

class Kernel;

class ProcService {
 public:
  explicit ProcService(Kernel& kernel) : kernel_(kernel) {}

  ProcService(const ProcService&) = delete;
  ProcService& operator=(const ProcService&) = delete;

  SimTask<Result<Pid>> Fork(Uproc& caller, UprocEntry child_entry);
  SimTask<Result<WaitResult>> Wait(Uproc& caller);
  // Never returns: tears the μprocess down and exits the thread.
  SimTask<void> Exit(Uproc& caller, int code);

  SimTask<Result<Pid>> GetPid(Uproc& caller);
  SimTask<Result<Pid>> GetPPid(Uproc& caller);

  SimTask<Result<void>> Kill(Uproc& caller, Pid target, int signal);
  SimTask<Result<void>> Sigaction(Uproc& caller, int signal, SignalHandler handler);
  SimTask<Result<void>> CheckSignals(Uproc& caller);

  void RegisterProgram(std::string name, UprocEntry entry);
  SimTask<Result<void>> Exec(Uproc& caller, std::string program);
  SimTask<Result<Pid>> Spawn(Uproc& caller, std::string program);
  SimTask<Result<void>> Nanosleep(Uproc& caller, Cycles duration);

  SimTask<Result<ThreadId>> ThreadCreate(Uproc& caller, UprocEntry entry);
  SimTask<Result<void>> ThreadJoin(Uproc& caller, ThreadId tid);

  SimTask<Result<Capability>> MmapAnon(Uproc& caller, uint64_t length);

  // sbrk(2) against the build-time static heap (§4.2): grow maps pages up to the heap top
  // (lazily under demand paging), shrink returns whole pages; returns the previous break.
  SimTask<Result<uint64_t>> Sbrk(Uproc& caller, int64_t delta);

  // Runs pending handlers / default actions for `uproc`. If a fatal default fires, tears the
  // μprocess down and never returns (exits the thread). Called by every delivery point,
  // including FileService::Read and Nanosleep.
  SimTask<void> DeliverSignals(Uproc& uproc);

  // Crash containment: converts an unresolvable guest-triggered fault (capability or
  // translation) into SIGSEGV delivery to `uproc`. With no handler installed the default
  // action terminates the μprocess with status 128 + SIGSEGV; the kernel and every other
  // μprocess keep running. Does not return if the default action fires on the calling thread.
  SimTask<void> RaiseFault(Uproc& uproc, const Error& fault);

  // Barrier-deferred SIGKILL delivery (sharded-host mode, DESIGN.md §4.11): runs on the epoch
  // coordinator for each pid queued via KernelCore::QueueCrossShardKill. Re-resolves the
  // victim — it may have exited between queueing and the barrier — and tears it down.
  void KillCrossShard(Pid pid);

 private:
  // Overload admission (DESIGN.md §4.10): consulted before fork/spawn construct anything.
  // Parks the caller on the backpressure queue while the controller says kPark; returns
  // EAGAIN on rejection. A no-op (zero virtual cycles) when the subsystem is disabled.
  SimTask<Result<void>> AdmitNewUproc(Uproc& caller);

  void ReapZombie(Uproc& zombie);
  void KillUproc(Uproc& victim);
  Result<void> ResetUprocImage(Uproc& uproc);

  Kernel& kernel_;
  std::map<std::string, UprocEntry> programs_;
};

}  // namespace ufork

#endif  // UFORK_SRC_KERNEL_PROC_SERVICE_H_
