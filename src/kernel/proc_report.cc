#include "src/kernel/proc_report.h"

#include <iomanip>
#include <sstream>

#include "src/kernel/page_cache.h"

namespace ufork {
namespace {

const char* StateName(Uproc::State state) {
  switch (state) {
    case Uproc::State::kRunning:
      return "RUN";
    case Uproc::State::kZombie:
      return "ZOMB";
    case Uproc::State::kDead:
      return "DEAD";
  }
  return "?";
}

struct PageStateCounts {
  uint64_t total = 0;
  uint64_t private_pages = 0;
  uint64_t cow_shared = 0;
  uint64_t copa_armed = 0;  // load-cap-fault attribute still set
  uint64_t map_shared = 0;
  uint64_t reserved = 0;  // demand reservations: mapped but frame-less
};

PageStateCounts CountPages(Kernel& kernel, const Uproc& uproc, uint64_t lo, uint64_t hi) {
  PageStateCounts counts;
  if (uproc.page_table == nullptr) {
    return counts;
  }
  const FrameAllocator& frames = kernel.machine().frames();
  uproc.page_table->ForEachMapped(lo, hi, [&](uint64_t, const Pte& pte) {
    ++counts.total;
    if (!PtePopulated(pte)) {
      ++counts.reserved;
    } else if ((pte.flags & kPteShared) != 0) {
      ++counts.map_shared;
    } else if ((pte.flags & kPteCow) != 0 || frames.RefCount(pte.frame) > 1) {
      ++counts.cow_shared;
    } else {
      ++counts.private_pages;
    }
    if ((pte.flags & kPteLoadCapFault) != 0) {
      ++counts.copa_armed;
    }
  });
  return counts;
}

}  // namespace

std::string ProcessTableReport(Kernel& kernel) {
  std::ostringstream os;
  os << "  PID PPID STATE  REGION                    USS(MB)  PSS(MB)  FORKS  FORK-LAT(us)  "
        "NAME\n";
  for (const Pid pid : kernel.AllPids()) {
    Uproc* uproc = kernel.FindUproc(pid);
    UF_CHECK(uproc != nullptr);
    os << std::setw(5) << pid << std::setw(5) << uproc->parent_pid << " " << std::setw(5)
       << StateName(uproc->state) << "  ";
    std::ostringstream region;
    region << "[0x" << std::hex << uproc->base << ",0x" << uproc->base + uproc->size << ")";
    os << std::setw(24) << std::left << region.str() << std::right << "  " << std::setw(7)
       << std::fixed << std::setprecision(2) << kernel.UprocUssMb(*uproc) << "  "
       << std::setw(7)
       << static_cast<double>(kernel.UprocPssBytes(*uproc)) / static_cast<double>(kMiB)
       << "  " << std::setw(5) << uproc->forks_performed << "  " << std::setw(12)
       << std::setprecision(1) << ToMicroseconds(uproc->fork_stats.latency) << "  "
       << uproc->name << "\n";
  }
  return os.str();
}

std::string MemoryMapReport(Kernel& kernel, Pid pid) {
  Uproc* uproc = kernel.FindUproc(pid);
  if (uproc == nullptr || uproc->page_table == nullptr) {
    return "(no such process)\n";
  }
  const UprocLayout& layout = kernel.layout();
  struct Segment {
    const char* name;
    uint64_t off;
    uint64_t size;
    const char* perms;
  };
  const Segment segments[] = {
      {"text", layout.text_off(), layout.text_size(), "r-x"},
      {"rodata", layout.rodata_off(), layout.rodata_size(), "r--"},
      {"got", layout.got_off(), layout.got_size(), "rw-"},
      {"data", layout.data_off(), layout.data_size(), "rw-"},
      {"heap", layout.heap_off(), layout.heap_size(), "rw-"},
      {"stack", layout.stack_off(), layout.stack_size(), "rw-"},
      {"tls", layout.tls_off(), layout.tls_size(), "rw-"},
      {"mmap", layout.mmap_off(), layout.mmap_size(), "rw-"},
  };
  std::ostringstream os;
  os << "memory map of pid " << pid << " (" << uproc->name << "), region base 0x" << std::hex
     << uproc->base << std::dec << ":\n";
  os << "  SEGMENT  PERM      PAGES   PRIVATE  COW-SHARED  COPA-ARMED  MAP-SHARED  RESERVED\n";
  for (const Segment& segment : segments) {
    const PageStateCounts counts = CountPages(
        kernel, *uproc, uproc->base + segment.off, uproc->base + segment.off + segment.size);
    os << "  " << std::setw(7) << std::left << segment.name << std::right << "  "
       << segment.perms << "  " << std::setw(9) << counts.total << "  " << std::setw(8)
       << counts.private_pages << "  " << std::setw(10) << counts.cow_shared << "  "
       << std::setw(10) << counts.copa_armed << "  " << std::setw(10) << counts.map_shared
       << "  " << std::setw(8) << counts.reserved << "\n";
  }
  return os.str();
}

std::string KernelSummaryReport(Kernel& kernel) {
  const KernelStats& stats = kernel.stats();
  const Machine& machine = kernel.machine();
  std::ostringstream os;
  os << "kernel summary (" << kernel.backend().name() << ", "
     << ForkStrategyName(kernel.config().strategy) << ", isolation="
     << IsolationLevelName(kernel.config().isolation)
     << ", locks=" << LockModeName(kernel.lock_mode()) << "):\n"
     << "  forks=" << stats.forks << " exits=" << stats.exits
     << " syscalls=" << stats.syscalls << "\n"
     << "  fault copies=" << stats.pages_copied_on_fault
     << " (CoW faults=" << machine.cow_faults()
     << ", CoPA faults=" << machine.cap_load_faults() << ")\n"
     << "  faults taken=" << stats.faults_taken
     << " fault-around pages=" << stats.pages_resolved_by_faultaround
     << " reclaimed in place=" << stats.pages_reclaimed_in_place
     << " speculative wasted=" << stats.speculative_pages_wasted << "\n"
     << "  fault cycles=" << stats.fault_cycles << " ("
     << std::fixed << std::setprecision(1) << ToMicroseconds(stats.fault_cycles) << " us)\n"
     << "  contained crashes=" << stats.faults_contained
     << " (capability/translation faults delivered as SIGSEGV)\n"
     << "  caps relocated on fault=" << stats.caps_relocated_on_fault
     << " stripped=" << stats.caps_stripped
     << " tocttou copies=" << stats.tocttou_copies << "\n"
     << "  regions tombstoned=" << stats.regions_tombstoned
     << " frames in use=" << machine.frames().frames_in_use() << " (peak "
     << machine.frames().peak_frames() << ")\n"
     << "  memory: resident frames=" << kernel.ResidentFrames()
     << " reserved bytes=" << kernel.ReservedBytes()
     << " demand faults=" << machine.demand_faults()
     << " pages demand-filled=" << stats.pages_demand_filled << "\n"
     << "  page cache: resident=" << kernel.page_cache().resident_pages()
     << " hits=" << kernel.page_cache().hits() << " fills=" << kernel.page_cache().fills()
     << " evictions=" << kernel.page_cache().evictions() << "\n"
     << "  address space: " << kernel.address_space().Stats().region_count << " regions, "
     << std::fixed << std::setprecision(3)
     << kernel.address_space().Stats().ExternalFragmentation() << " external fragmentation\n";
  if (kernel.config().compact_budget_pages > 0 || stats.quarantined_bytes.value() > 0 ||
      stats.caps_revoked.value() > 0) {
    os << "  compaction: steps=" << stats.compact_steps
       << " regions moved=" << stats.compact_regions_moved
       << " parked at barrier=" << stats.compact_parked
       << " pause max=" << stats.pause_cycles_max << " cycles\n"
       << "  revocation: quarantined bytes=" << stats.quarantined_bytes
       << " (now " << kernel.address_space().Stats().quarantined_bytes
       << ") caps revoked=" << stats.caps_revoked << "\n";
  }
  const AdmissionController& admission = kernel.admission();
  if (admission.enabled()) {
    const OverloadConfig& overload = admission.config();
    os << "  admission: watermarks low=" << overload.low_watermark
       << " critical=" << overload.critical_watermark << " clear=" << overload.clear_watermark
       << " free=" << machine.frames().free_frames()
       << (admission.rejecting() ? " [REJECTING]" : " [ADMITTING]") << "\n"
       << "  admission trips=" << stats.admission_trips
       << " rejected=" << stats.admission_rejected << " parked=" << stats.admission_parked
       << " resumed=" << stats.admission_resumed << " (now parked " << admission.parked()
       << ")\n";
  }
  if (machine.frames().tenant_caps_active()) {
    os << "  tenants:";
    machine.frames().ForEachTenant([&](TenantId tenant, uint64_t frames) {
      os << " " << tenant << "=" << frames;
    });
    os << " cap rejections=" << machine.frames().tenant_cap_rejections() << "\n";
  }
  return os.str();
}

std::string SyscallTableReport(Kernel& kernel) {
  const KernelStats& stats = kernel.stats();
  std::ostringstream os;
  os << "syscall table (" << kNumSyscalls << " entries, locks="
     << LockModeName(kernel.lock_mode()) << "):\n";
  os << "  SYSCALL        CLASS     DOMAIN       COUNT\n";
  uint64_t counted = 0;
  for (const SyscallDesc& desc : SyscallTable()) {
    const uint64_t count = stats.Count(desc.id);
    os << "  " << std::setw(13) << std::left << desc.name << "  " << std::setw(8)
       << SyscallClassName(desc.klass) << "  " << std::setw(9) << LockDomainName(desc.domain)
       << std::right << "  " << std::setw(9) << count << "\n";
    if (desc.klass != SyscallClass::kNoEntry) {
      counted += count;
    }
  }
  os << "  total counted=" << counted << " (kernel syscalls=" << stats.syscalls << ")\n";
  return os.str();
}

}  // namespace ufork
