// AdmissionController: frame-pool watermarks, admission control and backpressure
// (DESIGN.md §4.10).
//
// Overload today (PR 5) is *contained* — a failed grant rolls back and surfaces as ENOMEM —
// but nothing anticipates it: under an open-loop arrival stream the kernel admits forks until
// the frame pool runs dry, and then every in-flight μprocess starts losing its CoW breaks.
// The admission controller keys off the FrameAllocator free-frame count and refuses *new*
// μprocess creation (ufork/spawn/vmclone) early, preserving the remaining frames for the
// μprocesses already running:
//
//             free >= clear          low > free >= critical         critical > free
//   ADMITTING ────────────► ◄──────── REJECTING (park) ──────────► REJECTING (EAGAIN)
//
// The state machine is hysteretic: admission flips to REJECTING when the free count drops
// below the low watermark and recovers only once it climbs back above the clear watermark
// (clear >= low), so a fork/exit churn right at the threshold cannot make admission flap.
// While REJECTING, would-be forkers either park on a bounded backpressure queue (max_parked)
// that is drained as frames free, or — below the critical watermark, or when the queue is
// full, or with parking disabled — fail immediately with EAGAIN.
//
// Drain policy (aging, replaces the original single-FIFO drain): parked forkers queue
// per-tenant, FIFO within a tenant, and a recovery drains them oldest-parked-first *within*
// each tenant while round-robining *across* tenants — a tenant that parks a thundering herd
// can no longer starve a single parked forker from another tenant, because each RR pass
// releases at most one waiter per tenant. The round-robin cursor persists across drains, so
// fairness is long-run, not just per-recovery. KernelStats::parked_wait_cycles_max records
// the worst park-to-resume latency in virtual cycles (aging observability).
//
// Everything is virtual-time deterministic at one host shard, and the whole subsystem is
// golden-pinned OFF by default: with OverloadConfig::enabled == false, Evaluate() is never
// consulted and no release hook is installed, leaving every virtual cycle bit-identical to
// the historical kernel. All controller state is guarded by an internal host mutex: in
// sharded-host mode (DESIGN.md §4.11) Evaluate/OnFramesFreed race from shard workers.
#ifndef UFORK_SRC_KERNEL_ADMISSION_H_
#define UFORK_SRC_KERNEL_ADMISSION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "src/base/status.h"
#include "src/base/units.h"
#include "src/mem/frame_allocator.h"
#include "src/sched/scheduler.h"
#include "src/sched/task.h"

namespace ufork {

struct KernelStats;

// Watermarks are absolute free-frame counts (the natural unit of FrameAllocator::free_frames).
// Invariant when enabled: critical <= low <= clear.
struct OverloadConfig {
  bool enabled = false;           // master switch; golden-pinned off
  uint64_t low_watermark = 0;     // free < low: stop admitting new μprocesses
  uint64_t critical_watermark = 0;  // free < critical: reject immediately, never park
  uint64_t clear_watermark = 0;   // admission recovers only at free >= clear (hysteresis)
  uint64_t max_parked = 0;        // backpressure queue bound (total, all tenants); 0 = EAGAIN
};

class AdmissionController {
 public:
  enum class Decision : uint8_t { kAdmit, kPark, kReject };

  AdmissionController(Scheduler& sched, FrameAllocator& frames, KernelStats& stats,
                      const OverloadConfig& config);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  bool enabled() const { return config_.enabled; }
  bool rejecting() const { return rejecting_.load(std::memory_order_relaxed); }
  uint64_t parked() const;
  const OverloadConfig& config() const { return config_; }

  // Re-arms the watermarks at runtime (tests and benches size them against the measured
  // post-boot free count; KernelConfig carries the boot-time values).
  void Configure(const OverloadConfig& config);

  // Runs the hysteresis update against the current free-frame count and decides the fate of
  // one new μprocess creation. kReject is already counted in stats; the caller returns EAGAIN.
  Decision Evaluate();

  // Backpressure: parks the calling thread on its tenant's drain queue until frames free up
  // and admission recovers. The caller must NOT hold a kernel lock (SyscallScope::Leave
  // first) and must re-Evaluate() after resuming — a woken forker re-contends like everyone
  // else. Parked threads that are killed never resume; their TCBs stay inspectable (the
  // scheduler skips kDone waiters), so the queue needs no external cleanup.
  SimTask<void> ParkUntilDrained(TenantId tenant);

  // Frame-release hook (wired by KernelCore when enabled): re-evaluates the watermarks and
  // drains the park queues once the free count clears the hysteresis threshold.
  void OnFramesFreed();

 private:
  void UpdateStateLocked(uint64_t free);
  WaitQueue& QueueForLocked(TenantId tenant);
  // The next non-empty tenant queue at or after the RR cursor, advancing the cursor past the
  // chosen tenant. Null when every queue is drained.
  WaitQueue* NextNonEmptyLocked();
  void DrainLocked();

  Scheduler& sched_;
  FrameAllocator& frames_;
  KernelStats& stats_;
  OverloadConfig config_;
  mutable std::mutex mu_;  // guards queues_, rr_cursor_, rejecting_ transitions, config_ swap
  // Per-tenant park queues, FIFO within each (unique_ptr: WaitQueue owns a mutex and cannot
  // move). Entries are never erased, so queue addresses stay stable across suspensions.
  std::map<TenantId, std::unique_ptr<WaitQueue>> queues_;
  TenantId rr_cursor_ = 0;  // drain resumes the round-robin at this tenant
  std::atomic<bool> rejecting_{false};  // hysteresis state; atomic for lock-free observers
};

}  // namespace ufork

#endif  // UFORK_SRC_KERNEL_ADMISSION_H_
