#include "src/kernel/syscall_table.h"

#include "src/base/log.h"

namespace ufork {
namespace {

constexpr SyscallClass kFast = SyscallClass::kFast;
constexpr SyscallClass kBlocking = SyscallClass::kBlocking;
constexpr SyscallClass kNoEntry = SyscallClass::kNoEntry;

constexpr std::array<SyscallDesc, kNumSyscalls> kTable = {{
    // --- process lifecycle (ProcService) ---
    {Sys::kFork, "fork", kFast, LockDomain::kProc},
    {Sys::kWait, "wait", kBlocking, LockDomain::kProc},
    {Sys::kExit, "exit", kBlocking, LockDomain::kProc},
    {Sys::kGetPid, "getpid", kFast, LockDomain::kProc},
    {Sys::kGetPPid, "getppid", kFast, LockDomain::kProc},
    {Sys::kKill, "kill", kFast, LockDomain::kProc},
    {Sys::kSigaction, "sigaction", kFast, LockDomain::kProc},
    {Sys::kCheckSignals, "check_signals", kNoEntry, LockDomain::kProc},
    {Sys::kExec, "exec", kBlocking, LockDomain::kProc},
    {Sys::kSpawn, "spawn", kFast, LockDomain::kProc},
    {Sys::kNanosleep, "nanosleep", kBlocking, LockDomain::kProc},
    {Sys::kThreadCreate, "thread_create", kFast, LockDomain::kProc},
    {Sys::kThreadJoin, "thread_join", kBlocking, LockDomain::kProc},
    {Sys::kMmapAnon, "mmap_anon", kFast, LockDomain::kProc},
    // --- VFS / descriptors (FileService) ---
    {Sys::kOpen, "open", kFast, LockDomain::kFile},
    {Sys::kClose, "close", kFast, LockDomain::kFile},
    {Sys::kRead, "read", kBlocking, LockDomain::kFile},
    {Sys::kWrite, "write", kBlocking, LockDomain::kFile},
    {Sys::kSeek, "seek", kFast, LockDomain::kFile},
    {Sys::kDup2, "dup2", kFast, LockDomain::kFile},
    {Sys::kUnlink, "unlink", kFast, LockDomain::kFile},
    {Sys::kRename, "rename", kFast, LockDomain::kFile},
    {Sys::kFileSize, "file_size", kFast, LockDomain::kFile},
    // --- IPC (IpcService) ---
    {Sys::kPipe, "pipe", kFast, LockDomain::kIpc},
    {Sys::kMqOpen, "mq_open", kFast, LockDomain::kIpc},
    {Sys::kShmOpen, "shm_open", kFast, LockDomain::kIpc},
    {Sys::kShmMap, "shm_map", kFast, LockDomain::kIpc},
    {Sys::kShmUnlink, "shm_unlink", kFast, LockDomain::kIpc},
    {Sys::kFutexWait, "futex_wait", kBlocking, LockDomain::kIpc},
    {Sys::kFutexWake, "futex_wake", kFast, LockDomain::kIpc},
    // --- demand-paged memory (appended so the established row indices stay stable) ---
    {Sys::kSbrk, "sbrk", kFast, LockDomain::kProc},
    {Sys::kMmapFile, "mmap_file", kFast, LockDomain::kFile},
}};

// The table must be indexed by Sys: row i describes syscall i.
constexpr bool TableOrdered() {
  for (size_t i = 0; i < kTable.size(); ++i) {
    if (static_cast<size_t>(kTable[i].id) != i) {
      return false;
    }
  }
  return true;
}
static_assert(TableOrdered(), "syscall table rows must be in Sys enum order");

}  // namespace

const char* SyscallClassName(SyscallClass klass) {
  switch (klass) {
    case SyscallClass::kFast:
      return "fast";
    case SyscallClass::kBlocking:
      return "blocking";
    case SyscallClass::kNoEntry:
      return "delivery";
  }
  return "?";
}

const std::array<SyscallDesc, kNumSyscalls>& SyscallTable() { return kTable; }

const SyscallDesc& SyscallDescOf(Sys id) {
  UF_CHECK(id < Sys::kCount);
  return kTable[static_cast<size_t>(id)];
}

}  // namespace ufork
