// File descriptors and per-μprocess descriptor tables.
//
// POSIX semantics the fork paths depend on: descriptors index into a per-process table whose
// entries reference shared "open file descriptions" (offset and state shared after fork/dup).
// fork duplicates the *table*; the descriptions are reference-counted and shared — this is what
// makes, e.g., a Redis child inherit the snapshot file and pipe ends.
#ifndef UFORK_SRC_KERNEL_FD_H_
#define UFORK_SRC_KERNEL_FD_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/machine/cost_model.h"
#include "src/sched/task.h"

namespace ufork {

// Abstract open file description. Read/Write operate on kernel-side buffers: the syscall layer
// performs the user-memory transfer (through the caller's capability, honouring CoW/CoPA) and
// the TOCTTOU bounce-buffering around these calls.
class OpenFile {
 public:
  virtual ~OpenFile() = default;

  // Blocking semantics where applicable (pipes, message queues). Returns bytes transferred;
  // 0 on EOF for reads.
  virtual SimTask<Result<int64_t>> Read(std::span<std::byte> out) = 0;
  virtual SimTask<Result<int64_t>> Write(std::span<const std::byte> in) = 0;

  // Reposition (regular files only).
  virtual Result<int64_t> Seek(int64_t offset, int whence) {
    (void)offset;
    (void)whence;
    return Code::kErrInval;
  }

  // Reference-count notifications, driven by descriptor-table operations: a description starts
  // with one reference when installed; fork/dup add references (OnDup); each descriptor close
  // removes one (OnClose). Pipes use these to deliver EOF / EPIPE when a side vanishes.
  virtual void OnDup() {}
  virtual void OnClose() {}

  // Fixed kernel cost per Read/Write on this description (byte costs are charged separately).
  virtual Cycles IoFixedCost(const CostModel& costs) const { return costs.vfs_op; }

  virtual const char* kind() const = 0;
};

inline constexpr int kMaxFds = 256;

class FdTable {
 public:
  // Installs the description at the lowest free slot.
  Result<int> Install(std::shared_ptr<OpenFile> file);

  Result<std::shared_ptr<OpenFile>> Get(int fd) const;

  Result<void> Close(int fd);

  // dup2 semantics: points newfd at oldfd's description (closing newfd's previous one).
  Result<int> Dup2(int oldfd, int newfd);

  // fork-time duplication: same descriptions, new table. Notifies each description via OnDup.
  std::shared_ptr<FdTable> Clone() const;

  // Closes everything (process exit).
  void CloseAll();

  int OpenCount() const;

 private:
  std::vector<std::shared_ptr<OpenFile>> slots_{kMaxFds};
};

}  // namespace ufork

#endif  // UFORK_SRC_KERNEL_FD_H_
