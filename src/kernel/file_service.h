// FileService: VFS and descriptor-table syscalls and state.
//
// Owns the kFile lock domain: the ramdisk VFS plus every descriptor operation (open, close,
// read, write, seek, dup2, unlink, rename, stat). Reads and writes drop the domain lock before
// the transfer — pipe ends installed in descriptor tables may block — so the kernel never
// sleeps holding a lock.
#ifndef UFORK_SRC_KERNEL_FILE_SERVICE_H_
#define UFORK_SRC_KERNEL_FILE_SERVICE_H_

#include <string>

#include "src/base/status.h"
#include "src/cheri/capability.h"
#include "src/kernel/uproc.h"
#include "src/kernel/vfs.h"
#include "src/sched/task.h"

namespace ufork {

class Kernel;

class FileService {
 public:
  explicit FileService(Kernel& kernel) : kernel_(kernel) {}

  FileService(const FileService&) = delete;
  FileService& operator=(const FileService&) = delete;

  RamFs& vfs() { return vfs_; }

  SimTask<Result<int>> Open(Uproc& caller, std::string path, uint32_t flags);
  SimTask<Result<void>> Close(Uproc& caller, int fd);
  SimTask<Result<int64_t>> Read(Uproc& caller, int fd, Capability buf, uint64_t va,
                                uint64_t len);
  SimTask<Result<int64_t>> Write(Uproc& caller, int fd, Capability buf, uint64_t va,
                                 uint64_t len);
  SimTask<Result<int64_t>> Seek(Uproc& caller, int fd, int64_t offset, int whence);
  SimTask<Result<int>> Dup2(Uproc& caller, int oldfd, int newfd);
  SimTask<Result<void>> Unlink(Uproc& caller, std::string path);
  SimTask<Result<void>> Rename(Uproc& caller, std::string from, std::string to);
  SimTask<Result<uint64_t>> FileSize(Uproc& caller, std::string path);

  // mmap(MAP_PRIVATE) of a ramdisk file: clean pages come from the unified page cache and are
  // shared read-only by every mapper; the first write breaks the share with a private copy.
  // Under demand paging the window is reserve-only and fills fault by fault.
  SimTask<Result<Capability>> MmapFile(Uproc& caller, std::string path, uint64_t length);

 private:
  Kernel& kernel_;
  RamFs vfs_;
};

}  // namespace ufork

#endif  // UFORK_SRC_KERNEL_FILE_SERVICE_H_
