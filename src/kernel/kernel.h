// The single-address-space kernel.
//
// A unikernel-style kernel in the spirit of the paper's Unikraft base, extended with the
// per-μprocess state fork requires (§4.5): a process table, per-process descriptor tables,
// PIDs, wait/exit, scheduling, signals, pipes, message queues and a ramdisk VFS. System calls
// are plain (coroutine) function calls — same privilege level as the application — guarded by
// the sealed-entry capability check; argument validation and TOCTTOU protections are applied
// per the configured isolation policy (§4.4). Fork itself is delegated to the installed
// ForkBackend (μFork, MAS baseline, or VM-clone baseline).
#ifndef UFORK_SRC_KERNEL_KERNEL_H_
#define UFORK_SRC_KERNEL_KERNEL_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/base/status.h"
#include "src/cheri/capability.h"
#include "src/kernel/fd.h"
#include "src/kernel/fork_backend.h"
#include "src/kernel/isolation.h"
#include "src/kernel/mqueue.h"
#include "src/kernel/pipe.h"
#include "src/kernel/uproc.h"
#include "src/kernel/vfs.h"
#include "src/machine/machine.h"
#include "src/mem/address_space.h"
#include "src/mem/layout.h"
#include "src/sched/scheduler.h"
#include "src/sched/sync.h"

namespace ufork {

struct KernelConfig {
  int cores = 4;  // Morello SDP has 4 ARMv8.2-A cores
  ForkStrategy strategy = ForkStrategy::kCopa;
  IsolationLevel isolation = IsolationLevel::kFull;
  LayoutConfig layout;
  uint64_t phys_mem_bytes = 2 * kGiB;
  bool use_bkl = true;  // Unikraft-style big kernel lock (§4.5); MAS baseline disables it
  std::optional<uint64_t> aslr_seed;
  CostModel costs;
};

struct WaitResult {
  Pid pid = kInvalidPid;
  int status = 0;
};

// Aggregated kernel counters surfaced by benchmarks and tests.
struct KernelStats {
  uint64_t forks = 0;
  uint64_t exits = 0;
  uint64_t syscalls = 0;
  uint64_t pages_copied_on_fault = 0;
  uint64_t caps_relocated_on_fault = 0;
  uint64_t caps_stripped = 0;  // out-of-region capabilities invalidated during relocation
  uint64_t tocttou_copies = 0;
  uint64_t regions_tombstoned = 0;  // regions kept reserved at exit (shared frames remain)
};

class Kernel {
 public:
  Kernel(const KernelConfig& config, std::unique_ptr<ForkBackend> backend);
  ~Kernel();

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  // --- boot / run -----------------------------------------------------------------------------

  // Creates a fresh μprocess running `entry` (a new program image, not a fork).
  Result<Pid> Spawn(UprocEntry entry, std::string name, int pinned_core = -1);

  // Drains the scheduler.
  void Run() { sched_.Run(); }

  // --- component access -------------------------------------------------------------------

  Scheduler& sched() { return sched_; }
  Machine& machine() { return machine_; }
  const Machine& machine() const { return machine_; }
  AddressSpace& address_space() { return address_space_; }
  RamFs& vfs() { return vfs_; }
  MqRegistry& mqueues() { return mqueues_; }
  const UprocLayout& layout() const { return layout_; }
  const IsolationPolicy& policy() const { return policy_; }
  const KernelConfig& config() const { return config_; }
  const CostModel& costs() const { return machine_.costs(); }
  ForkBackend& backend() { return *backend_; }
  KernelStats& stats() { return stats_; }

  Uproc* FindUproc(Pid pid);
  // SAS: μprocess whose region contains `va` (used by fault resolution and relocation).
  Uproc* UprocByAddress(uint64_t va);
  Uproc* UprocByPageTable(const PageTable* pt);
  Uproc& CurrentUproc();
  std::vector<Pid> LivePids() const;
  std::vector<Pid> AllPids() const;

  // The shared page table of the single address space (μFork backend).
  PageTable& shared_page_table() { return shared_pt_; }

  // PTE flags a region offset should have when privately owned (segment permissions).
  uint32_t SegmentFlagsAt(uint64_t offset) const;

  // --- μprocess construction (used by fork backends and Spawn) --------------------------------

  // Allocates the Uproc shell: pid, fd table (empty), registers cleared.
  Uproc& CreateUprocShell(std::string name, Pid parent);
  // Allocates a SAS region / or assigns the fixed MAS base, creates the page table view.
  Result<void> AllocateUprocMemory(Uproc& uproc, bool private_page_table);
  // Eagerly maps all segments with fresh zero frames.
  Result<void> MapFreshImage(Uproc& uproc);
  // Derives the architectural capabilities (DDC/PCC/CSP + syscall sentry) for the region.
  void InstallArchCaps(Uproc& uproc);
  // Spawns the μprocess thread executing `entry`.
  void StartUprocThread(Uproc& uproc, UprocEntry entry, int pinned_core = -1);

  // Releases all frames mapped in the μprocess region and the region itself.
  void ReleaseUprocMemory(Uproc& uproc);

  // --- system calls (invoked via the Guest facade) ---------------------------------------------
  //
  // Every syscall validates the caller's sealed entry capability (sentry), charges the
  // backend's entry cost, takes the BKL for its non-blocking prologue, and applies the
  // isolation policy to referenced buffers.

  SimTask<Result<Pid>> SysFork(Uproc& caller, UprocEntry child_entry);
  SimTask<Result<WaitResult>> SysWait(Uproc& caller);
  // Never returns: tears the μprocess down and exits the thread.
  SimTask<void> SysExit(Uproc& caller, int code);

  SimTask<Result<Pid>> SysGetPid(Uproc& caller);
  SimTask<Result<Pid>> SysGetPPid(Uproc& caller);

  SimTask<Result<int>> SysOpen(Uproc& caller, std::string path, uint32_t flags);
  SimTask<Result<void>> SysClose(Uproc& caller, int fd);
  SimTask<Result<int64_t>> SysRead(Uproc& caller, int fd, Capability buf, uint64_t va,
                                   uint64_t len);
  SimTask<Result<int64_t>> SysWrite(Uproc& caller, int fd, Capability buf, uint64_t va,
                                    uint64_t len);
  SimTask<Result<int64_t>> SysSeek(Uproc& caller, int fd, int64_t offset, int whence);
  SimTask<Result<int>> SysDup2(Uproc& caller, int oldfd, int newfd);
  SimTask<Result<std::pair<int, int>>> SysPipe(Uproc& caller);
  SimTask<Result<void>> SysUnlink(Uproc& caller, std::string path);
  SimTask<Result<void>> SysRename(Uproc& caller, std::string from, std::string to);
  SimTask<Result<uint64_t>> SysFileSize(Uproc& caller, std::string path);

  SimTask<Result<int>> SysMqOpen(Uproc& caller, std::string name, bool create);

  // Anonymous mmap: returns a capability over fresh pages inside the caller's region (§4.2:
  // "the kernel ensures anonymous mmap requests are served by returning capabilities pointing
  // to the calling μprocess virtual memory area").
  SimTask<Result<Capability>> SysMmapAnon(Uproc& caller, uint64_t length);

  // kill(2): SIGKILL terminates the target immediately; other signals are queued on its
  // pending set and delivered at the target's next delivery point.
  SimTask<Result<void>> SysKill(Uproc& caller, Pid target, int signal = kSigKill);
  // sigaction(2): installs a handler coroutine for `signal` (not SIGKILL).
  SimTask<Result<void>> SysSigaction(Uproc& caller, int signal, SignalHandler handler);
  // Explicit delivery point: runs pending handlers / default actions now.
  SimTask<Result<void>> SysCheckSignals(Uproc& caller);

  // --- POSIX shared memory (paper §3.7: "supporting shared memory between μprocesses would
  // be straightforward... map the same set of physical pages within the virtual address space
  // areas of relevant μprocesses") -------------------------------------------------------------

  // shm_open + ftruncate: creates (or opens) a named object of `size` bytes.
  SimTask<Result<int>> SysShmOpen(Uproc& caller, std::string name, uint64_t size);
  // mmap(MAP_SHARED): maps the object's frames into the caller's mmap zone. The returned
  // capability carries data permissions but NOT StoreCap/LoadCap: capabilities cannot be
  // laundered between μprocesses through shared memory (security invariant §4.2/§4.3).
  SimTask<Result<Capability>> SysShmMap(Uproc& caller, int shm_id);
  SimTask<Result<void>> SysShmUnlink(Uproc& caller, std::string name);

  // --- program execution (U1: fork + exec; and the cheaper posix_spawn of §2.3) ---------------

  // Registers a named program image for exec/spawn.
  void RegisterProgram(std::string name, UprocEntry entry);
  // execve(2): replaces the calling μprocess's image with a fresh instance of `program`.
  // PID, parent, descriptors and pending children are preserved; memory is reset. Never
  // returns on success.
  SimTask<Result<void>> SysExec(Uproc& caller, std::string program);
  // posix_spawn(3): creates a child running a fresh image of `program` without duplicating the
  // parent's memory — the cheap fork+exec replacement SASOSes traditionally support (§2.3).
  SimTask<Result<Pid>> SysSpawn(Uproc& caller, std::string program);
  SimTask<Result<void>> SysNanosleep(Uproc& caller, Cycles duration);

  // --- threads (§3.4: μprocesses may have many threads; fork copies only the caller's) -------

  // pthread_create: a new thread in the SAME μprocess (same region, same descriptors).
  SimTask<Result<ThreadId>> SysThreadCreate(Uproc& caller, UprocEntry entry);
  // pthread_join: blocks until the thread ends. Any thread of the μprocess may join any other.
  SimTask<Result<void>> SysThreadJoin(Uproc& caller, ThreadId tid);

  // --- futex (supports intra-process thread sync and, because the key is the *physical*
  // location, cross-μprocess sync through MAP_SHARED windows) ----------------------------------

  // Blocks while *(uint64_t*)va == expected (returns EAGAIN immediately otherwise).
  SimTask<Result<void>> SysFutexWait(Uproc& caller, Capability cap, uint64_t va,
                                     uint64_t expected);
  // Wakes up to n waiters on the location. Returns the number woken.
  SimTask<Result<uint64_t>> SysFutexWake(Uproc& caller, Capability cap, uint64_t va,
                                         uint64_t n);

  // Models an MSR/MRS-class privileged instruction: permitted only with kPermSystem on the
  // executing PCC (§4.4 second principle). User μprocesses lack it.
  SimTask<Result<void>> SysPrivilegedOp(Uproc& caller);

  // --- metrics ----------------------------------------------------------------------------------

  // Proportional set size: Σ page_size / frame_refcount over the region. Shared pages are
  // split among sharers.
  uint64_t UprocPssBytes(const Uproc& uproc) const;

  // Unique set size: only privately-owned frames, plus the backend's per-process overhead
  // (shared libraries, VM image, allocator dirtying, kernel structures). This is "the memory
  // consumed by a (forked) process" the paper's Figures 5 and 8 report: what the fork *added*.
  uint64_t UprocUssBytes(const Uproc& uproc) const;
  double UprocUssMb(const Uproc& uproc) const {
    return static_cast<double>(UprocUssBytes(uproc)) / static_cast<double>(kMiB);
  }

 private:
  friend class SyscallScope;

  // Syscall prologue/epilogue helpers.
  SimTask<Result<void>> EnterSyscall(Uproc& caller);
  void LeaveSyscall();

  // Validates a user buffer per the isolation policy; returns the (possibly narrowed)
  // authorization to use.
  Result<void> ValidateUserBuffer(Uproc& caller, const Capability& cap, uint64_t va,
                                  uint64_t len, bool is_write);

  // Transfers between user memory (through `cap`, honouring CoW/CoPA) and a kernel buffer,
  // with TOCTTOU double copy when the policy demands it.
  SimTask<Result<void>> CopyFromUser(Uproc& caller, const Capability& cap, uint64_t va,
                                     std::span<std::byte> out);
  SimTask<Result<void>> CopyToUser(Uproc& caller, const Capability& cap, uint64_t va,
                                   std::span<const std::byte> in);

  void ReapZombie(Uproc& zombie);
  void KillUproc(Uproc& victim);
  // Runs pending handlers / default actions for `uproc`. If a fatal default fires, tears the
  // μprocess down and never returns (exits the thread).
  SimTask<void> DeliverSignals(Uproc& uproc);
  Result<void> ResetUprocImage(Uproc& uproc);

  KernelConfig config_;
  IsolationPolicy policy_;
  UprocLayout layout_;
  Scheduler sched_;
  Machine machine_;
  AddressSpace address_space_;
  PageTable shared_pt_;
  RamFs vfs_;
  MqRegistry mqueues_;
  VirtualLock bkl_;
  std::unique_ptr<ForkBackend> backend_;
  struct ShmObject {
    std::string name;
    std::vector<FrameId> frames;
    uint64_t size = 0;
    bool unlinked = false;
  };

  std::map<Pid, std::unique_ptr<Uproc>> uprocs_;
  std::map<std::string, int> shm_by_name_;
  std::map<int, ShmObject> shm_objects_;
  int next_shm_id_ = 1;
  std::map<std::string, UprocEntry> programs_;
  // Futex wait queues keyed by physical location (frame, offset): shared-memory futexes work
  // across μprocesses mapping the same frames.
  std::map<std::pair<FrameId, uint64_t>, std::unique_ptr<WaitQueue>> futexes_;
  std::map<const PageTable*, Pid> pt_owners_;
  Pid next_pid_ = 1;
  KernelStats stats_;
};

}  // namespace ufork

#endif  // UFORK_SRC_KERNEL_KERNEL_H_
