// The single-address-space kernel.
//
// A unikernel-style kernel in the spirit of the paper's Unikraft base, extended with the
// per-μprocess state fork requires (§4.5): a process table, per-process descriptor tables,
// PIDs, wait/exit, scheduling, signals, pipes, message queues and a ramdisk VFS. System calls
// are plain (coroutine) function calls — same privilege level as the application — guarded by
// the sealed-entry capability check; argument validation and TOCTTOU protections are applied
// per the configured isolation policy (§4.4).
//
// The kernel is layered (see DESIGN.md "Kernel layering and lock domains"):
//
//   KernelCore (kernel_core.h)  machine, scheduler, address space, process table, lock
//                               domains, μprocess construction. Fork backends see only this.
//   ProcService / FileService / IpcService
//                               the syscalls, one service per lock domain, each owning its
//                               subsystem state (programs, VFS, pipes/mqueues/shm/futexes).
//   Kernel (this file)          composes the services and re-exports the Sys* surface the
//                               Guest facade and applications call.
//
// Every syscall runs under a SyscallScope driven by the declarative syscall table
// (syscall_table.h): shared entry/exit protocol, per-syscall stats, RAII lock discipline.
#ifndef UFORK_SRC_KERNEL_KERNEL_H_
#define UFORK_SRC_KERNEL_KERNEL_H_

#include <memory>
#include <string>
#include <utility>

#include "src/base/status.h"
#include "src/cheri/capability.h"
#include "src/kernel/fd.h"
#include "src/kernel/file_service.h"
#include "src/kernel/fork_backend.h"
#include "src/kernel/ipc_service.h"
#include "src/kernel/isolation.h"
#include "src/kernel/kernel_core.h"
#include "src/kernel/mqueue.h"
#include "src/kernel/page_cache.h"
#include "src/kernel/pipe.h"
#include "src/kernel/proc_service.h"
#include "src/kernel/uproc.h"
#include "src/kernel/vfs.h"
#include "src/machine/machine.h"
#include "src/mem/address_space.h"
#include "src/mem/layout.h"
#include "src/sched/scheduler.h"
#include "src/sched/sync.h"

namespace ufork {

class Kernel : public KernelCore {
 public:
  Kernel(const KernelConfig& config, std::unique_ptr<ForkBackend> backend)
      : KernelCore(config, std::move(backend)), procs_(*this), files_(*this), ipc_(*this) {
    // KernelCore wired the memory-layer injection sites; the service-owned sites (ramdisk
    // growth) and the shm contribution to the frame-accounting invariant are wired here,
    // where the services exist.
    files_.vfs().set_fault_injector(&fault_injector_);
    // VFS writes, truncation, unlink and rename-over must drop stale page-cache pages —
    // the cache is keyed by inode identity and fills read-through from the inode's bytes.
    files_.vfs().set_invalidate_hook([this](const void* key) { page_cache().EvictInode(key); });
    set_kernel_frame_refs_provider(
        [this](const std::function<void(FrameId)>& fn) { ipc_.ForEachShmFrame(fn); });
    // Sharded-host mode: SIGKILLs that cross shards are queued by ProcService::Kill and
    // replayed here, on the epoch coordinator at the next barrier (DESIGN.md §4.11).
    set_cross_shard_kill_handler([this](Pid pid) { procs_.KillCrossShard(pid); });
  }

  // --- services -------------------------------------------------------------------------------

  ProcService& procs() { return procs_; }
  FileService& files() { return files_; }
  IpcService& ipc() { return ipc_; }

  RamFs& vfs() { return files_.vfs(); }
  MqRegistry& mqueues() { return ipc_.mqueues(); }

  // Registers a named program image for exec/spawn.
  void RegisterProgram(std::string name, UprocEntry entry) {
    procs_.RegisterProgram(std::move(name), std::move(entry));
  }

  // --- system calls (invoked via the Guest facade) --------------------------------------------
  //
  // Thin delegators into the owning service; every call runs the SyscallScope protocol
  // (sealed-entry check, entry cost, argument-validation charge, domain lock).

  SimTask<Result<Pid>> SysFork(Uproc& caller, UprocEntry child_entry) {
    return procs_.Fork(caller, std::move(child_entry));
  }
  SimTask<Result<WaitResult>> SysWait(Uproc& caller) { return procs_.Wait(caller); }
  // Never returns: tears the μprocess down and exits the thread.
  SimTask<void> SysExit(Uproc& caller, int code) { return procs_.Exit(caller, code); }

  SimTask<Result<Pid>> SysGetPid(Uproc& caller) { return procs_.GetPid(caller); }
  SimTask<Result<Pid>> SysGetPPid(Uproc& caller) { return procs_.GetPPid(caller); }

  SimTask<Result<int>> SysOpen(Uproc& caller, std::string path, uint32_t flags) {
    return files_.Open(caller, std::move(path), flags);
  }
  SimTask<Result<void>> SysClose(Uproc& caller, int fd) { return files_.Close(caller, fd); }
  SimTask<Result<int64_t>> SysRead(Uproc& caller, int fd, Capability buf, uint64_t va,
                                   uint64_t len) {
    return files_.Read(caller, fd, buf, va, len);
  }
  SimTask<Result<int64_t>> SysWrite(Uproc& caller, int fd, Capability buf, uint64_t va,
                                    uint64_t len) {
    return files_.Write(caller, fd, buf, va, len);
  }
  SimTask<Result<int64_t>> SysSeek(Uproc& caller, int fd, int64_t offset, int whence) {
    return files_.Seek(caller, fd, offset, whence);
  }
  SimTask<Result<int>> SysDup2(Uproc& caller, int oldfd, int newfd) {
    return files_.Dup2(caller, oldfd, newfd);
  }
  SimTask<Result<std::pair<int, int>>> SysPipe(Uproc& caller) { return ipc_.Pipe(caller); }
  SimTask<Result<void>> SysUnlink(Uproc& caller, std::string path) {
    return files_.Unlink(caller, std::move(path));
  }
  SimTask<Result<void>> SysRename(Uproc& caller, std::string from, std::string to) {
    return files_.Rename(caller, std::move(from), std::move(to));
  }
  SimTask<Result<uint64_t>> SysFileSize(Uproc& caller, std::string path) {
    return files_.FileSize(caller, std::move(path));
  }

  SimTask<Result<int>> SysMqOpen(Uproc& caller, std::string name, bool create) {
    return ipc_.MqOpen(caller, std::move(name), create);
  }

  // Anonymous mmap: returns a capability over fresh pages inside the caller's region (§4.2:
  // "the kernel ensures anonymous mmap requests are served by returning capabilities pointing
  // to the calling μprocess virtual memory area").
  SimTask<Result<Capability>> SysMmapAnon(Uproc& caller, uint64_t length) {
    return procs_.MmapAnon(caller, length);
  }

  // sbrk(2): moves the heap break inside the build-time static heap (§4.2) and returns the
  // previous break. Growth past the heap top is ENOMEM; under demand paging regrown pages
  // are zero-fill reservations populated on first touch.
  SimTask<Result<uint64_t>> SysSbrk(Uproc& caller, int64_t delta) {
    return procs_.Sbrk(caller, delta);
  }

  // mmap(MAP_PRIVATE) of a ramdisk file through the unified page cache: clean pages are one
  // frame shared by every mapper; the first write takes a CoW break to a private copy.
  SimTask<Result<Capability>> SysMmapFile(Uproc& caller, std::string path, uint64_t length) {
    return files_.MmapFile(caller, std::move(path), length);
  }

  // kill(2): SIGKILL terminates the target immediately; other signals are queued on its
  // pending set and delivered at the target's next delivery point.
  SimTask<Result<void>> SysKill(Uproc& caller, Pid target, int signal = kSigKill) {
    return procs_.Kill(caller, target, signal);
  }
  // sigaction(2): installs a handler coroutine for `signal` (not SIGKILL).
  SimTask<Result<void>> SysSigaction(Uproc& caller, int signal, SignalHandler handler) {
    return procs_.Sigaction(caller, signal, std::move(handler));
  }
  // Explicit delivery point: runs pending handlers / default actions now.
  SimTask<Result<void>> SysCheckSignals(Uproc& caller) { return procs_.CheckSignals(caller); }

  // --- POSIX shared memory (paper §3.7: "supporting shared memory between μprocesses would
  // be straightforward... map the same set of physical pages within the virtual address space
  // areas of relevant μprocesses") ---------------------------------------------------------

  // shm_open + ftruncate: creates (or opens) a named object of `size` bytes.
  SimTask<Result<int>> SysShmOpen(Uproc& caller, std::string name, uint64_t size) {
    return ipc_.ShmOpen(caller, std::move(name), size);
  }
  // mmap(MAP_SHARED): maps the object's frames into the caller's mmap zone. The returned
  // capability carries data permissions but NOT StoreCap/LoadCap: capabilities cannot be
  // laundered between μprocesses through shared memory (security invariant §4.2/§4.3).
  SimTask<Result<Capability>> SysShmMap(Uproc& caller, int shm_id) {
    return ipc_.ShmMap(caller, shm_id);
  }
  SimTask<Result<void>> SysShmUnlink(Uproc& caller, std::string name) {
    return ipc_.ShmUnlink(caller, std::move(name));
  }

  // --- program execution (U1: fork + exec; and the cheaper posix_spawn of §2.3) -------------

  // execve(2): replaces the calling μprocess's image with a fresh instance of `program`.
  // PID, parent, descriptors and pending children are preserved; memory is reset. Never
  // returns on success.
  SimTask<Result<void>> SysExec(Uproc& caller, std::string program) {
    return procs_.Exec(caller, std::move(program));
  }
  // posix_spawn(3): creates a child running a fresh image of `program` without duplicating the
  // parent's memory — the cheap fork+exec replacement SASOSes traditionally support (§2.3).
  SimTask<Result<Pid>> SysSpawn(Uproc& caller, std::string program) {
    return procs_.Spawn(caller, std::move(program));
  }
  SimTask<Result<void>> SysNanosleep(Uproc& caller, Cycles duration) {
    return procs_.Nanosleep(caller, duration);
  }

  // --- threads (§3.4: μprocesses may have many threads; fork copies only the caller's) ------

  // pthread_create: a new thread in the SAME μprocess (same region, same descriptors).
  SimTask<Result<ThreadId>> SysThreadCreate(Uproc& caller, UprocEntry entry) {
    return procs_.ThreadCreate(caller, std::move(entry));
  }
  // pthread_join: blocks until the thread ends. Any thread of the μprocess may join any other.
  SimTask<Result<void>> SysThreadJoin(Uproc& caller, ThreadId tid) {
    return procs_.ThreadJoin(caller, tid);
  }

  // --- futex (supports intra-process thread sync and, because the key is the *physical*
  // location, cross-μprocess sync through MAP_SHARED windows) --------------------------------

  // Blocks while *(uint64_t*)va == expected (returns EAGAIN immediately otherwise).
  SimTask<Result<void>> SysFutexWait(Uproc& caller, Capability cap, uint64_t va,
                                     uint64_t expected) {
    return ipc_.FutexWait(caller, cap, va, expected);
  }
  // Wakes up to n waiters on the location. Returns the number woken.
  SimTask<Result<uint64_t>> SysFutexWake(Uproc& caller, Capability cap, uint64_t va,
                                         uint64_t n) {
    return ipc_.FutexWake(caller, cap, va, n);
  }

  // Models an MSR/MRS-class privileged instruction: permitted only with kPermSystem on the
  // executing PCC (§4.4 second principle). User μprocesses lack it.
  SimTask<Result<void>> SysPrivilegedOp(Uproc& caller);

 private:
  ProcService procs_;
  FileService files_;
  IpcService ipc_;
};

}  // namespace ufork

#endif  // UFORK_SRC_KERNEL_KERNEL_H_
