// POSIX-style signals for μprocesses.
//
// A pragmatic subset sufficient for the fork use-cases the paper targets (per-μprocess signals
// are listed among the per-process kernel state §4.5 adds): SIGKILL terminates immediately;
// other signals are recorded in a per-μprocess pending set and delivered at well-defined
// points — when the target enters a (potentially) blocking syscall such as wait/read/sleep, or
// when it polls explicitly. Handlers are guest coroutines; without a handler the default
// action applies (terminate for SIGTERM/SIGINT/SIGUSR*, ignore for SIGCHLD).
//
// Deliberate simplification (documented): a signal does not interrupt an already-blocked
// syscall with EINTR; it is delivered at the next delivery point.
#ifndef UFORK_SRC_KERNEL_SIGNAL_H_
#define UFORK_SRC_KERNEL_SIGNAL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>

#include "src/base/status.h"
#include "src/sched/task.h"

namespace ufork {

class Kernel;
class Uproc;

inline constexpr int kSigInt = 2;
inline constexpr int kSigKill = 9;
inline constexpr int kSigUsr1 = 10;
inline constexpr int kSigSegv = 11;  // capability/translation fault containment (§4.9)
inline constexpr int kSigUsr2 = 12;
inline constexpr int kSigTerm = 15;
inline constexpr int kSigChld = 17;
inline constexpr int kMaxSignal = 31;

// A handler runs in the context of the signalled μprocess at a delivery point.
using SignalHandler = std::function<SimTask<void>(Kernel&, Uproc&, int signal)>;

enum class SignalDefault { kTerminate, kIgnore };

constexpr SignalDefault DefaultActionFor(int signal) {
  return signal == kSigChld ? SignalDefault::kIgnore : SignalDefault::kTerminate;
}

// Per-μprocess signal state. Fork inherits handlers and clears the pending set (POSIX: the
// child starts with an empty pending set; dispositions are inherited).
class SignalState {
 public:
  SignalState() = default;
  // Moves happen only at single-threaded points (fork-time duplication, μprocess-table
  // inserts); the relaxed copy of the pending mask is safe there.
  SignalState(SignalState&& o) noexcept
      : pending_(o.pending_.load(std::memory_order_relaxed)),
        handlers_(std::move(o.handlers_)) {}
  SignalState& operator=(SignalState&& o) noexcept {
    pending_.store(o.pending_.load(std::memory_order_relaxed), std::memory_order_relaxed);
    handlers_ = std::move(o.handlers_);
    return *this;
  }

  void SetHandler(int signal, SignalHandler handler) {
    handlers_[signal] = std::move(handler);
  }
  void ResetHandler(int signal) { handlers_.erase(signal); }
  const SignalHandler* HandlerFor(int signal) const {
    auto it = handlers_.find(signal);
    return it == handlers_.end() ? nullptr : &it->second;
  }

  // The pending set is atomic so a sender on another host shard can raise a (non-KILL)
  // signal directly — the mask is the one piece of μprocess state written cross-shard
  // outside the mailbox path (DESIGN.md §4.11). Delivery stays shard-local.
  void Raise(int signal) { pending_.fetch_or(1u << signal, std::memory_order_release); }
  bool AnyPending() const { return pending_.load(std::memory_order_acquire) != 0; }
  // Removes and returns the lowest pending signal, or 0.
  int TakePending() {
    uint32_t cur = pending_.load(std::memory_order_acquire);
    while (cur != 0) {
      // cur & (cur - 1) clears the lowest set bit — the signal being taken.
      if (pending_.compare_exchange_weak(cur, cur & (cur - 1), std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
        return __builtin_ctz(cur);
      }
    }
    return 0;
  }
  void ClearPending() { pending_.store(0, std::memory_order_release); }

  // fork-time duplication: dispositions inherited, pending set cleared.
  SignalState ForkCopy() const {
    SignalState copy;
    copy.handlers_ = handlers_;
    return copy;
  }

 private:
  std::atomic<uint32_t> pending_{0};
  std::map<int, SignalHandler> handlers_;
};

}  // namespace ufork

#endif  // UFORK_SRC_KERNEL_SIGNAL_H_
