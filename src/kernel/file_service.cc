#include "src/kernel/file_service.h"

#include <memory>
#include <utility>
#include <vector>

#include "src/kernel/kernel.h"
#include "src/kernel/syscall_scope.h"

namespace ufork {

SimTask<Result<int>> FileService::Open(Uproc& caller, std::string path, uint32_t flags) {
  SyscallScope scope(kernel_, caller, Sys::kOpen);
  {
    auto entered = co_await scope.Enter();
    if (!entered.ok()) {
      co_return entered.error();
    }
  }
  kernel_.machine().Charge(kernel_.costs().vfs_op);
  auto file = vfs_.Open(path, flags);
  if (!file.ok()) {
    co_return file.error();
  }
  co_return caller.fds->Install(std::move(*file));
}

SimTask<Result<void>> FileService::Close(Uproc& caller, int fd) {
  SyscallScope scope(kernel_, caller, Sys::kClose);
  {
    auto entered = co_await scope.Enter();
    if (!entered.ok()) {
      co_return entered.error();
    }
  }
  co_return caller.fds->Close(fd);
}

SimTask<Result<int64_t>> FileService::Read(Uproc& caller, int fd, Capability buf, uint64_t va,
                                           uint64_t len) {
  co_await kernel_.procs().DeliverSignals(caller);
  SyscallScope scope(kernel_, caller, Sys::kRead);
  {
    auto entered = co_await scope.Enter();
    if (!entered.ok()) {
      co_return entered.error();
    }
  }
  auto file_or = caller.fds->Get(fd);
  if (!file_or.ok()) {
    co_return file_or.error();
  }
  auto check = kernel_.ValidateUserBuffer(caller, buf, va, len, /*is_write=*/true);
  if (!check.ok()) {
    co_return check.error();
  }
  std::shared_ptr<OpenFile> file = std::move(*file_or);
  kernel_.machine().Charge(file->IoFixedCost(kernel_.costs()));
  scope.Leave();  // the transfer may block (pipes); do not hold the domain lock across it

  std::vector<std::byte> kbuf(len);
  auto n = co_await file->Read(kbuf);
  if (!n.ok()) {
    co_return n.error();
  }
  if (*n > 0) {
    kernel_.machine().Charge(kernel_.costs().VfsTransfer(static_cast<uint64_t>(*n)));
    auto copied = co_await kernel_.CopyToUser(caller, buf, va,
                                              std::span(kbuf.data(), static_cast<uint64_t>(*n)));
    if (!copied.ok()) {
      co_return copied.error();
    }
  }
  co_return n;
}

SimTask<Result<int64_t>> FileService::Write(Uproc& caller, int fd, Capability buf, uint64_t va,
                                            uint64_t len) {
  SyscallScope scope(kernel_, caller, Sys::kWrite);
  {
    auto entered = co_await scope.Enter();
    if (!entered.ok()) {
      co_return entered.error();
    }
  }
  auto file_or = caller.fds->Get(fd);
  if (!file_or.ok()) {
    co_return file_or.error();
  }
  auto check = kernel_.ValidateUserBuffer(caller, buf, va, len, /*is_write=*/false);
  if (!check.ok()) {
    co_return check.error();
  }
  std::shared_ptr<OpenFile> file = std::move(*file_or);
  kernel_.machine().Charge(file->IoFixedCost(kernel_.costs()));
  scope.Leave();

  std::vector<std::byte> kbuf(len);
  auto copied = co_await kernel_.CopyFromUser(caller, buf, va, kbuf);
  if (!copied.ok()) {
    co_return copied.error();
  }
  kernel_.machine().Charge(kernel_.costs().VfsTransfer(len));
  co_return co_await file->Write(kbuf);
}

SimTask<Result<int64_t>> FileService::Seek(Uproc& caller, int fd, int64_t offset, int whence) {
  SyscallScope scope(kernel_, caller, Sys::kSeek);
  {
    auto entered = co_await scope.Enter();
    if (!entered.ok()) {
      co_return entered.error();
    }
  }
  auto file_or = caller.fds->Get(fd);
  if (!file_or.ok()) {
    co_return file_or.error();
  }
  co_return (*file_or)->Seek(offset, whence);
}

SimTask<Result<int>> FileService::Dup2(Uproc& caller, int oldfd, int newfd) {
  SyscallScope scope(kernel_, caller, Sys::kDup2);
  {
    auto entered = co_await scope.Enter();
    if (!entered.ok()) {
      co_return entered.error();
    }
  }
  co_return caller.fds->Dup2(oldfd, newfd);
}

SimTask<Result<void>> FileService::Unlink(Uproc& caller, std::string path) {
  SyscallScope scope(kernel_, caller, Sys::kUnlink);
  {
    auto entered = co_await scope.Enter();
    if (!entered.ok()) {
      co_return entered.error();
    }
  }
  kernel_.machine().Charge(kernel_.costs().vfs_op);
  co_return vfs_.Unlink(path);
}

SimTask<Result<void>> FileService::Rename(Uproc& caller, std::string from, std::string to) {
  SyscallScope scope(kernel_, caller, Sys::kRename);
  {
    auto entered = co_await scope.Enter();
    if (!entered.ok()) {
      co_return entered.error();
    }
  }
  kernel_.machine().Charge(kernel_.costs().vfs_op);
  co_return vfs_.Rename(from, to);
}

SimTask<Result<uint64_t>> FileService::FileSize(Uproc& caller, std::string path) {
  SyscallScope scope(kernel_, caller, Sys::kFileSize);
  {
    auto entered = co_await scope.Enter();
    if (!entered.ok()) {
      co_return entered.error();
    }
  }
  kernel_.machine().Charge(kernel_.costs().vfs_op);
  co_return vfs_.FileSize(path);
}

}  // namespace ufork
