#include "src/kernel/file_service.h"

#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "src/kernel/page_cache.h"

#include "src/kernel/kernel.h"
#include "src/kernel/syscall_scope.h"

namespace ufork {

SimTask<Result<int>> FileService::Open(Uproc& caller, std::string path, uint32_t flags) {
  SyscallScope scope(kernel_, caller, Sys::kOpen);
  {
    auto entered = co_await scope.Enter();
    if (!entered.ok()) {
      co_return entered.error();
    }
  }
  kernel_.machine().Charge(kernel_.costs().vfs_op);
  auto file = vfs_.Open(path, flags);
  if (!file.ok()) {
    co_return file.error();
  }
  co_return caller.fds->Install(std::move(*file));
}

SimTask<Result<void>> FileService::Close(Uproc& caller, int fd) {
  SyscallScope scope(kernel_, caller, Sys::kClose);
  {
    auto entered = co_await scope.Enter();
    if (!entered.ok()) {
      co_return entered.error();
    }
  }
  co_return caller.fds->Close(fd);
}

SimTask<Result<int64_t>> FileService::Read(Uproc& caller, int fd, Capability buf, uint64_t va,
                                           uint64_t len) {
  co_await kernel_.procs().DeliverSignals(caller);
  SyscallScope scope(kernel_, caller, Sys::kRead);
  {
    auto entered = co_await scope.Enter();
    if (!entered.ok()) {
      co_return entered.error();
    }
  }
  auto file_or = caller.fds->Get(fd);
  if (!file_or.ok()) {
    co_return file_or.error();
  }
  auto check = kernel_.ValidateUserBuffer(caller, buf, va, len, /*is_write=*/true);
  if (!check.ok()) {
    co_return check.error();
  }
  std::shared_ptr<OpenFile> file = std::move(*file_or);
  kernel_.machine().Charge(file->IoFixedCost(kernel_.costs()));
  scope.Leave();  // the transfer may block (pipes); do not hold the domain lock across it

  std::vector<std::byte> kbuf(len);
  auto n = co_await file->Read(kbuf);
  if (!n.ok()) {
    co_return n.error();
  }
  if (*n > 0) {
    kernel_.machine().Charge(kernel_.costs().VfsTransfer(static_cast<uint64_t>(*n)));
    auto copied = co_await kernel_.CopyToUser(caller, buf, va,
                                              std::span(kbuf.data(), static_cast<uint64_t>(*n)));
    if (!copied.ok()) {
      co_return copied.error();
    }
  }
  co_return n;
}

SimTask<Result<int64_t>> FileService::Write(Uproc& caller, int fd, Capability buf, uint64_t va,
                                            uint64_t len) {
  SyscallScope scope(kernel_, caller, Sys::kWrite);
  {
    auto entered = co_await scope.Enter();
    if (!entered.ok()) {
      co_return entered.error();
    }
  }
  auto file_or = caller.fds->Get(fd);
  if (!file_or.ok()) {
    co_return file_or.error();
  }
  auto check = kernel_.ValidateUserBuffer(caller, buf, va, len, /*is_write=*/false);
  if (!check.ok()) {
    co_return check.error();
  }
  std::shared_ptr<OpenFile> file = std::move(*file_or);
  kernel_.machine().Charge(file->IoFixedCost(kernel_.costs()));
  scope.Leave();

  std::vector<std::byte> kbuf(len);
  auto copied = co_await kernel_.CopyFromUser(caller, buf, va, kbuf);
  if (!copied.ok()) {
    co_return copied.error();
  }
  kernel_.machine().Charge(kernel_.costs().VfsTransfer(len));
  co_return co_await file->Write(kbuf);
}

SimTask<Result<int64_t>> FileService::Seek(Uproc& caller, int fd, int64_t offset, int whence) {
  SyscallScope scope(kernel_, caller, Sys::kSeek);
  {
    auto entered = co_await scope.Enter();
    if (!entered.ok()) {
      co_return entered.error();
    }
  }
  auto file_or = caller.fds->Get(fd);
  if (!file_or.ok()) {
    co_return file_or.error();
  }
  co_return (*file_or)->Seek(offset, whence);
}

SimTask<Result<int>> FileService::Dup2(Uproc& caller, int oldfd, int newfd) {
  SyscallScope scope(kernel_, caller, Sys::kDup2);
  {
    auto entered = co_await scope.Enter();
    if (!entered.ok()) {
      co_return entered.error();
    }
  }
  co_return caller.fds->Dup2(oldfd, newfd);
}

SimTask<Result<void>> FileService::Unlink(Uproc& caller, std::string path) {
  SyscallScope scope(kernel_, caller, Sys::kUnlink);
  {
    auto entered = co_await scope.Enter();
    if (!entered.ok()) {
      co_return entered.error();
    }
  }
  kernel_.machine().Charge(kernel_.costs().vfs_op);
  co_return vfs_.Unlink(path);
}

SimTask<Result<void>> FileService::Rename(Uproc& caller, std::string from, std::string to) {
  SyscallScope scope(kernel_, caller, Sys::kRename);
  {
    auto entered = co_await scope.Enter();
    if (!entered.ok()) {
      co_return entered.error();
    }
  }
  kernel_.machine().Charge(kernel_.costs().vfs_op);
  co_return vfs_.Rename(from, to);
}

SimTask<Result<Capability>> FileService::MmapFile(Uproc& caller, std::string path,
                                                  uint64_t length) {
  SyscallScope scope(kernel_, caller, Sys::kMmapFile);
  {
    auto entered = co_await scope.Enter();
    if (!entered.ok()) {
      co_return entered.error();
    }
  }
  Machine& machine = kernel_.machine();
  if (length == 0 || length % kPageSize != 0) {
    co_return Error{Code::kErrInval, "mmap length must be a non-zero page multiple"};
  }
  kernel_.machine().Charge(kernel_.costs().vfs_op);  // path lookup
  std::shared_ptr<RamFs::Inode> inode = vfs_.InodeOf(path);
  if (inode == nullptr) {
    co_return Error{Code::kErrNoEnt, "mmap of a nonexistent file"};
  }
  const uint64_t pages = length / kPageSize;
  const UprocLayout& layout = kernel_.layout();
  const uint64_t zone_end = caller.base + layout.mmap_off() + layout.mmap_size();
  // Free-VA scan instead of the anon bump cursor: file windows may interleave with anon
  // allocations, and a fresh scan can never collide with either.
  const std::optional<uint64_t> run =
      caller.page_table->FindUnmappedRun(caller.mmap_cursor, zone_end, pages);
  if (!run.has_value()) {
    co_return Error{Code::kErrNoMem, "mmap zone exhausted"};
  }
  const uint64_t addr = *run;
  // MAP_PRIVATE read view: write permission arrives only through the CoW break (the cache's
  // own reference keeps every clean page's refcount above one).
  const uint32_t clean_flags = (kPteRw & ~kPteWrite) | kPteCow;
  if (kernel_.config().demand_paging) {
    for (uint64_t off = 0; off < pages; ++off) {
      machine.Charge(kernel_.costs().pte_dup);
      caller.page_table->Map(addr + off * kPageSize, kInvalidFrame,
                             kPteNotPresent | kPteFileBacked);
    }
  } else {
    for (uint64_t off = 0; off < pages; ++off) {
      auto frame = kernel_.page_cache().GetFrame(inode, off);
      if (!frame.ok()) {
        // All-or-nothing: drop the pages (and cache references) this call already mapped.
        for (uint64_t undo = 0; undo < off; ++undo) {
          machine.frames().Release(caller.page_table->Unmap(addr + undo * kPageSize));
        }
        co_return frame.error();
      }
      machine.Charge(kernel_.costs().pte_update);
      caller.page_table->Map(addr + off * kPageSize, *frame, clean_flags);
    }
  }
  caller.mmap_cursor = addr + length;
  caller.file_mappings.push_back(Uproc::FileMapping{addr, pages, /*start_page=*/0, inode});
  co_return caller.regs.ddc.WithBounds(addr, length);
}

SimTask<Result<uint64_t>> FileService::FileSize(Uproc& caller, std::string path) {
  SyscallScope scope(kernel_, caller, Sys::kFileSize);
  {
    auto entered = co_await scope.Enter();
    if (!entered.ok()) {
      co_return entered.error();
    }
  }
  kernel_.machine().Charge(kernel_.costs().vfs_op);
  co_return vfs_.FileSize(path);
}

}  // namespace ufork
