#include "src/kernel/fault_around.h"

#include <algorithm>
#include <array>
#include <span>

#include "src/kernel/page_cache.h"

namespace ufork {
namespace {

// Clears still-set speculative markers in [lo, hi) and returns how many there were. A marker
// that survived until now was a speculative resolution nobody touched — a wasted copy.
uint64_t SweepStaleMarkers(PageTable& pt, uint64_t lo, uint64_t hi) {
  uint64_t stale = 0;
  for (uint64_t va = lo; va < hi; va += kPageSize) {
    Pte* pte = pt.LookupMutable(va);
    if (pte != nullptr && (pte->flags & kPteFaultAround) != 0) {
      pte->flags &= ~kPteFaultAround;
      ++stale;
    }
  }
  return stale;
}

uint32_t ClampedMaxWindow(const FaultAroundConfig& config) {
  return std::clamp<uint32_t>(config.max_window, 1, kMaxFaultAroundWindow);
}

}  // namespace

uint32_t FaultAroundBegin(KernelCore& kernel, Uproc& uproc, const PageFaultInfo& info) {
  const FaultAroundConfig& config = kernel.config().fault_around;
  const uint32_t max_window = ClampedMaxWindow(config);
  if (max_window <= 1) {
    return 1;
  }
  FaultAroundState& state = uproc.fault_around;
  // Audit the previous window: markers still set were wasted speculative copies. Swept for
  // fixed windows too, so the waste counter stays meaningful across the whole sweep matrix.
  const uint64_t wasted = SweepStaleMarkers(*info.page_table, state.spec_lo, state.spec_hi);
  kernel.stats().speculative_pages_wasted += wasted;
  state.spec_lo = 0;
  state.spec_hi = 0;
  uint32_t limit = max_window;
  if (config.adaptive) {
    if (wasted > 0) {
      state.window = std::max<uint32_t>(1, state.window / 2);
    } else if (state.next_va != 0 && info.va == state.next_va) {
      // The previous window was fully consumed and the storm marched straight past its end.
      state.window = std::min(state.window * 2, max_window);
    }
    limit = std::min(state.window, max_window);
  }
  // Pages the faulting access itself spans are guaranteed to be touched — resolving them now
  // is pure win, so the span may raise the window above the adaptive value.
  const uint64_t span_end = std::max(info.access_end, info.va + 1);
  const uint64_t span_pages = (span_end - info.va + kPageSize - 1) / kPageSize;
  return std::max<uint32_t>(limit, std::min<uint64_t>(span_pages, max_window));
}

FaultWindow FaultAroundScan(KernelCore& kernel, Uproc& uproc, PageTable& pt,
                            const PageFaultInfo& info, const Pte& fault_pte, uint32_t limit) {
  const FrameAllocator& frames = kernel.machine().frames();
  FaultWindow window;
  window.va = info.va;
  // Not-present reservations have no frame, hence no sharing class; flags equality already
  // separates them from populated pages (kPteNotPresent never appears on a populated PTE).
  window.shared = PtePopulated(fault_pte) && frames.RefCount(fault_pte.frame) > 1;
  const uint64_t offset = uproc.OffsetOf(info.va);
  window.seg_flags = kernel.SegmentFlagsAt(offset);
  // The window never crosses the segment boundary: resolved permissions change there, and so
  // does the pending state worth batching.
  const uint64_t segment_end = uproc.base + kernel.layout().SegmentEndOf(offset);
  const uint64_t max_end = std::min(info.va + uint64_t{limit} * kPageSize, segment_end);
  for (uint64_t va = info.va + kPageSize; va < max_end; va += kPageSize) {
    const Pte* next = pt.LookupMutable(va);
    if (next == nullptr || next->flags != fault_pte.flags ||
        (PtePopulated(*next) && frames.RefCount(next->frame) > 1) != window.shared) {
      break;
    }
    ++window.pages;
  }
  return window;
}

void FaultAroundCommit(KernelCore& kernel, Uproc& uproc, const FaultWindow& window) {
  KernelStats& stats = kernel.stats();
  ++stats.faults_taken;
  stats.pages_resolved_by_faultaround += window.pages - 1;
  if (ClampedMaxWindow(kernel.config().fault_around) <= 1) {
    return;
  }
  FaultAroundState& state = uproc.fault_around;
  state.next_va = window.va + window.pages * kPageSize;
  state.spec_lo = window.va;
  state.spec_hi = state.next_va;
}

void FaultAroundAccountExitWaste(KernelCore& kernel, Uproc& uproc) {
  FaultAroundState& state = uproc.fault_around;
  if (state.spec_hi <= state.spec_lo || uproc.page_table == nullptr) {
    return;
  }
  kernel.stats().speculative_pages_wasted +=
      SweepStaleMarkers(*uproc.page_table, state.spec_lo, state.spec_hi);
  state.spec_lo = 0;
  state.spec_hi = 0;
}

Result<void> ResolveDemandFault(KernelCore& kernel, Uproc& uproc, PageTable& pt,
                                const PageFaultInfo& info, const Pte& fault_pte) {
  Machine& machine = kernel.machine();
  const CostModel& costs = kernel.costs();
  // The probe fires before any frame or PTE mutation: an injected failure is indistinguishable
  // from first-allocation exhaustion and must leave the whole window reserved.
  if (kernel.fault_injector().ShouldFail(FaultSite::kLazyFillAlloc)) {
    return Error{Code::kErrNoMem, "demand-fill allocation failed (injected)"};
  }
  const uint32_t limit = FaultAroundBegin(kernel, uproc, info);
  FaultWindow window = FaultAroundScan(kernel, uproc, pt, info, fault_pte, limit);

  Cycles resolved_cycles = costs.page_fault;  // trap cost, charged by the access engine
  auto charge = [&](Cycles cycles) {
    machine.Charge(cycles);
    resolved_cycles += cycles;
  };

  const bool file_backed = (fault_pte.flags & kPteFileBacked) != 0;
  std::array<FrameId, kMaxFaultAroundWindow> fresh;
  uint64_t filled = 0;
  const auto release_filled = [&]() {
    for (uint64_t i = 0; i < filled; ++i) {
      machine.frames().Release(fresh[i]);
    }
  };
  for (uint64_t i = 0; i < window.pages; ++i) {
    const uint64_t va = window.va + i * kPageSize;
    Result<FrameId> frame = Error{Code::kErrNoMem, "unfilled"};
    if (!file_backed) {
      frame = machine.frames().Allocate();  // zero-fill demand page
      if (frame.ok()) {
        charge(costs.frame_alloc);
      }
    } else {
      const Uproc::FileMapping* mapping = uproc.FileMappingAt(va);
      if (mapping == nullptr) {
        release_filled();
        return Error{Code::kFaultNotMapped, "file-backed reservation without a mapping"};
      }
      const uint64_t page_index = mapping->start_page + (va - mapping->va) / kPageSize;
      frame = kernel.page_cache().GetFrame(mapping->inode, page_index);
      if (frame.ok() && info.is_write) {
        // Write fault on a private file mapping: break the share now — filling a read-only
        // cache mapping would only bounce straight into a second (CoW) fault.
        auto copy = machine.frames().AllocateForCopy();
        if (copy.ok()) {
          charge(costs.frame_alloc + costs.page_copy);
          machine.frames().frame(*copy).CopyFrom(machine.frames().frame(*frame));
          machine.frames().Release(*frame);
          frame = *copy;
        } else {
          machine.frames().Release(*frame);
          frame = copy.error();
        }
      }
    }
    if (!frame.ok()) {
      if (i == 0) {
        release_filled();  // nothing filled yet: the contract is explicit, not incidental
        return frame.error();
      }
      window.pages = i;  // degrade: the speculative tail stays reserved for a later fault
      break;
    }
    fresh[filled++] = *frame;
  }

  uint32_t final_flags = window.seg_flags;
  if (file_backed && !info.is_write) {
    // Clean cache pages map read-only + CoW: the cache's own reference keeps the refcount
    // above one, so the first write takes the ordinary copy-out break.
    final_flags = (window.seg_flags & ~kPteWrite) | kPteCow;
  }
  charge(window.pages == 1 ? costs.pte_update : costs.pte_update_batched);
  pt.RemapRange(window.va, std::span<const FrameId>(fresh.data(), window.pages), final_flags,
                /*extra_flags_after_first=*/kPteFaultAround);
  kernel.stats().pages_demand_filled += window.pages;
  kernel.stats().fault_cycles += resolved_cycles;
  FaultAroundCommit(kernel, uproc, window);
  return OkResult();
}

Result<void> ResolveCowWriteWindow(KernelCore& kernel, Uproc& uproc, PageTable& pt,
                                   const PageFaultInfo& info, const Pte& fault_pte) {
  Machine& machine = kernel.machine();
  const CostModel& costs = kernel.costs();
  const uint32_t limit = FaultAroundBegin(kernel, uproc, info);
  FaultWindow window = FaultAroundScan(kernel, uproc, pt, info, fault_pte, limit);

  Cycles resolved_cycles = costs.page_fault;  // trap cost, charged by the access engine
  auto charge = [&](Cycles cycles) {
    machine.Charge(cycles);
    resolved_cycles += cycles;
  };

  KernelStats& stats = kernel.stats();
  if (window.shared) {
    std::array<FrameId, kMaxFaultAroundWindow> fresh;
    if (!machine.frames().AllocateForCopy(std::span(fresh.data(), window.pages)).ok()) {
      window.pages = 1;
      UF_RETURN_IF_ERROR(machine.frames().AllocateForCopy(std::span(fresh.data(), 1)));
    }
    std::array<FrameId, kMaxFaultAroundWindow> old;
    for (uint64_t i = 0; i < window.pages; ++i) {
      Pte* page = pt.LookupMutable(info.va + i * kPageSize);
      charge(costs.frame_alloc + costs.page_copy);
      machine.frames().frame(fresh[i]).CopyFrom(machine.frames().frame(page->frame));
      old[i] = page->frame;
    }
    charge(window.pages == 1 ? costs.pte_update : costs.pte_update_batched);
    pt.RemapRange(info.va, std::span<const FrameId>(fresh.data(), window.pages),
                  window.seg_flags, /*extra_flags_after_first=*/kPteFaultAround);
    for (uint64_t i = 0; i < window.pages; ++i) {
      machine.frames().Release(old[i]);
    }
    stats.pages_copied_on_fault += window.pages;
  } else {
    charge(window.pages == 1 ? costs.pte_update : costs.pte_update_batched);
    pt.SetFlagsRange(info.va, window.pages, window.seg_flags,
                     /*extra_flags_after_first=*/kPteFaultAround);
    stats.pages_reclaimed_in_place += window.pages;
  }
  stats.fault_cycles += resolved_cycles;
  FaultAroundCommit(kernel, uproc, window);
  return OkResult();
}

}  // namespace ufork
