#include "src/kernel/fault_around.h"

#include <algorithm>

namespace ufork {
namespace {

// Clears still-set speculative markers in [lo, hi) and returns how many there were. A marker
// that survived until now was a speculative resolution nobody touched — a wasted copy.
uint64_t SweepStaleMarkers(PageTable& pt, uint64_t lo, uint64_t hi) {
  uint64_t stale = 0;
  for (uint64_t va = lo; va < hi; va += kPageSize) {
    Pte* pte = pt.LookupMutable(va);
    if (pte != nullptr && (pte->flags & kPteFaultAround) != 0) {
      pte->flags &= ~kPteFaultAround;
      ++stale;
    }
  }
  return stale;
}

uint32_t ClampedMaxWindow(const FaultAroundConfig& config) {
  return std::clamp<uint32_t>(config.max_window, 1, kMaxFaultAroundWindow);
}

}  // namespace

uint32_t FaultAroundBegin(KernelCore& kernel, Uproc& uproc, const PageFaultInfo& info) {
  const FaultAroundConfig& config = kernel.config().fault_around;
  const uint32_t max_window = ClampedMaxWindow(config);
  if (max_window <= 1) {
    return 1;
  }
  FaultAroundState& state = uproc.fault_around;
  // Audit the previous window: markers still set were wasted speculative copies. Swept for
  // fixed windows too, so the waste counter stays meaningful across the whole sweep matrix.
  const uint64_t wasted = SweepStaleMarkers(*info.page_table, state.spec_lo, state.spec_hi);
  kernel.stats().speculative_pages_wasted += wasted;
  state.spec_lo = 0;
  state.spec_hi = 0;
  uint32_t limit = max_window;
  if (config.adaptive) {
    if (wasted > 0) {
      state.window = std::max<uint32_t>(1, state.window / 2);
    } else if (state.next_va != 0 && info.va == state.next_va) {
      // The previous window was fully consumed and the storm marched straight past its end.
      state.window = std::min(state.window * 2, max_window);
    }
    limit = std::min(state.window, max_window);
  }
  // Pages the faulting access itself spans are guaranteed to be touched — resolving them now
  // is pure win, so the span may raise the window above the adaptive value.
  const uint64_t span_end = std::max(info.access_end, info.va + 1);
  const uint64_t span_pages = (span_end - info.va + kPageSize - 1) / kPageSize;
  return std::max<uint32_t>(limit, std::min<uint64_t>(span_pages, max_window));
}

FaultWindow FaultAroundScan(KernelCore& kernel, Uproc& uproc, PageTable& pt,
                            const PageFaultInfo& info, const Pte& fault_pte, uint32_t limit) {
  const FrameAllocator& frames = kernel.machine().frames();
  FaultWindow window;
  window.va = info.va;
  window.shared = frames.RefCount(fault_pte.frame) > 1;
  const uint64_t offset = uproc.OffsetOf(info.va);
  window.seg_flags = kernel.SegmentFlagsAt(offset);
  // The window never crosses the segment boundary: resolved permissions change there, and so
  // does the pending state worth batching.
  const uint64_t segment_end = uproc.base + kernel.layout().SegmentEndOf(offset);
  const uint64_t max_end = std::min(info.va + uint64_t{limit} * kPageSize, segment_end);
  for (uint64_t va = info.va + kPageSize; va < max_end; va += kPageSize) {
    const Pte* next = pt.LookupMutable(va);
    if (next == nullptr || next->flags != fault_pte.flags ||
        (frames.RefCount(next->frame) > 1) != window.shared) {
      break;
    }
    ++window.pages;
  }
  return window;
}

void FaultAroundCommit(KernelCore& kernel, Uproc& uproc, const FaultWindow& window) {
  KernelStats& stats = kernel.stats();
  ++stats.faults_taken;
  stats.pages_resolved_by_faultaround += window.pages - 1;
  if (ClampedMaxWindow(kernel.config().fault_around) <= 1) {
    return;
  }
  FaultAroundState& state = uproc.fault_around;
  state.next_va = window.va + window.pages * kPageSize;
  state.spec_lo = window.va;
  state.spec_hi = state.next_va;
}

void FaultAroundAccountExitWaste(KernelCore& kernel, Uproc& uproc) {
  FaultAroundState& state = uproc.fault_around;
  if (state.spec_hi <= state.spec_lo || uproc.page_table == nullptr) {
    return;
  }
  kernel.stats().speculative_pages_wasted +=
      SweepStaleMarkers(*uproc.page_table, state.spec_lo, state.spec_hi);
  state.spec_lo = 0;
  state.spec_hi = 0;
}

}  // namespace ufork
