// Kernel introspection reports — the ps/pmap of the simulated OS.
//
// Pure string builders over kernel state: a process table, a per-μprocess memory map showing
// which pages are private, CoW-shared, CoPA-armed or MAP_SHARED, and a one-shot kernel summary.
// Used by examples and handy when debugging tests; never consulted by the simulation itself.
#ifndef UFORK_SRC_KERNEL_PROC_REPORT_H_
#define UFORK_SRC_KERNEL_PROC_REPORT_H_

#include <string>

#include "src/kernel/kernel.h"

namespace ufork {

// One line per live/zombie μprocess: pid, ppid, state, region, residency, fork stats.
std::string ProcessTableReport(Kernel& kernel);

// Segment-by-segment map of one μprocess: offsets, permissions, page-state counts.
std::string MemoryMapReport(Kernel& kernel, Pid pid);

// Kernel-wide counters: forks, syscalls, fault-driven copies, relocations, tag discipline.
std::string KernelSummaryReport(Kernel& kernel);

// One line per syscall in the dispatch table: name, cost class, lock domain, invocation count.
// Driven entirely by the declarative table, so a syscall added there shows up here for free.
std::string SyscallTableReport(Kernel& kernel);

}  // namespace ufork

#endif  // UFORK_SRC_KERNEL_PROC_REPORT_H_
