#include "src/kernel/ipc_service.h"

#include <optional>

#include "src/base/log.h"
#include "src/kernel/kernel.h"
#include "src/kernel/pipe.h"
#include "src/kernel/syscall_scope.h"

namespace ufork {

IpcService::IpcService(Kernel& kernel)
    : kernel_(kernel),
      mqueues_(kernel.sched(), kernel.BlockingWakeCycles(), &kernel.fault_injector()) {}

SimTask<Result<std::pair<int, int>>> IpcService::Pipe(Uproc& caller) {
  SyscallScope scope(kernel_, caller, Sys::kPipe);
  {
    auto entered = co_await scope.Enter();
    if (!entered.ok()) {
      co_return entered.error();
    }
  }
  kernel_.machine().Charge(kernel_.costs().pipe_op);
  if (kernel_.fault_injector().ShouldFail(FaultSite::kPipeReserve)) {
    co_return Error{Code::kErrNoMem, "pipe buffer reservation failed (injected)"};
  }
  auto [read_end, write_end] = Pipe::Create(kernel_.sched(), kernel_.BlockingWakeCycles(),
                                            &kernel_.fault_injector());
  auto rfd = caller.fds->Install(std::move(read_end));
  if (!rfd.ok()) {
    co_return rfd.error();
  }
  auto wfd = caller.fds->Install(std::move(write_end));
  if (!wfd.ok()) {
    (void)caller.fds->Close(*rfd);
    co_return wfd.error();
  }
  co_return std::make_pair(*rfd, *wfd);
}

SimTask<Result<int>> IpcService::MqOpen(Uproc& caller, std::string name, bool create) {
  SyscallScope scope(kernel_, caller, Sys::kMqOpen);
  {
    auto entered = co_await scope.Enter();
    if (!entered.ok()) {
      co_return entered.error();
    }
  }
  kernel_.machine().Charge(kernel_.costs().vfs_op);
  auto queue = mqueues_.Open(name, create);
  if (!queue.ok()) {
    co_return queue.error();
  }
  co_return caller.fds->Install(std::move(*queue));
}

// --- POSIX shared memory --------------------------------------------------------------------

SimTask<Result<int>> IpcService::ShmOpen(Uproc& caller, std::string name, uint64_t size) {
  SyscallScope scope(kernel_, caller, Sys::kShmOpen);
  {
    auto entered = co_await scope.Enter();
    if (!entered.ok()) {
      co_return entered.error();
    }
  }
  auto existing = shm_by_name_.find(name);
  if (existing != shm_by_name_.end()) {
    co_return existing->second;
  }
  Machine& machine = kernel_.machine();
  size = AlignUp(size, kPageSize);
  if (size == 0) {
    co_return Error{Code::kErrInval, "zero-sized shared memory object"};
  }
  ShmObject object;
  object.name = name;
  object.size = size;
  for (uint64_t off = 0; off < size; off += kPageSize) {
    auto frame = machine.frames().Allocate();
    if (!frame.ok()) {
      for (const FrameId f : object.frames) {
        machine.frames().Release(f);
      }
      co_return frame.error();
    }
    machine.Charge(kernel_.costs().frame_alloc);
    object.frames.push_back(*frame);
  }
  const int id = next_shm_id_++;
  shm_by_name_.emplace(std::move(name), id);
  shm_objects_.emplace(id, std::move(object));
  co_return id;
}

SimTask<Result<Capability>> IpcService::ShmMap(Uproc& caller, int shm_id) {
  SyscallScope scope(kernel_, caller, Sys::kShmMap);
  {
    auto entered = co_await scope.Enter();
    if (!entered.ok()) {
      co_return entered.error();
    }
  }
  auto it = shm_objects_.find(shm_id);
  if (it == shm_objects_.end()) {
    co_return Error{Code::kErrBadFd, "no such shared memory object"};
  }
  Machine& machine = kernel_.machine();
  ShmObject& object = it->second;
  const uint64_t zone_end =
      caller.base + kernel_.layout().mmap_off() + kernel_.layout().mmap_size();
  if (caller.mmap_cursor + object.size > zone_end) {
    co_return Error{Code::kErrNoMem, "mmap zone exhausted"};
  }
  const uint64_t addr = caller.mmap_cursor;
  for (uint64_t i = 0; i < object.frames.size(); ++i) {
    machine.frames().AddRef(object.frames[i]);
    machine.Charge(kernel_.costs().pte_update);
    // kPteShared exempts these pages from fork-time CoW: MAP_SHARED survives fork shared.
    caller.page_table->Map(addr + i * kPageSize, object.frames[i], kPteRw | kPteShared);
  }
  caller.mmap_cursor += object.size;
  // The window carries data permissions only: capabilities cannot be laundered between
  // μprocesses through shared memory (they would carry foreign-region authority).
  co_return caller.regs.ddc.WithBounds(addr, object.size)
      .WithPermsAnd(~(kPermLoadCap | kPermStoreCap));
}

SimTask<Result<void>> IpcService::ShmUnlink(Uproc& caller, std::string name) {
  SyscallScope scope(kernel_, caller, Sys::kShmUnlink);
  {
    auto entered = co_await scope.Enter();
    if (!entered.ok()) {
      co_return entered.error();
    }
  }
  auto it = shm_by_name_.find(name);
  if (it == shm_by_name_.end()) {
    co_return Error{Code::kErrNoEnt, "no such shared memory object"};
  }
  auto object_it = shm_objects_.find(it->second);
  UF_CHECK(object_it != shm_objects_.end());
  // Drop the registry's reference; frames survive while mappings keep them referenced.
  for (const FrameId frame : object_it->second.frames) {
    kernel_.machine().frames().Release(frame);
  }
  shm_objects_.erase(object_it);
  shm_by_name_.erase(it);
  co_return OkResult();
}

// --- futex ----------------------------------------------------------------------------------

SimTask<Result<void>> IpcService::FutexWait(Uproc& caller, Capability cap, uint64_t va,
                                            uint64_t expected) {
  SyscallScope scope(kernel_, caller, Sys::kFutexWait);
  {
    auto entered = co_await scope.Enter();
    if (!entered.ok()) {
      co_return entered.error();
    }
  }
  auto check = kernel_.ValidateUserBuffer(caller, cap, va, 8, /*is_write=*/false);
  if (!check.ok()) {
    co_return check.error();
  }
  // Load the word through the caller's capability (CoW/CoPA resolve underneath), then key the
  // queue by the *physical* location so MAP_SHARED futexes pair up across μprocesses.
  auto value = kernel_.machine().LoadScalar<uint64_t>(*caller.page_table, cap, va);
  if (!value.ok()) {
    co_return value.error();
  }
  const std::optional<Pte> pte = caller.page_table->Lookup(va);
  if (!pte.has_value()) {
    // Guest-reachable (a capability can outlive the mapping it was derived over), so this is a
    // fault delivered to the caller, not a kernel invariant.
    co_return Error{Code::kFaultNotMapped, "futex word on unmapped page"};
  }
  const auto key = std::make_pair(pte->frame, va % kPageSize);
  if (*value != expected) {
    co_return Error{Code::kErrAgain, "futex value changed"};
  }
  auto& queue = futexes_[key];
  if (queue == nullptr) {
    queue = std::make_unique<WaitQueue>(kernel_.sched());
    queue->set_resume_delay(kernel_.costs().sched_wakeup);
  }
  WaitQueue& wq = *queue;
  scope.Leave();  // never block holding the domain lock
  co_await wq.Wait();
  co_return OkResult();
}

SimTask<Result<uint64_t>> IpcService::FutexWake(Uproc& caller, Capability cap, uint64_t va,
                                                uint64_t n) {
  SyscallScope scope(kernel_, caller, Sys::kFutexWake);
  {
    auto entered = co_await scope.Enter();
    if (!entered.ok()) {
      co_return entered.error();
    }
  }
  auto check = kernel_.ValidateUserBuffer(caller, cap, va, 8, /*is_write=*/false);
  if (!check.ok()) {
    co_return check.error();
  }
  const std::optional<Pte> pte = caller.page_table->Lookup(va);
  if (!pte.has_value()) {
    co_return Error{Code::kFaultNotMapped, "futex word on unmapped page"};
  }
  auto it = futexes_.find(std::make_pair(pte->frame, va % kPageSize));
  uint64_t woken = 0;
  if (it != futexes_.end()) {
    kernel_.machine().Charge(kernel_.costs().sched_wakeup);
    woken = it->second->Wake(n);
  }
  co_return woken;
}

}  // namespace ufork
