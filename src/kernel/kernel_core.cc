#include "src/kernel/kernel_core.h"

#include <algorithm>

#include "src/base/log.h"
#include "src/kernel/kernel.h"
#include "src/kernel/page_cache.h"

namespace ufork {
namespace {

// Virtual address map of the single address space:
//   [kKernelBase, kKernelTop)  kernel text/data (source of sealed syscall entries)
//   [kUserBase,   kUserTop)    μprocess regions, handed out by the AddressSpace allocator
constexpr uint64_t kKernelBase = 256 * kMiB;
constexpr uint64_t kKernelTop = 1 * kGiB;
constexpr uint64_t kUserBase = 4 * kGiB;
constexpr uint64_t kUserTop = 1ULL << 47;

// μprocess regions are aligned generously so capability-representable bounds (see
// compressed_cap.h) hold for whole-region capabilities.
constexpr uint64_t kRegionAlign = 2 * kMiB;

}  // namespace

const char* IsolationLevelName(IsolationLevel level) {
  switch (level) {
    case IsolationLevel::kNone:
      return "none";
    case IsolationLevel::kFault:
      return "fault";
    case IsolationLevel::kFull:
      return "full";
  }
  return "?";
}

const char* ForkStrategyName(ForkStrategy strategy) {
  switch (strategy) {
    case ForkStrategy::kCopa:
      return "CoPA";
    case ForkStrategy::kCoa:
      return "CoA";
    case ForkStrategy::kFull:
      return "FullCopy";
    case ForkStrategy::kUnsafeCow:
      return "UnsafeCoW";
  }
  return "?";
}

KernelCore::KernelCore(const KernelConfig& config, std::unique_ptr<ForkBackend> backend)
    : config_(config),
      policy_(IsolationPolicy::FromLevel(config.isolation)),
      layout_(config.layout),
      sched_(config.cores, ShardConfig{config.host_shards, config.shard_epoch_quantum}),
      machine_(MachineConfig{config.phys_mem_bytes / kPageSize, config.costs}),
      address_space_(kUserBase, kUserTop),
      locks_(sched_, config.lock_mode),
      backend_(std::move(backend)),
      admission_(sched_, machine_.frames(), stats_, config.overload) {
  UF_CHECK_MSG(backend_ != nullptr, "a ForkBackend is required");
  if (config_.host_shards > 1) {
    // Real host threads need real mutual exclusion: kUncontended models a lock-free kernel in
    // virtual time, which is fine single-threaded but unsound across workers.
    UF_CHECK_MSG(config_.lock_mode != LockMode::kUncontended,
                 "host_shards > 1 requires a lock mode with mutual exclusion");
    host_locks_ = std::make_unique<HostLockDomainSet>(config_.lock_mode);
    stat_concurrency_ = std::make_unique<StatCounter::ConcurrentModeHolder>();
    machine_.frames().EnableSharding(config_.host_shards);
    address_space_.EnableSharding();
    shard_next_pid_.resize(static_cast<size_t>(config_.host_shards));
    for (int shard = 0; shard < config_.host_shards; ++shard) {
      shard_next_pid_[static_cast<size_t>(shard)] = shard + 1;
    }
    sched_.AddBarrierHook([this] { DrainCrossShardKills(); });
  }
  machine_.set_cycle_sink([this](Cycles c) { sched_.Charge(c); });
  machine_.set_fault_resolver([this](const PageFaultInfo& info) {
    // Frames the resolver copies into are charged to the faulting μprocess's tenant (the
    // syscall-entry stamp may belong to a different μprocess on another core). The lookup
    // is host-side only, so it is gated on caps actually being in force.
    if (machine_.frames().tenant_caps_active()) [[unlikely]] {
      Uproc* faulter = backend_->private_page_tables() ? UprocByPageTable(info.page_table)
                                                       : UprocByAddress(info.va);
      if (faulter != nullptr) {
        machine_.frames().set_current_tenant(faulter->tenant);
      }
    }
    return backend_->ResolveFault(*this, info);
  });
  sched_.set_context_switch_hook([this](SimThread* prev, SimThread* next) {
    Uproc* prev_proc = prev != nullptr ? static_cast<Uproc*>(prev->context()) : nullptr;
    Uproc* next_proc = next != nullptr ? static_cast<Uproc*>(next->context()) : nullptr;
    return backend_->ContextSwitchCost(costs(), prev_proc, next_proc);
  });
  if (config_.aslr_seed.has_value()) {
    address_space_.EnableAslr(*config_.aslr_seed);
  }
  machine_.frames().set_fault_injector(&fault_injector_);
  address_space_.set_fault_injector(&fault_injector_);
  page_cache_ = std::make_unique<PageCache>(machine_);
  page_cache_->set_fault_injector(&fault_injector_);
  // Backpressure drain: every last-reference frame release re-evaluates the watermarks and
  // wakes parked forkers once the pool clears. Installed unconditionally — tests and benches
  // arm the controller at runtime via admission().Configure() — and free when idle: the hook
  // charges nothing and OnFramesFreed early-outs unless forkers are actually parked.
  machine_.frames().set_release_hook([this] { admission_.OnFramesFreed(); });
  // Last: the service's constructor installs the machine VA forwarder and validates the
  // compaction configuration against host_shards.
  compaction_ = std::make_unique<CompactionService>(*this);
}

KernelCore::~KernelCore() = default;

Kernel& KernelCore::AsKernel() {
  // KernelCore's constructor is protected and Kernel is its only subclass.
  return static_cast<Kernel&>(*this);
}

// --- μprocess lookup -----------------------------------------------------------------------

Uproc* KernelCore::FindUproc(Pid pid) {
  std::shared_lock lk(table_mu_);
  return FindUprocLocked(pid);
}

Uproc* KernelCore::FindUprocLocked(Pid pid) {
  auto it = uprocs_.find(pid);
  return it == uprocs_.end() ? nullptr : it->second.get();
}

Uproc* KernelCore::UprocByAddress(uint64_t va) {
  const auto base = address_space_.RegionContaining(va);
  if (!base.has_value()) {
    return nullptr;
  }
  std::shared_lock lk(table_mu_);
  auto owner = region_by_base_.find(*base);
  if (owner == region_by_base_.end()) {
    return nullptr;
  }
  Uproc* uproc = FindUprocLocked(owner->second);
  return uproc != nullptr && uproc->state == Uproc::State::kRunning ? uproc : nullptr;
}

Uproc* KernelCore::UprocByPageTable(const PageTable* pt) {
  std::shared_lock lk(table_mu_);
  auto it = pt_owners_.find(pt);
  return it == pt_owners_.end() ? nullptr : FindUprocLocked(it->second);
}

Uproc& KernelCore::CurrentUproc() {
  Uproc* uproc = static_cast<Uproc*>(sched_.Current().context());
  UF_CHECK_MSG(uproc != nullptr, "current thread is not a μprocess thread");
  return *uproc;
}

std::vector<Pid> KernelCore::LivePids() const {
  std::vector<Pid> pids;
  std::shared_lock lk(table_mu_);
  for (const auto& [pid, uproc] : uprocs_) {
    if (uproc->state == Uproc::State::kRunning) {
      pids.push_back(pid);
    }
  }
  return pids;
}

std::vector<Pid> KernelCore::AllPids() const {
  std::vector<Pid> pids;
  std::shared_lock lk(table_mu_);
  pids.reserve(uprocs_.size());
  for (const auto& [pid, uproc] : uprocs_) {
    pids.push_back(pid);
  }
  return pids;
}

// --- segment permissions -------------------------------------------------------------------

uint32_t KernelCore::SegmentFlagsAt(uint64_t offset) const {
  if (offset >= layout_.text_off() && offset < layout_.text_off() + layout_.text_size()) {
    return kPteRead | kPteExec;
  }
  if (offset >= layout_.rodata_off() &&
      offset < layout_.rodata_off() + layout_.rodata_size()) {
    return kPteRead;
  }
  return kPteRw;  // GOT, data, heap, stack, tls, mmap
}

// --- μprocess construction ------------------------------------------------------------------

Pid KernelCore::NextPid() {
  if (shard_next_pid_.empty()) {
    return next_pid_++;  // historical sequential pids at 1 shard
  }
  // Per-shard pid strides: the allocating shard's sequence depends only on its own
  // deterministic execution, so pids — and the ShardOfPid placement derived from them —
  // replay identically regardless of how the host interleaves the workers. Boot-time spawns
  // (no shard context yet) draw from shard 0's stride.
  const int shard = std::max(0, sched_.CurrentShardIndex());
  Pid& next = shard_next_pid_[static_cast<size_t>(shard)];
  const Pid pid = next;
  next += static_cast<Pid>(shard_next_pid_.size());
  return pid;
}

Uproc& KernelCore::CreateUprocShell(std::string name, Pid parent) {
  std::unique_lock lk(table_mu_);
  const Pid pid = NextPid();
  auto uproc = std::make_unique<Uproc>(pid, sched_);
  uproc->name = std::move(name);
  uproc->parent_pid = parent;
  Uproc& ref = *uproc;
  uprocs_.emplace(pid, std::move(uproc));
  if (Uproc* parent_proc = FindUprocLocked(parent)) {
    parent_proc->children.push_back(pid);
    ref.tenant = parent_proc->tenant;  // the μprocess tree bills to one tenant (§4.10)
  }
  return ref;
}

void KernelCore::DestroyUprocShell(Uproc& uproc) {
  UF_CHECK_MSG(uproc.thread == kInvalidThread,
               "DestroyUprocShell is only for shells whose thread never started");
  std::unique_lock lk(table_mu_);
  if (Uproc* parent = FindUprocLocked(uproc.parent_pid)) {
    auto& kids = parent->children;
    kids.erase(std::remove(kids.begin(), kids.end(), uproc.pid()), kids.end());
  }
  uprocs_.erase(uproc.pid());
}

void KernelCore::EraseUproc(Pid pid) {
  std::unique_lock lk(table_mu_);
  uprocs_.erase(pid);
}

void KernelCore::QueueCrossShardKill(Pid pid) {
  std::lock_guard<std::mutex> lk(kill_mu_);
  pending_cross_shard_kills_.push_back(pid);
}

void KernelCore::DrainCrossShardKills() {
  std::vector<Pid> kills;
  {
    std::lock_guard<std::mutex> lk(kill_mu_);
    kills.swap(pending_cross_shard_kills_);
  }
  if (kills.empty()) {
    return;
  }
  UF_CHECK_MSG(cross_shard_kill_ != nullptr,
               "cross-shard kill queued but no handler installed");
  // Process in pid order: the arrival order across shards follows host timing, the set does
  // not — sorting keeps the teardown sequence replayable.
  std::sort(kills.begin(), kills.end());
  for (const Pid pid : kills) {
    cross_shard_kill_(pid);
  }
}

Result<void> KernelCore::AllocateUprocMemory(Uproc& uproc, bool private_page_table) {
  uproc.size = layout_.TotalSize();
  if (private_page_table) {
    // MAS / VM-clone: identical layout in a private address space — every process sees the
    // same virtual base, which is why no relocation is needed (and why it is not a SAS).
    uproc.base = kUserBase;
    uproc.owned_pt = std::make_unique<PageTable>();
    uproc.page_table = uproc.owned_pt.get();
    std::unique_lock lk(table_mu_);
    pt_owners_[uproc.page_table] = uproc.pid();
  } else {
    UF_ASSIGN_OR_RETURN(uproc.base,
                        address_space_.AllocateRegion(uproc.size, kRegionAlign));
    uproc.page_table = &shared_pt_;
    if (config_.demand_paging) {
      // The region's VA is granted now; frames arrive on first touch (§4.12). Pure
      // address-space accounting — population state lives in the page table.
      address_space_.MarkReserveOnly(uproc.base);
    }
    std::unique_lock lk(table_mu_);
    region_by_base_[uproc.base] = uproc.pid();
  }
  uproc.mmap_cursor = uproc.base + layout_.mmap_off();
  return OkResult();
}

Result<void> KernelCore::MapFreshImage(Uproc& uproc) {
  const uint64_t image_bytes = layout_.mmap_off();
  // sbrk's ceiling is the build-time static heap (§4.2); the break starts at the top in both
  // modes — the whole heap is backed (eagerly or by reservation) until the guest shrinks it.
  uproc.heap_break = uproc.base + layout_.heap_off() + layout_.heap_size();
  if (!config_.demand_paging) {
    // All segments except the on-demand mmap zone are mapped eagerly with zero frames — a
    // static unikernel-style image with the build-time-configured static heap (§4.2).
    for (uint64_t off = 0; off < image_bytes; off += kPageSize) {
      UF_ASSIGN_OR_RETURN(const FrameId frame, machine_.frames().Allocate());
      machine_.Charge(costs().frame_alloc + costs().pte_dup);
      uproc.page_table->Map(uproc.base + off, frame, SegmentFlagsAt(off));
    }
    return OkResult();
  }
  // Demand paging (§4.12): text/rodata/GOT/data stay eager — the loader writes them before
  // the first instruction runs — while heap, stack and TLS become frame-less kPteNotPresent
  // reservations zero-filled on first touch. The lowest stack page(s) are left entirely
  // unmapped: the guard gap, where a touch has nothing to fill and contains as SIGSEGV.
  const uint64_t eager_bytes = layout_.heap_off();
  for (uint64_t off = 0; off < eager_bytes; off += kPageSize) {
    UF_ASSIGN_OR_RETURN(const FrameId frame, machine_.frames().Allocate());
    machine_.Charge(costs().frame_alloc + costs().pte_dup);
    uproc.page_table->Map(uproc.base + off, frame, SegmentFlagsAt(off));
  }
  const uint64_t guard_lo = layout_.stack_off();
  const uint64_t guard_hi = guard_lo + kStackGuardPages * kPageSize;
  for (uint64_t off = eager_bytes; off < image_bytes; off += kPageSize) {
    if (off >= guard_lo && off < guard_hi) {
      continue;  // stack guard gap
    }
    machine_.Charge(costs().pte_dup);
    uproc.page_table->Map(uproc.base + off, kInvalidFrame, kPteNotPresent | kPteZeroFill);
  }
  return OkResult();
}

void KernelCore::InstallArchCaps(Uproc& uproc) {
  const uint32_t data_perms = kPermLoad | kPermStore | kPermLoadCap | kPermStoreCap |
                              kPermGlobal;
  if (policy_.confine_caps) {
    uproc.regs.ddc = Capability::Root(uproc.base, uproc.size, data_perms);
  } else {
    // Isolation disabled (R4): ambient authority over the whole user area.
    uproc.regs.ddc = Capability::Root(kUserBase, kUserTop - kUserBase, data_perms);
  }
  uproc.regs.pcc = Capability::Root(uproc.base + layout_.text_off(), layout_.text_size(),
                                    kPermLoad | kPermExecute);
  uproc.regs.csp = uproc.regs.ddc
                       .WithBounds(uproc.base + layout_.stack_off(), layout_.stack_size())
                       .WithAddress(uproc.base + layout_.stack_off() + layout_.stack_size());
  // Sealed kernel entry: the only way into kernel code, no trap required (§4.4).
  uproc.syscall_sentry =
      Capability::Root(kKernelBase, kKernelTop - kKernelBase, kPermLoad | kPermExecute)
          .AsSentry();
}

void KernelCore::StartUprocThread(Uproc& uproc, UprocEntry entry, int pinned_core) {
  auto wrapper = [](Kernel& kernel, Uproc& proc, UprocEntry fn) -> SimTask<void> {
    co_await fn(kernel, proc);
    // The entry returned without calling exit(): POSIX main() return implies exit(0).
    if (proc.state == Uproc::State::kRunning) {
      co_await kernel.SysExit(proc, 0);
    }
  };
  // Deterministic placement (DESIGN.md §4.11): the μprocess is pinned for life to the shard
  // keyed by its pid. An explicit core pin wins — the scheduler derives the shard from the
  // core partition in that case.
  const int shard_hint =
      pinned_core >= 0 ? -1 : ShardOfPid(uproc.pid(), sched_.num_shards());
  const ThreadId tid = sched_.Spawn(wrapper(AsKernel(), uproc, std::move(entry)), uproc.name,
                                    pinned_core, shard_hint);
  uproc.thread = tid;
  uproc.threads.assign(1, tid);
  if (uproc.thread_exit_wait == nullptr) {
    uproc.thread_exit_wait = std::make_unique<WaitQueue>(sched_);
  }
  // Attach the uproc to the thread control block for CurrentUproc() and context-switch
  // pricing. Spawn only enqueues, so the thread cannot have observed a null context.
  sched_.SetThreadContext(tid, &uproc);
}

Result<Pid> KernelCore::Spawn(UprocEntry entry, std::string name, int pinned_core) {
  Uproc& uproc = CreateUprocShell(std::move(name), kInvalidPid);
  auto constructed = [&]() -> Result<void> {
    UF_RETURN_IF_ERROR(AllocateUprocMemory(uproc, backend_->private_page_tables()));
    UF_RETURN_IF_ERROR(MapFreshImage(uproc));
    return OkResult();
  }();
  if (!constructed.ok()) {
    ReleaseUprocMemory(uproc);
    DestroyUprocShell(uproc);
    return constructed.error();
  }
  InstallArchCaps(uproc);
  uproc.fds = std::make_shared<FdTable>();
  StartUprocThread(uproc, std::move(entry), pinned_core);
  return uproc.pid();
}

void KernelCore::ReleaseUprocMemory(Uproc& uproc) {
  if (uproc.page_table == nullptr) {
    return;
  }
  // SIGKILL aimed at a mid-move region: roll the move back on this thread so teardown (and
  // the barrier waiters behind it) never see the region split across two bases.
  compaction_->CancelMoveFor(uproc);
  const bool sas_region = uproc.owned_pt == nullptr;
  std::vector<uint64_t> pages;
  uproc.page_table->ForEachMapped(uproc.base, uproc.base + uproc.size,
                                  [&pages](uint64_t va, const Pte&) { pages.push_back(va); });
  bool frames_still_shared = false;
  for (uint64_t va : pages) {
    const FrameId frame = uproc.page_table->Unmap(va);
    if (frame == kInvalidFrame) {
      continue;  // not-present reservation: no frame ever existed
    }
    machine_.frames().Release(frame);
    frames_still_shared |= machine_.frames().IsLive(frame);
  }
  uproc.file_mappings.clear();
  if (uproc.owned_pt != nullptr) {
    std::unique_lock lk(table_mu_);
    pt_owners_.erase(uproc.owned_pt.get());
    lk.unlock();
    uproc.owned_pt.reset();
  } else if (frames_still_shared && uproc.forks_performed > 0) {
    // A fork parent exiting while children still share its frames: those frames may contain
    // capabilities pointing into THIS region, and the relocation scanner resolves them through
    // AddressSpace::RegionContaining. Keep the region reserved (tombstone) so relocation stays
    // well-defined; reclaiming such regions is the compaction future work of §6.
    ++stats_.regions_tombstoned;
  } else if (config_.quarantine_freed_regions) {
    // Cornucopia-style: the freed range is unavailable for reuse — and invisible to the
    // relocation scanner — until the revocation sweep clears every capability bounded inside
    // it (DESIGN.md §4.13). Tombstoned regions above are exempt: their capabilities are still
    // live fork-partner state that relocation must keep resolving.
    address_space_.QuarantineRegion(uproc.base);
    stats_.quarantined_bytes += uproc.size;
  } else {
    address_space_.FreeRegion(uproc.base);
  }
  if (sas_region) {
    // Drop the region index entry — the owner is exiting, and UprocByAddress only ever
    // resolves to kRunning owners (tombstoned regions stay reserved in the address space, so
    // their bases cannot be reissued to a new μprocess).
    std::unique_lock lk(table_mu_);
    region_by_base_.erase(uproc.base);
  }
  uproc.page_table = nullptr;
  uproc.fault_around = {};  // speculative spans refer to unmapped pages now
  // Region churn is the compaction trigger's sampling point, exactly as frame release is the
  // admission controller's: every hole this teardown opened is visible here.
  compaction_->OnRegionChurn();
}

void KernelCore::RebaseRegionIndex(uint64_t old_base, uint64_t new_base, Pid pid) {
  std::unique_lock lk(table_mu_);
  auto it = region_by_base_.find(old_base);
  if (it != region_by_base_.end() && it->second == pid) {
    region_by_base_.erase(it);
  }
  region_by_base_[new_base] = pid;
}

// --- frame-accounting invariant -------------------------------------------------------------

Result<void> KernelCore::CheckFrameAccounting() const {
  // Expected refcount per frame: PTE mappings across every page table, plus kernel-held
  // references (shm objects registered by Kernel). The 48-bit walk is sparse, so its cost is
  // O(mapped pages), not O(address space).
  constexpr uint64_t kVaTop = 1ULL << 48;
  std::map<FrameId, uint32_t> expected;
  const auto count_pt = [&expected](const PageTable& pt) {
    pt.ForEachMapped(0, kVaTop, [&expected](uint64_t, const Pte& pte) {
      if (PtePopulated(pte)) {  // not-present reservations hold no frame
        ++expected[pte.frame];
      }
    });
  };
  count_pt(shared_pt_);
  {
    std::shared_lock lk(table_mu_);
    for (const auto& [pid, uproc] : uprocs_) {
      if (uproc->owned_pt != nullptr) {
        count_pt(*uproc->owned_pt);
      }
    }
  }
  if (kernel_frame_refs_) {
    kernel_frame_refs_([&expected](FrameId frame) { ++expected[frame]; });
  }
  page_cache_->ForEachFrame([&expected](FrameId frame) { ++expected[frame]; });

  const FrameAllocator& frames = machine_.frames();
  Result<void> verdict = OkResult();
  uint64_t live_slots = 0;
  frames.ForEachLive([&](FrameId id, uint32_t refcount) {
    ++live_slots;
    if (!verdict.ok()) {
      return;
    }
    auto it = expected.find(id);
    const uint32_t mapped = it == expected.end() ? 0 : it->second;
    if (mapped != refcount) {
      verdict = Error{Code::kErrInval,
                      "frame " + std::to_string(id) + " refcount " +
                          std::to_string(refcount) + " but " + std::to_string(mapped) +
                          " references exist" + (mapped == 0 ? " (leaked frame)" : "")};
    }
    if (it != expected.end()) {
      expected.erase(it);
    }
  });
  if (!verdict.ok()) {
    return verdict;
  }
  if (!expected.empty()) {
    const auto& [id, refs] = *expected.begin();
    return Error{Code::kErrInval, "frame " + std::to_string(id) + " has " +
                                      std::to_string(refs) +
                                      " references but is not live (dangling mapping)"};
  }
  if (live_slots != frames.frames_in_use()) {
    return Error{Code::kErrInval,
                 "frames_in_use " + std::to_string(frames.frames_in_use()) +
                     " != live slot count " + std::to_string(live_slots)};
  }
  return OkResult();
}

void KernelCore::CheckFrameAccountingOrDie() const {
  const Result<void> result = CheckFrameAccounting();
  if (!result.ok()) [[unlikely]] {
    const std::string msg = "frame accounting violated: " + result.error().message;
    UF_CHECK_MSG(false, msg.c_str());
  }
}

// --- user-memory access ---------------------------------------------------------------------

Result<void> KernelCore::ValidateUserBuffer(Uproc& caller, const Capability& cap, uint64_t va,
                                            uint64_t len, bool is_write) {
  // The hardware enforces the capability check regardless of policy when the transfer happens;
  // the kernel-side validation models the explicit checks of §4.4 (third principle).
  if (!policy_.validate_args) {
    return OkResult();
  }
  machine_.Charge(costs().validation_check);
  UF_RETURN_IF_ERROR(cap.CheckAccess(va, len, is_write ? kPermStore : kPermLoad));
  const bool confined =
      caller.ContainsVa(va) && (len == 0 || caller.ContainsVa(va + len - 1));
  if (policy_.confine_caps && !confined) {
    return Error{Code::kErrAccess, "buffer outside μprocess region"};
  }
  return OkResult();
}

SimTask<Result<void>> KernelCore::CopyFromUser(Uproc& caller, const Capability& cap,
                                               uint64_t va, std::span<std::byte> out) {
  if (policy_.tocttou_protect) {
    // Copy user memory into the kernel before any check-use sequence (§4.4, fourth principle).
    machine_.Charge(costs().TocttouCopy(out.size()));
    ++stats_.tocttou_copies;
  }
  co_return machine_.Load(*caller.page_table, cap, va, out);
}

SimTask<Result<void>> KernelCore::CopyToUser(Uproc& caller, const Capability& cap, uint64_t va,
                                             std::span<const std::byte> in) {
  if (policy_.tocttou_protect) {
    machine_.Charge(costs().TocttouCopy(in.size()));
    ++stats_.tocttou_copies;
  }
  co_return machine_.Store(*caller.page_table, cap, va, in);
}

// --- metrics --------------------------------------------------------------------------------

uint64_t KernelCore::ReservedBytes() const {
  uint64_t pages = shared_pt_.not_present_pages();
  std::shared_lock lk(table_mu_);
  for (const auto& [pid, uproc] : uprocs_) {
    if (uproc->owned_pt != nullptr) {
      pages += uproc->owned_pt->not_present_pages();
    }
  }
  return pages * kPageSize;
}

uint64_t KernelCore::UprocPssBytes(const Uproc& uproc) const {
  if (uproc.page_table == nullptr) {
    return 0;
  }
  uint64_t pss = 0;
  const FrameAllocator& frames = machine_.frames();
  uproc.page_table->ForEachMapped(
      uproc.base, uproc.base + uproc.size, [&](uint64_t, const Pte& pte) {
        if (PtePopulated(pte)) {
          pss += kPageSize / frames.RefCount(pte.frame);
        }
      });
  return pss;
}

uint64_t KernelCore::UprocUssBytes(const Uproc& uproc) const {
  if (uproc.page_table == nullptr) {
    return 0;
  }
  uint64_t uss = 0;
  const FrameAllocator& frames = machine_.frames();
  uproc.page_table->ForEachMapped(
      uproc.base, uproc.base + uproc.size, [&](uint64_t, const Pte& pte) {
        if (PtePopulated(pte) && frames.RefCount(pte.frame) == 1) {
          uss += kPageSize;
        }
      });
  return uss + backend_->ExtraResidencyBytes(*this, uproc);
}

}  // namespace ufork
