// POSIX pipes over virtual-time wait queues.
//
// Pipes are the IPC primitive the paper's Unixbench Context1 benchmark measures (§5.2): a
// 64 KiB ring buffer with blocking reads/writes, EOF once all writers close, and EPIPE once all
// readers close. Each end is an OpenFile whose descriptor references are counted so fork/dup
// keep EOF semantics correct.
#ifndef UFORK_SRC_KERNEL_PIPE_H_
#define UFORK_SRC_KERNEL_PIPE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/base/fault_injection.h"
#include "src/base/status.h"
#include "src/kernel/fd.h"
#include "src/sched/scheduler.h"

namespace ufork {

inline constexpr uint64_t kPipeCapacity = 64 * 1024;

class Pipe {
 public:
  Pipe(Scheduler& sched, Cycles wake_cost, FaultInjector* injector = nullptr)
      : sched_(sched),
        wake_cost_(wake_cost),
        injector_(injector),
        readers_wq_(sched),
        writers_wq_(sched),
        buffer_(kPipeCapacity) {
    readers_wq_.set_resume_delay(wake_cost);
    writers_wq_.set_resume_delay(wake_cost);
  }

  // Creates the pair of ends, each installed as refcount-1 descriptions. wake_cost is the
  // resume latency a blocked side pays when the other side unblocks it (cross-core wakeup).
  // `injector` arms the kPipeGrow site in Write (null: injection disabled).
  static std::pair<std::shared_ptr<OpenFile>, std::shared_ptr<OpenFile>> Create(
      Scheduler& sched, Cycles wake_cost, FaultInjector* injector = nullptr);

 private:
  friend class PipeEnd;

  uint64_t Available() const { return fill_; }
  uint64_t Space() const { return buffer_.size() - fill_; }

  Scheduler& sched_;
  Cycles wake_cost_;
  FaultInjector* injector_;
  WaitQueue readers_wq_;
  WaitQueue writers_wq_;
  // Guards the ring buffer and both refcounts: the two ends can live on different shard
  // workers, and transfers run outside the kFile domain lock (FileService leaves the kernel
  // section before an operation that may block). Host-only — never held across a suspension.
  mutable std::mutex state_mu_;
  std::vector<std::byte> buffer_;
  uint64_t head_ = 0;  // read position
  uint64_t fill_ = 0;
  int reader_refs_ = 0;
  int writer_refs_ = 0;
};

class PipeEnd : public OpenFile {
 public:
  PipeEnd(std::shared_ptr<Pipe> pipe, bool is_writer);

  SimTask<Result<int64_t>> Read(std::span<std::byte> out) override;
  SimTask<Result<int64_t>> Write(std::span<const std::byte> in) override;
  void OnDup() override;
  void OnClose() override;
  Cycles IoFixedCost(const CostModel& costs) const override { return costs.pipe_op; }
  const char* kind() const override { return is_writer_ ? "pipe[w]" : "pipe[r]"; }

 private:
  std::shared_ptr<Pipe> pipe_;
  bool is_writer_;
  int refs_ = 1;
};

}  // namespace ufork

#endif  // UFORK_SRC_KERNEL_PIPE_H_
