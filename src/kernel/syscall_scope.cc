#include "src/kernel/syscall_scope.h"

#include "src/base/log.h"

namespace ufork {

SyscallScope::~SyscallScope() {
  // RAII release: the common exit path for kFast syscalls and for error returns on kBlocking
  // ones. Runs at the end of the caller's await expression — after the co_returned value is
  // materialized, with no charges or suspensions in between — so the exit charge lands at the
  // same virtual time the historical inline LeaveSyscall produced.
  if (open_) {
    ChargeExitAndRelease();
  }
}

SimTask<Result<void>> SyscallScope::Enter() {
  UF_CHECK_MSG(!entered_ && !open_, "SyscallScope::Enter called twice");
  UF_CHECK_MSG(desc_.klass != SyscallClass::kNoEntry,
               "delivery points must not enter the kernel");
  // Incremental-compaction barrier (DESIGN.md §4.13): a syscall entered from the region that
  // is mid-move parks until the move commits or cancels, then proceeds against the (possibly
  // rebased) μprocess state. One load+compare when no move is in flight.
  CompactionService& compaction = core_.compaction();
  if (compaction.NeedsBarrier(caller_.base)) [[unlikely]] {
    co_await compaction.BarrierOn(caller_);
  }
  KernelStats& stats = core_.stats();
  ++stats.syscalls;
  ++stats.Count(desc_.id);
  core_.machine().Charge(core_.costs().SyscallEntry(core_.backend().syscall_kind()));
  // Entering the kernel means invoking the sealed entry capability: the hardware unseals it
  // and branches to the fixed kernel entry point; anything else faults (§4.4).
  auto target = caller_.syscall_sentry.InvokedSentry();
  if (!target.ok()) {
    co_return target.error();
  }
  if (core_.policy().validate_args) {
    core_.machine().Charge(core_.costs().validation_check);
  }
  lock_ = core_.DomainLock(desc_.domain);
  if (lock_ != nullptr) {
    co_await lock_->Acquire();
  } else if ((host_locks_ = core_.host_locks()) != nullptr) {
    // Sharded host: kernel sections serialize on a real mutex, keyed to the executing
    // simulated thread so the release below can assert same-thread ownership. Blocking on a
    // host mutex parks the WORKER, not the coroutine — legal because kernel sections never
    // suspend while holding (blocking syscalls Leave() first).
    host_locks_->Lock(desc_.domain, core_.sched().Current().tid());
  }
  // Frame grants made inside this kernel section bill to the caller's tenant (§4.10). Pure
  // host-side bookkeeping: no charge, no virtual-time effect.
  core_.machine().frames().set_current_tenant(caller_.tenant);
  entered_ = true;
  open_ = true;
  co_return OkResult();
}

void SyscallScope::Leave() {
  UF_CHECK_MSG(entered_, "SyscallScope::Leave before Enter");
  UF_CHECK_MSG(open_, "double release: Leave on a scope that already left");
  UF_CHECK_MSG(desc_.klass == SyscallClass::kBlocking,
               "explicit Leave is reserved for blocking syscalls; fast paths rely on RAII");
  ChargeExitAndRelease();
}

SimTask<void> SyscallScope::Reacquire() {
  UF_CHECK_MSG(entered_ && !open_, "Reacquire without a preceding Leave");
  // A blocked caller woken while its region is mid-move (e.g. an mq write landing on a parked
  // reader) must not touch kernel or guest state split across two bases: park here until the
  // move resolves, exactly as a fresh entry would.
  CompactionService& compaction = core_.compaction();
  if (compaction.NeedsBarrier(caller_.base)) [[unlikely]] {
    co_await compaction.BarrierOn(caller_);
  }
  if (lock_ != nullptr) {
    co_await lock_->Acquire();
  } else if (host_locks_ != nullptr) {
    host_locks_->Lock(desc_.domain, core_.sched().Current().tid());
  }
  open_ = true;
}

void SyscallScope::ChargeExitAndRelease() {
  // Syscall return path: restoring the caller's context costs about half the entry. For a
  // blocked caller this lands after the wakeup, so it is never absorbed into wait time.
  core_.machine().Charge(core_.costs().SyscallEntry(core_.backend().syscall_kind()) / 2);
  if (lock_ != nullptr) {
    lock_->Release();  // owner-checked: catches a scope leaked to a foreign thread
  } else if (host_locks_ != nullptr) {
    // Owner-checked against the executing simulated thread: a scope destroyed from a foreign
    // thread (leaked coroutine frame) dies here rather than silently unlocking.
    host_locks_->Unlock(desc_.domain, core_.sched().Current().tid());
  }
  open_ = false;
  if (core_.config().check_frame_invariants) [[unlikely]] {
    // Every kernel exit is a consistency point: frame-mutating syscalls never suspend mid
    // mutation (blocking ones Leave() first), so refcounts and mappings must agree here.
    core_.CheckFrameAccountingOrDie();
  }
}

}  // namespace ufork
