// Ramdisk virtual filesystem.
//
// The paper's Redis experiment saves snapshots "to a ram-disk, minimizing I/O latency" (§5.1);
// this VFS is that ramdisk: a flat namespace of in-(host-)memory files with POSIX-ish open
// flags, byte-offset read/write/seek, rename (Redis saves to a temp file then renames) and
// unlink. Transfer costs are charged through the cost model by the syscall layer.
#ifndef UFORK_SRC_KERNEL_VFS_H_
#define UFORK_SRC_KERNEL_VFS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/base/fault_injection.h"
#include "src/base/status.h"
#include "src/kernel/fd.h"

namespace ufork {

enum OpenFlags : uint32_t {
  kOpenRead = 1u << 0,
  kOpenWrite = 1u << 1,
  kOpenCreate = 1u << 2,
  kOpenTrunc = 1u << 3,
  kOpenAppend = 1u << 4,
};

enum SeekWhence : int { kSeekSet = 0, kSeekCur = 1, kSeekEnd = 2 };

// Ramdisk block size: granularity at which file growth is charged against the kVfsGrow
// injection site (one probe per started block).
inline constexpr uint64_t kVfsBlockSize = 4096;

class RamFs {
 public:
  // Invoked with the Inode pointer whenever an inode's bytes change or the inode leaves the
  // namespace (write, truncate-on-open, unlink, rename-overwrite): the unified page cache
  // keys on inode identity and must drop stale pages.
  using InvalidateFn = std::function<void(const void* inode_key)>;

  struct Inode {
    // Guards data: handles to the same inode can live on different shard workers, and the
    // transfer runs outside the kFile domain lock (FileService leaves the kernel section
    // before an operation that may block). Host-only — no virtual-time effect.
    mutable std::mutex mu;
    std::vector<std::byte> data;
    uint64_t link_count = 1;
  };

  Result<std::shared_ptr<OpenFile>> Open(const std::string& path, uint32_t flags);
  Result<void> Unlink(const std::string& path);
  Result<void> Rename(const std::string& from, const std::string& to);
  Result<uint64_t> FileSize(const std::string& path) const;
  // The inode backing `path`, or null if absent. SysMmapFile names page-cache pages by inode
  // identity, which (like a POSIX mmap) survives a later rename of the path.
  std::shared_ptr<Inode> InodeOf(const std::string& path) const;
  bool Exists(const std::string& path) const { return inodes_.count(path) != 0; }
  std::vector<std::string> List() const;

  uint64_t TotalBytes() const;

  // Deterministic fault injection: kVfsGrow fires in RamFileHandle::Write whenever the ramdisk
  // would grow a file (disk full, ENOSPC). Null: disabled.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

  // Null: no cache to keep coherent. Fired outside inode->mu (the cache fill path takes its
  // own lock before the inode's).
  void set_invalidate_hook(InvalidateFn fn) { on_invalidate_ = std::move(fn); }

 private:
  FaultInjector* injector_ = nullptr;
  InvalidateFn on_invalidate_;
  std::map<std::string, std::shared_ptr<Inode>> inodes_;
};

// Open-file description for a ramdisk file: shared offset across dup/fork, as POSIX requires.
class RamFileHandle : public OpenFile {
 public:
  RamFileHandle(std::shared_ptr<RamFs::Inode> inode, uint32_t flags,
                FaultInjector* injector = nullptr, RamFs::InvalidateFn invalidate = nullptr)
      : inode_(std::move(inode)),
        flags_(flags),
        injector_(injector),
        invalidate_(std::move(invalidate)) {}

  SimTask<Result<int64_t>> Read(std::span<std::byte> out) override;
  SimTask<Result<int64_t>> Write(std::span<const std::byte> in) override;
  Result<int64_t> Seek(int64_t offset, int whence) override;
  const char* kind() const override { return "file"; }

 private:
  std::shared_ptr<RamFs::Inode> inode_;
  uint32_t flags_;
  FaultInjector* injector_ = nullptr;
  RamFs::InvalidateFn invalidate_;
  uint64_t offset_ = 0;
};

}  // namespace ufork

#endif  // UFORK_SRC_KERNEL_VFS_H_
