// VFS-unified page cache (DESIGN.md §4.12).
//
// One refcounted frame per (inode, file-page) pair, filled read-through from the ramdisk
// inode's bytes on first demand. SysMmapFile maps these frames directly — clean file pages
// are shared by every mapper and by the cache itself, so a 256-worker fleet mmapping the
// same config pays one frame, not 256. Writes go private through the ordinary CoW break
// (the mapping carries kPteCow because the cache's reference keeps the refcount above one).
//
// The ramdisk inode remains the source of truth for file *contents*: a VFS write to a
// cached file evicts the stale cached pages (future fills re-read), while existing
// MAP_PRIVATE mappings legitimately keep whatever they saw — POSIX leaves post-mmap file
// updates to private mappings unspecified.
#ifndef UFORK_SRC_KERNEL_PAGE_CACHE_H_
#define UFORK_SRC_KERNEL_PAGE_CACHE_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "src/base/fault_injection.h"
#include "src/base/stat_counter.h"
#include "src/base/status.h"
#include "src/kernel/vfs.h"
#include "src/machine/machine.h"

namespace ufork {

class PageCache {
 public:
  explicit PageCache(Machine& machine) : machine_(machine) {}
  ~PageCache() { EvictAll(); }

  PageCache(const PageCache&) = delete;
  PageCache& operator=(const PageCache&) = delete;

  // Deterministic fault injection (FaultSite::kPageCacheFill fires before the fill's frame
  // allocation). Null: disabled.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

  // Read-through lookup: the frame caching file page `page_index` of `inode`, filled from
  // the inode's bytes on miss (zero-padded past EOF). The returned frame carries one extra
  // reference for the caller — map it or Release it; the cache always keeps its own.
  Result<FrameId> GetFrame(const std::shared_ptr<RamFs::Inode>& inode, uint64_t page_index);

  // Drops every cached page of the inode identified by `inode_key` (RamFs::Inode pointer):
  // unlink, truncation, or a write that changed the bytes. Returns the page count dropped.
  uint64_t EvictInode(const void* inode_key);
  void EvictAll();

  // Enumerates the cache's held frame references (the frame-accounting invariant counts
  // these as kernel-held refs alongside shm objects).
  void ForEachFrame(const std::function<void(FrameId)>& fn) const;

  uint64_t hits() const { return hits_.value(); }
  uint64_t fills() const { return fills_.value(); }
  uint64_t evictions() const { return evictions_.value(); }
  uint64_t resident_pages() const;

 private:
  struct Entry {
    FrameId frame = kInvalidFrame;
    std::shared_ptr<RamFs::Inode> inode;  // pins the inode while its pages are cached
  };

  Machine& machine_;
  FaultInjector* injector_ = nullptr;
  // Fills and evictions can run on concurrent shard workers (fault resolution happens
  // outside any single lock domain). Host-only mutex, no virtual-time effect.
  mutable std::mutex mu_;
  std::map<std::pair<const void*, uint64_t>, Entry> pages_;
  StatCounter hits_{0};
  StatCounter fills_{0};
  StatCounter evictions_{0};
};

}  // namespace ufork

#endif  // UFORK_SRC_KERNEL_PAGE_CACHE_H_
