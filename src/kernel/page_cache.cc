#include "src/kernel/page_cache.h"

#include <algorithm>
#include <cstring>
#include <vector>

namespace ufork {

Result<FrameId> PageCache::GetFrame(const std::shared_ptr<RamFs::Inode>& inode,
                                    uint64_t page_index) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto key = std::make_pair(static_cast<const void*>(inode.get()), page_index);
  auto it = pages_.find(key);
  if (it != pages_.end()) {
    ++hits_;
    machine_.frames().AddRef(it->second.frame);
    return it->second.frame;
  }
  if (injector_ != nullptr && injector_->ShouldFail(FaultSite::kPageCacheFill)) {
    return Error{Code::kErrNoMem, "page cache fill failed (injected)"};
  }
  // Read-through fill: a zeroed frame (tail past EOF stays zero) loaded with the inode's
  // current bytes. One I/O-shaped transfer per fill; hits are free — the cache IS the
  // footprint/throughput trade the fleet benchmarks measure.
  UF_ASSIGN_OR_RETURN(const FrameId frame, machine_.frames().Allocate());
  uint64_t copied = 0;
  {
    std::lock_guard<std::mutex> data_lk(inode->mu);
    const uint64_t off = page_index * kPageSize;
    if (off < inode->data.size()) {
      copied = std::min<uint64_t>(kPageSize, inode->data.size() - off);
      machine_.frames().frame(frame).Write(0, std::span(inode->data.data() + off, copied));
    }
  }
  machine_.Charge(machine_.costs().frame_alloc + machine_.costs().VfsTransfer(copied));
  ++fills_;
  pages_.emplace(key, Entry{frame, inode});
  machine_.frames().AddRef(frame);  // caller's reference; the Allocate ref stays with us
  return frame;
}

uint64_t PageCache::EvictInode(const void* inode_key) {
  std::lock_guard<std::mutex> lk(mu_);
  uint64_t dropped = 0;
  auto it = pages_.lower_bound(std::make_pair(inode_key, uint64_t{0}));
  while (it != pages_.end() && it->first.first == inode_key) {
    machine_.frames().Release(it->second.frame);
    it = pages_.erase(it);
    ++dropped;
  }
  evictions_ += dropped;
  return dropped;
}

void PageCache::EvictAll() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [key, entry] : pages_) {
    machine_.frames().Release(entry.frame);
    ++evictions_;
  }
  pages_.clear();
}

void PageCache::ForEachFrame(const std::function<void(FrameId)>& fn) const {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& [key, entry] : pages_) {
    fn(entry.frame);
  }
}

uint64_t PageCache::resident_pages() const {
  std::lock_guard<std::mutex> lk(mu_);
  return pages_.size();
}

}  // namespace ufork
