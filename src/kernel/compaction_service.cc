#include "src/kernel/compaction_service.h"

#include "src/base/check.h"
#include "src/base/fault_injection.h"
#include "src/kernel/kernel_core.h"

namespace ufork {

namespace {
// Tagged frames scanned per revocation-sweep quantum. The sweep shares the mover's
// bounded-pause contract, so its slice is a fixed budget rather than proportional to the
// quarantine backlog.
constexpr uint64_t kSweepFramesPerQuantum = 32;
}  // namespace

CompactionService::CompactionService(KernelCore& core)
    : core_(core), barrier_(core.sched()) {
  UF_CHECK_MSG(core_.config().compact_budget_pages == 0 || core_.config().host_shards == 1,
               "incremental compaction requires host_shards == 1: the service interleaves "
               "mover quanta and mutators in one deterministic virtual timeline");
  barrier_.set_resume_delay(core_.config().costs.sched_wakeup);
  core_.machine().set_va_forwarder([this](uint64_t page_va) { return ForwardVa(page_va); });
}

CompactionService::~CompactionService() = default;

void CompactionService::InstallEngine(std::unique_ptr<CompactionEngine> engine) {
  engine_ = std::move(engine);
}

bool CompactionService::Kick() {
  if (engine_ == nullptr || core_.config().compact_budget_pages == 0) {
    return false;
  }
  armed_ = true;
  engine_->ResetPass();  // a fresh arming always sweeps the whole arena from the bottom
  EnsureRunning();
  return true;
}

void CompactionService::OnRegionChurn() {
  if (engine_ == nullptr || core_.config().compact_budget_pages == 0) {
    return;
  }
  if (!armed_ && TriggerWants()) {
    armed_ = true;
    engine_->ResetPass();
  }
  if (armed_ || engine_->SweepPending()) {
    EnsureRunning();
  }
}

bool CompactionService::TriggerWants() const {
  const CompactionTriggerConfig& trigger = core_.config().compact_trigger;
  if (!trigger.enabled) {
    return false;
  }
  // Pressure = fragmentation over the kRegionAlign allocation slots below the high-water
  // region. ExternalFragmentation would not do here: the arena's untouched tail keeps it
  // within epsilon of zero no matter how many holes exits punch in the occupied floor.
  return core_.address_space().SlotFragmentation(2 * kMiB) >= trigger.arm_fragmentation;
}

void CompactionService::EnsureRunning() {
  if (running_) {
    return;
  }
  running_ = true;
  core_.sched().Spawn(RunService(), "compactd");
}

SimTask<void> CompactionService::RunService() {
  Scheduler& sched = core_.sched();
  KernelStats& stats = core_.stats();
  const uint64_t budget = core_.config().compact_budget_pages;
  for (;;) {
    VirtualLock* lock = core_.DomainLock(LockDomain::kCompact);
    if (lock != nullptr) {
      co_await lock->Acquire();
    }
    const Cycles quantum_start = sched.Now();
    if (core_.fault_injector().ShouldFail(FaultSite::kCompactStep)) {
      // Degrade, don't abort the service: the quantum's work is cancelled — an in-flight
      // move rolls back whole-to-one-base — and planning resumes at the next quantum.
      if (mover_ != nullptr) {
        mover_->Cancel();
        FinishMove(/*committed=*/false);
      }
    } else if (mover_ != nullptr) {
      const RegionMover::Status status = mover_->Step(budget);
      ++stats.compact_steps;
      if (status != RegionMover::Status::kMoving) {
        FinishMove(status == RegionMover::Status::kCommitted);
      }
    } else if (engine_->SweepPending()) {
      engine_->SweepStep(kSweepFramesPerQuantum);
      ++stats.compact_steps;
    } else if (armed_) {
      mover_ = engine_->NextMove(/*require_quiescent=*/true, /*batched_remap=*/true);
      if (mover_ != nullptr) {
        relocating_base_ = mover_->from_base();
      } else {
        // Pass exhausted. Re-pass while moves keep landing and pressure persists; otherwise
        // disarm until the next region churn re-arms the trigger.
        const CompactionTriggerConfig& trigger = core_.config().compact_trigger;
        const bool still_pressured =
            !trigger.enabled || core_.address_space().SlotFragmentation(2 * kMiB) >
                                    trigger.clear_fragmentation;
        if (moved_any_this_pass_ && still_pressured) {
          engine_->ResetPass();
          moved_any_this_pass_ = false;
        } else {
          armed_ = false;
        }
      }
    }
    stats.pause_cycles_max.UpdateMax(sched.Now() - quantum_start);
    if (lock != nullptr) {
      lock->Release();
    }
    if (!armed_ && mover_ == nullptr && !engine_->SweepPending()) {
      break;
    }
    co_await sched.Sleep(core_.config().compact_step_interval);
  }
  running_ = false;
  co_return;
}

void CompactionService::FinishMove(bool committed) {
  mover_.reset();
  relocating_base_ = 0;
  if (committed) {
    ++core_.stats().compact_regions_moved;
    moved_any_this_pass_ = true;
  }
  barrier_.WakeAll();
}

SimTask<void> CompactionService::BarrierOn(const Uproc& caller) {
  while (NeedsBarrier(caller.base)) {
    ++core_.stats().compact_parked;
    co_await barrier_.Wait();
  }
}

void CompactionService::CancelMoveFor(const Uproc& uproc) {
  if (mover_ != nullptr && mover_->from_base() == uproc.base) {
    mover_->Cancel();
    FinishMove(/*committed=*/false);
  }
}

std::optional<RelocationWindow> CompactionService::CurrentMove() const {
  if (mover_ == nullptr) {
    return std::nullopt;
  }
  return RelocationWindow{mover_->from_base(), mover_->to_base(), mover_->size(),
                          mover_->moved_pages()};
}

std::optional<uint64_t> CompactionService::ForwardVa(uint64_t page_va) const {
  if (mover_ == nullptr) {
    return std::nullopt;
  }
  return mover_->ForwardVa(page_va);
}

}  // namespace ufork
