// Adaptive fault-around for CoW/CoPA resolution (DESIGN.md §4.8).
//
// A post-fork fault storm pays `page_fault` + `pte_update` per page when pages are resolved
// one trap at a time. Spatially-clustered storms (a bulk write marching through a CoW heap, a
// capability walk over a CoPA bucket array) can amortize those fixed costs: the resolver
// handles a *window* of adjacent pages that share the same pending state in one trap, paying
// the trap once and one batched PTE update (`pte_update_batched`, a coalesced TLB shootdown)
// per window. Copy + relocate remain per-page — fault-around batches the *transition* costs,
// not the data movement.
//
// The window is adaptive per μprocess, Linux-fault-around style: pages beyond the access span
// are speculative, so their PTEs carry kPteFaultAround, which the access engine clears on
// first touch. Still-set markers found at the next fault mean wasted copies (a speculative
// page copy costs ~3× what the avoided trap would have) and halve the window; a fault landing
// exactly where the previous window ended doubles it. Pages the faulting access itself spans
// (PageFaultInfo::access_end) are never speculative and always eligible.
//
// These helpers are shared by the μFork and MAS backends; each backend keeps its own copy
// machinery and cycle charging so window=1 stays bit-identical to single-page resolution.
#ifndef UFORK_SRC_KERNEL_FAULT_AROUND_H_
#define UFORK_SRC_KERNEL_FAULT_AROUND_H_

#include <cstdint>

#include "src/kernel/kernel_core.h"
#include "src/kernel/uproc.h"
#include "src/machine/machine.h"
#include "src/mem/page_table.h"

namespace ufork {

// A planned resolution window: `pages` adjacent pages starting at the faulting page, all in
// the same pending state (identical PTE flags, same sharing class) and inside one segment.
struct FaultWindow {
  uint64_t va = 0;         // faulting page (window start)
  uint64_t pages = 1;      // pages to resolve in this trap (>= 1)
  bool shared = false;     // refcount > 1: copy-out; else last-sharer reclaim-in-place
  uint32_t seg_flags = 0;  // segment permissions the resolved pages end up with
};

// Step 1 — runs the adaptive controller: sweeps the previous window's speculative markers
// (counting stale ones as waste), grows/shrinks the μprocess window, and returns the page
// limit for this fault. Returns 1 when fault-around is disabled (max_window <= 1).
uint32_t FaultAroundBegin(KernelCore& kernel, Uproc& uproc, const PageFaultInfo& info);

// Step 2 — scans forward from the faulting page for up to `limit` adjacent pages in the same
// pending state, clipping at the segment boundary. `fault_pte` is the faulting page's PTE.
FaultWindow FaultAroundScan(KernelCore& kernel, Uproc& uproc, PageTable& pt,
                            const PageFaultInfo& info, const Pte& fault_pte, uint32_t limit);

// Step 3 — after the backend resolved the window: records trap/page counters and arms the
// adjacency detector + speculative span for the next fault.
void FaultAroundCommit(KernelCore& kernel, Uproc& uproc, const FaultWindow& window);

// Exit sweep: speculative pages from the μprocess's final window that were never touched are
// waste too; count them before the region is released (called from backend OnExit).
void FaultAroundAccountExitWaste(KernelCore& kernel, Uproc& uproc);

// Demand-fill resolution (DESIGN.md §4.12), shared by all three backends: populates a window
// of adjacent reservations (kPteNotPresent) in one trap — zeroed frames for kPteZeroFill
// pages, page-cache frames for kPteFileBacked pages (write faults break the share with a
// private copy immediately). All-or-nothing at the faulting page: a failed fill returns
// ENOMEM with every PTE still reserved; a failed speculative tail degrades the window.
Result<void> ResolveDemandFault(KernelCore& kernel, Uproc& uproc, PageTable& pt,
                                const PageFaultInfo& info, const Pte& fault_pte);

// Classic CoW write-break over a window (frames shared at fork time or through the page
// cache): copy-out when shared, reclaim-in-place when last sharer. Shared by the MAS and
// VM-clone backends; μFork keeps its own copy loop because it interleaves capability
// relocation with the data movement.
Result<void> ResolveCowWriteWindow(KernelCore& kernel, Uproc& uproc, PageTable& pt,
                                   const PageFaultInfo& info, const Pte& fault_pte);

}  // namespace ufork

#endif  // UFORK_SRC_KERNEL_FAULT_AROUND_H_
