// μprocess: the emulated POSIX process (paper §3.4, building block 1).
//
// Each μprocess owns a contiguous region of the single address space, a register file whose
// capability registers are confined to that region, a descriptor table, and one thread (fork
// copies a single thread, matching POSIX). In the MAS baseline a process owns its page table
// instead of a region of the shared one.
#ifndef UFORK_SRC_KERNEL_UPROC_H_
#define UFORK_SRC_KERNEL_UPROC_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/base/units.h"
#include "src/kernel/fd.h"
#include "src/kernel/signal.h"
#include "src/kernel/vfs.h"
#include "src/machine/register_file.h"
#include "src/mem/frame_allocator.h"
#include "src/mem/page_table.h"
#include "src/sched/scheduler.h"

namespace ufork {

using Pid = int64_t;
inline constexpr Pid kInvalidPid = -1;

// Per-μprocess adaptive fault-around controller state (Linux fault-around style, but for
// CoW/CoPA resolution windows — see DESIGN.md §4.8). The window doubles when the previous
// window was fully consumed and the next fault lands right where it left off, and halves when
// speculatively-resolved pages were still untouched at the next fault.
struct FaultAroundState {
  uint32_t window = 1;   // current adaptive window (pages), clamped to config.max_window
  uint64_t next_va = 0;  // one past the last resolved window (adjacency detector)
  uint64_t spec_lo = 0;  // last window's speculative span [spec_lo, spec_hi): pages that still
  uint64_t spec_hi = 0;  // carry kPteFaultAround at the next fault were wasted copies
};

// Per-fork accounting, reported by the benchmarks (Figs. 4, 8).
struct ForkStats {
  Cycles latency = 0;                  // time for the fork call to complete
  uint64_t pages_mapped = 0;           // child PTEs created
  uint64_t pages_copied_eagerly = 0;   // proactive copies (GOT, allocator metadata, full copy)
  uint64_t caps_relocated_eagerly = 0;
  uint64_t registers_relocated = 0;
  uint64_t bytes_copied_eagerly = 0;
  uint64_t pages_reserved = 0;  // not-present reservations inherited lazily (demand paging)
};

class Uproc {
 public:
  enum class State { kRunning, kZombie, kDead };

  Uproc(Pid pid, Scheduler& sched) : child_wait(sched), pid_(pid) {}

  Uproc(const Uproc&) = delete;
  Uproc& operator=(const Uproc&) = delete;

  Pid pid() const { return pid_; }

  bool ContainsVa(uint64_t va) const { return va >= base && va < base + size; }
  uint64_t OffsetOf(uint64_t va) const {
    UF_DCHECK(ContainsVa(va));
    return va - base;
  }

  // --- identity & lifecycle ---
  Pid parent_pid = kInvalidPid;
  State state = State::kRunning;
  int exit_code = 0;
  std::string name;
  bool forked_child = false;  // false for freshly spawned programs (run crt initialization)

  // --- memory ---
  uint64_t base = 0;  // region base in the (shared or private) address space
  uint64_t size = 0;
  PageTable* page_table = nullptr;        // SAS: the kernel's shared table
  std::unique_ptr<PageTable> owned_pt;    // MAS/VM backends: private table
  uint64_t mmap_cursor = 0;               // bump pointer within the mmap segment

  // --- demand paging (DESIGN.md §4.12) ---
  // Absolute VA of the heap break: sbrk moves it within (heap_off, heap_off + heap_size];
  // pages at/above the break are unmapped, pages below are populated or reserved.
  uint64_t heap_break = 0;
  // File-backed mmap windows (SysMmapFile): the PTE only says kPteFileBacked; this table
  // names the inode and starting file page, so the demand-fill path knows what to read
  // through the page cache. Rebased on fork (child region) and compaction moves.
  struct FileMapping {
    uint64_t va = 0;          // absolute, page aligned
    uint64_t pages = 0;       // extent in pages
    uint64_t start_page = 0;  // file page index mapped at `va`
    std::shared_ptr<RamFs::Inode> inode;
  };
  std::vector<FileMapping> file_mappings;
  const FileMapping* FileMappingAt(uint64_t va) const {
    for (const auto& m : file_mappings) {
      if (va >= m.va && va < m.va + m.pages * kPageSize) {
        return &m;
      }
    }
    return nullptr;
  }

  // --- architectural state ---
  RegisterFile regs;
  Capability syscall_sentry;  // sealed entry capability for trapless syscalls (§4.4)

  // --- kernel resources ---
  std::shared_ptr<FdTable> fds;
  // The μprocess's main thread (the one fork duplicates) plus any it spawned (§3.4: "each
  // μprocess may have many threads"; fork copies a single thread, matching POSIX).
  ThreadId thread = kInvalidThread;
  std::vector<ThreadId> threads;
  std::unique_ptr<WaitQueue> thread_exit_wait;  // joiners block here
  // Scheduler affinity inherited by fork children (the sched_setaffinity-before-fork pattern
  // the FaaS coordinator uses to keep function executors off its own core). -1 = any core.
  int child_affinity = -1;
  std::vector<Pid> children;
  WaitQueue child_wait;  // parent blocks here in wait()
  SignalState signals;

  // --- accounting ---
  ForkStats fork_stats;  // stats of the fork that created this μprocess
  uint64_t forks_performed = 0;
  // Fault ledger (DESIGN.md §4.14): unresolvable capability/translation faults crash
  // containment routed to SIGSEGV for *this* μprocess — the per-victim view the attack
  // battery's StateDigest and the summary report fold, next to the kernel-wide
  // stats().faults_contained total.
  uint64_t faults_contained = 0;
  Code last_fault = Code::kOk;
  FaultAroundState fault_around;  // adaptive CoW/CoPA resolution window (DESIGN.md §4.8)
  // Frame-billing tenant (DESIGN.md §4.10): inherited by fork/spawn children, stamped into
  // the FrameAllocator at every kernel entry so grants charge to this μprocess's tree.
  TenantId tenant = kSystemTenant;

 private:
  Pid pid_;
};

}  // namespace ufork

#endif  // UFORK_SRC_KERNEL_UPROC_H_
