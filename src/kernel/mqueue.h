// POSIX-style message queues (mq_open / mq_send / mq_receive).
//
// The paper lists message queue descriptors among the system resources fork duplicates (§3.5).
// Queues are named, bounded in message count, and preserve message boundaries; Read/Write on
// the descriptor map to receive/send of whole messages.
#ifndef UFORK_SRC_KERNEL_MQUEUE_H_
#define UFORK_SRC_KERNEL_MQUEUE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/base/fault_injection.h"
#include "src/base/status.h"
#include "src/kernel/fd.h"
#include "src/sched/scheduler.h"

namespace ufork {

inline constexpr uint64_t kMqMaxMessages = 64;
inline constexpr uint64_t kMqMaxMessageSize = 8192;
// Granularity at which message storage is charged against the kMqGrow injection site: one
// ShouldFail probe per started 1 KiB of payload, mirroring a kernel allocating queue storage
// in slabs.
inline constexpr uint64_t kMqAllocChunk = 1024;

class MessageQueue {
 public:
  MessageQueue(Scheduler& sched, Cycles wake_cost, FaultInjector* injector = nullptr)
      : sched_(sched),
        wake_cost_(wake_cost),
        injector_(injector),
        senders_wq_(sched),
        receivers_wq_(sched) {
    senders_wq_.set_resume_delay(wake_cost);
    receivers_wq_.set_resume_delay(wake_cost);
  }

  SimTask<Result<void>> Send(std::vector<std::byte> message);
  SimTask<Result<std::vector<std::byte>>> Receive();

  uint64_t depth() const {
    std::lock_guard<std::mutex> lk(state_mu_);
    return messages_.size();
  }

 private:
  Scheduler& sched_;
  Cycles wake_cost_;
  FaultInjector* injector_;
  WaitQueue senders_wq_;
  WaitQueue receivers_wq_;
  // Guards messages_: the queue's two ends can live on different shard workers, and the
  // transfer runs outside the kFile domain lock (FileService leaves the kernel section before
  // an operation that may block). Host-only — never held across a suspension, no cycle cost.
  mutable std::mutex state_mu_;
  std::deque<std::vector<std::byte>> messages_;
};

// Registry of named queues (the mq filesystem namespace). `injector` arms the kMqReserve site
// in Open and threads kMqGrow into every queue it creates (null: injection disabled).
class MqRegistry {
 public:
  MqRegistry(Scheduler& sched, Cycles wake_cost, FaultInjector* injector = nullptr)
      : sched_(sched), wake_cost_(wake_cost), injector_(injector) {}

  Result<std::shared_ptr<OpenFile>> Open(const std::string& name, bool create);
  Result<void> Unlink(const std::string& name);

 private:
  Scheduler& sched_;
  Cycles wake_cost_;
  FaultInjector* injector_;
  std::map<std::string, std::shared_ptr<MessageQueue>> queues_;
};

class MqHandle : public OpenFile {
 public:
  explicit MqHandle(std::shared_ptr<MessageQueue> queue) : queue_(std::move(queue)) {}

  SimTask<Result<int64_t>> Read(std::span<std::byte> out) override;
  SimTask<Result<int64_t>> Write(std::span<const std::byte> in) override;
  const char* kind() const override { return "mqueue"; }

 private:
  std::shared_ptr<MessageQueue> queue_;
};

}  // namespace ufork

#endif  // UFORK_SRC_KERNEL_MQUEUE_H_
