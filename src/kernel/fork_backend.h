// Fork backend interface: the axis along which the paper's three systems differ.
//
//   * μFork (src/ufork)           — single address space, capability relocation, CoPA/CoA/Full.
//   * MAS baseline (src/baseline) — CheriBSD-like: per-process page tables, classic CoW,
//                                   trap-based syscalls, TLB flushes on context switch.
//   * VM-clone baseline           — Nephele-like: hypervisor clones the whole unikernel.
//
// The kernel delegates fork, resolvable page faults, syscall entry flavour, context switch
// pricing and residency accounting to the installed backend; everything else (μprocess state,
// fds, VFS, pipes, scheduling) is shared, so workloads compare apples to apples.
#ifndef UFORK_SRC_KERNEL_FORK_BACKEND_H_
#define UFORK_SRC_KERNEL_FORK_BACKEND_H_

#include <functional>
#include <memory>

#include "src/base/status.h"
#include "src/kernel/uproc.h"
#include "src/machine/cost_model.h"
#include "src/machine/machine.h"
#include "src/sched/task.h"

namespace ufork {

class Kernel;
class KernelCore;

// Entry point of a μprocess thread. The guest layer adapts application coroutines
// (taking a Guest facade) into this shape.
using UprocEntry = std::function<SimTask<void>(Kernel&, Uproc&)>;

// How fork materialises the child's memory (paper §3.8).
enum class ForkStrategy {
  kCopa,       // Copy-on-Pointer-Access: share read-only; copy on write or tagged cap load
  kCoa,        // Copy-on-Access: share inaccessible; copy on any access
  kFull,       // copy everything synchronously at fork
  kUnsafeCow,  // classic CoW without relocation faults — ISOLATION-UNSOUND in a SAS; kept to
               // demonstrate why CoPA exists (a child can read stale parent capabilities)
};

const char* ForkStrategyName(ForkStrategy strategy);

class ForkBackend {
 public:
  virtual ~ForkBackend() = default;

  virtual const char* name() const = 0;

  virtual SyscallEntryKind syscall_kind() const = 0;

  // Whether each process owns a private page table (MAS/VM backends) instead of a slice of
  // the shared single-address-space table.
  virtual bool private_page_tables() const = 0;

  // Additional cost when a core switches between these two threads (the kernel wires this into
  // the scheduler; uprocs may be null for kernel/idle threads).
  virtual Cycles ContextSwitchCost(const CostModel& costs, Uproc* prev, Uproc* next) const = 0;

  // Creates the child: memory, fds, registers, PID, thread. Returns the child pid. Backends
  // see only the KernelCore layer — process construction, machine, frames, locks — never the
  // syscall services.
  virtual Result<Pid> Fork(KernelCore& kernel, Uproc& parent, UprocEntry entry) = 0;

  // Resolves a CoW / capability-load page fault raised by the access engine.
  virtual Result<void> ResolveFault(KernelCore& kernel, const PageFaultInfo& info) = 0;

  // Residency the PSS metric must add beyond frames mapped in the region (shared libraries,
  // guest-OS image, allocator dirtying — see DESIGN.md substitutions).
  virtual uint64_t ExtraResidencyBytes(const KernelCore& kernel, const Uproc& uproc) const = 0;

  // Called when a μprocess exits, before its pages are released.
  virtual void OnExit(KernelCore& kernel, Uproc& uproc) { (void)kernel, (void)uproc; }
};

}  // namespace ufork

#endif  // UFORK_SRC_KERNEL_FORK_BACKEND_H_
