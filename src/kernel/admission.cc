#include "src/kernel/admission.h"

#include "src/base/check.h"
#include "src/kernel/kernel_core.h"

namespace ufork {

AdmissionController::AdmissionController(Scheduler& sched, FrameAllocator& frames,
                                         KernelStats& stats, const OverloadConfig& config)
    : sched_(sched), frames_(frames), stats_(stats), queue_(sched) {
  Configure(config);
}

void AdmissionController::Configure(const OverloadConfig& config) {
  if (config.enabled) {
    UF_CHECK_MSG(config.critical_watermark <= config.low_watermark &&
                     config.low_watermark <= config.clear_watermark,
                 "overload watermarks must satisfy critical <= low <= clear");
  }
  config_ = config;
  if (!config_.enabled) {
    rejecting_ = false;
    queue_.WakeAll();
  }
}

void AdmissionController::UpdateState(uint64_t free) {
  if (!rejecting_ && free < config_.low_watermark) {
    rejecting_ = true;
    ++stats_.admission_trips;
  } else if (rejecting_ && free >= config_.clear_watermark) {
    rejecting_ = false;
  }
}

AdmissionController::Decision AdmissionController::Evaluate() {
  UF_DCHECK(config_.enabled);
  const uint64_t free = frames_.free_frames();
  UpdateState(free);
  if (!rejecting_) {
    return Decision::kAdmit;
  }
  if (free >= config_.critical_watermark && queue_.size() < config_.max_parked) {
    return Decision::kPark;
  }
  ++stats_.admission_rejected;
  return Decision::kReject;
}

SimTask<void> AdmissionController::ParkUntilDrained() {
  ++stats_.admission_parked;
  co_await queue_.Wait();
  ++stats_.admission_resumed;
}

void AdmissionController::OnFramesFreed() {
  if (!rejecting_ || queue_.empty()) {
    return;
  }
  UpdateState(frames_.free_frames());
  if (!rejecting_) {
    // Past the clear watermark: drain every parked forker. Each re-Evaluates on resume, so a
    // thundering herd that dips the pool again simply re-parks (or rejects) in FIFO order.
    queue_.WakeAll();
  }
}

}  // namespace ufork
