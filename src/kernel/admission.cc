#include "src/kernel/admission.h"

#include <iterator>

#include "src/base/check.h"
#include "src/kernel/kernel_core.h"

namespace ufork {

AdmissionController::AdmissionController(Scheduler& sched, FrameAllocator& frames,
                                         KernelStats& stats, const OverloadConfig& config)
    : sched_(sched), frames_(frames), stats_(stats) {
  Configure(config);
}

void AdmissionController::Configure(const OverloadConfig& config) {
  if (config.enabled) {
    UF_CHECK_MSG(config.critical_watermark <= config.low_watermark &&
                     config.low_watermark <= config.clear_watermark,
                 "overload watermarks must satisfy critical <= low <= clear");
  }
  std::lock_guard<std::mutex> lk(mu_);
  config_ = config;
  if (!config_.enabled) {
    rejecting_.store(false, std::memory_order_relaxed);
    DrainLocked();
  }
}

uint64_t AdmissionController::parked() const {
  std::lock_guard<std::mutex> lk(mu_);
  uint64_t total = 0;
  for (const auto& [tenant, queue] : queues_) {
    total += queue->size();
  }
  return total;
}

void AdmissionController::UpdateStateLocked(uint64_t free) {
  const bool rejecting = rejecting_.load(std::memory_order_relaxed);
  if (!rejecting && free < config_.low_watermark) {
    rejecting_.store(true, std::memory_order_relaxed);
    ++stats_.admission_trips;
  } else if (rejecting && free >= config_.clear_watermark) {
    rejecting_.store(false, std::memory_order_relaxed);
  }
}

AdmissionController::Decision AdmissionController::Evaluate() {
  UF_DCHECK(config_.enabled);
  std::lock_guard<std::mutex> lk(mu_);
  const uint64_t free = frames_.free_frames();
  UpdateStateLocked(free);
  if (!rejecting_.load(std::memory_order_relaxed)) {
    return Decision::kAdmit;
  }
  uint64_t total_parked = 0;
  for (const auto& [tenant, queue] : queues_) {
    total_parked += queue->size();
  }
  if (free >= config_.critical_watermark && total_parked < config_.max_parked) {
    return Decision::kPark;
  }
  ++stats_.admission_rejected;
  return Decision::kReject;
}

WaitQueue& AdmissionController::QueueForLocked(TenantId tenant) {
  auto it = queues_.find(tenant);
  if (it == queues_.end()) {
    it = queues_.emplace(tenant, std::make_unique<WaitQueue>(sched_)).first;
  }
  return *it->second;
}

SimTask<void> AdmissionController::ParkUntilDrained(TenantId tenant) {
  ++stats_.admission_parked;
  const Cycles parked_at = sched_.Now();
  WaitQueue* queue;
  {
    std::lock_guard<std::mutex> lk(mu_);
    queue = &QueueForLocked(tenant);
  }
  co_await queue->Wait();
  ++stats_.admission_resumed;
  // Measured frame-locally: a parked forker that is killed never resumes, never updates the
  // max, and never leaves a dangling reference behind.
  stats_.parked_wait_cycles_max.UpdateMax(sched_.Now() - parked_at);
}

WaitQueue* AdmissionController::NextNonEmptyLocked() {
  if (queues_.empty()) {
    return nullptr;
  }
  auto it = queues_.lower_bound(rr_cursor_);
  for (size_t i = 0; i <= queues_.size(); ++i) {
    if (it == queues_.end()) {
      it = queues_.begin();
    }
    if (!it->second->empty()) {
      auto next = std::next(it);
      rr_cursor_ = next == queues_.end() ? 0 : next->first;
      return it->second.get();
    }
    ++it;
  }
  return nullptr;
}

void AdmissionController::DrainLocked() {
  // Aging drain: oldest-parked-first within a tenant (each queue is FIFO), one waiter per
  // tenant per round-robin pass across tenants. Every parked forker is woken — the policy
  // decides *order*, and order is what re-contention fairness hangs on: woken forkers
  // re-Evaluate() in wake order, so under a pool that only partially recovered the RR
  // interleave gives every tenant a shot before any tenant's second waiter.
  for (WaitQueue* queue = NextNonEmptyLocked(); queue != nullptr;
       queue = NextNonEmptyLocked()) {
    queue->Wake(1);
  }
}

void AdmissionController::OnFramesFreed() {
  if (!rejecting_.load(std::memory_order_relaxed)) {
    return;
  }
  std::lock_guard<std::mutex> lk(mu_);
  bool any_parked = false;
  for (const auto& [tenant, queue] : queues_) {
    if (!queue->empty()) {
      any_parked = true;
      break;
    }
  }
  if (!any_parked) {
    return;
  }
  UpdateStateLocked(frames_.free_frames());
  if (!rejecting_.load(std::memory_order_relaxed)) {
    DrainLocked();
  }
}

}  // namespace ufork
