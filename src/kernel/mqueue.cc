#include "src/kernel/mqueue.h"

#include <algorithm>
#include <cstring>

namespace ufork {

SimTask<Result<void>> MessageQueue::Send(std::vector<std::byte> message) {
  if (message.size() > kMqMaxMessageSize) {
    co_return Error{Code::kErrInval, "message too large"};
  }
  // Condvar protocol against the other end on a different shard worker: check-and-mutate
  // under state_mu_; when full, register in the wait queue BEFORE dropping the lock (so a
  // receiver that frees a slot afterwards cannot miss the registration), then suspend
  // unlocked — a host mutex must never be held across a coroutine suspension.
  for (;;) {
    std::unique_lock<std::mutex> lk(state_mu_);
    if (messages_.size() < kMqMaxMessages) {
      if (injector_ != nullptr) {
        // All storage for the message is charged before it is enqueued: a failure mid-charge
        // leaves the queue exactly as it was (all-or-nothing, never half a message visible).
        for (uint64_t charged = 0; charged < message.size(); charged += kMqAllocChunk) {
          if (injector_->ShouldFail(FaultSite::kMqGrow)) {
            co_return Error{Code::kErrNoMem, "message storage allocation failed (injected)"};
          }
        }
      }
      messages_.push_back(std::move(message));
      receivers_wq_.Wake();
      co_return OkResult();
    }
    auto wait = senders_wq_.PrepareWait();
    lk.unlock();
    co_await wait;
  }
}

SimTask<Result<std::vector<std::byte>>> MessageQueue::Receive() {
  for (;;) {
    std::unique_lock<std::mutex> lk(state_mu_);
    if (!messages_.empty()) {
      std::vector<std::byte> message = std::move(messages_.front());
      messages_.pop_front();
      senders_wq_.Wake();
      co_return message;
    }
    auto wait = receivers_wq_.PrepareWait();
    lk.unlock();
    co_await wait;
  }
}

Result<std::shared_ptr<OpenFile>> MqRegistry::Open(const std::string& name, bool create) {
  auto it = queues_.find(name);
  if (it == queues_.end()) {
    if (!create) {
      return Error{Code::kErrNoEnt, "no such message queue"};
    }
    if (injector_ != nullptr && injector_->ShouldFail(FaultSite::kMqReserve)) {
      return Error{Code::kErrNoMem, "queue descriptor reservation failed (injected)"};
    }
    it = queues_.emplace(name, std::make_shared<MessageQueue>(sched_, wake_cost_, injector_))
             .first;
  }
  return std::static_pointer_cast<OpenFile>(std::make_shared<MqHandle>(it->second));
}

Result<void> MqRegistry::Unlink(const std::string& name) {
  if (queues_.erase(name) == 0) {
    return Error{Code::kErrNoEnt, "mq_unlink: no such queue"};
  }
  return OkResult();
}

SimTask<Result<int64_t>> MqHandle::Read(std::span<std::byte> out) {
  auto message = co_await queue_->Receive();
  if (!message.ok()) {
    co_return message.error();
  }
  const uint64_t n = std::min<uint64_t>(out.size(), message->size());
  std::memcpy(out.data(), message->data(), n);
  co_return static_cast<int64_t>(n);
}

SimTask<Result<int64_t>> MqHandle::Write(std::span<const std::byte> in) {
  std::vector<std::byte> message(in.begin(), in.end());
  auto sent = co_await queue_->Send(std::move(message));
  if (!sent.ok()) {
    co_return sent.error();
  }
  co_return static_cast<int64_t>(in.size());
}

}  // namespace ufork
