// KernelCore: the machine-facing core the fork backends program against.
//
// The core owns what every subsystem shares — scheduler, machine, address space, the shared
// page table, the process table, the lock domains and the kernel counters — plus μprocess
// construction/teardown. It deliberately exposes no syscalls: those live in the per-subsystem
// services (ProcService, FileService, IpcService) layered on top by Kernel (kernel.h). Fork
// backends receive a KernelCore&, so a backend cannot reach into VFS or IPC state.
#ifndef UFORK_SRC_KERNEL_KERNEL_CORE_H_
#define UFORK_SRC_KERNEL_KERNEL_CORE_H_

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "src/base/fault_injection.h"
#include "src/base/stat_counter.h"
#include "src/base/status.h"
#include "src/cheri/capability.h"
#include "src/kernel/admission.h"
#include "src/kernel/compaction_service.h"
#include "src/kernel/fd.h"
#include "src/kernel/fork_backend.h"
#include "src/kernel/isolation.h"
#include "src/kernel/syscall_table.h"
#include "src/kernel/uproc.h"
#include "src/machine/machine.h"
#include "src/mem/address_space.h"
#include "src/mem/layout.h"
#include "src/sched/scheduler.h"
#include "src/sched/shard.h"
#include "src/sched/sync.h"

namespace ufork {

class Kernel;
class PageCache;

// Fault-around: batched CoW/CoPA fault resolution (DESIGN.md §4.8). One trap resolves a
// window of adjacent pages in the same pending state; `pte_update_batched` replaces the
// per-page `pte_update` for multi-page windows. Default max_window=1 keeps resolution
// page-at-a-time and bit-identical to the pre-fault-around kernel.
struct FaultAroundConfig {
  uint32_t max_window = 1;  // upper bound on the window, clamped to kMaxFaultAroundWindow
  // Grow/shrink the per-μprocess window from observed locality. When false, every window uses
  // max_window directly (still clipped by access span, segment and state boundaries).
  bool adaptive = true;
};

inline constexpr uint32_t kMaxFaultAroundWindow = 16;

// Demand paging: pages left entirely unmapped at the bottom of the stack segment. A touch
// there has no PTE to fill — unresolvable fault → SIGSEGV — containing runaway stack growth
// exactly at the segment's floor (DESIGN.md §4.12).
inline constexpr uint64_t kStackGuardPages = 1;

struct KernelConfig {
  int cores = 4;  // Morello SDP has 4 ARMv8.2-A cores
  ForkStrategy strategy = ForkStrategy::kCopa;
  IsolationLevel isolation = IsolationLevel::kFull;
  LayoutConfig layout;
  uint64_t phys_mem_bytes = 2 * kGiB;
  // Unikraft-style big kernel lock by default (§4.5); kPerService splits kernel sections by
  // subsystem; kUncontended models the MAS baseline's idealized fine-grained kernel.
  LockMode lock_mode = LockMode::kBigKernelLock;
  std::optional<uint64_t> aslr_seed;
  FaultAroundConfig fault_around;
  // Cross-check FrameAllocator refcounts against the sum of PTE mappings plus kernel-held
  // frame references after every syscall (SyscallScope exit). Debug aid: O(mapped pages) per
  // syscall, so off by default.
  bool check_frame_invariants = false;
  // Frame-pool watermarks / admission control / backpressure (DESIGN.md §4.10). Disabled by
  // default: the golden-cycle pins cover the disabled configuration.
  OverloadConfig overload;
  // Demand paging + unified page cache (DESIGN.md §4.12). When on, heap/stack/TLS are
  // reserved as frame-less kPteNotPresent PTEs populated on first touch (zero-fill or
  // page-cache read-through), the lowest stack page becomes an unmapped guard gap, fork
  // duplicates reservations without frames, and mmap placement uses the free-VA scan.
  // Admission watermarks, tenant caps and check_frame_invariants all bill at population
  // time automatically — frames simply don't exist earlier. Default off: eager population,
  // golden-cycle bit-identical.
  bool demand_paging = false;
  // Incremental concurrent compaction (DESIGN.md §4.13). 0 (default) disables the background
  // service entirely — CompactAddressSpace remains the stop-the-world special case and every
  // golden pin stays bit-identical. >0 bounds the pages relocated per service quantum and
  // requires host_shards == 1.
  uint64_t compact_budget_pages = 0;
  Cycles compact_step_interval = 5'000;  // virtual gap between quanta (mutators run here)
  // Park freed and moved-from regions in the AddressSpace quarantine until the revocation
  // sweep has cleared every capability bounded inside them (Cornucopia-style). Off: freed
  // ranges return to the free list immediately, as the historical kernel did.
  bool quarantine_freed_regions = false;
  CompactionTriggerConfig compact_trigger;
  CostModel costs;
  // Sharded-host execution (DESIGN.md §4.11): partition the simulated cores across this many
  // host worker threads. 1 (default) runs the historical single-threaded loop bit-identically.
  // Requires cores % host_shards == 0 and a real lock mode (kUncontended has no mutual
  // exclusion and is rejected at shards > 1).
  int host_shards = 1;
  Cycles shard_epoch_quantum = 50'000;  // virtual-time window per epoch barrier
};

struct WaitResult {
  Pid pid = kInvalidPid;
  int status = 0;
};

// Aggregated kernel counters surfaced by benchmarks and tests. Fields are StatCounters
// (relaxed atomics reading/writing like plain uint64s) because shard workers increment them
// concurrently in sharded-host mode; reads are taken at quiescent points.
struct KernelStats {
  StatCounter forks;
  StatCounter exits;
  StatCounter syscalls;
  StatCounter pages_copied_on_fault;
  StatCounter caps_relocated_on_fault;
  StatCounter caps_stripped;  // out-of-region capabilities invalidated during relocation
  StatCounter tocttou_copies;
  // Fault-around accounting (DESIGN.md §4.8). Page-accounting invariant across backends:
  //   faults_taken + pages_resolved_by_faultaround == pages_copied_on_fault +
  //   pages_reclaimed_in_place.
  StatCounter faults_taken;                  // resolvable traps actually serviced
  StatCounter pages_resolved_by_faultaround; // extra pages resolved beyond the faulting one
  StatCounter pages_reclaimed_in_place;      // last-sharer pages reclaimed without a copy
  StatCounter speculative_pages_wasted;      // fault-around pages never touched afterwards
  StatCounter fault_cycles;                  // virtual cycles spent in resolvable-fault
                                             // handling (incl. the page_fault trap cost)
  StatCounter regions_tombstoned;  // regions kept reserved at exit (shared frames remain)
  // Demand paging (DESIGN.md §4.12). Zero unless KernelConfig::demand_paging (or SysMmapFile
  // / SysSbrk, which exercise the page cache and lazy zones in any configuration).
  StatCounter pages_demand_filled;  // reservations populated by the fault path
  // Overload control (DESIGN.md §4.10). All zero unless OverloadConfig::enabled.
  StatCounter admission_trips;     // ADMITTING -> REJECTING transitions (low watermark hit)
  StatCounter admission_rejected;  // fork/spawn refused with EAGAIN
  StatCounter admission_parked;    // would-be forkers parked on the backpressure queue
  StatCounter admission_resumed;   // parked forkers woken as frames freed
  StatCounter parked_wait_cycles_max;  // longest park (virtual cycles) any forker endured
  // Incremental compaction + revocation (DESIGN.md §4.13). Zero unless compact_budget_pages>0
  // or a quarantine sweep ran. pause_cycles_max covers the stop-the-world path too, so the
  // frag-gate can compare STW pause against the incremental per-quantum maximum.
  StatCounter compact_steps;          // service quanta that moved pages or swept frames
  StatCounter compact_regions_moved;  // moves committed by the background service
  StatCounter compact_parked;         // syscalls parked on the mid-move barrier
  StatCounter pause_cycles_max;       // longest mutator-excluding pause (one quantum, or the
                                      // whole pass for stop-the-world compaction)
  StatCounter quarantined_bytes;      // cumulative bytes that entered quarantine
  StatCounter caps_revoked;           // capabilities untagged by the revocation sweep
  // Crash containment (§4.9, DESIGN.md §4.14): unresolvable capability/translation faults
  // delivered as SIGSEGV to the faulting μprocess — never a host abort. The attack battery
  // asserts this count moves in lockstep with contained-crash exit statuses.
  StatCounter faults_contained;
  // Kernel entries per syscall id, indexed by Sys and incremented by SyscallScope::Enter.
  // Σ per_syscall == syscalls (delivery points such as check_signals enter no kernel section
  // and count in neither).
  std::array<StatCounter, kNumSyscalls> per_syscall{};

  StatCounter& Count(Sys id) { return per_syscall[static_cast<size_t>(id)]; }
  uint64_t Count(Sys id) const { return per_syscall[static_cast<size_t>(id)]; }
};

class KernelCore {
 public:
  KernelCore(const KernelCore&) = delete;
  KernelCore& operator=(const KernelCore&) = delete;

  // --- boot / run -----------------------------------------------------------------------------

  // Creates a fresh μprocess running `entry` (a new program image, not a fork).
  Result<Pid> Spawn(UprocEntry entry, std::string name, int pinned_core = -1);

  // Drains the scheduler.
  void Run() { sched_.Run(); }

  // --- component access -----------------------------------------------------------------------

  Scheduler& sched() { return sched_; }
  Machine& machine() { return machine_; }
  const Machine& machine() const { return machine_; }
  AddressSpace& address_space() { return address_space_; }
  const UprocLayout& layout() const { return layout_; }
  const IsolationPolicy& policy() const { return policy_; }
  const KernelConfig& config() const { return config_; }
  const CostModel& costs() const { return machine_.costs(); }
  ForkBackend& backend() { return *backend_; }
  KernelStats& stats() { return stats_; }

  // Deterministic fault-injection registry (DESIGN.md §4.9). Wired into the frame allocator
  // and the region allocator at construction; IPC/VFS sites are wired by Kernel.
  FaultInjector& fault_injector() { return fault_injector_; }

  // Overload control (DESIGN.md §4.10): watermark hysteresis, EAGAIN rejection and the
  // backpressure park queue consulted by ProcService::Fork/Spawn. Disabled by default.
  AdmissionController& admission() { return admission_; }

  // Incremental background compaction + revocation sweeping (DESIGN.md §4.13). Inert unless
  // a backend engine is installed and compact_budget_pages > 0.
  CompactionService& compaction() { return *compaction_; }
  const CompactionService& compaction() const { return *compaction_; }

  // VFS-unified page cache (DESIGN.md §4.12): refcounted frames keyed by (inode, page),
  // read-through filled from ramdisk inodes, shared clean into SysMmapFile mappings.
  PageCache& page_cache() { return *page_cache_; }
  const PageCache& page_cache() const { return *page_cache_; }

  // Demand-paging footprint metrics. Resident = frames actually allocated; reserved = VA
  // mapped as frame-less kPteNotPresent reservations across every page table.
  uint64_t ResidentFrames() const { return machine_.frames().frames_in_use(); }
  uint64_t ReservedBytes() const;

  // --- frame-accounting invariant (DESIGN.md §4.9) --------------------------------------------

  // Enumerates frame references the kernel holds outside any page table (e.g. shm objects).
  // The registered provider calls its argument once per held reference.
  using KernelFrameRefsProvider = std::function<void(const std::function<void(FrameId)>&)>;
  void set_kernel_frame_refs_provider(KernelFrameRefsProvider provider) {
    kernel_frame_refs_ = std::move(provider);
  }

  // Verifies that every live frame's refcount equals the number of PTEs mapping it (across the
  // shared page table and all private page tables) plus kernel-held references, and that
  // frames_in_use matches the live-slot count. Returns the first mismatch as an error.
  Result<void> CheckFrameAccounting() const;
  void CheckFrameAccountingOrDie() const;

  // The VIRTUAL lock guarding `domain` under the configured mode (nullptr: lock-free kernel,
  // or sharded-host mode — there kernel sections serialize on real host mutexes instead, and
  // virtual-time lock contention is not modeled).
  VirtualLock* DomainLock(LockDomain domain) {
    return host_locks_ != nullptr ? nullptr : locks_.Get(domain);
  }
  LockMode lock_mode() const { return locks_.mode(); }
  // Host mutexes for kernel sections; non-null exactly when config.host_shards > 1.
  HostLockDomainSet* host_locks() { return host_locks_.get(); }

  // --- cross-shard process teardown (DESIGN.md §4.11) -----------------------------------------
  //
  // SIGKILL aimed at a μprocess pinned to another shard cannot destroy that μprocess's thread
  // mid-epoch (its coroutine frame may be live on the other worker's stack). The sender queues
  // the kill here; the scheduler's epoch-barrier hook delivers the queued kills while all
  // workers are parked, via the handler Kernel installs (ProcService::KillUproc).
  void QueueCrossShardKill(Pid pid);
  void set_cross_shard_kill_handler(std::function<void(Pid)> handler) {
    cross_shard_kill_ = std::move(handler);
  }

  // Wakeup latency for threads blocked on IPC objects: on SMP this is a cross-core IPI plus
  // remote scheduler entry; on a single core it is just a run-queue insertion.
  Cycles BlockingWakeCycles() const {
    return config_.cores > 1 ? config_.costs.blocking_wake : config_.costs.sched_wakeup;
  }

  Uproc* FindUproc(Pid pid);
  // SAS: μprocess whose region contains `va` (used by fault resolution and relocation).
  Uproc* UprocByAddress(uint64_t va);
  Uproc* UprocByPageTable(const PageTable* pt);
  Uproc& CurrentUproc();
  std::vector<Pid> LivePids() const;
  std::vector<Pid> AllPids() const;

  // The shared page table of the single address space (μFork backend).
  PageTable& shared_page_table() { return shared_pt_; }

  // PTE flags a region offset should have when privately owned (segment permissions).
  uint32_t SegmentFlagsAt(uint64_t offset) const;

  // --- μprocess construction (used by fork backends and Spawn) --------------------------------

  // Allocates the Uproc shell: pid, fd table (empty), registers cleared.
  Uproc& CreateUprocShell(std::string name, Pid parent);
  // Allocates a SAS region / or assigns the fixed MAS base, creates the page table view.
  Result<void> AllocateUprocMemory(Uproc& uproc, bool private_page_table);
  // Eagerly maps all segments with fresh zero frames.
  Result<void> MapFreshImage(Uproc& uproc);
  // Derives the architectural capabilities (DDC/PCC/CSP + syscall sentry) for the region.
  void InstallArchCaps(Uproc& uproc);
  // Spawns the μprocess thread executing `entry`.
  void StartUprocThread(Uproc& uproc, UprocEntry entry, int pinned_core = -1);

  // Releases all frames mapped in the μprocess region and the region itself.
  void ReleaseUprocMemory(Uproc& uproc);

  // Re-keys the SAS region-base index after compaction moves a region. Without this the index
  // entry stays keyed at the old base: UprocByAddress would resolve stale addresses to the
  // moved μprocess and miss its new range until teardown.
  void RebaseRegionIndex(uint64_t old_base, uint64_t new_base, Pid pid);

  // Undoes CreateUprocShell on a construction-failure path: removes the shell from the process
  // table and the parent's child list. Without this, a failed fork/spawn leaves a permanently
  // kRunning ghost child that makes the parent's wait() block forever instead of ECHILD.
  void DestroyUprocShell(Uproc& uproc);

  // Drops a reaped (kDead) μprocess from the process table (ProcService::ReapZombie).
  void EraseUproc(Pid pid);

  // --- user-memory access ---------------------------------------------------------------------

  // Validates a user buffer per the isolation policy; returns the (possibly narrowed)
  // authorization to use.
  Result<void> ValidateUserBuffer(Uproc& caller, const Capability& cap, uint64_t va,
                                  uint64_t len, bool is_write);

  // Transfers between user memory (through `cap`, honouring CoW/CoPA) and a kernel buffer,
  // with TOCTTOU double copy when the policy demands it.
  SimTask<Result<void>> CopyFromUser(Uproc& caller, const Capability& cap, uint64_t va,
                                     std::span<std::byte> out);
  SimTask<Result<void>> CopyToUser(Uproc& caller, const Capability& cap, uint64_t va,
                                   std::span<const std::byte> in);

  // --- metrics --------------------------------------------------------------------------------

  // Proportional set size: Σ page_size / frame_refcount over the region. Shared pages are
  // split among sharers.
  uint64_t UprocPssBytes(const Uproc& uproc) const;

  // Unique set size: only privately-owned frames, plus the backend's per-process overhead
  // (shared libraries, VM image, allocator dirtying, kernel structures). This is "the memory
  // consumed by a (forked) process" the paper's Figures 5 and 8 report: what the fork *added*.
  uint64_t UprocUssBytes(const Uproc& uproc) const;
  double UprocUssMb(const Uproc& uproc) const {
    return static_cast<double>(UprocUssBytes(uproc)) / static_cast<double>(kMiB);
  }

 protected:
  KernelCore(const KernelConfig& config, std::unique_ptr<ForkBackend> backend);
  ~KernelCore();

  Uproc* FindUprocLocked(Pid pid);  // caller holds table_mu_
  Pid NextPid();                    // caller holds table_mu_ exclusive
  void DrainCrossShardKills();      // epoch-barrier hook (all workers parked)

  // The concrete Kernel layered on this core (KernelCore is only ever a Kernel base). Used to
  // hand the full syscall surface to μprocess entry functions.
  Kernel& AsKernel();

  KernelConfig config_;
  IsolationPolicy policy_;
  UprocLayout layout_;
  Scheduler sched_;
  Machine machine_;
  AddressSpace address_space_;
  PageTable shared_pt_;
  LockDomainSet locks_;
  std::unique_ptr<ForkBackend> backend_;

  // Process-table state. Shard workers create/look up/erase μprocesses concurrently, so the
  // maps are guarded by table_mu_ (shared for the hot lookup paths, exclusive for mutation).
  mutable std::shared_mutex table_mu_;
  std::map<Pid, std::unique_ptr<Uproc>> uprocs_;
  std::map<const PageTable*, Pid> pt_owners_;
  // SAS region-base -> pid index: makes UprocByAddress one map probe instead of a process-table
  // scan (it runs on every fault-side tenant lookup and relocation probe).
  std::map<uint64_t, Pid> region_by_base_;
  Pid next_pid_ = 1;  // 1-shard mode: sequential pids, bit-identical to the historical kernel
  // Sharded mode: shard s draws pids s+1, s+1+N, s+1+2N, ... — globally unique and dependent
  // only on that shard's deterministic execution order, never on host interleaving.
  std::vector<Pid> shard_next_pid_;
  std::unique_ptr<HostLockDomainSet> host_locks_;  // non-null when host_shards > 1
  // Held while sharded so StatCounter updates are real RMWs; single-shard kernels leave
  // counters on the plain load/store fast path.
  std::unique_ptr<StatCounter::ConcurrentModeHolder> stat_concurrency_;
  std::mutex kill_mu_;
  std::vector<Pid> pending_cross_shard_kills_;
  std::function<void(Pid)> cross_shard_kill_;
  KernelStats stats_;
  FaultInjector fault_injector_;
  AdmissionController admission_;
  std::unique_ptr<PageCache> page_cache_;
  std::unique_ptr<CompactionService> compaction_;
  KernelFrameRefsProvider kernel_frame_refs_;
};

}  // namespace ufork

#endif  // UFORK_SRC_KERNEL_KERNEL_CORE_H_
