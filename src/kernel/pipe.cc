#include "src/kernel/pipe.h"

#include <algorithm>
#include <cstring>

namespace ufork {

std::pair<std::shared_ptr<OpenFile>, std::shared_ptr<OpenFile>> Pipe::Create(
    Scheduler& sched, Cycles wake_cost, FaultInjector* injector) {
  auto pipe = std::make_shared<Pipe>(sched, wake_cost, injector);
  auto read_end = std::make_shared<PipeEnd>(pipe, /*is_writer=*/false);
  auto write_end = std::make_shared<PipeEnd>(pipe, /*is_writer=*/true);
  return {read_end, write_end};
}

PipeEnd::PipeEnd(std::shared_ptr<Pipe> pipe, bool is_writer)
    : pipe_(std::move(pipe)), is_writer_(is_writer) {
  if (is_writer_) {
    ++pipe_->writer_refs_;
  } else {
    ++pipe_->reader_refs_;
  }
}

void PipeEnd::OnDup() {
  std::lock_guard<std::mutex> lk(pipe_->state_mu_);
  ++refs_;
}

void PipeEnd::OnClose() {
  std::lock_guard<std::mutex> lk(pipe_->state_mu_);
  UF_CHECK(refs_ > 0);
  if (--refs_ > 0) {
    return;
  }
  if (is_writer_) {
    if (--pipe_->writer_refs_ == 0) {
      pipe_->readers_wq_.WakeAll();  // deliver EOF to blocked readers
    }
  } else {
    if (--pipe_->reader_refs_ == 0) {
      pipe_->writers_wq_.WakeAll();  // deliver EPIPE to blocked writers
    }
  }
}

// Both transfer loops follow the condvar protocol: check-and-mutate the ring under state_mu_;
// when the transfer must block, register in the wait queue BEFORE dropping the lock (so the
// peer that changes the state afterwards cannot miss the registration), then suspend unlocked
// — a host mutex must never be held across a coroutine suspension.
SimTask<Result<int64_t>> PipeEnd::Read(std::span<std::byte> out) {
  if (is_writer_) {
    co_return Error{Code::kErrBadFd, "read on pipe write end"};
  }
  if (out.empty()) {
    co_return 0;
  }
  Pipe& p = *pipe_;
  for (;;) {
    std::unique_lock<std::mutex> lk(p.state_mu_);
    if (p.Available() > 0) {
      const uint64_t n = std::min<uint64_t>(out.size(), p.Available());
      for (uint64_t i = 0; i < n; ++i) {
        out[i] = p.buffer_[(p.head_ + i) % p.buffer_.size()];
      }
      p.head_ = (p.head_ + n) % p.buffer_.size();
      p.fill_ -= n;
      p.writers_wq_.WakeAll();
      co_return static_cast<int64_t>(n);
    }
    if (p.writer_refs_ == 0) {
      co_return 0;  // EOF
    }
    auto wait = p.readers_wq_.PrepareWait();
    lk.unlock();
    co_await wait;
  }
}

SimTask<Result<int64_t>> PipeEnd::Write(std::span<const std::byte> in) {
  if (!is_writer_) {
    co_return Error{Code::kErrBadFd, "write on pipe read end"};
  }
  Pipe& p = *pipe_;
  uint64_t written = 0;
  while (written < in.size()) {
    std::unique_lock<std::mutex> lk(p.state_mu_);
    if (p.reader_refs_ == 0) {
      co_return Error{Code::kErrPipe, "write on pipe with no readers"};
    }
    if (p.Space() == 0) {
      auto wait = p.writers_wq_.PrepareWait();
      lk.unlock();
      co_await wait;
      continue;
    }
    if (p.injector_ != nullptr && p.injector_->ShouldFail(FaultSite::kPipeGrow)) {
      // Checked before any byte of this chunk is staged: either nothing of the write is
      // visible (ENOMEM) or a prefix of whole chunks is (POSIX short write) — never a torn
      // chunk.
      if (written == 0) {
        co_return Error{Code::kErrNoMem, "pipe buffer growth failed (injected)"};
      }
      co_return static_cast<int64_t>(written);
    }
    const uint64_t n = std::min<uint64_t>(in.size() - written, p.Space());
    const uint64_t tail = (p.head_ + p.fill_) % p.buffer_.size();
    for (uint64_t i = 0; i < n; ++i) {
      p.buffer_[(tail + i) % p.buffer_.size()] = in[written + i];
    }
    p.fill_ += n;
    written += n;
    p.readers_wq_.WakeAll();
  }
  co_return static_cast<int64_t>(written);
}

}  // namespace ufork
