// SyscallScope: the one implementation of the kernel entry/exit protocol.
//
// Construct it at the top of a syscall, `co_await scope.Enter()`, and return: the destructor
// charges the exit cost and releases the domain lock on every path, so early error returns can
// no longer leak (or double-release) the lock. The protocol, in order, matches the historical
// EnterSyscall/LeaveSyscall pair exactly — the golden-cycle pins depend on that:
//
//   Enter:  count the syscall (total + per-id) → charge the backend's entry cost → invoke the
//           sealed entry capability (error return: no lock taken) → charge argument-validation
//           → acquire the syscall's domain lock (per the configured LockMode).
//   Leave:  charge half the entry cost (context restore) → release the lock.
//
// Blocking syscalls (SyscallClass::kBlocking) call Leave() explicitly before suspending — the
// kernel never blocks holding a domain lock — and Reacquire() after a wakeup when they must
// re-enter their kernel section (no entry charges: the caller never left the kernel).
//
// Invariants enforced (the lock-asymmetry assertions):
//   * Enter at most once per scope; explicit Leave only on kBlocking syscalls.
//   * Leave without a matching Enter/Reacquire CHECK-fails (double-release).
//   * A scope destroyed while holding releases exactly once; VirtualLock::Release's owner
//     check catches frames torn down from a foreign thread (lock leak).
#ifndef UFORK_SRC_KERNEL_SYSCALL_SCOPE_H_
#define UFORK_SRC_KERNEL_SYSCALL_SCOPE_H_

#include "src/base/status.h"
#include "src/kernel/kernel_core.h"
#include "src/kernel/syscall_table.h"
#include "src/kernel/uproc.h"
#include "src/sched/sync.h"
#include "src/sched/task.h"

namespace ufork {

class SyscallScope {
 public:
  SyscallScope(KernelCore& core, Uproc& caller, Sys id)
      : core_(core), caller_(caller), desc_(SyscallDescOf(id)) {}
  ~SyscallScope();

  SyscallScope(const SyscallScope&) = delete;
  SyscallScope& operator=(const SyscallScope&) = delete;

  // Runs the entry protocol. On error (sealed-entry check failed) the scope holds nothing and
  // the destructor is a no-op; the caller must return the error.
  SimTask<Result<void>> Enter();

  // Explicitly leaves the kernel section before a suspension point. Only legal on syscalls the
  // table declares kBlocking.
  void Leave();

  // Re-enters the kernel section after a wakeup (e.g. the wait() retry loop). Lock only — the
  // caller never left the syscall, so no entry cost and no recount.
  SimTask<void> Reacquire();

 private:
  void ChargeExitAndRelease();

  KernelCore& core_;
  Uproc& caller_;
  const SyscallDesc& desc_;
  VirtualLock* lock_ = nullptr;  // domain lock held while open (null: lock-free mode)
  // Sharded-host mode: the domain's real host mutex instead (DESIGN.md §4.11). Exactly one of
  // lock_/host_locks_ is non-null inside a kernel section; host mutexes charge no cycles.
  HostLockDomainSet* host_locks_ = nullptr;
  bool entered_ = false;         // Enter() completed successfully at least once
  bool open_ = false;            // currently inside the kernel section
};

}  // namespace ufork

#endif  // UFORK_SRC_KERNEL_SYSCALL_SCOPE_H_
