#include "src/kernel/fd.h"

namespace ufork {

Result<int> FdTable::Install(std::shared_ptr<OpenFile> file) {
  for (int fd = 0; fd < kMaxFds; ++fd) {
    if (slots_[static_cast<size_t>(fd)] == nullptr) {
      slots_[static_cast<size_t>(fd)] = std::move(file);
      return fd;
    }
  }
  return Error{Code::kErrMfile, "descriptor table full"};
}

Result<std::shared_ptr<OpenFile>> FdTable::Get(int fd) const {
  if (fd < 0 || fd >= kMaxFds || slots_[static_cast<size_t>(fd)] == nullptr) {
    return Error{Code::kErrBadFd, "bad file descriptor"};
  }
  return slots_[static_cast<size_t>(fd)];
}

Result<void> FdTable::Close(int fd) {
  if (fd < 0 || fd >= kMaxFds || slots_[static_cast<size_t>(fd)] == nullptr) {
    return Error{Code::kErrBadFd, "close of bad file descriptor"};
  }
  slots_[static_cast<size_t>(fd)]->OnClose();
  slots_[static_cast<size_t>(fd)].reset();
  return OkResult();
}

Result<int> FdTable::Dup2(int oldfd, int newfd) {
  UF_ASSIGN_OR_RETURN(std::shared_ptr<OpenFile> file, Get(oldfd));
  if (newfd < 0 || newfd >= kMaxFds) {
    return Error{Code::kErrBadFd, "dup2 target out of range"};
  }
  if (newfd == oldfd) {
    return newfd;
  }
  if (slots_[static_cast<size_t>(newfd)] != nullptr) {
    slots_[static_cast<size_t>(newfd)]->OnClose();
  }
  file->OnDup();
  slots_[static_cast<size_t>(newfd)] = std::move(file);
  return newfd;
}

std::shared_ptr<FdTable> FdTable::Clone() const {
  auto clone = std::make_shared<FdTable>();
  for (int fd = 0; fd < kMaxFds; ++fd) {
    const auto& file = slots_[static_cast<size_t>(fd)];
    if (file != nullptr) {
      file->OnDup();
      clone->slots_[static_cast<size_t>(fd)] = file;
    }
  }
  return clone;
}

void FdTable::CloseAll() {
  for (auto& slot : slots_) {
    if (slot != nullptr) {
      slot->OnClose();
      slot.reset();
    }
  }
}

int FdTable::OpenCount() const {
  int n = 0;
  for (const auto& slot : slots_) {
    n += slot != nullptr ? 1 : 0;
  }
  return n;
}

}  // namespace ufork
