// Parameterised isolation (paper §3.6, building block 6).
//
// Real deployments have different trust models; μFork lets each pick its isolation level:
//   * kNone  — the entire system is trusted to function correctly (e.g. Redis snapshotting a
//              trusted child): capabilities are not confined to the μprocess region, kernel
//              argument checks and TOCTTOU protections are off.
//   * kFault — the program is trusted but may contain bugs (e.g. Nginx workers):
//              non-adversarial fault isolation — capability confinement + basic kernel checks,
//              but no TOCTTOU bounce-buffering.
//   * kFull  — adversarial fault isolation (e.g. qmail-style privilege separation):
//              confinement, full argument validation, and TOCTTOU copy-in/copy-out.
#ifndef UFORK_SRC_KERNEL_ISOLATION_H_
#define UFORK_SRC_KERNEL_ISOLATION_H_

namespace ufork {

enum class IsolationLevel { kNone, kFault, kFull };

struct IsolationPolicy {
  bool confine_caps = true;     // bound each μprocess's capabilities to its region
  bool validate_args = true;    // sanity-check syscall arguments in the kernel
  bool tocttou_protect = true;  // copy referenced buffers through kernel memory

  static IsolationPolicy FromLevel(IsolationLevel level) {
    switch (level) {
      case IsolationLevel::kNone:
        return IsolationPolicy{false, false, false};
      case IsolationLevel::kFault:
        return IsolationPolicy{true, true, false};
      case IsolationLevel::kFull:
        return IsolationPolicy{true, true, true};
    }
    return IsolationPolicy{};
  }
};

const char* IsolationLevelName(IsolationLevel level);

}  // namespace ufork

#endif  // UFORK_SRC_KERNEL_ISOLATION_H_
