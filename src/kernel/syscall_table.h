// The declarative syscall table: one row per system call.
//
// Every syscall the kernel exports is described here once — its name, its cost/blocking class
// and the lock domain its kernel section belongs to. SyscallScope (syscall_scope.h) consumes a
// row to run the shared entry/exit protocol (stats, entry cost, sealed-entry check, argument
// validation charge, domain lock), and KernelStats keeps one counter per row, so adding a
// syscall means adding a row — not re-deriving the prologue by hand.
#ifndef UFORK_SRC_KERNEL_SYSCALL_TABLE_H_
#define UFORK_SRC_KERNEL_SYSCALL_TABLE_H_

#include <array>
#include <cstddef>
#include <cstdint>

#include "src/sched/sync.h"

namespace ufork {

// Syscall identifiers. Order is the table order; kCount is the table size.
enum class Sys : uint16_t {
  kFork,
  kWait,
  kExit,
  kGetPid,
  kGetPPid,
  kKill,
  kSigaction,
  kCheckSignals,
  kExec,
  kSpawn,
  kNanosleep,
  kThreadCreate,
  kThreadJoin,
  kMmapAnon,
  kOpen,
  kClose,
  kRead,
  kWrite,
  kSeek,
  kDup2,
  kUnlink,
  kRename,
  kFileSize,
  kPipe,
  kMqOpen,
  kShmOpen,
  kShmMap,
  kShmUnlink,
  kFutexWait,
  kFutexWake,
  kSbrk,
  kMmapFile,
  kCount,
};

inline constexpr size_t kNumSyscalls = static_cast<size_t>(Sys::kCount);

// How the call interacts with its domain lock.
enum class SyscallClass : uint8_t {
  kFast,      // never suspends while in the kernel: the scope holds the lock entry-to-return
  kBlocking,  // may suspend mid-call: drops the lock explicitly first (SyscallScope::Leave)
  kNoEntry,   // a delivery point, not a kernel entry: no sealed-entry invocation, no lock,
              // never counted in KernelStats::syscalls
};

const char* SyscallClassName(SyscallClass klass);

struct SyscallDesc {
  Sys id;
  const char* name;
  SyscallClass klass;
  LockDomain domain;
};

// The full table, indexed by Sys.
const std::array<SyscallDesc, kNumSyscalls>& SyscallTable();

const SyscallDesc& SyscallDescOf(Sys id);

}  // namespace ufork

#endif  // UFORK_SRC_KERNEL_SYSCALL_TABLE_H_
