// Incremental concurrent compaction service (DESIGN.md §4.13).
//
// CompactAddressSpace (src/ufork/compaction.cc) reclaims contiguity in one stop-the-world
// pass — a global pause proportional to the bytes moved, which is exactly what a serving
// fleet's tail latency cannot absorb (bench_overload's p99/p999 gates). This service runs the
// same planner/mover machinery as a low-priority simulated context instead: each quantum it
// takes the kCompact lock domain, advances the in-flight region move by at most
// KernelConfig::compact_budget_pages pages (or a budgeted slice of the revocation sweep),
// records the quantum's duration against pause_cycles_max, and sleeps — mutators run between
// quanta.
//
// Because mutators run while a region is mid-move, the service maintains a forwarding window
// (from/to bases plus the moved-page watermark): raw accesses that miss on the moved-out half
// resolve through Machine's VA forwarder, and syscalls entering from the relocating μprocess
// park on the barrier WaitQueue until the move commits or cancels (SyscallScope::Enter /
// Reacquire). The planner only selects quiescent owners (every thread blocked), so the window
// is observed only by *other* μprocesses — the owner itself resumes after the move, at its new
// base, through the barrier.
//
// The kernel layer knows nothing about backend relocation mechanics: the μFork planner/mover
// lives in src/ufork/compaction.cc and is installed as a CompactionEngine by MakeUforkKernel.
// Kernels without an engine (MAS, VM-clone) simply never run the service.
#ifndef UFORK_SRC_KERNEL_COMPACTION_SERVICE_H_
#define UFORK_SRC_KERNEL_COMPACTION_SERVICE_H_

#include <cstdint>
#include <memory>
#include <optional>

#include "src/sched/scheduler.h"
#include "src/sched/task.h"

namespace ufork {

class KernelCore;
class Uproc;

// One in-flight region move, advanced a budgeted number of pages at a time. Implementations
// live with the fork backend: they own the remap/relocate mechanics and must keep the region
// recoverable whole-at-one-base after every Step or Cancel.
class RegionMover {
 public:
  enum class Status {
    kMoving,     // pages remain; the forwarding window covers the moved prefix
    kCommitted,  // region now lives wholly at to_base; the old range is freed or quarantined
    kAborted,    // move rolled back; region lives wholly at from_base again
  };

  virtual ~RegionMover() = default;

  virtual uint64_t from_base() const = 0;
  virtual uint64_t to_base() const = 0;
  virtual uint64_t size() const = 0;
  virtual uint64_t moved_pages() const = 0;

  // Moves up to `budget_pages` further pages (0 = unbounded, the stop-the-world case).
  virtual Status Step(uint64_t budget_pages) = 0;

  // Rolls the move back so the region is whole at from_base. Valid only while kMoving.
  virtual void Cancel() = 0;

  // If `page_va` lies in the already-moved prefix of the source half, returns the equivalent
  // destination address; nullopt otherwise.
  virtual std::optional<uint64_t> ForwardVa(uint64_t page_va) const = 0;
};

// Backend-specific compaction planning and revocation sweeping.
class CompactionEngine {
 public:
  virtual ~CompactionEngine() = default;

  // Plans the next profitable region move and grants its target range; nullptr when the
  // current planning pass has considered every candidate. `require_quiescent` restricts
  // candidates to μprocesses whose every thread is blocked; `batched_remap` selects the
  // batched PTE-update cost for multi-page chunks (the incremental path).
  virtual std::unique_ptr<RegionMover> NextMove(bool require_quiescent,
                                                bool batched_remap) = 0;

  // Restarts planning from the lowest base (a new pass over the movable list).
  virtual void ResetPass() = 0;

  // Advances the budgeted revocation sweep by at most `max_frames` tagged frames. Returns
  // true while quarantined ranges remain unswept.
  virtual bool SweepStep(uint64_t max_frames) = 0;
  virtual bool SweepPending() const = 0;
};

// Fragmentation-pressure trigger, mirroring the admission watermarks (DESIGN.md §4.10):
// region churn arms the service once slot fragmentation — the fraction of region-aligned
// allocation slots below the high-water region holding no live region
// (AddressSpace::SlotFragmentation) — crosses arm_fragmentation; a completed pass disarms
// once it falls below clear_fragmentation.
struct CompactionTriggerConfig {
  bool enabled = false;
  double arm_fragmentation = 0.5;
  double clear_fragmentation = 0.25;
};

// Snapshot of the in-flight move's forwarding window (tests, diagnostics).
struct RelocationWindow {
  uint64_t from_base = 0;
  uint64_t to_base = 0;
  uint64_t size = 0;
  uint64_t moved_pages = 0;
};

class CompactionService {
 public:
  explicit CompactionService(KernelCore& core);
  ~CompactionService();

  CompactionService(const CompactionService&) = delete;
  CompactionService& operator=(const CompactionService&) = delete;

  void InstallEngine(std::unique_ptr<CompactionEngine> engine);
  bool engine_installed() const { return engine_ != nullptr; }

  // Arms the service unconditionally and spawns the background context if it is not already
  // running. Returns false when incremental compaction is unavailable (no engine installed,
  // or compact_budget_pages == 0).
  bool Kick();

  // Region-churn hook (ReleaseUprocMemory): evaluates the fragmentation trigger and starts
  // the service when pressure — or a quarantine sweep backlog — warrants it.
  void OnRegionChurn();

  // True when `base` is the source base of the in-flight move: syscalls entered from that
  // region must park until the move completes. Hot path: one load and compare (user region
  // bases are ≥ kUserBase, so 0 doubles as "no move in flight").
  bool NeedsBarrier(uint64_t base) const { return relocating_base_ == base; }

  // Parks the caller until the move over its region commits or cancels.
  SimTask<void> BarrierOn(const Uproc& caller);

  // SIGKILL teardown: if `uproc`'s region is mid-move, cancels and rolls back synchronously
  // on the killer's thread and wakes barrier waiters, so teardown never sees a region split
  // across two bases.
  void CancelMoveFor(const Uproc& uproc);

  std::optional<RelocationWindow> CurrentMove() const;
  bool active() const { return running_; }

  // Machine VA-forwarder hook: moved-prefix source addresses resolve to the destination half.
  std::optional<uint64_t> ForwardVa(uint64_t page_va) const;

 private:
  SimTask<void> RunService();
  void EnsureRunning();
  void FinishMove(bool committed);
  bool TriggerWants() const;

  KernelCore& core_;
  WaitQueue barrier_;
  std::unique_ptr<CompactionEngine> engine_;
  std::unique_ptr<RegionMover> mover_;
  uint64_t relocating_base_ = 0;  // source base of the in-flight move; 0 = none
  bool armed_ = false;
  bool running_ = false;
  bool moved_any_this_pass_ = false;
};

}  // namespace ufork

#endif  // UFORK_SRC_KERNEL_COMPACTION_SERVICE_H_
