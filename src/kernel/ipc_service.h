// IpcService: inter-process-communication syscalls and state.
//
// Owns the kIpc lock domain: pipes, POSIX message queues, POSIX shared memory objects and
// futexes (keyed by physical location so MAP_SHARED futexes pair up across μprocesses).
#ifndef UFORK_SRC_KERNEL_IPC_SERVICE_H_
#define UFORK_SRC_KERNEL_IPC_SERVICE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/base/status.h"
#include "src/cheri/capability.h"
#include "src/kernel/mqueue.h"
#include "src/kernel/uproc.h"
#include "src/sched/scheduler.h"
#include "src/sched/task.h"

namespace ufork {

class Kernel;

class IpcService {
 public:
  explicit IpcService(Kernel& kernel);

  IpcService(const IpcService&) = delete;
  IpcService& operator=(const IpcService&) = delete;

  MqRegistry& mqueues() { return mqueues_; }

  SimTask<Result<std::pair<int, int>>> Pipe(Uproc& caller);
  SimTask<Result<int>> MqOpen(Uproc& caller, std::string name, bool create);

  SimTask<Result<int>> ShmOpen(Uproc& caller, std::string name, uint64_t size);
  SimTask<Result<Capability>> ShmMap(Uproc& caller, int shm_id);
  SimTask<Result<void>> ShmUnlink(Uproc& caller, std::string name);

  SimTask<Result<void>> FutexWait(Uproc& caller, Capability cap, uint64_t va,
                                  uint64_t expected);
  SimTask<Result<uint64_t>> FutexWake(Uproc& caller, Capability cap, uint64_t va, uint64_t n);

  // Enumerates the frame references the shm registry holds outside any page table, for the
  // kernel's frame-accounting invariant checker.
  void ForEachShmFrame(const std::function<void(FrameId)>& fn) const {
    for (const auto& [id, object] : shm_objects_) {
      for (const FrameId frame : object.frames) {
        fn(frame);
      }
    }
  }

 private:
  struct ShmObject {
    std::string name;
    std::vector<FrameId> frames;
    uint64_t size = 0;
    bool unlinked = false;
  };

  Kernel& kernel_;
  MqRegistry mqueues_;
  std::map<std::string, int> shm_by_name_;
  std::map<int, ShmObject> shm_objects_;
  int next_shm_id_ = 1;
  // Futex wait queues keyed by physical location (frame, offset): shared-memory futexes work
  // across μprocesses mapping the same frames.
  std::map<std::pair<FrameId, uint64_t>, std::unique_ptr<WaitQueue>> futexes_;
};

}  // namespace ufork

#endif  // UFORK_SRC_KERNEL_IPC_SERVICE_H_
