#include "src/kernel/kernel.h"

namespace ufork {

SimTask<Result<void>> Kernel::SysPrivilegedOp(Uproc& caller) {
  // Not a syscall proper: models user code attempting an MSR/MRS-class instruction directly.
  // The hardware checks the System permission of the executing PCC (§4.4, second principle).
  if (!caller.regs.pcc.HasPerms(kPermSystem)) {
    co_return Error{Code::kFaultSystem, "privileged instruction without System permission"};
  }
  co_return OkResult();
}

}  // namespace ufork
