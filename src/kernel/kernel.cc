#include "src/kernel/kernel.h"

#include <algorithm>

#include "src/base/log.h"

namespace ufork {
namespace {

// Virtual address map of the single address space:
//   [kKernelBase, kKernelTop)  kernel text/data (source of sealed syscall entries)
//   [kUserBase,   kUserTop)    μprocess regions, handed out by the AddressSpace allocator
constexpr uint64_t kKernelBase = 256 * kMiB;
constexpr uint64_t kKernelTop = 1 * kGiB;
constexpr uint64_t kUserBase = 4 * kGiB;
constexpr uint64_t kUserTop = 1ULL << 47;

// μprocess regions are aligned generously so capability-representable bounds (see
// compressed_cap.h) hold for whole-region capabilities.
constexpr uint64_t kRegionAlign = 2 * kMiB;

// Wakeup latency for threads blocked on IPC objects: on SMP this is a cross-core IPI plus
// remote scheduler entry; on a single core it is just a run-queue insertion.
Cycles EffectiveBlockingWake(const KernelConfig& config) {
  return config.cores > 1 ? config.costs.blocking_wake : config.costs.sched_wakeup;
}

}  // namespace

const char* IsolationLevelName(IsolationLevel level) {
  switch (level) {
    case IsolationLevel::kNone:
      return "none";
    case IsolationLevel::kFault:
      return "fault";
    case IsolationLevel::kFull:
      return "full";
  }
  return "?";
}

const char* ForkStrategyName(ForkStrategy strategy) {
  switch (strategy) {
    case ForkStrategy::kCopa:
      return "CoPA";
    case ForkStrategy::kCoa:
      return "CoA";
    case ForkStrategy::kFull:
      return "FullCopy";
    case ForkStrategy::kUnsafeCow:
      return "UnsafeCoW";
  }
  return "?";
}

Kernel::Kernel(const KernelConfig& config, std::unique_ptr<ForkBackend> backend)
    : config_(config),
      policy_(IsolationPolicy::FromLevel(config.isolation)),
      layout_(config.layout),
      sched_(config.cores),
      machine_(MachineConfig{config.phys_mem_bytes / kPageSize, config.costs}),
      address_space_(kUserBase, kUserTop),
      vfs_(),
      mqueues_(sched_, EffectiveBlockingWake(config)),
      bkl_(sched_),
      backend_(std::move(backend)) {
  UF_CHECK_MSG(backend_ != nullptr, "a ForkBackend is required");
  machine_.set_cycle_sink([this](Cycles c) { sched_.Charge(c); });
  machine_.set_fault_resolver(
      [this](const PageFaultInfo& info) { return backend_->ResolveFault(*this, info); });
  sched_.set_context_switch_hook([this](SimThread* prev, SimThread* next) {
    Uproc* prev_proc = prev != nullptr ? static_cast<Uproc*>(prev->context()) : nullptr;
    Uproc* next_proc = next != nullptr ? static_cast<Uproc*>(next->context()) : nullptr;
    return backend_->ContextSwitchCost(costs(), prev_proc, next_proc);
  });
  if (config_.aslr_seed.has_value()) {
    address_space_.EnableAslr(*config_.aslr_seed);
  }
}

Kernel::~Kernel() = default;

// --- μprocess lookup -----------------------------------------------------------------------

Uproc* Kernel::FindUproc(Pid pid) {
  auto it = uprocs_.find(pid);
  return it == uprocs_.end() ? nullptr : it->second.get();
}

Uproc* Kernel::UprocByAddress(uint64_t va) {
  const auto base = address_space_.RegionContaining(va);
  if (!base.has_value()) {
    return nullptr;
  }
  for (auto& [pid, uproc] : uprocs_) {
    if (uproc->base == *base && uproc->state == Uproc::State::kRunning) {
      return uproc.get();
    }
  }
  return nullptr;
}

Uproc* Kernel::UprocByPageTable(const PageTable* pt) {
  auto it = pt_owners_.find(pt);
  return it == pt_owners_.end() ? nullptr : FindUproc(it->second);
}

Uproc& Kernel::CurrentUproc() {
  Uproc* uproc = static_cast<Uproc*>(sched_.Current().context());
  UF_CHECK_MSG(uproc != nullptr, "current thread is not a μprocess thread");
  return *uproc;
}

std::vector<Pid> Kernel::LivePids() const {
  std::vector<Pid> pids;
  for (const auto& [pid, uproc] : uprocs_) {
    if (uproc->state == Uproc::State::kRunning) {
      pids.push_back(pid);
    }
  }
  return pids;
}

std::vector<Pid> Kernel::AllPids() const {
  std::vector<Pid> pids;
  pids.reserve(uprocs_.size());
  for (const auto& [pid, uproc] : uprocs_) {
    pids.push_back(pid);
  }
  return pids;
}

// --- segment permissions -------------------------------------------------------------------

uint32_t Kernel::SegmentFlagsAt(uint64_t offset) const {
  if (offset >= layout_.text_off() && offset < layout_.text_off() + layout_.text_size()) {
    return kPteRead | kPteExec;
  }
  if (offset >= layout_.rodata_off() &&
      offset < layout_.rodata_off() + layout_.rodata_size()) {
    return kPteRead;
  }
  return kPteRw;  // GOT, data, heap, stack, tls, mmap
}

// --- μprocess construction ------------------------------------------------------------------

Uproc& Kernel::CreateUprocShell(std::string name, Pid parent) {
  const Pid pid = next_pid_++;
  auto uproc = std::make_unique<Uproc>(pid, sched_);
  uproc->name = std::move(name);
  uproc->parent_pid = parent;
  Uproc& ref = *uproc;
  uprocs_.emplace(pid, std::move(uproc));
  if (Uproc* parent_proc = FindUproc(parent)) {
    parent_proc->children.push_back(pid);
  }
  return ref;
}

Result<void> Kernel::AllocateUprocMemory(Uproc& uproc, bool private_page_table) {
  uproc.size = layout_.TotalSize();
  if (private_page_table) {
    // MAS / VM-clone: identical layout in a private address space — every process sees the
    // same virtual base, which is why no relocation is needed (and why it is not a SAS).
    uproc.base = kUserBase;
    uproc.owned_pt = std::make_unique<PageTable>();
    uproc.page_table = uproc.owned_pt.get();
    pt_owners_[uproc.page_table] = uproc.pid();
  } else {
    UF_ASSIGN_OR_RETURN(uproc.base,
                        address_space_.AllocateRegion(uproc.size, kRegionAlign));
    uproc.page_table = &shared_pt_;
  }
  uproc.mmap_cursor = uproc.base + layout_.mmap_off();
  return OkResult();
}

Result<void> Kernel::MapFreshImage(Uproc& uproc) {
  // All segments except the on-demand mmap zone are mapped eagerly with zero frames — a static
  // unikernel-style image with the build-time-configured static heap (§4.2).
  const uint64_t image_bytes = layout_.mmap_off();
  for (uint64_t off = 0; off < image_bytes; off += kPageSize) {
    UF_ASSIGN_OR_RETURN(const FrameId frame, machine_.frames().Allocate());
    machine_.Charge(costs().frame_alloc + costs().pte_dup);
    uproc.page_table->Map(uproc.base + off, frame, SegmentFlagsAt(off));
  }
  return OkResult();
}

void Kernel::InstallArchCaps(Uproc& uproc) {
  const uint32_t data_perms = kPermLoad | kPermStore | kPermLoadCap | kPermStoreCap |
                              kPermGlobal;
  if (policy_.confine_caps) {
    uproc.regs.ddc = Capability::Root(uproc.base, uproc.size, data_perms);
  } else {
    // Isolation disabled (R4): ambient authority over the whole user area.
    uproc.regs.ddc = Capability::Root(kUserBase, kUserTop - kUserBase, data_perms);
  }
  uproc.regs.pcc = Capability::Root(uproc.base + layout_.text_off(), layout_.text_size(),
                                    kPermLoad | kPermExecute);
  uproc.regs.csp = uproc.regs.ddc
                       .WithBounds(uproc.base + layout_.stack_off(), layout_.stack_size())
                       .WithAddress(uproc.base + layout_.stack_off() + layout_.stack_size());
  // Sealed kernel entry: the only way into kernel code, no trap required (§4.4).
  uproc.syscall_sentry =
      Capability::Root(kKernelBase, kKernelTop - kKernelBase, kPermLoad | kPermExecute)
          .AsSentry();
}

void Kernel::StartUprocThread(Uproc& uproc, UprocEntry entry, int pinned_core) {
  auto wrapper = [](Kernel& kernel, Uproc& proc, UprocEntry fn) -> SimTask<void> {
    co_await fn(kernel, proc);
    // The entry returned without calling exit(): POSIX main() return implies exit(0).
    if (proc.state == Uproc::State::kRunning) {
      co_await kernel.SysExit(proc, 0);
    }
  };
  const ThreadId tid =
      sched_.Spawn(wrapper(*this, uproc, std::move(entry)), uproc.name, pinned_core);
  uproc.thread = tid;
  uproc.threads.assign(1, tid);
  if (uproc.thread_exit_wait == nullptr) {
    uproc.thread_exit_wait = std::make_unique<WaitQueue>(sched_);
  }
  // Attach the uproc to the thread control block for CurrentUproc() and context-switch
  // pricing. Spawn only enqueues, so the thread cannot have observed a null context.
  sched_.SetThreadContext(tid, &uproc);
}

Result<Pid> Kernel::Spawn(UprocEntry entry, std::string name, int pinned_core) {
  Uproc& uproc = CreateUprocShell(std::move(name), kInvalidPid);
  UF_RETURN_IF_ERROR(AllocateUprocMemory(uproc, backend_->private_page_tables()));
  UF_RETURN_IF_ERROR(MapFreshImage(uproc));
  InstallArchCaps(uproc);
  uproc.fds = std::make_shared<FdTable>();
  StartUprocThread(uproc, std::move(entry), pinned_core);
  return uproc.pid();
}

void Kernel::ReleaseUprocMemory(Uproc& uproc) {
  if (uproc.page_table == nullptr) {
    return;
  }
  std::vector<uint64_t> pages;
  uproc.page_table->ForEachMapped(uproc.base, uproc.base + uproc.size,
                                  [&pages](uint64_t va, const Pte&) { pages.push_back(va); });
  bool frames_still_shared = false;
  for (uint64_t va : pages) {
    const FrameId frame = uproc.page_table->Unmap(va);
    machine_.frames().Release(frame);
    frames_still_shared |= machine_.frames().IsLive(frame);
  }
  if (uproc.owned_pt != nullptr) {
    pt_owners_.erase(uproc.owned_pt.get());
    uproc.owned_pt.reset();
  } else if (frames_still_shared && uproc.forks_performed > 0) {
    // A fork parent exiting while children still share its frames: those frames may contain
    // capabilities pointing into THIS region, and the relocation scanner resolves them through
    // AddressSpace::RegionContaining. Keep the region reserved (tombstone) so relocation stays
    // well-defined; reclaiming such regions is the compaction future work of §6.
    ++stats_.regions_tombstoned;
  } else {
    address_space_.FreeRegion(uproc.base);
  }
  uproc.page_table = nullptr;
}

// --- syscall plumbing -------------------------------------------------------------------------

SimTask<Result<void>> Kernel::EnterSyscall(Uproc& caller) {
  ++stats_.syscalls;
  machine_.Charge(costs().SyscallEntry(backend_->syscall_kind()));
  // Entering the kernel means invoking the sealed entry capability: the hardware unseals it
  // and branches to the fixed kernel entry point; anything else faults (§4.4).
  auto target = caller.syscall_sentry.InvokedSentry();
  if (!target.ok()) {
    co_return target.error();
  }
  if (policy_.validate_args) {
    machine_.Charge(costs().validation_check);
  }
  if (config_.use_bkl) {
    co_await bkl_.Acquire();
  }
  co_return OkResult();
}

void Kernel::LeaveSyscall() {
  // Syscall return path: restoring the caller's context costs about half the entry. For a
  // blocked caller this lands after the wakeup, so it is never absorbed into wait time.
  machine_.Charge(costs().SyscallEntry(backend_->syscall_kind()) / 2);
  if (config_.use_bkl) {
    bkl_.Release();
  }
}

Result<void> Kernel::ValidateUserBuffer(Uproc& caller, const Capability& cap, uint64_t va,
                                        uint64_t len, bool is_write) {
  // The hardware enforces the capability check regardless of policy when the transfer happens;
  // the kernel-side validation models the explicit checks of §4.4 (third principle).
  if (!policy_.validate_args) {
    return OkResult();
  }
  machine_.Charge(costs().validation_check);
  UF_RETURN_IF_ERROR(cap.CheckAccess(va, len, is_write ? kPermStore : kPermLoad));
  const bool confined =
      caller.ContainsVa(va) && (len == 0 || caller.ContainsVa(va + len - 1));
  if (policy_.confine_caps && !confined) {
    return Error{Code::kErrAccess, "buffer outside μprocess region"};
  }
  return OkResult();
}

SimTask<Result<void>> Kernel::CopyFromUser(Uproc& caller, const Capability& cap, uint64_t va,
                                           std::span<std::byte> out) {
  if (policy_.tocttou_protect) {
    // Copy user memory into the kernel before any check-use sequence (§4.4, fourth principle).
    machine_.Charge(costs().TocttouCopy(out.size()));
    ++stats_.tocttou_copies;
  }
  co_return machine_.Load(*caller.page_table, cap, va, out);
}

SimTask<Result<void>> Kernel::CopyToUser(Uproc& caller, const Capability& cap, uint64_t va,
                                         std::span<const std::byte> in) {
  if (policy_.tocttou_protect) {
    machine_.Charge(costs().TocttouCopy(in.size()));
    ++stats_.tocttou_copies;
  }
  co_return machine_.Store(*caller.page_table, cap, va, in);
}

// --- process-lifecycle syscalls ----------------------------------------------------------------

SimTask<Result<Pid>> Kernel::SysFork(Uproc& caller, UprocEntry child_entry) {
  {
    auto entered = co_await EnterSyscall(caller);
    if (!entered.ok()) {
      co_return entered.error();
    }
  }
  const Cycles start = sched_.Now();
  auto child = backend_->Fork(*this, caller, std::move(child_entry));
  if (child.ok()) {
    ++stats_.forks;
    ++caller.forks_performed;
    Uproc* child_proc = FindUproc(*child);
    UF_CHECK(child_proc != nullptr);
    child_proc->fork_stats.latency = sched_.Now() - start;
  }
  LeaveSyscall();
  co_return child;
}

SimTask<Result<WaitResult>> Kernel::SysWait(Uproc& caller) {
  co_await DeliverSignals(caller);
  {
    auto entered = co_await EnterSyscall(caller);
    if (!entered.ok()) {
      co_return entered.error();
    }
  }
  for (;;) {
    Uproc* zombie = nullptr;
    bool has_children = false;
    for (Pid child_pid : caller.children) {
      Uproc* child = FindUproc(child_pid);
      if (child == nullptr) {
        continue;
      }
      has_children = true;
      if (child->state == Uproc::State::kZombie) {
        zombie = child;
        break;
      }
    }
    if (zombie != nullptr) {
      const WaitResult result{zombie->pid(), zombie->exit_code};
      ReapZombie(*zombie);
      machine_.Charge(costs().sched_wakeup);
      LeaveSyscall();
      co_return result;
    }
    if (!has_children) {
      LeaveSyscall();
      co_return Error{Code::kErrChild, "wait() with no children"};
    }
    LeaveSyscall();
    co_await caller.child_wait.Wait();
    if (config_.use_bkl) {
      co_await bkl_.Acquire();
    }
  }
}

void Kernel::ReapZombie(Uproc& zombie) {
  if (Uproc* parent = FindUproc(zombie.parent_pid)) {
    auto& kids = parent->children;
    kids.erase(std::remove(kids.begin(), kids.end(), zombie.pid()), kids.end());
  }
  zombie.state = Uproc::State::kDead;
  uprocs_.erase(zombie.pid());
}

SimTask<void> Kernel::SysExit(Uproc& caller, int code) {
  {
    auto entered = co_await EnterSyscall(caller);
    UF_CHECK_MSG(entered.ok(), "exit() must always reach the kernel");
  }
  machine_.Charge(costs().proc_teardown);
  ++stats_.exits;
  caller.exit_code = code;
  caller.state = Uproc::State::kZombie;
  // exit() terminates the whole μprocess: every sibling thread dies with it (POSIX).
  for (const ThreadId tid : caller.threads) {
    if (sched_.IsAlive(tid) && (!sched_.InThread() || tid != sched_.Current().tid())) {
      sched_.Kill(tid);
    }
  }
  caller.threads.clear();
  backend_->OnExit(*this, caller);
  caller.fds->CloseAll();
  ReleaseUprocMemory(caller);
  // Reparent running children to init (pid 1); reap zombie children now.
  std::vector<Pid> children = caller.children;
  Uproc* init = FindUproc(1);
  for (Pid child_pid : children) {
    Uproc* child = FindUproc(child_pid);
    if (child == nullptr) {
      continue;
    }
    if (child->state == Uproc::State::kZombie) {
      ReapZombie(*child);
    } else {
      // Orphans are reparented to init when possible; a fully orphaned child self-reaps at
      // its own exit.
      const bool init_alive = init != nullptr && init->state == Uproc::State::kRunning &&
                              init->pid() != caller.pid();
      child->parent_pid = init_alive ? 1 : kInvalidPid;
      if (init_alive) {
        init->children.push_back(child_pid);
      }
    }
  }
  caller.children.clear();
  // Wake the parent (SIGCHLD delivery) or self-reap when orphaned.
  Uproc* parent = FindUproc(caller.parent_pid);
  if (parent != nullptr && parent->state == Uproc::State::kRunning) {
    machine_.Charge(costs().sched_wakeup);
    parent->signals.Raise(kSigChld);
    parent->child_wait.WakeAll();
  } else {
    ReapZombie(caller);
  }
  LeaveSyscall();
  co_await sched_.ExitThread();
}

SimTask<Result<Pid>> Kernel::SysGetPid(Uproc& caller) {
  {
    auto entered = co_await EnterSyscall(caller);
    if (!entered.ok()) {
      co_return entered.error();
    }
  }
  const Pid pid = caller.pid();
  LeaveSyscall();
  co_return pid;
}

SimTask<Result<Pid>> Kernel::SysGetPPid(Uproc& caller) {
  {
    auto entered = co_await EnterSyscall(caller);
    if (!entered.ok()) {
      co_return entered.error();
    }
  }
  const Pid pid = caller.parent_pid;
  LeaveSyscall();
  co_return pid;
}

// --- file & IPC syscalls -------------------------------------------------------------------

SimTask<Result<int>> Kernel::SysOpen(Uproc& caller, std::string path, uint32_t flags) {
  {
    auto entered = co_await EnterSyscall(caller);
    if (!entered.ok()) {
      co_return entered.error();
    }
  }
  machine_.Charge(costs().vfs_op);
  auto file = vfs_.Open(path, flags);
  if (!file.ok()) {
    LeaveSyscall();
    co_return file.error();
  }
  auto fd = caller.fds->Install(std::move(*file));
  LeaveSyscall();
  co_return fd;
}

SimTask<Result<void>> Kernel::SysClose(Uproc& caller, int fd) {
  {
    auto entered = co_await EnterSyscall(caller);
    if (!entered.ok()) {
      co_return entered.error();
    }
  }
  auto closed = caller.fds->Close(fd);
  LeaveSyscall();
  co_return closed;
}

SimTask<Result<int64_t>> Kernel::SysRead(Uproc& caller, int fd, Capability buf, uint64_t va,
                                         uint64_t len) {
  co_await DeliverSignals(caller);
  {
    auto entered = co_await EnterSyscall(caller);
    if (!entered.ok()) {
      co_return entered.error();
    }
  }
  auto file_or = caller.fds->Get(fd);
  if (!file_or.ok()) {
    LeaveSyscall();
    co_return file_or.error();
  }
  auto check = ValidateUserBuffer(caller, buf, va, len, /*is_write=*/true);
  if (!check.ok()) {
    LeaveSyscall();
    co_return check.error();
  }
  std::shared_ptr<OpenFile> file = std::move(*file_or);
  machine_.Charge(file->IoFixedCost(costs()));
  LeaveSyscall();  // the transfer may block (pipes); do not hold the BKL across it

  std::vector<std::byte> kbuf(len);
  auto n = co_await file->Read(kbuf);
  if (!n.ok()) {
    co_return n.error();
  }
  if (*n > 0) {
    machine_.Charge(costs().VfsTransfer(static_cast<uint64_t>(*n)));
    auto copied =
        co_await CopyToUser(caller, buf, va, std::span(kbuf.data(), static_cast<uint64_t>(*n)));
    if (!copied.ok()) {
      co_return copied.error();
    }
  }
  co_return n;
}

SimTask<Result<int64_t>> Kernel::SysWrite(Uproc& caller, int fd, Capability buf, uint64_t va,
                                          uint64_t len) {
  {
    auto entered = co_await EnterSyscall(caller);
    if (!entered.ok()) {
      co_return entered.error();
    }
  }
  auto file_or = caller.fds->Get(fd);
  if (!file_or.ok()) {
    LeaveSyscall();
    co_return file_or.error();
  }
  auto check = ValidateUserBuffer(caller, buf, va, len, /*is_write=*/false);
  if (!check.ok()) {
    LeaveSyscall();
    co_return check.error();
  }
  std::shared_ptr<OpenFile> file = std::move(*file_or);
  machine_.Charge(file->IoFixedCost(costs()));
  LeaveSyscall();

  std::vector<std::byte> kbuf(len);
  auto copied = co_await CopyFromUser(caller, buf, va, kbuf);
  if (!copied.ok()) {
    co_return copied.error();
  }
  machine_.Charge(costs().VfsTransfer(len));
  co_return co_await file->Write(kbuf);
}

SimTask<Result<int64_t>> Kernel::SysSeek(Uproc& caller, int fd, int64_t offset, int whence) {
  {
    auto entered = co_await EnterSyscall(caller);
    if (!entered.ok()) {
      co_return entered.error();
    }
  }
  auto file_or = caller.fds->Get(fd);
  if (!file_or.ok()) {
    LeaveSyscall();
    co_return file_or.error();
  }
  auto pos = (*file_or)->Seek(offset, whence);
  LeaveSyscall();
  co_return pos;
}

SimTask<Result<int>> Kernel::SysDup2(Uproc& caller, int oldfd, int newfd) {
  {
    auto entered = co_await EnterSyscall(caller);
    if (!entered.ok()) {
      co_return entered.error();
    }
  }
  auto fd = caller.fds->Dup2(oldfd, newfd);
  LeaveSyscall();
  co_return fd;
}

SimTask<Result<std::pair<int, int>>> Kernel::SysPipe(Uproc& caller) {
  {
    auto entered = co_await EnterSyscall(caller);
    if (!entered.ok()) {
      co_return entered.error();
    }
  }
  machine_.Charge(costs().pipe_op);
  auto [read_end, write_end] = Pipe::Create(sched_, EffectiveBlockingWake(config_));
  auto rfd = caller.fds->Install(std::move(read_end));
  if (!rfd.ok()) {
    LeaveSyscall();
    co_return rfd.error();
  }
  auto wfd = caller.fds->Install(std::move(write_end));
  if (!wfd.ok()) {
    (void)caller.fds->Close(*rfd);
    LeaveSyscall();
    co_return wfd.error();
  }
  LeaveSyscall();
  co_return std::make_pair(*rfd, *wfd);
}

SimTask<Result<void>> Kernel::SysUnlink(Uproc& caller, std::string path) {
  {
    auto entered = co_await EnterSyscall(caller);
    if (!entered.ok()) {
      co_return entered.error();
    }
  }
  machine_.Charge(costs().vfs_op);
  auto unlinked = vfs_.Unlink(path);
  LeaveSyscall();
  co_return unlinked;
}

SimTask<Result<void>> Kernel::SysRename(Uproc& caller, std::string from, std::string to) {
  {
    auto entered = co_await EnterSyscall(caller);
    if (!entered.ok()) {
      co_return entered.error();
    }
  }
  machine_.Charge(costs().vfs_op);
  auto renamed = vfs_.Rename(from, to);
  LeaveSyscall();
  co_return renamed;
}

SimTask<Result<uint64_t>> Kernel::SysFileSize(Uproc& caller, std::string path) {
  {
    auto entered = co_await EnterSyscall(caller);
    if (!entered.ok()) {
      co_return entered.error();
    }
  }
  machine_.Charge(costs().vfs_op);
  auto size = vfs_.FileSize(path);
  LeaveSyscall();
  co_return size;
}

SimTask<Result<int>> Kernel::SysMqOpen(Uproc& caller, std::string name, bool create) {
  {
    auto entered = co_await EnterSyscall(caller);
    if (!entered.ok()) {
      co_return entered.error();
    }
  }
  machine_.Charge(costs().vfs_op);
  auto queue = mqueues_.Open(name, create);
  if (!queue.ok()) {
    LeaveSyscall();
    co_return queue.error();
  }
  auto fd = caller.fds->Install(std::move(*queue));
  LeaveSyscall();
  co_return fd;
}

SimTask<Result<Capability>> Kernel::SysMmapAnon(Uproc& caller, uint64_t length) {
  {
    auto entered = co_await EnterSyscall(caller);
    if (!entered.ok()) {
      co_return entered.error();
    }
  }
  length = AlignUp(length, kPageSize);
  const uint64_t zone_end = caller.base + layout_.mmap_off() + layout_.mmap_size();
  if (length == 0 || caller.mmap_cursor + length > zone_end) {
    LeaveSyscall();
    co_return Error{Code::kErrNoMem, "mmap zone exhausted"};
  }
  const uint64_t addr = caller.mmap_cursor;
  for (uint64_t off = 0; off < length; off += kPageSize) {
    auto frame = machine_.frames().Allocate();
    if (!frame.ok()) {
      LeaveSyscall();
      co_return frame.error();
    }
    machine_.Charge(costs().frame_alloc + costs().pte_update);
    caller.page_table->Map(addr + off, *frame, kPteRw);
  }
  caller.mmap_cursor += length;
  // The returned capability is derived from the μprocess's own authority — it cannot exceed
  // the region (security invariant, §4.2).
  const Capability cap = caller.regs.ddc.WithBounds(addr, length);
  LeaveSyscall();
  co_return cap;
}

SimTask<Result<void>> Kernel::SysKill(Uproc& caller, Pid target, int signal) {
  {
    auto entered = co_await EnterSyscall(caller);
    if (!entered.ok()) {
      co_return entered.error();
    }
  }
  if (signal <= 0 || signal > kMaxSignal) {
    LeaveSyscall();
    co_return Error{Code::kErrInval, "bad signal number"};
  }
  Uproc* victim = FindUproc(target);
  if (victim == nullptr || victim->state != Uproc::State::kRunning) {
    LeaveSyscall();
    co_return Error{Code::kErrSrch, "no such process"};
  }
  if (signal != kSigKill) {
    // Queued; the target observes it at its next delivery point.
    victim->signals.Raise(signal);
    LeaveSyscall();
    co_return OkResult();
  }
  if (victim == &caller) {
    LeaveSyscall();
    co_return Error{Code::kErrInval, "SIGKILL to self: call exit()"};
  }
  KillUproc(*victim);
  LeaveSyscall();
  co_return OkResult();
}

SimTask<Result<void>> Kernel::SysSigaction(Uproc& caller, int signal, SignalHandler handler) {
  {
    auto entered = co_await EnterSyscall(caller);
    if (!entered.ok()) {
      co_return entered.error();
    }
  }
  if (signal <= 0 || signal > kMaxSignal || signal == kSigKill) {
    LeaveSyscall();
    co_return Error{Code::kErrInval, "signal disposition cannot be changed"};
  }
  if (handler) {
    caller.signals.SetHandler(signal, std::move(handler));
  } else {
    caller.signals.ResetHandler(signal);
  }
  LeaveSyscall();
  co_return OkResult();
}

SimTask<Result<void>> Kernel::SysCheckSignals(Uproc& caller) {
  co_await DeliverSignals(caller);
  co_return OkResult();
}

SimTask<void> Kernel::DeliverSignals(Uproc& uproc) {
  // Runs as the target μprocess, outside the BKL: handlers are guest code.
  while (uproc.state == Uproc::State::kRunning && uproc.signals.AnyPending()) {
    const int signal = uproc.signals.TakePending();
    if (signal == 0) {
      break;
    }
    machine_.Charge(costs().sched_wakeup);  // signal frame setup
    if (const SignalHandler* installed = uproc.signals.HandlerFor(signal)) {
      const SignalHandler handler = *installed;  // the handler may replace itself
      co_await handler(*this, uproc, signal);
      continue;
    }
    if (DefaultActionFor(signal) == SignalDefault::kIgnore) {
      continue;
    }
    co_await SysExit(uproc, 128 + signal);  // default action: terminate (never returns)
  }
}

void Kernel::KillUproc(Uproc& victim) {
  machine_.Charge(costs().proc_teardown);
  ++stats_.exits;
  for (const ThreadId tid : victim.threads) {
    sched_.Kill(tid);
  }
  victim.threads.clear();
  sched_.Kill(victim.thread);
  victim.exit_code = -9;  // SIGKILL
  victim.state = Uproc::State::kZombie;
  backend_->OnExit(*this, victim);
  victim.fds->CloseAll();
  ReleaseUprocMemory(victim);
  Uproc* parent = FindUproc(victim.parent_pid);
  if (parent != nullptr && parent->state == Uproc::State::kRunning) {
    parent->signals.Raise(kSigChld);
    parent->child_wait.WakeAll();
  } else {
    ReapZombie(victim);
  }
}

SimTask<Result<void>> Kernel::SysNanosleep(Uproc& caller, Cycles duration) {
  co_await DeliverSignals(caller);
  {
    auto entered = co_await EnterSyscall(caller);
    if (!entered.ok()) {
      co_return entered.error();
    }
  }
  LeaveSyscall();
  co_await sched_.Sleep(duration);
  co_return OkResult();
}

SimTask<Result<void>> Kernel::SysPrivilegedOp(Uproc& caller) {
  // Not a syscall proper: models user code attempting an MSR/MRS-class instruction directly.
  // The hardware checks the System permission of the executing PCC (§4.4, second principle).
  if (!caller.regs.pcc.HasPerms(kPermSystem)) {
    co_return Error{Code::kFaultSystem, "privileged instruction without System permission"};
  }
  co_return OkResult();
}


// --- POSIX shared memory ------------------------------------------------------------------------

SimTask<Result<int>> Kernel::SysShmOpen(Uproc& caller, std::string name, uint64_t size) {
  {
    auto entered = co_await EnterSyscall(caller);
    if (!entered.ok()) {
      co_return entered.error();
    }
  }
  auto existing = shm_by_name_.find(name);
  if (existing != shm_by_name_.end()) {
    const int id = existing->second;
    LeaveSyscall();
    co_return id;
  }
  size = AlignUp(size, kPageSize);
  if (size == 0) {
    LeaveSyscall();
    co_return Error{Code::kErrInval, "zero-sized shared memory object"};
  }
  ShmObject object;
  object.name = name;
  object.size = size;
  for (uint64_t off = 0; off < size; off += kPageSize) {
    auto frame = machine_.frames().Allocate();
    if (!frame.ok()) {
      for (const FrameId f : object.frames) {
        machine_.frames().Release(f);
      }
      LeaveSyscall();
      co_return frame.error();
    }
    machine_.Charge(costs().frame_alloc);
    object.frames.push_back(*frame);
  }
  const int id = next_shm_id_++;
  shm_by_name_.emplace(std::move(name), id);
  shm_objects_.emplace(id, std::move(object));
  LeaveSyscall();
  co_return id;
}

SimTask<Result<Capability>> Kernel::SysShmMap(Uproc& caller, int shm_id) {
  {
    auto entered = co_await EnterSyscall(caller);
    if (!entered.ok()) {
      co_return entered.error();
    }
  }
  auto it = shm_objects_.find(shm_id);
  if (it == shm_objects_.end()) {
    LeaveSyscall();
    co_return Error{Code::kErrBadFd, "no such shared memory object"};
  }
  ShmObject& object = it->second;
  const uint64_t zone_end = caller.base + layout_.mmap_off() + layout_.mmap_size();
  if (caller.mmap_cursor + object.size > zone_end) {
    LeaveSyscall();
    co_return Error{Code::kErrNoMem, "mmap zone exhausted"};
  }
  const uint64_t addr = caller.mmap_cursor;
  for (uint64_t i = 0; i < object.frames.size(); ++i) {
    machine_.frames().AddRef(object.frames[i]);
    machine_.Charge(costs().pte_update);
    // kPteShared exempts these pages from fork-time CoW: MAP_SHARED survives fork shared.
    caller.page_table->Map(addr + i * kPageSize, object.frames[i], kPteRw | kPteShared);
  }
  caller.mmap_cursor += object.size;
  // The window carries data permissions only: capabilities cannot be laundered between
  // μprocesses through shared memory (they would carry foreign-region authority).
  const Capability cap = caller.regs.ddc.WithBounds(addr, object.size)
                             .WithPermsAnd(~(kPermLoadCap | kPermStoreCap));
  LeaveSyscall();
  co_return cap;
}

SimTask<Result<void>> Kernel::SysShmUnlink(Uproc& caller, std::string name) {
  {
    auto entered = co_await EnterSyscall(caller);
    if (!entered.ok()) {
      co_return entered.error();
    }
  }
  auto it = shm_by_name_.find(name);
  if (it == shm_by_name_.end()) {
    LeaveSyscall();
    co_return Error{Code::kErrNoEnt, "no such shared memory object"};
  }
  auto object_it = shm_objects_.find(it->second);
  UF_CHECK(object_it != shm_objects_.end());
  // Drop the registry's reference; frames survive while mappings keep them referenced.
  for (const FrameId frame : object_it->second.frames) {
    machine_.frames().Release(frame);
  }
  shm_objects_.erase(object_it);
  shm_by_name_.erase(it);
  LeaveSyscall();
  co_return OkResult();
}

// --- exec / spawn ---------------------------------------------------------------------------

void Kernel::RegisterProgram(std::string name, UprocEntry entry) {
  programs_[std::move(name)] = std::move(entry);
}

Result<void> Kernel::ResetUprocImage(Uproc& uproc) {
  // Tear down every mapping (shared windows included: POSIX drops mappings on exec) and build
  // a fresh zeroed image.
  std::vector<uint64_t> pages;
  uproc.page_table->ForEachMapped(uproc.base, uproc.base + uproc.size,
                                  [&pages](uint64_t va, const Pte&) { pages.push_back(va); });
  for (const uint64_t va : pages) {
    machine_.Charge(costs().pte_update / 4);
    machine_.frames().Release(uproc.page_table->Unmap(va));
  }
  UF_RETURN_IF_ERROR(MapFreshImage(uproc));
  uproc.mmap_cursor = uproc.base + layout_.mmap_off();
  InstallArchCaps(uproc);
  uproc.signals.ClearPending();
  return OkResult();
}

SimTask<Result<void>> Kernel::SysExec(Uproc& caller, std::string program) {
  {
    auto entered = co_await EnterSyscall(caller);
    if (!entered.ok()) {
      co_return entered.error();
    }
  }
  auto it = programs_.find(program);
  if (it == programs_.end()) {
    LeaveSyscall();
    co_return Error{Code::kErrNoEnt, "no such program: " + program};
  }
  machine_.Charge(costs().exec_base);
  auto reset = ResetUprocImage(caller);
  if (!reset.ok()) {
    LeaveSyscall();
    co_return reset.error();
  }
  caller.forked_child = false;  // the fresh image runs its own runtime initialization
  caller.name = program;
  // POSIX: exec terminates every thread but the calling one.
  for (const ThreadId tid : caller.threads) {
    if (sched_.IsAlive(tid) && tid != sched_.Current().tid()) {
      sched_.Kill(tid);
    }
  }
  UprocEntry entry = it->second;
  LeaveSyscall();
  // The μprocess (PID, parent, descriptors, children) continues under a new thread running
  // the new image; the old thread — whose program no longer exists — retires here.
  StartUprocThread(caller, std::move(entry));
  co_await sched_.ExitThread();
}

SimTask<Result<Pid>> Kernel::SysSpawn(Uproc& caller, std::string program) {
  {
    auto entered = co_await EnterSyscall(caller);
    if (!entered.ok()) {
      co_return entered.error();
    }
  }
  auto it = programs_.find(program);
  if (it == programs_.end()) {
    LeaveSyscall();
    co_return Error{Code::kErrNoEnt, "no such program: " + program};
  }
  machine_.Charge(costs().exec_base);
  Uproc& child = CreateUprocShell(program, caller.pid());
  auto allocated = AllocateUprocMemory(child, backend_->private_page_tables());
  if (!allocated.ok()) {
    LeaveSyscall();
    co_return allocated.error();
  }
  auto mapped = MapFreshImage(child);
  if (!mapped.ok()) {
    LeaveSyscall();
    co_return mapped.error();
  }
  InstallArchCaps(child);
  child.fds = caller.fds->Clone();  // posix_spawn file-actions default: inherit descriptors
  machine_.Charge(costs().fd_dup * static_cast<uint64_t>(child.fds->OpenCount()));
  UprocEntry entry = it->second;
  StartUprocThread(child, std::move(entry), caller.child_affinity);
  const Pid pid = child.pid();
  LeaveSyscall();
  co_return pid;
}


// --- threads ---------------------------------------------------------------------------------

SimTask<Result<ThreadId>> Kernel::SysThreadCreate(Uproc& caller, UprocEntry entry) {
  {
    auto entered = co_await EnterSyscall(caller);
    if (!entered.ok()) {
      co_return entered.error();
    }
  }
  machine_.Charge(costs().sched_wakeup);
  // Secondary threads share everything; when their entry returns, only the thread ends.
  auto wrapper = [](Kernel& kernel, Uproc& proc, UprocEntry fn) -> SimTask<void> {
    co_await fn(kernel, proc);
    if (proc.thread_exit_wait != nullptr) {
      proc.thread_exit_wait->WakeAll();
    }
  };
  const ThreadId tid = sched_.Spawn(wrapper(*this, caller, std::move(entry)),
                                    caller.name + ":thr", caller.child_affinity);
  sched_.SetThreadContext(tid, &caller);
  caller.threads.push_back(tid);
  LeaveSyscall();
  co_return tid;
}

SimTask<Result<void>> Kernel::SysThreadJoin(Uproc& caller, ThreadId tid) {
  {
    auto entered = co_await EnterSyscall(caller);
    if (!entered.ok()) {
      co_return entered.error();
    }
  }
  const bool known =
      std::find(caller.threads.begin(), caller.threads.end(), tid) != caller.threads.end();
  LeaveSyscall();
  if (!known) {
    co_return Error{Code::kErrSrch, "join of a thread not in this μprocess"};
  }
  if (sched_.InThread() && sched_.Current().tid() == tid) {
    co_return Error{Code::kErrInval, "a thread cannot join itself"};
  }
  while (sched_.IsAlive(tid)) {
    co_await caller.thread_exit_wait->Wait();
  }
  auto& threads = caller.threads;
  threads.erase(std::remove(threads.begin(), threads.end(), tid), threads.end());
  co_return OkResult();
}

// --- futex ------------------------------------------------------------------------------------

SimTask<Result<void>> Kernel::SysFutexWait(Uproc& caller, Capability cap, uint64_t va,
                                           uint64_t expected) {
  {
    auto entered = co_await EnterSyscall(caller);
    if (!entered.ok()) {
      co_return entered.error();
    }
  }
  auto check = ValidateUserBuffer(caller, cap, va, 8, /*is_write=*/false);
  if (!check.ok()) {
    LeaveSyscall();
    co_return check.error();
  }
  // Load the word through the caller's capability (CoW/CoPA resolve underneath), then key the
  // queue by the *physical* location so MAP_SHARED futexes pair up across μprocesses.
  auto value = machine_.LoadScalar<uint64_t>(*caller.page_table, cap, va);
  if (!value.ok()) {
    LeaveSyscall();
    co_return value.error();
  }
  const std::optional<Pte> pte = caller.page_table->Lookup(va);
  UF_CHECK(pte.has_value());
  const auto key = std::make_pair(pte->frame, va % kPageSize);
  if (*value != expected) {
    LeaveSyscall();
    co_return Error{Code::kErrAgain, "futex value changed"};
  }
  auto& queue = futexes_[key];
  if (queue == nullptr) {
    queue = std::make_unique<WaitQueue>(sched_);
    queue->set_resume_delay(costs().sched_wakeup);
  }
  WaitQueue& wq = *queue;
  LeaveSyscall();  // never block holding the BKL
  co_await wq.Wait();
  co_return OkResult();
}

SimTask<Result<uint64_t>> Kernel::SysFutexWake(Uproc& caller, Capability cap, uint64_t va,
                                               uint64_t n) {
  {
    auto entered = co_await EnterSyscall(caller);
    if (!entered.ok()) {
      co_return entered.error();
    }
  }
  auto check = ValidateUserBuffer(caller, cap, va, 8, /*is_write=*/false);
  if (!check.ok()) {
    LeaveSyscall();
    co_return check.error();
  }
  const std::optional<Pte> pte = caller.page_table->Lookup(va);
  UF_CHECK(pte.has_value());
  auto it = futexes_.find(std::make_pair(pte->frame, va % kPageSize));
  uint64_t woken = 0;
  if (it != futexes_.end()) {
    machine_.Charge(costs().sched_wakeup);
    woken = it->second->Wake(n);
  }
  LeaveSyscall();
  co_return woken;
}

// --- metrics ------------------------------------------------------------------------------------



uint64_t Kernel::UprocPssBytes(const Uproc& uproc) const {
  if (uproc.page_table == nullptr) {
    return 0;
  }
  uint64_t pss = 0;
  const FrameAllocator& frames = machine_.frames();
  uproc.page_table->ForEachMapped(
      uproc.base, uproc.base + uproc.size, [&](uint64_t, const Pte& pte) {
        pss += kPageSize / frames.RefCount(pte.frame);
      });
  return pss;
}

uint64_t Kernel::UprocUssBytes(const Uproc& uproc) const {
  if (uproc.page_table == nullptr) {
    return 0;
  }
  uint64_t uss = 0;
  const FrameAllocator& frames = machine_.frames();
  uproc.page_table->ForEachMapped(
      uproc.base, uproc.base + uproc.size, [&](uint64_t, const Pte& pte) {
        if (frames.RefCount(pte.frame) == 1) {
          uss += kPageSize;
        }
      });
  return uss + backend_->ExtraResidencyBytes(*this, uproc);
}

}  // namespace ufork
