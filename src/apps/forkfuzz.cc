#include "src/apps/forkfuzz.h"

#include <sstream>

namespace ufork {
namespace {

constexpr uint64_t kMaxInputBytes = 64;
constexpr int kCrashExit = 139;  // 128 + SIGSEGV, the classic crash status
constexpr size_t kMaxProgramSteps = 8;
// Fork-refusal policy: a handful of retries with doubling virtual backoff, then skip the
// case. Refusals come from chaos-injected frame exhaustion (ENOMEM) or admission pushback
// (EAGAIN) — both transient by design, and neither may abort the campaign.
constexpr int kMaxForkAttempts = 4;
constexpr Cycles kForkBackoffStart = 20'000;

// What a finished case reports back to the server. The child deposits into this host-side
// slot before exiting — the simulator's zero-cost stand-in for the fork server's status pipe
// (the battery's differential harness uses a real pipe; the fuzz loop keeps the fast path).
struct CaseCapture {
  Code code = Code::kOk;
  uint8_t site = kFuzzSitePlainExecute;
};

std::vector<std::byte> MutateInput(Rng& rng) {
  std::vector<std::byte> input(1 + rng.NextBelow(kMaxInputBytes));
  for (auto& byte : input) {
    byte = static_cast<std::byte>(rng.NextU64());
  }
  return input;
}

// Structure-aware mutation over attack programs: seed from a battery program half the time,
// then apply a few insert/remove/perturb edits. Decoding is total (any byte is an op mod
// kNumOps), so the byte-level and program-level views never disagree.
std::vector<std::byte> MutateAttackProgramInput(Rng& rng) {
  AttackProgram program;
  const std::vector<BatteryAttack>& battery = AttackBattery();
  if (rng.NextBelow(2) == 0) {
    program = battery[rng.NextBelow(battery.size())].program;
  }
  const uint64_t edits = 1 + rng.NextBelow(3);
  for (uint64_t e = 0; e < edits; ++e) {
    switch (rng.NextBelow(3)) {
      case 0: {
        const AttackStep step{static_cast<AttackOp>(rng.NextBelow(kNumAttackOps)),
                              static_cast<uint8_t>(rng.NextU64())};
        program.insert(program.begin() + static_cast<long>(rng.NextBelow(program.size() + 1)),
                       step);
        break;
      }
      case 1:
        if (!program.empty()) {
          program.erase(program.begin() + static_cast<long>(rng.NextBelow(program.size())));
        }
        break;
      default:
        if (!program.empty()) {
          program[rng.NextBelow(program.size())].arg = static_cast<uint8_t>(rng.NextU64());
        }
        break;
    }
  }
  if (program.empty()) {
    program.push_back(AttackStep{AttackOp::kGotOutOfRange, 0});
  }
  if (program.size() > kMaxProgramSteps) {
    program.resize(kMaxProgramSteps);
  }
  return EncodeAttackProgram(program);
}

std::vector<std::byte> NextInput(const FuzzTarget& target, Rng& rng) {
  return target.mutate ? target.mutate(rng) : MutateInput(rng);
}

// Forks `case_fn`, retrying transient refusals with doubling backoff. Returns the child pid,
// or the last refusal if the case must be skipped. Every refusal counts once.
SimTask<Result<Pid>> ForkWithRetry(Guest& g, const GuestFn& case_fn, FuzzStats* stats) {
  Cycles backoff = kForkBackoffStart;
  for (int attempt = 0;; ++attempt) {
    GuestFn fn = case_fn;  // Fork consumes its argument; keep the original for retries
    Result<Pid> child = co_await g.Fork(std::move(fn));
    if (child.ok()) {
      co_return child;
    }
    ++stats->fork_failures;
    const Code code = child.code();
    const bool transient = code == Code::kErrNoMem || code == Code::kErrAgain;
    if (!transient || attempt + 1 >= kMaxForkAttempts) {
      co_return child;
    }
    (void)co_await g.Nanosleep(backoff);
    backoff *= 2;
  }
}

SimTask<void> RunOneForkedCase(Guest& g, const FuzzTarget& target, std::vector<std::byte> input,
                               uint64_t seed, uint64_t iteration, FuzzStats* stats) {
  CaseCapture capture;
  CaseCapture* capture_out = &capture;
  // The closure captures a vector (non-trivially destructible): hoisted per the GCC 12 rule.
  GuestFn case_fn = [&target, input, capture_out](Guest& cg) -> SimTask<void> {
    if (target.execute_trace) {
      const AttackTrace trace = co_await target.execute_trace(cg, input);
      if (trace.fatal()) {
        capture_out->code = trace.fatal_code;
        capture_out->site = trace.steps.back().op;
      }
      co_await cg.Exit(trace.fatal() ? kCrashExit : 0);
    } else {
      const Result<void> verdict = target.execute(cg, input);
      if (!verdict.ok()) {
        capture_out->code = verdict.code();
        capture_out->site = kFuzzSitePlainExecute;
      }
      co_await cg.Exit(verdict.ok() ? 0 : kCrashExit);
    }
  };
  Result<Pid> child = co_await ForkWithRetry(g, case_fn, stats);
  if (!child.ok()) {
    co_return;  // case skipped; the refusals are already on the ledger
  }
  Result<WaitResult> waited = co_await g.Wait();
  if (!waited.ok()) {
    co_return;
  }
  ++stats->executions;
  if (waited->status == kCrashExit) {
    ++stats->crashes;
    stats->RecordCrash(capture.code, capture.site, seed, iteration, input);
  }
}

const char* SiteName(uint8_t site) {
  if (site == kFuzzSitePlainExecute) {
    return "execute";
  }
  if (site < kNumAttackOps) {
    return AttackOpName(static_cast<AttackOp>(site));
  }
  return "unknown";
}

void AppendHex(std::ostringstream& os, std::span<const std::byte> bytes) {
  static constexpr char kHex[] = "0123456789abcdef";
  for (std::byte b : bytes) {
    const uint8_t v = std::to_integer<uint8_t>(b);
    os << kHex[v >> 4] << kHex[v & 0xF];
  }
}

}  // namespace

void FuzzStats::RecordCrash(Code code, uint8_t site, uint64_t seed, uint64_t iteration,
                            std::span<const std::byte> input) {
  CrashBucket& bucket = buckets[{static_cast<int32_t>(code), site}];
  if (bucket.count == 0) {
    bucket.first_seed = seed;
    bucket.first_iteration = iteration;
    bucket.first_input.assign(input.begin(), input.end());
  }
  ++bucket.count;
}

std::string FuzzStats::Report() const {
  std::ostringstream os;
  os << "fuzz: execs=" << executions << " crashes=" << crashes
     << " fork_failures=" << fork_failures << " buckets=" << buckets.size()
     << " execs/s=" << static_cast<uint64_t>(ExecsPerSecond()) << "\n";
  for (const auto& [key, bucket] : buckets) {
    const auto& [code, site] = key;
    os << "fuzz bucket: fault=" << CodeName(static_cast<Code>(code))
       << " site=" << SiteName(site) << " count=" << bucket.count
       << " replay: seed=" << bucket.first_seed << " iter=" << bucket.first_iteration
       << " input=";
    AppendHex(os, bucket.first_input);
    os << "\n";
  }
  return os.str();
}

SimTask<void> RunForkServer(Guest& g, const FuzzTarget& target, uint64_t iterations,
                            uint64_t seed, FuzzStats* stats) {
  Scheduler& sched = g.kernel().sched();
  Rng rng(seed);
  const Cycles start = sched.Now();
  for (uint64_t i = 0; i < iterations; ++i) {
    co_await RunOneForkedCase(g, target, NextInput(target, rng), seed, i, stats);
  }
  stats->elapsed = sched.Now() - start;
}

SimTask<void> RunRespawnBaseline(Guest& g, const FuzzTarget& target, uint64_t iterations,
                                 uint64_t seed, FuzzStats* stats) {
  Scheduler& sched = g.kernel().sched();
  Rng rng(seed);
  const Cycles start = sched.Now();
  for (uint64_t i = 0; i < iterations; ++i) {
    const std::vector<std::byte> input = NextInput(target, rng);
    CaseCapture capture;
    CaseCapture* capture_out = &capture;
    GuestFn case_fn = [&target, input, capture_out](Guest& cg) -> SimTask<void> {
      // No warm state: pay the full initialization for every single case.
      const Result<void> initialized = target.initialize(cg);
      if (!initialized.ok()) {
        co_await cg.Exit(1);
        co_return;
      }
      if (target.execute_trace) {
        const AttackTrace trace = co_await target.execute_trace(cg, input);
        if (trace.fatal()) {
          capture_out->code = trace.fatal_code;
          capture_out->site = trace.steps.back().op;
        }
        co_await cg.Exit(trace.fatal() ? kCrashExit : 0);
      } else {
        const Result<void> verdict = target.execute(cg, input);
        if (!verdict.ok()) {
          capture_out->code = verdict.code();
          capture_out->site = kFuzzSitePlainExecute;
        }
        co_await cg.Exit(verdict.ok() ? 0 : kCrashExit);
      }
    };
    Result<Pid> child = co_await ForkWithRetry(g, case_fn, stats);
    if (!child.ok()) {
      continue;
    }
    Result<WaitResult> waited = co_await g.Wait();
    if (!waited.ok()) {
      continue;
    }
    ++stats->executions;
    if (waited->status == kCrashExit) {
      ++stats->crashes;
      stats->RecordCrash(capture.code, capture.site, seed, i, input);
    }
  }
  stats->elapsed = sched.Now() - start;
}

FuzzTarget MakeLookupTableTarget() {
  FuzzTarget target;
  target.initialize = [](Guest& g) -> Result<void> {
    // "Parse the dictionary": a 256-slot dispatch table of capabilities to per-token blocks.
    UF_ASSIGN_OR_RETURN(const Capability table, g.Malloc(256 * kCapSize));
    for (uint64_t slot = 0; slot < 256; ++slot) {
      UF_ASSIGN_OR_RETURN(const Capability entry, g.Malloc(32));
      UF_RETURN_IF_ERROR(g.StoreAt<uint64_t>(entry, 0, slot * 3 + 1));
      UF_RETURN_IF_ERROR(g.StoreCap(table, table.base() + slot * kCapSize, entry));
    }
    g.Compute(2'000'000);  // the heavy setup work the fork server amortizes
    return g.GotStore(kGotSlotFuzzTarget, table);
  };
  target.execute = [](Guest& g, std::span<const std::byte> input) -> Result<void> {
    UF_ASSIGN_OR_RETURN(const Capability table, g.GotLoad(kGotSlotFuzzTarget));
    if (!table.tag()) {
      return Error{Code::kErrInval, "target state missing"};
    }
    uint64_t accumulator = 0;
    for (size_t i = 0; i < input.size(); ++i) {
      const uint8_t byte = static_cast<uint8_t>(input[i]);
      UF_ASSIGN_OR_RETURN(const Capability entry,
                          g.LoadCap(table, table.base() + byte * kCapSize));
      // THE BUG: a 0xEE token makes the parser read past the entry's bounds — the
      // capability's tight bounds turn it into a deterministic, catchable fault.
      const uint64_t offset = byte == 0xEE ? 64 : 0;
      UF_ASSIGN_OR_RETURN(const uint64_t value,
                          g.Load<uint64_t>(entry, entry.base() + offset));
      accumulator += value;
      g.Compute(40);
    }
    (void)accumulator;
    return OkResult();
  };
  return target;
}

FuzzTarget MakeAttackBatteryTarget() {
  FuzzTarget target;
  target.init_cost = 200'000;
  target.initialize = [](Guest& g) -> Result<void> {
    // The battery needs no warm dictionary — a small sentinel block stands in for the state
    // every forked case inherits, so the server/respawn comparison stays meaningful.
    UF_ASSIGN_OR_RETURN(const Capability state, g.Malloc(64));
    UF_RETURN_IF_ERROR(g.StoreAt<uint64_t>(state, 0, 0xA77ACC));
    g.Compute(200'000);
    return g.GotStore(kGotSlotFuzzTarget, state);
  };
  target.execute_trace = [](Guest& g, std::span<const std::byte> input) -> SimTask<AttackTrace> {
    AttackProgram program = DecodeAttackProgram(input);
    if (program.size() > kMaxProgramSteps) {
      program.resize(kMaxProgramSteps);
    }
    co_return co_await ExecuteAttackProgram(g, std::move(program));
  };
  target.mutate = MutateAttackProgramInput;
  return target;
}

}  // namespace ufork
