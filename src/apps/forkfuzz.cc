#include "src/apps/forkfuzz.h"

#include "src/base/rng.h"

namespace ufork {
namespace {

constexpr uint64_t kMaxInputBytes = 64;
constexpr int kCrashExit = 139;  // 128 + SIGSEGV, the classic crash status

std::vector<std::byte> MutateInput(Rng& rng) {
  std::vector<std::byte> input(1 + rng.NextBelow(kMaxInputBytes));
  for (auto& byte : input) {
    byte = static_cast<std::byte>(rng.NextU64());
  }
  return input;
}

SimTask<void> RunOneForkedCase(Guest& g, const FuzzTarget& target,
                               std::vector<std::byte> input, FuzzStats* stats) {
  // The closure captures a vector (non-trivially destructible): hoisted per the GCC 12 rule.
  GuestFn case_fn = [&target, input](Guest& cg) -> SimTask<void> {
    const Result<void> verdict = target.execute(cg, input);
    co_await cg.Exit(verdict.ok() ? 0 : kCrashExit);
  };
  auto child = co_await g.Fork(std::move(case_fn));
  UF_CHECK_MSG(child.ok(), "fork server could not fork a case");
  auto waited = co_await g.Wait();
  UF_CHECK(waited.ok());
  ++stats->executions;
  if (waited->status == kCrashExit) {
    ++stats->crashes;
  }
}

}  // namespace

SimTask<void> RunForkServer(Guest& g, const FuzzTarget& target, uint64_t iterations,
                            uint64_t seed, FuzzStats* stats) {
  Scheduler& sched = g.kernel().sched();
  Rng rng(seed);
  const Cycles start = sched.Now();
  for (uint64_t i = 0; i < iterations; ++i) {
    co_await RunOneForkedCase(g, target, MutateInput(rng), stats);
  }
  stats->elapsed = sched.Now() - start;
}

SimTask<void> RunRespawnBaseline(Guest& g, const FuzzTarget& target, uint64_t iterations,
                                 uint64_t seed, FuzzStats* stats) {
  Scheduler& sched = g.kernel().sched();
  Rng rng(seed);
  const Cycles start = sched.Now();
  for (uint64_t i = 0; i < iterations; ++i) {
    const std::vector<std::byte> input = MutateInput(rng);
    GuestFn case_fn = [&target, input](Guest& cg) -> SimTask<void> {
      // No warm state: pay the full initialization for every single case.
      const Result<void> initialized = target.initialize(cg);
      UF_CHECK(initialized.ok());
      const Result<void> verdict = target.execute(cg, input);
      co_await cg.Exit(verdict.ok() ? 0 : kCrashExit);
    };
    auto child = co_await g.Fork(std::move(case_fn));
    UF_CHECK(child.ok());
    auto waited = co_await g.Wait();
    UF_CHECK(waited.ok());
    ++stats->executions;
    if (waited->status == kCrashExit) {
      ++stats->crashes;
    }
  }
  stats->elapsed = sched.Now() - start;
}

FuzzTarget MakeLookupTableTarget() {
  FuzzTarget target;
  target.initialize = [](Guest& g) -> Result<void> {
    // "Parse the dictionary": a 256-slot dispatch table of capabilities to per-token blocks.
    UF_ASSIGN_OR_RETURN(const Capability table, g.Malloc(256 * kCapSize));
    for (uint64_t slot = 0; slot < 256; ++slot) {
      UF_ASSIGN_OR_RETURN(const Capability entry, g.Malloc(32));
      UF_RETURN_IF_ERROR(g.StoreAt<uint64_t>(entry, 0, slot * 3 + 1));
      UF_RETURN_IF_ERROR(g.StoreCap(table, table.base() + slot * kCapSize, entry));
    }
    g.Compute(2'000'000);  // the heavy setup work the fork server amortizes
    return g.GotStore(kGotSlotFuzzTarget, table);
  };
  target.execute = [](Guest& g, std::span<const std::byte> input) -> Result<void> {
    UF_ASSIGN_OR_RETURN(const Capability table, g.GotLoad(kGotSlotFuzzTarget));
    if (!table.tag()) {
      return Error{Code::kErrInval, "target state missing"};
    }
    uint64_t accumulator = 0;
    for (size_t i = 0; i < input.size(); ++i) {
      const uint8_t byte = static_cast<uint8_t>(input[i]);
      UF_ASSIGN_OR_RETURN(const Capability entry,
                          g.LoadCap(table, table.base() + byte * kCapSize));
      // THE BUG: a 0xEE token makes the parser read past the entry's bounds — the
      // capability's tight bounds turn it into a deterministic, catchable fault.
      const uint64_t offset = byte == 0xEE ? 64 : 0;
      UF_ASSIGN_OR_RETURN(const uint64_t value,
                          g.Load<uint64_t>(entry, entry.base() + offset));
      accumulator += value;
      g.Compute(40);
    }
    (void)accumulator;
    return OkResult();
  };
  return target;
}

}  // namespace ufork
