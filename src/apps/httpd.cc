#include "src/apps/httpd.h"

#include <string>
#include <vector>

namespace ufork {
namespace {

constexpr uint64_t kPoisonConn = ~0ULL;

// One pre-forked worker: accept → parse → handle → respond, forever (until poisoned). This is
// the long-lived Nginx worker of U5; fork latency is irrelevant here, steady-state throughput
// is what counts.
SimTask<void> WorkerLoop(Guest& g, int listener_fd, std::vector<int> conn_fds,
                         HttpdParams params) {
  auto req = g.Malloc(params.request_bytes);
  auto resp = g.Malloc(params.response_bytes);
  UF_CHECK(req.ok() && resp.ok());
  UF_CHECK(g.StoreAt<uint64_t>(*resp, 0, 0x200ULL).ok());  // status line
  for (;;) {
    auto n = co_await g.Read(listener_fd, *req, params.request_bytes);
    if (!n.ok() || *n < 8) {
      break;
    }
    auto conn = g.LoadAt<uint64_t>(*req, 0);
    if (!conn.ok() || *conn == kPoisonConn) {
      break;
    }
    g.Compute(params.net_stack_cost + params.parse_cost + params.handler_cost);
    if (params.io_wait > 0) {
      (void)co_await g.Nanosleep(params.io_wait);  // blocking I/O: the core is free meanwhile
    }
    auto sent = co_await g.Write(static_cast<int>(conn_fds[*conn]), *resp,
                                 params.response_bytes);
    if (!sent.ok()) {
      break;
    }
  }
  co_await g.Exit(0);
}

// One wrk connection: closed loop of request → response.
SimTask<void> ClientLoop(Guest& g, int listener_fd, int conn_fd, uint64_t conn_id,
                         HttpdParams params) {
  auto req = g.Malloc(params.request_bytes);
  auto resp = g.Malloc(params.response_bytes);
  UF_CHECK(req.ok() && resp.ok());
  UF_CHECK(g.StoreAt<uint64_t>(*req, 0, conn_id).ok());
  for (uint64_t i = 0; i < params.requests_per_connection; ++i) {
    auto sent = co_await g.Write(listener_fd, *req, params.request_bytes);
    if (!sent.ok()) {
      break;
    }
    auto n = co_await g.Read(conn_fd, *resp, params.response_bytes);
    if (!n.ok() || *n == 0) {
      break;
    }
  }
  co_await g.Exit(42);
}

}  // namespace

SimTask<void> HttpdBenchmark(Guest& g, HttpdParams params, HttpdResult* result) {
  Scheduler& sched = g.kernel().sched();

  // Listener + per-connection queues, opened before forking so every child inherits the fds.
  auto listener = co_await g.MqOpen("/mq/httpd-listener", /*create=*/true);
  UF_CHECK(listener.ok());
  std::vector<int> conn_fds;
  for (int c = 0; c < params.connections; ++c) {
    auto fd = co_await g.MqOpen("/mq/httpd-conn-" + std::to_string(c), /*create=*/true);
    UF_CHECK(fd.ok());
    conn_fds.push_back(*fd);
  }

  // Pre-fork the workers (the nginx master/worker model). Closures are hoisted out of the
  // co_await expressions (GCC 12 temporary-lifetime workaround, see guest.h).
  for (int w = 0; w < params.workers; ++w) {
    GuestFn worker_fn =
        [listener_fd = *listener, conn_fds, params](Guest& wg) -> SimTask<void> {
      co_await WorkerLoop(wg, listener_fd, conn_fds, params);
    };
    auto worker = co_await g.Fork(std::move(worker_fn));
    UF_CHECK_MSG(worker.ok(), "worker fork failed");
  }

  const Cycles start = sched.Now();
  for (int c = 0; c < params.connections; ++c) {
    GuestFn client_fn = [listener_fd = *listener,
                         conn_fd = conn_fds[static_cast<size_t>(c)],
                         conn_id = static_cast<uint64_t>(c),
                         params](Guest& cg) -> SimTask<void> {
      co_await ClientLoop(cg, listener_fd, conn_fd, conn_id, params);
    };
    auto client = co_await g.Fork(std::move(client_fn));
    UF_CHECK_MSG(client.ok(), "client fork failed");
  }

  // Reap the clients (exit code 42), then poison and reap the workers.
  int clients_left = params.connections;
  int workers_left = params.workers;
  while (clients_left > 0) {
    auto waited = co_await g.Wait();
    UF_CHECK(waited.ok());
    if (waited->status == 42) {
      --clients_left;
    } else {
      --workers_left;  // a worker died early (should not happen)
    }
  }
  const Cycles elapsed = sched.Now() - start;

  auto poison = g.Malloc(params.request_bytes);
  UF_CHECK(poison.ok());
  UF_CHECK(g.StoreAt<uint64_t>(*poison, 0, kPoisonConn).ok());
  for (int w = 0; w < workers_left; ++w) {
    UF_CHECK((co_await g.Write(*listener, *poison, params.request_bytes)).ok());
  }
  while (workers_left > 0) {
    auto waited = co_await g.Wait();
    UF_CHECK(waited.ok());
    --workers_left;
  }

  result->requests_completed =
      static_cast<uint64_t>(params.connections) * params.requests_per_connection;
  result->elapsed = elapsed;
}

}  // namespace ufork
