#include "src/apps/miniredis.h"

#include <algorithm>

namespace ufork {
namespace {

constexpr uint64_t kDumpMagic = 0x5552454449537631ULL;  // "UREDISv1"
constexpr uint64_t kIoChunk = 64 * kKiB;

// Fixed cost of a save: dump-file setup, RDB header/trailer machinery and the final
// fsync-equivalent on the ram-disk (anchors the flat portion of Fig. 3 at small DB sizes).
constexpr Cycles kSaveFixedCycles = 3'200'000;
// RDB encoding + CRC over the value stream, per byte.
constexpr Cycles kRdbEncodeCyclesPerByte = 1;

// Dump checksum: FNV-1a over the entry count, lengths and key bytes (values are length-checked).
class DumpChecksum {
 public:
  void AddU64(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      Add(static_cast<uint8_t>(v >> (8 * i)));
    }
  }
  void AddBytes(std::span<const std::byte> bytes) {
    for (std::byte b : bytes) {
      Add(static_cast<uint8_t>(b));
    }
  }
  uint64_t value() const { return h_; }

 private:
  void Add(uint8_t b) {
    h_ ^= b;
    h_ *= 0x100000001b3ULL;
  }
  uint64_t h_ = 0xcbf29ce484222325ULL;
};

struct EntryRef {
  std::string key;
  Capability value;
  uint64_t value_len = 0;
};

}  // namespace

Result<MiniRedis> MiniRedis::Create(Guest& guest, uint64_t buckets) {
  UF_ASSIGN_OR_RETURN(GuestHashMap map, GuestHashMap::Create(guest, buckets));
  UF_RETURN_IF_ERROR(guest.GotStore(kGotSlotRedisDb, map.table()));
  return MiniRedis(guest, std::move(map));
}

Result<MiniRedis> MiniRedis::Attach(Guest& guest) {
  UF_ASSIGN_OR_RETURN(const Capability table, guest.GotLoad(kGotSlotRedisDb));
  if (!table.tag()) {
    return Error{Code::kErrInval, "no database published in the GOT"};
  }
  return MiniRedis(guest, GuestHashMap::Attach(guest, table));
}

Result<void> MiniRedis::Set(const std::string& key, std::span<const std::byte> value) {
  return map_.Put(key, value);
}

Result<std::optional<std::vector<std::byte>>> MiniRedis::Get(const std::string& key) {
  return map_.Get(key);
}

Result<bool> MiniRedis::Del(const std::string& key) { return map_.Erase(key); }

Result<uint64_t> MiniRedis::DbSize() { return map_.Size(); }

SimTask<Result<uint64_t>> MiniRedis::Save(const std::string& path) {
  Guest& g = *guest_;
  // Walking the table loads the bucket/entry capabilities — in a forked child this is where
  // CoPA copies the pages that actually contain pointers, while the bulk value bytes stay
  // shared (the asymmetry Fig. 4/5 measures).
  std::vector<EntryRef> entries;
  {
    const Result<void> walked = map_.ForEach(
        [&entries](const std::string& key, const Capability& value_cap,
                   uint64_t value_len) -> Result<void> {
          entries.push_back(EntryRef{key, value_cap, value_len});
          return OkResult();
        });
    if (!walked.ok()) {
      co_return walked.error();
    }
  }

  g.Compute(kSaveFixedCycles);
  auto fd = co_await g.Open(path, kOpenWrite | kOpenCreate | kOpenTrunc);
  if (!fd.ok()) {
    co_return fd.error();
  }
  auto scratch = g.Malloc(kIoChunk);
  if (!scratch.ok()) {
    co_return scratch.error();
  }

  DumpChecksum checksum;
  checksum.AddU64(entries.size());
  uint64_t total_written = 0;
  auto emit = [&](uint64_t len) -> SimTask<Result<void>> {
    auto n = co_await g.Write(*fd, *scratch, len);
    if (!n.ok()) {
      co_return n.error();
    }
    total_written += len;
    co_return OkResult();
  };

  // Header.
  UF_CO_RETURN_IF_ERROR(g.StoreAt<uint64_t>(*scratch, 0, kDumpMagic));
  UF_CO_RETURN_IF_ERROR(g.StoreAt<uint64_t>(*scratch, 8, entries.size()));
  UF_CO_RETURN_IF_ERROR(co_await emit(16));

  for (const EntryRef& entry : entries) {
    // Record header + key.
    UF_CO_RETURN_IF_ERROR(g.StoreAt<uint64_t>(*scratch, 0, entry.key.size()));
    UF_CO_RETURN_IF_ERROR(g.StoreAt<uint64_t>(*scratch, 8, entry.value_len));
    UF_CO_RETURN_IF_ERROR(g.WriteBytes(
        *scratch, scratch->base() + 16,
        std::as_bytes(std::span(entry.key.data(), entry.key.size()))));
    checksum.AddU64(entry.key.size());
    checksum.AddU64(entry.value_len);
    checksum.AddBytes(std::as_bytes(std::span(entry.key.data(), entry.key.size())));
    g.Compute(static_cast<Cycles>(entry.key.size() / 4 + 8));
    UF_CO_RETURN_IF_ERROR(co_await emit(16 + entry.key.size()));
    // Value, chunked through the scratch buffer (plain data reads: shared under CoPA).
    uint64_t done = 0;
    while (done < entry.value_len) {
      const uint64_t chunk = std::min<uint64_t>(entry.value_len - done, kIoChunk);
      UF_CO_RETURN_IF_ERROR(g.CopyBytes(*scratch, scratch->base(), entry.value,
                                        entry.value.base() + done, chunk));
      g.Compute(kRdbEncodeCyclesPerByte * chunk);
      UF_CO_RETURN_IF_ERROR(co_await emit(chunk));
      done += chunk;
    }
  }
  // Trailer.
  UF_CO_RETURN_IF_ERROR(g.StoreAt<uint64_t>(*scratch, 0, checksum.value()));
  UF_CO_RETURN_IF_ERROR(co_await emit(8));

  UF_CO_RETURN_IF_ERROR(co_await g.Close(*fd));
  UF_CO_RETURN_IF_ERROR(g.Free(*scratch));
  co_return total_written;
}

SimTask<Result<Pid>> MiniRedis::BgSave(const std::string& path) {
  Guest& g = *guest_;
  const std::string tmp = path + ".tmp";
  // NOTE: the child closure is hoisted into a named GuestFn instead of being written inline in
  // the co_await expression — GCC 12 mis-destroys non-trivially-destructible temporaries that
  // span a suspension point (see tests/coroutine_lifetime_test.cc).
  GuestFn child_fn = [path, tmp](Guest& cg) -> SimTask<void> {
    auto db = MiniRedis::Attach(cg);
    UF_CHECK_MSG(db.ok(), "BGSAVE child could not attach to the snapshot");
    auto written = co_await db->Save(tmp);
    int code = 0;
    if (!written.ok()) {
      code = 1;
    } else {
      auto renamed = co_await cg.Rename(tmp, path);
      code = renamed.ok() ? 0 : 1;
    }
    co_await cg.Exit(code);
  };
  auto child = co_await g.Fork(std::move(child_fn));
  co_return child;
}

SimTask<Result<MiniRedis::DumpInfo>> MiniRedis::VerifyDump(const std::string& path) {
  Guest& g = *guest_;
  auto fd = co_await g.Open(path, kOpenRead);
  if (!fd.ok()) {
    co_return fd.error();
  }
  auto scratch = g.Malloc(kIoChunk);
  if (!scratch.ok()) {
    co_return scratch.error();
  }
  auto read_exact = [&](uint64_t len) -> SimTask<Result<void>> {
    uint64_t done = 0;
    while (done < len) {
      auto n = co_await g.kernel().SysRead(g.uproc(), *fd, *scratch,
                                           scratch->base() + done, len - done);
      if (!n.ok()) {
        co_return n.error();
      }
      if (*n == 0) {
        co_return Error{Code::kErrInval, "truncated dump"};
      }
      done += static_cast<uint64_t>(*n);
    }
    co_return OkResult();
  };

  DumpInfo info;
  DumpChecksum checksum;
  UF_CO_RETURN_IF_ERROR(co_await read_exact(16));
  UF_CO_ASSIGN_OR_RETURN(const uint64_t magic, g.LoadAt<uint64_t>(*scratch, 0));
  UF_CO_ASSIGN_OR_RETURN(const uint64_t count, g.LoadAt<uint64_t>(*scratch, 8));
  if (magic != kDumpMagic) {
    co_return Error{Code::kErrInval, "bad dump magic"};
  }
  checksum.AddU64(count);
  for (uint64_t i = 0; i < count; ++i) {
    UF_CO_RETURN_IF_ERROR(co_await read_exact(16));
    UF_CO_ASSIGN_OR_RETURN(const uint64_t key_len, g.LoadAt<uint64_t>(*scratch, 0));
    UF_CO_ASSIGN_OR_RETURN(const uint64_t val_len, g.LoadAt<uint64_t>(*scratch, 8));
    if (key_len > kIoChunk) {
      co_return Error{Code::kErrInval, "oversized key"};
    }
    UF_CO_RETURN_IF_ERROR(co_await read_exact(key_len));
    UF_CO_ASSIGN_OR_RETURN(const std::vector<std::byte> key_bytes,
                           g.FetchBytes(*scratch, key_len));
    checksum.AddU64(key_len);
    checksum.AddU64(val_len);
    checksum.AddBytes(key_bytes);
    uint64_t done = 0;
    while (done < val_len) {
      const uint64_t chunk = std::min<uint64_t>(val_len - done, kIoChunk);
      UF_CO_RETURN_IF_ERROR(co_await read_exact(chunk));
      done += chunk;
    }
    info.value_bytes += val_len;
    ++info.entries;
  }
  UF_CO_RETURN_IF_ERROR(co_await read_exact(8));
  UF_CO_ASSIGN_OR_RETURN(const uint64_t trailer, g.LoadAt<uint64_t>(*scratch, 0));
  if (trailer != checksum.value()) {
    co_return Error{Code::kErrInval, "dump checksum mismatch"};
  }
  UF_CO_RETURN_IF_ERROR(co_await g.Close(*fd));
  UF_CO_RETURN_IF_ERROR(g.Free(*scratch));
  co_return info;
}

}  // namespace ufork
