// Fork-server fuzzing harness — the paper's U5 pattern: "Testing frameworks such as fuzzers
// use fork to avoid the cost of setup for each exploration".
//
// An AFL-style fork server: the target's expensive initialization (parsing dictionaries,
// building lookup structures in guest memory) runs once in the server μprocess; each test case
// then executes in a forked child, so crashes — capability faults included, which is exactly
// what CHERI turns memory-safety bugs into — are contained and the pristine initialized state
// is restored for free by the next fork. The harness also supports a spawn-per-case mode to
// quantify what the fork server saves.
#ifndef UFORK_SRC_APPS_FORKFUZZ_H_
#define UFORK_SRC_APPS_FORKFUZZ_H_

#include <functional>

#include "src/guest/guest.h"

namespace ufork {

// GOT slot where the target's initialized state lives (inherited by every forked case).
inline constexpr int kGotSlotFuzzTarget = kGotSlotFirstUser + 2;

// A fuzz target: initialized once, executed per input. Both run as guest code; Execute's
// return distinguishes clean runs from detected bugs (a capability fault surfaced as an
// error), mirroring a SIGSEGV/SIGPROT in a hardware deployment.
struct FuzzTarget {
  // Builds the target's state in guest memory and publishes it via kGotSlotFuzzTarget.
  std::function<Result<void>(Guest&)> initialize;
  // Runs one input against the (inherited) state. Error => crash.
  std::function<Result<void>(Guest&, std::span<const std::byte> input)> execute;
  Cycles init_cost = 2'000'000;  // the setup work fork amortizes (charged by initialize)
};

struct FuzzStats {
  uint64_t executions = 0;
  uint64_t crashes = 0;
  Cycles elapsed = 0;
  double ExecsPerSecond() const {
    return elapsed == 0 ? 0.0 : static_cast<double>(executions) / ToSeconds(elapsed);
  }
};

// Runs `iterations` random test cases through a fork server: one fork per case, inputs from a
// deterministic mutator seeded with `seed`. Must be called from the μprocess that ran
// target.initialize.
SimTask<void> RunForkServer(Guest& guest, const FuzzTarget& target, uint64_t iterations,
                            uint64_t seed, FuzzStats* stats);

// Baseline: the same budget of cases, but each case re-runs initialize (the world without a
// fork server — what U5 says fuzzers avoid).
SimTask<void> RunRespawnBaseline(Guest& guest, const FuzzTarget& target, uint64_t iterations,
                                 uint64_t seed, FuzzStats* stats);

// A built-in buggy target for demos/tests: a bounds-checked-except-for-one-path lookup table
// where inputs beginning with the byte 0xEE drive an out-of-bounds access that the capability
// hardware catches.
FuzzTarget MakeLookupTableTarget();

}  // namespace ufork

#endif  // UFORK_SRC_APPS_FORKFUZZ_H_
