// Fork-server fuzzing harness — the paper's U5 pattern: "Testing frameworks such as fuzzers
// use fork to avoid the cost of setup for each exploration".
//
// An AFL-style fork server: the target's expensive initialization (parsing dictionaries,
// building lookup structures in guest memory) runs once in the server μprocess; each test case
// then executes in a forked child, so crashes — capability faults included, which is exactly
// what CHERI turns memory-safety bugs into — are contained and the pristine initialized state
// is restored for free by the next fork. The harness also supports a spawn-per-case mode to
// quantify what the fork server saves.
//
// Beyond plain byte targets, the server drives the adversarial battery (src/attack/):
// structure-aware targets decode each input as an AttackProgram, run it through the
// interpreter, and report the full trace, so crashes bucket by (fault kind, faulting op)
// instead of raw input bytes and every bucket carries a replayable first reproducer.
// The server itself must survive hostile conditions: a fork refused under chaos-injected
// ENOMEM or admission-control EAGAIN is retried with backoff and counted, never a host abort.
#ifndef UFORK_SRC_APPS_FORKFUZZ_H_
#define UFORK_SRC_APPS_FORKFUZZ_H_

#include <functional>
#include <map>
#include <string>
#include <utility>

#include "src/attack/attack.h"
#include "src/base/rng.h"
#include "src/guest/guest.h"

namespace ufork {

// GOT slot where the target's initialized state lives (inherited by every forked case).
inline constexpr int kGotSlotFuzzTarget = kGotSlotFirstUser + 2;

// Bucket site for plain byte targets (no per-op attribution — the whole execute is the site).
inline constexpr uint8_t kFuzzSitePlainExecute = 0xFF;

// A fuzz target: initialized once, executed per input. Both run as guest code; Execute's
// return distinguishes clean runs from detected bugs (a capability fault surfaced as an
// error), mirroring a SIGSEGV/SIGPROT in a hardware deployment.
struct FuzzTarget {
  // Builds the target's state in guest memory and publishes it via kGotSlotFuzzTarget.
  std::function<Result<void>(Guest&)> initialize;
  // Runs one input against the (inherited) state. Error => crash.
  std::function<Result<void>(Guest&, std::span<const std::byte> input)> execute;
  // Structure-aware alternative (preferred by the fork server when set): the input decodes to
  // an AttackProgram and the returned trace attributes the crash to (fault kind, op).
  std::function<SimTask<AttackTrace>(Guest&, std::span<const std::byte> input)> execute_trace;
  // Input mutator; defaults to uniform random bytes when unset.
  std::function<std::vector<std::byte>(Rng&)> mutate;
  Cycles init_cost = 2'000'000;  // the setup work fork amortizes (charged by initialize)
};

// One crash equivalence class: (fault kind, faulting site), with the first reproducer kept so
// a soak failure is replayable from the report alone.
struct CrashBucket {
  uint64_t count = 0;
  uint64_t first_seed = 0;
  uint64_t first_iteration = 0;
  std::vector<std::byte> first_input;
};

struct FuzzStats {
  uint64_t executions = 0;
  uint64_t crashes = 0;
  // Fork refusals (ENOMEM under chaos, EAGAIN under admission control) the server survived —
  // each refusal counts once, whether the retry eventually succeeded or the case was skipped.
  uint64_t fork_failures = 0;
  Cycles elapsed = 0;
  // Crash buckets keyed by (fault code, site). Site is the faulting AttackOp byte for
  // structure-aware targets, kFuzzSitePlainExecute for plain byte targets.
  std::map<std::pair<int32_t, uint8_t>, CrashBucket> buckets;

  double ExecsPerSecond() const {
    return elapsed == 0 ? 0.0 : static_cast<double>(executions) / ToSeconds(elapsed);
  }
  void RecordCrash(Code code, uint8_t site, uint64_t seed, uint64_t iteration,
                   std::span<const std::byte> input);
  // Shell-`stats`-style report: one summary line plus one replayable line per bucket
  // (fault kind, site name, count, first-reproducer seed/iteration/input hex).
  std::string Report() const;
};

// Runs `iterations` random test cases through a fork server: one fork per case, inputs from a
// deterministic mutator seeded with `seed`. Must be called from the μprocess that ran
// target.initialize. Fork refusals are retried with backoff; a case whose fork never succeeds
// is skipped (counted in fork_failures), never a host abort.
SimTask<void> RunForkServer(Guest& guest, const FuzzTarget& target, uint64_t iterations,
                            uint64_t seed, FuzzStats* stats);

// Baseline: the same budget of cases, but each case re-runs initialize (the world without a
// fork server — what U5 says fuzzers avoid).
SimTask<void> RunRespawnBaseline(Guest& guest, const FuzzTarget& target, uint64_t iterations,
                                 uint64_t seed, FuzzStats* stats);

// A built-in buggy target for demos/tests: a bounds-checked-except-for-one-path lookup table
// where inputs beginning with the byte 0xEE drive an out-of-bounds access that the capability
// hardware catches.
FuzzTarget MakeLookupTableTarget();

// The battery driver: inputs decode to attack programs (every byte string is valid), the
// mutator splices battery programs with random op/arg edits, and crashes bucket by
// (fault kind, faulting op).
FuzzTarget MakeAttackBatteryTarget();

}  // namespace ufork

#endif  // UFORK_SRC_APPS_FORKFUZZ_H_
