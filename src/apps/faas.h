// Zygote-style FaaS framework (paper §5.1 "Function as a Service").
//
// A Zygote μprocess initializes the language runtime once (module table, constant pools — the
// expensive cold-start work), then serves each request by forking itself: the child inherits
// the warm runtime through fork's state duplication and runs the function. The benchmark
// measures function throughput with a coordinator pinned to one core and children executing on
// the remaining cores, exactly like the paper's Figure 6 setup (FunctionBench float_operation,
// 10-second window).
#ifndef UFORK_SRC_APPS_FAAS_H_
#define UFORK_SRC_APPS_FAAS_H_

#include "src/guest/guest.h"

namespace ufork {

// GOT slot publishing the initialized runtime state.
inline constexpr int kGotSlotZygoteRuntime = kGotSlotFirstUser + 1;

struct ZygoteParams {
  Cycles window = Seconds(10);     // measurement window
  int worker_cores = 3;            // max functions in flight (coordinator occupies its own)
  uint64_t float_iterations = 1000;  // FunctionBench float_operation problem size
};

struct ZygoteResult {
  uint64_t functions_completed = 0;
  // Forks refused by the kernel (admission-control EAGAIN or allocation ENOMEM) and retried
  // after exponential backoff. A loaded-but-healthy system keeps this near zero; under
  // overload it is the coordinator's contribution to backing the arrival rate off.
  uint64_t fork_retries = 0;
  Cycles elapsed = 0;
  double FunctionsPerSecond() const {
    return elapsed == 0 ? 0.0
                        : static_cast<double>(functions_completed) / ToSeconds(elapsed);
  }
};

// Initializes the "language runtime": allocates interpreter structures in the guest heap
// (module table, constant pool, bytecode arena — all linked with capabilities) and publishes
// the root via the GOT. This is the cold-start cost Zygote forking amortizes.
Result<void> InitializeZygoteRuntime(Guest& guest);

// FunctionBench float_operation: sqrt/sin/cos over n iterations. Computes a real value (so the
// work cannot be optimized away) and charges the corresponding virtual CPU time. Verifies the
// runtime is reachable through the (relocated) GOT before running.
Result<double> FloatOperation(Guest& guest, uint64_t iterations);

// The Zygote coordinator loop: forks function executors as fast as the in-flight limit allows
// for the duration of the window. Must run in a μprocess whose runtime was initialized.
SimTask<void> ZygoteCoordinator(Guest& guest, ZygoteParams params, ZygoteResult* result);

}  // namespace ufork

#endif  // UFORK_SRC_APPS_FAAS_H_
