#include "src/apps/shell.h"

#include <algorithm>
#include <sstream>

#include "src/kernel/proc_report.h"

namespace ufork {
namespace {

// argv convention: before exec, the child writes its argument vector to /proc/argv.<pid>;
// the exec'd image — which keeps its PID — reads it back. The moral equivalent of
// /proc/self/cmdline, built from pieces fork/exec guarantee to preserve.
std::string ArgvPath(Pid pid) { return "/proc/argv." + std::to_string(pid); }

SimTask<Result<void>> WriteOwnArgv(Guest& g, const std::vector<std::string>& args) {
  std::string blob;
  for (const std::string& arg : args) {
    blob += arg;
    blob.push_back('\0');
  }
  auto self = co_await g.GetPid();
  if (!self.ok()) {
    co_return self.error();
  }
  auto fd = co_await g.Open(ArgvPath(*self), kOpenWrite | kOpenCreate | kOpenTrunc);
  if (!fd.ok()) {
    co_return fd.error();
  }
  if (!blob.empty()) {
    auto buf = g.PlaceString(blob);
    if (!buf.ok()) {
      co_return buf.error();
    }
    auto written = co_await g.Write(*fd, *buf, blob.size());
    if (!written.ok()) {
      co_return written.error();
    }
  }
  co_return co_await g.Close(*fd);
}

SimTask<Result<std::vector<std::string>>> ReadOwnArgv(Guest& g) {
  auto self = co_await g.GetPid();
  if (!self.ok()) {
    co_return self.error();
  }
  auto size = co_await g.FileSize(ArgvPath(*self));
  if (!size.ok()) {
    co_return std::vector<std::string>{};  // no argv file: empty argument vector
  }
  auto fd = co_await g.Open(ArgvPath(*self), kOpenRead);
  if (!fd.ok()) {
    co_return fd.error();
  }
  std::string blob;
  if (*size > 0) {
    auto buf = g.Malloc(*size);
    if (!buf.ok()) {
      co_return buf.error();
    }
    auto n = co_await g.Read(*fd, *buf, *size);
    if (!n.ok()) {
      co_return n.error();
    }
    auto bytes = g.FetchBytes(*buf, static_cast<uint64_t>(*n));
    if (!bytes.ok()) {
      co_return bytes.error();
    }
    blob.assign(reinterpret_cast<const char*>(bytes->data()), bytes->size());
  }
  (void)co_await g.Close(*fd);
  std::vector<std::string> args;
  std::string current;
  for (char c : blob) {
    if (c == '\0') {
      args.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  co_return args;
}

// Streams fd 0 to a transform and writes the result to fd 1. The workhorse of the filters.
SimTask<Result<void>> FilterLoop(Guest& g,
                                 const std::function<std::string(std::string_view)>& transform) {
  auto in_buf = g.Malloc(4096);
  auto out_buf = g.Malloc(8192);
  if (!in_buf.ok() || !out_buf.ok()) {
    co_return Code::kErrNoMem;
  }
  for (;;) {
    auto n = co_await g.Read(kShellStdin, *in_buf, 4096);
    if (!n.ok()) {
      co_return n.error();
    }
    if (*n == 0) {
      co_return OkResult();
    }
    auto bytes = g.FetchBytes(*in_buf, static_cast<uint64_t>(*n));
    if (!bytes.ok()) {
      co_return bytes.error();
    }
    const std::string out = transform(
        std::string_view(reinterpret_cast<const char*>(bytes->data()), bytes->size()));
    if (out.empty()) {
      continue;
    }
    auto staged = g.PlaceBytes(std::as_bytes(std::span(out.data(), out.size())));
    if (!staged.ok()) {
      co_return staged.error();
    }
    auto written = co_await g.Write(kShellStdout, *staged, out.size());
    if (!written.ok()) {
      co_return written.error();
    }
    (void)g.Free(*staged);
  }
}

SimTask<Result<std::string>> SlurpFd(Guest& g, int fd) {
  std::string all;
  auto buf = g.Malloc(4096);
  if (!buf.ok()) {
    co_return buf.error();
  }
  for (;;) {
    auto n = co_await g.Read(fd, *buf, 4096);
    if (!n.ok()) {
      co_return n.error();
    }
    if (*n == 0) {
      co_return all;
    }
    auto bytes = g.FetchBytes(*buf, static_cast<uint64_t>(*n));
    if (!bytes.ok()) {
      co_return bytes.error();
    }
    all.append(reinterpret_cast<const char*>(bytes->data()), bytes->size());
  }
}

SimTask<Result<void>> WriteAll(Guest& g, int fd, const std::string& data) {
  if (data.empty()) {
    co_return OkResult();
  }
  auto staged = g.PlaceString(data);
  if (!staged.ok()) {
    co_return staged.error();
  }
  auto written = co_await g.Write(fd, *staged, data.size());
  if (!written.ok()) {
    co_return written.error();
  }
  co_return OkResult();
}

}  // namespace

Result<ShellCommand> ParseCommandLine(const std::string& line) {
  std::istringstream in(line);
  std::vector<std::string> tokens;
  for (std::string token; in >> token;) {
    tokens.push_back(token);
  }
  if (tokens.empty()) {
    return Error{Code::kErrInval, "empty command line"};
  }
  ShellCommand command;
  command.program = tokens[0];
  for (size_t i = 1; i < tokens.size(); ++i) {
    if (tokens[i] == "<" || tokens[i] == ">" || tokens[i] == "|") {
      if (i + 1 >= tokens.size()) {
        return Error{Code::kErrInval, "dangling operator: " + tokens[i]};
      }
      if (tokens[i] == "<") {
        command.stdin_file = tokens[++i];
      } else if (tokens[i] == ">") {
        command.stdout_file = tokens[++i];
      } else {
        command.pipe_to = tokens[++i];
        // The only thing allowed after the second stage is an output redirection.
        if (i + 2 < tokens.size() && tokens[i + 1] == ">") {
          command.pipe_stdout_file = tokens[i + 2];
          i += 2;
        }
        if (i + 1 < tokens.size()) {
          return Error{Code::kErrInval, "unexpected tokens after the pipeline stage"};
        }
      }
    } else {
      command.args.push_back(tokens[i]);
    }
  }
  return command;
}

SimTask<Result<Pid>> Shell::LaunchStage(const ShellCommand& command, int stdin_fd,
                                        int stdout_fd, std::vector<int> close_fds) {
  Guest& g = *guest_;
  // Copies for the child closure — hoisted per the GCC 12 rule (guest.h).
  GuestFn child_fn = [command, stdin_fd, stdout_fd,
                      close_fds](Guest& cg) -> SimTask<void> {
    // Between fork and exec: drop the inherited pipe ends this stage does not use (EOF
    // propagation), wire the standard descriptors, then replace the image.
    for (const int fd : close_fds) {
      (void)co_await cg.Close(fd);
    }
    int in_fd = stdin_fd;
    if (!command.stdin_file.empty()) {
      auto fd = co_await cg.Open(command.stdin_file, kOpenRead);
      if (!fd.ok()) {
        co_await cg.Exit(127);
      }
      in_fd = *fd;
    }
    int out_fd = stdout_fd;
    if (!command.stdout_file.empty()) {
      auto fd = co_await cg.Open(command.stdout_file, kOpenWrite | kOpenCreate | kOpenTrunc);
      if (!fd.ok()) {
        co_await cg.Exit(127);
      }
      out_fd = *fd;
    }
    if (in_fd >= 0 && in_fd != kShellStdin) {
      UF_CHECK((co_await cg.Dup2(in_fd, kShellStdin)).ok());
      (void)co_await cg.Close(in_fd);
    }
    if (out_fd >= 0 && out_fd != kShellStdout) {
      UF_CHECK((co_await cg.Dup2(out_fd, kShellStdout)).ok());
      (void)co_await cg.Close(out_fd);
    }
    UF_CHECK((co_await WriteOwnArgv(cg, command.args)).ok());
    auto failed = co_await cg.Exec(command.program);
    // Only reached when exec failed (e.g. unknown program).
    UF_CHECK(!failed.ok());
    co_await cg.Exit(127);
  };
  co_return co_await g.Fork(std::move(child_fn));
}

SimTask<Result<int>> Shell::Run(const std::string& line) {
  Guest& g = *guest_;
  auto parsed = ParseCommandLine(line);
  if (!parsed.ok()) {
    co_return parsed.error();
  }
  const ShellCommand command = *parsed;

  if (command.pipe_to.empty()) {
    std::vector<int> no_fds;
    auto child = co_await LaunchStage(command, -1, -1, std::move(no_fds));
    if (!child.ok()) {
      co_return child.error();
    }
    auto waited = co_await g.Wait();
    if (!waited.ok()) {
      co_return waited.error();
    }
    co_return waited->status;
  }

  // Two-stage pipeline: stage1 | stage2.
  auto pipe_fds = co_await g.Pipe();
  if (!pipe_fds.ok()) {
    co_return pipe_fds.error();
  }
  const auto [pipe_r, pipe_w] = *pipe_fds;
  ShellCommand stage1 = command;
  stage1.pipe_to.clear();
  std::vector<int> stage1_close = {pipe_r};
  auto first = co_await LaunchStage(stage1, -1, pipe_w, std::move(stage1_close));
  if (!first.ok()) {
    co_return first.error();
  }
  ShellCommand stage2;
  stage2.program = command.pipe_to;
  stage2.stdout_file = command.pipe_stdout_file;
  std::vector<int> stage2_close = {pipe_w};
  auto second = co_await LaunchStage(stage2, pipe_r, -1, std::move(stage2_close));
  if (!second.ok()) {
    co_return second.error();
  }
  // The shell's own copies must close so EOF propagates through the pipeline.
  (void)co_await g.Close(pipe_r);
  (void)co_await g.Close(pipe_w);
  int last_status = 0;
  for (int reaped = 0; reaped < 2; ++reaped) {
    auto waited = co_await g.Wait();
    if (!waited.ok()) {
      co_return waited.error();
    }
    if (waited->pid == *second) {
      last_status = waited->status;
    }
  }
  co_return last_status;
}

SimTask<Result<std::string>> Shell::Slurp(const std::string& path) {
  Guest& g = *guest_;
  auto fd = co_await g.Open(path, kOpenRead);
  if (!fd.ok()) {
    co_return fd.error();
  }
  auto contents = co_await SlurpFd(g, *fd);
  (void)co_await g.Close(*fd);
  co_return contents;
}

void RegisterShellUtilities(Kernel& kernel) {
  kernel.RegisterProgram("cat", MakeGuestEntry([](Guest& g) -> SimTask<void> {
    auto done = co_await FilterLoop(g, [](std::string_view s) { return std::string(s); });
    co_await g.Exit(done.ok() ? 0 : 1);
  }));
  kernel.RegisterProgram("upper", MakeGuestEntry([](Guest& g) -> SimTask<void> {
    auto done = co_await FilterLoop(g, [](std::string_view s) {
      std::string out(s);
      std::transform(out.begin(), out.end(), out.begin(),
                     [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
      return out;
    });
    co_await g.Exit(done.ok() ? 0 : 1);
  }));
  kernel.RegisterProgram("count", MakeGuestEntry([](Guest& g) -> SimTask<void> {
    // Counts lines and bytes of stdin, like `wc -lc`.
    auto all = co_await SlurpFd(g, kShellStdin);
    if (!all.ok()) {
      co_await g.Exit(1);
    }
    const uint64_t lines =
        static_cast<uint64_t>(std::count(all->begin(), all->end(), '\n'));
    auto written = co_await WriteAll(
        g, kShellStdout, std::to_string(lines) + " " + std::to_string(all->size()) + "\n");
    co_await g.Exit(written.ok() ? 0 : 1);
  }));
  kernel.RegisterProgram("seq", MakeGuestEntry([](Guest& g) -> SimTask<void> {
    auto args = co_await ReadOwnArgv(g);
    if (!args.ok() || args->empty()) {
      co_await g.Exit(2);
    }
    const long n = std::strtol((*args)[0].c_str(), nullptr, 10);
    std::string out;
    for (long i = 1; i <= n; ++i) {
      out += std::to_string(i) + "\n";
    }
    auto written = co_await WriteAll(g, kShellStdout, out);
    co_await g.Exit(written.ok() ? 0 : 1);
  }));
  kernel.RegisterProgram("stats", MakeGuestEntry([](Guest& g) -> SimTask<void> {
    // Prints the kernel's per-syscall counters and fault/fork summary — the simulated
    // /proc/stat (+ /proc/vmstat: the fault-around and reclaim counters live in the summary).
    auto written = co_await WriteAll(
        g, kShellStdout, SyscallTableReport(g.kernel()) + KernelSummaryReport(g.kernel()));
    co_await g.Exit(written.ok() ? 0 : 1);
  }));
}

}  // namespace ufork
