// Mini-shell: the U1 pattern ("fork + exec to start a new program. Examples include running an
// executable via Bash", §2.1).
//
// A tiny POSIX-style shell over the kernel's program registry: it parses a command line, forks,
// execs the program in the child (optionally wiring redirections and two-stage pipelines
// through inherited descriptors), and waits. Programs are guest coroutines registered under a
// name, reading arguments from their environment block.
#ifndef UFORK_SRC_APPS_SHELL_H_
#define UFORK_SRC_APPS_SHELL_H_

#include <string>
#include <vector>

#include "src/guest/guest.h"

namespace ufork {

// GOT slot where a spawned program finds its argument block (set up by the shell in the
// child between fork and exec — the exec'd image re-reads it from the inherited fd 0 instead;
// see Shell::RunCommand).
struct ShellCommand {
  std::string program;
  std::vector<std::string> args;
  std::string stdin_file;   // "<" redirection ("" = none)
  std::string stdout_file;  // ">" redirection ("" = none)
  std::string pipe_to;      // "|" second stage program ("" = none)
  std::string pipe_stdout_file;  // ">" redirection of the second stage ("" = none)
};

// Parses a single command line of the form:
//   prog arg1 arg2 < in.txt > out.txt
//   prog arg | prog2 > out.txt
Result<ShellCommand> ParseCommandLine(const std::string& line);

// Shell conventions for program I/O.
inline constexpr int kShellStdin = 0;
inline constexpr int kShellStdout = 1;

class Shell {
 public:
  explicit Shell(Guest& guest) : guest_(&guest) {}

  // Runs one command line to completion: fork, redirect, exec, wait. Returns the exit status
  // of the (last) program.
  SimTask<Result<int>> Run(const std::string& line);

  // Convenience: reads the whole named file into a host string (for tests/demos).
  SimTask<Result<std::string>> Slurp(const std::string& path);

 private:
  SimTask<Result<Pid>> LaunchStage(const ShellCommand& command, int stdin_fd, int stdout_fd,
                                   std::vector<int> close_fds);

  Guest* guest_;
};

// Registers the shell's standard utility programs ("cat", "upper", "count", "seq") with the
// kernel. Each reads fd 0 and writes fd 1, like real filters.
void RegisterShellUtilities(Kernel& kernel);

}  // namespace ufork

#endif  // UFORK_SRC_APPS_SHELL_H_
