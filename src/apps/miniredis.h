// Mini-Redis: an in-guest-memory key-value store with RDB-style snapshots via fork.
//
// Reproduces the paper's Redis use case (U2 + U4, §5.1): the database lives in the μprocess
// heap as a GuestHashMap; SAVE serializes it to the ramdisk; BGSAVE forks, the child
// serializes the copy-on-write snapshot while the parent keeps serving writes, then renames
// the temp file over the target — the exact background-save protocol of real Redis.
#ifndef UFORK_SRC_APPS_MINIREDIS_H_
#define UFORK_SRC_APPS_MINIREDIS_H_

#include <optional>
#include <string>

#include "src/guest/containers.h"
#include "src/guest/guest.h"

namespace ufork {

// GOT slot where the database table capability is published, so a forked child (whose GOT was
// relocated) can attach to its snapshot.
inline constexpr int kGotSlotRedisDb = kGotSlotFirstUser;

class MiniRedis {
 public:
  // Creates the database in the guest heap and publishes it through the GOT.
  static Result<MiniRedis> Create(Guest& guest, uint64_t buckets = 256);

  // Attaches to the database published in the GOT (parent continuation or forked child).
  static Result<MiniRedis> Attach(Guest& guest);

  Result<void> Set(const std::string& key, std::span<const std::byte> value);
  Result<std::optional<std::vector<std::byte>>> Get(const std::string& key);
  Result<bool> Del(const std::string& key);
  Result<uint64_t> DbSize();

  // Synchronous SAVE: serializes every entry to `path`. Returns bytes written.
  SimTask<Result<uint64_t>> Save(const std::string& path);

  // BGSAVE: forks; the child saves to `path`.tmp, renames onto `path` and exits with 0.
  // Returns the child pid; the caller may wait() for completion (U4's "concurrently with the
  // main database process" is the point of not waiting).
  SimTask<Result<Pid>> BgSave(const std::string& path);

  // Verifies a dump file: parses the format and returns (entries, payload bytes) after
  // checking the trailing checksum. Used by tests and benchmarks to prove snapshot integrity.
  struct DumpInfo {
    uint64_t entries = 0;
    uint64_t value_bytes = 0;
  };
  SimTask<Result<DumpInfo>> VerifyDump(const std::string& path);

 private:
  MiniRedis(Guest& guest, GuestHashMap map) : guest_(&guest), map_(std::move(map)) {}

  Guest* guest_;
  GuestHashMap map_;
};

}  // namespace ufork

#endif  // UFORK_SRC_APPS_MINIREDIS_H_
