// Pre-fork multi-worker HTTP server + wrk-style closed-loop load generator.
//
// Models the paper's Nginx experiment (§5.1, Fig. 7): a master μprocess forks W long-lived
// workers (U5: fork for concurrency); each worker accepts requests from a shared listener
// queue, parses and handles them, and replies on the per-connection queue. C load-generator
// connections drive the server closed-loop (like wrk keeping C connections busy). Throughput
// is requests completed / virtual time.
#ifndef UFORK_SRC_APPS_HTTPD_H_
#define UFORK_SRC_APPS_HTTPD_H_

#include "src/guest/guest.h"

namespace ufork {

struct HttpdParams {
  int workers = 1;
  int connections = 8;               // concurrent wrk connections
  uint64_t requests_per_connection = 100;
  Cycles parse_cost = 4'000;         // request parsing + routing
  Cycles handler_cost = 12'000;      // building the response (static file lookup)
  // Blocking (non-CPU) time per request: page-cache miss / backend wait. This is the "workers
  // yielding during I/O" that lets a single-core μFork gain throughput from more workers
  // (paper's explanation of the 1→3 worker improvement in Fig. 7).
  Cycles io_wait = 17'000;
  // CPU cost of the network stack per request (driver + TCP path). The paper runs μFork
  // virtualized over bhyve with Unikraft's VirtIO stack ("immature support... hampers network
  // performance", §5.1) while CheriBSD runs its native stack bare-metal — benchmarks set this
  // per system.
  Cycles net_stack_cost = 8'000;
  uint64_t request_bytes = 128;
  uint64_t response_bytes = 8'000;   // page + headers; fits one message-queue message
};

struct HttpdResult {
  uint64_t requests_completed = 0;
  Cycles elapsed = 0;
  double RequestsPerSecond() const {
    return elapsed == 0 ? 0.0
                        : static_cast<double>(requests_completed) / ToSeconds(elapsed);
  }
};

// The whole benchmark as one guest program: sets up the listener, forks the workers, forks the
// wrk connections, waits for the connections to finish, shuts the workers down, and reports.
SimTask<void> HttpdBenchmark(Guest& guest, HttpdParams params, HttpdResult* result);

}  // namespace ufork

#endif  // UFORK_SRC_APPS_HTTPD_H_
