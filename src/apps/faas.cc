#include "src/apps/faas.h"

#include <algorithm>
#include <cmath>

namespace ufork {
namespace {

// Runtime root block offsets (capability fields granule-aligned).
constexpr uint64_t kOffModuleTable = 0;   // cap -> array of module caps
constexpr uint64_t kOffConstPool = 16;    // cap -> array of doubles
constexpr uint64_t kOffBytecode = 32;     // cap -> bytecode arena
constexpr uint64_t kOffModuleCount = 48;
constexpr uint64_t kOffConstCount = 56;

constexpr uint64_t kModuleCount = 48;       // imports a Python runtime would preload
constexpr uint64_t kModuleSize = 512;       // per-module state
constexpr uint64_t kConstCount = 256;
constexpr uint64_t kBytecodeBytes = 16 * 1024;

// Virtual cost of one float_operation iteration (sqrt + sin + cos + bookkeeping on Morello).
constexpr Cycles kCyclesPerFloatIteration = 90;

}  // namespace

Result<void> InitializeZygoteRuntime(Guest& g) {
  // The cold-start work a Python runtime does once: loading modules, building constant pools,
  // materializing bytecode. Everything is capability-linked so fork children inherit it via
  // relocation.
  UF_ASSIGN_OR_RETURN(const Capability root, g.Malloc(64));
  UF_ASSIGN_OR_RETURN(const Capability modules, g.Malloc(kModuleCount * kCapSize));
  for (uint64_t m = 0; m < kModuleCount; ++m) {
    UF_ASSIGN_OR_RETURN(const Capability module, g.Malloc(kModuleSize));
    // Module "initialization": stamp a header the executor validates.
    UF_RETURN_IF_ERROR(g.StoreAt<uint64_t>(module, 0, 0x4d4f44ULL + m));  // "MOD" + index
    UF_RETURN_IF_ERROR(g.StoreCap(modules, modules.base() + m * kCapSize, module));
    g.Compute(2'000);  // import machinery per module
  }
  UF_ASSIGN_OR_RETURN(const Capability consts, g.Malloc(kConstCount * 8));
  for (uint64_t i = 0; i < kConstCount; ++i) {
    UF_RETURN_IF_ERROR(
        g.StoreAt<double>(consts, i * 8, 1.0 + static_cast<double>(i) * 0.5));
  }
  UF_ASSIGN_OR_RETURN(const Capability bytecode, g.Malloc(kBytecodeBytes));
  UF_RETURN_IF_ERROR(g.WriteBytes(
      bytecode, bytecode.base(),
      std::vector<std::byte>(kBytecodeBytes, std::byte{0x42})));
  g.Compute(200'000);  // parse/compile cost

  UF_RETURN_IF_ERROR(g.StoreCap(root, root.base() + kOffModuleTable, modules));
  UF_RETURN_IF_ERROR(g.StoreCap(root, root.base() + kOffConstPool, consts));
  UF_RETURN_IF_ERROR(g.StoreCap(root, root.base() + kOffBytecode, bytecode));
  UF_RETURN_IF_ERROR(g.StoreAt<uint64_t>(root, kOffModuleCount, kModuleCount));
  UF_RETURN_IF_ERROR(g.StoreAt<uint64_t>(root, kOffConstCount, kConstCount));
  return g.GotStore(kGotSlotZygoteRuntime, root);
}

Result<double> FloatOperation(Guest& g, uint64_t iterations) {
  // Reach the warm runtime through the (relocated) GOT: in a fork child these capability loads
  // are what CoPA intercepts.
  UF_ASSIGN_OR_RETURN(const Capability root, g.GotLoad(kGotSlotZygoteRuntime));
  if (!root.tag()) {
    return Error{Code::kErrInval, "Zygote runtime not initialized"};
  }
  UF_ASSIGN_OR_RETURN(const Capability modules, g.LoadCap(root, root.base() + kOffModuleTable));
  UF_ASSIGN_OR_RETURN(const uint64_t module_count,
                      g.Load<uint64_t>(root, root.base() + kOffModuleCount));
  // Validate a module header (the "import math" the function body needs).
  const uint64_t math_index = 7 % module_count;
  UF_ASSIGN_OR_RETURN(const Capability math_module,
                      g.LoadCap(modules, modules.base() + math_index * kCapSize));
  UF_ASSIGN_OR_RETURN(const uint64_t module_magic, g.LoadAt<uint64_t>(math_module, 0));
  if (module_magic != 0x4d4f44ULL + math_index) {
    return Error{Code::kErrInval, "corrupted module table after fork"};
  }
  UF_ASSIGN_OR_RETURN(const Capability consts, g.LoadCap(root, root.base() + kOffConstPool));
  UF_ASSIGN_OR_RETURN(const double seed, g.Load<double>(consts, consts.base()));

  // FunctionBench float_operation: sqrt/sin/cos accumulation.
  double acc = seed;
  for (uint64_t i = 0; i < iterations; ++i) {
    const double x = static_cast<double>(i) + acc * 1e-9;
    acc += std::sqrt(x) + std::sin(x) + std::cos(x);
  }
  g.Compute(kCyclesPerFloatIteration * iterations);
  return acc;
}

SimTask<void> ZygoteCoordinator(Guest& g, ZygoteParams params, ZygoteResult* result) {
  Scheduler& sched = g.kernel().sched();
  const Cycles start = sched.Now();
  uint64_t completed = 0;
  uint64_t launched = 0;
  uint64_t retries = 0;
  int inflight = 0;
  // Bounded exponential backoff for kernel pushback: when fork is refused — admission control
  // below the low watermark (EAGAIN) or a failed grant (ENOMEM) — a flat retry interval turns
  // the coordinator into part of the overload (it re-offers load exactly as fast as the kernel
  // can refuse it). Doubling from 50μs to a 3.2ms ceiling spaces the retries out in virtual
  // time; the first successful fork resets the backoff to the floor.
  constexpr Cycles kBackoffFloor = Microseconds(50);
  constexpr Cycles kBackoffCeiling = Microseconds(3200);
  Cycles backoff = kBackoffFloor;

  while (sched.Now() - start < params.window) {
    if (inflight >= params.worker_cores) {
      auto waited = co_await g.Wait();
      if (waited.ok()) {
        --inflight;
        if (waited->status == 0) {
          ++completed;
        }
      }
      continue;
    }
    // Keep function executors off the coordinator core: round-robin across worker cores.
    g.SetChildAffinity(1 + static_cast<int>(launched % params.worker_cores));
    GuestFn executor_fn =
        [iterations = params.float_iterations](Guest& cg) -> SimTask<void> {
      auto value = FloatOperation(cg, iterations);
      co_await cg.Exit(value.ok() ? 0 : 1);
    };
    auto child = co_await g.Fork(std::move(executor_fn));
    if (!child.ok()) {
      ++retries;
      co_await g.Nanosleep(backoff);
      if (child.error().code == Code::kErrAgain || child.error().code == Code::kErrNoMem) {
        backoff = std::min(backoff * 2, kBackoffCeiling);
      }
      continue;
    }
    backoff = kBackoffFloor;
    ++launched;
    ++inflight;
  }
  while (inflight > 0) {
    auto waited = co_await g.Wait();
    if (!waited.ok()) {
      break;
    }
    --inflight;
    if (waited->status == 0) {
      ++completed;
    }
  }
  result->functions_completed = completed;
  result->fork_retries = retries;
  result->elapsed = sched.Now() - start;
}

}  // namespace ufork
