#include "src/apps/unixbench.h"

namespace ufork {

SimTask<void> UnixbenchSpawn(Guest& g, uint64_t iterations, SpawnResult* result) {
  Scheduler& sched = g.kernel().sched();
  const Cycles start = sched.Now();
  for (uint64_t i = 0; i < iterations; ++i) {
    auto child = co_await g.Fork([](Guest& cg) -> SimTask<void> {
      co_await cg.Exit(0);
    });
    UF_CHECK_MSG(child.ok(), "spawn benchmark fork failed");
    auto waited = co_await g.Wait();
    UF_CHECK(waited.ok() && waited->pid == *child);
  }
  result->iterations = iterations;
  result->elapsed = sched.Now() - start;
}

SimTask<void> UnixbenchContext1(Guest& g, uint64_t target, Context1Result* result) {
  Scheduler& sched = g.kernel().sched();
  auto pipe_down = co_await g.Pipe();  // parent -> child
  auto pipe_up = co_await g.Pipe();    // child -> parent
  UF_CHECK(pipe_down.ok() && pipe_up.ok());
  const auto [down_r, down_w] = *pipe_down;
  const auto [up_r, up_w] = *pipe_up;

  GuestFn child_fn = [down_r = down_r, down_w = down_w, up_r = up_r, up_w = up_w,
                      target](Guest& cg) -> SimTask<void> {
        // Close the inherited ends this side does not use, so EOF propagates (classic
        // fork+pipe hygiene).
        (void)co_await cg.Close(down_w);
        (void)co_await cg.Close(up_r);
        auto buf = cg.Malloc(8);
        UF_CHECK(buf.ok());
        for (;;) {
          auto n = co_await cg.Read(down_r, *buf, 8);
          if (!n.ok() || *n == 0) {
            break;
          }
          auto v = cg.LoadAt<uint64_t>(*buf, 0);
          UF_CHECK(v.ok());
          if (*v >= target) {
            break;
          }
          UF_CHECK(cg.StoreAt<uint64_t>(*buf, 0, *v + 1).ok());
          UF_CHECK((co_await cg.Write(up_w, *buf, 8)).ok());
        }
        co_await cg.Exit(0);
      };
  auto child = co_await g.Fork(std::move(child_fn));
  UF_CHECK(child.ok());

  const Cycles start = sched.Now();
  auto buf = g.Malloc(8);
  UF_CHECK(buf.ok());
  uint64_t counter = 0;
  uint64_t round_trips = 0;
  while (counter < target) {
    UF_CHECK(g.StoreAt<uint64_t>(*buf, 0, counter).ok());
    UF_CHECK((co_await g.Write(down_w, *buf, 8)).ok());
    if (counter + 1 >= target) {
      // The child observes >= target and exits without replying.
      counter = target;
      break;
    }
    auto n = co_await g.Read(up_r, *buf, 8);
    UF_CHECK(n.ok() && *n == 8);
    auto v = g.LoadAt<uint64_t>(*buf, 0);
    UF_CHECK(v.ok());
    counter = *v + 1;
    ++round_trips;
  }
  result->round_trips = round_trips;
  result->elapsed = sched.Now() - start;
  // Closing the downstream write end delivers EOF so the child exits.
  (void)co_await g.Close(down_w);
  (void)co_await g.Wait();
}

namespace {

// The execl benchmark bounces between two roles through a counter file: each exec'd image
// decrements the remaining count and execs itself again, ending by exiting with 0.
constexpr const char* kExeclCounterPath = "/unixbench/execl.counter";

SimTask<Result<uint64_t>> LoadExeclCounter(Guest& g) {
  auto fd = co_await g.Open(kExeclCounterPath, kOpenRead);
  if (!fd.ok()) {
    co_return fd.error();
  }
  auto buf = g.Malloc(16);
  if (!buf.ok()) {
    co_return buf.error();
  }
  auto n = co_await g.Read(*fd, *buf, 8);
  if (!n.ok()) {
    co_return n.error();
  }
  (void)co_await g.Close(*fd);
  co_return g.LoadAt<uint64_t>(*buf, 0);
}

SimTask<Result<void>> StoreExeclCounter(Guest& g, uint64_t value) {
  auto fd = co_await g.Open(kExeclCounterPath, kOpenWrite | kOpenCreate | kOpenTrunc);
  if (!fd.ok()) {
    co_return fd.error();
  }
  auto buf = g.Malloc(16);
  if (!buf.ok()) {
    co_return buf.error();
  }
  UF_CO_RETURN_IF_ERROR(g.StoreAt<uint64_t>(*buf, 0, value));
  auto n = co_await g.Write(*fd, *buf, 8);
  if (!n.ok()) {
    co_return n.error();
  }
  co_return co_await g.Close(*fd);
}

}  // namespace

void RegisterExeclHop(Kernel& kernel) {
  kernel.RegisterProgram("execl-hop", MakeGuestEntry([](Guest& g) -> SimTask<void> {
    auto remaining = co_await LoadExeclCounter(g);
    UF_CHECK(remaining.ok());
    if (*remaining == 0) {
      co_await g.Exit(0);
    }
    UF_CHECK((co_await StoreExeclCounter(g, *remaining - 1)).ok());
    (void)co_await g.Exec("execl-hop");
    co_await g.Exit(1);  // unreachable on success
  }));
}

SimTask<void> UnixbenchExecl(Guest& g, uint64_t iterations, ExeclResult* result) {
  Scheduler& sched = g.kernel().sched();
  UF_CHECK((co_await StoreExeclCounter(g, iterations)).ok());
  const Cycles start = sched.Now();
  GuestFn hop = [](Guest& cg) -> SimTask<void> {
    (void)co_await cg.Exec("execl-hop");
    co_await cg.Exit(1);
  };
  auto child = co_await g.Fork(std::move(hop));
  UF_CHECK(child.ok());
  auto waited = co_await g.Wait();
  UF_CHECK(waited.ok() && waited->status == 0);
  result->iterations = iterations;
  result->elapsed = sched.Now() - start;
}

}  // namespace ufork
