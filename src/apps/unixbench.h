// Unixbench ports: Spawn (fork+exit throughput) and Context1 (pipe-based context switching),
// the two microbenchmarks of the paper's Figure 9.
#ifndef UFORK_SRC_APPS_UNIXBENCH_H_
#define UFORK_SRC_APPS_UNIXBENCH_H_

#include "src/guest/guest.h"

namespace ufork {

struct SpawnResult {
  uint64_t iterations = 0;
  Cycles elapsed = 0;
  double ForkLatencyUs() const {
    return iterations == 0 ? 0.0 : ToMicroseconds(elapsed) / static_cast<double>(iterations);
  }
};

// Unixbench "spawn": fork a trivial child and wait for it, `iterations` times.
SimTask<void> UnixbenchSpawn(Guest& guest, uint64_t iterations, SpawnResult* result);

struct Context1Result {
  uint64_t round_trips = 0;
  Cycles elapsed = 0;
};

// Unixbench "context1": parent and child bounce an incrementing counter through two pipes
// until it reaches `target` (the paper uses 100k).
SimTask<void> UnixbenchContext1(Guest& guest, uint64_t target, Context1Result* result);

struct ExeclResult {
  uint64_t iterations = 0;
  Cycles elapsed = 0;
  double PerExecUs() const {
    return iterations == 0 ? 0.0 : ToMicroseconds(elapsed) / static_cast<double>(iterations);
  }
};

// Unixbench "execl" analogue: a chain of exec() calls replacing the image in place. The
// kernel must have a program named "execl-hop" registered; use RegisterExeclHop.
SimTask<void> UnixbenchExecl(Guest& guest, uint64_t iterations, ExeclResult* result);
void RegisterExeclHop(Kernel& kernel);

}  // namespace ufork

#endif  // UFORK_SRC_APPS_UNIXBENCH_H_
