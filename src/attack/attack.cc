#include "src/attack/attack.h"

#include <array>
#include <utility>

#include "src/guest/gvector.h"
#include "src/kernel/vfs.h"

namespace ufork {
namespace {

constexpr uint64_t kSlotBytes = 32;   // forgery slot: two capability granules
constexpr uint64_t kProbeBytes = 48;  // bounds-probe allocation (three granules)

// Detail-byte bits for ops that reload a capability after mangling/transport.
constexpr uint8_t kDetailTag = 0x1;          // the reloaded capability carried a valid tag
constexpr uint8_t kDetailBytesIntact = 0x2;  // the data plane survived the transfer unchanged

bool IsFaultCode(Code code) {
  return code >= Code::kFaultTag && code <= Code::kFaultNotPresent;
}

void PutU32(std::vector<std::byte>& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
  }
}

uint32_t GetU32(std::span<const std::byte> bytes, size_t off) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(std::to_integer<uint8_t>(bytes[off + i])) << (8 * i);
  }
  return v;
}

}  // namespace

const char* AttackOpName(AttackOp op) {
  switch (op) {
    case AttackOp::kForgeRawBytes: return "forge-raw-bytes";
    case AttackOp::kClobberCapByte: return "clobber-cap-byte";
    case AttackOp::kDerefForged: return "deref-forged";
    case AttackOp::kBoundsLoadHigh: return "bounds-load-high";
    case AttackOp::kBoundsLoadLow: return "bounds-load-low";
    case AttackOp::kBoundsStoreHigh: return "bounds-store-high";
    case AttackOp::kGvectorEscape: return "gvector-escape";
    case AttackOp::kSentryDeref: return "sentry-deref";
    case AttackOp::kSentryRetag: return "sentry-retag";
    case AttackOp::kSealNoPerm: return "seal-no-perm";
    case AttackOp::kUnsealWrong: return "unseal-wrong";
    case AttackOp::kPipeLaunder: return "pipe-launder";
    case AttackOp::kMqLaunder: return "mq-launder";
    case AttackOp::kVfsLaunder: return "vfs-launder";
    case AttackOp::kForkLaunder: return "fork-launder";
    case AttackOp::kShmStoreCap: return "shm-storecap";
    case AttackOp::kGotOutOfRange: return "got-out-of-range";
    case AttackOp::kUafStash: return "uaf-stash";
    case AttackOp::kNumOps: break;
  }
  return "unknown";
}

const char* AttackClassName(AttackClass cls) {
  switch (cls) {
    case AttackClass::kForgery: return "forgery";
    case AttackClass::kBounds: return "bounds";
    case AttackClass::kSealed: return "sealed";
    case AttackClass::kTagLaunder: return "tag-launder";
    case AttackClass::kUaf: return "uaf";
    case AttackClass::kMisc: return "misc";
  }
  return "unknown";
}

std::vector<std::byte> AttackTrace::Encode() const {
  // [fatal_step u32][fatal_code i32][count u32] then 6 bytes per step [op][code i32][detail].
  std::vector<std::byte> out;
  out.reserve(12 + steps.size() * 6);
  PutU32(out, fatal_step);
  PutU32(out, static_cast<uint32_t>(static_cast<int32_t>(fatal_code)));
  PutU32(out, static_cast<uint32_t>(steps.size()));
  for (const StepOutcome& s : steps) {
    out.push_back(static_cast<std::byte>(s.op));
    PutU32(out, static_cast<uint32_t>(s.code));
    out.push_back(static_cast<std::byte>(s.detail));
  }
  return out;
}

AttackTrace AttackTrace::Decode(std::span<const std::byte> bytes) {
  AttackTrace trace;
  if (bytes.size() < 12) {
    return trace;
  }
  trace.fatal_step = GetU32(bytes, 0);
  trace.fatal_code = static_cast<Code>(static_cast<int32_t>(GetU32(bytes, 4)));
  const uint32_t count = GetU32(bytes, 8);
  size_t off = 12;
  for (uint32_t i = 0; i < count && off + 6 <= bytes.size(); ++i, off += 6) {
    StepOutcome s;
    s.op = std::to_integer<uint8_t>(bytes[off]);
    s.code = static_cast<int32_t>(GetU32(bytes, off + 1));
    s.detail = std::to_integer<uint8_t>(bytes[off + 5]);
    trace.steps.push_back(s);
  }
  return trace;
}

std::vector<std::byte> EncodeAttackProgram(const AttackProgram& program) {
  std::vector<std::byte> out;
  out.reserve(program.size() * 2);
  for (const AttackStep& step : program) {
    out.push_back(static_cast<std::byte>(step.op));
    out.push_back(static_cast<std::byte>(step.arg));
  }
  return out;
}

AttackProgram DecodeAttackProgram(std::span<const std::byte> bytes) {
  AttackProgram program;
  program.reserve(bytes.size() / 2);
  for (size_t i = 0; i + 1 < bytes.size(); i += 2) {
    AttackStep step;
    step.op = static_cast<AttackOp>(std::to_integer<uint8_t>(bytes[i]) % kNumAttackOps);
    step.arg = std::to_integer<uint8_t>(bytes[i + 1]);
    program.push_back(step);
  }
  return program;
}

SimTask<AttackTrace> ExecuteAttackProgram(Guest& g, AttackProgram program,
                                          uint64_t uaf_target_va) {
  AttackTrace trace;
  Capability slot;    // forgery slot (lazily allocated)
  Capability probe;   // valid data allocation the attacks mangle copies of
  Capability loaded;  // whatever the last forge/launder op reloaded (untagged by default)

  // Lazy working-set allocation. An allocation refusal (e.g. chaos-injected ENOMEM) is an
  // errno outcome for the step, not a crash — the program continues.
  auto ensure_slot = [&]() -> Code {
    if (slot.tag()) return Code::kOk;
    Result<Capability> r = g.Malloc(kSlotBytes);
    if (!r.ok()) return r.code();
    slot = *r;
    return Code::kOk;
  };
  auto ensure_probe = [&]() -> Code {
    if (probe.tag()) return Code::kOk;
    Result<Capability> r = g.Malloc(kProbeBytes);
    if (!r.ok()) return r.code();
    probe = *r;
    return Code::kOk;
  };
  // Shared tail for the launder ops: reload the transported granule as a capability, record
  // its tag + byte integrity, then dereference it — the fatal proof the tag did not survive.
  auto reload_and_deref = [&](const Capability& dst, const Capability& src, uint8_t& detail,
                              Code& code) {
    Result<Capability> lr = g.LoadCap(dst, dst.base());
    if (!lr.ok()) {
      code = lr.code();
      return;
    }
    loaded = *lr;
    detail = loaded.tag() ? kDetailTag : 0;
    std::array<std::byte, kCapSize> sent{};
    std::array<std::byte, kCapSize> got{};
    if (g.ReadBytes(src, src.base(), sent).ok() && g.ReadBytes(dst, dst.base(), got).ok() &&
        sent == got) {
      detail |= kDetailBytesIntact;
    }
    code = g.Load<uint64_t>(loaded, loaded.address()).code();
  };

  for (size_t i = 0; i < program.size(); ++i) {
    const AttackStep step = program[i];
    Code code = Code::kOk;
    uint8_t detail = 0;
    switch (step.op) {
      case AttackOp::kForgeRawBytes: {
        if ((code = ensure_slot()) != Code::kOk) break;
        std::array<std::byte, kCapSize> raw;
        for (size_t b = 0; b < raw.size(); ++b) {
          raw[b] = static_cast<std::byte>(static_cast<uint8_t>(step.arg + 0x41 * b));
        }
        if (Result<void> w = g.WriteBytes(slot, slot.base(), raw); !w.ok()) {
          code = w.code();
          break;
        }
        Result<Capability> r = g.LoadCap(slot, slot.base());
        if (!r.ok()) {
          code = r.code();
          break;
        }
        loaded = *r;
        detail = loaded.tag() ? kDetailTag : 0;
        break;
      }
      case AttackOp::kClobberCapByte: {
        if ((code = ensure_slot()) != Code::kOk) break;
        if ((code = ensure_probe()) != Code::kOk) break;
        if (Result<void> sc = g.StoreCap(slot, slot.base(), probe); !sc.ok()) {
          code = sc.code();
          break;
        }
        const uint64_t byte_off = step.arg % kCapSize;
        if (Result<void> st = g.Store<uint8_t>(slot, slot.base() + byte_off, 0x5A); !st.ok()) {
          code = st.code();
          break;
        }
        Result<Capability> r = g.LoadCap(slot, slot.base());
        if (!r.ok()) {
          code = r.code();
          break;
        }
        loaded = *r;
        detail = loaded.tag() ? kDetailTag : 0;
        break;
      }
      case AttackOp::kDerefForged: {
        detail = loaded.tag() ? kDetailTag : 0;
        code = g.Load<uint64_t>(loaded, loaded.address()).code();
        break;
      }
      case AttackOp::kBoundsLoadHigh: {
        if ((code = ensure_probe()) != Code::kOk) break;
        code = g.Load<uint64_t>(probe, probe.top() + (step.arg % 8) * 8).code();
        break;
      }
      case AttackOp::kBoundsLoadLow: {
        if ((code = ensure_probe()) != Code::kOk) break;
        // The tinyalloc block header lives one granule below the payload base.
        code = g.Load<uint64_t>(probe, probe.base() - kCapSize).code();
        break;
      }
      case AttackOp::kBoundsStoreHigh: {
        if ((code = ensure_probe()) != Code::kOk) break;
        code = g.Store<uint64_t>(probe, probe.top(), 0xDEADBEEF).code();
        break;
      }
      case AttackOp::kGvectorEscape: {
        Result<GuestVector<uint64_t>> vec = GuestVector<uint64_t>::Create(g, /*capacity=*/4);
        if (!vec.ok()) {
          code = vec.code();
          break;
        }
        const int pushes = 1 + step.arg % 4;
        for (int n = 0; n < pushes && code == Code::kOk; ++n) {
          code = vec->PushBack(static_cast<uint64_t>(n)).code();
        }
        if (code != Code::kOk) break;
        // Header layout: [size u64 | capacity u64 | data capability] — reload the data
        // capability raw and walk one element past its (tight) bounds.
        Result<Capability> data = g.LoadCap(vec->header(), vec->header().base() + 16);
        if (!data.ok()) {
          code = data.code();
          break;
        }
        detail = data->tag() ? kDetailTag : 0;
        code = g.Load<uint64_t>(*data, data->top()).code();
        break;
      }
      case AttackOp::kSentryDeref: {
        const Capability& sentry = g.uproc().syscall_sentry;
        detail = sentry.tag() ? kDetailTag : 0;
        code = g.Load<uint64_t>(sentry, sentry.address()).code();
        break;
      }
      case AttackOp::kSentryRetag: {
        const Capability& sentry = g.uproc().syscall_sentry;
        const Capability retag = sentry.WithAddress(sentry.address() + 8);
        detail = retag.tag() ? kDetailTag : 0;
        code = g.Load<uint64_t>(retag, retag.address()).code();
        break;
      }
      case AttackOp::kSealNoPerm: {
        if ((code = ensure_probe()) != Code::kOk) break;
        // The DDC deliberately lacks kPermSeal (DESIGN.md §4.4): sealing with it as the
        // authority must refuse with a permission fault before the otype is even examined.
        const Capability sealer =
            g.ddc().WithAddress(g.ddc().base() + kOtypeFirstUser + step.arg % 8);
        code = probe.Sealed(sealer).code();
        break;
      }
      case AttackOp::kUnsealWrong: {
        code = g.uproc().syscall_sentry.Unsealed(g.ddc()).code();
        break;
      }
      case AttackOp::kPipeLaunder: {
        if ((code = ensure_probe()) != Code::kOk) break;
        Result<Capability> src = g.Malloc(kSlotBytes);
        Result<Capability> dst = src.ok() ? g.Malloc(kSlotBytes) : Result<Capability>(src.error());
        if (!dst.ok()) {
          code = dst.code();
          break;
        }
        if (Result<void> sc = g.StoreCap(*src, src->base(), probe); !sc.ok()) {
          code = sc.code();
          break;
        }
        // Pre-seed the receiver granule with a *valid* capability: landing tag-stripped must
        // be the transfer's doing, not a tag the receiver never had.
        if (Result<void> sc = g.StoreCap(*dst, dst->base(), probe); !sc.ok()) {
          code = sc.code();
          break;
        }
        auto pipe = co_await g.Pipe();
        if (!pipe.ok()) {
          code = pipe.code();
          break;
        }
        const auto [rfd, wfd] = *pipe;
        auto wrote = co_await g.Write(wfd, *src, kCapSize);
        Result<int64_t> read = wrote.ok() ? co_await g.Read(rfd, *dst, kCapSize)
                                          : Result<int64_t>(wrote.error());
        (void)co_await g.Close(rfd);
        (void)co_await g.Close(wfd);
        if (!read.ok()) {
          code = read.code();
          break;
        }
        reload_and_deref(*dst, *src, detail, code);
        break;
      }
      case AttackOp::kMqLaunder: {
        if ((code = ensure_probe()) != Code::kOk) break;
        Result<Capability> src = g.Malloc(kSlotBytes);
        Result<Capability> dst = src.ok() ? g.Malloc(kSlotBytes) : Result<Capability>(src.error());
        if (!dst.ok()) {
          code = dst.code();
          break;
        }
        if (Result<void> sc = g.StoreCap(*src, src->base(), probe); !sc.ok()) {
          code = sc.code();
          break;
        }
        if (Result<void> sc = g.StoreCap(*dst, dst->base(), probe); !sc.ok()) {
          code = sc.code();
          break;
        }
        auto self = co_await g.GetPid();
        const std::string name =
            "/mq/attack-" + std::to_string(self.ok() ? static_cast<int64_t>(*self) : 0);
        auto fd = co_await g.MqOpen(name, /*create=*/true);
        if (!fd.ok()) {
          code = fd.code();
          break;
        }
        auto wrote = co_await g.Write(*fd, *src, kCapSize);
        Result<int64_t> read = wrote.ok() ? co_await g.Read(*fd, *dst, kCapSize)
                                          : Result<int64_t>(wrote.error());
        (void)co_await g.Close(*fd);
        if (!read.ok()) {
          code = read.code();
          break;
        }
        reload_and_deref(*dst, *src, detail, code);
        break;
      }
      case AttackOp::kVfsLaunder: {
        if ((code = ensure_probe()) != Code::kOk) break;
        Result<Capability> src = g.Malloc(kSlotBytes);
        Result<Capability> dst = src.ok() ? g.Malloc(kSlotBytes) : Result<Capability>(src.error());
        if (!dst.ok()) {
          code = dst.code();
          break;
        }
        if (Result<void> sc = g.StoreCap(*src, src->base(), probe); !sc.ok()) {
          code = sc.code();
          break;
        }
        if (Result<void> sc = g.StoreCap(*dst, dst->base(), probe); !sc.ok()) {
          code = sc.code();
          break;
        }
        auto self = co_await g.GetPid();
        const std::string path =
            "/attack-launder-" + std::to_string(self.ok() ? static_cast<int64_t>(*self) : 0);
        auto fd = co_await g.Open(path, kOpenRead | kOpenWrite | kOpenCreate | kOpenTrunc);
        if (!fd.ok()) {
          code = fd.code();
          break;
        }
        auto wrote = co_await g.Write(*fd, *src, kCapSize);
        if (wrote.ok()) {
          auto seeked = co_await g.Seek(*fd, 0, /*whence=SEEK_SET*/ 0);
          wrote = seeked.ok() ? Result<int64_t>(*wrote) : Result<int64_t>(seeked.error());
        }
        Result<int64_t> read = wrote.ok() ? co_await g.Read(*fd, *dst, kCapSize)
                                          : Result<int64_t>(wrote.error());
        (void)co_await g.Close(*fd);
        (void)co_await g.Unlink(path);
        if (!read.ok()) {
          code = read.code();
          break;
        }
        reload_and_deref(*dst, *src, detail, code);
        break;
      }
      case AttackOp::kForkLaunder: {
        if ((code = ensure_probe()) != Code::kOk) break;
        Result<Capability> dst = g.Malloc(kSlotBytes);
        if (!dst.ok()) {
          code = dst.code();
          break;
        }
        if (Result<void> sc = g.StoreCap(*dst, dst->base(), probe); !sc.ok()) {
          code = sc.code();
          break;
        }
        auto pipe = co_await g.Pipe();
        if (!pipe.ok()) {
          code = pipe.code();
          break;
        }
        const auto [rfd, wfd] = *pipe;
        // The child pipes the raw bytes of its *own* (valid, post-fork-relocated) heap
        // capability back across the fork boundary.
        GuestFn child_fn = [wfd](Guest& cg) -> SimTask<void> {
          Result<Capability> buf = cg.Malloc(kSlotBytes);
          if (buf.ok() && cg.StoreCap(*buf, buf->base(), *buf).ok()) {
            (void)co_await cg.Write(wfd, *buf, kCapSize);
          }
          co_await cg.Exit(0);
        };
        auto child = co_await g.Fork(std::move(child_fn));
        if (!child.ok()) {
          (void)co_await g.Close(rfd);
          (void)co_await g.Close(wfd);
          code = child.code();
          break;
        }
        (void)co_await g.Close(wfd);  // parent's end: the read EOFs even if the child bailed
        auto read = co_await g.Read(rfd, *dst, kCapSize);
        (void)co_await g.Wait();
        (void)co_await g.Close(rfd);
        if (!read.ok()) {
          code = read.code();
          break;
        }
        if (*read != static_cast<int64_t>(kCapSize)) {
          break;  // child died before writing (chaos): nothing transported, clean outcome
        }
        Result<Capability> lr = g.LoadCap(*dst, dst->base());
        if (!lr.ok()) {
          code = lr.code();
          break;
        }
        loaded = *lr;
        detail = loaded.tag() ? kDetailTag : 0;
        code = g.Load<uint64_t>(loaded, loaded.address()).code();
        break;
      }
      case AttackOp::kShmStoreCap: {
        if ((code = ensure_probe()) != Code::kOk) break;
        auto self = co_await g.GetPid();
        const std::string name =
            "/shm/attack-" + std::to_string(self.ok() ? static_cast<int64_t>(*self) : 0);
        auto shm = co_await g.ShmOpen(name, 4096);
        if (!shm.ok()) {
          code = shm.code();
          break;
        }
        auto window = co_await g.ShmMap(*shm);
        if (!window.ok()) {
          code = window.code();
          break;
        }
        detail = window->HasPerms(kPermStoreCap) ? kDetailTag : 0;  // must be 0
        code = g.StoreCap(*window, window->base(), probe).code();
        (void)co_await g.ShmUnlink(name);
        break;
      }
      case AttackOp::kGotOutOfRange: {
        if ((code = ensure_probe()) != Code::kOk) break;
        // Past the table: an errno, not a fault — execution continues.
        code = g.GotStore(kGotSlotFirstUser + 200 + step.arg, probe).code();
        break;
      }
      case AttackOp::kUafStash: {
        if (uaf_target_va == 0) {
          code = Code::kErrInval;  // op disabled outside the UAF differential campaign
          break;
        }
        if ((code = ensure_slot()) != Code::kOk) break;
        // Stand-in for a capability legitimately held before its region was freed: stash it
        // in guest memory (where the revocation sweep can see it), reload, dereference.
        const Capability stashed = Capability::Root(uaf_target_va, 64, kPermAllData);
        if (Result<void> sc = g.StoreCap(slot, slot.base() + kCapSize, stashed); !sc.ok()) {
          code = sc.code();
          break;
        }
        Result<Capability> lr = g.LoadCap(slot, slot.base() + kCapSize);
        if (!lr.ok()) {
          code = lr.code();
          break;
        }
        loaded = *lr;
        detail = loaded.tag() ? kDetailTag : 0;
        code = g.Load<uint64_t>(loaded, loaded.address()).code();
        break;
      }
      case AttackOp::kNumOps:
        code = Code::kErrInval;
        break;
    }
    trace.steps.push_back(
        StepOutcome{static_cast<uint8_t>(step.op), static_cast<int32_t>(code), detail});
    if (IsFaultCode(code)) {
      trace.fatal_step = static_cast<uint32_t>(i);
      trace.fatal_code = code;
      break;
    }
  }
  co_return trace;
}

SimTask<void> RunAttackChild(Guest& g, AttackProgram program, int trace_fd,
                             uint64_t uaf_target_va) {
  const AttackTrace trace = co_await ExecuteAttackProgram(g, std::move(program), uaf_target_va);
  // Flush the trace through the pipe first — the simulator's stand-in for a core dump — then
  // take the trap. A lost trace (chaos starved the buffer) still yields the right status.
  const std::vector<std::byte> wire = trace.Encode();
  if (Result<Capability> buf = g.PlaceBytes(wire); buf.ok()) {
    (void)co_await g.Write(trace_fd, *buf, wire.size());
  }
  (void)co_await g.Close(trace_fd);
  if (trace.fatal()) {
    const AttackOp op = static_cast<AttackOp>(trace.steps.back().op);
    // Hoisted per the GCC 12 rule (guest.h): the fault never resumes this frame, and a string
    // temporary spanning that suspension would be destroyed twice when the thread is reaped.
    const Error fault{trace.fatal_code, std::string("attack battery: ") + AttackOpName(op)};
    co_await g.RaiseFault(fault);
    co_return;
  }
  co_await g.Exit(0);
}

const std::vector<BatteryAttack>& AttackBattery() {
  static const std::vector<BatteryAttack> battery = [] {
    auto p = [](std::initializer_list<AttackStep> steps) { return AttackProgram(steps); };
    std::vector<BatteryAttack> b;
    // Forgery: raw bytes over a slot reload untagged; a clobbered byte untags a valid cap.
    b.push_back({"forge-raw-bytes",
                 AttackClass::kForgery,
                 p({{AttackOp::kForgeRawBytes, 7}, {AttackOp::kDerefForged, 0}}),
                 Code::kFaultTag});
    b.push_back({"clobber-cap-byte",
                 AttackClass::kForgery,
                 p({{AttackOp::kClobberCapByte, 3}, {AttackOp::kDerefForged, 0}}),
                 Code::kFaultTag});
    // Bounds: walks off tinyalloc and gvector allocations in all three directions.
    b.push_back({"bounds-load-high", AttackClass::kBounds, p({{AttackOp::kBoundsLoadHigh, 0}}),
                 Code::kFaultBounds});
    b.push_back({"bounds-load-low", AttackClass::kBounds, p({{AttackOp::kBoundsLoadLow, 0}}),
                 Code::kFaultBounds});
    b.push_back({"bounds-store-high", AttackClass::kBounds, p({{AttackOp::kBoundsStoreHigh, 0}}),
                 Code::kFaultBounds});
    b.push_back({"gvector-escape", AttackClass::kBounds, p({{AttackOp::kGvectorEscape, 2}}),
                 Code::kFaultBounds});
    // Sealed-capability misuse against the syscall sentry and the seal/unseal authority model.
    b.push_back({"sentry-deref", AttackClass::kSealed, p({{AttackOp::kSentryDeref, 0}}),
                 Code::kFaultSeal});
    b.push_back({"sentry-retag", AttackClass::kSealed, p({{AttackOp::kSentryRetag, 0}}),
                 Code::kFaultTag});
    b.push_back({"seal-no-perm", AttackClass::kSealed, p({{AttackOp::kSealNoPerm, 1}}),
                 Code::kFaultPermission});
    b.push_back({"unseal-wrong", AttackClass::kSealed, p({{AttackOp::kUnsealWrong, 0}}),
                 Code::kFaultSeal});
    // Tag laundering through every transfer buffer the kernel owns.
    b.push_back({"pipe-launder", AttackClass::kTagLaunder, p({{AttackOp::kPipeLaunder, 0}}),
                 Code::kFaultTag});
    b.push_back({"mq-launder", AttackClass::kTagLaunder, p({{AttackOp::kMqLaunder, 0}}),
                 Code::kFaultTag});
    b.push_back({"vfs-launder", AttackClass::kTagLaunder, p({{AttackOp::kVfsLaunder, 0}}),
                 Code::kFaultTag});
    b.push_back({"fork-launder", AttackClass::kTagLaunder, p({{AttackOp::kForkLaunder, 0}}),
                 Code::kFaultTag});
    b.push_back({"shm-storecap", AttackClass::kTagLaunder, p({{AttackOp::kShmStoreCap, 0}}),
                 Code::kFaultPermission});
    // Errno-plane probe: refused, not trapped — the program exits cleanly.
    b.push_back({"got-out-of-range", AttackClass::kMisc, p({{AttackOp::kGotOutOfRange, 0}}),
                 Code::kOk});
    // Multi-step: errno outcomes recorded mid-program, first fault wins.
    b.push_back({"combo-errno-then-fault",
                 AttackClass::kMisc,
                 p({{AttackOp::kForgeRawBytes, 1},
                    {AttackOp::kGotOutOfRange, 9},
                    {AttackOp::kClobberCapByte, 14},
                    {AttackOp::kBoundsLoadHigh, 3}}),
                 Code::kFaultBounds});
    return b;
  }();
  return battery;
}

}  // namespace ufork
