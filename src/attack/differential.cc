#include "src/attack/differential.h"

#include <utility>

#include "src/attack/state_digest.h"
#include "src/baseline/system.h"
#include "src/ufork/revocation.h"

namespace ufork {
namespace {

constexpr uint64_t kTraceBufBytes = 512;

// Parks the caller on a named message queue until a waker posts one byte.
SimTask<void> Park(Guest& g, const std::string& name) {
  auto fd = co_await g.MqOpen(name, /*create=*/true);
  if (!fd.ok()) co_return;
  Result<Capability> buf = g.Malloc(16);
  if (!buf.ok()) co_return;
  (void)co_await g.Read(*fd, *buf, 1);
  (void)co_await g.Close(*fd);
}

GuestFn MakeWaker(std::string queue) {
  GuestFn fn = [queue](Guest& g) -> SimTask<void> {
    auto fd = co_await g.MqOpen(queue, /*create=*/true);
    if (!fd.ok()) co_return;
    Result<Capability> buf = g.Malloc(16);
    if (!buf.ok()) co_return;
    (void)co_await g.Write(*fd, *buf, 1);
  };
  return fn;
}

// Folds the calling μprocess's guest-visible survivor state: registers (address-free) and the
// GOT capability table up to its first out-of-range slot.
uint64_t FoldSurvivorState(Guest& g) {
  StateDigest d;
  d.MixRegisters(g.uproc().regs, g.base());
  for (int slot = 0;; ++slot) {
    Result<Capability> c = g.GotLoad(slot);
    if (!c.ok()) {
      d.Mix(static_cast<uint64_t>(slot));  // table length is itself guest-visible state
      break;
    }
    d.MixCap(*c, g.base());
  }
  return d.value;
}

}  // namespace

CampaignResult RunBatteryCampaign(const SystemFactory& factory, KernelConfig config,
                                  std::string label,
                                  const std::function<void(Kernel&)>& on_spawned) {
  std::unique_ptr<Kernel> kernel = factory(std::move(config));
  CampaignResult result;
  result.label = std::move(label);
  CampaignResult* out = &result;
  uint64_t survivor_digest = 0;
  uint64_t* survivor_out = &survivor_digest;

  GuestFn driver = [out, survivor_out](Guest& g) -> SimTask<void> {
    for (const BatteryAttack& attack : AttackBattery()) {
      AttackVerdict verdict;
      verdict.attack = attack.name;
      auto pipe = co_await g.Pipe();
      if (!pipe.ok()) {
        verdict.spawn_failed = true;
        out->verdicts.push_back(std::move(verdict));
        continue;
      }
      const auto [rfd, wfd] = *pipe;
      AttackProgram program = attack.program;
      GuestFn child_fn = [program, wfd](Guest& cg) -> SimTask<void> {
        co_await RunAttackChild(cg, program, wfd);
      };
      auto child = co_await g.Fork(std::move(child_fn));
      if (!child.ok()) {
        (void)co_await g.Close(rfd);
        (void)co_await g.Close(wfd);
        verdict.spawn_failed = true;
        out->verdicts.push_back(std::move(verdict));
        continue;
      }
      (void)co_await g.Close(wfd);  // so the drain below EOFs once the child is gone
      std::vector<std::byte> wire;
      if (Result<Capability> buf = g.Malloc(kTraceBufBytes); buf.ok()) {
        for (;;) {
          auto n = co_await g.Read(rfd, *buf, kTraceBufBytes);
          if (!n.ok() || *n == 0) break;
          Result<std::vector<std::byte>> bytes = g.FetchBytes(*buf, static_cast<uint64_t>(*n));
          if (!bytes.ok()) break;
          wire.insert(wire.end(), bytes->begin(), bytes->end());
        }
        (void)g.Free(*buf);
      }
      (void)co_await g.Close(rfd);
      auto waited = co_await g.Wait();
      verdict.status = waited.ok() ? waited->status : -1;
      if (wire.empty()) {
        verdict.trace_lost = true;
      } else {
        verdict.trace = AttackTrace::Decode(wire);
      }
      out->verdicts.push_back(std::move(verdict));
    }
    *survivor_out = FoldSurvivorState(g);
  };

  auto pid = kernel->Spawn(MakeGuestEntry(std::move(driver)), "attack-driver");
  if (pid.ok()) {
    if (on_spawned) {
      on_spawned(*kernel);
    }
    kernel->Run();
  }
  result.faults_contained = kernel->stats().faults_contained;
  result.elapsed = kernel->sched().Now();

  StateDigest d;
  for (const AttackVerdict& v : result.verdicts) {
    d.MixString(v.attack);
    d.Mix(static_cast<uint64_t>(static_cast<int64_t>(v.status)));
    d.Mix(v.spawn_failed ? 1 : 0);
    d.Mix(v.trace_lost ? 1 : 0);
    const std::vector<std::byte> wire = v.trace.Encode();
    d.MixBytes(wire);
  }
  d.Mix(survivor_digest);
  result.digest = d.value;
  return result;
}

std::vector<std::string> DiffCampaigns(const CampaignResult& a, const CampaignResult& b) {
  std::vector<std::string> diffs;
  auto tag = [&](const std::string& what) {
    diffs.push_back(a.label + " vs " + b.label + ": " + what);
  };
  if (a.verdicts.size() != b.verdicts.size()) {
    tag("verdict count " + std::to_string(a.verdicts.size()) + " != " +
        std::to_string(b.verdicts.size()));
    return diffs;
  }
  for (size_t i = 0; i < a.verdicts.size(); ++i) {
    const AttackVerdict& va = a.verdicts[i];
    const AttackVerdict& vb = b.verdicts[i];
    if (va.attack != vb.attack) {
      tag("attack order diverged at #" + std::to_string(i));
      continue;
    }
    if (va.status != vb.status) {
      tag(va.attack + ": status " + std::to_string(va.status) + " != " +
          std::to_string(vb.status));
    }
    if (va.spawn_failed != vb.spawn_failed || va.trace_lost != vb.trace_lost) {
      tag(va.attack + ": spawn/trace availability diverged");
    }
    if (va.trace.Encode() != vb.trace.Encode()) {
      tag(va.attack + ": trace bytes diverged (fatal " + CodeName(va.trace.fatal_code) +
          " vs " + CodeName(vb.trace.fatal_code) + ")");
    }
  }
  if (a.digest != b.digest) {
    tag("state digest diverged");
  }
  return diffs;
}

UafCampaignResult RunUafRevocationCampaign(bool quarantine_on) {
  KernelConfig config;
  config.layout.text_size = 32 * kKiB;
  config.layout.rodata_size = 8 * kKiB;
  config.layout.got_size = 4 * kKiB;
  config.layout.data_size = 8 * kKiB;
  config.layout.heap_size = 256 * kKiB;
  config.layout.stack_size = 32 * kKiB;
  config.layout.tls_size = 4 * kKiB;
  config.layout.mmap_size = 64 * kKiB;
  config.compact_budget_pages = 4;
  config.compact_step_interval = 2'000;
  config.quarantine_freed_regions = quarantine_on;
  auto kernel = MakeUforkKernel(config);
  kernel->sched().set_allow_blocked_exit(true);

  UafCampaignResult result;
  result.quarantine_on = quarantine_on;
  UafCampaignResult* out = &result;
  uint64_t victim_base = 0;
  uint64_t* victim_base_ptr = &victim_base;

  // The attacker stashes a capability into the victim's (still live) region, parks across the
  // victim's teardown — carrying the stash through its GOT, μFork discipline — then reloads
  // and dereferences the stale authority.
  GuestFn attacker = [out, victim_base_ptr](Guest& g) -> SimTask<void> {
    co_await Park(g, "/mq/uaf-stash");
    Result<Capability> slot = g.Malloc(32);
    if (!slot.ok()) co_return;
    const Capability stash = Capability::Root(*victim_base_ptr + 0x100, 64, kPermAllData);
    if (!g.StoreCap(*slot, slot->base(), stash).ok()) co_return;
    Result<Capability> l1 = g.LoadCap(*slot, slot->base());
    out->tag_at_stash = l1.ok() && l1->tag();
    if (!g.GotStore(kGotSlotAttackState, *slot).ok()) co_return;
    co_await Park(g, "/mq/uaf-deref");
    Result<Capability> slot2 = g.GotLoad(kGotSlotAttackState);
    if (!slot2.ok()) co_return;
    Result<Capability> l2 = g.LoadCap(*slot2, slot2->base());
    if (!l2.ok()) co_return;
    out->tag_after_free = l2->tag();
    out->deref_code = g.LoadAt<uint64_t>(*l2, 0).code();
  };
  GuestFn victim = [](Guest& g) -> SimTask<void> {
    co_await Park(g, "/mq/uaf-victim");
    co_await g.Exit(0);
  };

  auto a = kernel->Spawn(MakeGuestEntry(std::move(attacker)), "uaf-attacker");
  auto v = kernel->Spawn(MakeGuestEntry(std::move(victim)), "uaf-victim");
  if (!a.ok() || !v.ok()) {
    return result;
  }
  kernel->Run();  // both park

  Uproc* vp = kernel->FindUproc(*v);
  if (vp == nullptr) {
    return result;
  }
  victim_base = vp->base;

  // Phase 1: the attacker stashes while the victim's region is still live.
  (void)kernel->Spawn(MakeGuestEntry(MakeWaker("/mq/uaf-stash")), "wake-stash");
  kernel->Run();
  // Phase 2: the victim exits. With quarantine on, teardown quarantines the region and the
  // churn hook starts the sweeper, which walks live tagged frames — the attacker's heap and
  // GOT included — revoking the stash. With quarantine off, the region is freed (and
  // re-grantable) immediately; nothing revokes anything.
  (void)kernel->Spawn(MakeGuestEntry(MakeWaker("/mq/uaf-victim")), "wake-victim");
  kernel->Run();
  if (quarantine_on) {
    SweepQuarantineToCompletion(*kernel);
  }
  // Phase 3: the attacker wakes and uses the stale stash. The waker spawned here may even be
  // re-granted the victim's old slot (first-fit) — the strongest form of the hazard.
  (void)kernel->Spawn(MakeGuestEntry(MakeWaker("/mq/uaf-deref")), "wake-deref");
  kernel->Run();

  result.caps_revoked = kernel->stats().caps_revoked;
  result.invariant_ok = CheckRevocationInvariant(*kernel).ok();
  return result;
}

}  // namespace ufork
