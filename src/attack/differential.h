// Differential attack campaigns (DESIGN.md §4.14).
//
// The battery's whole point is the *diff*: every attack must produce the identical
// guest-visible outcome — same errno trail, same contained SIGSEGV, same survivor state —
// whether the kernel underneath forks by CoPA, CoA, full copy, MAS address spaces, or VM
// cloning, with paging eager or on demand and the compaction service off or on. A divergence
// is either a capability-machine bug or a backend leaking its placement into guest-visible
// behaviour; both are exactly what this harness exists to catch.
//
// RunBatteryCampaign spawns one driver μprocess that forks every battery attack in order,
// drains each child's trace through a pipe (the core-dump stand-in), reaps the status, and
// finally folds its own registers and GOT capability table into a StateDigest. Campaign
// results from two backends diff empty when the isolation story held.
//
// RunUafRevocationCampaign drives the one attack the cross-backend battery cannot: a stashed
// capability into another μprocess's region, raced against region teardown and the PR 9
// quarantine/revocation window. μFork-only (it needs the sweeper); quarantine on must revoke
// the stash (deref faults kFaultTag), quarantine off must leave the stale authority live —
// which the harness reports as unsafe.
#ifndef UFORK_SRC_ATTACK_DIFFERENTIAL_H_
#define UFORK_SRC_ATTACK_DIFFERENTIAL_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/attack/attack.h"
#include "src/kernel/kernel.h"

namespace ufork {

using SystemFactory = std::function<std::unique_ptr<Kernel>(KernelConfig)>;

// One attack's guest-visible outcome: the child's exit status plus the trace it flushed.
struct AttackVerdict {
  std::string attack;
  int status = -1;          // 139 = contained SIGSEGV; 0 = clean errno-only run
  bool spawn_failed = false;  // fork of the attack child itself was refused
  bool trace_lost = false;    // child died without flushing its trace (chaos campaigns only)
  AttackTrace trace;
};

struct CampaignResult {
  std::string label;
  std::vector<AttackVerdict> verdicts;
  uint64_t digest = 0;             // StateDigest: traces + statuses + survivor registers/GOT
  uint64_t faults_contained = 0;   // kernel ledger total (informational, not in the digest)
  Cycles elapsed = 0;              // campaign virtual time (informational, not in the digest)
};

// Runs the full AttackBattery() under `factory(config)`. Deterministic: equal configs and
// equal guest-visible semantics imply byte-equal verdict lists and equal digests.
// `on_spawned` (optional) runs after the driver μprocess is spawned but before the first
// guest instruction — the chaos soak arms the fault-injection registry there, so spawning
// the driver itself cannot be the injected failure.
CampaignResult RunBatteryCampaign(const SystemFactory& factory, KernelConfig config,
                                  std::string label,
                                  const std::function<void(Kernel&)>& on_spawned = {});

// Human-readable divergences between two campaigns (empty = identical guest-visible outcome).
std::vector<std::string> DiffCampaigns(const CampaignResult& a, const CampaignResult& b);

// --- UAF through the quarantine/revocation window --------------------------------------------

struct UafCampaignResult {
  bool quarantine_on = false;
  bool tag_at_stash = false;    // the forged capability was live when stashed (must be true)
  bool tag_after_free = false;  // ... and after the victim's region was torn down
  Code deref_code = Code::kOk;  // dereference outcome after teardown
  uint64_t caps_revoked = 0;
  bool invariant_ok = false;  // CheckRevocationInvariant after the campaign

  // The sweep revoked the stash before it could be used.
  bool caught() const { return !tag_after_free && deref_code == Code::kFaultTag; }
  // Stale authority over freed (possibly re-granted) memory survived: the unsafe outcome the
  // differential harness must flag when quarantine is disabled.
  bool unsafe() const { return tag_after_free; }
};

UafCampaignResult RunUafRevocationCampaign(bool quarantine_on);

}  // namespace ufork

#endif  // UFORK_SRC_ATTACK_DIFFERENTIAL_H_
