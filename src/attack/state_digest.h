// Guest-visible state digest (DESIGN.md §4.14).
//
// The differential harness needs more than per-attack verdicts: after a whole campaign it
// diffs the *survivor state* of μFork against MAS and VM-clone. A digest is comparable across
// backends only if it folds nothing backend-placed, so every capability is folded relative to
// its region base (tag, base−region, length, cursor−base, perms, otype) and raw addresses
// never enter the hash. Folded material: registers at the observation point, the GOT
// capability table, exit statuses, and the full attack traces.
#ifndef UFORK_SRC_ATTACK_STATE_DIGEST_H_
#define UFORK_SRC_ATTACK_STATE_DIGEST_H_

#include <cstdint>
#include <span>
#include <string_view>

#include "src/cheri/capability.h"
#include "src/machine/register_file.h"

namespace ufork {

// FNV-1a, 64-bit. Order-sensitive by design: the digest pins the sequence of observations,
// not just their multiset.
struct StateDigest {
  static constexpr uint64_t kOffset = 0xcbf29ce484222325ull;
  static constexpr uint64_t kPrime = 0x100000001b3ull;

  uint64_t value = kOffset;

  void MixByte(uint8_t b) {
    value ^= b;
    value *= kPrime;
  }
  void Mix(uint64_t x) {
    for (int i = 0; i < 8; ++i) {
      MixByte(static_cast<uint8_t>((x >> (8 * i)) & 0xFF));
    }
  }
  void MixBytes(std::span<const std::byte> bytes) {
    Mix(bytes.size());
    for (std::byte b : bytes) {
      MixByte(std::to_integer<uint8_t>(b));
    }
  }
  void MixString(std::string_view s) {
    Mix(s.size());
    for (char c : s) {
      MixByte(static_cast<uint8_t>(c));
    }
  }
  // Address-free capability fold: offsets relative to `region_base`, never raw addresses.
  // Untagged capabilities fold as a bare marker — their byte pattern is forged garbage whose
  // residue is not guest-visible state.
  void MixCap(const Capability& c, uint64_t region_base) {
    if (!c.tag()) {
      Mix(0x00BAD7A6);
      return;
    }
    Mix(1);
    Mix(c.base() - region_base);
    Mix(c.length());
    Mix(c.address() - c.base());
    Mix(c.perms());
    Mix(c.otype());
  }
  void MixRegisters(const RegisterFile& regs, uint64_t region_base) {
    for (const Capability& c : regs.c) {
      MixCap(c, region_base);
    }
    MixCap(regs.pcc, region_base);
    MixCap(regs.csp, region_base);
    MixCap(regs.ddc, region_base);
  }
};

}  // namespace ufork

#endif  // UFORK_SRC_ATTACK_STATE_DIGEST_H_
