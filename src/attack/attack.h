// Adversarial capability-attack battery (DESIGN.md §4.14).
//
// μFork's isolation story rests on the capability machine faulting *exactly* where CHERI says
// it must: forged pointers load untagged, bounds escapes trap, sealed capabilities refuse
// inspection, and IPC transfer buffers launder bytes but never tags. Every speed item in the
// ROADMAP reshaped those paths (fault-around windows, demand fills, sharding, incremental
// compaction); this battery attacks them.
//
// An attack is a small *program* over adversarial primitives (AttackOp), interpreted by guest
// code inside a forked μprocess. Each step records the observed outcome code into a trace; the
// first capability/translation fault is fatal — the interpreter flushes the trace through a
// pipe to the campaign driver (the simulator's stand-in for a core dump) and then raises the
// fault, dying with the contained-SIGSEGV status. Traces are deliberately address-free (op,
// code, one detail byte), so the same attack must produce the *byte-identical* trace on every
// backend (μFork CoPA/CoA/Full, MAS, VM-clone), under eager or demand paging, with the
// compaction service off or on — that is the differential assertion src/attack/differential.h
// drives.
//
// The same op set doubles as the mutation space of the structure-aware fork-server fuzzer
// (src/apps/forkfuzz.h): random programs are encoded to bytes, mutated, and decoded back, so
// crash bucketing keys on (fault kind, faulting op) instead of raw input bytes.
#ifndef UFORK_SRC_ATTACK_ATTACK_H_
#define UFORK_SRC_ATTACK_ATTACK_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/guest/guest.h"

namespace ufork {

// GOT slot the attack interpreter uses for cross-fork state (distinct from the fuzz target's
// slot so the battery and the legacy lookup-table target can coexist in one μprocess).
inline constexpr int kGotSlotAttackState = kGotSlotFirstUser + 3;

// Adversarial primitives. Every op is expressed purely in terms of the attacking μprocess's
// own authority (its DDC-derived allocations, its descriptors, its syscall sentry), so the
// observable outcome is a property of the capability machine — never of another μprocess's
// placement — and therefore identical across backends.
enum class AttackOp : uint8_t {
  // --- capability forgery from raw bytes --------------------------------------------------
  kForgeRawBytes = 0,  // write 16 raw bytes over a cap-aligned slot; reload as capability
  kClobberCapByte,     // store a valid cap, overwrite one byte via a data store, reload
  kDerefForged,        // dereference whatever the previous forge op reloaded (expects a fault)
  // --- bounds-overflow walks off tinyalloc/gvector allocations -----------------------------
  kBoundsLoadHigh,  // load 8 bytes at allocation top + arg (walk off the end)
  kBoundsLoadLow,   // load 8 bytes below allocation base (tinyalloc header read)
  kBoundsStoreHigh, // store 8 bytes at allocation top (write flavour)
  kGvectorEscape,   // gvector data capability walked past size*sizeof(T)
  // --- sealed-capability misuse ------------------------------------------------------------
  kSentryDeref,   // load through the sealed syscall-entry capability
  kSentryRetag,   // WithAddress on the sentry (must untag), then dereference
  kSealNoPerm,    // seal a heap cap with the DDC as sealer (DDC lacks kPermSeal)
  kUnsealWrong,   // unseal the sentry with a non-unsealing authority
  // --- tag laundering through IPC transfer buffers ----------------------------------------
  kPipeLaunder,  // send a granule holding a valid cap through a pipe, reload at receiver
  kMqLaunder,    // same through a message queue
  kVfsLaunder,   // same through a ramdisk file (write + read back)
  kForkLaunder,  // forked child pipes its own cap's bytes back to the attack parent
  kShmStoreCap,  // store a capability through a MAP_SHARED window (perm must refuse)
  // --- misc adversarial probes -------------------------------------------------------------
  kGotOutOfRange,  // GOT access past the table (errno, not a fault)
  kUafStash,       // dereference a stashed capability into a freed region (μFork UAF campaign;
                   //   the differential harness plants the region base, see differential.h)
  kNumOps,
};

inline constexpr size_t kNumAttackOps = static_cast<size_t>(AttackOp::kNumOps);

const char* AttackOpName(AttackOp op);

struct AttackStep {
  AttackOp op = AttackOp::kBoundsLoadHigh;
  uint8_t arg = 0;  // op-specific operand (offset scale, byte index, slot, ...)
};

using AttackProgram = std::vector<AttackStep>;

// One executed step: which op ran, what code it observed, and one op-specific detail byte
// (e.g. the reloaded capability's tag bit for forge/launder ops). Address-free by design.
struct StepOutcome {
  uint8_t op = 0;
  int32_t code = 0;  // static_cast<int32_t>(Code)
  uint8_t detail = 0;
};

inline constexpr uint32_t kNoFatalStep = 0xFFFFFFFFu;

struct AttackTrace {
  std::vector<StepOutcome> steps;
  uint32_t fatal_step = kNoFatalStep;  // index of the step whose fault killed the program
  Code fatal_code = Code::kOk;

  bool fatal() const { return fatal_step != kNoFatalStep; }
  // Flat byte encoding (the wire format the attack child pipes to the campaign driver).
  std::vector<std::byte> Encode() const;
  static AttackTrace Decode(std::span<const std::byte> bytes);
};

// --- program wire format (fuzzer input space) -----------------------------------------------

// Two bytes per step: [op, arg]. Unknown opcodes decode modulo kNumOps, so *any* byte string
// is a valid program — the property structure-aware fuzzing needs.
std::vector<std::byte> EncodeAttackProgram(const AttackProgram& program);
AttackProgram DecodeAttackProgram(std::span<const std::byte> bytes);

// --- interpreter -----------------------------------------------------------------------------
//
// Executes `program` step by step as the calling guest. Capability/translation faults
// (Code::kFault*) are fatal: execution stops, fatal_step/fatal_code are set, and the caller is
// expected to flush the trace and then raise the fault (RunAttackChild does exactly that).
// POSIX errno codes (Code::kErr*) are recorded and execution continues — a syscall refusing is
// an outcome, not a crash. `uaf_target_va` parameterizes kUafStash (0 disables the op: it
// records kErrInval).
SimTask<AttackTrace> ExecuteAttackProgram(Guest& guest, AttackProgram program,
                                          uint64_t uaf_target_va = 0);

// Runs `program` to completion in the calling (forked) μprocess, writes the encoded trace to
// `trace_fd`, and exits: RaiseFault (-> contained SIGSEGV, status 139) if a step faulted,
// Exit(0) otherwise. This is the body of every battery child and every fuzz case.
SimTask<void> RunAttackChild(Guest& guest, AttackProgram program, int trace_fd,
                             uint64_t uaf_target_va = 0);

// --- the canonical battery -------------------------------------------------------------------

enum class AttackClass : uint8_t { kForgery, kBounds, kSealed, kTagLaunder, kUaf, kMisc };

const char* AttackClassName(AttackClass cls);

struct BatteryAttack {
  std::string name;
  AttackClass cls = AttackClass::kMisc;
  AttackProgram program;
  // The fault the attack must die of (Code::kOk for errno-only attacks that exit cleanly).
  Code expected_fatal = Code::kOk;
};

// The fixed attack battery: every class, deterministic programs, backend-independent traces.
// kUafStash is deliberately absent — region-level UAF depends on quarantine configuration and
// runs through the dedicated differential campaign (differential.h).
const std::vector<BatteryAttack>& AttackBattery();

}  // namespace ufork

#endif  // UFORK_SRC_ATTACK_ATTACK_H_
