#include "src/base/stat_counter.h"

namespace ufork {

std::atomic<uint32_t> StatCounter::concurrent_holders_{0};

}  // namespace ufork
