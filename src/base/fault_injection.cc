#include "src/base/fault_injection.h"

#include <charconv>

namespace ufork {

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kFrameAlloc:
      return "frame-alloc";
    case FaultSite::kFrameBatch:
      return "frame-batch";
    case FaultSite::kRegionGrant:
      return "region-grant";
    case FaultSite::kCompactTarget:
      return "compact-target";
    case FaultSite::kCompactRelocate:
      return "compact-relocate";
    case FaultSite::kPipeReserve:
      return "pipe-reserve";
    case FaultSite::kPipeGrow:
      return "pipe-grow";
    case FaultSite::kMqReserve:
      return "mq-reserve";
    case FaultSite::kMqGrow:
      return "mq-grow";
    case FaultSite::kVfsGrow:
      return "vfs-grow";
    case FaultSite::kPageCacheFill:
      return "page-cache-fill";
    case FaultSite::kLazyFillAlloc:
      return "lazy-fill-alloc";
    case FaultSite::kCompactStep:
      return "compact-step";
    case FaultSite::kRevokeSweep:
      return "revoke-sweep";
    case FaultSite::kNumSites:
      break;
  }
  return "?";
}

Result<FaultPolicy> FaultPolicy::Parse(std::string_view spec) {
  if (spec == "oneshot") {
    return OneShot();
  }
  const size_t eq = spec.find('=');
  if (eq == std::string_view::npos) {
    return Error{Code::kErrInval, "fault policy: expected nth=K, after=N, prob=P or oneshot"};
  }
  const std::string_view key = spec.substr(0, eq);
  const std::string_view value = spec.substr(eq + 1);
  const char* const first = value.data();
  const char* const last = value.data() + value.size();
  if (key == "nth" || key == "after") {
    uint64_t n = 0;
    const auto [ptr, ec] = std::from_chars(first, last, n);
    if (ec != std::errc() || ptr != last) {
      return Error{Code::kErrInval, "fault policy: bad count"};
    }
    if (key == "nth" && n == 0) {
      return Error{Code::kErrInval, "fault policy: nth is 1-based"};
    }
    return key == "nth" ? Nth(n) : AfterBudget(n);
  }
  if (key == "prob") {
    double p = 0.0;
    const auto [ptr, ec] = std::from_chars(first, last, p);
    if (ec != std::errc() || ptr != last || p < 0.0 || p > 1.0) {
      return Error{Code::kErrInval, "fault policy: probability must be in [0, 1]"};
    }
    return Probabilistic(p);
  }
  return Error{Code::kErrInval, "fault policy: unknown key"};
}

void FaultInjector::Arm(FaultSite site, FaultPolicy policy, uint64_t seed) {
  std::lock_guard<std::mutex> lk(mu_);
  Slot& slot = SlotOf(site);
  if (!slot.armed) {
    ++armed_count_;
  }
  slot.armed = true;
  slot.policy = policy;
  slot.hits = 0;
  slot.failures = 0;
  if (policy.kind == FaultPolicy::Kind::kProbabilistic) {
    // Independent stream per site: a single master seed replays every site's schedule.
    slot.rng.emplace(seed ^ (0x9E3779B97F4A7C15ULL * (static_cast<uint64_t>(site) + 1)));
  } else {
    slot.rng.reset();
  }
}

void FaultInjector::ArmAll(FaultPolicy policy, uint64_t seed) {
  for (size_t i = 0; i < kNumFaultSites; ++i) {
    Arm(static_cast<FaultSite>(i), policy, seed);
  }
}

void FaultInjector::Disarm(FaultSite site) {
  std::lock_guard<std::mutex> lk(mu_);
  DisarmLocked(site);
}

void FaultInjector::DisarmLocked(FaultSite site) {
  Slot& slot = SlotOf(site);
  if (slot.armed) {
    --armed_count_;
  }
  slot.armed = false;
  slot.rng.reset();
}

void FaultInjector::DisarmAll() {
  for (size_t i = 0; i < kNumFaultSites; ++i) {
    Disarm(static_cast<FaultSite>(i));
  }
}

uint64_t FaultInjector::total_failures() const {
  uint64_t total = 0;
  for (const Slot& slot : slots_) {
    total += slot.failures;
  }
  return total;
}

bool FaultInjector::ShouldFailSlow(FaultSite site) {
  Slot& slot = SlotOf(site);
  if (!slot.armed) {
    return false;
  }
  ++slot.hits;
  bool fail = false;
  switch (slot.policy.kind) {
    case FaultPolicy::Kind::kNth:
      fail = slot.hits == slot.policy.n;
      break;
    case FaultPolicy::Kind::kAfterBudget:
      fail = slot.hits > slot.policy.n;
      break;
    case FaultPolicy::Kind::kProbabilistic:
      fail = slot.rng->NextDouble() < slot.policy.p;
      break;
    case FaultPolicy::Kind::kOneShot:
      fail = true;
      DisarmLocked(site);
      ++slot.failures;  // Disarm cleared armed, not the counters; count before returning
      return true;
  }
  if (fail) {
    ++slot.failures;
  }
  return fail;
}

}  // namespace ufork
