// Deterministic fault injection for the resource layers.
//
// μFork's robustness claim is that a mid-operation resource failure — a frame allocation
// failing halfway through a fork, a region grant failing during compaction — is contained to
// one μprocess and fully rolled back. Those paths are unreachable under normal test loads
// (physical memory is sized generously), so this registry makes them reachable *on demand and
// deterministically*: named injection sites in the allocators and IPC buffers consult an armed
// policy, and every failure schedule is replayable from a (site, policy, seed) triple.
//
// Policy grammar (DESIGN.md §4.9): a site is armed with one of
//   nth=K      fail exactly the K-th hit (1-based), succeed before and after
//   after=N    budget: the first N hits succeed, every later hit fails
//   prob=P     each hit fails with probability P, drawn from a per-site Rng seeded with
//              splitmix64(seed ^ site) — one master seed yields independent per-site streams
//   oneshot    fail the next hit, then disarm
//
// Hot-path contract: ShouldFail() with nothing armed is a single load-and-branch on
// `armed_count_` and never charges virtual cycles, so compiling the registry in leaves the
// golden cycle pins bit-identical (regression-tested in tests/golden_cycles_test.cc).
#ifndef UFORK_SRC_BASE_FAULT_INJECTION_H_
#define UFORK_SRC_BASE_FAULT_INJECTION_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string_view>

#include "src/base/rng.h"
#include "src/base/status.h"

namespace ufork {

// Named injection sites, one per fallible resource acquisition the kernel performs. Sites are
// identified by enumerator (stable across runs), never by address.
enum class FaultSite : uint32_t {
  kFrameAlloc = 0,   // FrameAllocator::AllocateInternal — every single-frame allocation
  kFrameBatch,       // FrameAllocator::AllocateForCopy(span) — batch entry (fault-around)
  kRegionGrant,      // AddressSpace::AllocateRegion — fork/spawn region reservation
  kCompactTarget,    // AddressSpace::AllocateRegionAt — compaction target placement
  kCompactRelocate,  // per-page capability relocation during a compaction move
  kPipeReserve,      // pipe(2) ring-buffer reservation
  kPipeGrow,         // per-chunk pipe buffer commit inside write
  kMqReserve,        // mq_open queue creation
  kMqGrow,           // per-chunk mqueue message-buffer growth inside send
  kVfsGrow,          // per-block ramdisk inode growth inside write
  kPageCacheFill,    // PageCache::GetFrame read-through fill (frame for a file page)
  kLazyFillAlloc,    // demand-fill frame allocation at fault time (zero-fill window entry)
  kCompactStep,      // CompactionService quantum entry — a hit cancels the in-flight move
  kRevokeSweep,      // revocation sweep quantum — a hit defers the scan, quarantine intact
  kNumSites,
};

inline constexpr size_t kNumFaultSites = static_cast<size_t>(FaultSite::kNumSites);

const char* FaultSiteName(FaultSite site);

struct FaultPolicy {
  enum class Kind { kNth, kAfterBudget, kProbabilistic, kOneShot };

  Kind kind = Kind::kOneShot;
  uint64_t n = 0;   // kNth: the failing hit (1-based); kAfterBudget: hits that succeed
  double p = 0.0;   // kProbabilistic: per-hit failure probability

  static FaultPolicy Nth(uint64_t nth) { return {Kind::kNth, nth, 0.0}; }
  static FaultPolicy AfterBudget(uint64_t budget) { return {Kind::kAfterBudget, budget, 0.0}; }
  static FaultPolicy Probabilistic(double probability) {
    return {Kind::kProbabilistic, 0, probability};
  }
  static FaultPolicy OneShot() { return {Kind::kOneShot, 0, 0.0}; }

  // Parses the policy grammar above ("nth=3", "after=10", "prob=0.05", "oneshot").
  static Result<FaultPolicy> Parse(std::string_view spec);
};

class FaultInjector {
 public:
  FaultInjector() = default;

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Arms `site` with `policy`. `seed` matters only for probabilistic policies; the per-site
  // stream is Rng(splitmix-style mix of seed and site) so one master seed replays everywhere.
  void Arm(FaultSite site, FaultPolicy policy, uint64_t seed = 0);
  // Arms every site with the same policy/seed (chaos soak).
  void ArmAll(FaultPolicy policy, uint64_t seed = 0);
  void Disarm(FaultSite site);
  void DisarmAll();

  bool armed(FaultSite site) const { return SlotOf(site).armed; }
  bool any_armed() const { return armed_count_.load(std::memory_order_relaxed) > 0; }

  // The injection hook. With nothing armed this is one relaxed load and branch; armed sites
  // count the hit and evaluate the policy under mu_ (shard workers share the injector, and a
  // chaos soak must count every hit exactly once — DESIGN.md §4.11). Never charges virtual
  // cycles. NOTE: with sites armed at shards>1, hit ORDER across shards follows host timing,
  // so nth=K selects a host-timing-dependent victim; per-shard failure TOTALS under after=/
  // prob= remain policy-driven.
  bool ShouldFail(FaultSite site) {
    if (armed_count_.load(std::memory_order_relaxed) == 0) [[likely]] {
      return false;
    }
    std::lock_guard<std::mutex> lk(mu_);
    return ShouldFailSlow(site);
  }

  // Observability (tests assert on these; the chaos soak logs them per seed).
  uint64_t hits(FaultSite site) const { return SlotOf(site).hits; }
  uint64_t failures(FaultSite site) const { return SlotOf(site).failures; }
  uint64_t total_failures() const;

 private:
  struct Slot {
    bool armed = false;
    FaultPolicy policy;
    std::optional<Rng> rng;  // probabilistic policies only
    uint64_t hits = 0;       // counted only while armed
    uint64_t failures = 0;
  };

  Slot& SlotOf(FaultSite site) { return slots_[static_cast<size_t>(site)]; }
  const Slot& SlotOf(FaultSite site) const { return slots_[static_cast<size_t>(site)]; }

  bool ShouldFailSlow(FaultSite site);  // caller holds mu_
  void DisarmLocked(FaultSite site);    // caller holds mu_

  std::array<Slot, kNumFaultSites> slots_{};
  std::atomic<uint32_t> armed_count_{0};
  std::mutex mu_;  // guards slots_ when any site is armed
};

}  // namespace ufork

#endif  // UFORK_SRC_BASE_FAULT_INJECTION_H_
