#include "src/base/log.h"

#include <cstdio>

namespace ufork {
namespace {

LogLevel g_level = LogLevel::kWarning;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kNone:
      return "?";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
}

}  // namespace internal
}  // namespace ufork
