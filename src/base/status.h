// Error codes and a lightweight Result<T> (std::expected is not available on this toolchain's
// standard library level, so we carry a minimal equivalent).
//
// The simulator distinguishes two failure planes:
//   * Host-level invariant violations -> UF_CHECK (abort), never Result.
//   * Guest-visible failures (capability faults, page faults, POSIX errno-style errors) ->
//     Result<T> carrying an Error. Faults that the kernel can resolve (CoW / CoPA copies) are
//     consumed inside the memory engine and never reach callers.
#ifndef UFORK_SRC_BASE_STATUS_H_
#define UFORK_SRC_BASE_STATUS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <variant>

#include "src/base/check.h"

namespace ufork {

// Guest-visible error codes. The kFault* group models hardware exception classes raised by the
// capability machine; the kErr* group models POSIX errno values returned by syscalls.
enum class Code : int32_t {
  kOk = 0,

  // Capability (CHERI) fault classes, cf. CHERI ISAv9 exception causes.
  kFaultTag,         // operating through an untagged (invalid) capability
  kFaultSeal,        // operating through a sealed capability / wrong otype on unseal
  kFaultBounds,      // access outside [base, top)
  kFaultPermission,  // missing Load/Store/Execute/LoadCap/StoreCap/... permission
  kFaultSystem,      // privileged (MSR/MRS-class) operation without the System permission
  kFaultAlignment,   // capability-width access not 16-byte aligned

  // Page / translation fault classes.
  kFaultNotMapped,    // no PTE for the page
  kFaultPageProt,     // PTE permission violation (e.g. write to read-only, CoW candidate)
  kFaultCapLoadPage,  // capability load through a PTE with the load-cap-fault attribute (CoPA)
  kFaultNotPresent,   // reserved-but-unpopulated PTE (demand paging); resolvable by a fill

  // POSIX-style syscall errors.
  kErrInval,
  kErrNoMem,
  kErrNoEnt,
  kErrBadFd,
  kErrAgain,
  kErrChild,   // ECHILD: wait() with no children
  kErrPipe,    // EPIPE: write to pipe with no readers
  kErrExist,
  kErrAccess,  // EACCES: isolation policy rejected the operation
  kErrSrch,    // ESRCH: no such process
  kErrMfile,   // EMFILE: fd table full
  kErrNoSpc,   // ENOSPC: address space / ramdisk exhausted
  kErrNoSys,   // ENOSYS
};

const char* CodeName(Code code);

struct Error {
  Code code = Code::kOk;
  std::string message;
};

// Minimal expected-like result type. Construction from T is implicit (values flow through);
// construction from Error/Code is implicit as well so `return Code::kErrInval;` works.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Error error) : rep_(std::move(error)) {  // NOLINT(google-explicit-constructor)
    UF_DCHECK(std::get<Error>(rep_).code != Code::kOk);
  }
  Result(Code code) : Result(Error{code, {}}) {}  // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(rep_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    UF_CHECK_MSG(ok(), "Result::value() on error");
    return std::get<T>(rep_);
  }
  T& value() & {
    UF_CHECK_MSG(ok(), "Result::value() on error");
    return std::get<T>(rep_);
  }
  T&& value() && {
    UF_CHECK_MSG(ok(), "Result::value() on error");
    return std::get<T>(std::move(rep_));
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  const Error& error() const {
    UF_CHECK_MSG(!ok(), "Result::error() on value");
    return std::get<Error>(rep_);
  }
  Code code() const { return ok() ? Code::kOk : error().code; }

 private:
  std::variant<T, Error> rep_;
};

template <>
class [[nodiscard]] Result<void> {
 public:
  Result() = default;
  Result(Error error) : error_(std::move(error)) {  // NOLINT(google-explicit-constructor)
    UF_DCHECK(error_.code != Code::kOk);
  }
  Result(Code code) : Result(Error{code, {}}) {}  // NOLINT(google-explicit-constructor)

  bool ok() const { return error_.code == Code::kOk; }
  explicit operator bool() const { return ok(); }
  const Error& error() const {
    UF_CHECK_MSG(!ok(), "Result::error() on value");
    return error_;
  }
  Code code() const { return error_.code; }

 private:
  Error error_;
};

inline Result<void> OkResult() { return Result<void>(); }

// Propagates an error from an expression producing a Result. Usage:
//   UF_RETURN_IF_ERROR(machine.Store(cap, addr, data));
#define UF_RETURN_IF_ERROR(expr)            \
  do {                                      \
    auto uf_result_ = (expr);               \
    if (!uf_result_.ok()) [[unlikely]] {    \
      return uf_result_.error();            \
    }                                       \
  } while (0)

// Assigns the value of a Result-producing expression or propagates its error. Usage:
//   UF_ASSIGN_OR_RETURN(uint64_t v, machine.LoadU64(cap, addr));
#define UF_ASSIGN_OR_RETURN(decl, expr)                    \
  UF_ASSIGN_OR_RETURN_IMPL_(UF_CONCAT_(uf_res_, __LINE__), decl, expr)
#define UF_ASSIGN_OR_RETURN_IMPL_(tmp, decl, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) [[unlikely]] {                    \
    return tmp.error();                            \
  }                                                \
  decl = std::move(tmp).value()
#define UF_CONCAT_(a, b) UF_CONCAT_IMPL_(a, b)
#define UF_CONCAT_IMPL_(a, b) a##b

// Coroutine flavours: identical semantics, but propagate with co_return.
#define UF_CO_RETURN_IF_ERROR(expr)         \
  do {                                      \
    auto uf_result_ = (expr);               \
    if (!uf_result_.ok()) [[unlikely]] {    \
      co_return uf_result_.error();         \
    }                                       \
  } while (0)

#define UF_CO_ASSIGN_OR_RETURN(decl, expr) \
  UF_CO_ASSIGN_OR_RETURN_IMPL_(UF_CONCAT_(uf_res_, __LINE__), decl, expr)
#define UF_CO_ASSIGN_OR_RETURN_IMPL_(tmp, decl, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) [[unlikely]] {                       \
    co_return tmp.error();                            \
  }                                                   \
  decl = std::move(tmp).value()

}  // namespace ufork

#endif  // UFORK_SRC_BASE_STATUS_H_
