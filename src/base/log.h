// Leveled stream logging. Disabled levels compile to a no-op ostream sink with negligible cost.
//
//   UF_LOG(kInfo) << "booted kernel with " << cores << " cores";
//
// The default level is kWarning so tests and benchmarks stay quiet; examples raise it.
#ifndef UFORK_SRC_BASE_LOG_H_
#define UFORK_SRC_BASE_LOG_H_

#include <sstream>
#include <string>

namespace ufork {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kNone = 4,
};

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace ufork

#define UF_LOG(level)                                               \
  if (::ufork::LogLevel::level < ::ufork::GetLogLevel()) {          \
  } else                                                            \
    ::ufork::internal::LogMessage(::ufork::LogLevel::level, __FILE__, __LINE__).stream()

#endif  // UFORK_SRC_BASE_LOG_H_
