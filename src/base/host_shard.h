// Host-shard execution context (DESIGN.md §4.11).
//
// When the scheduler runs sharded, each shard's worker thread publishes its shard index here
// so lower layers (notably the FrameAllocator's per-shard free-list caches) can pick the
// right shard-local structure without a dependency on the scheduler layer. The coordinator
// and the boot path read -1 and fall back to the global (locked) structures.
#ifndef UFORK_SRC_BASE_HOST_SHARD_H_
#define UFORK_SRC_BASE_HOST_SHARD_H_

namespace ufork {

// >= 0: index of the shard whose worker thread is executing (inside Scheduler::Run).
// -1: coordinator, boot, or any thread outside a sharded run.
extern thread_local int tls_host_shard;

}  // namespace ufork

#endif  // UFORK_SRC_BASE_HOST_SHARD_H_
