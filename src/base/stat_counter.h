// StatCounter: a relaxed-atomic uint64 that reads and writes like a plain counter.
//
// Kernel statistics are incremented from concurrent shard workers in sharded-host mode
// (DESIGN.md §4.11); wrapping each field in this type makes every ++/+= a relaxed atomic RMW
// while keeping call sites (and aggregate copies of the stats struct) source-compatible with
// the historical plain-uint64 fields. Relaxed ordering is deliberate: counters are observed
// only at quiescent points (end of run, epoch barriers), never used for synchronization.
//
// Locked RMWs are ~20 cycles even uncontended, and stats sit on the per-syscall hot path.
// A process-wide concurrency refcount (held by each live sharded kernel) therefore gates the
// increment flavor: while no sharded host exists, ++/+= degrade to plain load/store — exactly
// the historical cost — and single-shard golden-cycle runs pay nothing for thread safety.
#ifndef UFORK_SRC_BASE_STAT_COUNTER_H_
#define UFORK_SRC_BASE_STAT_COUNTER_H_

#include <atomic>
#include <cstdint>

namespace ufork {

class StatCounter {
 public:
  constexpr StatCounter() = default;
  constexpr StatCounter(uint64_t v) : v_(v) {}  // NOLINT: implicit by design

  StatCounter(const StatCounter& o) : v_(o.value()) {}
  StatCounter& operator=(const StatCounter& o) {
    v_.store(o.value(), std::memory_order_relaxed);
    return *this;
  }
  StatCounter& operator=(uint64_t v) {
    v_.store(v, std::memory_order_relaxed);
    return *this;
  }

  operator uint64_t() const { return value(); }  // NOLINT: implicit by design
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

  StatCounter& operator++() {
    Add(1);
    return *this;
  }
  uint64_t operator++(int) {
    const uint64_t prev = value();
    Add(1);
    return prev;
  }
  StatCounter& operator+=(uint64_t d) {
    Add(d);
    return *this;
  }
  StatCounter& operator-=(uint64_t d) {
    if (ConcurrentMode()) {
      v_.fetch_sub(d, std::memory_order_relaxed);
    } else {
      v_.store(value() - d, std::memory_order_relaxed);
    }
    return *this;
  }

  // RAII holder for the process-wide concurrency refcount. A sharded kernel owns one for its
  // lifetime; while any holder is alive every StatCounter update is a real atomic RMW.
  class ConcurrentModeHolder {
   public:
    ConcurrentModeHolder() { concurrent_holders_.fetch_add(1, std::memory_order_relaxed); }
    ~ConcurrentModeHolder() { concurrent_holders_.fetch_sub(1, std::memory_order_relaxed); }
    ConcurrentModeHolder(const ConcurrentModeHolder&) = delete;
    ConcurrentModeHolder& operator=(const ConcurrentModeHolder&) = delete;
  };

  static bool ConcurrentMode() {
    return concurrent_holders_.load(std::memory_order_relaxed) > 0;
  }

  // Monotonic high-water update (lock-free max).
  void UpdateMax(uint64_t candidate) {
    uint64_t cur = v_.load(std::memory_order_relaxed);
    while (candidate > cur &&
           !v_.compare_exchange_weak(cur, candidate, std::memory_order_relaxed)) {
    }
  }

 private:
  void Add(uint64_t d) {
    if (ConcurrentMode()) {
      v_.fetch_add(d, std::memory_order_relaxed);
    } else {
      v_.store(value() + d, std::memory_order_relaxed);
    }
  }

  static std::atomic<uint32_t> concurrent_holders_;  // live sharded hosts (stat_counter.cc)

  std::atomic<uint64_t> v_{0};
};

// No operator==(StatCounter, StatCounter): the implicit uint64_t conversion makes the
// built-in integer comparison apply to every mixed and same-type comparison, and a
// user-declared overload would make `counter == 5u` ambiguous.

}  // namespace ufork

#endif  // UFORK_SRC_BASE_STAT_COUNTER_H_
