#include "src/base/host_shard.h"

namespace ufork {

thread_local int tls_host_shard = -1;

}  // namespace ufork
