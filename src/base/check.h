// Assertion macros for invariant checking.
//
// UF_CHECK aborts the process with a diagnostic when the condition is false; it is always
// compiled in, following the kernel-style convention that an invariant violation in the
// simulator is never recoverable. UF_DCHECK compiles to nothing in NDEBUG builds and is used
// on hot paths (per-access checks in the memory engine).
#ifndef UFORK_SRC_BASE_CHECK_H_
#define UFORK_SRC_BASE_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace ufork {

[[noreturn]] void CheckFailed(const char* file, int line, const char* expr, const char* msg);

}  // namespace ufork

#define UF_CHECK(expr)                                           \
  do {                                                           \
    if (!(expr)) [[unlikely]] {                                  \
      ::ufork::CheckFailed(__FILE__, __LINE__, #expr, nullptr);  \
    }                                                            \
  } while (0)

#define UF_CHECK_MSG(expr, msg)                               \
  do {                                                        \
    if (!(expr)) [[unlikely]] {                               \
      ::ufork::CheckFailed(__FILE__, __LINE__, #expr, (msg)); \
    }                                                         \
  } while (0)

#ifdef NDEBUG
#define UF_DCHECK(expr) \
  do {                  \
  } while (0)
#else
#define UF_DCHECK(expr) UF_CHECK(expr)
#endif

#define UF_UNREACHABLE() ::ufork::CheckFailed(__FILE__, __LINE__, "unreachable", nullptr)

#endif  // UFORK_SRC_BASE_CHECK_H_
