// Deterministic pseudo-random number generation (xoshiro256** seeded via splitmix64).
//
// Every stochastic element of the simulation (ASLR placement, workload key choice, request
// inter-arrival jitter) draws from an explicitly seeded Rng so runs are exactly reproducible.
#ifndef UFORK_SRC_BASE_RNG_H_
#define UFORK_SRC_BASE_RNG_H_

#include <array>
#include <cstdint>

#include "src/base/check.h"

namespace ufork {

class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // splitmix64 expansion of the seed into the xoshiro state, as recommended by the authors.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). bound must be nonzero.
  uint64_t NextBelow(uint64_t bound) {
    UF_DCHECK(bound != 0);
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = -bound % bound;
    for (;;) {
      const uint64_t r = NextU64();
      if (r >= threshold) {
        return r % bound;
      }
    }
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(NextU64() >> 11) * 0x1.0p-53; }

  bool NextBool() { return (NextU64() & 1) != 0; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  std::array<uint64_t, 4> state_;
};

}  // namespace ufork

#endif  // UFORK_SRC_BASE_RNG_H_
