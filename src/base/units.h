// Size and virtual-time unit helpers.
//
// All simulator time is expressed in CPU cycles of a 2.5 GHz core (the Morello development
// system evaluated by the paper). Conversions to wall-clock units are only performed when
// reporting results.
#ifndef UFORK_SRC_BASE_UNITS_H_
#define UFORK_SRC_BASE_UNITS_H_

#include <cstdint>

namespace ufork {

inline constexpr uint64_t kKiB = 1024;
inline constexpr uint64_t kMiB = 1024 * kKiB;
inline constexpr uint64_t kGiB = 1024 * kMiB;

// Simulated core frequency: 4× ARMv8.2-A @ 2.5 GHz (Morello SDP, paper §5).
inline constexpr uint64_t kCyclesPerSecond = 2'500'000'000ULL;
inline constexpr double kCyclesPerNanosecond = 2.5;
inline constexpr uint64_t kCyclesPerMicrosecond = 2'500;
inline constexpr uint64_t kCyclesPerMillisecond = 2'500'000;

using Cycles = uint64_t;

constexpr Cycles Microseconds(uint64_t us) { return us * kCyclesPerMicrosecond; }
constexpr Cycles Milliseconds(uint64_t ms) { return ms * kCyclesPerMillisecond; }
constexpr Cycles Seconds(uint64_t s) { return s * kCyclesPerSecond; }

constexpr double ToMicroseconds(Cycles c) {
  return static_cast<double>(c) / static_cast<double>(kCyclesPerMicrosecond);
}
constexpr double ToMilliseconds(Cycles c) {
  return static_cast<double>(c) / static_cast<double>(kCyclesPerMillisecond);
}
constexpr double ToSeconds(Cycles c) {
  return static_cast<double>(c) / static_cast<double>(kCyclesPerSecond);
}

constexpr bool IsPowerOfTwo(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

constexpr uint64_t AlignDown(uint64_t v, uint64_t align) { return v & ~(align - 1); }
constexpr uint64_t AlignUp(uint64_t v, uint64_t align) {
  return (v + align - 1) & ~(align - 1);
}
constexpr bool IsAligned(uint64_t v, uint64_t align) { return (v & (align - 1)) == 0; }

constexpr uint64_t CeilDiv(uint64_t a, uint64_t b) { return (a + b - 1) / b; }

}  // namespace ufork

#endif  // UFORK_SRC_BASE_UNITS_H_
