// Online statistics accumulators used by the benchmark harness (mean / stddev as the paper's
// error bars) and by kernel accounting.
#ifndef UFORK_SRC_BASE_STATS_H_
#define UFORK_SRC_BASE_STATS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace ufork {

// Welford's online algorithm: numerically stable running mean and variance.
class RunningStats {
 public:
  void Add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  uint64_t count() const { return count_; }
  double mean() const { return mean_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double variance() const { return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1); }
  double stddev() const { return std::sqrt(variance()); }

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace ufork

#endif  // UFORK_SRC_BASE_STATS_H_
