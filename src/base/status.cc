#include "src/base/status.h"

namespace ufork {

const char* CodeName(Code code) {
  switch (code) {
    case Code::kOk:
      return "OK";
    case Code::kFaultTag:
      return "FAULT_TAG";
    case Code::kFaultSeal:
      return "FAULT_SEAL";
    case Code::kFaultBounds:
      return "FAULT_BOUNDS";
    case Code::kFaultPermission:
      return "FAULT_PERMISSION";
    case Code::kFaultSystem:
      return "FAULT_SYSTEM";
    case Code::kFaultAlignment:
      return "FAULT_ALIGNMENT";
    case Code::kFaultNotMapped:
      return "FAULT_NOT_MAPPED";
    case Code::kFaultPageProt:
      return "FAULT_PAGE_PROT";
    case Code::kFaultCapLoadPage:
      return "FAULT_CAP_LOAD_PAGE";
    case Code::kFaultNotPresent:
      return "FAULT_NOT_PRESENT";
    case Code::kErrInval:
      return "EINVAL";
    case Code::kErrNoMem:
      return "ENOMEM";
    case Code::kErrNoEnt:
      return "ENOENT";
    case Code::kErrBadFd:
      return "EBADF";
    case Code::kErrAgain:
      return "EAGAIN";
    case Code::kErrChild:
      return "ECHILD";
    case Code::kErrPipe:
      return "EPIPE";
    case Code::kErrExist:
      return "EEXIST";
    case Code::kErrAccess:
      return "EACCES";
    case Code::kErrSrch:
      return "ESRCH";
    case Code::kErrMfile:
      return "EMFILE";
    case Code::kErrNoSpc:
      return "ENOSPC";
    case Code::kErrNoSys:
      return "ENOSYS";
  }
  return "UNKNOWN";
}

}  // namespace ufork
