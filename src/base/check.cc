#include "src/base/check.h"

namespace ufork {

void CheckFailed(const char* file, int line, const char* expr, const char* msg) {
  std::fprintf(stderr, "UF_CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               msg != nullptr ? " — " : "", msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace ufork
