#include "src/mem/frame_allocator.h"

#include <algorithm>

namespace ufork {

FrameAllocator::FrameAllocator(uint64_t max_frames) : max_frames_(max_frames) {}

Result<FrameId> FrameAllocator::Allocate() { return AllocateInternal(/*zero=*/true); }

Result<FrameId> FrameAllocator::AllocateForCopy() { return AllocateInternal(/*zero=*/false); }

Result<void> FrameAllocator::AllocateForCopy(std::span<FrameId> out) {
  if (injector_ != nullptr && injector_->ShouldFail(FaultSite::kFrameBatch)) {
    return Error{Code::kErrNoMem, "out of physical frames (injected batch failure)"};
  }
  for (size_t i = 0; i < out.size(); ++i) {
    auto frame = AllocateInternal(/*zero=*/false);
    if (!frame.ok()) {
      for (size_t j = 0; j < i; ++j) {
        Release(out[j]);
        --total_allocations_;  // the rolled-back batch never happened
      }
      return frame.error();
    }
    out[i] = *frame;
  }
  return OkResult();
}

Result<FrameId> FrameAllocator::AllocateInternal(bool zero) {
  if (injector_ != nullptr && injector_->ShouldFail(FaultSite::kFrameAlloc)) {
    return Error{Code::kErrNoMem, "out of physical frames (injected)"};
  }
  if (!tenant_caps_.empty()) [[unlikely]] {
    auto cap = tenant_caps_.find(current_tenant_);
    if (cap != tenant_caps_.end() && TenantFrames(current_tenant_) >= cap->second) {
      ++tenant_cap_rejections_;
      return Error{Code::kErrNoMem, "tenant " + std::to_string(current_tenant_) +
                                        " frame cap (" + std::to_string(cap->second) +
                                        ") exceeded"};
    }
  }
  FrameId id;
  if (!free_list_.empty()) {
    id = free_list_.back();
    free_list_.pop_back();
  } else {
    if (slots_.size() >= max_frames_) {
      return Error{Code::kErrNoMem, "out of physical frames"};
    }
    id = slots_.size();
    slots_.emplace_back();
  }
  Slot& slot = slots_[id];
  if (slot.frame == nullptr) {
    slot.frame = std::make_unique<Frame>();  // fresh frames are born zeroed and tag-free
  } else if (zero) {
    slot.frame->Reset();
  }
  slot.refcount = 1;
  slot.tenant = current_tenant_;
  ++tenant_frames_[current_tenant_];
  ++frames_in_use_;
  ++total_allocations_;
  peak_frames_ = std::max(peak_frames_, frames_in_use_);
  return id;
}

void FrameAllocator::AddRef(FrameId id) {
  UF_CHECK(IsLive(id));
  ++slots_[id].refcount;
}

void FrameAllocator::Release(FrameId id) {
  UF_CHECK(IsLive(id));
  Slot& slot = slots_[id];
  if (--slot.refcount == 0) {
    --frames_in_use_;
    free_list_.push_back(id);
    auto charged = tenant_frames_.find(slot.tenant);
    UF_DCHECK(charged != tenant_frames_.end() && charged->second > 0);
    --charged->second;
    if (release_hook_) {
      release_hook_();
    }
  }
}

uint32_t FrameAllocator::RefCount(FrameId id) const {
  UF_CHECK(id < slots_.size());
  return slots_[id].refcount;
}

void FrameAllocator::SetTenantCap(TenantId tenant, uint64_t max_frames) {
  UF_CHECK_MSG(tenant != kSystemTenant, "the system tenant cannot be capped");
  if (max_frames == 0) {
    tenant_caps_.erase(tenant);
  } else {
    tenant_caps_[tenant] = max_frames;
  }
}

uint64_t FrameAllocator::TenantFrames(TenantId tenant) const {
  auto it = tenant_frames_.find(tenant);
  return it == tenant_frames_.end() ? 0 : it->second;
}

}  // namespace ufork
