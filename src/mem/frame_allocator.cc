#include "src/mem/frame_allocator.h"

#include <algorithm>

#include "src/base/host_shard.h"

namespace ufork {

thread_local TenantId FrameAllocator::tls_current_tenant_ = kSystemTenant;

FrameAllocator::FrameAllocator(uint64_t max_frames) : max_frames_(max_frames) {}

void FrameAllocator::EnableSharding(int shards) {
  UF_CHECK_MSG(!sharded_, "EnableSharding called twice");
  UF_CHECK(shards >= 1);
  // Pre-size the slot vector once: concurrent allocators index into it without a lock, so it
  // must never reallocate again. Frame storage inside each slot stays lazy.
  fresh_next_ = slots_.size();
  slots_.resize(max_frames_);
  caches_.resize(static_cast<size_t>(shards));
  sharded_ = true;
}

Result<FrameId> FrameAllocator::Allocate() { return AllocateInternal(/*zero=*/true); }

Result<FrameId> FrameAllocator::AllocateForCopy() { return AllocateInternal(/*zero=*/false); }

Result<void> FrameAllocator::AllocateForCopy(std::span<FrameId> out) {
  if (injector_ != nullptr && injector_->ShouldFail(FaultSite::kFrameBatch)) {
    return Error{Code::kErrNoMem, "out of physical frames (injected batch failure)"};
  }
  for (size_t i = 0; i < out.size(); ++i) {
    auto frame = AllocateInternal(/*zero=*/false);
    if (!frame.ok()) {
      for (size_t j = 0; j < i; ++j) {
        Release(out[j]);
        total_allocations_.fetch_sub(1, std::memory_order_relaxed);  // batch never happened
      }
      return frame.error();
    }
    out[i] = *frame;
  }
  return OkResult();
}

Result<FrameId> FrameAllocator::AllocateInternal(bool zero) {
  if (injector_ != nullptr && injector_->ShouldFail(FaultSite::kFrameAlloc)) {
    return Error{Code::kErrNoMem, "out of physical frames (injected)"};
  }
  const TenantId tenant = current_tenant();
  if (caps_active_.load(std::memory_order_relaxed)) [[unlikely]] {
    if (!ChargeTenant(tenant)) {
      tenant_cap_rejections_.fetch_add(1, std::memory_order_relaxed);
      return Error{Code::kErrNoMem,
                   "tenant " + std::to_string(tenant) + " frame cap exceeded"};
    }
  } else if (sharded_) {
    std::lock_guard<std::mutex> lk(tenant_mu_);
    ++tenant_frames_[tenant];
  } else {
    ++tenant_frames_[tenant];  // single host thread: the ledger needs no lock
  }
  auto id_or = TakeFreeId();
  if (!id_or.ok()) {
    UnchargeTenant(tenant);
    return id_or.error();
  }
  const FrameId id = *id_or;
  Slot& slot = slots_[id];
  if (slot.frame == nullptr) {
    slot.frame = std::make_unique<Frame>();  // fresh frames are born zeroed and tag-free
  } else if (zero) {
    slot.frame->Reset();
  }
  slot.tenant = tenant;
  // Publish the slot's contents (frame pointer, tenant) before the refcount flips it live.
  // Unsharded mode has exactly one host thread, so plain load/store (no locked RMW) keeps
  // this hot path at its pre-sharding cost.
  if (sharded_) {
    slot.refcount.store(1, std::memory_order_release);
    const uint64_t in_use = frames_in_use_.fetch_add(1, std::memory_order_relaxed) + 1;
    total_allocations_.fetch_add(1, std::memory_order_relaxed);
    uint64_t peak = peak_frames_.load(std::memory_order_relaxed);
    while (in_use > peak &&
           !peak_frames_.compare_exchange_weak(peak, in_use, std::memory_order_relaxed)) {
    }
  } else {
    slot.refcount.store(1, std::memory_order_relaxed);
    const uint64_t in_use = frames_in_use_.load(std::memory_order_relaxed) + 1;
    frames_in_use_.store(in_use, std::memory_order_relaxed);
    total_allocations_.store(total_allocations_.load(std::memory_order_relaxed) + 1,
                             std::memory_order_relaxed);
    if (in_use > peak_frames_.load(std::memory_order_relaxed)) {
      peak_frames_.store(in_use, std::memory_order_relaxed);
    }
  }
  return id;
}

Result<FrameId> FrameAllocator::TakeFreeId() {
  if (!sharded_) {
    if (!free_list_.empty()) {
      const FrameId id = free_list_.back();
      free_list_.pop_back();
      return id;
    }
    if (slots_.size() >= max_frames_) {
      return Error{Code::kErrNoMem, "out of physical frames"};
    }
    const FrameId id = slots_.size();
    slots_.emplace_back();
    return id;
  }
  const int shard = tls_host_shard;
  if (shard < 0) {
    return TakeFreeIdGlobal();  // coordinator / setup thread: straight to the pool
  }
  auto& cache = caches_[static_cast<size_t>(shard)].free;
  if (cache.empty()) {
    // Refill a batch from the global pool under one lock acquisition.
    std::lock_guard<std::mutex> lk(pool_mu_);
    for (size_t i = 0; i < kRefillBatch; ++i) {
      if (!free_list_.empty()) {
        cache.push_back(free_list_.back());
        free_list_.pop_back();
      } else if (fresh_next_ < max_frames_) {
        cache.push_back(fresh_next_++);
      } else {
        break;
      }
    }
    if (cache.empty()) {
      return Error{Code::kErrNoMem, "out of physical frames"};
    }
  }
  const FrameId id = cache.back();
  cache.pop_back();
  return id;
}

Result<FrameId> FrameAllocator::TakeFreeIdGlobal() {
  std::lock_guard<std::mutex> lk(pool_mu_);
  if (!free_list_.empty()) {
    const FrameId id = free_list_.back();
    free_list_.pop_back();
    return id;
  }
  if (fresh_next_ >= max_frames_) {
    return Error{Code::kErrNoMem, "out of physical frames"};
  }
  return fresh_next_++;
}

void FrameAllocator::GiveFreeId(FrameId id) {
  if (!sharded_) {
    free_list_.push_back(id);
    return;
  }
  const int shard = tls_host_shard;
  if (shard < 0) {
    std::lock_guard<std::mutex> lk(pool_mu_);
    free_list_.push_back(id);
    return;
  }
  auto& cache = caches_[static_cast<size_t>(shard)].free;
  cache.push_back(id);
  if (cache.size() >= kCacheMax) {
    // Flush half back to the pool so a shard that only frees does not hoard the machine.
    std::lock_guard<std::mutex> lk(pool_mu_);
    const size_t keep = kCacheMax / 2;
    free_list_.insert(free_list_.end(), cache.begin() + keep, cache.end());
    cache.resize(keep);
  }
}

void FrameAllocator::AddRef(FrameId id) {
  UF_CHECK(IsLive(id));
  if (sharded_) {
    slots_[id].refcount.fetch_add(1, std::memory_order_relaxed);
  } else {
    Slot& slot = slots_[id];
    slot.refcount.store(slot.refcount.load(std::memory_order_relaxed) + 1,
                        std::memory_order_relaxed);
  }
}

void FrameAllocator::Release(FrameId id) {
  UF_CHECK(id < slots_.size());
  Slot& slot = slots_[id];
  // Release ordering so the next owner (who acquires via RefCount/IsLive) observes every
  // write this sharer made through the frame. Unsharded: one host thread, plain ops.
  uint32_t prev;
  if (sharded_) {
    prev = slot.refcount.fetch_sub(1, std::memory_order_acq_rel);
  } else {
    prev = slot.refcount.load(std::memory_order_relaxed);
    slot.refcount.store(prev - 1, std::memory_order_relaxed);
  }
  UF_CHECK_MSG(prev > 0, "Release on a dead frame");
  if (prev == 1) {
    if (sharded_) {
      frames_in_use_.fetch_sub(1, std::memory_order_relaxed);
    } else {
      frames_in_use_.store(frames_in_use_.load(std::memory_order_relaxed) - 1,
                           std::memory_order_relaxed);
    }
    UnchargeTenant(slot.tenant);
    GiveFreeId(id);
    if (release_hook_) {
      release_hook_();
    }
  }
}

uint32_t FrameAllocator::RefCount(FrameId id) const {
  UF_CHECK(id < slots_.size());
  return slots_[id].refcount.load(std::memory_order_acquire);
}

void FrameAllocator::set_current_tenant(TenantId tenant) {
  if (sharded_) {
    tls_current_tenant_ = tenant;
  } else {
    current_tenant_ = tenant;
  }
}

TenantId FrameAllocator::current_tenant() const {
  return sharded_ ? tls_current_tenant_ : current_tenant_;
}

bool FrameAllocator::ChargeTenant(TenantId tenant) {
  std::unique_lock<std::mutex> lk(tenant_mu_, std::defer_lock);
  if (sharded_) {
    lk.lock();
  }
  auto cap = tenant_caps_.find(tenant);
  uint64_t& charged = tenant_frames_[tenant];
  if (cap != tenant_caps_.end() && charged >= cap->second) {
    return false;
  }
  ++charged;
  return true;
}

void FrameAllocator::UnchargeTenant(TenantId tenant) {
  if (!sharded_) {
    auto charged = tenant_frames_.find(tenant);
    UF_DCHECK(charged != tenant_frames_.end() && charged->second > 0);
    --charged->second;
    return;
  }
  std::lock_guard<std::mutex> lk(tenant_mu_);
  auto charged = tenant_frames_.find(tenant);
  UF_DCHECK(charged != tenant_frames_.end() && charged->second > 0);
  --charged->second;
}

void FrameAllocator::SetTenantCap(TenantId tenant, uint64_t max_frames) {
  UF_CHECK_MSG(tenant != kSystemTenant, "the system tenant cannot be capped");
  std::lock_guard<std::mutex> lk(tenant_mu_);
  if (max_frames == 0) {
    tenant_caps_.erase(tenant);
  } else {
    tenant_caps_[tenant] = max_frames;
  }
  caps_active_.store(!tenant_caps_.empty(), std::memory_order_relaxed);
}

uint64_t FrameAllocator::TenantFrames(TenantId tenant) const {
  std::lock_guard<std::mutex> lk(tenant_mu_);
  auto it = tenant_frames_.find(tenant);
  return it == tenant_frames_.end() ? 0 : it->second;
}

}  // namespace ufork
