// A physical page frame with CHERI tagged memory.
//
// Each frame holds 4 KiB of data plus one validity tag per 16-byte granule (256 tags). For
// tagged granules the authoritative decoded capability is kept in a side table; the raw bytes
// of a tagged granule hold the capability's cursor in the low 8 bytes so integer-view reads
// observe the address, as on real hardware. Any data write overlapping a tagged granule clears
// that granule's tag — the invariant μFork's relocation scan relies on (§4.2): a valid tag
// *proves* the granule holds a pointer.
#ifndef UFORK_SRC_MEM_FRAME_H_
#define UFORK_SRC_MEM_FRAME_H_

#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <map>
#include <span>

#include "src/base/check.h"
#include "src/base/units.h"
#include "src/cheri/capability.h"

namespace ufork {

inline constexpr uint64_t kPageSize = 4 * kKiB;
inline constexpr uint64_t kGranulesPerPage = kPageSize / kCapSize;  // 256

class Frame {
 public:
  Frame() { data_.fill(std::byte{0}); }

  // Raw data access. offset+size must stay within the page. Writes clear the tags of every
  // granule they overlap.
  void Read(uint64_t offset, std::span<std::byte> out) const {
    UF_DCHECK(offset + out.size() <= kPageSize);
    std::memcpy(out.data(), data_.data() + offset, out.size());
  }

  void Write(uint64_t offset, std::span<const std::byte> in) {
    UF_DCHECK(offset + in.size() <= kPageSize);
    std::memcpy(data_.data() + offset, in.data(), in.size());
    ClearTags(offset, in.size());
  }

  void Fill(uint64_t offset, uint64_t size, std::byte value) {
    UF_DCHECK(offset + size <= kPageSize);
    std::memset(data_.data() + offset, static_cast<int>(value), size);
    ClearTags(offset, size);
  }

  // Capability access. offset must be 16-byte aligned (the caller's capability check enforces
  // this for guest accesses; kernel callers assert).
  bool TagAt(uint64_t offset) const {
    UF_DCHECK(IsAligned(offset, kCapSize));
    return (tags_[offset / kCapSize / 64] >> (offset / kCapSize % 64)) & 1;
  }

  // Loads the granule as a capability: the authoritative record if tagged, otherwise the
  // untagged integer view of the raw bytes.
  Capability LoadCap(uint64_t offset) const {
    UF_DCHECK(IsAligned(offset, kCapSize));
    if (TagAt(offset)) {
      auto it = caps_.find(static_cast<uint16_t>(offset / kCapSize));
      UF_CHECK_MSG(it != caps_.end(), "tagged granule without capability record");
      return it->second;
    }
    uint64_t cursor = 0;
    std::memcpy(&cursor, data_.data() + offset, sizeof(cursor));
    return Capability::Integer(cursor);
  }

  // Stores a capability into the granule. A tagged store records the decoded capability and
  // writes its cursor into the low 8 raw bytes (integer view); an untagged store behaves like
  // a 16-byte data write of (cursor, 0).
  void StoreCap(uint64_t offset, const Capability& cap) {
    UF_DCHECK(IsAligned(offset, kCapSize));
    const uint64_t cursor = cap.address();
    std::memcpy(data_.data() + offset, &cursor, sizeof(cursor));
    std::memset(data_.data() + offset + 8, 0, 8);
    const uint16_t granule = static_cast<uint16_t>(offset / kCapSize);
    if (cap.tag()) {
      caps_[granule] = cap;
      tags_[granule / 64] |= 1ULL << (granule % 64);
      has_tags_ = true;
    } else {
      ClearTagAtGranule(granule);
    }
  }

  void ClearTags(uint64_t offset, uint64_t size) {
    if (size == 0 || !has_tags_) {
      return;
    }
    const uint64_t first = offset / kCapSize;
    const uint64_t last = (offset + size - 1) / kCapSize;
    for (uint64_t g = first; g <= last; ++g) {
      ClearTagAtGranule(static_cast<uint16_t>(g));
    }
  }

  void ClearAllTags() {
    tags_.fill(0);
    caps_.clear();
    has_tags_ = false;
  }

  // Copies data *and* tags/capability records from another frame (used by CoW/CoA/CoPA copies;
  // the relocation pass then rewrites the capability records in place).
  void CopyFrom(const Frame& src) {
    data_ = src.data_;
    tags_ = src.tags_;
    caps_ = src.caps_;
    has_tags_ = src.has_tags_;
  }

  uint64_t CountTags() const {
    uint64_t n = 0;
    for (uint64_t word : tags_) {
      n += static_cast<uint64_t>(std::popcount(word));
    }
    return n;
  }

  // Iterates tagged granules, invoking fn(offset, cap&) with a mutable capability record so the
  // relocation scanner can rewrite in place. fn returning a changed cursor updates the raw
  // integer view as well.
  template <typename Fn>
  void ForEachTaggedCap(Fn&& fn) {
    for (auto& [granule, cap] : caps_) {
      const uint64_t offset = static_cast<uint64_t>(granule) * kCapSize;
      fn(offset, cap);
      const uint64_t cursor = cap.address();
      std::memcpy(data_.data() + offset, &cursor, sizeof(cursor));
    }
  }

  const std::byte* raw() const { return data_.data(); }

 private:
  void ClearTagAtGranule(uint16_t granule) {
    const uint64_t mask = 1ULL << (granule % 64);
    if ((tags_[granule / 64] & mask) != 0) {
      tags_[granule / 64] &= ~mask;
      caps_.erase(granule);
    }
  }

  std::array<std::byte, kPageSize> data_;
  std::array<uint64_t, kGranulesPerPage / 64> tags_{};
  // Ordered so ForEachTaggedCap scans in address order like the hardware-assisted 16-byte
  // stride scan described in §4.2.
  std::map<uint16_t, Capability> caps_;
  bool has_tags_ = false;  // fast path: skip tag clearing on frames that never held one
};

}  // namespace ufork

#endif  // UFORK_SRC_MEM_FRAME_H_
