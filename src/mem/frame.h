// A physical page frame with CHERI tagged memory.
//
// Each frame holds 4 KiB of data plus one validity tag per 16-byte granule (256 tags). For
// tagged granules the authoritative decoded capability is kept in a side table; the raw bytes
// of a tagged granule hold the capability's cursor in the low 8 bytes so integer-view reads
// observe the address, as on real hardware. Any data write overlapping a tagged granule clears
// that granule's tag — the invariant μFork's relocation scan relies on (§4.2): a valid tag
// *proves* the granule holds a pointer.
//
// Storage layout (rank-select, mirroring §4.2's hardware-assisted tag scan): the 256-bit tag
// bitmap is the single source of truth, and the capability records live in one contiguous
// array sorted by granule. The record of granule g sits at index rank(g) = number of tag bits
// set below g — a popcount over at most four words, the software analogue of Morello reading a
// cache line's tag bits in one go. Consequences the fork hot path depends on:
//   * CopyFrom is a POD copy of data+bitmap plus one vector assign (no per-node tree copy,
//     and no allocation at all once the destination vector has capacity);
//   * ForEachTaggedCap and ClearTags skip all-zero bitmap words in O(words), so tag-free
//     pages — the overwhelming majority of a real heap — cost four word tests;
//   * iteration order is the address order of the §4.2 16-byte-stride scan by construction.
#ifndef UFORK_SRC_MEM_FRAME_H_
#define UFORK_SRC_MEM_FRAME_H_

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "src/base/check.h"
#include "src/base/units.h"
#include "src/cheri/capability.h"

namespace ufork {

inline constexpr uint64_t kPageSize = 4 * kKiB;
inline constexpr uint64_t kGranulesPerPage = kPageSize / kCapSize;  // 256

// The flat record array is memcpy'd/assigned wholesale by CopyFrom.
static_assert(std::is_trivially_copyable_v<Capability>,
              "Capability must stay trivially copyable for rank-select frame storage");

class Frame {
 public:
  Frame() { data_.fill(std::byte{0}); }

  // Raw data access. offset+size must stay within the page. Writes clear the tags of every
  // granule they overlap.
  void Read(uint64_t offset, std::span<std::byte> out) const {
    UF_DCHECK(offset + out.size() <= kPageSize);
    std::memcpy(out.data(), data_.data() + offset, out.size());
  }

  void Write(uint64_t offset, std::span<const std::byte> in) {
    UF_DCHECK(offset + in.size() <= kPageSize);
    std::memcpy(data_.data() + offset, in.data(), in.size());
    ClearTags(offset, in.size());
  }

  void Fill(uint64_t offset, uint64_t size, std::byte value) {
    UF_DCHECK(offset + size <= kPageSize);
    std::memset(data_.data() + offset, static_cast<int>(value), size);
    ClearTags(offset, size);
  }

  // Capability access. offset must be 16-byte aligned (the caller's capability check enforces
  // this for guest accesses; kernel callers assert).
  bool TagAt(uint64_t offset) const {
    UF_DCHECK(IsAligned(offset, kCapSize));
    return (tags_[offset / kCapSize / 64] >> (offset / kCapSize % 64)) & 1;
  }

  // Loads the granule as a capability: the authoritative record if tagged, otherwise the
  // untagged integer view of the raw bytes.
  Capability LoadCap(uint64_t offset) const {
    UF_DCHECK(IsAligned(offset, kCapSize));
    if (TagAt(offset)) {
      return caps_[Rank(offset / kCapSize)];
    }
    uint64_t cursor = 0;
    std::memcpy(&cursor, data_.data() + offset, sizeof(cursor));
    return Capability::Integer(cursor);
  }

  // Stores a capability into the granule. A tagged store records the decoded capability and
  // writes its cursor into the low 8 raw bytes (integer view); an untagged store behaves like
  // a 16-byte data write of (cursor, 0).
  void StoreCap(uint64_t offset, const Capability& cap) {
    UF_DCHECK(IsAligned(offset, kCapSize));
    const uint64_t cursor = cap.address();
    std::memcpy(data_.data() + offset, &cursor, sizeof(cursor));
    std::memset(data_.data() + offset + 8, 0, 8);
    const uint64_t granule = offset / kCapSize;
    const uint64_t mask = 1ULL << (granule % 64);
    uint64_t& word = tags_[granule / 64];
    if (cap.tag()) {
      const size_t rank = Rank(granule);
      if ((word & mask) != 0) {
        caps_[rank] = cap;
      } else {
        caps_.insert(caps_.begin() + static_cast<ptrdiff_t>(rank), cap);
        word |= mask;
      }
    } else if ((word & mask) != 0) {
      caps_.erase(caps_.begin() + static_cast<ptrdiff_t>(Rank(granule)));
      word &= ~mask;
    }
  }

  void ClearTags(uint64_t offset, uint64_t size) {
    if (size == 0 || caps_.empty()) {
      return;  // tag-free frame: the bitmap is provably all zero (records <-> bits invariant)
    }
    const uint64_t first = offset / kCapSize;
    const uint64_t last = (offset + size - 1) / kCapSize;
    uint64_t cleared = 0;
    for (uint64_t w = first / 64; w <= last / 64; ++w) {
      cleared += static_cast<uint64_t>(std::popcount(tags_[w] & RangeMask(w, first, last)));
    }
    if (cleared == 0) {
      return;
    }
    // A contiguous granule range owns a contiguous slice of the sorted record array.
    const auto lo = caps_.begin() + static_cast<ptrdiff_t>(Rank(first));
    caps_.erase(lo, lo + static_cast<ptrdiff_t>(cleared));
    for (uint64_t w = first / 64; w <= last / 64; ++w) {
      tags_[w] &= ~RangeMask(w, first, last);
    }
  }

  void ClearAllTags() {
    tags_.fill(0);
    caps_.clear();  // keeps capacity: recycled frames stay allocation-free
  }

  // Returns the frame to its boot state (all-zero data, no tags). Allocator reuse path.
  void Reset() {
    data_.fill(std::byte{0});
    ClearAllTags();
  }

  // Copies data *and* tags/capability records from another frame (used by CoW/CoA/CoPA copies;
  // the relocation pass then rewrites the capability records in place). One POD copy plus one
  // vector assign — no allocation when this frame's record array has capacity already.
  void CopyFrom(const Frame& src) {
    data_ = src.data_;
    tags_ = src.tags_;
    caps_ = src.caps_;
  }

  // True iff any granule currently carries a capability record.
  bool HasTags() const { return !caps_.empty(); }

  uint64_t CountTags() const {
    uint64_t n = 0;
    for (uint64_t word : tags_) {
      n += static_cast<uint64_t>(std::popcount(word));
    }
    return n;
  }

  // Iterates tagged granules in address order (§4.2 scan order), invoking fn(offset, cap&)
  // with a mutable capability record so the relocation scanner can rewrite in place. fn
  // returning a changed cursor updates the raw integer view as well. All-zero bitmap words are
  // skipped; set bits are peeled with countr_zero, so cost is O(words + tags). fn must not
  // store or clear tags on this frame.
  template <typename Fn>
  void ForEachTaggedCap(Fn&& fn) {
    size_t rank = 0;
    for (uint64_t w = 0; w < tags_.size(); ++w) {
      uint64_t bits = tags_[w];
      while (bits != 0) {
        const uint64_t granule = w * 64 + static_cast<uint64_t>(std::countr_zero(bits));
        bits &= bits - 1;
        const uint64_t offset = granule * kCapSize;
        Capability& cap = caps_[rank++];
        fn(offset, cap);
        const uint64_t cursor = cap.address();
        std::memcpy(data_.data() + offset, &cursor, sizeof(cursor));
      }
    }
  }

  const std::byte* raw() const { return data_.data(); }

 private:
  // Number of tag bits set below `granule` == index of granule's record in caps_.
  size_t Rank(uint64_t granule) const {
    size_t r = 0;
    for (uint64_t w = 0; w < granule / 64; ++w) {
      r += static_cast<size_t>(std::popcount(tags_[w]));
    }
    return r + static_cast<size_t>(
                   std::popcount(tags_[granule / 64] & ((1ULL << (granule % 64)) - 1)));
  }

  // Bits of bitmap word `word` covering granules in [first, last], clamped to the word. Only
  // meaningful for words overlapping the range.
  static constexpr uint64_t RangeMask(uint64_t word, uint64_t first, uint64_t last) {
    const uint64_t lo = word * 64;
    uint64_t mask = ~0ULL;
    if (first > lo) {
      mask &= ~0ULL << (first - lo);
    }
    if (last < lo + 63) {
      mask &= (1ULL << (last - lo + 1)) - 1;
    }
    return mask;
  }

  std::array<std::byte, kPageSize> data_;
  std::array<uint64_t, kGranulesPerPage / 64> tags_{};
  // Capability records of the tagged granules, sorted by granule; caps_[Rank(g)] belongs to
  // granule g. Invariant: caps_.size() == popcount(tags_) — note a record may itself be an
  // untagged Capability (the relocation scanner strips escaping capabilities in place without
  // touching the granule's tag bit, as the map-based storage did).
  std::vector<Capability> caps_;
};

}  // namespace ufork

#endif  // UFORK_SRC_MEM_FRAME_H_
