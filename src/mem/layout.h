// μprocess region layout (paper Figure 1).
//
// Every μprocess occupies one contiguous region of the single address space with the same
// internal layout, so that a capability found in a child page can be relocated by a pure
// offset translation: offset(parent VA) == offset(child VA).
//
//   +------------------------+  region base
//   | text (code, RX)        |
//   | rodata (RO)            |
//   | GOT (RW, proactively   |   copied + relocated during fork (§3.5)
//   |   copied at fork)      |
//   | data + bss (RW)        |
//   | heap (RW, static size) |   per-μprocess statically allocated heap (§4.2); the first
//   |                        |   pages hold the allocator's metadata, also proactively copied
//   | stack (RW)             |
//   | tls (RW)               |
//   +------------------------+  region base + TotalSize()
#ifndef UFORK_SRC_MEM_LAYOUT_H_
#define UFORK_SRC_MEM_LAYOUT_H_

#include <cstdint>

#include "src/base/units.h"
#include "src/mem/frame.h"

namespace ufork {

struct LayoutConfig {
  uint64_t text_size = 256 * kKiB;
  uint64_t rodata_size = 64 * kKiB;
  uint64_t got_size = 16 * kKiB;
  uint64_t data_size = 64 * kKiB;
  uint64_t heap_size = 4 * kMiB;  // build-time-configurable static heap (§4.2)
  uint64_t stack_size = 256 * kKiB;
  uint64_t tls_size = 16 * kKiB;
  uint64_t mmap_size = 1 * kMiB;  // anonymous-mmap zone, mapped on demand
};

// Segment offsets within a μprocess region. All offsets/sizes are page aligned.
class UprocLayout {
 public:
  explicit UprocLayout(const LayoutConfig& config) {
    uint64_t cursor = 0;
    auto place = [&cursor](uint64_t size) {
      const uint64_t off = cursor;
      cursor += AlignUp(size, kPageSize);
      return off;
    };
    text_off_ = place(config.text_size);
    rodata_off_ = place(config.rodata_size);
    got_off_ = place(config.got_size);
    data_off_ = place(config.data_size);
    heap_off_ = place(config.heap_size);
    stack_off_ = place(config.stack_size);
    tls_off_ = place(config.tls_size);
    mmap_off_ = place(config.mmap_size);
    total_ = cursor;
    config_ = config;
  }

  uint64_t text_off() const { return text_off_; }
  uint64_t text_size() const { return AlignUp(config_.text_size, kPageSize); }
  uint64_t rodata_off() const { return rodata_off_; }
  uint64_t rodata_size() const { return AlignUp(config_.rodata_size, kPageSize); }
  uint64_t got_off() const { return got_off_; }
  uint64_t got_size() const { return AlignUp(config_.got_size, kPageSize); }
  uint64_t data_off() const { return data_off_; }
  uint64_t data_size() const { return AlignUp(config_.data_size, kPageSize); }
  uint64_t heap_off() const { return heap_off_; }
  uint64_t heap_size() const { return AlignUp(config_.heap_size, kPageSize); }
  uint64_t stack_off() const { return stack_off_; }
  uint64_t stack_size() const { return AlignUp(config_.stack_size, kPageSize); }
  uint64_t tls_off() const { return tls_off_; }
  uint64_t tls_size() const { return AlignUp(config_.tls_size, kPageSize); }
  uint64_t mmap_off() const { return mmap_off_; }
  uint64_t mmap_size() const { return AlignUp(config_.mmap_size, kPageSize); }

  uint64_t TotalSize() const { return total_; }
  uint64_t TotalPages() const { return total_ / kPageSize; }

  // Exclusive end offset of the segment containing `offset`. Fault-around windows never cross
  // this boundary: segment permissions (and hence resolved PTE flags) change there.
  uint64_t SegmentEndOf(uint64_t offset) const {
    const uint64_t ends[] = {rodata_off_, got_off_, data_off_, heap_off_,
                             stack_off_,  tls_off_, mmap_off_, total_};
    for (const uint64_t end : ends) {
      if (offset < end) {
        return end;
      }
    }
    return total_;
  }

  // Offsets of the pages that fork copies proactively (GOT + allocator metadata at the start
  // of the heap, §3.5 step 1).
  bool IsProactiveCopyPage(uint64_t offset) const {
    if (offset >= got_off_ && offset < got_off_ + got_size()) {
      return true;
    }
    // First heap page holds the guest allocator's root metadata.
    return offset >= heap_off_ && offset < heap_off_ + kPageSize;
  }

  const LayoutConfig& config() const { return config_; }

 private:
  LayoutConfig config_;
  uint64_t text_off_ = 0;
  uint64_t rodata_off_ = 0;
  uint64_t got_off_ = 0;
  uint64_t data_off_ = 0;
  uint64_t heap_off_ = 0;
  uint64_t stack_off_ = 0;
  uint64_t tls_off_ = 0;
  uint64_t mmap_off_ = 0;
  uint64_t total_ = 0;
};

}  // namespace ufork

#endif  // UFORK_SRC_MEM_LAYOUT_H_
