// Physical frame allocator with reference counting.
//
// Frames are reference counted so that CoW/CoA/CoPA sharing after fork is expressed as
// multiple PTEs mapping one frame. Reference counts also drive the proportional-set-size (PSS)
// residency metric the paper reports (§5.2 "we consider the proportional resident set as the
// memory consumed by a process"). Frame storage is created lazily, so a simulated machine with
// a large physical range costs host memory only for frames actually touched.
#ifndef UFORK_SRC_MEM_FRAME_ALLOCATOR_H_
#define UFORK_SRC_MEM_FRAME_ALLOCATOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "src/base/fault_injection.h"
#include "src/base/status.h"
#include "src/mem/frame.h"

namespace ufork {

using FrameId = uint64_t;
inline constexpr FrameId kInvalidFrame = ~0ULL;

// Frame-accounting tenant (DESIGN.md §4.10). Every allocated frame is charged to the tenant
// that was current at grant time; per-tenant caps turn one tenant's runaway allocation into
// its own ENOMEM instead of fleet-wide exhaustion. Tenant 0 is the kernel/system tenant and
// can never be capped.
using TenantId = uint32_t;
inline constexpr TenantId kSystemTenant = 0;

class FrameAllocator {
 public:
  // max_frames bounds simulated physical memory (frames * 4 KiB).
  explicit FrameAllocator(uint64_t max_frames);

  FrameAllocator(const FrameAllocator&) = delete;
  FrameAllocator& operator=(const FrameAllocator&) = delete;

  // Allocates a zeroed frame with refcount 1.
  Result<FrameId> Allocate();

  // Allocates a frame with UNSPECIFIED contents (refcount 1) for callers that immediately
  // overwrite the whole page (Frame::CopyFrom). Recycled frames skip the redundant re-zero,
  // and their record storage keeps its capacity — the fork/fault copy path allocates nothing
  // in steady state.
  Result<FrameId> AllocateForCopy();

  // Batch form of AllocateForCopy for the fault-around window: fills `out` with fresh
  // unspecified-content frames, or allocates nothing at all (frames already handed out are
  // rolled back) if physical memory cannot cover the whole batch — callers degrade to a
  // single-page window rather than half-resolving one.
  Result<void> AllocateForCopy(std::span<FrameId> out);

  // Increments the sharing count (a new PTE now maps this frame).
  void AddRef(FrameId id);

  // Decrements the sharing count; frees the frame when it drops to zero.
  void Release(FrameId id);

  uint32_t RefCount(FrameId id) const;

  Frame& frame(FrameId id) {
    UF_DCHECK(IsLive(id));
    return *slots_[id].frame;
  }
  const Frame& frame(FrameId id) const {
    UF_DCHECK(IsLive(id));
    return *slots_[id].frame;
  }

  bool IsLive(FrameId id) const {
    return id < slots_.size() && slots_[id].refcount > 0;
  }

  uint64_t frames_in_use() const { return frames_in_use_; }
  uint64_t bytes_in_use() const { return frames_in_use_ * kPageSize; }
  uint64_t peak_frames() const { return peak_frames_; }
  uint64_t total_allocations() const { return total_allocations_; }

  // Watermark inputs (DESIGN.md §4.10): the admission controller keys off the free-frame
  // count, which includes both recycled frames and never-grown slots.
  uint64_t max_frames() const { return max_frames_; }
  uint64_t free_frames() const { return max_frames_ - frames_in_use_; }

  // --- per-tenant charging (DESIGN.md §4.10) ----------------------------------------------------
  //
  // The kernel stamps the current tenant at every kernel entry (SyscallScope) and fault
  // resolution; each grant is charged to that tenant until the frame's last reference drops.
  // AddRef does not re-charge: a CoW-shared frame stays billed to its allocator.

  void set_current_tenant(TenantId tenant) { current_tenant_ = tenant; }
  TenantId current_tenant() const { return current_tenant_; }

  // Caps `tenant` at `max_frames` outstanding frames (0 = remove the cap). Grants beyond the
  // cap fail with kErrNoMem and count in tenant_cap_rejections(). kSystemTenant is uncappable.
  void SetTenantCap(TenantId tenant, uint64_t max_frames);

  uint64_t TenantFrames(TenantId tenant) const;
  bool tenant_caps_active() const { return !tenant_caps_.empty(); }
  uint64_t tenant_cap_rejections() const { return tenant_cap_rejections_; }

  // Invokes fn(tenant, frames) for every tenant with outstanding frames, in tenant order.
  void ForEachTenant(const std::function<void(TenantId, uint64_t)>& fn) const {
    for (const auto& [tenant, frames] : tenant_frames_) {
      if (frames > 0) {
        fn(tenant, frames);
      }
    }
  }

  // Hook invoked after a frame's last reference drops (the frame became free). The overload
  // subsystem uses it to drain the backpressure queue; unset (the default) costs one branch.
  void set_release_hook(std::function<void()> hook) { release_hook_ = std::move(hook); }

  // Invokes fn(id, refcount) for every live frame, in id order. Drives the frame-accounting
  // invariant checker (KernelCore::CheckFrameAccounting).
  void ForEachLive(const std::function<void(FrameId, uint32_t)>& fn) const {
    for (FrameId id = 0; id < slots_.size(); ++id) {
      if (slots_[id].refcount > 0) {
        fn(id, slots_[id].refcount);
      }
    }
  }

  // Deterministic fault injection (FaultSite::kFrameAlloc / kFrameBatch). Null: disabled.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

 private:
  Result<FrameId> AllocateInternal(bool zero);

  struct Slot {
    std::unique_ptr<Frame> frame;
    uint32_t refcount = 0;
    TenantId tenant = kSystemTenant;  // billing owner while the slot is live
  };

  uint64_t max_frames_;
  FaultInjector* injector_ = nullptr;
  std::vector<Slot> slots_;
  std::vector<FrameId> free_list_;
  uint64_t frames_in_use_ = 0;
  uint64_t peak_frames_ = 0;
  uint64_t total_allocations_ = 0;
  TenantId current_tenant_ = kSystemTenant;
  std::map<TenantId, uint64_t> tenant_frames_;  // outstanding frames per tenant
  std::map<TenantId, uint64_t> tenant_caps_;    // grant-time ceilings (absent: uncapped)
  uint64_t tenant_cap_rejections_ = 0;
  std::function<void()> release_hook_;
};

}  // namespace ufork

#endif  // UFORK_SRC_MEM_FRAME_ALLOCATOR_H_
