// Physical frame allocator with reference counting.
//
// Frames are reference counted so that CoW/CoPA sharing after fork is expressed as
// multiple PTEs mapping one frame. Reference counts also drive the proportional-set-size (PSS)
// residency metric the paper reports (§5.2 "we consider the proportional resident set as the
// memory consumed by a process"). Frame storage is created lazily, so a simulated machine with
// a large physical range costs host memory only for frames actually touched.
//
// Sharded-host mode (DESIGN.md §4.11): refcounts are atomics (release on decrement, acquire
// on the last-sharer read, so a CoW claim-in-place observes every write the previous sharer
// made through the frame), and each shard worker allocates from a private free-list cache
// refilled in batches from the global pool under a lock — the classic SMP PMM pattern.
// Frame ids are physical and never guest-visible, so racy batch handouts cannot perturb
// guest-visible state; virtual cycle charges are made by callers and are id-independent.
#ifndef UFORK_SRC_MEM_FRAME_ALLOCATOR_H_
#define UFORK_SRC_MEM_FRAME_ALLOCATOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "src/base/fault_injection.h"
#include "src/base/status.h"
#include "src/mem/frame.h"

namespace ufork {

using FrameId = uint64_t;
inline constexpr FrameId kInvalidFrame = ~0ULL;

// Frame-accounting tenant (DESIGN.md §4.10). Every allocated frame is charged to the tenant
// that was current at grant time; per-tenant caps turn one tenant's runaway allocation into
// its own ENOMEM instead of fleet-wide exhaustion. Tenant 0 is the kernel/system tenant and
// can never be capped.
using TenantId = uint32_t;
inline constexpr TenantId kSystemTenant = 0;

class FrameAllocator {
 public:
  // max_frames bounds simulated physical memory (frames * 4 KiB).
  explicit FrameAllocator(uint64_t max_frames);

  FrameAllocator(const FrameAllocator&) = delete;
  FrameAllocator& operator=(const FrameAllocator&) = delete;

  // Switches to the thread-safe sharded allocation paths: slot storage is pre-sized (no more
  // vector growth), and workers publishing a shard index in tls_host_shard allocate/free via
  // per-shard caches. Must be called before any concurrent use; idempotent per shard count.
  void EnableSharding(int shards);
  bool sharded() const { return sharded_; }

  // Allocates a zeroed frame with refcount 1.
  Result<FrameId> Allocate();

  // Allocates a frame with UNSPECIFIED contents (refcount 1) for callers that immediately
  // overwrite the whole page (Frame::CopyFrom). Recycled frames skip the redundant re-zero,
  // and their record storage keeps its capacity — the fork/fault copy path allocates nothing
  // in steady state.
  Result<FrameId> AllocateForCopy();

  // Batch form of AllocateForCopy for the fault-around window: fills `out` with fresh
  // unspecified-content frames, or allocates nothing at all (frames already handed out are
  // rolled back) if physical memory cannot cover the whole batch — callers degrade to a
  // single-page window rather than half-resolving one.
  Result<void> AllocateForCopy(std::span<FrameId> out);

  // Increments the sharing count (a new PTE now maps this frame).
  void AddRef(FrameId id);

  // Decrements the sharing count; frees the frame when it drops to zero.
  void Release(FrameId id);

  // Acquire-ordered: a reader seeing refcount 1 observes all writes made by sharers that
  // released their reference (the CoW claim-in-place decision relies on this).
  uint32_t RefCount(FrameId id) const;

  Frame& frame(FrameId id) {
    UF_DCHECK(IsLive(id));
    return *slots_[id].frame;
  }
  const Frame& frame(FrameId id) const {
    UF_DCHECK(IsLive(id));
    return *slots_[id].frame;
  }

  bool IsLive(FrameId id) const {
    return id < slots_.size() && slots_[id].refcount.load(std::memory_order_acquire) > 0;
  }

  uint64_t frames_in_use() const { return frames_in_use_.load(std::memory_order_relaxed); }
  uint64_t bytes_in_use() const { return frames_in_use() * kPageSize; }
  uint64_t peak_frames() const { return peak_frames_.load(std::memory_order_relaxed); }
  uint64_t total_allocations() const {
    return total_allocations_.load(std::memory_order_relaxed);
  }

  // Watermark inputs (DESIGN.md §4.10): the admission controller keys off the free-frame
  // count, which includes both recycled frames and never-grown slots. Frames parked in shard
  // caches count as free (refcount 0, reserved for a shard but unused).
  uint64_t max_frames() const { return max_frames_; }
  uint64_t free_frames() const { return max_frames_ - frames_in_use(); }

  // --- per-tenant charging (DESIGN.md §4.10) ----------------------------------------------------
  //
  // The kernel stamps the current tenant at every kernel entry (SyscallScope) and fault
  // resolution; each grant is charged to that tenant until the frame's last reference drops.
  // AddRef does not re-charge: a CoW-shared frame stays billed to its allocator.
  // Sharded mode keeps the current tenant in thread-local storage (each shard worker stamps
  // its own caller) and the per-tenant ledgers under a lock.

  void set_current_tenant(TenantId tenant);
  TenantId current_tenant() const;

  // Caps `tenant` at `max_frames` outstanding frames (0 = remove the cap). Grants beyond the
  // cap fail with kErrNoMem and count in tenant_cap_rejections(). kSystemTenant is uncappable.
  void SetTenantCap(TenantId tenant, uint64_t max_frames);

  uint64_t TenantFrames(TenantId tenant) const;
  bool tenant_caps_active() const { return caps_active_.load(std::memory_order_relaxed); }
  uint64_t tenant_cap_rejections() const {
    return tenant_cap_rejections_.load(std::memory_order_relaxed);
  }

  // Invokes fn(tenant, frames) for every tenant with outstanding frames, in tenant order.
  // Quiescent-only in sharded mode (reports, barriers).
  void ForEachTenant(const std::function<void(TenantId, uint64_t)>& fn) const {
    std::lock_guard<std::mutex> lk(tenant_mu_);
    for (const auto& [tenant, frames] : tenant_frames_) {
      if (frames > 0) {
        fn(tenant, frames);
      }
    }
  }

  // Hook invoked after a frame's last reference drops (the frame became free). The overload
  // subsystem uses it to drain the backpressure queue; unset (the default) costs one branch.
  void set_release_hook(std::function<void()> hook) { release_hook_ = std::move(hook); }

  // Invokes fn(id, refcount) for every live frame, in id order. Drives the frame-accounting
  // invariant checker (KernelCore::CheckFrameAccounting). Quiescent-only in sharded mode.
  void ForEachLive(const std::function<void(FrameId, uint32_t)>& fn) const {
    for (FrameId id = 0; id < slots_.size(); ++id) {
      const uint32_t refs = slots_[id].refcount.load(std::memory_order_relaxed);
      if (refs > 0) {
        fn(id, refs);
      }
    }
  }

  // Deterministic fault injection (FaultSite::kFrameAlloc / kFrameBatch). Null: disabled.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

 private:
  struct Slot {
    std::unique_ptr<Frame> frame;
    std::atomic<uint32_t> refcount{0};
    TenantId tenant = kSystemTenant;  // billing owner while the slot is live

    Slot() = default;
    // Moves happen only while single-threaded (lazy vector growth in unsharded mode; the
    // one-time pre-size in EnableSharding).
    Slot(Slot&& o) noexcept
        : frame(std::move(o.frame)),
          refcount(o.refcount.load(std::memory_order_relaxed)),
          tenant(o.tenant) {}
    Slot& operator=(Slot&& o) noexcept {
      frame = std::move(o.frame);
      refcount.store(o.refcount.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
      tenant = o.tenant;
      return *this;
    }
  };

  // Per-shard free-list cache: owner-thread-only by construction (indexed by tls_host_shard).
  struct alignas(64) ShardCache {
    std::vector<FrameId> free;
  };

  static constexpr size_t kRefillBatch = 32;  // frames pulled from the pool per refill
  static constexpr size_t kCacheMax = 64;     // cache size that triggers a flush to the pool

  Result<FrameId> AllocateInternal(bool zero);
  Result<FrameId> TakeFreeId();           // pops a recycled/fresh id, or kInvalidFrame
  Result<FrameId> TakeFreeIdGlobal();     // pool path (pool_mu_ when sharded)
  void GiveFreeId(FrameId id);
  bool ChargeTenant(TenantId tenant);     // cap check + tentative charge
  void UnchargeTenant(TenantId tenant);

  uint64_t max_frames_;
  FaultInjector* injector_ = nullptr;
  bool sharded_ = false;
  std::vector<Slot> slots_;
  std::mutex pool_mu_;  // sharded mode: guards free_list_ and slot-range growth
  std::vector<FrameId> free_list_;
  std::vector<ShardCache> caches_;
  uint64_t fresh_next_ = 0;  // sharded mode: next never-used slot index (under pool_mu_)
  std::atomic<uint64_t> frames_in_use_{0};
  std::atomic<uint64_t> peak_frames_{0};
  std::atomic<uint64_t> total_allocations_{0};
  TenantId current_tenant_ = kSystemTenant;  // unsharded; sharded uses tls_current_tenant_
  static thread_local TenantId tls_current_tenant_;
  mutable std::mutex tenant_mu_;
  std::map<TenantId, uint64_t> tenant_frames_;  // outstanding frames per tenant
  std::map<TenantId, uint64_t> tenant_caps_;    // grant-time ceilings (absent: uncapped)
  std::atomic<bool> caps_active_{false};
  std::atomic<uint64_t> tenant_cap_rejections_{0};
  std::function<void()> release_hook_;
};

}  // namespace ufork

#endif  // UFORK_SRC_MEM_FRAME_ALLOCATOR_H_
