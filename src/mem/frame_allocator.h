// Physical frame allocator with reference counting.
//
// Frames are reference counted so that CoW/CoA/CoPA sharing after fork is expressed as
// multiple PTEs mapping one frame. Reference counts also drive the proportional-set-size (PSS)
// residency metric the paper reports (§5.2 "we consider the proportional resident set as the
// memory consumed by a process"). Frame storage is created lazily, so a simulated machine with
// a large physical range costs host memory only for frames actually touched.
#ifndef UFORK_SRC_MEM_FRAME_ALLOCATOR_H_
#define UFORK_SRC_MEM_FRAME_ALLOCATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "src/base/fault_injection.h"
#include "src/base/status.h"
#include "src/mem/frame.h"

namespace ufork {

using FrameId = uint64_t;
inline constexpr FrameId kInvalidFrame = ~0ULL;

class FrameAllocator {
 public:
  // max_frames bounds simulated physical memory (frames * 4 KiB).
  explicit FrameAllocator(uint64_t max_frames);

  FrameAllocator(const FrameAllocator&) = delete;
  FrameAllocator& operator=(const FrameAllocator&) = delete;

  // Allocates a zeroed frame with refcount 1.
  Result<FrameId> Allocate();

  // Allocates a frame with UNSPECIFIED contents (refcount 1) for callers that immediately
  // overwrite the whole page (Frame::CopyFrom). Recycled frames skip the redundant re-zero,
  // and their record storage keeps its capacity — the fork/fault copy path allocates nothing
  // in steady state.
  Result<FrameId> AllocateForCopy();

  // Batch form of AllocateForCopy for the fault-around window: fills `out` with fresh
  // unspecified-content frames, or allocates nothing at all (frames already handed out are
  // rolled back) if physical memory cannot cover the whole batch — callers degrade to a
  // single-page window rather than half-resolving one.
  Result<void> AllocateForCopy(std::span<FrameId> out);

  // Increments the sharing count (a new PTE now maps this frame).
  void AddRef(FrameId id);

  // Decrements the sharing count; frees the frame when it drops to zero.
  void Release(FrameId id);

  uint32_t RefCount(FrameId id) const;

  Frame& frame(FrameId id) {
    UF_DCHECK(IsLive(id));
    return *slots_[id].frame;
  }
  const Frame& frame(FrameId id) const {
    UF_DCHECK(IsLive(id));
    return *slots_[id].frame;
  }

  bool IsLive(FrameId id) const {
    return id < slots_.size() && slots_[id].refcount > 0;
  }

  uint64_t frames_in_use() const { return frames_in_use_; }
  uint64_t bytes_in_use() const { return frames_in_use_ * kPageSize; }
  uint64_t peak_frames() const { return peak_frames_; }
  uint64_t total_allocations() const { return total_allocations_; }

  // Invokes fn(id, refcount) for every live frame, in id order. Drives the frame-accounting
  // invariant checker (KernelCore::CheckFrameAccounting).
  void ForEachLive(const std::function<void(FrameId, uint32_t)>& fn) const {
    for (FrameId id = 0; id < slots_.size(); ++id) {
      if (slots_[id].refcount > 0) {
        fn(id, slots_[id].refcount);
      }
    }
  }

  // Deterministic fault injection (FaultSite::kFrameAlloc / kFrameBatch). Null: disabled.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

 private:
  Result<FrameId> AllocateInternal(bool zero);

  struct Slot {
    std::unique_ptr<Frame> frame;
    uint32_t refcount = 0;
  };

  uint64_t max_frames_;
  FaultInjector* injector_ = nullptr;
  std::vector<Slot> slots_;
  std::vector<FrameId> free_list_;
  uint64_t frames_in_use_ = 0;
  uint64_t peak_frames_ = 0;
  uint64_t total_allocations_ = 0;
};

}  // namespace ufork

#endif  // UFORK_SRC_MEM_FRAME_ALLOCATOR_H_
