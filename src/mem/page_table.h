// Four-level radix page table over the 48-bit simulated virtual address space (9+9+9+9 index
// bits, 4 KiB pages), mirroring an ARMv8 stage-1 table.
//
// PTE attribute bits include the two CHERI-specific attributes μFork builds on:
//   * kPteLoadCapFault — "fault on capability load" (Morello CDBM/LC attribute family): a
//     capability-width load with tag set through such a PTE raises kFaultCapLoadPage. This is
//     the hardware hook behind Copy-on-Pointer-Access (paper §4.2).
//   * kPteCow — kernel-software bit marking the frame as shared with a fork partner, so
//     permission faults on this page are resolvable by the fork engine rather than fatal.
//
// A single-address-space kernel owns exactly one PageTable; the multi-address-space baseline
// gives each process its own (same layout, different instances).
#ifndef UFORK_SRC_MEM_PAGE_TABLE_H_
#define UFORK_SRC_MEM_PAGE_TABLE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>

#include "src/base/stat_counter.h"
#include "src/base/status.h"
#include "src/mem/frame_allocator.h"

namespace ufork {

enum PteFlags : uint32_t {
  kPteRead = 1u << 0,
  kPteWrite = 1u << 1,
  kPteExec = 1u << 2,
  kPteLoadCapFault = 1u << 3,  // CoPA: tagged capability loads fault
  kPteCow = 1u << 4,           // shared with fork partner; faults are resolvable
  kPteShared = 1u << 5,        // MAP_SHARED memory: exempt from fork-time CoW
  kPteFaultAround = 1u << 6,   // resolved speculatively by fault-around; cleared on first
                               // access — still set when rescanned means the copy was wasted
  kPteNotPresent = 1u << 7,    // reserved VA, no frame yet: first touch raises a resolvable
                               // demand fault (DESIGN.md §4.12); frame must be kInvalidFrame
  kPteZeroFill = 1u << 8,      // with kPteNotPresent: populate with a zeroed frame on touch
  kPteFileBacked = 1u << 9,    // with kPteNotPresent: populate from the VFS page cache
                               // (the owning μprocess's file-mapping table names the inode)

  kPteRw = kPteRead | kPteWrite,
  kPteRx = kPteRead | kPteExec,
};

struct Pte {
  FrameId frame = kInvalidFrame;
  uint32_t flags = 0;
};

// A PTE slot is *in use* if it holds a frame or a demand-paging reservation; only in-use
// slots are returned by Lookup and visited by ForEachMapped. A slot with kInvalidFrame and
// no kPteNotPresent bit is free (the historical "unmapped" sentinel).
inline bool PteInUse(const Pte& pte) {
  return pte.frame != kInvalidFrame || (pte.flags & kPteNotPresent) != 0;
}
inline bool PtePopulated(const Pte& pte) { return pte.frame != kInvalidFrame; }

class PageTable {
 public:
  PageTable();
  ~PageTable();

  PageTable(const PageTable&) = delete;
  PageTable& operator=(const PageTable&) = delete;

  // Maps the page containing `va` to `frame` with `flags`. The page must not be mapped.
  // Frame refcounting is the caller's responsibility (the VM layer owns that policy).
  // A kInvalidFrame frame is legal iff `flags` carries kPteNotPresent (a reservation).
  void Map(uint64_t va, FrameId frame, uint32_t flags);

  // Unmaps the page containing `va`, returning its frame. The page must be in use; a
  // not-present reservation unmaps to kInvalidFrame (there is no frame to release).
  FrameId Unmap(uint64_t va);

  // Replaces the frame and/or flags of an existing mapping.
  void Remap(uint64_t va, FrameId frame, uint32_t flags);
  void SetFlags(uint64_t va, uint32_t flags);

  // Batch forms used by the fault-around window: page i of the window starting at `va` gets
  // frames[i] (RemapRange) with `flags`, OR-ed with `extra_flags_after_first` for every page
  // except the first (the faulting page is consumed immediately; the trailing pages carry the
  // speculative-resolution marker). Every page in the window must already be mapped.
  void RemapRange(uint64_t va, std::span<const FrameId> frames, uint32_t flags,
                  uint32_t extra_flags_after_first = 0);
  void SetFlagsRange(uint64_t va, uint64_t pages, uint32_t flags,
                     uint32_t extra_flags_after_first = 0);

  std::optional<Pte> Lookup(uint64_t va) const;
  Pte* LookupMutable(uint64_t va);
  bool IsMapped(uint64_t va) const { return Lookup(va).has_value(); }

  // Invokes fn(page_va, pte) for every mapped page in [lo, hi), in address order.
  void ForEachMapped(uint64_t lo, uint64_t hi,
                     const std::function<void(uint64_t, Pte&)>& fn);
  void ForEachMapped(uint64_t lo, uint64_t hi,
                     const std::function<void(uint64_t, const Pte&)>& fn) const;

  uint64_t CountMapped(uint64_t lo, uint64_t hi) const;

  // First page-aligned VA in [lo, hi) starting a run of `pages` free slots (neither populated
  // nor reserved), or nullopt. The free-VA scan behind demand-mode mmap placement — the
  // AdrOS vmm_find_free_area idea adapted to the radix table.
  std::optional<uint64_t> FindUnmappedRun(uint64_t lo, uint64_t hi, uint64_t pages) const;

  // In-use slots: populated frames plus not-present reservations.
  uint64_t mapped_pages() const { return mapped_pages_.value(); }
  // Reservations awaiting their first touch (demand paging); mapped but frame-less.
  uint64_t not_present_pages() const { return not_present_pages_.value(); }
  // Slots actually holding a frame — the table's contribution to resident memory.
  uint64_t resident_pages() const { return mapped_pages() - not_present_pages(); }
  // Number of radix nodes allocated — the "page table memory" a real kernel would spend.
  uint64_t node_count() const { return node_count_.value(); }

 private:
  static constexpr int kLevels = 4;
  static constexpr int kBitsPerLevel = 9;
  static constexpr uint64_t kFanout = 1ULL << kBitsPerLevel;

  struct Table;  // interior node: children tables or leaf PTE array

  static uint64_t IndexAt(uint64_t va, int level) {
    const int shift = 12 + kBitsPerLevel * (kLevels - 1 - level);
    return (va >> shift) & (kFanout - 1);
  }

  Pte* Walk(uint64_t va, bool create);
  const Pte* WalkConst(uint64_t va) const;

  std::unique_ptr<Table> root_;
  // StatCounters: locked RMWs only while a sharded host is live (hot on fork map/unmap).
  StatCounter mapped_pages_{0};
  StatCounter not_present_pages_{0};
  StatCounter node_count_{0};
};

}  // namespace ufork

#endif  // UFORK_SRC_MEM_PAGE_TABLE_H_
