#include "src/mem/address_space.h"

#include <algorithm>

#include "src/base/check.h"
#include "src/mem/frame.h"

namespace ufork {

AddressSpace::AddressSpace(uint64_t lo, uint64_t hi) : lo_(lo), hi_(hi) {
  UF_CHECK(IsAligned(lo, kPageSize) && IsAligned(hi, kPageSize) && lo < hi);
  free_.emplace(lo, hi - lo);
}

void AddressSpace::EnableAslr(uint64_t seed) {
  auto lk = WriteLock();
  aslr_rng_.emplace(seed);
}

Result<uint64_t> AddressSpace::AllocateRegion(uint64_t size, uint64_t align) {
  UF_CHECK(IsPowerOfTwo(align) && align >= kPageSize);
  size = AlignUp(size, kPageSize);
  if (size == 0) {
    return Error{Code::kErrInval, "zero-sized region"};
  }
  if (injector_ != nullptr && injector_->ShouldFail(FaultSite::kRegionGrant)) {
    // POSIX reports address-space exhaustion on fork/spawn/mmap as ENOMEM.
    return Error{Code::kErrNoMem, "address space exhausted (injected)"};
  }
  auto lk = WriteLock();
  for (auto it = free_.begin(); it != free_.end(); ++it) {
    const uint64_t block_base = it->first;
    const uint64_t block_size = it->second;
    const uint64_t aligned = AlignUp(block_base, align);
    if (aligned + size > block_base + block_size || aligned + size < aligned) {
      continue;
    }
    uint64_t base = aligned;
    if (aslr_rng_.has_value()) {
      // Random slide within the block, in units of the alignment.
      const uint64_t max_slide = (block_base + block_size - size - aligned) / align;
      base = aligned + aslr_rng_->NextBelow(max_slide + 1) * align;
    }
    // Split the free block around [base, base+size).
    free_.erase(it);
    if (base > block_base) {
      free_.emplace(block_base, base - block_base);
    }
    if (base + size < block_base + block_size) {
      free_.emplace(base + size, block_base + block_size - (base + size));
    }
    allocated_.emplace(base, size);
    return base;
  }
  return Error{Code::kErrNoSpc, "address space exhausted (fragmentation)"};
}

Result<uint64_t> AddressSpace::AllocateRegionAt(uint64_t base, uint64_t size) {
  size = AlignUp(size, kPageSize);
  if (!IsAligned(base, kPageSize) || size == 0) {
    return Error{Code::kErrInval, "misaligned placement"};
  }
  if (injector_ != nullptr && injector_->ShouldFail(FaultSite::kCompactTarget)) {
    return Error{Code::kErrNoSpc, "target range not free (injected)"};
  }
  auto lk = WriteLock();
  // Find the free block containing [base, base+size).
  auto it = free_.upper_bound(base);
  if (it == free_.begin()) {
    return Error{Code::kErrNoSpc, "target range not free"};
  }
  --it;
  const uint64_t block_base = it->first;
  const uint64_t block_size = it->second;
  if (base < block_base || base + size > block_base + block_size) {
    return Error{Code::kErrNoSpc, "target range not free"};
  }
  free_.erase(it);
  if (base > block_base) {
    free_.emplace(block_base, base - block_base);
  }
  if (base + size < block_base + block_size) {
    free_.emplace(base + size, block_base + block_size - (base + size));
  }
  allocated_.emplace(base, size);
  return base;
}

std::optional<uint64_t> AddressSpace::FirstFitBase(uint64_t size, uint64_t align) const {
  size = AlignUp(size, kPageSize);
  auto lk = ReadLock();
  for (const auto& [block_base, block_size] : free_) {
    const uint64_t aligned = AlignUp(block_base, align);
    if (aligned + size <= block_base + block_size && aligned + size >= aligned) {
      return aligned;
    }
  }
  return std::nullopt;
}

void AddressSpace::FreeRegion(uint64_t base) {
  auto lk = WriteLock();
  auto it = allocated_.find(base);
  UF_CHECK_MSG(it != allocated_.end(), "freeing an unallocated region");
  const uint64_t size = it->second;
  allocated_.erase(it);
  reserve_only_.erase(base);
  InsertFree(base, size);
}

void AddressSpace::QuarantineRegion(uint64_t base) {
  auto lk = WriteLock();
  auto it = allocated_.find(base);
  UF_CHECK_MSG(it != allocated_.end(), "quarantining an unallocated region");
  const uint64_t size = it->second;
  allocated_.erase(it);
  reserve_only_.erase(base);
  quarantined_.emplace(base, QuarantinedRange{base, size, ++quarantine_gen_});
}

std::vector<QuarantinedRange> AddressSpace::QuarantinedRanges() const {
  auto lk = ReadLock();
  std::vector<QuarantinedRange> ranges;
  ranges.reserve(quarantined_.size());
  for (const auto& [base, range] : quarantined_) {
    ranges.push_back(range);
  }
  std::sort(ranges.begin(), ranges.end(),
            [](const QuarantinedRange& a, const QuarantinedRange& b) {
              return a.generation < b.generation;
            });
  return ranges;
}

void AddressSpace::ReleaseQuarantinedUpTo(uint64_t generation) {
  auto lk = WriteLock();
  for (auto it = quarantined_.begin(); it != quarantined_.end();) {
    if (it->second.generation <= generation) {
      InsertFree(it->second.base, it->second.size);
      it = quarantined_.erase(it);
    } else {
      ++it;
    }
  }
}

uint64_t AddressSpace::quarantine_generation() const {
  auto lk = ReadLock();
  return quarantine_gen_;
}

void AddressSpace::MarkReserveOnly(uint64_t base) {
  auto lk = WriteLock();
  UF_CHECK_MSG(allocated_.count(base) != 0, "reserve-only tag on an unallocated region");
  reserve_only_.insert(base);
}

bool AddressSpace::IsReserveOnly(uint64_t base) const {
  auto lk = ReadLock();
  return reserve_only_.count(base) != 0;
}

void AddressSpace::InsertFree(uint64_t base, uint64_t size) {
  // Coalesce with the neighbouring free blocks.
  auto next = free_.lower_bound(base);
  if (next != free_.begin()) {
    auto prev = std::prev(next);
    if (prev->first + prev->second == base) {
      base = prev->first;
      size += prev->second;
      free_.erase(prev);
    }
  }
  if (next != free_.end() && base + size == next->first) {
    size += next->second;
    free_.erase(next);
  }
  free_.emplace(base, size);
}

std::optional<uint64_t> AddressSpace::RegionContaining(uint64_t addr) const {
  auto lk = ReadLock();
  auto it = allocated_.upper_bound(addr);
  if (it == allocated_.begin()) {
    return std::nullopt;
  }
  --it;
  if (addr >= it->first && addr < it->first + it->second) {
    return it->first;
  }
  return std::nullopt;
}

std::optional<std::pair<uint64_t, uint64_t>> AddressSpace::RegionContainingWithSize(
    uint64_t addr) const {
  auto lk = ReadLock();
  auto it = allocated_.upper_bound(addr);
  if (it == allocated_.begin()) {
    return std::nullopt;
  }
  --it;
  if (addr >= it->first && addr < it->first + it->second) {
    return std::make_pair(it->first, it->second);
  }
  return std::nullopt;
}

std::optional<uint64_t> AddressSpace::RegionSize(uint64_t base) const {
  auto lk = ReadLock();
  auto it = allocated_.find(base);
  if (it == allocated_.end()) {
    return std::nullopt;
  }
  return it->second;
}

double AddressSpace::SlotFragmentation(uint64_t slot_bytes) const {
  auto lk = ReadLock();
  if (allocated_.empty() || slot_bytes == 0) {
    return 0.0;
  }
  // Region grants are slot-aligned (kRegionAlign), so per-region slot spans never overlap
  // and the occupied counts sum exactly.
  uint64_t occupied = 0;
  uint64_t hwm_slot = 0;
  for (const auto& [base, size] : allocated_) {
    const uint64_t first = (base - lo_) / slot_bytes;
    const uint64_t last = (base + size - 1 - lo_) / slot_bytes;
    occupied += last - first + 1;
    hwm_slot = std::max(hwm_slot, last);
  }
  return 1.0 - static_cast<double>(occupied) / static_cast<double>(hwm_slot + 1);
}

AddressSpaceStats AddressSpace::Stats() const {
  AddressSpaceStats stats;
  auto lk = ReadLock();
  stats.total_bytes = hi_ - lo_;
  stats.region_count = allocated_.size();
  for (const auto& [base, size] : free_) {
    stats.free_bytes += size;
    stats.largest_free_block = std::max(stats.largest_free_block, size);
  }
  for (const uint64_t base : reserve_only_) {
    auto it = allocated_.find(base);
    if (it != allocated_.end()) {
      stats.reserved_bytes += it->second;
    }
  }
  for (const auto& [base, range] : quarantined_) {
    stats.quarantined_bytes += range.size;
  }
  return stats;
}

}  // namespace ufork
