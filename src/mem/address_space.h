// Single-address-space region allocator.
//
// In a μFork system every μprocess is loaded into one contiguous area of the shared virtual
// address space (paper §3.7): contiguity lets capability bounds confine a μprocess cheaply.
// This allocator hands out those contiguous regions (first fit over a free list), optionally
// randomizing placement (the paper's ASLR note), and tracks the fragmentation statistics the
// paper's §6 "Fragmentation" discussion is about.
#ifndef UFORK_SRC_MEM_ADDRESS_SPACE_H_
#define UFORK_SRC_MEM_ADDRESS_SPACE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <shared_mutex>
#include <utility>
#include <vector>

#include "src/base/fault_injection.h"
#include "src/base/rng.h"
#include "src/base/status.h"
#include "src/base/units.h"

namespace ufork {

struct AddressSpaceStats {
  uint64_t total_bytes = 0;
  uint64_t free_bytes = 0;
  uint64_t largest_free_block = 0;
  uint64_t region_count = 0;
  // Bytes granted reserve-only (demand paging): VA handed out, frames deferred to first
  // touch. Disjoint accounting from free_bytes — these regions ARE allocated.
  uint64_t reserved_bytes = 0;
  // Bytes parked in quarantine awaiting the revocation sweep (DESIGN.md §4.13). Neither free
  // nor allocated: unavailable for reallocation until swept.
  uint64_t quarantined_bytes = 0;
  // External fragmentation in [0,1]: 1 - largest_free_block / free_bytes.
  double ExternalFragmentation() const {
    if (free_bytes == 0) {
      return 0.0;
    }
    return 1.0 - static_cast<double>(largest_free_block) / static_cast<double>(free_bytes);
  }
};

// A freed-or-moved-from range parked until the revocation sweep clears every capability whose
// bounds fall inside it (Cornucopia-style quarantine, DESIGN.md §4.13). Generation stamps give
// the sweeper a cutoff: a pass revokes every range quarantined before the pass began, and
// ranges arriving mid-pass wait for the next one.
struct QuarantinedRange {
  uint64_t base = 0;
  uint64_t size = 0;
  uint64_t generation = 0;
};

class AddressSpace {
 public:
  // Manages [lo, hi). lo/hi must be page aligned.
  AddressSpace(uint64_t lo, uint64_t hi);

  // Allocates a region of `size` bytes aligned to `align` (power of two). With ASLR enabled a
  // random eligible slide inside the chosen free block is applied instead of packing left.
  Result<uint64_t> AllocateRegion(uint64_t size, uint64_t align);

  void FreeRegion(uint64_t base);

  // Moves an allocated region onto the quarantine list instead of the free list. The range is
  // invisible to RegionContaining (relocation scans strip capabilities pointing into it) and
  // unavailable for reallocation until ReleaseQuarantinedUpTo returns it to the free list.
  void QuarantineRegion(uint64_t base);

  // Snapshot of the quarantine list in arrival (generation) order.
  std::vector<QuarantinedRange> QuarantinedRanges() const;

  // Returns every quarantined range with generation <= `generation` to the free list. Called
  // only after a full revocation pass has cleared all capabilities bounded inside them.
  void ReleaseQuarantinedUpTo(uint64_t generation);

  // Generation stamp of the most recently quarantined range (0 if none ever).
  uint64_t quarantine_generation() const;

  // Allocates exactly [base, base+size); fails if the range is not wholly free. Used by the
  // compactor to place regions deterministically.
  Result<uint64_t> AllocateRegionAt(uint64_t base, uint64_t size);

  // Lowest base at which a first-fit allocation of (size, align) would land, without
  // allocating. Ignores ASLR (the compactor packs deterministically).
  std::optional<uint64_t> FirstFitBase(uint64_t size, uint64_t align) const;

  // Demand paging (DESIGN.md §4.12): tags an allocated region as reserve-only — VA granted
  // now, frames deferred to first touch. Pure accounting (AddressSpaceStats::reserved_bytes);
  // the page table owns actual population state. FreeRegion clears the tag; the compactor
  // re-tags the destination when it moves a tagged region.
  void MarkReserveOnly(uint64_t base);
  bool IsReserveOnly(uint64_t base) const;

  // Returns the base of the allocated region containing `addr`, if any. The fork relocation
  // scanner uses this to find which μprocess a stale capability points into (chained forks:
  // a grandchild page may still hold capabilities pointing at the grandparent).
  std::optional<uint64_t> RegionContaining(uint64_t addr) const;
  std::optional<uint64_t> RegionSize(uint64_t base) const;

  // Single-lookup variant returning {base, size}: the relocation scanner resolves the owning
  // region and its extent from one map probe, then memoizes the interval across the page's
  // remaining capabilities.
  std::optional<std::pair<uint64_t, uint64_t>> RegionContainingWithSize(uint64_t addr) const;

  void EnableAslr(uint64_t seed);

  // Arms mu_: until called, all lock acquisitions are skipped (single host thread). Call once,
  // before any shard worker starts, when the owning kernel runs with host_shards > 1.
  void EnableSharding() { sharded_ = true; }

  // Fragmentation over the `slot_bytes`-sized allocation slots spanned by live regions: the
  // fraction of slots at or below the highest allocated region's slot that cover no allocated
  // byte. 0.0 when empty or packed against lo(); rises toward 1.0 as exits punch holes below
  // the high-water region. The compaction trigger's pressure metric: unlike
  // ExternalFragmentation (which the arena's vast untouched tail pins near zero), this only
  // looks at the footprint compaction could actually shrink. Quarantined ranges count as free
  // slots — they are exactly the holes the sweep is about to hand back.
  double SlotFragmentation(uint64_t slot_bytes) const;

  // Deterministic fault injection (FaultSite::kRegionGrant / kCompactTarget). Null: disabled.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

  AddressSpaceStats Stats() const;

  uint64_t lo() const { return lo_; }
  uint64_t hi() const { return hi_; }

 private:
  void InsertFree(uint64_t base, uint64_t size);

  // Locks mu_ shared/exclusive — but only once EnableSharding() armed it. The relocation
  // scanner probes this map once per copied page, so the unsharded path must stay lock-free
  // (a shared_mutex round trip is two locked RMWs, measurable in TaggedPageCopyRelocate).
  std::shared_lock<std::shared_mutex> ReadLock() const {
    std::shared_lock<std::shared_mutex> lk(mu_, std::defer_lock);
    if (sharded_) {
      lk.lock();
    }
    return lk;
  }
  std::unique_lock<std::shared_mutex> WriteLock() const {
    std::unique_lock<std::shared_mutex> lk(mu_, std::defer_lock);
    if (sharded_) {
      lk.lock();
    }
    return lk;
  }

  uint64_t lo_;
  uint64_t hi_;
  FaultInjector* injector_ = nullptr;
  bool sharded_ = false;
  // Sharded hosts grant/free regions from concurrent shard workers (DESIGN.md §4.11): writers
  // take mu_ exclusive, the hot read paths (relocation scans, stats) take it shared. Note the
  // grant ORDER across shards follows host timing, so absolute region bases can vary run to
  // run at shards>1 — the determinism contract covers guest-visible state, which must not be
  // derived from absolute addresses (counts, sizes, and contents all are address-free).
  mutable std::shared_mutex mu_;
  std::map<uint64_t, uint64_t> free_;            // base -> size, coalesced
  std::map<uint64_t, uint64_t> allocated_;       // base -> size
  std::set<uint64_t> reserve_only_;              // bases of demand-reserved regions
  std::map<uint64_t, QuarantinedRange> quarantined_;  // base -> range awaiting revocation
  uint64_t quarantine_gen_ = 0;
  std::optional<Rng> aslr_rng_;
};

}  // namespace ufork

#endif  // UFORK_SRC_MEM_ADDRESS_SPACE_H_
