#include "src/mem/page_table.h"

#include <vector>

#include "src/base/units.h"

namespace ufork {

struct PageTable::Table {
  // Interior levels use children; the leaf level uses ptes. Allocated lazily.
  std::array<std::unique_ptr<Table>, kFanout> children;
  std::unique_ptr<std::array<Pte, kFanout>> ptes;
};

PageTable::PageTable() : root_(std::make_unique<Table>()), node_count_(1) {}
PageTable::~PageTable() = default;

Pte* PageTable::Walk(uint64_t va, bool create) {
  UF_DCHECK(va < kVaTop);
  Table* t = root_.get();
  for (int level = 0; level < kLevels - 1; ++level) {
    auto& child = t->children[IndexAt(va, level)];
    if (child == nullptr) {
      if (!create) {
        return nullptr;
      }
      child = std::make_unique<Table>();
      ++node_count_;
    }
    t = child.get();
  }
  if (t->ptes == nullptr) {
    if (!create) {
      return nullptr;
    }
    t->ptes = std::make_unique<std::array<Pte, kFanout>>();
    ++node_count_;
  }
  return &(*t->ptes)[IndexAt(va, kLevels - 1)];
}

const Pte* PageTable::WalkConst(uint64_t va) const {
  UF_DCHECK(va < kVaTop);
  const Table* t = root_.get();
  for (int level = 0; level < kLevels - 1; ++level) {
    const auto& child = t->children[IndexAt(va, level)];
    if (child == nullptr) {
      return nullptr;
    }
    t = child.get();
  }
  if (t->ptes == nullptr) {
    return nullptr;
  }
  return &(*t->ptes)[IndexAt(va, kLevels - 1)];
}

void PageTable::Map(uint64_t va, FrameId frame, uint32_t flags) {
  Pte* pte = Walk(va, /*create=*/true);
  UF_CHECK_MSG(pte->frame == kInvalidFrame, "mapping an already mapped page");
  UF_CHECK(frame != kInvalidFrame);
  pte->frame = frame;
  pte->flags = flags;
  ++mapped_pages_;
}

FrameId PageTable::Unmap(uint64_t va) {
  Pte* pte = Walk(va, /*create=*/false);
  UF_CHECK_MSG(pte != nullptr && pte->frame != kInvalidFrame, "unmapping an unmapped page");
  const FrameId frame = pte->frame;
  pte->frame = kInvalidFrame;
  pte->flags = 0;
  --mapped_pages_;
  return frame;
}

void PageTable::Remap(uint64_t va, FrameId frame, uint32_t flags) {
  Pte* pte = Walk(va, /*create=*/false);
  UF_CHECK_MSG(pte != nullptr && pte->frame != kInvalidFrame, "remapping an unmapped page");
  pte->frame = frame;
  pte->flags = flags;
}

void PageTable::SetFlags(uint64_t va, uint32_t flags) {
  Pte* pte = Walk(va, /*create=*/false);
  UF_CHECK_MSG(pte != nullptr && pte->frame != kInvalidFrame, "protecting an unmapped page");
  pte->flags = flags;
}

void PageTable::RemapRange(uint64_t va, std::span<const FrameId> frames, uint32_t flags,
                           uint32_t extra_flags_after_first) {
  for (size_t i = 0; i < frames.size(); ++i) {
    Remap(va + i * kPageSize, frames[i], i == 0 ? flags : flags | extra_flags_after_first);
  }
}

void PageTable::SetFlagsRange(uint64_t va, uint64_t pages, uint32_t flags,
                              uint32_t extra_flags_after_first) {
  for (uint64_t i = 0; i < pages; ++i) {
    SetFlags(va + i * kPageSize, i == 0 ? flags : flags | extra_flags_after_first);
  }
}

std::optional<Pte> PageTable::Lookup(uint64_t va) const {
  const Pte* pte = WalkConst(va);
  if (pte == nullptr || pte->frame == kInvalidFrame) {
    return std::nullopt;
  }
  return *pte;
}

Pte* PageTable::LookupMutable(uint64_t va) {
  Pte* pte = Walk(va, /*create=*/false);
  if (pte == nullptr || pte->frame == kInvalidFrame) {
    return nullptr;
  }
  return pte;
}

void PageTable::ForEachMapped(uint64_t lo, uint64_t hi,
                              const std::function<void(uint64_t, Pte&)>& fn) {
  // Iterative page-by-page walk over the range, skipping unmapped subtrees level by level.
  uint64_t va = AlignDown(lo, kPageSize);
  while (va < hi) {
    Table* t = root_.get();
    uint64_t skip = kVaTop;  // bytes to skip if subtree missing
    bool missing = false;
    for (int level = 0; level < kLevels - 1; ++level) {
      const int shift = 12 + kBitsPerLevel * (kLevels - 1 - level);
      skip = 1ULL << shift;
      Table* child = t->children[IndexAt(va, level)].get();
      if (child == nullptr) {
        missing = true;
        break;
      }
      t = child;
    }
    if (missing) {
      va = AlignDown(va, skip) + skip;
      continue;
    }
    if (t->ptes == nullptr) {
      va = AlignDown(va, kPageSize * kFanout) + kPageSize * kFanout;
      continue;
    }
    // Scan the leaf table from the current index to its end.
    uint64_t idx = IndexAt(va, kLevels - 1);
    for (; idx < kFanout && va < hi; ++idx, va += kPageSize) {
      Pte& pte = (*t->ptes)[idx];
      if (pte.frame != kInvalidFrame) {
        fn(va, pte);
      }
    }
  }
}

void PageTable::ForEachMapped(uint64_t lo, uint64_t hi,
                              const std::function<void(uint64_t, const Pte&)>& fn) const {
  const_cast<PageTable*>(this)->ForEachMapped(
      lo, hi, [&fn](uint64_t va, Pte& pte) { fn(va, pte); });
}

uint64_t PageTable::CountMapped(uint64_t lo, uint64_t hi) const {
  uint64_t n = 0;
  ForEachMapped(lo, hi, [&n](uint64_t, const Pte&) { ++n; });
  return n;
}

}  // namespace ufork
