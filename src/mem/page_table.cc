#include "src/mem/page_table.h"

#include <vector>

#include "src/base/units.h"

namespace ufork {

// Node pointers are atomics so shard workers can walk and extend the shared radix tree
// concurrently (DESIGN.md §4.11): missing nodes are installed with compare-exchange (the
// loser frees its node and adopts the winner's), and readers load with acquire so a published
// node's storage is visible. Individual Pte slots need no atomics — each guest page belongs
// to one μprocess, and μprocesses are pinned to shards, so two host threads never race on
// the same PTE; only interior-node creation is cross-shard.
struct PageTable::Table {
  // Interior levels use children; the leaf level uses ptes. Allocated lazily.
  std::array<std::atomic<Table*>, kFanout> children{};
  std::atomic<std::array<Pte, kFanout>*> ptes{nullptr};

  ~Table() {
    for (auto& child : children) {
      delete child.load(std::memory_order_relaxed);
    }
    delete ptes.load(std::memory_order_relaxed);
  }
};

PageTable::PageTable() : root_(std::make_unique<Table>()), node_count_(1) {}
PageTable::~PageTable() = default;

Pte* PageTable::Walk(uint64_t va, bool create) {
  UF_DCHECK(va < kVaTop);
  Table* t = root_.get();
  for (int level = 0; level < kLevels - 1; ++level) {
    auto& slot = t->children[IndexAt(va, level)];
    Table* child = slot.load(std::memory_order_acquire);
    if (child == nullptr) {
      if (!create) {
        return nullptr;
      }
      Table* fresh = new Table();
      if (slot.compare_exchange_strong(child, fresh, std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
        child = fresh;
        ++node_count_;
      } else {
        delete fresh;  // another shard installed the node first
      }
    }
    t = child;
  }
  auto* ptes = t->ptes.load(std::memory_order_acquire);
  if (ptes == nullptr) {
    if (!create) {
      return nullptr;
    }
    auto* fresh = new std::array<Pte, kFanout>();
    if (t->ptes.compare_exchange_strong(ptes, fresh, std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
      ptes = fresh;
      ++node_count_;
    } else {
      delete fresh;
    }
  }
  return &(*ptes)[IndexAt(va, kLevels - 1)];
}

const Pte* PageTable::WalkConst(uint64_t va) const {
  UF_DCHECK(va < kVaTop);
  const Table* t = root_.get();
  for (int level = 0; level < kLevels - 1; ++level) {
    const Table* child = t->children[IndexAt(va, level)].load(std::memory_order_acquire);
    if (child == nullptr) {
      return nullptr;
    }
    t = child;
  }
  const auto* ptes = t->ptes.load(std::memory_order_acquire);
  if (ptes == nullptr) {
    return nullptr;
  }
  return &(*ptes)[IndexAt(va, kLevels - 1)];
}

void PageTable::Map(uint64_t va, FrameId frame, uint32_t flags) {
  Pte* pte = Walk(va, /*create=*/true);
  UF_CHECK_MSG(!PteInUse(*pte), "mapping an already mapped page");
  UF_CHECK_MSG(frame != kInvalidFrame || (flags & kPteNotPresent) != 0,
               "frame-less mapping without kPteNotPresent");
  pte->frame = frame;
  pte->flags = flags;
  ++mapped_pages_;
  if (frame == kInvalidFrame) {
    ++not_present_pages_;
  }
}

FrameId PageTable::Unmap(uint64_t va) {
  Pte* pte = Walk(va, /*create=*/false);
  UF_CHECK_MSG(pte != nullptr && PteInUse(*pte), "unmapping an unmapped page");
  const FrameId frame = pte->frame;
  pte->frame = kInvalidFrame;
  pte->flags = 0;
  mapped_pages_ -= 1;
  if (frame == kInvalidFrame) {
    not_present_pages_ -= 1;
  }
  return frame;
}

void PageTable::Remap(uint64_t va, FrameId frame, uint32_t flags) {
  Pte* pte = Walk(va, /*create=*/false);
  UF_CHECK_MSG(pte != nullptr && PteInUse(*pte), "remapping an unmapped page");
  UF_CHECK_MSG(frame != kInvalidFrame || (flags & kPteNotPresent) != 0,
               "frame-less remap without kPteNotPresent");
  const bool was_reserved = pte->frame == kInvalidFrame;
  const bool now_reserved = frame == kInvalidFrame;
  pte->frame = frame;
  pte->flags = flags;
  if (was_reserved && !now_reserved) {
    not_present_pages_ -= 1;
  } else if (!was_reserved && now_reserved) {
    ++not_present_pages_;
  }
}

void PageTable::SetFlags(uint64_t va, uint32_t flags) {
  Pte* pte = Walk(va, /*create=*/false);
  UF_CHECK_MSG(pte != nullptr && PteInUse(*pte), "protecting an unmapped page");
  UF_CHECK_MSG(pte->frame != kInvalidFrame || (flags & kPteNotPresent) != 0,
               "flags change would strand a frame-less reservation");
  pte->flags = flags;
}

void PageTable::RemapRange(uint64_t va, std::span<const FrameId> frames, uint32_t flags,
                           uint32_t extra_flags_after_first) {
  for (size_t i = 0; i < frames.size(); ++i) {
    Remap(va + i * kPageSize, frames[i], i == 0 ? flags : flags | extra_flags_after_first);
  }
}

void PageTable::SetFlagsRange(uint64_t va, uint64_t pages, uint32_t flags,
                              uint32_t extra_flags_after_first) {
  for (uint64_t i = 0; i < pages; ++i) {
    SetFlags(va + i * kPageSize, i == 0 ? flags : flags | extra_flags_after_first);
  }
}

std::optional<Pte> PageTable::Lookup(uint64_t va) const {
  const Pte* pte = WalkConst(va);
  if (pte == nullptr || !PteInUse(*pte)) {
    return std::nullopt;
  }
  return *pte;
}

Pte* PageTable::LookupMutable(uint64_t va) {
  Pte* pte = Walk(va, /*create=*/false);
  if (pte == nullptr || !PteInUse(*pte)) {
    return nullptr;
  }
  return pte;
}

void PageTable::ForEachMapped(uint64_t lo, uint64_t hi,
                              const std::function<void(uint64_t, Pte&)>& fn) {
  // Iterative page-by-page walk over the range, skipping unmapped subtrees level by level.
  uint64_t va = AlignDown(lo, kPageSize);
  while (va < hi) {
    Table* t = root_.get();
    uint64_t skip = kVaTop;  // bytes to skip if subtree missing
    bool missing = false;
    for (int level = 0; level < kLevels - 1; ++level) {
      const int shift = 12 + kBitsPerLevel * (kLevels - 1 - level);
      skip = 1ULL << shift;
      Table* child = t->children[IndexAt(va, level)].load(std::memory_order_acquire);
      if (child == nullptr) {
        missing = true;
        break;
      }
      t = child;
    }
    if (missing) {
      va = AlignDown(va, skip) + skip;
      continue;
    }
    auto* ptes = t->ptes.load(std::memory_order_acquire);
    if (ptes == nullptr) {
      va = AlignDown(va, kPageSize * kFanout) + kPageSize * kFanout;
      continue;
    }
    // Scan the leaf table from the current index to its end.
    uint64_t idx = IndexAt(va, kLevels - 1);
    for (; idx < kFanout && va < hi; ++idx, va += kPageSize) {
      Pte& pte = (*ptes)[idx];
      if (PteInUse(pte)) {
        fn(va, pte);
      }
    }
  }
}

void PageTable::ForEachMapped(uint64_t lo, uint64_t hi,
                              const std::function<void(uint64_t, const Pte&)>& fn) const {
  const_cast<PageTable*>(this)->ForEachMapped(
      lo, hi, [&fn](uint64_t va, Pte& pte) { fn(va, pte); });
}

uint64_t PageTable::CountMapped(uint64_t lo, uint64_t hi) const {
  uint64_t n = 0;
  ForEachMapped(lo, hi, [&n](uint64_t, const Pte&) { ++n; });
  return n;
}

std::optional<uint64_t> PageTable::FindUnmappedRun(uint64_t lo, uint64_t hi,
                                                  uint64_t pages) const {
  if (pages == 0) {
    return std::nullopt;
  }
  uint64_t run_start = AlignUp(lo, kPageSize);
  uint64_t run_len = 0;
  for (uint64_t va = run_start; va + kPageSize <= hi; va += kPageSize) {
    const Pte* pte = WalkConst(va);
    if (pte != nullptr && PteInUse(*pte)) {
      run_start = va + kPageSize;
      run_len = 0;
      continue;
    }
    if (++run_len == pages) {
      return run_start;
    }
  }
  return std::nullopt;
}

}  // namespace ufork
