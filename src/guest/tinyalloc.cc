#include "src/guest/tinyalloc.h"

#include "src/cheri/compressed_cap.h"
#include "src/guest/guest.h"

namespace ufork {
namespace tinyalloc {
namespace {

constexpr uint64_t kRootMagic = 0x7541666f726b4131ULL;  // "uAforkA1"
constexpr uint32_t kBlockMagic = 0x7461626cu;           // "tabl"
constexpr uint32_t kStateAllocated = 1;
constexpr uint32_t kStateFree = 2;

// Root field offsets within the first heap page (capability fields granule-aligned).
constexpr uint64_t kOffMagic = 0;
constexpr uint64_t kOffBumpCap = 16;      // capability: next free arena byte
constexpr uint64_t kOffFreeHeadCap = 32;  // capability: first free block header (or untagged)
constexpr uint64_t kOffAllocCount = 48;
constexpr uint64_t kOffFreeCount = 56;
constexpr uint64_t kOffBytesInUse = kRootBytesInUseOffset;

constexpr uint64_t kHeaderSize = 16;

struct Roots {
  uint64_t root_va = 0;   // base of the allocator root page
  uint64_t heap_lo = 0;   // heap segment start
  uint64_t heap_hi = 0;   // heap segment end
  uint64_t arena_lo = 0;  // first allocatable byte
};

Roots GetRoots(Guest& g) {
  Roots r;
  r.heap_lo = g.base() + g.layout().heap_off();
  r.heap_hi = r.heap_lo + g.layout().heap_size();
  r.root_va = r.heap_lo;
  r.arena_lo = r.heap_lo + kPageSize;
  return r;
}

}  // namespace

Result<void> Init(Guest& g) {
  const Roots r = GetRoots(g);
  const Capability& ddc = g.ddc();
  UF_RETURN_IF_ERROR(g.Store<uint64_t>(ddc, r.root_va + kOffMagic, kRootMagic));
  UF_RETURN_IF_ERROR(
      g.StoreCap(ddc, r.root_va + kOffBumpCap, ddc.WithAddress(r.arena_lo)));
  UF_RETURN_IF_ERROR(
      g.StoreCap(ddc, r.root_va + kOffFreeHeadCap, Capability::Integer(0)));
  UF_RETURN_IF_ERROR(g.Store<uint64_t>(ddc, r.root_va + kOffAllocCount, 0));
  UF_RETURN_IF_ERROR(g.Store<uint64_t>(ddc, r.root_va + kOffFreeCount, 0));
  UF_RETURN_IF_ERROR(g.Store<uint64_t>(ddc, r.root_va + kOffBytesInUse, 0));
  return OkResult();
}

Result<Capability> Alloc(Guest& g, uint64_t size) {
  if (size == 0) {
    return Error{Code::kErrInval, "zero-size allocation"};
  }
  const Roots r = GetRoots(g);
  const Capability& ddc = g.ddc();
  UF_ASSIGN_OR_RETURN(const uint64_t magic, g.Load<uint64_t>(ddc, r.root_va + kOffMagic));
  if (magic != kRootMagic) {
    return Error{Code::kErrInval, "heap not initialized (corrupted allocator root)"};
  }
  const uint64_t rounded = AlignUp(size, kCapSize);

  // First fit over the free list. Links are capabilities: walking the list in a forked child
  // triggers CoPA faults exactly as the paper describes for allocator metadata.
  Capability prev;  // untagged: head
  UF_ASSIGN_OR_RETURN(Capability cursor, g.LoadCap(ddc, r.root_va + kOffFreeHeadCap));
  while (cursor.tag()) {
    const uint64_t header_va = cursor.address();
    UF_ASSIGN_OR_RETURN(const uint64_t block_size, g.Load<uint64_t>(ddc, header_va));
    UF_ASSIGN_OR_RETURN(Capability next, g.LoadCap(ddc, header_va + kHeaderSize));
    if (block_size >= rounded && block_size <= 4 * rounded) {
      // Unlink.
      if (prev.tag()) {
        UF_RETURN_IF_ERROR(g.StoreCap(ddc, prev.address() + kHeaderSize, next));
      } else {
        UF_RETURN_IF_ERROR(g.StoreCap(ddc, r.root_va + kOffFreeHeadCap, next));
      }
      UF_RETURN_IF_ERROR(g.Store<uint32_t>(ddc, header_va + 12, kStateAllocated));
      UF_ASSIGN_OR_RETURN(const uint64_t in_use,
                          g.Load<uint64_t>(ddc, r.root_va + kOffBytesInUse));
      UF_RETURN_IF_ERROR(g.Store<uint64_t>(ddc, r.root_va + kOffBytesInUse,
                                           in_use + block_size));
      UF_ASSIGN_OR_RETURN(const uint64_t allocs,
                          g.Load<uint64_t>(ddc, r.root_va + kOffAllocCount));
      UF_RETURN_IF_ERROR(g.Store<uint64_t>(ddc, r.root_va + kOffAllocCount, allocs + 1));
      // Bounds match the *request* (CHERI malloc semantics); the block keeps its stored size.
      return ddc.WithBounds(header_va + kHeaderSize, size);
    }
    prev = cursor;
    cursor = next;
  }

  // Bump allocation. Large payloads get representable-bounds alignment so the returned
  // capability's bounds are exact even under compressed-capability encoding.
  UF_ASSIGN_OR_RETURN(Capability bump, g.LoadCap(ddc, r.root_va + kOffBumpCap));
  if (!bump.tag()) {
    return Error{Code::kErrInval, "allocator bump cursor corrupted"};
  }
  uint64_t header_va = bump.address();
  uint64_t payload_va = header_va + kHeaderSize;
  uint64_t payload_size = rounded;
  if (rounded >= (1ULL << kMantissaBits)) {
    const uint64_t mask = RepresentableAlignmentMask(rounded);
    payload_va = (payload_va + ~mask) & mask;  // align up to the representable granule
    header_va = payload_va - kHeaderSize;
    payload_size = RoundToRepresentable(payload_va, rounded).length;
  }
  const uint64_t new_bump = payload_va + payload_size;
  if (new_bump > r.heap_hi) {
    return Error{Code::kErrNoMem, "guest heap exhausted"};
  }
  UF_RETURN_IF_ERROR(g.Store<uint64_t>(ddc, header_va, payload_size));
  UF_RETURN_IF_ERROR(g.Store<uint32_t>(ddc, header_va + 8, kBlockMagic));
  UF_RETURN_IF_ERROR(g.Store<uint32_t>(ddc, header_va + 12, kStateAllocated));
  UF_RETURN_IF_ERROR(g.StoreCap(ddc, r.root_va + kOffBumpCap, bump.WithAddress(new_bump)));
  UF_ASSIGN_OR_RETURN(const uint64_t in_use,
                      g.Load<uint64_t>(ddc, r.root_va + kOffBytesInUse));
  UF_RETURN_IF_ERROR(
      g.Store<uint64_t>(ddc, r.root_va + kOffBytesInUse, in_use + payload_size));
  UF_ASSIGN_OR_RETURN(const uint64_t allocs,
                      g.Load<uint64_t>(ddc, r.root_va + kOffAllocCount));
  UF_RETURN_IF_ERROR(g.Store<uint64_t>(ddc, r.root_va + kOffAllocCount, allocs + 1));
  // Small allocations are bounded to the request exactly; large ones to the representable
  // (rounded) length, as hardware bounds compression dictates.
  return ddc.WithBounds(payload_va,
                        rounded >= (1ULL << kMantissaBits) ? payload_size : size);
}

Result<void> Free(Guest& g, const Capability& allocation) {
  if (!allocation.tag()) {
    return Error{Code::kErrInval, "free of an untagged capability"};
  }
  const Roots r = GetRoots(g);
  const Capability& ddc = g.ddc();
  const uint64_t header_va = allocation.base() - kHeaderSize;
  if (header_va < r.arena_lo || header_va >= r.heap_hi) {
    return Error{Code::kErrInval, "free of a non-heap capability"};
  }
  UF_ASSIGN_OR_RETURN(const uint32_t block_magic, g.Load<uint32_t>(ddc, header_va + 8));
  UF_ASSIGN_OR_RETURN(const uint32_t state, g.Load<uint32_t>(ddc, header_va + 12));
  if (block_magic != kBlockMagic || state != kStateAllocated) {
    return Error{Code::kErrInval, "invalid or double free"};
  }
  UF_ASSIGN_OR_RETURN(const uint64_t block_size, g.Load<uint64_t>(ddc, header_va));
  UF_RETURN_IF_ERROR(g.Store<uint32_t>(ddc, header_va + 12, kStateFree));
  // Push onto the free list.
  UF_ASSIGN_OR_RETURN(Capability head, g.LoadCap(ddc, r.root_va + kOffFreeHeadCap));
  UF_RETURN_IF_ERROR(g.StoreCap(ddc, header_va + kHeaderSize, head));
  UF_RETURN_IF_ERROR(
      g.StoreCap(ddc, r.root_va + kOffFreeHeadCap, ddc.WithAddress(header_va)));
  UF_ASSIGN_OR_RETURN(const uint64_t in_use,
                      g.Load<uint64_t>(ddc, r.root_va + kOffBytesInUse));
  UF_RETURN_IF_ERROR(
      g.Store<uint64_t>(ddc, r.root_va + kOffBytesInUse, in_use - block_size));
  UF_ASSIGN_OR_RETURN(const uint64_t frees, g.Load<uint64_t>(ddc, r.root_va + kOffFreeCount));
  UF_RETURN_IF_ERROR(g.Store<uint64_t>(ddc, r.root_va + kOffFreeCount, frees + 1));
  return OkResult();
}

Result<HeapStats> Stats(Guest& g) {
  const Roots r = GetRoots(g);
  const Capability& ddc = g.ddc();
  HeapStats stats;
  UF_ASSIGN_OR_RETURN(stats.allocations, g.Load<uint64_t>(ddc, r.root_va + kOffAllocCount));
  UF_ASSIGN_OR_RETURN(stats.frees, g.Load<uint64_t>(ddc, r.root_va + kOffFreeCount));
  UF_ASSIGN_OR_RETURN(stats.bytes_in_use, g.Load<uint64_t>(ddc, r.root_va + kOffBytesInUse));
  UF_ASSIGN_OR_RETURN(const Capability bump, g.LoadCap(ddc, r.root_va + kOffBumpCap));
  stats.bump_used = bump.address() - r.arena_lo;
  return stats;
}

}  // namespace tinyalloc
}  // namespace ufork
