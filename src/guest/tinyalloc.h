// tinyalloc: the guest heap allocator, with ALL metadata resident in guest memory.
//
// Mirrors the paper's port of Unikraft's tinyalloc to CHERI (§4.1): 16-byte alignment (one
// capability granule), bounds set on every allocation, and — crucially for μFork — the
// allocator's own pointers (bump cursor, free-list links) stored as tagged capabilities in the
// first heap page, which fork proactively copies and relocates (§3.5). Large allocations are
// aligned/padded to CHERI-representable bounds (§4.1's "comply with CHERI's 16-byte pointer
// alignment requirements and set bounds on allocated memory").
//
// Layout (offsets within the heap segment):
//   page 0           allocator root: magic, bump cursor (cap), free-list head (cap), counters
//   page 1 .. end    arena: blocks of [16-byte header | payload]
//
// Block header: u64 payload_size | u32 magic | u32 state. A free block additionally stores the
// next-free capability at payload offset 0.
#ifndef UFORK_SRC_GUEST_TINYALLOC_H_
#define UFORK_SRC_GUEST_TINYALLOC_H_

#include <cstdint>

#include "src/base/status.h"
#include "src/cheri/capability.h"

namespace ufork {

class Guest;

namespace tinyalloc {

// Offset of the bytes-in-use counter within the allocator root page. Exported because the MAS
// baseline's residency model reads it to size the allocator-dirtying effect (see
// MasBackend::ExtraResidencyBytes).
inline constexpr uint64_t kRootBytesInUseOffset = 64;

struct HeapStats {
  uint64_t allocations = 0;
  uint64_t frees = 0;
  uint64_t bytes_in_use = 0;
  uint64_t bump_used = 0;  // bytes consumed from the bump arena (high-water)
};

// Formats the allocator root in the first heap page. Called by the guest runtime for fresh
// programs only; fork children inherit the (relocated) root.
Result<void> Init(Guest& guest);

// First-fit over the free list, falling back to the bump cursor. Returns a capability bounded
// exactly to [payload, payload + size') where size' is the 16-byte-rounded (and, for large
// blocks, representable-bounds-rounded) size.
Result<Capability> Alloc(Guest& guest, uint64_t size);

Result<void> Free(Guest& guest, const Capability& allocation);

Result<HeapStats> Stats(Guest& guest);

}  // namespace tinyalloc
}  // namespace ufork

#endif  // UFORK_SRC_GUEST_TINYALLOC_H_
