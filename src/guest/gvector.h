// GuestVector<T>: a growable array living entirely in guest memory.
//
// Layout: a 32-byte header block [size u64 | capacity u64 | data capability] plus a separate
// data block; growth allocates a new data block, copies, stores the new capability into the
// header and frees the old block. Because the data pointer is a tagged capability *in guest
// memory*, a forked child inheriting the header (e.g. via a GOT slot) gets a fully relocated,
// CoPA-protected view — the same property GuestHashMap has, for flat data.
//
// T must be trivially copyable; elements are stored as raw bytes (no capabilities inside T —
// store Capability values via GuestHashMap/StoreCap instead, where tag preservation applies).
#ifndef UFORK_SRC_GUEST_GVECTOR_H_
#define UFORK_SRC_GUEST_GVECTOR_H_

#include <type_traits>

#include "src/guest/guest.h"

namespace ufork {

template <typename T>
class GuestVector {
  static_assert(std::is_trivially_copyable_v<T>, "GuestVector elements are raw bytes");

 public:
  // Creates an empty vector with the given initial capacity (elements).
  static Result<GuestVector> Create(Guest& guest, uint64_t initial_capacity = 8) {
    UF_ASSIGN_OR_RETURN(const Capability header, guest.Malloc(kHeaderBytes));
    UF_ASSIGN_OR_RETURN(const Capability data,
                        guest.Malloc(std::max<uint64_t>(1, initial_capacity * sizeof(T))));
    UF_RETURN_IF_ERROR(guest.StoreAt<uint64_t>(header, kOffSize, 0));
    UF_RETURN_IF_ERROR(guest.StoreAt<uint64_t>(header, kOffCapacity, initial_capacity));
    UF_RETURN_IF_ERROR(guest.StoreCap(header, header.base() + kOffData, data));
    return GuestVector(guest, header);
  }

  // Re-attaches to an existing vector (fork child via GOT, etc.).
  static GuestVector Attach(Guest& guest, const Capability& header) {
    return GuestVector(guest, header);
  }

  const Capability& header() const { return header_; }

  Result<uint64_t> Size() { return guest_->Load<uint64_t>(header_, header_.base() + kOffSize); }

  Result<void> PushBack(const T& value) {
    UF_ASSIGN_OR_RETURN(const uint64_t size, Size());
    UF_ASSIGN_OR_RETURN(const uint64_t capacity,
                        guest_->Load<uint64_t>(header_, header_.base() + kOffCapacity));
    if (size == capacity) {
      UF_RETURN_IF_ERROR(Grow(std::max<uint64_t>(8, capacity * 2)));
    }
    UF_ASSIGN_OR_RETURN(const Capability data, Data());
    UF_RETURN_IF_ERROR(guest_->Store<T>(data, data.base() + size * sizeof(T), value));
    return guest_->StoreAt<uint64_t>(header_, kOffSize, size + 1);
  }

  Result<T> At(uint64_t index) {
    UF_ASSIGN_OR_RETURN(const uint64_t size, Size());
    if (index >= size) {
      return Error{Code::kErrInval, "GuestVector index out of range"};
    }
    UF_ASSIGN_OR_RETURN(const Capability data, Data());
    return guest_->Load<T>(data, data.base() + index * sizeof(T));
  }

  Result<void> Set(uint64_t index, const T& value) {
    UF_ASSIGN_OR_RETURN(const uint64_t size, Size());
    if (index >= size) {
      return Error{Code::kErrInval, "GuestVector index out of range"};
    }
    UF_ASSIGN_OR_RETURN(const Capability data, Data());
    return guest_->Store<T>(data, data.base() + index * sizeof(T), value);
  }

  Result<T> PopBack() {
    UF_ASSIGN_OR_RETURN(const uint64_t size, Size());
    if (size == 0) {
      return Error{Code::kErrInval, "PopBack on empty GuestVector"};
    }
    UF_ASSIGN_OR_RETURN(const T value, At(size - 1));
    UF_RETURN_IF_ERROR(guest_->StoreAt<uint64_t>(header_, kOffSize, size - 1));
    return value;
  }

  // Visits every element in index order.
  template <typename Fn>
  Result<void> ForEach(Fn&& fn) {
    UF_ASSIGN_OR_RETURN(const uint64_t size, Size());
    UF_ASSIGN_OR_RETURN(const Capability data, Data());
    for (uint64_t i = 0; i < size; ++i) {
      UF_ASSIGN_OR_RETURN(const T value, guest_->Load<T>(data, data.base() + i * sizeof(T)));
      UF_RETURN_IF_ERROR(fn(i, value));
    }
    return OkResult();
  }

 private:
  static constexpr uint64_t kOffSize = 0;
  static constexpr uint64_t kOffCapacity = 8;
  static constexpr uint64_t kOffData = 16;  // capability: granule-aligned
  static constexpr uint64_t kHeaderBytes = 32;

  GuestVector(Guest& guest, Capability header) : guest_(&guest), header_(header) {}

  Result<Capability> Data() {
    return guest_->LoadCap(header_, header_.base() + kOffData);
  }

  Result<void> Grow(uint64_t new_capacity) {
    UF_ASSIGN_OR_RETURN(const uint64_t size, Size());
    UF_ASSIGN_OR_RETURN(const Capability old_data, Data());
    UF_ASSIGN_OR_RETURN(const Capability new_data, guest_->Malloc(new_capacity * sizeof(T)));
    if (size > 0) {
      UF_RETURN_IF_ERROR(guest_->CopyBytes(new_data, new_data.base(), old_data,
                                           old_data.base(), size * sizeof(T)));
    }
    UF_RETURN_IF_ERROR(guest_->StoreCap(header_, header_.base() + kOffData, new_data));
    UF_RETURN_IF_ERROR(guest_->StoreAt<uint64_t>(header_, kOffCapacity, new_capacity));
    return guest_->Free(old_data);
  }

  Guest* guest_;
  Capability header_;
};

}  // namespace ufork

#endif  // UFORK_SRC_GUEST_GVECTOR_H_
