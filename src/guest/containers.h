// Guest-memory containers.
//
// These store every node and link in simulated guest memory, connected by tagged capabilities —
// so a forked child walking them performs real capability loads, which is exactly what CoPA
// intercepts. They are the data-structure substrate of the mini applications (the Redis
// database is a GuestHashMap).
#ifndef UFORK_SRC_GUEST_CONTAINERS_H_
#define UFORK_SRC_GUEST_CONTAINERS_H_

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/guest/guest.h"

namespace ufork {

// Separate-chaining hash map: guest-resident bucket array of capabilities, entries as
// guest-heap blocks [next cap | key_len | val_len | key bytes | value bytes].
class GuestHashMap {
 public:
  // Allocates the table in the guest heap.
  static Result<GuestHashMap> Create(Guest& guest, uint64_t bucket_count);

  // Re-attaches to an existing table (e.g. in a fork child, via a GOT slot). The capability
  // must come from guest memory so it has been relocated to the child's region.
  static GuestHashMap Attach(Guest& guest, const Capability& table);

  const Capability& table() const { return table_; }

  Result<void> Put(std::string_view key, std::span<const std::byte> value);
  Result<std::optional<std::vector<std::byte>>> Get(std::string_view key);
  Result<bool> Erase(std::string_view key);
  Result<uint64_t> Size();

  // Visits every entry in bucket order. The visitor receives the key and a capability bounded
  // to the value bytes (whose load in a child triggers CoPA page copies).
  using Visitor =
      std::function<Result<void>(const std::string& key, const Capability& value_cap,
                                 uint64_t value_len)>;
  Result<void> ForEach(const Visitor& visit);

 private:
  GuestHashMap(Guest& guest, Capability table) : guest_(&guest), table_(table) {}

  struct Found {
    Capability prev;   // untagged if the entry is the bucket head
    Capability entry;  // untagged if not found
    uint64_t bucket_va = 0;
  };
  Result<Found> Find(std::string_view key);
  Result<uint64_t> BucketCount();
  Result<Capability> Buckets();

  static uint64_t Hash(std::string_view key);

  Guest* guest_;
  Capability table_;
};

}  // namespace ufork

#endif  // UFORK_SRC_GUEST_CONTAINERS_H_
