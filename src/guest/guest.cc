#include "src/guest/guest.h"

#include "src/guest/tinyalloc.h"

namespace ufork {

UprocEntry MakeGuestEntry(GuestFn fn) {
  // The returned callable is a coroutine whose parameters (not lambda captures!) carry the
  // state, so the frame owns everything it needs for the lifetime of the μprocess thread.
  struct Adapter {
    static SimTask<void> Run(Kernel& kernel, Uproc& uproc, GuestFn guest_fn) {
      Guest guest(kernel, uproc);
      if (!uproc.forked_child) {
        const Result<void> init = guest.InitRuntime();
        if (!init.ok()) {
          // Exhaustion (real or injected) during crt init — under demand paging even the
          // first heap touch can fail. A real runtime would crash the process, not the
          // machine: contain to this μprocess via the trap vector (default SIGSEGV).
          co_await guest.RaiseFault(init.error());
          co_return;
        }
      }
      co_await guest_fn(guest);
    }
  };
  return [fn = std::move(fn)](Kernel& kernel, Uproc& uproc) -> SimTask<void> {
    return Adapter::Run(kernel, uproc, fn);
  };
}

Result<void> Guest::InitRuntime() {
  UF_RETURN_IF_ERROR(tinyalloc::Init(*this));
  // Populate the GOT: capabilities to the runtime's global objects. A PIC program reaches all
  // globals through these slots; fork copies + relocates the GOT pages eagerly (§3.5), which
  // is what makes globals work in the child without any code change.
  const uint64_t heap_root = base() + layout().heap_off();
  UF_RETURN_IF_ERROR(GotStore(kGotSlotHeapRoot, ddc().WithBounds(heap_root, kPageSize)));
  const uint64_t data_seg = base() + layout().data_off();
  UF_RETURN_IF_ERROR(
      GotStore(kGotSlotDataSeg, ddc().WithBounds(data_seg, layout().data_size())));
  return OkResult();
}

Result<void> Guest::GotStore(int slot, const Capability& value) {
  const uint64_t got_base = base() + layout().got_off();
  const uint64_t va = got_base + static_cast<uint64_t>(slot) * kCapSize;
  if (slot < 0 || va + kCapSize > got_base + layout().got_size()) {
    return Error{Code::kErrInval, "GOT slot out of range"};
  }
  return StoreCap(ddc(), va, value);
}

Result<Capability> Guest::GotLoad(int slot) {
  const uint64_t got_base = base() + layout().got_off();
  const uint64_t va = got_base + static_cast<uint64_t>(slot) * kCapSize;
  if (slot < 0 || va + kCapSize > got_base + layout().got_size()) {
    return Error{Code::kErrInval, "GOT slot out of range"};
  }
  return LoadCap(ddc(), va);
}

Result<Capability> Guest::Malloc(uint64_t size) { return tinyalloc::Alloc(*this, size); }

Result<void> Guest::Free(const Capability& allocation) {
  return tinyalloc::Free(*this, allocation);
}

SimTask<Result<Pid>> Guest::Fork(GuestFn child_fn) {
  return kernel_.SysFork(uproc_, MakeGuestEntry(std::move(child_fn)));
}

SimTask<Result<ThreadId>> Guest::ThreadCreate(GuestFn fn) {
  // Secondary threads skip crt initialization: they share the already-initialized image.
  UprocEntry entry = [fn = std::move(fn)](Kernel& kernel, Uproc& uproc) -> SimTask<void> {
    return [](Kernel& k, Uproc& u, GuestFn f) -> SimTask<void> {
      Guest guest(k, u);
      co_await f(guest);
    }(kernel, uproc, fn);
  };
  return kernel_.SysThreadCreate(uproc_, std::move(entry));
}

SimTask<Result<void>> Guest::Sigaction(int signal,
                                       std::function<SimTask<void>(Guest&, int)> handler) {
  SignalHandler kernel_handler;
  if (handler) {
    kernel_handler = [fn = std::move(handler)](Kernel& kernel, Uproc& uproc,
                                               int sig) -> SimTask<void> {
      Guest guest(kernel, uproc);
      co_await fn(guest, sig);
    };
  }
  return kernel_.SysSigaction(uproc_, signal, std::move(kernel_handler));
}

Result<Capability> Guest::PlaceBytes(std::span<const std::byte> data) {
  UF_ASSIGN_OR_RETURN(const Capability cap, Malloc(data.size()));
  UF_RETURN_IF_ERROR(WriteBytes(cap, cap.base(), data));
  return cap;
}

Result<Capability> Guest::PlaceString(const std::string& s) {
  return PlaceBytes(std::as_bytes(std::span(s.data(), s.size())));
}

Result<std::vector<std::byte>> Guest::FetchBytes(const Capability& cap, uint64_t len) {
  std::vector<std::byte> out(len);
  UF_RETURN_IF_ERROR(ReadBytes(cap, cap.base(), out));
  return out;
}

}  // namespace ufork
