#include "src/guest/containers.h"

#include <cstring>

namespace ufork {
namespace {

// Table block offsets.
constexpr uint64_t kOffBucketCount = 0;
constexpr uint64_t kOffSize = 8;
constexpr uint64_t kOffBucketsCap = 16;

// Entry block offsets. The value lives in its own allocation referenced by a capability —
// mirroring Redis's dictEntry -> robj -> sds indirection, and making every entry visit a
// tagged-capability load (the access CoPA intercepts).
constexpr uint64_t kOffNext = 0;
constexpr uint64_t kOffValueCap = 16;
constexpr uint64_t kOffKeyLen = 32;
constexpr uint64_t kOffValLen = 40;
constexpr uint64_t kOffKey = 48;

}  // namespace

uint64_t GuestHashMap::Hash(std::string_view key) {
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a
  for (char c : key) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

Result<GuestHashMap> GuestHashMap::Create(Guest& guest, uint64_t bucket_count) {
  UF_CHECK(bucket_count > 0);
  UF_ASSIGN_OR_RETURN(const Capability table, guest.Malloc(32));
  UF_ASSIGN_OR_RETURN(const Capability buckets, guest.Malloc(bucket_count * kCapSize));
  UF_RETURN_IF_ERROR(guest.StoreAt<uint64_t>(table, kOffBucketCount, bucket_count));
  UF_RETURN_IF_ERROR(guest.StoreAt<uint64_t>(table, kOffSize, 0));
  UF_RETURN_IF_ERROR(guest.StoreCap(table, table.base() + kOffBucketsCap, buckets));
  for (uint64_t i = 0; i < bucket_count; ++i) {
    UF_RETURN_IF_ERROR(
        guest.StoreCap(buckets, buckets.base() + i * kCapSize, Capability::Integer(0)));
  }
  return GuestHashMap(guest, table);
}

GuestHashMap GuestHashMap::Attach(Guest& guest, const Capability& table) {
  return GuestHashMap(guest, table);
}

Result<uint64_t> GuestHashMap::BucketCount() {
  return guest_->Load<uint64_t>(table_, table_.base() + kOffBucketCount);
}

Result<Capability> GuestHashMap::Buckets() {
  return guest_->LoadCap(table_, table_.base() + kOffBucketsCap);
}

Result<uint64_t> GuestHashMap::Size() {
  return guest_->Load<uint64_t>(table_, table_.base() + kOffSize);
}

Result<GuestHashMap::Found> GuestHashMap::Find(std::string_view key) {
  UF_ASSIGN_OR_RETURN(const uint64_t buckets_n, BucketCount());
  UF_ASSIGN_OR_RETURN(const Capability buckets, Buckets());
  Found found;
  found.bucket_va = buckets.base() + (Hash(key) % buckets_n) * kCapSize;
  UF_ASSIGN_OR_RETURN(Capability cursor, guest_->LoadCap(buckets, found.bucket_va));
  Capability prev;  // untagged
  std::vector<std::byte> key_buf;
  while (cursor.tag()) {
    UF_ASSIGN_OR_RETURN(const uint64_t key_len,
                        guest_->Load<uint64_t>(cursor, cursor.base() + kOffKeyLen));
    if (key_len == key.size()) {
      key_buf.resize(key_len);
      UF_RETURN_IF_ERROR(guest_->ReadBytes(cursor, cursor.base() + kOffKey, key_buf));
      if (std::memcmp(key_buf.data(), key.data(), key_len) == 0) {
        found.prev = prev;
        found.entry = cursor;
        return found;
      }
    }
    prev = cursor;
    UF_ASSIGN_OR_RETURN(cursor, guest_->LoadCap(cursor, cursor.base() + kOffNext));
  }
  found.prev = prev;
  found.entry = Capability::Integer(0);
  return found;
}

Result<void> GuestHashMap::Put(std::string_view key, std::span<const std::byte> value) {
  UF_ASSIGN_OR_RETURN(const Found found, Find(key));
  if (found.entry.tag()) {
    // Same-size values are updated in place; otherwise replace the value allocation.
    UF_ASSIGN_OR_RETURN(const uint64_t val_len,
                        guest_->Load<uint64_t>(found.entry, found.entry.base() + kOffValLen));
    UF_ASSIGN_OR_RETURN(const Capability old_value,
                        guest_->LoadCap(found.entry, found.entry.base() + kOffValueCap));
    if (val_len == value.size()) {
      return guest_->WriteBytes(old_value, old_value.base(), value);
    }
    UF_ASSIGN_OR_RETURN(const Capability new_value, guest_->Malloc(value.size()));
    UF_RETURN_IF_ERROR(guest_->WriteBytes(new_value, new_value.base(), value));
    UF_RETURN_IF_ERROR(
        guest_->StoreCap(found.entry, found.entry.base() + kOffValueCap, new_value));
    UF_RETURN_IF_ERROR(
        guest_->StoreAt<uint64_t>(found.entry, kOffValLen, value.size()));
    return guest_->Free(old_value);
  }
  UF_ASSIGN_OR_RETURN(const Capability value_block,
                      guest_->Malloc(std::max<uint64_t>(value.size(), 1)));
  UF_RETURN_IF_ERROR(guest_->WriteBytes(value_block, value_block.base(), value));
  UF_ASSIGN_OR_RETURN(const Capability entry, guest_->Malloc(kOffKey + key.size()));
  UF_ASSIGN_OR_RETURN(const Capability buckets, Buckets());
  UF_ASSIGN_OR_RETURN(const uint64_t buckets_n, BucketCount());
  const uint64_t bucket_va = buckets.base() + (Hash(key) % buckets_n) * kCapSize;
  UF_ASSIGN_OR_RETURN(const Capability head, guest_->LoadCap(buckets, bucket_va));
  UF_RETURN_IF_ERROR(guest_->StoreCap(entry, entry.base() + kOffNext, head));
  UF_RETURN_IF_ERROR(guest_->StoreCap(entry, entry.base() + kOffValueCap, value_block));
  UF_RETURN_IF_ERROR(guest_->StoreAt<uint64_t>(entry, kOffKeyLen, key.size()));
  UF_RETURN_IF_ERROR(guest_->StoreAt<uint64_t>(entry, kOffValLen, value.size()));
  UF_RETURN_IF_ERROR(guest_->WriteBytes(entry, entry.base() + kOffKey,
                                        std::as_bytes(std::span(key.data(), key.size()))));
  UF_RETURN_IF_ERROR(guest_->StoreCap(buckets, bucket_va, entry));
  UF_ASSIGN_OR_RETURN(const uint64_t size, Size());
  return guest_->StoreAt<uint64_t>(table_, kOffSize, size + 1);
}

Result<std::optional<std::vector<std::byte>>> GuestHashMap::Get(std::string_view key) {
  UF_ASSIGN_OR_RETURN(const Found found, Find(key));
  if (!found.entry.tag()) {
    return std::optional<std::vector<std::byte>>(std::nullopt);
  }
  UF_ASSIGN_OR_RETURN(const uint64_t val_len,
                      guest_->Load<uint64_t>(found.entry, found.entry.base() + kOffValLen));
  UF_ASSIGN_OR_RETURN(const Capability value_cap,
                      guest_->LoadCap(found.entry, found.entry.base() + kOffValueCap));
  std::vector<std::byte> value(val_len);
  UF_RETURN_IF_ERROR(guest_->ReadBytes(value_cap, value_cap.base(), value));
  return std::optional<std::vector<std::byte>>(std::move(value));
}

Result<bool> GuestHashMap::Erase(std::string_view key) {
  UF_ASSIGN_OR_RETURN(const Found found, Find(key));
  if (!found.entry.tag()) {
    return false;
  }
  UF_ASSIGN_OR_RETURN(const Capability next,
                      guest_->LoadCap(found.entry, found.entry.base() + kOffNext));
  if (found.prev.tag()) {
    UF_RETURN_IF_ERROR(guest_->StoreCap(found.prev, found.prev.base() + kOffNext, next));
  } else {
    UF_ASSIGN_OR_RETURN(const Capability buckets, Buckets());
    UF_RETURN_IF_ERROR(guest_->StoreCap(buckets, found.bucket_va, next));
  }
  UF_ASSIGN_OR_RETURN(const Capability value_cap,
                      guest_->LoadCap(found.entry, found.entry.base() + kOffValueCap));
  UF_RETURN_IF_ERROR(guest_->Free(value_cap));
  UF_RETURN_IF_ERROR(guest_->Free(found.entry));
  UF_ASSIGN_OR_RETURN(const uint64_t size, Size());
  UF_RETURN_IF_ERROR(guest_->StoreAt<uint64_t>(table_, kOffSize, size - 1));
  return true;
}

Result<void> GuestHashMap::ForEach(const Visitor& visit) {
  UF_ASSIGN_OR_RETURN(const uint64_t buckets_n, BucketCount());
  UF_ASSIGN_OR_RETURN(const Capability buckets, Buckets());
  std::vector<std::byte> key_buf;
  for (uint64_t i = 0; i < buckets_n; ++i) {
    UF_ASSIGN_OR_RETURN(Capability cursor,
                        guest_->LoadCap(buckets, buckets.base() + i * kCapSize));
    while (cursor.tag()) {
      UF_ASSIGN_OR_RETURN(const uint64_t key_len,
                          guest_->Load<uint64_t>(cursor, cursor.base() + kOffKeyLen));
      UF_ASSIGN_OR_RETURN(const uint64_t val_len,
                          guest_->Load<uint64_t>(cursor, cursor.base() + kOffValLen));
      key_buf.resize(key_len);
      UF_RETURN_IF_ERROR(guest_->ReadBytes(cursor, cursor.base() + kOffKey, key_buf));
      const std::string key(reinterpret_cast<const char*>(key_buf.data()), key_len);
      UF_ASSIGN_OR_RETURN(const Capability value_cap,
                          guest_->LoadCap(cursor, cursor.base() + kOffValueCap));
      UF_RETURN_IF_ERROR(visit(key, value_cap, val_len));
      UF_ASSIGN_OR_RETURN(cursor, guest_->LoadCap(cursor, cursor.base() + kOffNext));
    }
  }
  return OkResult();
}

}  // namespace ufork
