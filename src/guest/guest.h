// Guest facade: the "userspace view" of a μprocess.
//
// Guest programs are coroutines receiving a Guest&. The contract that makes the simulation
// faithful to the paper: ALL program state lives in simulated guest memory, reached only
// through capabilities — so fork really has to copy pages, relocate tagged pointers, and CoPA
// faults really fire. Host-side locals are restricted to transient scalars (loop counters,
// staging buffers for I/O), the analogue of machine registers and kernel buffers.
//
// fork(): POSIX fork returns twice in one program; a simulator cannot duplicate a host call
// stack, so Guest::Fork(child_fn) starts the child at an explicit entry over the duplicated,
// relocated guest image (see DESIGN.md substitutions). Everything the paper measures — memory
// duplication, relocation, isolation, CoW/CoA/CoPA behaviour — is preserved.
#ifndef UFORK_SRC_GUEST_GUEST_H_
#define UFORK_SRC_GUEST_GUEST_H_

#include <functional>
#include <string>
#include <vector>

#include "src/kernel/kernel.h"

namespace ufork {

class Guest;
using GuestFn = std::function<SimTask<void>(Guest&)>;

// Adapts a guest coroutine into a kernel UprocEntry: constructs the Guest facade and runs the
// C-runtime initialization (allocator, GOT) for fresh programs (fork children inherit a copied,
// relocated runtime instead — that is the whole point).
UprocEntry MakeGuestEntry(GuestFn fn);

// Well-known GOT slots installed by the guest runtime.
inline constexpr int kGotSlotHeapRoot = 0;
inline constexpr int kGotSlotDataSeg = 1;
inline constexpr int kGotSlotFirstUser = 2;

class Guest {
 public:
  Guest(Kernel& kernel, Uproc& uproc) : kernel_(kernel), uproc_(uproc) {}

  Kernel& kernel() { return kernel_; }
  Uproc& uproc() { return uproc_; }
  Pid pid() const { return uproc_.pid(); }
  uint64_t base() const { return uproc_.base; }
  const UprocLayout& layout() const { return kernel_.layout(); }
  const Capability& ddc() const { return uproc_.regs.ddc; }

  // C-runtime initialization for a fresh program image: heap allocator root + GOT entries.
  Result<void> InitRuntime();

  // --- memory access (charged, checked, CoW/CoPA-resolving) ------------------------------------

  Result<void> ReadBytes(const Capability& auth, uint64_t va, std::span<std::byte> out) {
    return kernel_.machine().Load(*uproc_.page_table, auth, va, out);
  }
  Result<void> WriteBytes(const Capability& auth, uint64_t va,
                          std::span<const std::byte> in) {
    return kernel_.machine().Store(*uproc_.page_table, auth, va, in);
  }
  template <typename T>
  Result<T> Load(const Capability& auth, uint64_t va) {
    return kernel_.machine().LoadScalar<T>(*uproc_.page_table, auth, va);
  }
  template <typename T>
  Result<void> Store(const Capability& auth, uint64_t va, T value) {
    return kernel_.machine().StoreScalar<T>(*uproc_.page_table, auth, va, value);
  }
  Result<Capability> LoadCap(const Capability& auth, uint64_t va) {
    return kernel_.machine().LoadCap(*uproc_.page_table, auth, va);
  }
  Result<void> StoreCap(const Capability& auth, uint64_t va, const Capability& value) {
    return kernel_.machine().StoreCap(*uproc_.page_table, auth, va, value);
  }
  Result<void> CopyBytes(const Capability& dst_auth, uint64_t dst, const Capability& src_auth,
                         uint64_t src, uint64_t size) {
    return kernel_.machine().Copy(*uproc_.page_table, dst_auth, dst, src_auth, src, size);
  }

  // Convenience: access through the cursor of a capability.
  template <typename T>
  Result<T> LoadAt(const Capability& cap, uint64_t offset = 0) {
    return Load<T>(cap, cap.address() + offset);
  }
  template <typename T>
  Result<void> StoreAt(const Capability& cap, uint64_t offset, T value) {
    return Store<T>(cap, cap.address() + offset, value);
  }

  // Algorithmic work: charges virtual CPU time (the analogue of running instructions).
  void Compute(Cycles cycles) { kernel_.sched().Charge(cycles); }

  // Affinity for future fork children (sched_setaffinity-then-fork). -1 = any core.
  void SetChildAffinity(int core) { uproc_.child_affinity = core; }

  // Frame-billing tenant for this μprocess and its future children (DESIGN.md §4.10).
  // Host-side bookkeeping only: no charge, no virtual-time effect.
  void SetTenant(TenantId tenant) { uproc_.tenant = tenant; }
  TenantId tenant() const { return uproc_.tenant; }

  // --- GOT (position-independent global access, §3.7) ------------------------------------------

  Result<void> GotStore(int slot, const Capability& value);
  Result<Capability> GotLoad(int slot);

  // --- heap -------------------------------------------------------------------------------------

  // Returns a capability tightly bounded to the allocation (16-byte aligned; large objects are
  // padded/aligned for representable bounds, see compressed_cap.h).
  Result<Capability> Malloc(uint64_t size);
  Result<void> Free(const Capability& allocation);

  // --- system calls -----------------------------------------------------------------------------

  // fork(2). TOOLCHAIN NOTE: if the child closure has non-trivially-destructible captures
  // (strings, vectors, std::function members), hoist it into a named GuestFn and pass
  // std::move(fn) — GCC 12 mis-destroys such temporaries when they span the co_await
  // suspension (regression-tested in tests/coroutine_lifetime_test.cc). Closures with only
  // trivially-destructible captures may be written inline.
  SimTask<Result<Pid>> Fork(GuestFn child_fn);
  SimTask<Result<WaitResult>> Wait() { return kernel_.SysWait(uproc_); }
  SimTask<void> Exit(int code) { return kernel_.SysExit(uproc_, code); }
  SimTask<Result<Pid>> GetPid() { return kernel_.SysGetPid(uproc_); }
  SimTask<Result<Pid>> GetPPid() { return kernel_.SysGetPPid(uproc_); }
  SimTask<Result<int>> Open(std::string path, uint32_t flags) {
    return kernel_.SysOpen(uproc_, std::move(path), flags);
  }
  SimTask<Result<void>> Close(int fd) { return kernel_.SysClose(uproc_, fd); }
  SimTask<Result<int64_t>> Read(int fd, const Capability& buf, uint64_t len) {
    return kernel_.SysRead(uproc_, fd, buf, buf.address(), len);
  }
  SimTask<Result<int64_t>> Write(int fd, const Capability& buf, uint64_t len) {
    return kernel_.SysWrite(uproc_, fd, buf, buf.address(), len);
  }
  SimTask<Result<int64_t>> Seek(int fd, int64_t offset, int whence) {
    return kernel_.SysSeek(uproc_, fd, offset, whence);
  }
  SimTask<Result<std::pair<int, int>>> Pipe() { return kernel_.SysPipe(uproc_); }
  SimTask<Result<int>> Dup2(int oldfd, int newfd) {
    return kernel_.SysDup2(uproc_, oldfd, newfd);
  }
  SimTask<Result<void>> Unlink(std::string path) {
    return kernel_.SysUnlink(uproc_, std::move(path));
  }
  SimTask<Result<void>> Rename(std::string from, std::string to) {
    return kernel_.SysRename(uproc_, std::move(from), std::move(to));
  }
  SimTask<Result<uint64_t>> FileSize(std::string path) {
    return kernel_.SysFileSize(uproc_, std::move(path));
  }
  SimTask<Result<int>> MqOpen(std::string name, bool create) {
    return kernel_.SysMqOpen(uproc_, std::move(name), create);
  }
  SimTask<Result<Capability>> MmapAnon(uint64_t length) {
    return kernel_.SysMmapAnon(uproc_, length);
  }
  SimTask<Result<uint64_t>> Sbrk(int64_t delta) { return kernel_.SysSbrk(uproc_, delta); }
  SimTask<Result<Capability>> MmapFile(std::string path, uint64_t length) {
    return kernel_.SysMmapFile(uproc_, std::move(path), length);
  }
  SimTask<Result<void>> Kill(Pid target, int signal = kSigKill) {
    return kernel_.SysKill(uproc_, target, signal);
  }
  // Installs a guest signal handler; pass nullptr to restore the default action.
  SimTask<Result<void>> Sigaction(int signal,
                                  std::function<SimTask<void>(Guest&, int)> handler);
  SimTask<Result<void>> CheckSignals() { return kernel_.SysCheckSignals(uproc_); }

  SimTask<Result<int>> ShmOpen(std::string name, uint64_t size) {
    return kernel_.SysShmOpen(uproc_, std::move(name), size);
  }
  SimTask<Result<Capability>> ShmMap(int shm_id) { return kernel_.SysShmMap(uproc_, shm_id); }
  SimTask<Result<void>> ShmUnlink(std::string name) {
    return kernel_.SysShmUnlink(uproc_, std::move(name));
  }

  // execve / posix_spawn over the kernel's registered program images.
  SimTask<Result<void>> Exec(std::string program) {
    return kernel_.SysExec(uproc_, std::move(program));
  }
  SimTask<Result<Pid>> SpawnProgram(std::string program) {
    return kernel_.SysSpawn(uproc_, std::move(program));
  }
  SimTask<Result<void>> Nanosleep(Cycles duration) {
    return kernel_.SysNanosleep(uproc_, duration);
  }
  // pthread-style threads within this μprocess. The thread closure follows the same GCC 12
  // hoisting rule as Fork's.
  SimTask<Result<ThreadId>> ThreadCreate(GuestFn fn);
  SimTask<Result<void>> ThreadJoin(ThreadId tid) { return kernel_.SysThreadJoin(uproc_, tid); }
  SimTask<Result<void>> FutexWait(const Capability& cap, uint64_t va, uint64_t expected) {
    return kernel_.SysFutexWait(uproc_, cap, va, expected);
  }
  SimTask<Result<uint64_t>> FutexWake(const Capability& cap, uint64_t va, uint64_t n = 1) {
    return kernel_.SysFutexWake(uproc_, cap, va, n);
  }
  SimTask<Result<void>> PrivilegedOp() { return kernel_.SysPrivilegedOp(uproc_); }

  // The guest runtime's trap vector (simulator substitution): a guest program that observes an
  // unresolvable kFault* error from a memory access reports it here, and the kernel delivers
  // SIGSEGV — terminating this μprocess (status 128 + SIGSEGV) unless a handler is installed.
  // On hardware the exception would enter the kernel directly; here the guest routes it.
  SimTask<void> RaiseFault(const Error& fault) { return kernel_.procs().RaiseFault(uproc_, fault); }

  // --- host <-> guest staging helpers -----------------------------------------------------------

  // Writes host bytes into a fresh guest allocation and returns its capability.
  Result<Capability> PlaceBytes(std::span<const std::byte> data);
  Result<Capability> PlaceString(const std::string& s);
  Result<std::vector<std::byte>> FetchBytes(const Capability& cap, uint64_t len);

 private:
  Kernel& kernel_;
  Uproc& uproc_;
};

}  // namespace ufork

#endif  // UFORK_SRC_GUEST_GUEST_H_
