// Coroutine task types for the discrete-event simulator.
//
// All guest programs and blocking kernel services are C++20 coroutines returning SimTask<T>.
// A SimTask is lazily started and awaitable: `co_await child` transfers control into the child
// symmetrically and resumes the parent when the child co_returns. Suspension *into the
// scheduler* (sleeping, blocking on a wait queue) happens through awaitables defined by the
// Scheduler; when any nested coroutine suspends that way, control unwinds to the scheduler's
// dispatch loop, which later resumes the innermost frame.
//
// Exceptions are not used for guest-visible errors (Result<T> carries those); an escaped
// exception inside a coroutine is a simulator bug and terminates.
#ifndef UFORK_SRC_SCHED_TASK_H_
#define UFORK_SRC_SCHED_TASK_H_

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "src/base/check.h"

namespace ufork {

template <typename T>
class SimTask;

namespace internal {

template <typename T>
struct PromiseBase {
  std::coroutine_handle<> continuation = std::noop_coroutine();

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> h) noexcept {
      return h.promise().continuation;
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() { std::terminate(); }
};

}  // namespace internal

// A lazily-started coroutine producing a value of type T when awaited.
template <typename T>
class [[nodiscard]] SimTask {
 public:
  struct promise_type : internal::PromiseBase<T> {
    std::optional<T> value;
    SimTask get_return_object() {
      return SimTask(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_value(T v) { value.emplace(std::move(v)); }
  };

  SimTask() = default;
  explicit SimTask(std::coroutine_handle<promise_type> h) : handle_(h) {}
  SimTask(SimTask&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  SimTask& operator=(SimTask&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  SimTask(const SimTask&) = delete;
  SimTask& operator=(const SimTask&) = delete;
  ~SimTask() { Destroy(); }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
    handle_.promise().continuation = cont;
    return handle_;
  }
  T await_resume() {
    UF_CHECK_MSG(handle_.promise().value.has_value(), "SimTask finished without a value");
    return std::move(*handle_.promise().value);
  }

  std::coroutine_handle<> raw_handle() const { return handle_; }
  bool done() const { return handle_ && handle_.done(); }

 private:
  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  std::coroutine_handle<promise_type> handle_;
};

template <>
class [[nodiscard]] SimTask<void> {
 public:
  struct promise_type : internal::PromiseBase<void> {
    SimTask get_return_object() {
      return SimTask(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() {}
  };

  SimTask() = default;
  explicit SimTask(std::coroutine_handle<promise_type> h) : handle_(h) {}
  SimTask(SimTask&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  SimTask& operator=(SimTask&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  SimTask(const SimTask&) = delete;
  SimTask& operator=(const SimTask&) = delete;
  ~SimTask() { Destroy(); }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
    handle_.promise().continuation = cont;
    return handle_;
  }
  void await_resume() {}

  std::coroutine_handle<> raw_handle() const { return handle_; }
  bool done() const { return handle_ && handle_.done(); }

 private:
  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  std::coroutine_handle<promise_type> handle_;
};

}  // namespace ufork

#endif  // UFORK_SRC_SCHED_TASK_H_
