// Virtual-time synchronization primitives.
//
// VirtualLock models Unikraft's "big kernel lock" SMP mode (paper §4.5): application code runs
// concurrently across simulated cores, but kernel code execution serializes on this lock.
//
// Because the host executes one slice at a time while simulating parallel cores, the lock must
// be *time-aware*: it records the virtual time of the last release (free_at_), and an acquirer
// whose clock is behind that time waits until it — otherwise a thread whose slice was
// host-executed later could observe a release from its virtual future. Handoff to blocked
// waiters is FIFO.
#ifndef UFORK_SRC_SCHED_SYNC_H_
#define UFORK_SRC_SCHED_SYNC_H_

#include <array>
#include <atomic>
#include <memory>
#include <mutex>

#include "src/sched/scheduler.h"
#include "src/sched/task.h"

namespace ufork {

class VirtualLock {
 public:
  explicit VirtualLock(Scheduler& sched) : sched_(sched), queue_(sched) {}

  VirtualLock(const VirtualLock&) = delete;
  VirtualLock& operator=(const VirtualLock&) = delete;

  // Awaitable acquire: `co_await lock.Acquire()`. Returns holding the lock.
  SimTask<void> Acquire() {
    for (;;) {
      if (held_) {
        co_await queue_.Wait();  // woken by Release at the releaser's virtual time
        continue;
      }
      const Cycles now = sched_.Now();
      if (now < free_at_) {
        // The lock was released in this thread's virtual future; wait it out.
        co_await sched_.Sleep(free_at_ - now);
        continue;
      }
      held_ = true;
      owner_ = sched_.InThread() ? sched_.Current().tid() : kInvalidThread;
      co_return;
    }
  }

  void Release() {
    UF_CHECK_MSG(held_, "releasing an unheld VirtualLock");
    UF_CHECK_MSG(!sched_.InThread() || owner_ == sched_.Current().tid(),
                 "VirtualLock released by a non-owner");
    held_ = false;
    owner_ = kInvalidThread;
    if (sched_.Now() > free_at_) {
      free_at_ = sched_.Now();
    }
    queue_.Wake(1);
  }

  bool held() const { return held_; }
  uint64_t waiters() const { return queue_.size(); }

 private:
  Scheduler& sched_;
  WaitQueue queue_;
  bool held_ = false;
  ThreadId owner_ = kInvalidThread;
  Cycles free_at_ = 0;
};

// How kernel code serializes across simulated cores.
enum class LockMode : uint8_t {
  kBigKernelLock,  // one lock for all kernel sections — Unikraft's SMP mode (paper §4.5)
  kPerService,     // one VirtualLock per LockDomain: fine-grained locking, honestly modeled
                   // (cross-domain syscalls run concurrently, same-domain ones serialize)
  kUncontended,    // no kernel locks at all: the idealized fine-grained kernel the MAS
                   // baseline calibration assumes (contention never appears in its figures)
};

const char* LockModeName(LockMode mode);

// The coarse-grained subsystems kernel sections belong to. Each syscall declares its domain in
// the syscall table; SyscallScope acquires the domain's lock.
enum class LockDomain : uint8_t {
  kProc = 0,     // process lifecycle: fork/wait/exit/signals/exec/threads
  kFile = 1,     // VFS and descriptor table operations
  kIpc = 2,      // pipes, message queues, shared memory, futexes
  kCompact = 3,  // background compaction/revocation service quanta (DESIGN.md §4.13)
};

inline constexpr size_t kNumLockDomains = 4;

const char* LockDomainName(LockDomain domain);

// Maps lock domains to VirtualLocks per the configured mode.
//
// Under kBigKernelLock every domain resolves to the SAME lock, which makes the refactored
// per-domain acquire bit-identical (in virtual cycles) to the historical single-BKL kernel:
// the golden-cycle pins rely on this. kPerService gives each domain its own lock;
// kUncontended resolves every domain to nullptr (callers skip acquisition entirely).
class LockDomainSet {
 public:
  LockDomainSet(Scheduler& sched, LockMode mode) : mode_(mode) {
    switch (mode) {
      case LockMode::kBigKernelLock:
        locks_[0] = std::make_unique<VirtualLock>(sched);
        break;
      case LockMode::kPerService:
        for (auto& lock : locks_) {
          lock = std::make_unique<VirtualLock>(sched);
        }
        break;
      case LockMode::kUncontended:
        break;
    }
  }

  LockDomainSet(const LockDomainSet&) = delete;
  LockDomainSet& operator=(const LockDomainSet&) = delete;

  // The lock guarding `domain`, or nullptr when kernel sections run lock-free.
  VirtualLock* Get(LockDomain domain) {
    switch (mode_) {
      case LockMode::kBigKernelLock:
        return locks_[0].get();
      case LockMode::kPerService:
        return locks_[static_cast<size_t>(domain)].get();
      case LockMode::kUncontended:
        return nullptr;
    }
    return nullptr;
  }

  LockMode mode() const { return mode_; }

 private:
  LockMode mode_;
  std::array<std::unique_ptr<VirtualLock>, kNumLockDomains> locks_;
};

// Host-thread mutual exclusion for kernel sections in sharded mode (DESIGN.md §4.11).
//
// When the scheduler runs shards on real host threads, VirtualLocks no longer provide mutual
// exclusion (they model contention in virtual time but assume one host thread). The kernel
// instead takes a real std::mutex per lock domain, mapped exactly like LockDomainSet maps
// VirtualLocks: kBigKernelLock folds every domain onto one mutex, kPerService gives each
// domain its own. kUncontended is rejected by the kernel when sharded — real threads need
// real exclusion. Host mutex hold times charge no virtual cycles: cross-shard kernel-section
// contention is a host-level artifact, not part of the simulated machine.
//
// Lock/Unlock record the owning simulated thread so SyscallScope can assert that the thread
// releasing a domain is the thread that acquired it (the executing-thread ownership check).
class HostLockDomainSet {
 public:
  explicit HostLockDomainSet(LockMode mode) : mode_(mode) {
    for (auto& owner : owners_) {
      owner.store(kInvalidThread, std::memory_order_relaxed);
    }
  }

  HostLockDomainSet(const HostLockDomainSet&) = delete;
  HostLockDomainSet& operator=(const HostLockDomainSet&) = delete;

  void Lock(LockDomain domain, ThreadId owner) {
    const size_t i = IndexOf(domain);
    mutexes_[i].lock();
    owners_[i].store(owner, std::memory_order_relaxed);
  }

  void Unlock(LockDomain domain, ThreadId owner) {
    const size_t i = IndexOf(domain);
    UF_CHECK_MSG(owners_[i].load(std::memory_order_relaxed) == owner,
                 "domain host mutex released by a thread that does not own it");
    owners_[i].store(kInvalidThread, std::memory_order_relaxed);
    mutexes_[i].unlock();
  }

  ThreadId OwnerOf(LockDomain domain) const {
    return owners_[IndexOf(domain)].load(std::memory_order_relaxed);
  }

 private:
  size_t IndexOf(LockDomain domain) const {
    return mode_ == LockMode::kBigKernelLock ? 0 : static_cast<size_t>(domain);
  }

  LockMode mode_;
  std::array<std::mutex, kNumLockDomains> mutexes_;
  std::array<std::atomic<ThreadId>, kNumLockDomains> owners_;
};

inline const char* LockModeName(LockMode mode) {
  switch (mode) {
    case LockMode::kBigKernelLock:
      return "bkl";
    case LockMode::kPerService:
      return "per-service";
    case LockMode::kUncontended:
      return "uncontended";
  }
  return "?";
}

inline const char* LockDomainName(LockDomain domain) {
  switch (domain) {
    case LockDomain::kProc:
      return "proc";
    case LockDomain::kFile:
      return "file";
    case LockDomain::kIpc:
      return "ipc";
    case LockDomain::kCompact:
      return "compact";
  }
  return "?";
}

}  // namespace ufork

#endif  // UFORK_SRC_SCHED_SYNC_H_
