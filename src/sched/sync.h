// Virtual-time synchronization primitives.
//
// VirtualLock models Unikraft's "big kernel lock" SMP mode (paper §4.5): application code runs
// concurrently across simulated cores, but kernel code execution serializes on this lock.
//
// Because the host executes one slice at a time while simulating parallel cores, the lock must
// be *time-aware*: it records the virtual time of the last release (free_at_), and an acquirer
// whose clock is behind that time waits until it — otherwise a thread whose slice was
// host-executed later could observe a release from its virtual future. Handoff to blocked
// waiters is FIFO.
#ifndef UFORK_SRC_SCHED_SYNC_H_
#define UFORK_SRC_SCHED_SYNC_H_

#include "src/sched/scheduler.h"
#include "src/sched/task.h"

namespace ufork {

class VirtualLock {
 public:
  explicit VirtualLock(Scheduler& sched) : sched_(sched), queue_(sched) {}

  VirtualLock(const VirtualLock&) = delete;
  VirtualLock& operator=(const VirtualLock&) = delete;

  // Awaitable acquire: `co_await lock.Acquire()`. Returns holding the lock.
  SimTask<void> Acquire() {
    for (;;) {
      if (held_) {
        co_await queue_.Wait();  // woken by Release at the releaser's virtual time
        continue;
      }
      const Cycles now = sched_.Now();
      if (now < free_at_) {
        // The lock was released in this thread's virtual future; wait it out.
        co_await sched_.Sleep(free_at_ - now);
        continue;
      }
      held_ = true;
      owner_ = sched_.InThread() ? sched_.Current().tid() : kInvalidThread;
      co_return;
    }
  }

  void Release() {
    UF_CHECK_MSG(held_, "releasing an unheld VirtualLock");
    UF_CHECK_MSG(!sched_.InThread() || owner_ == sched_.Current().tid(),
                 "VirtualLock released by a non-owner");
    held_ = false;
    owner_ = kInvalidThread;
    if (sched_.Now() > free_at_) {
      free_at_ = sched_.Now();
    }
    queue_.Wake(1);
  }

  bool held() const { return held_; }
  uint64_t waiters() const { return queue_.size(); }

 private:
  Scheduler& sched_;
  WaitQueue queue_;
  bool held_ = false;
  ThreadId owner_ = kInvalidThread;
  Cycles free_at_ = 0;
};

}  // namespace ufork

#endif  // UFORK_SRC_SCHED_SYNC_H_
