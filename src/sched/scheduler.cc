#include "src/sched/scheduler.h"

#include <algorithm>
#include <barrier>
#include <thread>

#include "src/base/host_shard.h"
#include "src/base/log.h"

namespace ufork {

thread_local Scheduler::ExecContext Scheduler::tls_exec_;

Scheduler::Scheduler(int num_cores, const ShardConfig& shard_config)
    : sharded_(shard_config.shards > 1),
      cores_per_shard_(num_cores / std::max(1, shard_config.shards)),
      epoch_quantum_(shard_config.epoch_quantum) {
  UF_CHECK(num_cores >= 1);
  UF_CHECK(shard_config.shards >= 1);
  UF_CHECK_MSG(num_cores % shard_config.shards == 0,
               "core count must be divisible by the shard count");
  cores_.resize(static_cast<size_t>(num_cores));
  shards_.resize(static_cast<size_t>(shard_config.shards));
  for (size_t s = 0; s < shards_.size(); ++s) {
    shards_[s].index = static_cast<int>(s);
    shards_[s].core_lo = static_cast<int>(s) * cores_per_shard_;
    shards_[s].core_hi = shards_[s].core_lo + cores_per_shard_;
  }
}

int Scheduler::TargetShard(int pinned_core, int shard_hint) const {
  if (!sharded_) {
    return 0;
  }
  if (pinned_core >= 0) {
    return pinned_core / cores_per_shard_;
  }
  if (shard_hint >= 0) {
    UF_CHECK(shard_hint < num_shards());
    return shard_hint;
  }
  if (tls_exec_.sched == this && tls_exec_.shard >= 0) {
    return tls_exec_.shard;  // inherit the spawner's shard
  }
  return 0;
}

ThreadId Scheduler::Spawn(SimTask<void> task, std::string name, int pinned_core,
                          int shard_hint) {
  UF_CHECK(pinned_core >= -1 && pinned_core < num_cores());
  const int shard = TargetShard(pinned_core, shard_hint);
  auto thread = std::make_unique<SimThread>();
  SimThread* t = thread.get();
  t->name_ = std::move(name);
  t->root_ = std::move(task);
  t->resume_point_ = t->root_.raw_handle();
  t->pinned_core_ = pinned_core;
  t->shard_ = shard;
  const Cycles at = Now();
  {
    std::lock_guard<std::mutex> lk(spawn_mu_);
    t->tid_ = threads_.size();
    threads_.push_back(std::move(thread));
  }
  const bool remote = sharded_ && parallel_phase_.load(std::memory_order_relaxed) &&
                      tls_exec_.shard != shard;
  if (remote) {
    // The spawn-order seq is assigned from the target shard's counter when the event is
    // delivered at the barrier, keeping the tie-break deterministic on the owning shard.
    EnqueueEvent(ShardEvent::Kind::kSpawn, t, at);
  } else {
    t->seq_ = shards_[static_cast<size_t>(shard)].next_seq++;
    MakeReady(t, at);
  }
  return t->tid_;
}

void Scheduler::MakeReady(SimThread* thread, Cycles at) {
  thread->set_state(SimThread::State::kReady);
  thread->set_ready_time(at);
  shards_[static_cast<size_t>(thread->shard_)].ready.push_back(thread);
}

void Scheduler::EnqueueEvent(ShardEvent::Kind kind, SimThread* thread, Cycles at) {
  UF_CHECK(tls_exec_.sched == this && tls_exec_.shard >= 0);
  Shard& src = shards_[static_cast<size_t>(tls_exec_.shard)];
  std::lock_guard<std::mutex> lk(events_mu_);
  events_.push_back(ShardEvent{kind, thread, at, static_cast<uint32_t>(src.index),
                               src.event_seq++});
}

bool Scheduler::RouteWake(SimThread* thread, Cycles wake_time, Cycles resume_delay) {
  const bool remote = sharded_ && parallel_phase_.load(std::memory_order_relaxed) &&
                      tls_exec_.sched == this && tls_exec_.shard != thread->shard_;
  if (!remote) {
    if (thread->state() != SimThread::State::kBlocked) {
      return false;  // killed while blocked, or never blocked
    }
    MakeReady(thread, std::max(thread->ready_time(), wake_time) + resume_delay);
    return true;
  }
  // Cross-shard: deliver at the next epoch barrier. The target may still be mid-slice (it
  // pushed itself onto the wait queue but its shard has not marked it blocked yet), so state
  // is validated at delivery, not here. The virtual arrival time is stamped now, from the
  // sender's clock: barrier placement delays host time only.
  EnqueueEvent(ShardEvent::Kind::kWake, thread, wake_time + resume_delay);
  return true;
}

SimThread* Scheduler::PickNext(Shard& shard, Cycles horizon, int* core_out,
                               Cycles* start_out) {
  // Among ready threads, choose the (thread, core) pair with the earliest feasible start.
  // Ties: earlier ready time, then spawn order. O(ready × cores) per dispatch; both are small.
  SimThread* best = nullptr;
  int best_core = -1;
  Cycles best_start = 0;
  size_t best_index = 0;
  std::vector<SimThread*>& ready = shard.ready;
  for (size_t i = 0; i < ready.size(); ++i) {
    SimThread* t = ready[i];
    const int lo = t->pinned_core_ >= 0 ? t->pinned_core_ : shard.core_lo;
    const int hi = t->pinned_core_ >= 0 ? t->pinned_core_ + 1 : shard.core_hi;
    for (int c = lo; c < hi; ++c) {
      const Cycles start = std::max(t->ready_time(), cores_[static_cast<size_t>(c)].free_at);
      const bool better =
          best == nullptr || start < best_start ||
          (start == best_start &&
           (t->ready_time() < best->ready_time() ||
            (t->ready_time() == best->ready_time() && t->seq_ < best->seq_)));
      if (better) {
        best = t;
        best_core = c;
        best_start = start;
        best_index = i;
      }
    }
  }
  if (best != nullptr && best_start >= horizon) {
    return nullptr;  // earliest feasible start falls in a later epoch; leave it queued
  }
  if (best != nullptr) {
    ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(best_index));
    *core_out = best_core;
    *start_out = best_start;
  }
  return best;
}

Cycles Scheduler::NextStartOf(const Shard& shard) const {
  Cycles best = kNoCycleLimit;
  for (const SimThread* t : shard.ready) {
    const int lo = t->pinned_core_ >= 0 ? t->pinned_core_ : shard.core_lo;
    const int hi = t->pinned_core_ >= 0 ? t->pinned_core_ + 1 : shard.core_hi;
    for (int c = lo; c < hi; ++c) {
      best = std::min(best,
                      std::max(t->ready_time(), cores_[static_cast<size_t>(c)].free_at));
    }
  }
  return best;
}

void Scheduler::RunShardUntil(Shard& shard, Cycles horizon) {
  tls_exec_ = ExecContext{this, shard.index, nullptr};
  tls_host_shard = sharded_ ? shard.index : -1;
  while (true) {
    int core_index = -1;
    Cycles start = 0;
    SimThread* t = PickNext(shard, horizon, &core_index, &start);
    if (t == nullptr) {
      break;
    }
    Core& core = cores_[static_cast<size_t>(core_index)];

    if (core.last_thread != t) {
      ++shard.context_switches;
      if (context_switch_hook_) {
        start += context_switch_hook_(core.last_thread, t);
      }
    }

    t->set_state(SimThread::State::kRunning);
    t->slice_start_ = start;
    t->charged_ = 0;
    t->pending_ = SimThread::Pending::kNone;
    tls_exec_.thread = t;
    if (!sharded_) {
      current_ = t;  // member mirror: the unsharded Charge fast path reads this, not TLS
    }
    ++shard.slices;

    const std::coroutine_handle<> resume_point = t->resume_point_;
    t->resume_point_ = nullptr;
    resume_point.resume();

    tls_exec_.thread = nullptr;
    if (!sharded_) {
      current_ = nullptr;
    }
    const Cycles end = t->slice_start_ + t->charged_;
    core.free_at = end;
    core.last_thread = t;
    shard.completion = std::max(shard.completion, end);

    switch (t->pending_) {
      case SimThread::Pending::kNone:
        // No scheduler awaitable captured a resume point: the root coroutine ran to completion.
        UF_CHECK_MSG(t->root_.done(), "thread suspended outside a scheduler awaitable");
        FinishThread(t);
        break;
      case SimThread::Pending::kYield:
      case SimThread::Pending::kSleep:
        MakeReady(t, end + t->pending_sleep_);
        t->pending_sleep_ = 0;
        break;
      case SimThread::Pending::kBlock:
        // Block timestamp; Wake() raises it to the waker's time. Order matters for remote
        // wakes validated at the barrier: the timestamp must be in place before the state.
        t->set_ready_time(end);
        t->set_state(SimThread::State::kBlocked);
        break;
      case SimThread::Pending::kExit:
        FinishThread(t);
        break;
    }
  }
  tls_exec_ = ExecContext{};
  tls_host_shard = -1;
}

void Scheduler::DrainBarrierEvents() {
  std::vector<ShardEvent> events;
  {
    std::lock_guard<std::mutex> lk(events_mu_);
    events.swap(events_);
  }
  // Deterministic merge: virtual arrival time, then sending shard, then the sender's own
  // emission order. Every key component is a pure function of shard-local execution, so the
  // drain order is independent of host thread timing.
  std::stable_sort(events.begin(), events.end(),
                   [](const ShardEvent& a, const ShardEvent& b) {
                     if (a.at != b.at) return a.at < b.at;
                     if (a.src_shard != b.src_shard) return a.src_shard < b.src_shard;
                     return a.src_seq < b.src_seq;
                   });
  for (const ShardEvent& e : events) {
    if (e.thread->state() == SimThread::State::kDone) {
      continue;  // killed before delivery
    }
    switch (e.kind) {
      case ShardEvent::Kind::kSpawn:
        e.thread->seq_ = shards_[static_cast<size_t>(e.thread->shard_)].next_seq++;
        MakeReady(e.thread, e.at);
        break;
      case ShardEvent::Kind::kWake:
        if (e.thread->state() == SimThread::State::kBlocked) {
          // Re-max against the authoritative block timestamp: the sender may have raced the
          // target's suspension and read a stale ready time.
          MakeReady(e.thread, std::max(e.thread->ready_time(), e.at));
        }
        break;
    }
  }
}

void Scheduler::Run() {
  if (!sharded_) {
    RunShardUntil(shards_[0], kNoCycleLimit);
    CheckBlockedExit();
    return;
  }
  RunSharded();
}

void Scheduler::RunSharded() {
  const size_t n = shards_.size();
  std::barrier<> start_gate(static_cast<std::ptrdiff_t>(n + 1));
  std::barrier<> end_gate(static_cast<std::ptrdiff_t>(n + 1));
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  workers.reserve(n);
  for (size_t s = 0; s < n; ++s) {
    workers.emplace_back([this, s, &start_gate, &end_gate, &stop] {
      for (;;) {
        start_gate.arrive_and_wait();
        if (stop.load(std::memory_order_acquire)) {
          return;
        }
        RunShardUntil(shards_[s], horizon_);
        end_gate.arrive_and_wait();
      }
    });
  }

  for (;;) {
    // Coordinator section: all shards quiescent (or not yet started). Mailbox events first,
    // then the kernel's barrier hooks (deferred cross-shard teardown), which may ready more
    // threads directly.
    DrainBarrierEvents();
    for (const auto& hook : barrier_hooks_) {
      hook();
    }
    Cycles next = kNoCycleLimit;
    for (const Shard& sh : shards_) {
      next = std::min(next, NextStartOf(sh));
    }
    if (next == kNoCycleLimit) {
      break;  // no runnable thread anywhere, and the drain produced none
    }
    // Advance the coordinator clock so out-of-thread charges/wakes made by barrier hooks are
    // stamped no earlier than the work they follow.
    Cycles boot = boot_clock_.load(std::memory_order_relaxed);
    if (boot < next) {
      boot_clock_.store(next, std::memory_order_relaxed);
    }
    horizon_ = next + epoch_quantum_;
    parallel_phase_.store(true, std::memory_order_release);
    start_gate.arrive_and_wait();
    end_gate.arrive_and_wait();
    parallel_phase_.store(false, std::memory_order_release);
  }

  stop.store(true, std::memory_order_release);
  start_gate.arrive_and_wait();
  for (std::thread& w : workers) {
    w.join();
  }
  CheckBlockedExit();
}

void Scheduler::CheckBlockedExit() const {
  if (allow_blocked_exit_) {
    return;
  }
  std::lock_guard<std::mutex> lk(spawn_mu_);
  for (const auto& t : threads_) {
    UF_CHECK_MSG(t == nullptr || t->state() != SimThread::State::kBlocked,
                 "deadlock: thread still blocked when the scheduler drained");
  }
}

void Scheduler::FinishThread(SimThread* thread) {
  thread->set_state(SimThread::State::kDone);
  DestroyThread(thread);
}

void Scheduler::DestroyThread(SimThread* thread) {
  const Shard& sh = shards_[static_cast<size_t>(thread->shard_)];
  for (int c = sh.core_lo; c < sh.core_hi; ++c) {
    if (cores_[static_cast<size_t>(c)].last_thread == thread) {
      cores_[static_cast<size_t>(c)].last_thread = nullptr;
    }
  }
  thread->set_state(SimThread::State::kDone);
  // Destroys the root coroutine frame and, transitively, every nested frame. The SimThread
  // control block itself stays alive for the scheduler's lifetime so that stale pointers held
  // by wait queues remain safe to inspect (they skip kDone threads).
  thread->root_ = SimTask<void>();
  thread->resume_point_ = nullptr;
}

SimThread* Scheduler::ThreadAt(ThreadId tid) const {
  std::lock_guard<std::mutex> lk(spawn_mu_);
  UF_CHECK(tid < threads_.size());
  return threads_[tid].get();
}

void Scheduler::Kill(ThreadId tid) {
  SimThread* t = ThreadAt(tid);
  if (t == nullptr || t->state() == SimThread::State::kDone) {
    return;  // already finished
  }
  UF_CHECK_MSG(t != tls_exec_.thread,
               "a thread cannot Kill itself; co_await ExitThread() instead");
  UF_CHECK_MSG(!(sharded_ && parallel_phase_.load(std::memory_order_relaxed)) ||
                   (tls_exec_.sched == this && tls_exec_.shard == t->shard_),
               "cross-shard Kill during an epoch; defer it to a barrier "
               "(KernelCore::QueueCrossShardKill)");
  if (t->state() == SimThread::State::kReady) {
    auto& ready = shards_[static_cast<size_t>(t->shard_)].ready;
    ready.erase(std::remove(ready.begin(), ready.end(), t), ready.end());
  }
  // Blocked threads are removed from their wait queue by the owner (WaitQueue::Remove); a
  // dangling waiter entry is tolerated: Wake() skips dead threads.
  DestroyThread(t);
}

bool Scheduler::IsAlive(ThreadId tid) const {
  std::lock_guard<std::mutex> lk(spawn_mu_);
  return tid < threads_.size() && threads_[tid] != nullptr &&
         threads_[tid]->state() != SimThread::State::kDone;
}

bool Scheduler::IsBlocked(ThreadId tid) const {
  std::lock_guard<std::mutex> lk(spawn_mu_);
  return tid < threads_.size() && threads_[tid] != nullptr &&
         threads_[tid]->state() == SimThread::State::kBlocked;
}

void Scheduler::SetThreadContext(ThreadId tid, void* context) {
  SimThread* t = ThreadAt(tid);
  UF_CHECK(t != nullptr);
  t->set_context(context);
}

int Scheduler::ThreadShard(ThreadId tid) const {
  SimThread* t = ThreadAt(tid);
  UF_CHECK(t != nullptr);
  return t->shard_;
}

Cycles Scheduler::CompletionTime() const {
  Cycles max_completion = 0;
  for (const Shard& sh : shards_) {
    max_completion = std::max(max_completion, sh.completion);
  }
  return max_completion;
}

uint64_t Scheduler::context_switches() const {
  uint64_t total = 0;
  for (const Shard& sh : shards_) {
    total += sh.context_switches;
  }
  return total;
}

uint64_t Scheduler::slices_executed() const {
  uint64_t total = 0;
  for (const Shard& sh : shards_) {
    total += sh.slices;
  }
  return total;
}

uint64_t WaitQueue::Wake(uint64_t n) {
  const Cycles wake_time = sched_.Now();
  uint64_t woken = 0;
  std::lock_guard<std::mutex> lk(mu_);
  while (woken < n && !waiters_.empty()) {
    SimThread* t = waiters_.front();
    waiters_.pop_front();
    if (t->state() == SimThread::State::kDone) {
      continue;  // killed while blocked
    }
    if (sched_.RouteWake(t, wake_time, resume_delay_)) {
      ++woken;
    }
  }
  return woken;
}

bool WaitQueue::Remove(SimThread* thread) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = std::find(waiters_.begin(), waiters_.end(), thread);
  if (it == waiters_.end()) {
    return false;
  }
  waiters_.erase(it);
  return true;
}

}  // namespace ufork
