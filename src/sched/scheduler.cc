#include "src/sched/scheduler.h"

#include <algorithm>

#include "src/base/log.h"

namespace ufork {

Scheduler::Scheduler(int num_cores) {
  UF_CHECK(num_cores >= 1);
  cores_.resize(static_cast<size_t>(num_cores));
}

ThreadId Scheduler::Spawn(SimTask<void> task, std::string name, int pinned_core) {
  UF_CHECK(pinned_core >= -1 && pinned_core < num_cores());
  auto thread = std::make_unique<SimThread>();
  SimThread* t = thread.get();
  t->tid_ = threads_.size();
  t->name_ = std::move(name);
  t->root_ = std::move(task);
  t->resume_point_ = t->root_.raw_handle();
  t->pinned_core_ = pinned_core;
  t->seq_ = next_seq_++;
  threads_.push_back(std::move(thread));
  MakeReady(t, Now());
  return t->tid_;
}

void Scheduler::MakeReady(SimThread* thread, Cycles at) {
  thread->state_ = SimThread::State::kReady;
  thread->ready_time_ = at;
  ready_.push_back(thread);
}

SimThread* Scheduler::PickNext(int* core_out, Cycles* start_out) {
  // Among ready threads, choose the (thread, core) pair with the earliest feasible start.
  // Ties: earlier ready time, then spawn order. O(ready × cores) per dispatch; both are small.
  SimThread* best = nullptr;
  int best_core = -1;
  Cycles best_start = 0;
  size_t best_index = 0;
  for (size_t i = 0; i < ready_.size(); ++i) {
    SimThread* t = ready_[i];
    const int lo = t->pinned_core_ >= 0 ? t->pinned_core_ : 0;
    const int hi = t->pinned_core_ >= 0 ? t->pinned_core_ + 1 : num_cores();
    for (int c = lo; c < hi; ++c) {
      const Cycles start = std::max(t->ready_time_, cores_[static_cast<size_t>(c)].free_at);
      const bool better =
          best == nullptr || start < best_start ||
          (start == best_start &&
           (t->ready_time_ < best->ready_time_ ||
            (t->ready_time_ == best->ready_time_ && t->seq_ < best->seq_)));
      if (better) {
        best = t;
        best_core = c;
        best_start = start;
        best_index = i;
      }
    }
  }
  if (best != nullptr) {
    ready_.erase(ready_.begin() + static_cast<std::ptrdiff_t>(best_index));
    *core_out = best_core;
    *start_out = best_start;
  }
  return best;
}

void Scheduler::Run() {
  while (!ready_.empty()) {
    int core_index = -1;
    Cycles start = 0;
    SimThread* t = PickNext(&core_index, &start);
    UF_CHECK(t != nullptr);
    Core& core = cores_[static_cast<size_t>(core_index)];

    if (core.last_thread != t) {
      ++context_switches_;
      if (context_switch_hook_) {
        start += context_switch_hook_(core.last_thread, t);
      }
    }

    t->state_ = SimThread::State::kRunning;
    t->slice_start_ = start;
    t->charged_ = 0;
    t->pending_ = SimThread::Pending::kNone;
    current_ = t;
    ++slices_executed_;

    const std::coroutine_handle<> resume_point = t->resume_point_;
    t->resume_point_ = nullptr;
    resume_point.resume();

    current_ = nullptr;
    const Cycles end = t->slice_start_ + t->charged_;
    core.free_at = end;
    core.last_thread = t;
    completion_time_ = std::max(completion_time_, end);

    switch (t->pending_) {
      case SimThread::Pending::kNone:
        // No scheduler awaitable captured a resume point: the root coroutine ran to completion.
        UF_CHECK_MSG(t->root_.done(), "thread suspended outside a scheduler awaitable");
        FinishThread(t);
        break;
      case SimThread::Pending::kYield:
      case SimThread::Pending::kSleep:
        MakeReady(t, end + t->pending_sleep_);
        t->pending_sleep_ = 0;
        break;
      case SimThread::Pending::kBlock:
        t->state_ = SimThread::State::kBlocked;
        t->ready_time_ = end;  // block timestamp; Wake() raises it to the waker's time
        break;
      case SimThread::Pending::kExit:
        FinishThread(t);
        break;
    }
  }

  if (!allow_blocked_exit_) {
    for (const auto& t : threads_) {
      UF_CHECK_MSG(t == nullptr || t->state_ != SimThread::State::kBlocked,
                   "deadlock: thread still blocked when the scheduler drained");
    }
  }
}

void Scheduler::FinishThread(SimThread* thread) {
  thread->state_ = SimThread::State::kDone;
  DestroyThread(thread);
}

void Scheduler::DestroyThread(SimThread* thread) {
  for (auto& core : cores_) {
    if (core.last_thread == thread) {
      core.last_thread = nullptr;
    }
  }
  thread->state_ = SimThread::State::kDone;
  // Destroys the root coroutine frame and, transitively, every nested frame. The SimThread
  // control block itself stays alive for the scheduler's lifetime so that stale pointers held
  // by wait queues remain safe to inspect (they skip kDone threads).
  thread->root_ = SimTask<void>();
  thread->resume_point_ = nullptr;
}

void Scheduler::Kill(ThreadId tid) {
  UF_CHECK(tid < threads_.size());
  SimThread* t = threads_[tid].get();
  if (t == nullptr || t->state_ == SimThread::State::kDone) {
    return;  // already finished
  }
  UF_CHECK_MSG(t != current_, "a thread cannot Kill itself; co_await ExitThread() instead");
  if (t->state_ == SimThread::State::kReady) {
    ready_.erase(std::remove(ready_.begin(), ready_.end(), t), ready_.end());
  }
  // Blocked threads are removed from their wait queue by the owner (WaitQueue::Remove); a
  // dangling waiter entry is tolerated: Wake() skips dead threads via IsAlive.
  DestroyThread(t);
}

bool Scheduler::IsAlive(ThreadId tid) const {
  return tid < threads_.size() && threads_[tid] != nullptr &&
         threads_[tid]->state() != SimThread::State::kDone;
}

Cycles Scheduler::CompletionTime() const { return completion_time_; }

uint64_t WaitQueue::Wake(uint64_t n) {
  const Cycles wake_time = sched_.Now();
  uint64_t woken = 0;
  while (woken < n && !waiters_.empty()) {
    SimThread* t = waiters_.front();
    waiters_.pop_front();
    if (!sched_.IsAlive(t->tid()) || t->state_ != SimThread::State::kBlocked) {
      continue;  // killed while blocked
    }
    sched_.MakeReady(t, std::max(t->ready_time_, wake_time) + resume_delay_);
    ++woken;
  }
  return woken;
}

bool WaitQueue::Remove(SimThread* thread) {
  auto it = std::find(waiters_.begin(), waiters_.end(), thread);
  if (it == waiters_.end()) {
    return false;
  }
  waiters_.erase(it);
  return true;
}

}  // namespace ufork
