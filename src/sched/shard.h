// Shard configuration and the deterministic μprocess placement policy (DESIGN.md §4.11).
//
// A sharded scheduler splits its simulated cores into N disjoint shards, each driven by one
// host worker thread. Placement of a new μprocess thread onto a shard must be a pure function
// of guest-visible state — never of host timing — or two runs of the same seed would put the
// same pid on different shards and diverge. The policy here hashes the pid (itself allocated
// from per-shard strides, so pids are deterministic too) through SplitMix64.
#ifndef UFORK_SRC_SCHED_SHARD_H_
#define UFORK_SRC_SCHED_SHARD_H_

#include <cstdint>

#include "src/base/units.h"

namespace ufork {

struct ShardConfig {
  int shards = 1;  // 1: the historical single-host-thread scheduler, bit-identical
  // Epoch length added on top of the earliest pending slice start when computing the next
  // horizon. Larger quanta amortize barrier crossings; smaller quanta tighten cross-shard
  // event latency (events are delivered only at epoch boundaries).
  Cycles epoch_quantum = 50'000;
};

// SplitMix64 finalizer: cheap, well-mixed, deterministic across platforms.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d4ecb9aebcb5abULL;
  return x ^ (x >> 31);
}

// Deterministic shard placement for a μprocess keyed on its pid.
inline int ShardOfPid(int64_t pid, int shards) {
  if (shards <= 1) {
    return 0;
  }
  return static_cast<int>(SplitMix64(static_cast<uint64_t>(pid)) %
                          static_cast<uint64_t>(shards));
}

}  // namespace ufork

#endif  // UFORK_SRC_SCHED_SHARD_H_
