// Discrete-event scheduler with a virtual clock, K simulated cores and N host shards.
//
// Threads are coroutines (SimTask<void>); the scheduler models parallel execution across
// simulated cores in virtual time:
//
//   * While running, a thread charges cycles (Charge); its slice occupies its core for exactly
//     the charged duration.
//   * Dispatch picks, among ready threads, the one that can *start earliest* on an eligible
//     core (respecting pinning), breaking ties by ready time then spawn order — this keeps
//     virtual-time causality: a thread never observes effects from a virtually-later slice.
//   * Blocking (wait queues, sleeping, lock contention) releases the core.
//
// With ShardConfig::shards == 1 (the default) the host executes one slice at a time on the
// calling thread and everything is deterministic: no host time, no host threads, explicit
// tie-breaking — bit-identical to the historical single-threaded scheduler.
//
// With shards > 1 (DESIGN.md §4.11) the cores are partitioned into N disjoint shards, each
// driven by a dedicated host worker thread with its own run queue, spawn-sequence counter and
// core set. Virtual time advances in epochs: the coordinator computes a horizon (the earliest
// pending slice start across shards plus an epoch quantum), the workers run their shards up
// to that horizon in parallel, and cross-shard interactions (wakes, spawns) accumulate as
// mailbox events that the coordinator drains at the epoch barrier in a deterministic order
// (virtual timestamp, then sending shard, then per-shard emission sequence). A thread is
// pinned to its shard for life, so all intra-shard scheduling stays single-threaded and
// deterministic; cross-shard event *timestamps* are virtual times stamped at the sender, so
// barrier placement affects host time only, never guest-visible virtual time.
#ifndef UFORK_SRC_SCHED_SCHEDULER_H_
#define UFORK_SRC_SCHED_SCHEDULER_H_

#include <atomic>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/base/check.h"
#include "src/base/units.h"
#include "src/sched/shard.h"
#include "src/sched/task.h"

namespace ufork {

class Scheduler;
class WaitQueue;

using ThreadId = uint64_t;
inline constexpr ThreadId kInvalidThread = ~0ULL;
inline constexpr Cycles kNoCycleLimit = ~0ULL;

// Thread control block.
class SimThread {
 public:
  enum class State { kReady, kRunning, kBlocked, kDone };

  ThreadId tid() const { return tid_; }
  const std::string& name() const { return name_; }
  State state() const { return state_.load(std::memory_order_relaxed); }
  int pinned_core() const { return pinned_core_; }
  int shard() const { return shard_; }
  // Virtual time as seen by this thread (valid while running).
  Cycles now() const { return slice_start_ + charged_; }

  // Opaque pointer for the kernel layer (owning Uproc). The scheduler never inspects it.
  void set_context(void* ctx) { context_ = ctx; }
  void* context() const { return context_; }

 private:
  friend class Scheduler;
  friend class WaitQueue;
  friend class VirtualLock;

  enum class Pending { kNone, kYield, kSleep, kBlock, kExit };

  Cycles ready_time() const { return ready_time_.load(std::memory_order_relaxed); }
  void set_ready_time(Cycles t) { ready_time_.store(t, std::memory_order_relaxed); }
  void set_state(State s) { state_.store(s, std::memory_order_relaxed); }

  ThreadId tid_ = kInvalidThread;
  std::string name_;
  SimTask<void> root_;
  std::coroutine_handle<> resume_point_;  // innermost suspended frame
  // state/ready_time are written by the owning shard's worker (or the coordinator at a
  // barrier) and read cross-shard by WaitQueue::Wake routing. Relaxed atomics suffice: every
  // cross-shard decision made from them is re-validated at the epoch barrier, where the
  // barrier itself orders memory.
  std::atomic<State> state_{State::kReady};
  std::atomic<Cycles> ready_time_{0};  // earliest virtual time the thread may start a slice
  int pinned_core_ = -1;               // -1: any core (within the thread's shard)
  int shard_ = 0;                      // owning shard; fixed for the thread's lifetime
  void* context_ = nullptr;

  Cycles slice_start_ = 0;  // start of the current/last slice
  Cycles charged_ = 0;      // cycles charged in the current slice
  Pending pending_ = Pending::kNone;
  Cycles pending_sleep_ = 0;
  uint64_t seq_ = 0;  // per-shard spawn order, deterministic tie-break
};

// FIFO wait queue in virtual time. Wakers stamp woken threads with the waker's current time,
// so a thread blocked at t=100 woken by a thread at t=250 becomes ready at 250 — plus an
// optional resume delay modeling the wakeup latency (IPI + scheduler path) of the object this
// queue guards. The delay applies only when the thread actually blocked, matching hardware:
// a reader that finds data ready pays nothing.
//
// Sharded mode: the waiter list is mutex-protected, and waking a thread that lives on another
// shard enqueues a mailbox event delivered at the next epoch barrier instead of touching the
// remote run queue. A remote wake arrives at max(block time, waker time + resume delay).
class WaitQueue {
 public:
  explicit WaitQueue(Scheduler& sched) : sched_(sched) {}

  void set_resume_delay(Cycles delay) { resume_delay_ = delay; }

  WaitQueue(const WaitQueue&) = delete;
  WaitQueue& operator=(const WaitQueue&) = delete;

  // Awaitable: blocks the calling thread until woken.
  auto Wait();

  // Two-phase wait (condition-variable protocol for state guarded by a host mutex): registers
  // the calling thread NOW, so the caller can release the guarding lock before suspending on
  // the returned awaiter. A waker that mutates the guarded state after the lock is released is
  // then guaranteed to observe the registration — no wakeup can fall into the gap between the
  // state check and the suspension. Between PrepareWait() and co_await the caller must not
  // suspend, and must not wake this queue. Delivery of a wake to a registered-but-running
  // thread cannot happen: same-shard wakes share the worker thread, and cross-shard wakes are
  // mailbox events drained only at epoch barriers, after every coroutine step has returned.
  auto PrepareWait();

  // Wakes up to n threads (front of the queue). Returns the number woken (cross-shard wakes
  // count optimistically; a waiter killed before the barrier delivers is dropped there).
  uint64_t Wake(uint64_t n = 1);
  uint64_t WakeAll() { return Wake(~0ULL); }

  bool empty() const {
    std::lock_guard<std::mutex> lk(mu_);
    return waiters_.empty();
  }
  uint64_t size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return waiters_.size();
  }

  // Removes a specific thread (used when killing a blocked thread).
  bool Remove(SimThread* thread);

 private:
  friend class Scheduler;
  friend class VirtualLock;
  Scheduler& sched_;
  Cycles resume_delay_ = 0;
  mutable std::mutex mu_;  // uncontended at shards=1; guards waiters_ across shards
  std::deque<SimThread*> waiters_;
};

class Scheduler {
 public:
  explicit Scheduler(int num_cores, const ShardConfig& shard_config = {});

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Creates a thread from a coroutine. Ready at the spawner's current time (or t=0 outside of
  // execution). pinned_core = -1 lets it run anywhere (within its shard). Shard selection:
  // a pinned core dictates its shard; otherwise shard_hint (from the kernel's deterministic
  // pid-keyed placement); otherwise the spawner's own shard (shard 0 at boot).
  ThreadId Spawn(SimTask<void> task, std::string name, int pinned_core = -1,
                 int shard_hint = -1);

  // Runs until no thread is runnable. UF_CHECKs on deadlock (blocked threads remain) unless
  // allow_blocked_exit is set (servers parked on wait queues at the end of a benchmark).
  void Run();
  void set_allow_blocked_exit(bool allow) { allow_blocked_exit_ = allow; }

  // --- Called from within running coroutines --------------------------------------------------

  SimThread& Current() {
    SimThread* t = ExecThread();
    UF_CHECK_MSG(t != nullptr, "no running simulated thread");
    return *t;
  }
  bool InThread() const { return ExecThread() != nullptr; }

  // Charges virtual CPU time to the current slice. On every simulated memory access, so the
  // unsharded branch must stay at the historical member-pointer cost (no TLS, no RMW).
  void Charge(Cycles cycles) {
    SimThread* t = ExecThread();
    if (t != nullptr) [[likely]] {
      t->charged_ += cycles;
      return;
    }
    // Charged during boot or from the epoch coordinator, before/between thread slices.
    if (sharded_) {
      boot_clock_.fetch_add(cycles, std::memory_order_relaxed);
    } else {
      boot_clock_.store(boot_clock_.load(std::memory_order_relaxed) + cycles,
                        std::memory_order_relaxed);
    }
  }

  // Current virtual time from the caller's perspective.
  Cycles Now() const {
    const SimThread* t = ExecThread();
    return t != nullptr ? t->now() : boot_clock_.load(std::memory_order_relaxed);
  }

  // Virtual time at which the last completed Run() drained (max over cores of all shards).
  Cycles CompletionTime() const;

  // Awaitables.
  auto Sleep(Cycles duration);
  auto Yield();

  // Terminates the current thread at its next suspension point. Prefer letting the root
  // coroutine return; this is for kill paths.
  auto ExitThread();

  // Forcefully destroys a thread (SIGKILL). Must not be the current thread. During a parallel
  // epoch the victim must live on the calling worker's own shard — cross-shard kills are
  // deferred to an epoch barrier by the kernel (KernelCore::QueueCrossShardKill).
  void Kill(ThreadId tid);

  bool IsAlive(ThreadId tid) const;

  // True if the thread exists and is parked on a WaitQueue (not ready, running, or done). The
  // compaction planner uses this as its quiescence test: a μprocess whose every thread is
  // blocked cannot observe its region mid-move except through the forwarding window.
  bool IsBlocked(ThreadId tid) const;

  // Attaches an opaque context (owning kernel object) to a thread control block.
  void SetThreadContext(ThreadId tid, void* context);

  // Cost charged when a core switches between different threads (and, via the kernel-installed
  // hook, between different address spaces in the MAS baseline).
  void set_context_switch_hook(std::function<Cycles(SimThread* prev, SimThread* next)> hook) {
    context_switch_hook_ = std::move(hook);
  }

  int num_cores() const { return static_cast<int>(cores_.size()); }
  int num_shards() const { return static_cast<int>(shards_.size()); }
  uint64_t context_switches() const;
  uint64_t slices_executed() const;

  // Shard of the executing worker thread, or -1 on the coordinator/boot thread.
  int CurrentShardIndex() const { return tls_exec_.sched == this ? tls_exec_.shard : -1; }
  // Owning shard of a thread (fixed at spawn).
  int ThreadShard(ThreadId tid) const;
  // The shard whose core range covers global core `core` (0 when unsharded).
  int ShardOfCore(int core) const { return sharded_ ? core / cores_per_shard_ : 0; }
  // True while shard workers are executing an epoch (between barriers).
  bool InParallelPhase() const { return parallel_phase_.load(std::memory_order_relaxed); }

  // Registers a hook run by the coordinator at every epoch barrier (after the mailbox drain),
  // while all shards are quiescent. The kernel uses this for deferred cross-shard teardown.
  // Sharded mode only; must be registered before Run().
  void AddBarrierHook(std::function<void()> hook) {
    barrier_hooks_.push_back(std::move(hook));
  }

 private:
  friend class WaitQueue;

  struct Core {
    Cycles free_at = 0;
    SimThread* last_thread = nullptr;
  };

  // Shard-local scheduler state. Owned by the shard's worker during an epoch; touched by the
  // coordinator only between epochs (barriers order the handoff).
  struct alignas(64) Shard {
    int index = 0;
    int core_lo = 0;  // global core range [core_lo, core_hi) owned by this shard
    int core_hi = 0;
    std::vector<SimThread*> ready;
    Cycles completion = 0;      // max slice end observed on this shard
    uint64_t next_seq = 0;      // spawn-order tie-break counter
    uint64_t event_seq = 0;     // stamps outgoing cross-shard events deterministically
    uint64_t context_switches = 0;
    uint64_t slices = 0;
  };

  // Cross-shard mailbox event, drained at epoch barriers in (at, src_shard, src_seq) order.
  struct ShardEvent {
    enum class Kind { kWake, kSpawn };
    Kind kind;
    SimThread* thread;
    Cycles at;
    uint32_t src_shard;
    uint64_t src_seq;
  };

  struct ExecContext {
    Scheduler* sched = nullptr;
    int shard = -1;
    SimThread* thread = nullptr;
  };
  static thread_local ExecContext tls_exec_;

  // The simulated thread executing on the calling host thread, or nullptr. Unsharded mode
  // keeps a plain member mirror (current_) so the per-access Charge path pays no TLS reads.
  SimThread* ExecThread() const {
    if (!sharded_) {
      return current_;
    }
    return tls_exec_.sched == this ? tls_exec_.thread : nullptr;
  }

  struct SleepAwaiter;
  struct BlockAwaiter;
  struct PreparedBlockAwaiter;
  struct ExitAwaiter;

  void MakeReady(SimThread* thread, Cycles at);
  // Routes a wake from WaitQueue::Wake: directly onto the target's run queue when safe
  // (same shard, or no epoch in flight), else into the mailbox. Returns whether it counted.
  bool RouteWake(SimThread* thread, Cycles wake_time, Cycles resume_delay);
  void EnqueueEvent(ShardEvent::Kind kind, SimThread* thread, Cycles at);
  SimThread* PickNext(Shard& shard, Cycles horizon, int* core_out, Cycles* start_out);
  Cycles NextStartOf(const Shard& shard) const;
  int TargetShard(int pinned_core, int shard_hint) const;
  SimThread* ThreadAt(ThreadId tid) const;
  void RunShardUntil(Shard& shard, Cycles horizon);
  void RunSharded();
  void DrainBarrierEvents();
  void CheckBlockedExit() const;
  void FinishThread(SimThread* thread);
  void DestroyThread(SimThread* thread);

  const bool sharded_;
  const int cores_per_shard_;
  const Cycles epoch_quantum_;
  SimThread* current_ = nullptr;  // unsharded-mode mirror of tls_exec_.thread (see ExecThread)
  std::vector<Core> cores_;
  std::vector<Shard> shards_;
  mutable std::mutex spawn_mu_;  // guards threads_ growth and tid lookups when sharded
  std::deque<std::unique_ptr<SimThread>> threads_;  // index == tid; control blocks persist
  std::mutex events_mu_;
  std::vector<ShardEvent> events_;
  std::vector<std::function<void()>> barrier_hooks_;
  std::atomic<bool> parallel_phase_{false};
  std::atomic<Cycles> boot_clock_{0};
  Cycles horizon_ = 0;  // written by the coordinator between epochs, read by workers
  bool allow_blocked_exit_ = false;
  std::function<Cycles(SimThread*, SimThread*)> context_switch_hook_;
};

// --- Awaitable definitions (header-only: they are glue between coroutines and the loop) -------

struct Scheduler::SleepAwaiter {
  Scheduler& sched;
  Cycles duration;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    SimThread* t = &sched.Current();
    t->pending_ = SimThread::Pending::kSleep;
    t->pending_sleep_ = duration;
    t->resume_point_ = h;
  }
  void await_resume() const noexcept {}
};

inline auto Scheduler::Sleep(Cycles duration) { return SleepAwaiter{*this, duration}; }
inline auto Scheduler::Yield() { return SleepAwaiter{*this, 0}; }

struct Scheduler::BlockAwaiter {
  Scheduler& sched;
  WaitQueue& queue;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    SimThread* t = &sched.Current();
    {
      std::lock_guard<std::mutex> lk(queue.mu_);
      queue.waiters_.push_back(t);
    }
    t->pending_ = SimThread::Pending::kBlock;
    t->resume_point_ = h;
  }
  void await_resume() const noexcept {}
};

inline auto WaitQueue::Wait() { return Scheduler::BlockAwaiter{sched_, *this}; }

// Registration already happened in PrepareWait(); this awaiter only parks the thread.
struct Scheduler::PreparedBlockAwaiter {
  Scheduler& sched;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    SimThread* t = &sched.Current();
    t->pending_ = SimThread::Pending::kBlock;
    t->resume_point_ = h;
  }
  void await_resume() const noexcept {}
};

inline auto WaitQueue::PrepareWait() {
  SimThread* t = &sched_.Current();
  {
    std::lock_guard<std::mutex> lk(mu_);
    waiters_.push_back(t);
  }
  return Scheduler::PreparedBlockAwaiter{sched_};
}

struct Scheduler::ExitAwaiter {
  Scheduler& sched;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    SimThread* t = &sched.Current();
    t->pending_ = SimThread::Pending::kExit;
    t->resume_point_ = h;
  }
  void await_resume() const noexcept {}
};

inline auto Scheduler::ExitThread() { return ExitAwaiter{*this}; }

}  // namespace ufork

#endif  // UFORK_SRC_SCHED_SCHEDULER_H_
