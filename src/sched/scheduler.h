// Discrete-event scheduler with a virtual clock and K simulated cores.
//
// Threads are coroutines (SimTask<void>); the scheduler resumes one thread at a time on the
// host but models parallel execution across simulated cores in virtual time:
//
//   * While running, a thread charges cycles (Charge); its slice occupies its core for exactly
//     the charged duration.
//   * Dispatch picks, among ready threads, the one that can *start earliest* on an eligible
//     core (respecting pinning), breaking ties by ready time then spawn order — this keeps
//     virtual-time causality: a thread never observes effects from a virtually-later slice.
//   * Blocking (wait queues, sleeping, lock contention) releases the core.
//
// Everything is deterministic: no host time, no host threads, explicit tie-breaking.
#ifndef UFORK_SRC_SCHED_SCHEDULER_H_
#define UFORK_SRC_SCHED_SCHEDULER_H_

#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/base/check.h"
#include "src/base/units.h"
#include "src/sched/task.h"

namespace ufork {

class Scheduler;
class WaitQueue;

using ThreadId = uint64_t;
inline constexpr ThreadId kInvalidThread = ~0ULL;

// Thread control block.
class SimThread {
 public:
  enum class State { kReady, kRunning, kBlocked, kDone };

  ThreadId tid() const { return tid_; }
  const std::string& name() const { return name_; }
  State state() const { return state_; }
  int pinned_core() const { return pinned_core_; }
  // Virtual time as seen by this thread (valid while running).
  Cycles now() const { return slice_start_ + charged_; }

  // Opaque pointer for the kernel layer (owning Uproc). The scheduler never inspects it.
  void set_context(void* ctx) { context_ = ctx; }
  void* context() const { return context_; }

 private:
  friend class Scheduler;
  friend class WaitQueue;
  friend class VirtualLock;

  enum class Pending { kNone, kYield, kSleep, kBlock, kExit };

  ThreadId tid_ = kInvalidThread;
  std::string name_;
  SimTask<void> root_;
  std::coroutine_handle<> resume_point_;  // innermost suspended frame
  State state_ = State::kReady;
  int pinned_core_ = -1;  // -1: any core
  void* context_ = nullptr;

  Cycles ready_time_ = 0;   // earliest virtual time the thread may start a slice
  Cycles slice_start_ = 0;  // start of the current/last slice
  Cycles charged_ = 0;      // cycles charged in the current slice
  Pending pending_ = Pending::kNone;
  Cycles pending_sleep_ = 0;
  uint64_t seq_ = 0;  // spawn order, deterministic tie-break
};

// FIFO wait queue in virtual time. Wakers stamp woken threads with the waker's current time,
// so a thread blocked at t=100 woken by a thread at t=250 becomes ready at 250 — plus an
// optional resume delay modeling the wakeup latency (IPI + scheduler path) of the object this
// queue guards. The delay applies only when the thread actually blocked, matching hardware:
// a reader that finds data ready pays nothing.
class WaitQueue {
 public:
  explicit WaitQueue(Scheduler& sched) : sched_(sched) {}

  void set_resume_delay(Cycles delay) { resume_delay_ = delay; }

  WaitQueue(const WaitQueue&) = delete;
  WaitQueue& operator=(const WaitQueue&) = delete;

  // Awaitable: blocks the calling thread until woken.
  auto Wait();

  // Wakes up to n threads (front of the queue). Returns the number woken.
  uint64_t Wake(uint64_t n = 1);
  uint64_t WakeAll() { return Wake(~0ULL); }

  bool empty() const { return waiters_.empty(); }
  uint64_t size() const { return waiters_.size(); }

  // Removes a specific thread (used when killing a blocked thread).
  bool Remove(SimThread* thread);

 private:
  friend class Scheduler;
  friend class VirtualLock;
  Scheduler& sched_;
  Cycles resume_delay_ = 0;
  std::deque<SimThread*> waiters_;
};

class Scheduler {
 public:
  explicit Scheduler(int num_cores);

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Creates a thread from a coroutine. Ready at the spawner's current time (or t=0 outside of
  // execution). pinned_core = -1 lets it run anywhere.
  ThreadId Spawn(SimTask<void> task, std::string name, int pinned_core = -1);

  // Runs until no thread is runnable. UF_CHECKs on deadlock (blocked threads remain) unless
  // allow_blocked_exit is set (servers parked on wait queues at the end of a benchmark).
  void Run();
  void set_allow_blocked_exit(bool allow) { allow_blocked_exit_ = allow; }

  // --- Called from within running coroutines --------------------------------------------------

  SimThread& Current() {
    UF_CHECK_MSG(current_ != nullptr, "no running simulated thread");
    return *current_;
  }
  bool InThread() const { return current_ != nullptr; }

  // Charges virtual CPU time to the current slice.
  void Charge(Cycles cycles) {
    if (current_ != nullptr) {
      current_->charged_ += cycles;
    } else {
      boot_clock_ += cycles;  // charged during boot, before any thread runs
    }
  }

  // Current virtual time from the caller's perspective.
  Cycles Now() const { return current_ != nullptr ? current_->now() : boot_clock_; }

  // Virtual time at which the last completed Run() drained (max over cores).
  Cycles CompletionTime() const;

  // Awaitables.
  auto Sleep(Cycles duration);
  auto Yield();

  // Terminates the current thread at its next suspension point. Prefer letting the root
  // coroutine return; this is for kill paths.
  auto ExitThread();

  // Forcefully destroys a thread (SIGKILL). Must not be the current thread.
  void Kill(ThreadId tid);

  bool IsAlive(ThreadId tid) const;

  // Attaches an opaque context (owning kernel object) to a thread control block.
  void SetThreadContext(ThreadId tid, void* context) {
    UF_CHECK(tid < threads_.size() && threads_[tid] != nullptr);
    threads_[tid]->set_context(context);
  }

  // Cost charged when a core switches between different threads (and, via the kernel-installed
  // hook, between different address spaces in the MAS baseline).
  void set_context_switch_hook(std::function<Cycles(SimThread* prev, SimThread* next)> hook) {
    context_switch_hook_ = std::move(hook);
  }

  int num_cores() const { return static_cast<int>(cores_.size()); }
  uint64_t context_switches() const { return context_switches_; }
  uint64_t slices_executed() const { return slices_executed_; }

 private:
  friend class WaitQueue;

  struct Core {
    Cycles free_at = 0;
    SimThread* last_thread = nullptr;
  };

  struct SleepAwaiter;
  struct BlockAwaiter;
  struct ExitAwaiter;

  void MakeReady(SimThread* thread, Cycles at);
  void BlockCurrent(std::coroutine_handle<> resume_point);
  SimThread* PickNext(int* core_out, Cycles* start_out);
  void FinishThread(SimThread* thread);
  void DestroyThread(SimThread* thread);

  std::vector<Core> cores_;
  std::vector<std::unique_ptr<SimThread>> threads_;  // index == tid
  std::vector<SimThread*> ready_;
  SimThread* current_ = nullptr;
  Cycles boot_clock_ = 0;
  Cycles completion_time_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t context_switches_ = 0;
  uint64_t slices_executed_ = 0;
  bool allow_blocked_exit_ = false;
  std::function<Cycles(SimThread*, SimThread*)> context_switch_hook_;
};

// --- Awaitable definitions (header-only: they are glue between coroutines and the loop) -------

struct Scheduler::SleepAwaiter {
  Scheduler& sched;
  Cycles duration;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    SimThread* t = &sched.Current();
    t->pending_ = SimThread::Pending::kSleep;
    t->pending_sleep_ = duration;
    t->resume_point_ = h;
  }
  void await_resume() const noexcept {}
};

inline auto Scheduler::Sleep(Cycles duration) { return SleepAwaiter{*this, duration}; }
inline auto Scheduler::Yield() { return SleepAwaiter{*this, 0}; }

struct Scheduler::BlockAwaiter {
  Scheduler& sched;
  WaitQueue& queue;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    SimThread* t = &sched.Current();
    queue.waiters_.push_back(t);
    t->pending_ = SimThread::Pending::kBlock;
    t->resume_point_ = h;
  }
  void await_resume() const noexcept {}
};

inline auto WaitQueue::Wait() { return Scheduler::BlockAwaiter{sched_, *this}; }

struct Scheduler::ExitAwaiter {
  Scheduler& sched;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    SimThread* t = &sched.Current();
    t->pending_ = SimThread::Pending::kExit;
    t->resume_point_ = h;
  }
  void await_resume() const noexcept {}
};

inline auto Scheduler::ExitThread() { return ExitAwaiter{*this}; }

}  // namespace ufork

#endif  // UFORK_SRC_SCHED_SCHEDULER_H_
