#include "src/cheri/compressed_cap.h"

#include <bit>

#include "src/base/check.h"

namespace ufork {
namespace {

constexpr uint64_t kMantissaMask = (1ULL << kMantissaBits) - 1;
constexpr int kMaxExponent = 63 - kMantissaBits;

// Smallest exponent E such that [base, base+length), aligned outward to 2^E, spans strictly
// less than 2^(E + kMantissaBits) bytes. The strict inequality keeps the top decode
// unambiguous (base and top mantissas of a full block would coincide).
int ExponentFor(uint64_t base, uint64_t length) {
  for (int e = 0; e <= kMaxExponent; ++e) {
    const uint64_t gran = 1ULL << e;
    const uint64_t lo = AlignDown(base, gran);
    const uint64_t hi = AlignUp(base + length, gran);
    if (hi - lo < (1ULL << (e + kMantissaBits))) {
      return e;
    }
  }
  UF_UNREACHABLE();
}

}  // namespace

RepresentableBounds RoundToRepresentable(uint64_t base, uint64_t length) {
  UF_CHECK_MSG(base + length >= base, "bounds overflow");
  if (length < (1ULL << kMantissaBits)) {
    // Small objects are always exactly representable (internal exponent 0).
    return RepresentableBounds{base, length, true};
  }
  const int e = ExponentFor(base, length);
  const uint64_t gran = 1ULL << e;
  const uint64_t lo = AlignDown(base, gran);
  const uint64_t hi = AlignUp(base + length, gran);
  return RepresentableBounds{lo, hi - lo, lo == base && hi == base + length};
}

uint64_t RepresentableAlignmentMask(uint64_t length) {
  if (length < (1ULL << kMantissaBits)) {
    return ~0ULL;
  }
  const int e = ExponentFor(0, length);
  return ~((1ULL << e) - 1);
}

CompressedCapBits Compress(const Capability& cap) {
  CompressedCapBits bits;
  bits.lo = cap.address();
  if (!cap.tag()) {
    // Untagged values keep only their integer view; the metadata half is preserved as zero.
    return bits;
  }
  const RepresentableBounds rb = RoundToRepresentable(cap.base(), cap.length());
  const int e = rb.length < (1ULL << kMantissaBits) ? 0 : ExponentFor(cap.base(), cap.length());
  const uint64_t base_mant = (rb.base >> e) & kMantissaMask;
  const uint64_t top_mant = ((rb.base + rb.length) >> e) & kMantissaMask;
  UF_CHECK_MSG(cap.otype() < (1u << 18), "otype exceeds compressed field width");
  bits.hi = top_mant | (base_mant << kMantissaBits) |
            (static_cast<uint64_t>(e) << (2 * kMantissaBits)) |
            (static_cast<uint64_t>(cap.otype()) << 34) |
            (static_cast<uint64_t>(cap.perms()) << 52);
  return bits;
}

Capability Decompress(const CompressedCapBits& bits, bool tag) {
  const uint64_t cursor = bits.lo;
  if (!tag) {
    return Capability::Integer(cursor);
  }
  const uint64_t top_mant = bits.hi & kMantissaMask;
  const uint64_t base_mant = (bits.hi >> kMantissaBits) & kMantissaMask;
  const int e = static_cast<int>((bits.hi >> (2 * kMantissaBits)) & 0x3F);
  const uint32_t otype = static_cast<uint32_t>((bits.hi >> 34) & ((1u << 18) - 1));
  const uint32_t perms = static_cast<uint32_t>((bits.hi >> 52) & kPermAll);

  // Reconstruct the high address bits from the cursor, with the standard CHERI-Concentrate
  // corrections: the cursor lies within the representable region, so the base is either in the
  // cursor's 2^(E+MW) block or the one below, and the top in the cursor's block or the one
  // above.
  const uint64_t c_mid = (cursor >> e) & kMantissaMask;
  const uint64_t c_hi = cursor >> (e + kMantissaBits);
  const uint64_t base_hi = c_mid < base_mant ? c_hi - 1 : c_hi;
  const uint64_t top_hi = c_mid <= top_mant ? c_hi : c_hi + 1;
  const uint64_t base = ((base_hi << kMantissaBits) | base_mant) << e;
  const uint64_t top = ((top_hi << kMantissaBits) | top_mant) << e;

  Capability c = Capability::Root(0, kVaTop, perms);
  c = c.WithBounds(base, top - base).WithAddress(cursor);
  if (otype == kOtypeSentry) {
    c = c.AsSentry();
  } else if (otype != kOtypeUnsealed) {
    // Re-sealing with a user otype requires sealing authority; the codec reconstructs the
    // object type directly since it acts below the ISA's derivation rules.
    const Capability sealer =
        Capability::Root(0, kVaTop, kPermSeal).WithAddress(otype);
    auto sealed = c.Sealed(sealer);
    UF_CHECK(sealed.ok());
    c = *sealed;
  }
  return c;
}

}  // namespace ufork
