// CHERI-Concentrate-style compressed capability codec.
//
// Real CHERI hardware packs a capability's bounds into 128 bits using a floating-point-like
// encoding: the bounds are expressed relative to the cursor with a truncated mantissa and a
// shared exponent. The consequence — visible to software such as μFork's allocator — is that
// bounds of large objects are *rounded* outward to representable values, so allocators must
// pad/align large allocations (CRRL/CRAP semantics).
//
// The main simulation path uses the exact uncompressed Capability model; this codec exists to
// (a) model the representable-bounds constraint that the guest allocator honours and
// (b) document and property-test the rounding behaviour against the exact model.
#ifndef UFORK_SRC_CHERI_COMPRESSED_CAP_H_
#define UFORK_SRC_CHERI_COMPRESSED_CAP_H_

#include <cstdint>

#include "src/cheri/capability.h"

namespace ufork {

// Mantissa width of the bounds encoding. Morello uses 14 bits for 128-bit capabilities; lengths
// below 2^kMantissaBits are always exactly representable.
inline constexpr int kMantissaBits = 14;

// 128-bit in-memory image of a compressed capability (without its out-of-band tag).
struct CompressedCapBits {
  uint64_t lo = 0;  // cursor
  uint64_t hi = 0;  // packed: perms | otype | exponent | base mantissa | top mantissa
};

// Result of asking "what bounds would the hardware actually grant for [base, base+length)?".
struct RepresentableBounds {
  uint64_t base = 0;
  uint64_t length = 0;
  bool exact = false;  // true when no rounding was necessary
};

// Rounds the requested bounds outward to the nearest representable pair, mirroring the
// CRepresentableAlignmentMask / CRoundRepresentableLength instructions. The result always
// contains the request.
RepresentableBounds RoundToRepresentable(uint64_t base, uint64_t length);

// Returns the alignment mask a base must satisfy for an object of `length` bytes to have
// exactly representable bounds (CRAP).
uint64_t RepresentableAlignmentMask(uint64_t length);

// Encodes a capability into its 128-bit image. Bounds that are not exactly representable are
// rounded outward (the hardware instead refuses to produce them from CSetBoundsExact; we model
// the permissive CSetBounds). The tag travels out of band.
CompressedCapBits Compress(const Capability& cap);

// Decodes a 128-bit image back into a capability with the given tag. Round-trips exactly for
// representable capabilities.
Capability Decompress(const CompressedCapBits& bits, bool tag);

}  // namespace ufork

#endif  // UFORK_SRC_CHERI_COMPRESSED_CAP_H_
