#include "src/cheri/capability.h"

#include <sstream>

namespace ufork {

Capability Capability::Root(uint64_t base, uint64_t length, uint32_t perms) {
  UF_CHECK_MSG(base + length <= kVaTop, "root capability exceeds address space");
  Capability c;
  c.tag_ = true;
  c.base_ = base;
  c.top_ = base + length;
  c.cursor_ = base;
  c.perms_ = perms;
  c.otype_ = kOtypeUnsealed;
  return c;
}

Capability Capability::WithAddress(uint64_t addr) const {
  Capability c = *this;
  c.cursor_ = addr;
  if (sealed()) {
    c.tag_ = false;  // mutating a sealed capability invalidates it
  }
  return c;
}

Capability Capability::WithBounds(uint64_t new_base, uint64_t new_length) const {
  Capability c = *this;
  const uint64_t new_top = new_base + new_length;
  c.base_ = new_base;
  c.top_ = new_top;
  c.cursor_ = new_base;
  // Monotonicity: narrowing outside the source bounds, from a sealed or untagged source, or
  // with an overflowing top untags the result.
  if (!tag_ || sealed() || new_base < base_ || new_top > top_ || new_top < new_base) {
    c.tag_ = false;
  }
  return c;
}

Capability Capability::WithPermsAnd(uint32_t mask) const {
  Capability c = *this;
  c.perms_ &= mask;
  if (sealed()) {
    c.tag_ = false;
  }
  return c;
}

Capability Capability::Untagged() const {
  Capability c = *this;
  c.tag_ = false;
  return c;
}

Result<Capability> Capability::Sealed(const Capability& sealer) const {
  if (!tag_ || !sealer.tag()) {
    return Error{Code::kFaultTag, "seal through untagged capability"};
  }
  if (sealed() || sealer.sealed()) {
    return Error{Code::kFaultSeal, "seal of/through an already sealed capability"};
  }
  if (!sealer.HasPerms(kPermSeal)) {
    return Error{Code::kFaultPermission, "sealer lacks Seal permission"};
  }
  const uint64_t otype = sealer.address();
  if (otype < sealer.base() || otype >= sealer.top()) {
    return Error{Code::kFaultBounds, "otype outside sealer bounds"};
  }
  if (otype < kOtypeFirstUser || otype > UINT32_MAX) {
    return Error{Code::kFaultSeal, "reserved otype"};
  }
  Capability c = *this;
  c.otype_ = static_cast<uint32_t>(otype);
  return c;
}

Result<Capability> Capability::Unsealed(const Capability& unsealer) const {
  if (!tag_ || !unsealer.tag()) {
    return Error{Code::kFaultTag, "unseal through untagged capability"};
  }
  if (!sealed() || otype_ == kOtypeSentry) {
    return Error{Code::kFaultSeal, "unseal of a non-user-sealed capability"};
  }
  if (unsealer.sealed()) {
    return Error{Code::kFaultSeal, "unseal through sealed capability"};
  }
  if (!unsealer.HasPerms(kPermUnseal)) {
    return Error{Code::kFaultPermission, "unsealer lacks Unseal permission"};
  }
  if (unsealer.address() != otype_) {
    return Error{Code::kFaultSeal, "otype mismatch on unseal"};
  }
  if (unsealer.address() < unsealer.base() || unsealer.address() >= unsealer.top()) {
    return Error{Code::kFaultBounds, "otype outside unsealer bounds"};
  }
  Capability c = *this;
  c.otype_ = kOtypeUnsealed;
  return c;
}

Capability Capability::AsSentry() const {
  Capability c = *this;
  if (!tag_ || sealed() || !HasPerms(kPermExecute)) {
    c.tag_ = false;
    return c;
  }
  c.otype_ = kOtypeSentry;
  return c;
}

Result<Capability> Capability::InvokedSentry() const {
  if (!tag_) {
    return Error{Code::kFaultTag, "invoke of untagged sentry"};
  }
  if (otype_ != kOtypeSentry) {
    return Error{Code::kFaultSeal, "invoke of non-sentry capability"};
  }
  Capability c = *this;
  c.otype_ = kOtypeUnsealed;
  return c;
}

Result<void> Capability::CheckAccess(uint64_t addr, uint64_t size,
                                     uint32_t required_perms) const {
  if (!tag_) {
    return Error{Code::kFaultTag, "dereference of untagged capability"};
  }
  if (sealed()) {
    return Error{Code::kFaultSeal, "dereference of sealed capability"};
  }
  if (!HasPerms(required_perms)) {
    return Error{Code::kFaultPermission, "missing permission on dereference"};
  }
  const uint64_t end = addr + size;
  if (end < addr || addr < base_ || end > top_) {
    return Error{Code::kFaultBounds, "access outside capability bounds"};
  }
  if ((required_perms & (kPermLoadCap | kPermStoreCap)) != 0 && !IsAligned(addr, kCapSize)) {
    return Error{Code::kFaultAlignment, "unaligned capability-width access"};
  }
  return OkResult();
}

bool Capability::EscapesRegion(uint64_t lo, uint64_t hi) const {
  if (!tag_) {
    return false;  // integers carry no authority
  }
  return base_ < lo || top_ > hi || cursor_ < lo || cursor_ >= hi;
}

Capability Capability::RelocatedInto(uint64_t old_lo, uint64_t new_lo, uint64_t new_hi) const {
  Capability c = *this;
  const int64_t delta = static_cast<int64_t>(new_lo) - static_cast<int64_t>(old_lo);
  c.cursor_ = static_cast<uint64_t>(static_cast<int64_t>(c.cursor_) + delta);
  c.base_ = static_cast<uint64_t>(static_cast<int64_t>(c.base_) + delta);
  c.top_ = static_cast<uint64_t>(static_cast<int64_t>(c.top_) + delta);
  // Clamp bounds into the child region: the relocated capability must never grant authority
  // outside the child μprocess (security invariant, §4.2).
  if (c.base_ < new_lo) {
    c.base_ = new_lo;
  }
  if (c.top_ > new_hi) {
    c.top_ = new_hi;
  }
  if (c.base_ > c.top_) {
    c.base_ = c.top_ = new_lo;
    c.tag_ = false;
  }
  return c;
}

std::string Capability::ToString() const {
  std::ostringstream os;
  os << (tag_ ? "cap" : "int") << "{addr=0x" << std::hex << cursor_;
  if (tag_) {
    os << " [0x" << base_ << ",0x" << top_ << ")"
       << " perms=0x" << perms_;
    if (sealed()) {
      os << " otype=" << std::dec << otype_;
    }
  }
  os << "}";
  return os.str();
}

}  // namespace ufork
