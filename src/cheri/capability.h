// Behavioural model of a CHERI capability (CHERI ISAv9 / Morello).
//
// A capability is a 128-bit pointer plus an out-of-band validity tag. It carries the bounds
// [base, top) and the permissions of the object it refers to; bounds and permissions are
// monotonically non-increasing: every derivation operation can only shrink them. Sealed
// capabilities are immutable and non-dereferenceable until unsealed; "sentry" (sealed entry)
// capabilities branch-and-unseal to a fixed target and are the paper's trapless syscall entry
// mechanism (§4.4).
//
// This model is uncompressed: base/top are held exactly (no CHERI-Concentrate bounds rounding).
// A separate codec in compressed_cap.h models the compressed 128-bit representation with its
// rounding semantics and is property-tested against this exact model.
#ifndef UFORK_SRC_CHERI_CAPABILITY_H_
#define UFORK_SRC_CHERI_CAPABILITY_H_

#include <cstdint>
#include <string>
#include <type_traits>

#include "src/base/status.h"
#include "src/base/units.h"

namespace ufork {

// Simulated virtual address space: 48-bit, single address space shared by the kernel and all
// μprocesses.
inline constexpr int kVaBits = 48;
inline constexpr uint64_t kVaTop = 1ULL << kVaBits;

// Capability granule: one validity tag covers each naturally-aligned 16-byte region.
inline constexpr uint64_t kCapSize = 16;

// Permission bits (subset of Morello's permission field relevant to μFork).
enum CapPerms : uint32_t {
  kPermLoad = 1u << 0,       // load data
  kPermStore = 1u << 1,      // store data
  kPermExecute = 1u << 2,    // instruction fetch
  kPermLoadCap = 1u << 3,    // load capabilities (tag preserved)
  kPermStoreCap = 1u << 4,   // store capabilities (tag preserved)
  kPermSeal = 1u << 5,       // seal other capabilities with otype = cursor
  kPermUnseal = 1u << 6,     // unseal capabilities with otype = cursor
  kPermSystem = 1u << 7,     // execute privileged (MSR/MRS-class) operations
  kPermGlobal = 1u << 8,     // may be stored through non-local-only authorizers

  kPermAllData = kPermLoad | kPermStore | kPermLoadCap | kPermStoreCap | kPermGlobal,
  kPermAll = (1u << 9) - 1,
};

// Object types. kOtypeUnsealed marks a regular capability; kOtypeSentry marks a sealed-entry
// capability that can only be invoked (branched to), not inspected or modified.
inline constexpr uint32_t kOtypeUnsealed = 0;
inline constexpr uint32_t kOtypeSentry = 1;
inline constexpr uint32_t kOtypeFirstUser = 16;

class Capability {
 public:
  // Untagged null capability: the integer 0 viewed through a capability register.
  constexpr Capability() = default;

  // Untagged integer value. Dereferencing faults with kFaultTag.
  static constexpr Capability Integer(uint64_t value) {
    Capability c;
    c.cursor_ = value;
    return c;
  }

  // Root capability spanning [base, base+length) with the given permissions. Only the kernel
  // (at boot) may mint roots; user code derives everything monotonically from what the kernel
  // hands it.
  static Capability Root(uint64_t base, uint64_t length, uint32_t perms);

  bool tag() const { return tag_; }
  uint64_t address() const { return cursor_; }
  uint64_t base() const { return base_; }
  uint64_t top() const { return top_; }
  uint64_t length() const { return top_ - base_; }
  uint32_t perms() const { return perms_; }
  uint32_t otype() const { return otype_; }
  bool sealed() const { return otype_ != kOtypeUnsealed; }
  bool IsSentry() const { return otype_ == kOtypeSentry; }

  bool HasPerms(uint32_t required) const { return (perms_ & required) == required; }

  // --- Monotonic derivation operations -------------------------------------------------------
  //
  // Each returns a derived capability. Misuse (sealed source, bounds escape) clears the tag of
  // the result, matching the hardware's "untag, don't trap" behaviour for derivations; the
  // fault is then observed at dereference time.

  // Same bounds/permissions, new cursor. Setting the address of a sealed capability untags.
  Capability WithAddress(uint64_t addr) const;

  // Add a signed offset to the cursor.
  Capability WithOffsetAdded(int64_t delta) const { return WithAddress(cursor_ + delta); }

  // Narrow bounds to [new_base, new_base+new_length). The new bounds must be a subset of the
  // old ones and the source must be tagged and unsealed, otherwise the result is untagged.
  // The cursor is set to new_base.
  Capability WithBounds(uint64_t new_base, uint64_t new_length) const;

  // Intersect the permission mask (CAndPerm).
  Capability WithPermsAnd(uint32_t mask) const;

  // Clear the tag (reinterpret as integer bytes).
  Capability Untagged() const;

  // --- Sealing --------------------------------------------------------------------------------

  // Seal *this with otype = sealer.address(). Requires: both tagged, sealer has kPermSeal,
  // sealer.address() within sealer bounds and >= kOtypeFirstUser.
  Result<Capability> Sealed(const Capability& sealer) const;

  // Unseal *this (sealed with some user otype) using unsealer with kPermUnseal and
  // unsealer.address() == otype.
  Result<Capability> Unsealed(const Capability& unsealer) const;

  // Seal as a sentry: invoking (branching to) the sentry unseals it implicitly. Models CSealEntry.
  Capability AsSentry() const;
  // Invoke a sentry: returns the unsealed target. Faults unless *this is a tagged sentry.
  Result<Capability> InvokedSentry() const;

  // --- Dereference checking -------------------------------------------------------------------

  // Validates an access of `size` bytes at `addr` requiring `required_perms`. Returns the
  // precise fault class on failure; the memory engine maps this to a guest-visible exception.
  Result<void> CheckAccess(uint64_t addr, uint64_t size, uint32_t required_perms) const;

  // Convenience: access at the current cursor.
  Result<void> CheckCursorAccess(uint64_t size, uint32_t required_perms) const {
    return CheckAccess(cursor_, size, required_perms);
  }

  // --- Relocation support (μFork §4.2) --------------------------------------------------------

  // True if this capability grants any authority outside [lo, hi): its bounds escape the region
  // or its cursor points outside it. Used by the fork relocation scanner to decide whether a
  // capability found in child memory still refers to the parent μprocess.
  bool EscapesRegion(uint64_t lo, uint64_t hi) const;

  // True if this capability's bounds intersect [lo, hi). Used by the revocation sweep to find
  // capabilities whose authority falls inside a quarantined (freed or moved-from) range.
  bool OverlapsRange(uint64_t lo, uint64_t hi) const { return base_ < hi && top_ > lo; }

  // Rebases a capability found in a child page: cursor and bounds are shifted by
  // (new_lo - old_lo) and then clamped to [new_lo, new_hi). Monotonicity is preserved from the
  // perspective of the child's region root. Sealed capabilities are rebased preserving otype
  // (the kernel performs this during fork with its relocation authority).
  Capability RelocatedInto(uint64_t old_lo, uint64_t new_lo, uint64_t new_hi) const;

  bool IdenticalTo(const Capability& other) const {
    return tag_ == other.tag_ && cursor_ == other.cursor_ && base_ == other.base_ &&
           top_ == other.top_ && perms_ == other.perms_ && otype_ == other.otype_;
  }

  std::string ToString() const;

 private:
  uint64_t cursor_ = 0;
  uint64_t base_ = 0;
  uint64_t top_ = 0;
  uint32_t perms_ = 0;
  uint32_t otype_ = kOtypeUnsealed;
  bool tag_ = false;
};

// The tagged-frame store (src/mem/frame.h) keeps capability records in flat arrays that are
// copied wholesale on every CoW/CoA/CoPA page copy; a 128-bit hardware capability is a plain
// value and its model must stay one too.
static_assert(std::is_trivially_copyable_v<Capability>);

}  // namespace ufork

#endif  // UFORK_SRC_CHERI_CAPABILITY_H_
