// The capability-checked memory access engine.
//
// Every guest memory access flows through Machine: the authorizing capability is checked first
// (CHERI semantics: tag, seal, permission, bounds — faults here are guest-visible exceptions),
// then the address is translated through the supplied page table. Page-level violations with
// the kPteCow bit, and tagged capability loads through kPteLoadCapFault PTEs, are *resolvable*:
// the engine charges the fault cost, invokes the kernel-installed resolver (μFork's CoW/CoA/
// CoPA copy machinery), and retries the access. Everything else propagates as an error that the
// kernel turns into a μprocess-fatal signal.
//
// The SAS kernel passes one shared PageTable; the MAS baseline passes the calling process's
// own table. Cycle charges flow through a caller-installed sink (the scheduler).
#ifndef UFORK_SRC_MACHINE_MACHINE_H_
#define UFORK_SRC_MACHINE_MACHINE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "src/base/status.h"
#include "src/cheri/capability.h"
#include "src/machine/cost_model.h"
#include "src/mem/frame_allocator.h"
#include "src/mem/page_table.h"

namespace ufork {

struct PageFaultInfo {
  // kFaultPageProt (CoW write), kFaultCapLoadPage (CoPA), or kFaultNotPresent (demand fill
  // of a reserved-but-unpopulated page, DESIGN.md §4.12).
  Code kind = Code::kOk;
  uint64_t va = 0;        // page-aligned faulting address
  // Exclusive end of the guest access that faulted. A bulk Load/Store that spans pages beyond
  // `va` announces its full extent here, letting the fault-around resolver size its window to
  // pages the access is guaranteed to touch. Never below va (scalar accesses: va + width).
  uint64_t access_end = 0;
  bool is_write = false;
  PageTable* page_table = nullptr;
};

// Returns kOk if the fault was resolved (mapping changed; retry the access), or an error that
// becomes the guest-visible fault.
using FaultResolver = std::function<Result<void>(const PageFaultInfo&)>;

struct MachineConfig {
  uint64_t phys_frames = (2 * kGiB) / kPageSize;
  CostModel costs;
};

class Machine {
 public:
  explicit Machine(const MachineConfig& config);

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  FrameAllocator& frames() { return frames_; }
  const FrameAllocator& frames() const { return frames_; }
  const CostModel& costs() const { return costs_; }
  CostModel& mutable_costs() { return costs_; }

  void set_cycle_sink(std::function<void(Cycles)> sink) { cycle_sink_ = std::move(sink); }
  void set_fault_resolver(FaultResolver resolver) { fault_resolver_ = std::move(resolver); }

  // Compaction forwarding window (DESIGN.md §4.13): consulted only when translation finds no
  // PTE at all. Returning an alternate page-aligned VA retries the lookup there, so the moved
  // prefix of a mid-move region resolves against its new half. With no move in flight the hook
  // returns nullopt and the unmapped access faults exactly as before; the extra walk charges
  // no cycles (the forwarding table lookup is folded into the access cost).
  using VaForwarder = std::function<std::optional<uint64_t>(uint64_t page_va)>;
  void set_va_forwarder(VaForwarder forwarder) { va_forwarder_ = std::move(forwarder); }

  void Charge(Cycles cycles) {
    if (cycle_sink_) {
      cycle_sink_(cycles);
    }
  }

  // --- Data access ----------------------------------------------------------------------------

  Result<void> Load(PageTable& pt, const Capability& auth, uint64_t va,
                    std::span<std::byte> out);
  Result<void> Store(PageTable& pt, const Capability& auth, uint64_t va,
                     std::span<const std::byte> in);
  Result<void> Fill(PageTable& pt, const Capability& auth, uint64_t va, uint64_t size,
                    std::byte value);

  // Guest-to-guest copy (memcpy semantics, no tag propagation — plain data view).
  Result<void> Copy(PageTable& pt, const Capability& dst_auth, uint64_t dst,
                    const Capability& src_auth, uint64_t src, uint64_t size);

  template <typename T>
  Result<T> LoadScalar(PageTable& pt, const Capability& auth, uint64_t va) {
    static_assert(std::is_trivially_copyable_v<T>);
    T value{};
    UF_RETURN_IF_ERROR(Load(pt, auth, va, std::as_writable_bytes(std::span(&value, 1))));
    return value;
  }
  template <typename T>
  Result<void> StoreScalar(PageTable& pt, const Capability& auth, uint64_t va, T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    return Store(pt, auth, va, std::as_bytes(std::span(&value, 1)));
  }

  // --- Capability access ----------------------------------------------------------------------

  // Tagged loads honour the kPteLoadCapFault attribute (CoPA). Untagged granules load as
  // integers without faulting, exactly as the paper requires ("non memory reference loads do
  // not trigger copying", §3.8).
  Result<Capability> LoadCap(PageTable& pt, const Capability& auth, uint64_t va);
  Result<void> StoreCap(PageTable& pt, const Capability& auth, uint64_t va,
                        const Capability& value);

  // --- Privileged (kernel) helpers: no capability checks, no fault resolution -----------------
  //
  // Used by the kernel on pages it owns outright (building images, fault handling itself).
  void KernelWrite(PageTable& pt, uint64_t va, std::span<const std::byte> in);
  void KernelRead(PageTable& pt, uint64_t va, std::span<std::byte> out);
  void KernelStoreCap(PageTable& pt, uint64_t va, const Capability& value);
  Result<Capability> KernelLoadCap(PageTable& pt, uint64_t va);

  // Accounting: total resolvable faults serviced, by kind. Atomic: shard workers fault
  // concurrently through the one shared machine (DESIGN.md §4.11).
  uint64_t cow_faults() const { return cow_faults_.load(std::memory_order_relaxed); }
  uint64_t cap_load_faults() const {
    return cap_load_faults_.load(std::memory_order_relaxed);
  }
  uint64_t demand_faults() const { return demand_faults_.load(std::memory_order_relaxed); }

 private:
  // Translates, checks page permissions, and resolves CoW/CoPA faults. Returns the PTE.
  // `access_end` is the exclusive end of the full guest access (forwarded to the resolver).
  Result<Pte> TranslateForAccess(PageTable& pt, uint64_t page_va, uint64_t access_end,
                                 bool is_write, bool is_tagged_cap_load);

  FrameAllocator frames_;
  CostModel costs_;
  std::function<void(Cycles)> cycle_sink_;
  FaultResolver fault_resolver_;
  VaForwarder va_forwarder_;
  std::atomic<uint64_t> cow_faults_{0};
  std::atomic<uint64_t> cap_load_faults_{0};
  std::atomic<uint64_t> demand_faults_{0};
};

}  // namespace ufork

#endif  // UFORK_SRC_MACHINE_MACHINE_H_
