#include "src/machine/machine.h"

#include <algorithm>

namespace ufork {

Machine::Machine(const MachineConfig& config)
    : frames_(config.phys_frames), costs_(config.costs) {}

Result<Pte> Machine::TranslateForAccess(PageTable& pt, uint64_t page_va, uint64_t access_end,
                                        bool is_write, bool is_tagged_cap_load) {
  for (int attempt = 0; attempt < 2; ++attempt) {
    Pte* pte = pt.LookupMutable(page_va);
    if (pte == nullptr && va_forwarder_) {
      // Mid-move forwarding: pages already relocated by the incremental compactor are mapped
      // only at their destination; the service's window translates the stale source VA.
      if (const std::optional<uint64_t> fwd = va_forwarder_(page_va); fwd.has_value()) {
        pte = pt.LookupMutable(*fwd);
      }
    }
    if (pte == nullptr) {
      return Error{Code::kFaultNotMapped, "access to unmapped page"};
    }
    if ((pte->flags & kPteNotPresent) != 0) {
      // Demand-paging reservation: the VA is mapped but holds no frame yet. The kernel's
      // demand-fill path populates it (zero-fill or page-cache read-through); a failed fill
      // surfaces as an unresolvable fault the kernel turns into SIGSEGV.
      if (!fault_resolver_ || attempt == 1) {
        return Error{Code::kFaultNotPresent, "access to unpopulated page"};
      }
      PageFaultInfo info;
      info.kind = Code::kFaultNotPresent;
      info.va = page_va;
      info.access_end = std::max(access_end, page_va + 1);
      info.is_write = is_write;
      info.page_table = &pt;
      Charge(costs_.page_fault);
      demand_faults_.fetch_add(1, std::memory_order_relaxed);
      UF_RETURN_IF_ERROR(fault_resolver_(info));
      continue;  // retry with the populated mapping
    }
    // First touch of a speculatively-resolved page: consume the fault-around marker so the
    // adaptive controller knows the speculative copy paid off (host-side bookkeeping only).
    pte->flags &= ~kPteFaultAround;
    const uint32_t required = is_write ? kPteWrite : kPteRead;
    const bool perm_ok = (pte->flags & required) == required;
    const bool cap_load_fault = is_tagged_cap_load && (pte->flags & kPteLoadCapFault) != 0;
    if (perm_ok && !cap_load_fault) {
      return *pte;
    }
    // A permission violation on a CoW-shared page, or a tagged capability load through a
    // load-cap-fault PTE, is resolvable by the fork engine. Anything else is fatal.
    const bool resolvable = (pte->flags & kPteCow) != 0 || cap_load_fault;
    if (!resolvable || !fault_resolver_ || attempt == 1) {
      return Error{perm_ok ? Code::kFaultCapLoadPage : Code::kFaultPageProt,
                   "page permission violation"};
    }
    PageFaultInfo info;
    info.kind = !perm_ok ? Code::kFaultPageProt : Code::kFaultCapLoadPage;
    info.va = page_va;
    info.access_end = std::max(access_end, page_va + 1);
    info.is_write = is_write;
    info.page_table = &pt;
    Charge(costs_.page_fault);
    if (!perm_ok && (pte->flags & kPteCow) != 0) {
      cow_faults_.fetch_add(1, std::memory_order_relaxed);
    } else {
      cap_load_faults_.fetch_add(1, std::memory_order_relaxed);
    }
    UF_RETURN_IF_ERROR(fault_resolver_(info));
    // Retry with the updated mapping.
  }
  UF_UNREACHABLE();
}

Result<void> Machine::Load(PageTable& pt, const Capability& auth, uint64_t va,
                           std::span<std::byte> out) {
  UF_RETURN_IF_ERROR(auth.CheckAccess(va, out.size(), kPermLoad));
  Charge(out.size() <= 16 ? costs_.load_unit : costs_.BulkCopy(out.size()) + costs_.load_unit);
  uint64_t done = 0;
  while (done < out.size()) {
    const uint64_t addr = va + done;
    const uint64_t page_va = AlignDown(addr, kPageSize);
    const uint64_t offset = addr - page_va;
    const uint64_t chunk = std::min<uint64_t>(out.size() - done, kPageSize - offset);
    UF_ASSIGN_OR_RETURN(const Pte pte,
                        TranslateForAccess(pt, page_va, va + out.size(), /*is_write=*/false,
                                           /*is_tagged_cap_load=*/false));
    frames_.frame(pte.frame).Read(offset, out.subspan(done, chunk));
    done += chunk;
  }
  return OkResult();
}

Result<void> Machine::Store(PageTable& pt, const Capability& auth, uint64_t va,
                            std::span<const std::byte> in) {
  UF_RETURN_IF_ERROR(auth.CheckAccess(va, in.size(), kPermStore));
  Charge(in.size() <= 16 ? costs_.store_unit : costs_.BulkCopy(in.size()) + costs_.store_unit);
  uint64_t done = 0;
  while (done < in.size()) {
    const uint64_t addr = va + done;
    const uint64_t page_va = AlignDown(addr, kPageSize);
    const uint64_t offset = addr - page_va;
    const uint64_t chunk = std::min<uint64_t>(in.size() - done, kPageSize - offset);
    UF_ASSIGN_OR_RETURN(const Pte pte,
                        TranslateForAccess(pt, page_va, va + in.size(), /*is_write=*/true,
                                           /*is_tagged_cap_load=*/false));
    frames_.frame(pte.frame).Write(offset, in.subspan(done, chunk));
    done += chunk;
  }
  return OkResult();
}

Result<void> Machine::Fill(PageTable& pt, const Capability& auth, uint64_t va, uint64_t size,
                           std::byte value) {
  UF_RETURN_IF_ERROR(auth.CheckAccess(va, size, kPermStore));
  Charge(costs_.BulkCopy(size) + costs_.store_unit);
  uint64_t done = 0;
  while (done < size) {
    const uint64_t addr = va + done;
    const uint64_t page_va = AlignDown(addr, kPageSize);
    const uint64_t offset = addr - page_va;
    const uint64_t chunk = std::min<uint64_t>(size - done, kPageSize - offset);
    UF_ASSIGN_OR_RETURN(const Pte pte,
                        TranslateForAccess(pt, page_va, va + size, /*is_write=*/true,
                                           /*is_tagged_cap_load=*/false));
    frames_.frame(pte.frame).Fill(offset, chunk, value);
    done += chunk;
  }
  return OkResult();
}

Result<void> Machine::Copy(PageTable& pt, const Capability& dst_auth, uint64_t dst,
                           const Capability& src_auth, uint64_t src, uint64_t size) {
  // Chunked through a per-host-thread bounce buffer; real guests use memcpy which the bulk
  // cost models. The buffer grows to the high-water chunk size once per worker and is reused
  // ever after — thread_local because shard workers copy concurrently through one machine.
  static thread_local std::vector<std::byte> copy_scratch_;
  const uint64_t chunk_cap = std::min<uint64_t>(size, 64 * kKiB);
  if (copy_scratch_.size() < chunk_cap) {
    copy_scratch_.resize(chunk_cap);
  }
  uint64_t done = 0;
  while (done < size) {
    const uint64_t chunk = std::min<uint64_t>(size - done, chunk_cap);
    UF_RETURN_IF_ERROR(Load(pt, src_auth, src + done, std::span(copy_scratch_.data(), chunk)));
    UF_RETURN_IF_ERROR(
        Store(pt, dst_auth, dst + done, std::span(copy_scratch_.data(), chunk)));
    done += chunk;
  }
  return OkResult();
}

Result<Capability> Machine::LoadCap(PageTable& pt, const Capability& auth, uint64_t va) {
  UF_RETURN_IF_ERROR(auth.CheckAccess(va, kCapSize, kPermLoad | kPermLoadCap));
  Charge(costs_.cap_load_unit);
  const uint64_t page_va = AlignDown(va, kPageSize);
  // First translate without the cap-load attribute check to inspect the tag: untagged granules
  // load as plain integers and never trigger CoPA ("non memory reference loads do not trigger
  // copying", §3.8). The hardware analogue: the LC fault fires only when the loaded tag is set.
  UF_ASSIGN_OR_RETURN(Pte pte, TranslateForAccess(pt, page_va, va + kCapSize,
                                                  /*is_write=*/false,
                                                  /*is_tagged_cap_load=*/false));
  const bool tagged = frames_.frame(pte.frame).TagAt(va - page_va);
  if (tagged && (pte.flags & kPteLoadCapFault) != 0) {
    UF_ASSIGN_OR_RETURN(pte, TranslateForAccess(pt, page_va, va + kCapSize,
                                                /*is_write=*/false,
                                                /*is_tagged_cap_load=*/true));
  }
  return frames_.frame(pte.frame).LoadCap(va - page_va);
}

Result<void> Machine::StoreCap(PageTable& pt, const Capability& auth, uint64_t va,
                               const Capability& value) {
  uint32_t required = kPermStore;
  if (value.tag()) {
    required |= kPermStoreCap;
  }
  UF_RETURN_IF_ERROR(auth.CheckAccess(va, kCapSize, required));
  Charge(costs_.cap_store_unit);
  const uint64_t page_va = AlignDown(va, kPageSize);
  UF_ASSIGN_OR_RETURN(const Pte pte, TranslateForAccess(pt, page_va, va + kCapSize,
                                                        /*is_write=*/true,
                                                        /*is_tagged_cap_load=*/false));
  frames_.frame(pte.frame).StoreCap(va - page_va, value);
  return OkResult();
}

void Machine::KernelWrite(PageTable& pt, uint64_t va, std::span<const std::byte> in) {
  uint64_t done = 0;
  while (done < in.size()) {
    const uint64_t addr = va + done;
    const uint64_t page_va = AlignDown(addr, kPageSize);
    const uint64_t offset = addr - page_va;
    const uint64_t chunk = std::min<uint64_t>(in.size() - done, kPageSize - offset);
    const std::optional<Pte> pte = pt.Lookup(page_va);
    UF_CHECK_MSG(pte.has_value() && PtePopulated(*pte), "kernel write to unmapped page");
    frames_.frame(pte->frame).Write(offset, in.subspan(done, chunk));
    done += chunk;
  }
}

void Machine::KernelRead(PageTable& pt, uint64_t va, std::span<std::byte> out) {
  uint64_t done = 0;
  while (done < out.size()) {
    const uint64_t addr = va + done;
    const uint64_t page_va = AlignDown(addr, kPageSize);
    const uint64_t offset = addr - page_va;
    const uint64_t chunk = std::min<uint64_t>(out.size() - done, kPageSize - offset);
    const std::optional<Pte> pte = pt.Lookup(page_va);
    UF_CHECK_MSG(pte.has_value() && PtePopulated(*pte), "kernel read from unmapped page");
    frames_.frame(pte->frame).Read(offset, out.subspan(done, chunk));
    done += chunk;
  }
}

void Machine::KernelStoreCap(PageTable& pt, uint64_t va, const Capability& value) {
  const uint64_t page_va = AlignDown(va, kPageSize);
  const std::optional<Pte> pte = pt.Lookup(page_va);
  UF_CHECK_MSG(pte.has_value() && PtePopulated(*pte), "kernel cap store to unmapped page");
  frames_.frame(pte->frame).StoreCap(va - page_va, value);
}

Result<Capability> Machine::KernelLoadCap(PageTable& pt, uint64_t va) {
  const uint64_t page_va = AlignDown(va, kPageSize);
  const std::optional<Pte> pte = pt.Lookup(page_va);
  if (!pte.has_value() || !PtePopulated(*pte)) {
    return Error{Code::kFaultNotMapped, "kernel cap load from unmapped page"};
  }
  return frames_.frame(pte->frame).LoadCap(va - page_va);
}

}  // namespace ufork
