// Virtual-time cost model.
//
// Every simulated operation charges a number of CPU cycles (2.5 GHz, see base/units.h) to the
// running thread. The constants below are calibrated so the microbenchmark results land near
// the absolute numbers published in the paper (§5); each constant documents its anchor. The
// paper's claims are relative (ratios, crossovers), which the calibrated model preserves;
// EXPERIMENTS.md records measured-vs-paper for every figure.
//
// Three syscall entry flavours model the three systems compared:
//   * kSealedEntry  — μFork: sealed-capability branch, same exception level, no trap (§4.4).
//   * kTrap         — CheriBSD: classical SVC trap + kernel entry.
//   * kHypercall    — Nephele: trap into the guest kernel plus hypervisor transition.
#ifndef UFORK_SRC_MACHINE_COST_MODEL_H_
#define UFORK_SRC_MACHINE_COST_MODEL_H_

#include <cstdint>

#include "src/base/units.h"

namespace ufork {

enum class SyscallEntryKind { kSealedEntry, kTrap, kHypercall };

struct CostModel {
  // --- Security domain transitions -----------------------------------------------------------
  Cycles syscall_sealed_entry = 80;   // CInvoke on a sentry + return, no exception (paper §4.4)
  Cycles syscall_trap = 950;          // SVC + EL1 entry/exit + register save/restore
  Cycles hypercall = 3'500;           // guest trap + VM exit/entry
  Cycles context_switch = 150;        // same-address-space thread switch (SASOS)
  Cycles tlb_flush = 1'400;           // address-space switch penalty in the MAS baseline (§2.2)

  // --- Memory system --------------------------------------------------------------------------
  Cycles load_unit = 5;           // scalar load issued by guest code
  Cycles store_unit = 5;          // scalar store
  Cycles cap_load_unit = 7;       // capability-width load incl. tag read
  Cycles cap_store_unit = 7;      // capability-width store incl. tag write
  // Streaming copy bandwidth (memcpy-style guest ops). Morello pure-capability memcpy moves
  // tags alongside data; ~3 B/cycle matches the prototype microarchitecture reports [117].
  double bulk_bytes_per_cycle = 3.0;

  // --- Paging / fork mechanics ----------------------------------------------------------------
  Cycles frame_alloc = 160;          // grab a free frame + zero bookkeeping
  Cycles page_copy = 1'000;          // copy 4 KiB (incl. tag bits)
  Cycles page_tag_scan = 290;        // scan 256 granules for valid tags (§4.2, 16-byte stride)
  Cycles cap_relocate = 24;          // rebase + re-bound one capability
  Cycles pte_dup = 14;               // duplicate one PTE during fork (batched, μFork)
  Cycles coa_parent_clear = 2;       // per page: CoA additionally clears parent access bits
  Cycles mas_page_extra = 86;        // per page: vm_map entry + pv tracking in the MAS fork
  Cycles pte_update = 90;            // fault-path PTE rewrite + local TLB shootdown
  // Rewriting a whole fault-around window of PTEs under one coalesced TLB shootdown. The
  // shootdown (IPI + invalidate broadcast) dominates pte_update, so a batch costs little more
  // than a single update; kept distinct from pte_update so the batching stays observable in
  // the cost model instead of pretending N updates are free.
  Cycles pte_update_batched = 130;
  Cycles page_fault = 420;           // exception entry + fault decode + handler dispatch
  Cycles pt_node_alloc = 220;        // allocate one radix table node (MAS fork)

  // --- Fork fixed overheads (latency anchors: Fig. 8 hello-world fork) -------------------------
  // μFork 54 μs / CheriBSD 197 μs / Nephele 10.7 ms.
  Cycles fork_base_sas = 125'000;       // region alloc, task struct, PID, fd dup, registers
  Cycles fork_base_mas = 450'000;       // vmspace + vm_map duplication machinery
  Cycles vmclone_domain_create = 26'200'000;  // Xen domain creation + console/store wiring
  Cycles proc_teardown = 9'000;         // exit(): resource teardown, zombie reaping
  Cycles exec_base = 55'000;            // exec/spawn: image setup, auxv, entry trampoline

  // --- Kernel services -------------------------------------------------------------------------
  Cycles fd_dup = 180;              // duplicate one descriptor at fork
  Cycles pipe_op = 2'800;           // pipe buffer bookkeeping per read/write (excl. byte copy)
  Cycles vfs_op = 420;              // ramdisk open/close/metadata op
  double vfs_bytes_per_cycle = 3.5;  // ramdisk streaming bandwidth
  Cycles sched_wakeup = 400;        // run-queue insertion of a ready thread
  // Waking a thread blocked on an IPC object: cross-core IPI + scheduler entry. CheriBSD's
  // sleepqueue path plus idle-thread switch is costlier (the bench config raises it; anchors
  // the Fig. 9 Context1 gap: 245 ms vs 419 ms per 100k increments).
  Cycles blocking_wake = 1'300;
  Cycles validation_check = 55;     // argument sanity checks per syscall (§4.4, third principle)
  Cycles tocttou_fixed = 140;       // bounce-buffer setup per referenced buffer (§4.4, fourth)
  double tocttou_bytes_per_cycle = 7.0;  // copy-in/copy-out bandwidth

  Cycles SyscallEntry(SyscallEntryKind kind) const {
    switch (kind) {
      case SyscallEntryKind::kSealedEntry:
        return syscall_sealed_entry;
      case SyscallEntryKind::kTrap:
        return syscall_trap;
      case SyscallEntryKind::kHypercall:
        return hypercall;
    }
    return syscall_trap;
  }

  Cycles BulkCopy(uint64_t bytes) const {
    return static_cast<Cycles>(static_cast<double>(bytes) / bulk_bytes_per_cycle);
  }
  Cycles VfsTransfer(uint64_t bytes) const {
    return static_cast<Cycles>(static_cast<double>(bytes) / vfs_bytes_per_cycle);
  }
  Cycles TocttouCopy(uint64_t bytes) const {
    return tocttou_fixed +
           static_cast<Cycles>(static_cast<double>(bytes) / tocttou_bytes_per_cycle);
  }
};

}  // namespace ufork

#endif  // UFORK_SRC_MACHINE_COST_MODEL_H_
