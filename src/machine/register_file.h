// Simulated capability register file.
//
// On Morello every general-purpose register is capability-width and carries a tag, so integers
// and pointers coexist in the same file; μFork exploits this at fork time to relocate exactly
// the registers that hold capabilities (paper §3.5 step 2: "tags extend to values in registers,
// allowing differentiation of pointers from integers").
#ifndef UFORK_SRC_MACHINE_REGISTER_FILE_H_
#define UFORK_SRC_MACHINE_REGISTER_FILE_H_

#include <array>

#include "src/cheri/capability.h"

namespace ufork {

inline constexpr int kNumGpRegisters = 31;  // c0..c30 (c31 is the zero register)

struct RegisterFile {
  std::array<Capability, kNumGpRegisters> c{};
  Capability pcc;  // program counter capability: bounds PIC-relative references (§4.2)
  Capability csp;  // stack pointer capability
  Capability ddc;  // default data capability: ambient authority over the μprocess region

  // Counts tagged (capability-holding) registers — the work the fork-time relocation does.
  int CountTagged() const {
    int n = 0;
    for (const auto& reg : c) {
      n += reg.tag() ? 1 : 0;
    }
    n += pcc.tag() ? 1 : 0;
    n += csp.tag() ? 1 : 0;
    n += ddc.tag() ? 1 : 0;
    return n;
  }
};

}  // namespace ufork

#endif  // UFORK_SRC_MACHINE_REGISTER_FILE_H_
