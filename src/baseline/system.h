// Convenience constructors wiring a Kernel to each fork backend.
//
// The three functions correspond to the three systems the paper compares (§5): μFork on
// Unikraft, CheriBSD (monolithic MAS), and Nephele (VM cloning).
#ifndef UFORK_SRC_BASELINE_SYSTEM_H_
#define UFORK_SRC_BASELINE_SYSTEM_H_

#include <memory>

#include "src/baseline/mas_backend.h"
#include "src/baseline/vmclone_backend.h"
#include "src/kernel/kernel.h"
#include "src/ufork/compaction.h"
#include "src/ufork/ufork_backend.h"

namespace ufork {

inline std::unique_ptr<Kernel> MakeUforkKernel(KernelConfig config = {}) {
  auto kernel = std::make_unique<Kernel>(config, std::make_unique<UforkBackend>());
  // Only μFork owns a relocation mechanism, so only μFork gets the incremental compaction
  // backend; MAS and VM-clone kernels leave the service engine-less (it never runs).
  kernel->compaction().InstallEngine(MakeUforkCompactionEngine(*kernel));
  return kernel;
}

inline std::unique_ptr<Kernel> MakeMasKernel(KernelConfig config = {},
                                             MasParams params = {}) {
  // A monolithic kernel has fine-grained locking, not Unikraft's big kernel lock. Model it as
  // uncontended lock domains (zero acquire/release cost) rather than per-service locks so the
  // baseline's virtual timings stay exactly what they were before lock domains existed.
  // Sharded hosts need a real mutex per domain, so they fall back to per-service granularity;
  // host mutexes charge no virtual cycles, preserving the zero-cost model (DESIGN.md §4.11).
  config.lock_mode =
      config.host_shards > 1 ? LockMode::kPerService : LockMode::kUncontended;
  return std::make_unique<Kernel>(config, std::make_unique<MasBackend>(params));
}

inline std::unique_ptr<Kernel> MakeVmCloneKernel(KernelConfig config = {},
                                                 VmCloneParams params = {}) {
  return std::make_unique<Kernel>(config, std::make_unique<VmCloneBackend>(params));
}

}  // namespace ufork

#endif  // UFORK_SRC_BASELINE_SYSTEM_H_
