// Multi-address-space baseline: a CheriBSD-like monolithic kernel's fork.
//
// Every process owns a private page table with an identical virtual layout, so fork duplicates
// PTEs at the *same* virtual addresses — no capability relocation is ever needed, which is
// exactly why this design cannot be a single address space. Costs differ from μFork on the
// axes the paper identifies (§5): trap-based syscalls, TLB flushes on address-space switches,
// heavier fork machinery (vmspace duplication), and larger process residency (shared
// libraries, allocator dirtying).
#ifndef UFORK_SRC_BASELINE_MAS_BACKEND_H_
#define UFORK_SRC_BASELINE_MAS_BACKEND_H_

#include "src/kernel/fork_backend.h"
#include "src/kernel/kernel_core.h"

namespace ufork {

struct MasParams {
  // Residency added per process for shared libraries / dynamic linker images (Fig. 8 shows
  // 0.29 MB vs μFork's 0.13 MB for hello world; the delta is libraries + allocator, §5.2).
  uint64_t shared_lib_bytes = 288 * kKiB;
  // Fraction of CoW-shared writable bytes the process's allocator effectively dirties over its
  // lifetime. Models CheriBSD/jemalloc behaviour the paper calls out for Fig. 5 ("higher
  // allocator memory consumption", 56 MB for the forked Redis child at a 100 MB database).
  double allocator_dirty_fraction = 0.0;
};

class MasBackend : public ForkBackend {
 public:
  explicit MasBackend(const MasParams& params) : params_(params) {}

  const char* name() const override { return "CheriBSD-MAS"; }
  SyscallEntryKind syscall_kind() const override { return SyscallEntryKind::kTrap; }
  bool private_page_tables() const override { return true; }

  Cycles ContextSwitchCost(const CostModel& costs, Uproc* prev, Uproc* next) const override {
    Cycles cost = costs.context_switch;
    if (next != nullptr && next != prev) {
      cost += costs.tlb_flush;  // page-table switch: the SASOS-motivating overhead (§2.2)
    }
    return cost;
  }

  Result<Pid> Fork(KernelCore& kernel, Uproc& parent, UprocEntry entry) override;
  Result<void> ResolveFault(KernelCore& kernel, const PageFaultInfo& info) override;
  void OnExit(KernelCore& kernel, Uproc& uproc) override;
  uint64_t ExtraResidencyBytes(const KernelCore& kernel, const Uproc& uproc) const override;

 private:
  MasParams params_;
};

}  // namespace ufork

#endif  // UFORK_SRC_BASELINE_MAS_BACKEND_H_
