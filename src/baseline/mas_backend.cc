#include "src/baseline/mas_backend.h"

#include "src/guest/tinyalloc.h"
#include "src/kernel/fault_around.h"

#include <array>
#include <span>
#include <vector>

namespace ufork {

Result<Pid> MasBackend::Fork(KernelCore& kernel, Uproc& parent, UprocEntry entry) {
  Machine& machine = kernel.machine();
  const CostModel& costs = kernel.costs();
  machine.Charge(costs.fork_base_mas);

  Uproc& child = kernel.CreateUprocShell(parent.name + "+", parent.pid());
  if (auto mem = kernel.AllocateUprocMemory(child, /*private_page_table=*/true); !mem.ok()) {
    kernel.DestroyUprocShell(child);  // no ghost child on construction failure
    return mem.error();
  }

  ForkStats stats;
  PageTable& parent_pt = *parent.page_table;
  PageTable& child_pt = *child.page_table;
  std::vector<std::pair<uint64_t, Pte>> parent_pages;
  parent_pt.ForEachMapped(parent.base, parent.base + parent.size,
                          [&](uint64_t va, const Pte& pte) {
                            parent_pages.emplace_back(va, pte);
                          });
  for (const auto& [va, pte] : parent_pages) {
    // Classic CoW (§3.8): identical virtual addresses, shared frames; only writable pages need
    // the CoW break, read-only segments are shared for good. Building a fresh page-table
    // hierarchy plus vm_map/pv bookkeeping is what makes the MAS fork per-page cost higher
    // than μFork's batched PTE copy within one table.
    machine.Charge(costs.pte_dup + costs.mas_page_extra);
    if (!PtePopulated(pte)) {
      // Demand reservation: the child inherits the lazy state verbatim — there is no frame
      // to share, copy, or CoW-protect; each side fills privately on first touch.
      child_pt.Map(va, kInvalidFrame, pte.flags);
      ++stats.pages_reserved;
      continue;
    }
    machine.frames().AddRef(pte.frame);
    if ((pte.flags & kPteShared) != 0) {
      child_pt.Map(va, pte.frame, pte.flags);  // MAP_SHARED: no CoW
    } else if ((pte.flags & kPteWrite) != 0) {
      const uint32_t shared = (pte.flags & ~kPteWrite) | kPteCow;
      child_pt.Map(va, pte.frame, shared);
      parent_pt.SetFlags(va, shared);
    } else {
      child_pt.Map(va, pte.frame, pte.flags);
    }
    ++stats.pages_mapped;
  }
  machine.Charge(costs.pt_node_alloc * child_pt.node_count());

  child.fds = parent.fds->Clone();
  machine.Charge(costs.fd_dup * static_cast<uint64_t>(child.fds->OpenCount()));
  child.mmap_cursor = parent.mmap_cursor;
  // Same virtual layout: registers (and every capability in memory) stay valid verbatim.
  child.regs = parent.regs;
  child.syscall_sentry = parent.syscall_sentry;
  child.signals = parent.signals.ForkCopy();
  child.forked_child = true;
  child.fork_stats = stats;
  child.child_affinity = parent.child_affinity;
  kernel.StartUprocThread(child, std::move(entry), parent.child_affinity);
  return child.pid();
}

Result<void> MasBackend::ResolveFault(KernelCore& kernel, const PageFaultInfo& info) {
  Uproc* uproc = kernel.UprocByPageTable(info.page_table);
  if (uproc == nullptr) {
    return Error{Code::kFaultNotMapped, "fault against an unowned page table"};
  }
  PageTable& pt = *info.page_table;
  Pte* pte = pt.LookupMutable(info.va);
  if (pte == nullptr) {
    // Guest-reachable: delivered to the faulting μprocess, never a host abort.
    return Error{Code::kFaultNotMapped, "fault on unmapped page"};
  }
  if ((pte->flags & kPteNotPresent) != 0) {
    return ResolveDemandFault(kernel, *uproc, pt, info, *pte);
  }
  if ((pte->flags & kPteCow) == 0 || !info.is_write) {
    return Error{Code::kFaultPageProt, "unresolvable page fault"};
  }
  return ResolveCowWriteWindow(kernel, *uproc, pt, info, *pte);
}

void MasBackend::OnExit(KernelCore& kernel, Uproc& uproc) {
  FaultAroundAccountExitWaste(kernel, uproc);
}

uint64_t MasBackend::ExtraResidencyBytes(const KernelCore& kernel, const Uproc& uproc) const {
  uint64_t extra = params_.shared_lib_bytes;
  if (params_.allocator_dirty_fraction > 0.0 && uproc.page_table != nullptr) {
    // jemalloc metadata walks and junk-filling dirty pages in proportion to the heap the
    // application actually uses; read the live figure from the guest allocator's root page
    // (layout documented in tinyalloc.h).
    const uint64_t heap_root = uproc.base + kernel.layout().heap_off();
    const std::optional<Pte> pte = uproc.page_table->Lookup(heap_root);
    if (pte.has_value() && PtePopulated(*pte)) {
      uint64_t in_use = 0;
      kernel.machine().frames().frame(pte->frame).Read(
          tinyalloc::kRootBytesInUseOffset,
          std::as_writable_bytes(std::span(&in_use, 1)));
      extra += static_cast<uint64_t>(params_.allocator_dirty_fraction *
                                     static_cast<double>(in_use));
    }
  }
  return extra;
}

}  // namespace ufork
