// VM-clone baseline: a Nephele-like "OS as a process" fork (paper §2.3).
//
// The SASOS runs under a hypervisor which implements fork by cloning the entire guest VM:
// creating a new domain (the dominating cost — the paper measures 10.7 ms per fork) and
// copying the whole guest physical image. No relocation is needed (each clone is its own
// address space) but lightweightness is lost: multiple address spaces return, every clone
// carries the full OS image, and cross-"process" switches pay VM-switch costs.
#ifndef UFORK_SRC_BASELINE_VMCLONE_BACKEND_H_
#define UFORK_SRC_BASELINE_VMCLONE_BACKEND_H_

#include "src/kernel/fork_backend.h"
#include "src/kernel/kernel_core.h"

namespace ufork {

struct VmCloneParams {
  // Residency added per clone for the guest OS image + hypervisor metadata (Fig. 8: 1.6 MB per
  // hello-world process vs 0.13 MB on μFork).
  uint64_t vm_image_bytes = 304 * kKiB;
};

class VmCloneBackend : public ForkBackend {
 public:
  explicit VmCloneBackend(const VmCloneParams& params) : params_(params) {}

  const char* name() const override { return "Nephele-VMClone"; }
  // Inside the unikernel guest, syscalls are function calls; the hypervisor is only involved
  // in fork and VM switches.
  SyscallEntryKind syscall_kind() const override { return SyscallEntryKind::kSealedEntry; }
  bool private_page_tables() const override { return true; }

  Cycles ContextSwitchCost(const CostModel& costs, Uproc* prev, Uproc* next) const override {
    Cycles cost = costs.context_switch;
    if (next != nullptr && next != prev) {
      cost += costs.tlb_flush + costs.hypercall;  // world switch between domains
    }
    return cost;
  }

  Result<Pid> Fork(KernelCore& kernel, Uproc& parent, UprocEntry entry) override;

  // Clones never share memory across domains, so the only resolvable faults are demand fills
  // and CoW breaks against the host's page cache (SysMmapFile); anything else is a bug.
  Result<void> ResolveFault(KernelCore& kernel, const PageFaultInfo& info) override;

  void OnExit(KernelCore& kernel, Uproc& uproc) override;

  uint64_t ExtraResidencyBytes(const KernelCore& kernel, const Uproc& uproc) const override {
    (void)kernel, (void)uproc;
    return params_.vm_image_bytes;
  }

 private:
  VmCloneParams params_;
};

}  // namespace ufork

#endif  // UFORK_SRC_BASELINE_VMCLONE_BACKEND_H_
