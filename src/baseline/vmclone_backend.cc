#include "src/baseline/vmclone_backend.h"

#include <vector>

namespace ufork {

Result<Pid> VmCloneBackend::Fork(KernelCore& kernel, Uproc& parent, UprocEntry entry) {
  Machine& machine = kernel.machine();
  const CostModel& costs = kernel.costs();
  // Creating a Xen domain: hypercalls, domain structures, console/xenstore wiring. This fixed
  // cost dominates (Fig. 8: 10.7 ms vs μFork's 54 μs).
  machine.Charge(costs.vmclone_domain_create + costs.hypercall);

  Uproc& child = kernel.CreateUprocShell(parent.name + "+", parent.pid());
  if (auto mem = kernel.AllocateUprocMemory(child, /*private_page_table=*/true); !mem.ok()) {
    kernel.DestroyUprocShell(child);  // no ghost child on construction failure
    return mem.error();
  }

  ForkStats stats;
  PageTable& parent_pt = *parent.page_table;
  PageTable& child_pt = *child.page_table;
  std::vector<std::pair<uint64_t, Pte>> parent_pages;
  parent_pt.ForEachMapped(parent.base, parent.base + parent.size,
                          [&](uint64_t va, const Pte& pte) {
                            parent_pages.emplace_back(va, pte);
                          });
  for (const auto& [va, pte] : parent_pages) {
    // Full synchronous copy of the guest image — no sharing across domains.
    auto frame = machine.frames().AllocateForCopy();
    if (!frame.ok()) {
      // Undo the half-built child completely (see UforkBackend::Fork): a leftover shell would
      // be a permanently-running ghost child that hangs the parent's wait().
      kernel.ReleaseUprocMemory(child);
      kernel.DestroyUprocShell(child);
      return frame.error();
    }
    machine.Charge(costs.frame_alloc + costs.page_copy + costs.pte_dup);
    machine.frames().frame(*frame).CopyFrom(machine.frames().frame(pte.frame));
    child_pt.Map(va, *frame, pte.flags);
    ++stats.pages_mapped;
    ++stats.pages_copied_eagerly;
    stats.bytes_copied_eagerly += kPageSize;
  }
  machine.Charge(costs.pt_node_alloc * child_pt.node_count());

  child.fds = parent.fds->Clone();
  machine.Charge(costs.fd_dup * static_cast<uint64_t>(child.fds->OpenCount()));
  child.mmap_cursor = parent.mmap_cursor;
  child.regs = parent.regs;
  child.syscall_sentry = parent.syscall_sentry;
  child.signals = parent.signals.ForkCopy();
  child.forked_child = true;
  child.fork_stats = stats;
  child.child_affinity = parent.child_affinity;
  kernel.StartUprocThread(child, std::move(entry), parent.child_affinity);
  return child.pid();
}

}  // namespace ufork
