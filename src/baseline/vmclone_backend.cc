#include "src/baseline/vmclone_backend.h"

#include <vector>

#include "src/kernel/fault_around.h"

namespace ufork {

Result<Pid> VmCloneBackend::Fork(KernelCore& kernel, Uproc& parent, UprocEntry entry) {
  Machine& machine = kernel.machine();
  const CostModel& costs = kernel.costs();
  // Creating a Xen domain: hypercalls, domain structures, console/xenstore wiring. This fixed
  // cost dominates (Fig. 8: 10.7 ms vs μFork's 54 μs).
  machine.Charge(costs.vmclone_domain_create + costs.hypercall);

  Uproc& child = kernel.CreateUprocShell(parent.name + "+", parent.pid());
  if (auto mem = kernel.AllocateUprocMemory(child, /*private_page_table=*/true); !mem.ok()) {
    kernel.DestroyUprocShell(child);  // no ghost child on construction failure
    return mem.error();
  }

  ForkStats stats;
  PageTable& parent_pt = *parent.page_table;
  PageTable& child_pt = *child.page_table;
  std::vector<std::pair<uint64_t, Pte>> parent_pages;
  parent_pt.ForEachMapped(parent.base, parent.base + parent.size,
                          [&](uint64_t va, const Pte& pte) {
                            parent_pages.emplace_back(va, pte);
                          });
  for (const auto& [va, pte] : parent_pages) {
    if (!PtePopulated(pte)) {
      // Demand reservation: nothing to copy yet — the clone inherits the lazy state and
      // fills its own frame on first touch.
      machine.Charge(costs.pte_dup);
      child_pt.Map(va, kInvalidFrame, pte.flags);
      ++stats.pages_mapped;
      ++stats.pages_reserved;
      continue;
    }
    // Full synchronous copy of the guest image — no sharing across domains.
    auto frame = machine.frames().AllocateForCopy();
    if (!frame.ok()) {
      // Undo the half-built child completely (see UforkBackend::Fork): a leftover shell would
      // be a permanently-running ghost child that hangs the parent's wait().
      kernel.ReleaseUprocMemory(child);
      kernel.DestroyUprocShell(child);
      return frame.error();
    }
    machine.Charge(costs.frame_alloc + costs.page_copy + costs.pte_dup);
    machine.frames().frame(*frame).CopyFrom(machine.frames().frame(pte.frame));
    child_pt.Map(va, *frame, pte.flags);
    ++stats.pages_mapped;
    ++stats.pages_copied_eagerly;
    stats.bytes_copied_eagerly += kPageSize;
  }
  machine.Charge(costs.pt_node_alloc * child_pt.node_count());

  child.fds = parent.fds->Clone();
  machine.Charge(costs.fd_dup * static_cast<uint64_t>(child.fds->OpenCount()));
  child.mmap_cursor = parent.mmap_cursor;
  child.regs = parent.regs;
  child.syscall_sentry = parent.syscall_sentry;
  child.signals = parent.signals.ForkCopy();
  child.forked_child = true;
  child.fork_stats = stats;
  child.child_affinity = parent.child_affinity;
  kernel.StartUprocThread(child, std::move(entry), parent.child_affinity);
  return child.pid();
}

Result<void> VmCloneBackend::ResolveFault(KernelCore& kernel, const PageFaultInfo& info) {
  Uproc* uproc = kernel.UprocByPageTable(info.page_table);
  if (uproc == nullptr) {
    return Error{Code::kFaultNotMapped, "fault against an unowned page table"};
  }
  PageTable& pt = *info.page_table;
  Pte* pte = pt.LookupMutable(info.va);
  if (pte == nullptr) {
    return Error{Code::kFaultNotMapped, "fault on unmapped page"};
  }
  if ((pte->flags & kPteNotPresent) != 0) {
    return ResolveDemandFault(kernel, *uproc, pt, info, *pte);
  }
  if ((pte->flags & kPteCow) != 0 && info.is_write) {
    // The only CoW in a clone's table comes from SysMmapFile cache pages (fork copies
    // everything eagerly); break it with the classic copy-out.
    return ResolveCowWriteWindow(kernel, *uproc, pt, info, *pte);
  }
  // Clones never share memory across domains: any other resolvable-looking fault is a bug.
  return Error{Code::kFaultPageProt, "VM clones share no memory"};
}

void VmCloneBackend::OnExit(KernelCore& kernel, Uproc& uproc) {
  FaultAroundAccountExitWaste(kernel, uproc);
}

}  // namespace ufork
