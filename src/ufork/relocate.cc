#include "src/ufork/relocate.h"

namespace ufork {

RelocationResult RelocateFrameInto(Frame& frame, const AddressSpace& as, uint64_t region_lo,
                                   uint64_t region_size, RegionMemo* memo) {
  RelocationResult result;
  const uint64_t region_hi = region_lo + region_size;
  // The memo caches the last source-region interval found so successive anchors inside it skip
  // the address-space map probe (see RegionMemo in relocate.h). Batch callers share one memo
  // across frames; standalone calls use a fresh local one.
  RegionMemo local;
  RegionMemo& m = memo != nullptr ? *memo : local;
  frame.ForEachTaggedCap([&](uint64_t /*offset*/, Capability& cap) {
    ++result.tags_seen;
    if (!cap.EscapesRegion(region_lo, region_hi)) {
      return;  // already confined to this μprocess
    }
    // Locate the source region. The anchor is the capability's base: relocation preserves the
    // region-relative offset, which is meaningful because all regions share one layout.
    const uint64_t anchor = cap.base();
    if (anchor < m.lo || anchor >= m.hi) {
      const auto src = as.RegionContainingWithSize(anchor);
      if (!src.has_value()) {
        // No owning region: a stale pointer into freed memory or an attempted kernel-
        // capability leak. Invalidate — monotonicity means the child could otherwise keep
        // foreign authority.
        cap = cap.Untagged();
        ++result.stripped;
        return;
      }
      m.lo = src->first;
      m.hi = src->first + src->second;
    }
    // Rebase from the source region (when the source is this very region, the capability
    // escapes over its edge and the same call clamps it in place).
    cap = cap.RelocatedInto(m.lo, region_lo, region_hi);
    ++result.relocated;
  });
  return result;
}

RelocationResult RelocateRegisterFile(RegisterFile& regs, uint64_t parent_lo,
                                      uint64_t parent_size, uint64_t child_lo) {
  RelocationResult result;
  const uint64_t parent_hi = parent_lo + parent_size;
  const uint64_t child_hi = child_lo + parent_size;
  auto rewrite = [&](Capability& cap) {
    if (!cap.tag()) {
      return;  // integer register
    }
    ++result.tags_seen;
    if (!cap.EscapesRegion(child_lo, child_hi)) {
      return;
    }
    if (cap.base() >= parent_lo && cap.base() < parent_hi) {
      cap = cap.RelocatedInto(parent_lo, child_lo, child_hi);
      ++result.relocated;
    }
    // Registers are curated by the kernel: capabilities not referring to the parent region
    // (e.g. an unconfined DDC when isolation is disabled) are inherited verbatim.
  };
  for (auto& reg : regs.c) {
    rewrite(reg);
  }
  rewrite(regs.pcc);
  rewrite(regs.csp);
  rewrite(regs.ddc);
  return result;
}

}  // namespace ufork
