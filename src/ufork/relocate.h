// The capability relocation scanner (paper §4.2, "Copy-on-Pointer-Access" copy step 3).
//
// After a page is copied for a child μprocess, it is scanned in 16-byte increments for valid
// CHERI tags. Each tagged capability that still refers to memory outside the child's region is
// rebased: its cursor and bounds are shifted by the region delta and clamped into the child's
// region. Because every μprocess region has an identical internal layout, the rebase is a pure
// offset translation. Capabilities pointing nowhere legitimate (e.g. a would-be kernel pointer
// leak) are stripped of their tag — the security invariant that no authority escapes the
// μprocess (§4.2).
#ifndef UFORK_SRC_UFORK_RELOCATE_H_
#define UFORK_SRC_UFORK_RELOCATE_H_

#include <cstdint>

#include "src/machine/register_file.h"
#include "src/mem/address_space.h"
#include "src/mem/frame.h"

namespace ufork {

struct RelocationResult {
  uint64_t tags_seen = 0;
  uint64_t relocated = 0;
  uint64_t stripped = 0;
};

// Memoized source-region interval for the relocation scan. Capabilities found in one page —
// and across the adjacent pages of a fault-around window or an eager fork sweep — overwhelmingly
// share an owning region, so callers processing several frames pass one memo across the whole
// batch and the address-space map is probed only when an anchor leaves the cached interval.
// Starts as the empty interval so the first escaping capability always probes.
struct RegionMemo {
  uint64_t lo = 0;
  uint64_t hi = 0;
};

// Rewrites every tagged capability in `frame` so it refers into [region_lo, region_lo+size).
// `as` maps a stale capability to its source region (which may be the parent, or a more
// distant ancestor after chained forks). `memo` carries the source-interval cache across
// frames; nullptr scans with a fresh per-call memo.
RelocationResult RelocateFrameInto(Frame& frame, const AddressSpace& as, uint64_t region_lo,
                                   uint64_t region_size, RegionMemo* memo = nullptr);

// Same rewrite for a register file at fork time (tags extend to registers, §3.5 step 2).
// `parent_lo` is the forking μprocess's region base (registers always refer to the parent).
RelocationResult RelocateRegisterFile(RegisterFile& regs, uint64_t parent_lo,
                                      uint64_t parent_size, uint64_t child_lo);

}  // namespace ufork

#endif  // UFORK_SRC_UFORK_RELOCATE_H_
