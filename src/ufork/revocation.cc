#include "src/ufork/revocation.h"

#include <algorithm>
#include <optional>
#include <string>

namespace ufork {

bool RevocationSweeper::pending() const {
  return !kernel_.address_space().QuarantinedRanges().empty();
}

void RevocationSweeper::BeginPass() {
  ranges_.clear();
  pass_generation_ = 0;
  for (const QuarantinedRange& r : kernel_.address_space().QuarantinedRanges()) {
    ranges_.emplace_back(r.base, r.base + r.size);
    pass_generation_ = std::max(pass_generation_, r.generation);
  }
  frames_.clear();
  kernel_.machine().frames().ForEachLive(
      [this](FrameId id, uint32_t) { frames_.push_back(id); });
  cursor_ = 0;
  in_pass_ = true;
}

bool RevocationSweeper::Step(uint64_t max_frames) {
  FaultInjector& injector = kernel_.fault_injector();
  if (!in_pass_) {
    if (!pending()) {
      return false;
    }
    if (injector.ShouldFail(FaultSite::kRevokeSweep)) {
      return true;  // deferral is fail-safe: the quarantine stays parked
    }
    BeginPass();
  } else if (injector.ShouldFail(FaultSite::kRevokeSweep)) {
    return true;  // this slice is deferred; pass state and quarantine are untouched
  }
  Machine& machine = kernel_.machine();
  const CostModel& costs = kernel_.costs();
  KernelStats& stats = kernel_.stats();
  uint64_t scanned = 0;
  while (cursor_ < frames_.size() && (max_frames == 0 || scanned < max_frames)) {
    const FrameId id = frames_[cursor_++];
    if (!machine.frames().IsLive(id)) {
      continue;  // freed since the snapshot: nothing left to revoke
    }
    Frame& frame = machine.frames().frame(id);
    if (!frame.HasTags()) {
      continue;  // rank-select fast path: untagged frames cost nothing
    }
    machine.Charge(costs.page_tag_scan);
    ++scanned;
    frame.ForEachTaggedCap([&](uint64_t, Capability& cap) {
      if (!cap.tag()) {
        return;  // an already-stripped record under a set tag bit (frame.h strip idiom)
      }
      for (const auto& [lo, hi] : ranges_) {
        if (cap.OverlapsRange(lo, hi)) {
          cap = cap.Untagged();
          machine.Charge(costs.cap_relocate);
          ++stats.caps_revoked;
          break;
        }
      }
    });
  }
  if (cursor_ < frames_.size()) {
    return true;
  }
  // Pass complete: every frame live at pass start has been scanned against the snapshot
  // ranges, so no tagged capability into them remains loadable. Release them for reuse.
  kernel_.address_space().ReleaseQuarantinedUpTo(pass_generation_);
  in_pass_ = false;
  return pending();
}

void SweepQuarantineToCompletion(Kernel& kernel) {
  RevocationSweeper sweeper(kernel);
  while (sweeper.Step(0)) {
  }
}

Result<void> CheckRevocationInvariant(Kernel& kernel) {
  AddressSpace& as = kernel.address_space();
  FrameAllocator& frames = kernel.machine().frames();
  std::optional<std::string> violation;
  frames.ForEachLive([&](FrameId id, uint32_t) {
    if (violation.has_value()) {
      return;
    }
    Frame& frame = frames.frame(id);
    if (!frame.HasTags()) {
      return;
    }
    frame.ForEachTaggedCap([&](uint64_t offset, Capability& cap) {
      if (violation.has_value() || !cap.tag()) {
        return;
      }
      // Capabilities bounded outside the user area (kernel sentries) are not region-derived.
      if (cap.top() <= as.lo() || cap.base() >= as.hi()) {
        return;
      }
      const auto region = as.RegionContainingWithSize(cap.base());
      if (!region.has_value() || cap.top() > region->first + region->second) {
        violation = "tagged capability " + cap.ToString() + " at frame " +
                    std::to_string(id) + " offset " + std::to_string(offset) +
                    " has bounds outside every allocated region";
      }
    });
  });
  if (violation.has_value()) {
    return Error{Code::kErrInval, *violation};
  }
  return {};
}

}  // namespace ufork
