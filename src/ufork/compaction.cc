#include "src/ufork/compaction.h"

#include <algorithm>
#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "src/ufork/relocate.h"
#include "src/ufork/revocation.h"

namespace ufork {

namespace {

// Incremental-planner quiescence: every thread of the owner is parked on a wait queue (or
// already gone). A blocked owner cannot observe its region mid-move — it resumes through the
// service's syscall barrier after the move commits, re-deriving pointers from relocated state.
bool OwnerQuiescent(Kernel& kernel, const Uproc& uproc) {
  const auto blocked_or_dead = [&kernel](ThreadId tid) {
    return !kernel.sched().IsAlive(tid) || kernel.sched().IsBlocked(tid);
  };
  if (!blocked_or_dead(uproc.thread)) {
    return false;
  }
  for (const ThreadId tid : uproc.threads) {
    if (!blocked_or_dead(tid)) {
      return false;
    }
  }
  return true;
}

// One region move, advanced chunk-at-a-time. A chunk first remaps its pages into the target
// half, then rewrites the tagged capabilities of the chunk's frames — the stop-the-world order
// exactly, when the chunk is the whole region (budget 0), so the historical charge and
// injection sequence is reproduced by construction. Per-region counters stay local until the
// move commits: an aborted region must leave the stats exactly as if it had only been
// considered.
class UforkRegionMover : public RegionMover {
 public:
  UforkRegionMover(Kernel& kernel, Uproc& uproc, uint64_t new_base,
                   std::vector<std::pair<uint64_t, Pte>> pages, bool batched_remap,
                   CompactionStats& stats)
      : kernel_(kernel),
        uproc_(uproc),
        old_base_(uproc.base),
        new_base_(new_base),
        pages_(std::move(pages)),
        batched_remap_(batched_remap),
        stats_(stats) {}

  uint64_t from_base() const override { return old_base_; }
  uint64_t to_base() const override { return new_base_; }
  uint64_t size() const override { return uproc_.size; }
  uint64_t moved_pages() const override { return next_; }

  Status Step(uint64_t budget_pages) override {
    UF_CHECK_MSG(status_ == Status::kMoving, "Step on a finished move");
    Machine& machine = kernel_.machine();
    const CostModel& costs = kernel_.costs();
    PageTable& pt = *uproc_.page_table;
    const size_t end = budget_pages == 0
                           ? pages_.size()
                           : std::min(pages_.size(), next_ + static_cast<size_t>(budget_pages));
    const size_t chunk_begin = next_;
    // Move the chunk's mappings (ascending order; the target block is disjoint from the
    // source). The incremental path batches the PTE updates into one shootdown-amortized
    // charge; the stop-the-world path keeps the historical per-page cost.
    if (batched_remap_ && end > chunk_begin) {
      machine.Charge(costs.pte_update_batched);
    }
    for (size_t i = chunk_begin; i < end; ++i) {
      const auto& [va, pte] = pages_[i];
      if (!batched_remap_) {
        machine.Charge(costs.pte_update);
      }
      const FrameId frame = pt.Unmap(va);
      pt.Map(new_base_ + (va - old_base_), frame, pte.flags);
    }
    next_ = end;  // remapped prefix watermark: ForwardVa resolves these at the destination
    // Rewrite every tagged capability in the chunk's frames — the same offset translation
    // fork performs, applied region-to-region. The old region is still registered, so chained
    // lookups resolve.
    FaultInjector& injector = kernel_.fault_injector();
    for (size_t i = chunk_begin; i < end; ++i) {
      const auto& [va, pte] = pages_[i];
      if ((pte.flags & kPteShared) != 0 || !PtePopulated(pte)) {
        continue;  // tag-free shared windows; reservations have no frame to scan
      }
      if (injector.ShouldFail(FaultSite::kCompactRelocate)) {
        Cancel();
        return Status::kAborted;
      }
      machine.Charge(costs.page_tag_scan);
      const RelocationResult reloc = RelocateFrameInto(
          machine.frames().frame(pte.frame), kernel_.address_space(), new_base_, uproc_.size);
      machine.Charge(costs.cap_relocate * reloc.relocated);
      caps_relocated_ += reloc.relocated;
      rewritten_.push_back(pte.frame);
    }
    if (next_ == pages_.size()) {
      Commit();
      return Status::kCommitted;
    }
    return Status::kMoving;
  }

  void Cancel() override {
    UF_CHECK_MSG(status_ == Status::kMoving, "Cancel on a finished move");
    Machine& machine = kernel_.machine();
    const CostModel& costs = kernel_.costs();
    AddressSpace& as = kernel_.address_space();
    PageTable& pt = *uproc_.page_table;
    // Roll the region back in place. Both regions are still allocated, so the reverse
    // relocation resolves new-region capabilities through RegionContaining exactly as the
    // forward pass did; frames not yet rewritten still point into the old region and pass
    // through the scan untouched.
    for (const FrameId frame : rewritten_) {
      machine.Charge(costs.page_tag_scan);
      const RelocationResult reloc =
          RelocateFrameInto(machine.frames().frame(frame), as, old_base_, uproc_.size);
      machine.Charge(costs.cap_relocate * reloc.relocated);
    }
    if (batched_remap_ && next_ > 0) {
      machine.Charge(costs.pte_update_batched);
    }
    for (size_t i = 0; i < next_; ++i) {
      const auto& [va, pte] = pages_[i];
      if (!batched_remap_) {
        machine.Charge(costs.pte_update);
      }
      const FrameId frame = pt.Unmap(new_base_ + (va - old_base_));
      pt.Map(va, frame, pte.flags);
    }
    as.FreeRegion(new_base_);
    ++stats_.regions_aborted;
    status_ = Status::kAborted;
  }

  std::optional<uint64_t> ForwardVa(uint64_t page_va) const override {
    if (status_ != Status::kMoving || page_va < old_base_ ||
        page_va >= old_base_ + uproc_.size) {
      return std::nullopt;
    }
    // pages_ is VA-ascending; only the remapped prefix [0, next_) lives at the destination.
    const auto prefix_end = pages_.begin() + static_cast<std::ptrdiff_t>(next_);
    const auto it = std::lower_bound(
        pages_.begin(), prefix_end, page_va,
        [](const std::pair<uint64_t, Pte>& entry, uint64_t va) { return entry.first < va; });
    if (it == prefix_end || it->first != page_va) {
      return std::nullopt;
    }
    return new_base_ + (page_va - old_base_);
  }

 private:
  void Commit() {
    AddressSpace& as = kernel_.address_space();
    const RelocationResult reg_reloc =
        RelocateRegisterFile(uproc_.regs, old_base_, uproc_.size, new_base_);
    caps_relocated_ += reg_reloc.relocated;

    uproc_.mmap_cursor = new_base_ + (uproc_.mmap_cursor - old_base_);
    uproc_.heap_break = new_base_ + (uproc_.heap_break - old_base_);
    for (auto& mapping : uproc_.file_mappings) {
      mapping.va = new_base_ + (mapping.va - old_base_);
    }
    if (as.IsReserveOnly(old_base_)) {
      as.MarkReserveOnly(new_base_);  // reserved-bytes accounting follows the region
    }
    uproc_.base = new_base_;
    kernel_.RebaseRegionIndex(old_base_, new_base_, uproc_.pid());
    if (kernel_.config().quarantine_freed_regions) {
      // Cornucopia-style: the moved-from range may hold stale capability targets elsewhere in
      // the system; park it until the revocation sweep has cleared them (revocation.h).
      as.QuarantineRegion(old_base_);
      kernel_.stats().quarantined_bytes += uproc_.size;
    } else {
      as.FreeRegion(old_base_);
    }
    stats_.pages_remapped += pages_.size();
    stats_.caps_relocated += caps_relocated_;
    ++stats_.regions_moved;
    status_ = Status::kCommitted;
  }

  Kernel& kernel_;
  Uproc& uproc_;
  const uint64_t old_base_;
  const uint64_t new_base_;
  std::vector<std::pair<uint64_t, Pte>> pages_;  // VA-ascending mapping snapshot at plan time
  const bool batched_remap_;
  CompactionStats& stats_;  // owned by the driver (engine or STW pass); outlives the mover
  Status status_ = Status::kMoving;
  size_t next_ = 0;  // pages_[0, next_) are remapped into the target half
  uint64_t caps_relocated_ = 0;
  std::vector<FrameId> rewritten_;  // frames whose capabilities already point at new_base_
};

// Shared planner: considers movable μprocesses with base ≥ *cursor in ascending order and
// returns a mover for the first candidate whose target grant succeeds, advancing the cursor
// past every region it considered. Single-pass semantics — moved regions land below the
// cursor and are never reconsidered — which makes the budget-0 loop charge-for-charge
// identical to the historical stop-the-world sweep.
std::unique_ptr<UforkRegionMover> PlanNextMove(Kernel& kernel, uint64_t& cursor,
                                               CompactionStats& stats, bool require_quiescent,
                                               bool batched_remap) {
  AddressSpace& as = kernel.address_space();
  Machine& machine = kernel.machine();
  for (;;) {
    // Lowest-based movable μprocess at or above the cursor, so holes migrate right. Movable
    // means: lives in the shared address space (μFork backend) with a real page table.
    Uproc* victim = nullptr;
    for (const Pid pid : kernel.LivePids()) {
      Uproc* uproc = kernel.FindUproc(pid);
      if (uproc == nullptr || uproc->owned_pt != nullptr || uproc->page_table == nullptr ||
          uproc->base < cursor) {
        continue;
      }
      if (victim == nullptr || uproc->base < victim->base) {
        victim = uproc;
      }
    }
    if (victim == nullptr) {
      return nullptr;  // pass complete
    }
    cursor = victim->base + 1;
    ++stats.regions_considered;
    if (require_quiescent && !OwnerQuiescent(kernel, *victim)) {
      ++stats.regions_skipped_busy;
      continue;
    }

    // A region still CoW/CoPA-entangled with a fork partner must not move: the partner's
    // stale capabilities are resolved against this region's address. Shared-memory windows
    // (kPteShared) are fine — they are tag-free by construction.
    PageTable& pt = *victim->page_table;
    std::vector<std::pair<uint64_t, Pte>> pages;
    bool entangled = false;
    pt.ForEachMapped(victim->base, victim->base + victim->size,
                     [&](uint64_t va, const Pte& pte) {
                       pages.emplace_back(va, pte);
                       if ((pte.flags & kPteShared) == 0 && PtePopulated(pte) &&
                           machine.frames().RefCount(pte.frame) > 1) {
                         entangled = true;
                       }
                       if ((pte.flags & kPteCow) != 0) {
                         entangled = true;
                       }
                     });
    if (entangled) {
      ++stats.regions_skipped_shared;
      continue;
    }

    const auto candidate = as.FirstFitBase(victim->size, 2 * kMiB);
    if (!candidate.has_value() || *candidate >= victim->base) {
      continue;  // already as far left as it can go
    }
    auto granted = as.AllocateRegionAt(*candidate, victim->size);
    if (!granted.ok()) {
      // Degrade, don't die: a failed target grant (raced allocation, injected exhaustion)
      // keeps the fragmented layout; the μprocess is untouched and the sweep continues.
      ++stats.regions_skipped_grant_failed;
      continue;
    }
    return std::make_unique<UforkRegionMover>(kernel, *victim, *candidate, std::move(pages),
                                              batched_remap, stats);
  }
}

class UforkCompactionEngine : public CompactionEngine {
 public:
  explicit UforkCompactionEngine(Kernel& kernel) : kernel_(kernel), sweeper_(kernel) {}

  std::unique_ptr<RegionMover> NextMove(bool require_quiescent, bool batched_remap) override {
    return PlanNextMove(kernel_, cursor_, stats_, require_quiescent, batched_remap);
  }

  void ResetPass() override { cursor_ = 0; }

  bool SweepStep(uint64_t max_frames) override { return sweeper_.Step(max_frames); }
  bool SweepPending() const override { return sweeper_.pending(); }

 private:
  Kernel& kernel_;
  RevocationSweeper sweeper_;
  uint64_t cursor_ = 0;        // next base the current planning pass will consider
  CompactionStats stats_;      // cumulative across service passes
};

}  // namespace

std::unique_ptr<CompactionEngine> MakeUforkCompactionEngine(Kernel& kernel) {
  return std::make_unique<UforkCompactionEngine>(kernel);
}

Result<CompactionStats> CompactAddressSpace(Kernel& kernel) {
  if (kernel.sched().InThread()) {
    // The safepoint contract above is load-bearing, not advisory: a simulated thread has live
    // register state and peers mid-syscall that this pass would silently invalidate. Inside a
    // running system, use the incremental CompactionService instead.
    return Error{Code::kErrAgain,
                 "stop-the-world compaction requires global quiescence: call it between Run() "
                 "phases, or drive the incremental CompactionService from inside the system"};
  }
  CompactionStats stats;
  AddressSpace& as = kernel.address_space();
  const uint64_t before_largest = as.Stats().largest_free_block;
  const Cycles pause_start = kernel.sched().Now();

  uint64_t cursor = 0;
  while (auto mover = PlanNextMove(kernel, cursor, stats, /*require_quiescent=*/false,
                                   /*batched_remap=*/false)) {
    // Budget 0: the whole region in one chunk — the move commits or aborts, never parks.
    (void)mover->Step(0);
  }

  kernel.stats().pause_cycles_max.UpdateMax(kernel.sched().Now() - pause_start);
  stats.bytes_reclaimed_contiguity = as.Stats().largest_free_block - before_largest;
  return stats;
}

}  // namespace ufork
