#include "src/ufork/compaction.h"

#include <algorithm>
#include <vector>

#include "src/ufork/relocate.h"

namespace ufork {

Result<CompactionStats> CompactAddressSpace(Kernel& kernel) {
  CompactionStats stats;
  AddressSpace& as = kernel.address_space();
  Machine& machine = kernel.machine();
  const CostModel& costs = kernel.costs();
  const uint64_t before_largest = as.Stats().largest_free_block;

  // Live μprocesses in the shared address space, lowest region first so holes migrate right.
  std::vector<Uproc*> movable;
  for (const Pid pid : kernel.LivePids()) {
    Uproc* uproc = kernel.FindUproc(pid);
    if (uproc != nullptr && uproc->owned_pt == nullptr && uproc->page_table != nullptr) {
      movable.push_back(uproc);
    }
  }
  std::sort(movable.begin(), movable.end(),
            [](const Uproc* a, const Uproc* b) { return a->base < b->base; });

  for (Uproc* uproc : movable) {
    ++stats.regions_considered;
    PageTable& pt = *uproc->page_table;

    // A region still CoW/CoPA-entangled with a fork partner must not move: the partner's
    // stale capabilities are resolved against this region's address. Shared-memory windows
    // (kPteShared) are fine — they are tag-free by construction.
    std::vector<std::pair<uint64_t, Pte>> pages;
    bool entangled = false;
    pt.ForEachMapped(uproc->base, uproc->base + uproc->size,
                     [&](uint64_t va, const Pte& pte) {
                       pages.emplace_back(va, pte);
                       if ((pte.flags & kPteShared) == 0 && PtePopulated(pte) &&
                           machine.frames().RefCount(pte.frame) > 1) {
                         entangled = true;
                       }
                       if ((pte.flags & kPteCow) != 0) {
                         entangled = true;
                       }
                     });
    if (entangled) {
      ++stats.regions_skipped_shared;
      continue;
    }

    const auto candidate = as.FirstFitBase(uproc->size, 2 * kMiB);
    if (!candidate.has_value() || *candidate >= uproc->base) {
      continue;  // already as far left as it can go
    }
    const uint64_t old_base = uproc->base;
    const uint64_t new_base = *candidate;
    auto granted = as.AllocateRegionAt(new_base, uproc->size);
    if (!granted.ok()) {
      // Degrade, don't die: a failed target grant (raced allocation, injected exhaustion)
      // keeps the fragmented layout; the μprocess is untouched and the sweep continues.
      ++stats.regions_skipped_grant_failed;
      continue;
    }

    // Per-region counters stay local until the move commits: an aborted region must leave the
    // stats exactly as if it had only been considered.
    uint64_t pages_remapped = 0;
    uint64_t caps_relocated = 0;

    // Move the mappings (ascending order; the target block is disjoint from the source).
    for (const auto& [va, pte] : pages) {
      machine.Charge(costs.pte_update);
      const FrameId frame = pt.Unmap(va);
      pt.Map(new_base + (va - old_base), frame, pte.flags);
      ++pages_remapped;
    }
    // Rewrite every tagged capability in the moved frames — the same offset translation fork
    // performs, applied region-to-region. The old region is still registered, so chained
    // lookups resolve.
    FaultInjector& injector = kernel.fault_injector();
    std::vector<FrameId> rewritten;
    bool aborted = false;
    for (const auto& [va, pte] : pages) {
      if ((pte.flags & kPteShared) != 0 || !PtePopulated(pte)) {
        continue;  // tag-free shared windows; reservations have no frame to scan
      }
      if (injector.ShouldFail(FaultSite::kCompactRelocate)) {
        aborted = true;
        break;
      }
      machine.Charge(costs.page_tag_scan);
      const RelocationResult reloc = RelocateFrameInto(machine.frames().frame(pte.frame), as,
                                                       new_base, uproc->size);
      machine.Charge(costs.cap_relocate * reloc.relocated);
      caps_relocated += reloc.relocated;
      rewritten.push_back(pte.frame);
    }
    if (aborted) {
      // Roll the region back in place. Both regions are still allocated, so the reverse
      // relocation resolves new-region capabilities through RegionContaining exactly as the
      // forward pass did; frames not yet rewritten still point into the old region and pass
      // through the scan untouched.
      for (const FrameId frame : rewritten) {
        machine.Charge(costs.page_tag_scan);
        const RelocationResult reloc =
            RelocateFrameInto(machine.frames().frame(frame), as, old_base, uproc->size);
        machine.Charge(costs.cap_relocate * reloc.relocated);
      }
      for (const auto& [va, pte] : pages) {
        machine.Charge(costs.pte_update);
        const FrameId frame = pt.Unmap(new_base + (va - old_base));
        pt.Map(va, frame, pte.flags);
      }
      as.FreeRegion(new_base);
      ++stats.regions_aborted;
      continue;
    }
    const RelocationResult reg_reloc =
        RelocateRegisterFile(uproc->regs, old_base, uproc->size, new_base);
    caps_relocated += reg_reloc.relocated;

    uproc->mmap_cursor = new_base + (uproc->mmap_cursor - old_base);
    uproc->heap_break = new_base + (uproc->heap_break - old_base);
    for (auto& mapping : uproc->file_mappings) {
      mapping.va = new_base + (mapping.va - old_base);
    }
    if (as.IsReserveOnly(old_base)) {
      as.MarkReserveOnly(new_base);  // reserved-bytes accounting follows the region
    }
    uproc->base = new_base;
    as.FreeRegion(old_base);
    stats.pages_remapped += pages_remapped;
    stats.caps_relocated += caps_relocated;
    ++stats.regions_moved;
  }

  stats.bytes_reclaimed_contiguity = as.Stats().largest_free_block - before_largest;
  return stats;
}

}  // namespace ufork
