// Address-space compaction — the paper's §6 "Fragmentation" future work.
//
// Long-running μFork systems can fragment the single address space: regions of exited
// μprocesses leave holes (and tombstones, when shared frames outlive their owner). Because
// μFork already owns a complete capability-relocation mechanism, a *stop-the-world* compactor
// falls out naturally: slide live regions left, rewriting every tagged capability in the moved
// region (and its register file) by the same offset translation fork uses.
//
// Safepoint contract (like a moving GC): compaction may only run while every movable μprocess
// is parked at a quiescent point and will re-derive its working pointers from relocated state
// (registers, GOT, heap) afterwards. Regions are skipped — not moved — when any frame is still
// CoW/CoPA-shared with a fork partner (the partner's stale capabilities relocate through
// AddressSpace::RegionContaining, which must keep naming the original region).
#ifndef UFORK_SRC_UFORK_COMPACTION_H_
#define UFORK_SRC_UFORK_COMPACTION_H_

#include "src/kernel/kernel.h"

namespace ufork {

struct CompactionStats {
  uint64_t regions_considered = 0;
  uint64_t regions_moved = 0;
  uint64_t regions_skipped_shared = 0;  // still CoW/CoPA-entangled with a fork partner
  uint64_t regions_skipped_grant_failed = 0;  // target-region grant failed; layout kept as-is
  uint64_t regions_aborted = 0;  // relocation failed mid-region; region rolled back in place
  uint64_t pages_remapped = 0;
  uint64_t caps_relocated = 0;
  uint64_t bytes_reclaimed_contiguity = 0;  // growth of the largest free block
};

// Compacts the single address space of a μFork kernel. Must be called from outside any
// simulated thread (between Run() phases) or from a designated compactor context while all
// other μprocesses are parked. Only usable with the μFork (shared-page-table) backend.
Result<CompactionStats> CompactAddressSpace(Kernel& kernel);

}  // namespace ufork

#endif  // UFORK_SRC_UFORK_COMPACTION_H_
