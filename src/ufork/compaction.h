// Address-space compaction — the paper's §6 "Fragmentation" future work.
//
// Long-running μFork systems can fragment the single address space: regions of exited
// μprocesses leave holes (and tombstones, when shared frames outlive their owner). Because
// μFork already owns a complete capability-relocation mechanism, a compactor falls out
// naturally: slide live regions left, rewriting every tagged capability in the moved region
// (and its register file) by the same offset translation fork uses.
//
// Two drivers share one planner/mover core:
//
//   CompactAddressSpace  the original *stop-the-world* pass: every movable region slides in
//                        one call, between Run() phases. Pause grows with bytes moved.
//   CompactionService    (src/kernel/compaction_service.h) drives the same mover a budgeted
//                        chunk at a time from a low-priority simulated context, with mutators
//                        running between quanta — bounded pauses for long-running fleets.
//                        MakeUforkCompactionEngine below is the backend it drives.
//
// Safepoint contract (like a moving GC): the stop-the-world entry point may only run while
// every movable μprocess is parked at a quiescent point and will re-derive its working
// pointers from relocated state (registers, GOT, heap) afterwards — it refuses (kErrAgain) to
// run from inside a simulated thread. The incremental engine instead enforces per-region
// quiescence (every owner thread blocked) and relies on the service's syscall barrier and VA
// forwarding for everyone else. Regions are skipped — not moved — when any frame is still
// CoW/CoPA-shared with a fork partner (the partner's stale capabilities relocate through
// AddressSpace::RegionContaining, which must keep naming the original region).
#ifndef UFORK_SRC_UFORK_COMPACTION_H_
#define UFORK_SRC_UFORK_COMPACTION_H_

#include <memory>

#include "src/kernel/compaction_service.h"
#include "src/kernel/kernel.h"

namespace ufork {

struct CompactionStats {
  uint64_t regions_considered = 0;
  uint64_t regions_moved = 0;
  uint64_t regions_skipped_shared = 0;  // still CoW/CoPA-entangled with a fork partner
  uint64_t regions_skipped_grant_failed = 0;  // target-region grant failed; layout kept as-is
  uint64_t regions_skipped_busy = 0;  // owner not quiescent (incremental planner only)
  uint64_t regions_aborted = 0;  // relocation failed mid-region; region rolled back in place
  uint64_t pages_remapped = 0;
  uint64_t caps_relocated = 0;
  uint64_t bytes_reclaimed_contiguity = 0;  // growth of the largest free block
};

// Compacts the single address space of a μFork kernel in one stop-the-world pass. Must be
// called from outside any simulated thread (between Run() phases) — calling it from a running
// simulated context returns kErrAgain; use the incremental CompactionService there instead.
// Only usable with the μFork (shared-page-table) backend.
Result<CompactionStats> CompactAddressSpace(Kernel& kernel);

// The incremental backend for the kernel's CompactionService: the same planner/mover as the
// stop-the-world pass, plus the budgeted revocation sweep over quarantined ranges
// (src/ufork/revocation.h). Installed by MakeUforkKernel; cumulative per-engine stats feed
// KernelStats through the service.
std::unique_ptr<CompactionEngine> MakeUforkCompactionEngine(Kernel& kernel);

}  // namespace ufork

#endif  // UFORK_SRC_UFORK_COMPACTION_H_
