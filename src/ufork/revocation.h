// Budgeted capability revocation for quarantined address ranges (DESIGN.md §4.13).
//
// A single address space makes freed memory dangerous in a way a fork-per-process OS never
// sees: a stale tagged capability into a freed-then-reused region is a cross-μprocess
// use-after-free with full architectural authority (the CheriBSD/Morello analysis in
// PAPERS.md). Cornucopia's answer, reproduced here: freed and moved-from ranges sit in the
// AddressSpace quarantine, and the allocator may not reuse them until a sweep has walked
// every live tagged frame and cleared each capability whose bounds fall inside a quarantined
// range.
//
// The sweep is pass-based and budgeted so the compaction service can run it a slice at a
// time: a pass snapshots the quarantined ranges and the live-frame set at its start, scans at
// most `max_frames` tagged frames per Step (the PR 1 rank-select bitmaps skip untagged frames
// at popcount speed, charging nothing), and releases the snapshot ranges only when the whole
// pass completes. Ranges quarantined mid-pass carry a later generation stamp and wait for the
// next pass. Frames created mid-pass are immune by construction: fork's relocation scan
// strips capabilities pointing into quarantined ranges (they resolve to no allocated region)
// as it copies.
#ifndef UFORK_SRC_UFORK_REVOCATION_H_
#define UFORK_SRC_UFORK_REVOCATION_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/base/status.h"
#include "src/kernel/kernel.h"

namespace ufork {

class RevocationSweeper {
 public:
  explicit RevocationSweeper(Kernel& kernel) : kernel_(kernel) {}

  RevocationSweeper(const RevocationSweeper&) = delete;
  RevocationSweeper& operator=(const RevocationSweeper&) = delete;

  // True while any quarantined range awaits sweeping (including ranges arriving mid-pass).
  bool pending() const;

  // Advances the sweep by at most `max_frames` tagged frames (0 = unbounded). Returns true
  // while work remains. A FaultSite::kRevokeSweep hit defers the slice fail-safe: nothing is
  // scanned, nothing is released, and the quarantine stays parked for the next quantum.
  bool Step(uint64_t max_frames);

 private:
  void BeginPass();

  Kernel& kernel_;
  bool in_pass_ = false;
  uint64_t pass_generation_ = 0;  // quarantine-generation cutoff this pass revokes
  std::vector<std::pair<uint64_t, uint64_t>> ranges_;  // [lo, hi) snapshot under revocation
  std::vector<FrameId> frames_;                        // live-frame snapshot at pass start
  size_t cursor_ = 0;                                  // next frames_ index to scan
};

// Drains the quarantine synchronously (tests, benches, end-of-soak validation).
void SweepQuarantineToCompletion(Kernel& kernel);

// The revocation invariant (ISSUE 9 acceptance): every tagged capability record in every live
// frame whose bounds fall inside the user area lies wholly within a currently-allocated
// region — never inside a quarantined or freed range. Returns the first violation.
Result<void> CheckRevocationInvariant(Kernel& kernel);

}  // namespace ufork

#endif  // UFORK_SRC_UFORK_REVOCATION_H_
