// The μFork backend: true single-address-space fork (paper §3.5, §4.2).
//
// Fork walks the parent's region and, per the configured strategy:
//   * CoPA — shares pages read-only with the load-cap-fault attribute on the child side; a
//     write by either side, or a tagged capability load by the child, copies the page and
//     relocates the capabilities it contains.
//   * CoA  — shares pages with no access on the child side; any child access copies.
//   * Full — copies and relocates everything synchronously at fork.
//   * UnsafeCoW — classic CoW without capability-load faults; intentionally unsound in a SAS
//     (the child can observe stale parent capabilities) and kept only to demonstrate why CoPA
//     exists. Do not use outside experiments.
//
// GOT pages and the allocator metadata page are proactively copied and relocated in all
// strategies (§3.5 step 1), as are the registers (step 2).
#ifndef UFORK_SRC_UFORK_UFORK_BACKEND_H_
#define UFORK_SRC_UFORK_UFORK_BACKEND_H_

#include "src/kernel/fork_backend.h"
#include "src/kernel/kernel_core.h"
#include "src/ufork/relocate.h"

namespace ufork {

class UforkBackend : public ForkBackend {
 public:
  const char* name() const override { return "uFork"; }
  SyscallEntryKind syscall_kind() const override { return SyscallEntryKind::kSealedEntry; }
  bool private_page_tables() const override { return false; }

  Cycles ContextSwitchCost(const CostModel& costs, Uproc* prev, Uproc* next) const override {
    (void)prev, (void)next;
    // Same address space: no page-table switch, no TLB flush (§2.2).
    return costs.context_switch;
  }

  Result<Pid> Fork(KernelCore& kernel, Uproc& parent, UprocEntry entry) override;
  Result<void> ResolveFault(KernelCore& kernel, const PageFaultInfo& info) override;
  void OnExit(KernelCore& kernel, Uproc& uproc) override;

  uint64_t ExtraResidencyBytes(const KernelCore& kernel, const Uproc& uproc) const override {
    (void)kernel, (void)uproc;
    // Kernel-side per-μprocess structures: thread stack, task struct, descriptor table and
    // the duplicated PTE ranges (Fig. 8 counts these in the 0.13 MB/process).
    return 112 * kKiB;
  }

 private:
  // Copies `src_frame` into a fresh frame, relocates its capabilities into the target region
  // and returns the new frame. Charges copy + scan + relocation costs. `memo` carries the
  // relocation source-interval cache across a multi-page sweep.
  Result<FrameId> CopyAndRelocate(KernelCore& kernel, FrameId src_frame, uint64_t region_lo,
                                  uint64_t region_size, RelocationResult* out,
                                  RegionMemo* memo = nullptr);
};

}  // namespace ufork

#endif  // UFORK_SRC_UFORK_UFORK_BACKEND_H_
