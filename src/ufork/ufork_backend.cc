#include "src/ufork/ufork_backend.h"

#include <array>
#include <span>
#include <vector>

#include "src/kernel/fault_around.h"
#include "src/ufork/relocate.h"

namespace ufork {

Result<FrameId> UforkBackend::CopyAndRelocate(KernelCore& kernel, FrameId src_frame,
                                              uint64_t region_lo, uint64_t region_size,
                                              RelocationResult* out, RegionMemo* memo) {
  Machine& machine = kernel.machine();
  const CostModel& costs = kernel.costs();
  UF_ASSIGN_OR_RETURN(const FrameId dst, machine.frames().AllocateForCopy());
  machine.Charge(costs.frame_alloc + costs.page_copy + costs.page_tag_scan);
  Frame& dst_frame = machine.frames().frame(dst);
  dst_frame.CopyFrom(machine.frames().frame(src_frame));
  const RelocationResult reloc =
      RelocateFrameInto(dst_frame, kernel.address_space(), region_lo, region_size, memo);
  machine.Charge(costs.cap_relocate * reloc.relocated);
  kernel.stats().caps_stripped += reloc.stripped;
  if (out != nullptr) {
    out->tags_seen += reloc.tags_seen;
    out->relocated += reloc.relocated;
    out->stripped += reloc.stripped;
  }
  return dst;
}

Result<Pid> UforkBackend::Fork(KernelCore& kernel, Uproc& parent, UprocEntry entry) {
  Machine& machine = kernel.machine();
  const CostModel& costs = kernel.costs();
  const ForkStrategy strategy = kernel.config().strategy;
  const UprocLayout& layout = kernel.layout();

  machine.Charge(costs.fork_base_sas);

  // 1. Parent state duplication (§3.5 step 1): reserve a contiguous region and duplicate the
  //    parent's page-table entries into it.
  Uproc& child = kernel.CreateUprocShell(parent.name + "+", parent.pid());
  if (auto mem = kernel.AllocateUprocMemory(child, /*private_page_table=*/false); !mem.ok()) {
    kernel.DestroyUprocShell(child);
    return mem.error();
  }

  ForkStats stats;
  PageTable& pt = *parent.page_table;  // the shared table
  std::vector<std::pair<uint64_t, Pte>> parent_pages;
  parent_pages.reserve(layout.TotalPages());
  pt.ForEachMapped(parent.base, parent.base + parent.size,
                   [&](uint64_t va, const Pte& pte) { parent_pages.emplace_back(va, pte); });

  RelocationResult eager_reloc;
  RegionMemo eager_memo;  // source-interval cache shared across the whole eager sweep
  // Full mid-fork rollback: release the half-built child (its shared mappings drop their extra
  // frame references), drop the ghost shell, and restore every parent PTE the sweep demoted to
  // CoW — after rollback the parent must look exactly as before the fork, or it would take
  // spurious resolvable faults on pages that have no sharer.
  const auto rollback = [&]() {
    kernel.ReleaseUprocMemory(child);
    kernel.DestroyUprocShell(child);
    for (const auto& [va, original] : parent_pages) {
      const std::optional<Pte> current = pt.Lookup(va);
      if (current.has_value() && current->flags != original.flags) {
        pt.SetFlags(va, original.flags);
      }
    }
  };
  for (const auto& [parent_va, parent_pte] : parent_pages) {
    const uint64_t offset = parent_va - parent.base;
    const uint64_t child_va = child.base + offset;
    const uint32_t seg_flags = kernel.SegmentFlagsAt(offset);
    machine.Charge(costs.pte_dup);

    if (!PtePopulated(parent_pte)) {
      // Demand reservation: the child inherits the lazy state verbatim — no frame to share,
      // relocate, or CoW-protect; each side fills privately on first touch.
      pt.Map(child_va, kInvalidFrame, parent_pte.flags);
      ++stats.pages_reserved;
      continue;
    }
    if ((parent_pte.flags & kPteShared) != 0) {
      // MAP_SHARED window: the child maps the same frames writable — POSIX keeps shared
      // mappings shared across fork; no CoW, no relocation (the window holds no tags).
      machine.frames().AddRef(parent_pte.frame);
      pt.Map(child_va, parent_pte.frame, parent_pte.flags);
      ++stats.pages_mapped;
      continue;
    }
    const bool proactive =
        strategy == ForkStrategy::kFull || layout.IsProactiveCopyPage(offset);
    if (proactive) {
      auto copied = CopyAndRelocate(kernel, parent_pte.frame, child.base, child.size,
                                    &eager_reloc, &eager_memo);
      if (!copied.ok()) {
        // Undo the half-built child completely: without DestroyUprocShell the shell would
        // linger in the process table as a permanently-running ghost child and a subsequent
        // wait() in the parent would block forever.
        rollback();
        return copied.error();
      }
      pt.Map(child_va, *copied, seg_flags);
      ++stats.pages_copied_eagerly;
      stats.bytes_copied_eagerly += kPageSize;
      ++stats.pages_mapped;
      continue;
    }

    // Shared mapping. The child side carries kPteCow (faults resolvable) and, under CoPA, the
    // load-cap-fault attribute; under CoA no access bits at all.
    uint32_t child_flags = 0;
    switch (strategy) {
      case ForkStrategy::kCopa:
        child_flags = (seg_flags & ~kPteWrite) | kPteCow | kPteLoadCapFault;
        break;
      case ForkStrategy::kCoa:
        // CoA shares pages *inaccessible* on the child side; clearing the parent's access
        // bits one at a time (instead of CoPA's batched write-protect) costs slightly more.
        machine.Charge(costs.coa_parent_clear);
        child_flags = kPteCow;
        break;
      case ForkStrategy::kUnsafeCow:
        child_flags = (seg_flags & ~kPteWrite) | kPteCow;
        break;
      case ForkStrategy::kFull:
        UF_UNREACHABLE();
    }
    machine.frames().AddRef(parent_pte.frame);
    pt.Map(child_va, parent_pte.frame, child_flags);
    ++stats.pages_mapped;
    // Write-protect the parent's writable pages so its writes also break the share (Fig. 2 ⓐ).
    if ((parent_pte.flags & kPteWrite) != 0) {
      pt.SetFlags(parent_va, (parent_pte.flags & ~kPteWrite) | kPteCow);
    }
  }
  stats.caps_relocated_eagerly = eager_reloc.relocated;

  // 2. Post-copy phase (§3.5 step 2): kernel resources, fresh PID (already assigned by the
  //    shell), registers relocated via their tags.
  child.fds = parent.fds->Clone();
  machine.Charge(costs.fd_dup * static_cast<uint64_t>(child.fds->OpenCount()));
  child.mmap_cursor = child.base + (parent.mmap_cursor - parent.base);

  child.regs = parent.regs;
  const RelocationResult reg_reloc =
      RelocateRegisterFile(child.regs, parent.base, parent.size, child.base);
  machine.Charge(costs.cap_relocate * (reg_reloc.relocated + 3));
  stats.registers_relocated = reg_reloc.relocated;
  child.syscall_sentry = parent.syscall_sentry;  // sealed kernel entry is per-system, not per-proc
  if (kernel.policy().confine_caps) {
    UF_CHECK_MSG(!child.regs.ddc.EscapesRegion(child.base, child.base + child.size),
                 "child DDC must be confined to the child region");
  } else {
    // Isolation disabled (R4): the ambient DDC spans the whole user area and must stay that
    // way — the relocation pass would otherwise clamp it whenever its base happens to
    // coincide with the parent's region.
    child.regs.ddc = parent.regs.ddc;
  }

  child.signals = parent.signals.ForkCopy();
  child.forked_child = true;
  child.fork_stats = stats;
  child.child_affinity = parent.child_affinity;
  kernel.StartUprocThread(child, std::move(entry), parent.child_affinity);
  return child.pid();
}

Result<void> UforkBackend::ResolveFault(KernelCore& kernel, const PageFaultInfo& info) {
  Machine& machine = kernel.machine();
  const CostModel& costs = kernel.costs();
  Uproc* uproc = kernel.UprocByAddress(info.va);
  if (uproc == nullptr) {
    return Error{Code::kFaultNotMapped, "fault in unowned region"};
  }
  PageTable& pt = *info.page_table;
  Pte* pte = pt.LookupMutable(info.va);
  if (pte == nullptr) {
    // Guest-reachable (an access through a stale capability can fault inside an owned region
    // on a page that was never mapped): delivered to the guest, never a host abort.
    return Error{Code::kFaultNotMapped, "fault on unmapped page"};
  }
  if ((pte->flags & kPteNotPresent) != 0) {
    return ResolveDemandFault(kernel, *uproc, pt, info, *pte);
  }
  if ((pte->flags & (kPteCow | kPteLoadCapFault)) == 0) {
    return Error{Code::kFaultPageProt, "fault on a non-shared page"};
  }

  const uint32_t limit = FaultAroundBegin(kernel, *uproc, info);
  FaultWindow window = FaultAroundScan(kernel, *uproc, pt, info, *pte, limit);

  // The trap itself (costs.page_fault) was charged by the access engine before dispatching
  // here; fault_cycles attributes it to the storm together with the resolution charges.
  Cycles resolved_cycles = costs.page_fault;
  auto charge = [&](Cycles cycles) {
    machine.Charge(cycles);
    resolved_cycles += cycles;
  };

  KernelStats& stats = kernel.stats();
  RelocationResult reloc;
  RegionMemo memo;  // source-interval cache shared across the window's relocation scans
  if (window.shared) {
    // Copy + relocate each window page, then repoint the mappings (Fig. 2: the copying
    // μprocess gets the fresh frames; the other sharer keeps the originals and resolves
    // lazily on its own faults).
    std::array<FrameId, kMaxFaultAroundWindow> fresh;
    if (!machine.frames().AllocateForCopy(std::span(fresh.data(), window.pages)).ok()) {
      // Physical memory cannot cover the batch: fall back to the faulting page alone (the
      // single-page allocation failing is the pre-fault-around failure mode).
      window.pages = 1;
      UF_RETURN_IF_ERROR(machine.frames().AllocateForCopy(std::span(fresh.data(), 1)));
    }
    std::array<FrameId, kMaxFaultAroundWindow> old;
    for (uint64_t i = 0; i < window.pages; ++i) {
      Pte* page = pt.LookupMutable(info.va + i * kPageSize);
      charge(costs.frame_alloc + costs.page_copy + costs.page_tag_scan);
      Frame& dst = machine.frames().frame(fresh[i]);
      dst.CopyFrom(machine.frames().frame(page->frame));
      const RelocationResult page_reloc =
          RelocateFrameInto(dst, kernel.address_space(), uproc->base, uproc->size, &memo);
      charge(costs.cap_relocate * page_reloc.relocated);
      reloc.tags_seen += page_reloc.tags_seen;
      reloc.relocated += page_reloc.relocated;
      reloc.stripped += page_reloc.stripped;
      old[i] = page->frame;
    }
    charge(window.pages == 1 ? costs.pte_update : costs.pte_update_batched);
    pt.RemapRange(info.va, std::span<const FrameId>(fresh.data(), window.pages),
                  window.seg_flags, /*extra_flags_after_first=*/kPteFaultAround);
    for (uint64_t i = 0; i < window.pages; ++i) {
      machine.frames().Release(old[i]);
    }
    stats.pages_copied_on_fault += window.pages;
  } else {
    // Last sharer: reclaim the pages in place. Relocation is still required if a frame holds
    // stale capabilities (e.g. the partner copied first and this is the child's original view).
    for (uint64_t i = 0; i < window.pages; ++i) {
      Pte* page = pt.LookupMutable(info.va + i * kPageSize);
      charge(costs.page_tag_scan);
      const RelocationResult page_reloc =
          RelocateFrameInto(machine.frames().frame(page->frame), kernel.address_space(),
                            uproc->base, uproc->size, &memo);
      charge(costs.cap_relocate * page_reloc.relocated);
      reloc.tags_seen += page_reloc.tags_seen;
      reloc.relocated += page_reloc.relocated;
      reloc.stripped += page_reloc.stripped;
    }
    charge(window.pages == 1 ? costs.pte_update : costs.pte_update_batched);
    pt.SetFlagsRange(info.va, window.pages, window.seg_flags,
                     /*extra_flags_after_first=*/kPteFaultAround);
    stats.pages_reclaimed_in_place += window.pages;
  }
  stats.caps_relocated_on_fault += reloc.relocated;
  stats.caps_stripped += reloc.stripped;
  stats.fault_cycles += resolved_cycles;
  FaultAroundCommit(kernel, *uproc, window);
  return OkResult();
}

void UforkBackend::OnExit(KernelCore& kernel, Uproc& uproc) {
  // Speculative pages from the final window that were never touched count as waste.
  FaultAroundAccountExitWaste(kernel, uproc);
}

}  // namespace ufork
