// Pre-fork web server demo (paper use-case U5): a master μprocess forks long-lived workers
// that serve a closed loop of connections concurrently, like Nginx's master/worker model.
//
//   $ ./nginx_workers
#include <cstdio>

#include "src/apps/httpd.h"
#include "src/baseline/system.h"

using namespace ufork;

namespace {

HttpdResult RunServer(int cores, int workers) {
  KernelConfig config;
  config.layout.heap_size = 4 * kMiB;
  config.cores = cores;
  auto kernel = MakeUforkKernel(config);
  HttpdResult result;
  HttpdParams params;
  params.workers = workers;
  params.connections = 8;
  params.requests_per_connection = 200;
  auto pid = kernel->Spawn(MakeGuestEntry([&result, params](Guest& g) -> SimTask<void> {
                             co_await HttpdBenchmark(g, params, &result);
                           }),
                           "nginx");
  UF_CHECK(pid.ok());
  kernel->Run();
  return result;
}

}  // namespace

int main() {
  std::printf("Pre-fork web server: 8 connections x 200 requests, 8 KB responses\n\n");
  std::printf("single core (Unikraft big-kernel-lock SMP, §4.5):\n");
  for (int workers = 1; workers <= 3; ++workers) {
    const HttpdResult result = RunServer(/*cores=*/1, workers);
    std::printf("  %d worker%s: %7.0f req/s  (%.1f ms for %lu requests)\n", workers,
                workers == 1 ? " " : "s", result.RequestsPerSecond(),
                ToMilliseconds(result.elapsed), result.requests_completed);
  }
  std::printf("\nworkers overlap their blocking I/O even on one core — the paper's Fig. 7 "
              "observation.\n");
  return 0;
}
