// FaaS Zygote demo (paper use-case U2+U5): initialize a language runtime once, then serve
// each request by forking the warm Zygote — the child inherits modules, constant pools and
// bytecode through fork's state duplication and starts in microseconds.
//
//   $ ./faas_zygote
#include <cstdio>

#include "src/apps/faas.h"
#include "src/baseline/system.h"

using namespace ufork;

int main() {
  KernelConfig config;
  config.layout.heap_size = 8 * kMiB;
  config.cores = 4;
  auto kernel = MakeUforkKernel(config);

  ZygoteResult result;
  auto pid = kernel->Spawn(
      MakeGuestEntry([&result](Guest& g) -> SimTask<void> {
        const Cycles warm_start = g.kernel().sched().Now();
        UF_CHECK(InitializeZygoteRuntime(g).ok());
        std::printf("[zygote pid=%ld] runtime warm-up took %.2f ms (paid once)\n", g.pid(),
                    ToMilliseconds(g.kernel().sched().Now() - warm_start));

        // One request end to end, instrumented.
        const Cycles t0 = g.kernel().sched().Now();
        auto child = co_await g.Fork([](Guest& cg) -> SimTask<void> {
          auto value = FloatOperation(cg, 5'000);
          UF_CHECK(value.ok());
          std::printf("[function pid=%ld] float_operation(5000) = %.4f — warm runtime "
                      "inherited via fork\n",
                      cg.pid(), *value);
          co_await cg.Exit(0);
        });
        UF_CHECK(child.ok());
        (void)co_await g.Wait();
        std::printf("[zygote] single request latency (fork→exit→reap): %.1f μs\n",
                    ToMicroseconds(g.kernel().sched().Now() - t0));

        // Now saturate 3 worker cores for a 50 ms window.
        ZygoteParams params;
        params.window = Milliseconds(50);
        params.worker_cores = 3;
        params.float_iterations = 5'000;
        co_await ZygoteCoordinator(g, params, &result);
      }),
      "zygote", /*pinned_core=*/0);
  UF_CHECK(pid.ok());
  kernel->Run();

  std::printf("[zygote] window: %lu functions in %.1f ms → %.0f functions/s on 3 cores\n",
              result.functions_completed, ToMilliseconds(result.elapsed),
              result.FunctionsPerSecond());
  std::printf("kernel: %lu forks, %lu exits, %lu CoPA faults\n", kernel->stats().forks.value(),
              kernel->stats().exits.value(), kernel->machine().cap_load_faults());
  return 0;
}
