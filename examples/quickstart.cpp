// Quickstart: boot a μFork kernel, fork a μprocess, and watch the single-address-space
// machinery work — region placement, proactive GOT/allocator relocation, CoPA faults, and
// copy-on-write isolation in both directions.
//
//   $ ./quickstart
#include <cstdio>

#include "src/baseline/system.h"
#include "src/kernel/proc_report.h"
#include "src/guest/guest.h"

using namespace ufork;

int main() {
  KernelConfig config;
  config.cores = 4;
  config.strategy = ForkStrategy::kCopa;
  config.isolation = IsolationLevel::kFull;

  auto kernel = MakeUforkKernel(config);
  std::printf("μFork quickstart — backend=%s strategy=%s isolation=%s\n",
              kernel->backend().name(), ForkStrategyName(config.strategy),
              IsolationLevelName(config.isolation));

  auto pid = kernel->Spawn(
      MakeGuestEntry([](Guest& g) -> SimTask<void> {
        std::printf("[parent pid=%ld] region [0x%lx, 0x%lx)\n", g.pid(), g.base(),
                    g.base() + g.uproc().size);

        // Build some state: a heap block holding a value, published through the GOT so the
        // (relocated) child can find it position-independently.
        auto block = g.Malloc(64);
        UF_CHECK(block.ok());
        UF_CHECK(g.StoreAt<uint64_t>(*block, 0, 2025).ok());
        UF_CHECK(g.GotStore(kGotSlotFirstUser, *block).ok());
        std::printf("[parent] planted value 2025 at %s\n", block->ToString().c_str());

        auto child = co_await g.Fork([](Guest& cg) -> SimTask<void> {
          std::printf("[child pid=%ld] region [0x%lx, 0x%lx) — same address space, new area\n",
                      cg.pid(), cg.base(), cg.base() + cg.uproc().size);
          std::printf("\n%s\n", ProcessTableReport(cg.kernel()).c_str());
          std::printf("%s\n", MemoryMapReport(cg.kernel(), cg.pid()).c_str());
          auto cap = cg.GotLoad(kGotSlotFirstUser);
          UF_CHECK(cap.ok());
          std::printf("[child] GOT slot relocated to %s\n", cap->ToString().c_str());
          auto value = cg.LoadAt<uint64_t>(*cap, 0);  // CoPA copies the page underneath
          UF_CHECK(value.ok());
          std::printf("[child] read inherited value: %lu\n", *value);
          UF_CHECK(cg.StoreAt<uint64_t>(*cap, 0, 1111).ok());
          std::printf("[child] overwrote it with 1111 (private copy)\n");
          co_await cg.Exit(42);
        });
        UF_CHECK(child.ok());
        const ForkStats& stats = g.kernel().FindUproc(*child)->fork_stats;
        std::printf("[parent] fork latency %.1f μs — %lu pages mapped, %lu copied eagerly, "
                    "%lu caps relocated eagerly, %lu registers relocated\n",
                    ToMicroseconds(stats.latency), stats.pages_mapped,
                    stats.pages_copied_eagerly, stats.caps_relocated_eagerly,
                    stats.registers_relocated);

        auto waited = co_await g.Wait();
        UF_CHECK(waited.ok());
        auto value = g.LoadAt<uint64_t>(*block, 0);
        UF_CHECK(value.ok());
        std::printf("[parent] child exited with %d; my value is still %lu\n", waited->status,
                    *value);
      }),
      "quickstart");
  UF_CHECK(pid.ok());
  kernel->Run();

  std::printf("\n%s", KernelSummaryReport(*kernel).c_str());

  std::printf(
      "\nTable 1 (paper): how μFork compares to prior SASOS fork systems\n"
      "  %-16s %-4s %-10s %-4s %-5s %-4s %-9s\n"
      "  %-16s %-4s %-10s %-4s %-5s %-4s %-9s\n"
      "  %-16s %-4s %-10s %-4s %-5s %-4s %-9s\n"
      "  %-16s %-4s %-10s %-4s %-5s %-4s %-9s\n"
      "  %-16s %-4s %-10s %-4s %-5s %-4s %-9s\n",
      "System", "SAS", "Isolation", "SC", "IPCs", "Seg", "f+e only",
      "Nephele/KylinX", "No", "Yes", "No", "Med", "No", "No",
      "OSv/Junction", "Yes", "No", "—", "Fast", "No", "Yes",
      "Angel/Mungi", "Yes", "Yes", "Yes", "Fast", "Yes", "No",
      "uFork (this)", "Yes", "Yes", "Yes", "Fast", "No", "No");
  return 0;
}
