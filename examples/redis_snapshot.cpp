// Redis snapshot demo (paper use-case U2+U4): a key-value store serves writes while a forked
// child saves a consistent point-in-time snapshot in the background. Runs the same workload
// under all three copy strategies and prints the trade-off triangle the paper's Figures 4/5
// plot (fork latency vs child memory).
//
//   $ ./redis_snapshot
#include <cstdio>

#include "src/apps/miniredis.h"
#include "src/baseline/system.h"

using namespace ufork;

namespace {

void RunOnce(ForkStrategy strategy) {
  KernelConfig config;
  config.layout.heap_size = 64 * kMiB;
  config.strategy = strategy;
  auto kernel = MakeUforkKernel(config);
  auto pid = kernel->Spawn(
      MakeGuestEntry([strategy](Guest& g) -> SimTask<void> {
        auto db = MiniRedis::Create(g, 1024);
        UF_CHECK(db.ok());
        const std::vector<std::byte> blob(32 * 1024, std::byte{0xAB});
        for (int i = 0; i < 200; ++i) {  // ~6.4 MB database
          UF_CHECK(db->Set("user:" + std::to_string(i), blob).ok());
        }

        const Cycles t0 = g.kernel().sched().Now();
        auto child = co_await db->BgSave("/var/redis/dump.rdb");
        UF_CHECK(child.ok());
        const ForkStats& fork_stats = g.kernel().FindUproc(*child)->fork_stats;

        // Keep serving while the snapshot runs: overwrite, insert, delete.
        for (int i = 0; i < 50; ++i) {
          UF_CHECK(db->Set("user:" + std::to_string(i),
                           std::vector<std::byte>(32 * 1024, std::byte{0xCD}))
                       .ok());
        }
        UF_CHECK(db->Set("session:new", blob).ok());
        auto erased = db->Del("user:199");
        UF_CHECK(erased.ok());

        auto waited = co_await g.Wait();
        UF_CHECK(waited.ok() && waited->status == 0);
        const Cycles save_ms = g.kernel().sched().Now() - t0;

        auto info = co_await db->VerifyDump("/var/redis/dump.rdb");
        UF_CHECK(info.ok());
        std::printf(
            "  %-9s fork %8.1f μs   save %7.2f ms   dump %3lu entries (%5.1f MB, "
            "fork-time state)\n",
            ForkStrategyName(strategy), ToMicroseconds(fork_stats.latency),
            ToMilliseconds(save_ms), info->entries,
            static_cast<double>(info->value_bytes) / static_cast<double>(kMiB));
        std::printf("            pages: %lu mapped, %lu eager copies; on-fault copies %lu "
                    "(CoPA faults %lu)\n",
                    fork_stats.pages_mapped, fork_stats.pages_copied_eagerly,
                    g.kernel().stats().pages_copied_on_fault.value(),
                    g.kernel().machine().cap_load_faults());
      }),
      "redis");
  UF_CHECK(pid.ok());
  kernel->Run();
}

}  // namespace

int main() {
  std::printf("Redis BGSAVE under a 6.4 MB database, 50 concurrent overwrites (§3.8):\n");
  RunOnce(ForkStrategy::kCopa);
  RunOnce(ForkStrategy::kCoa);
  RunOnce(ForkStrategy::kFull);
  std::printf("\nCoPA shares everything the child only *reads*; CoA copies everything the "
              "child touches;\nFullCopy pays everything up front. The snapshot is identical "
              "in all three.\n");
  return 0;
}
