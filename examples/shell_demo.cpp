// Mini-shell demo (paper use-case U1: fork + exec): run filter programs with redirections and
// a pipeline, all inside the single address space.
//
//   $ ./shell_demo
#include <cstdio>

#include "src/apps/shell.h"
#include "src/baseline/system.h"

using namespace ufork;

int main() {
  KernelConfig config;
  config.layout.heap_size = 1 * kMiB;
  auto kernel = MakeUforkKernel(config);
  RegisterShellUtilities(*kernel);

  auto pid = kernel->Spawn(
      MakeGuestEntry([](Guest& g) -> SimTask<void> {
        Shell shell(g);
        auto fd = co_await g.Open("/etc/motd", kOpenWrite | kOpenCreate);
        UF_CHECK(fd.ok());
        auto motd = g.PlaceString("welcome to ufork\nfork responsibly\n");
        UF_CHECK(motd.ok());
        UF_CHECK((co_await g.Write(*fd, *motd, 34)).ok());
        UF_CHECK((co_await g.Close(*fd)).ok());

        const char* lines[] = {
            "cat < /etc/motd > /tmp/copy.txt",
            "upper < /etc/motd > /tmp/shout.txt",
            "seq 12 > /tmp/numbers.txt",
            "seq 1000 | count > /tmp/wc.txt",
            "stats > /tmp/stats.txt",
            "totally-not-a-program",
        };
        for (const char* line : lines) {
          auto status = co_await shell.Run(line);
          std::printf("$ %-40s -> exit %d\n", line, status.ok() ? *status : -1);
        }
        for (const char* path : {"/tmp/shout.txt", "/tmp/wc.txt", "/tmp/stats.txt"}) {
          auto contents = co_await shell.Slurp(path);
          UF_CHECK(contents.ok());
          std::printf("--- %s ---\n%s", path, contents->c_str());
        }
        std::printf("(each command line cost one fork + one exec; %lu forks total)\n",
                    g.kernel().stats().forks.value());
      }),
      "sh");
  UF_CHECK(pid.ok());
  kernel->Run();
  return 0;
}
