// Fork-server fuzzing demo (paper use-case U5): the expensive target initialization runs once;
// every test case runs in a forked child, so capability-fault "crashes" are contained and the
// pristine state is restored for free. Compares against re-initializing per case.
//
//   $ ./fuzzing_demo
#include <cstdio>

#include "src/apps/forkfuzz.h"
#include "src/baseline/system.h"

using namespace ufork;

namespace {

FuzzStats RunMode(bool fork_server, uint64_t iterations) {
  KernelConfig config;
  config.layout.heap_size = 1 * kMiB;
  auto kernel = MakeUforkKernel(config);
  FuzzStats stats;
  auto pid = kernel->Spawn(
      MakeGuestEntry([&stats, fork_server, iterations](Guest& g) -> SimTask<void> {
        const FuzzTarget target = MakeLookupTableTarget();
        UF_CHECK(target.initialize(g).ok());
        if (fork_server) {
          co_await RunForkServer(g, target, iterations, /*seed=*/2025, &stats);
        } else {
          co_await RunRespawnBaseline(g, target, iterations, /*seed=*/2025, &stats);
        }
      }),
      "fuzzer");
  UF_CHECK(pid.ok());
  kernel->Run();
  return stats;
}

}  // namespace

int main() {
  constexpr uint64_t kIterations = 300;
  std::printf("fuzzing a lookup-table parser with a planted out-of-bounds bug "
              "(trigger byte 0xEE)\n\n");
  const FuzzStats server = RunMode(/*fork_server=*/true, kIterations);
  const FuzzStats respawn = RunMode(/*fork_server=*/false, kIterations);
  std::printf("  fork server:  %4lu execs, %3lu crashes caught, %7.1f ms -> %7.0f execs/s\n",
              server.executions, server.crashes, ToMilliseconds(server.elapsed),
              server.ExecsPerSecond());
  std::printf("  respawn/case: %4lu execs, %3lu crashes caught, %7.1f ms -> %7.0f execs/s\n",
              respawn.executions, respawn.crashes, ToMilliseconds(respawn.elapsed),
              respawn.ExecsPerSecond());
  std::printf("\nidentical verdicts, %.1fx higher throughput: fork amortizes the per-case "
              "setup (U5),\nand every crash is a *contained* capability fault, not a corrupted "
              "fuzzer.\n",
              server.ExecsPerSecond() / respawn.ExecsPerSecond());
  return 0;
}
