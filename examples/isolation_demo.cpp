// Isolation demo: the attack vectors of the paper's threat model (§3.3) and how the
// CHERI-based design stops each one — plus what happens when you deliberately turn the
// protections off (R4: parameterized isolation).
//
//   $ ./isolation_demo
#include <cstdio>

#include "src/baseline/system.h"
#include "src/guest/guest.h"

using namespace ufork;

namespace {

KernelConfig DemoConfig(ForkStrategy strategy = ForkStrategy::kCopa) {
  KernelConfig config;
  config.layout.heap_size = 1 * kMiB;
  config.strategy = strategy;
  return config;
}

void DirectAddressingAttack() {
  std::printf("1. Direct addressing (§3.3): child dereferences an address in the parent's "
              "region.\n");
  auto kernel = MakeUforkKernel(DemoConfig());
  auto pid = kernel->Spawn(
      MakeGuestEntry([](Guest& g) -> SimTask<void> {
        auto secret = g.Malloc(16);
        UF_CHECK(secret.ok());
        UF_CHECK(g.StoreAt<uint64_t>(*secret, 0, 0x5ec12e7).ok());
        const uint64_t secret_va = secret->base();
        auto child = co_await g.Fork([secret_va](Guest& cg) -> SimTask<void> {
          auto stolen = cg.Load<uint64_t>(cg.ddc(), secret_va);
          std::printf("   child load of parent VA 0x%lx -> %s\n", secret_va,
                      CodeName(stolen.code()));
          UF_CHECK(!stolen.ok());  // DDC bounds stop it
          co_await cg.Exit(0);
        });
        UF_CHECK(child.ok());
        (void)co_await g.Wait();
      }),
      "attack1");
  UF_CHECK(pid.ok());
  kernel->Run();
}

void CapabilityForgeryAttack() {
  std::printf("2. Capability forgery: widen bounds / fabricate a pointer from an integer.\n");
  auto kernel = MakeUforkKernel(DemoConfig());
  auto pid = kernel->Spawn(
      MakeGuestEntry([](Guest& g) -> SimTask<void> {
        auto block = g.Malloc(64);
        UF_CHECK(block.ok());
        const Capability widened = block->WithBounds(block->base(), 1 * kMiB);
        std::printf("   widening a 64-byte capability to 1 MiB -> tag=%d (monotonicity)\n",
                    widened.tag());
        const Capability forged = Capability::Integer(g.base());
        auto deref = g.Load<uint64_t>(forged, g.base());
        std::printf("   dereferencing an integer 'pointer' -> %s (no tag, no authority)\n",
                    CodeName(deref.code()));
        co_return;
      }),
      "attack2");
  UF_CHECK(pid.ok());
  kernel->Run();
}

void PrivilegedInstructionAttack() {
  std::printf("3. Privileged instructions (§4.4): user code runs at EL1 but lacks the System "
              "permission.\n");
  auto kernel = MakeUforkKernel(DemoConfig());
  auto pid = kernel->Spawn(MakeGuestEntry([](Guest& g) -> SimTask<void> {
                             auto attempt = co_await g.PrivilegedOp();
                             std::printf("   MSR-class operation from a μprocess -> %s\n",
                                         CodeName(attempt.code()));
                           }),
                           "attack3");
  UF_CHECK(pid.ok());
  kernel->Run();
}

void ConfusedDeputyAttack() {
  std::printf("4. Confused deputy (§4.4): pass a foreign buffer to the kernel.\n");
  auto kernel = MakeUforkKernel(DemoConfig());
  auto pid = kernel->Spawn(
      MakeGuestEntry([](Guest& g) -> SimTask<void> {
        auto fd = co_await g.Open("/out", kOpenWrite | kOpenCreate);
        UF_CHECK(fd.ok());
        const Capability foreign = Capability::Root(2 * kGiB, kPageSize, kPermAllData);
        auto written = co_await g.kernel().SysWrite(g.uproc(), *fd, foreign, 2 * kGiB, 16);
        std::printf("   write(fd, <buffer outside my region>) -> %s\n",
                    CodeName(written.code()));
        co_return;
      }),
      "attack4");
  UF_CHECK(pid.ok());
  kernel->Run();
}

void StaleCapabilityWithUnsafeCow() {
  std::printf("5. Why CoPA exists (§3.8): classic CoW leaks stale parent capabilities.\n");
  for (const ForkStrategy strategy : {ForkStrategy::kUnsafeCow, ForkStrategy::kCopa}) {
    auto kernel = MakeUforkKernel(DemoConfig(strategy));
    auto pid = kernel->Spawn(
        MakeGuestEntry([strategy](Guest& g) -> SimTask<void> {
          auto target = g.Malloc(16);
          auto cell = g.Malloc(16);
          UF_CHECK(target.ok() && cell.ok());
          UF_CHECK(g.StoreCap(*cell, cell->base(), *target).ok());
          const uint64_t cell_off = cell->base() - g.base();
          auto child = co_await g.Fork([strategy, cell_off](Guest& cg) -> SimTask<void> {
            auto loaded = cg.LoadCap(cg.ddc(), cg.base() + cell_off);
            UF_CHECK(loaded.ok());
            const bool confined = loaded->base() >= cg.base() &&
                                  loaded->top() <= cg.base() + cg.uproc().size;
            std::printf("   %-10s child-loaded pointer is %s\n", ForkStrategyName(strategy),
                        confined ? "relocated into the child (confined)"
                                 : "STALE — it still targets the parent!");
            co_await cg.Exit(0);
          });
          UF_CHECK(child.ok());
          (void)co_await g.Wait();
        }),
        "attack5");
    UF_CHECK(pid.ok());
    kernel->Run();
  }
}

void IsolationDisabled() {
  std::printf("6. R4 — isolation can be disabled for trusted deployments "
              "(Redis-snapshot trust model, §3.6):\n");
  KernelConfig config = DemoConfig();
  config.isolation = IsolationLevel::kNone;
  auto kernel = MakeUforkKernel(config);
  auto pid = kernel->Spawn(
      MakeGuestEntry([](Guest& g) -> SimTask<void> {
        auto secret = g.Malloc(16);
        UF_CHECK(secret.ok());
        UF_CHECK(g.StoreAt<uint64_t>(*secret, 0, 99).ok());
        const uint64_t secret_va = secret->base();
        auto child = co_await g.Fork([secret_va](Guest& cg) -> SimTask<void> {
          auto peek = cg.Load<uint64_t>(cg.ddc(), secret_va);
          std::printf("   with isolation=none the child CAN read the parent: %s (value %lu)\n",
                      peek.ok() ? "OK" : CodeName(peek.code()), peek.ok() ? *peek : 0);
          co_await cg.Exit(0);
        });
        UF_CHECK(child.ok());
        (void)co_await g.Wait();
      }),
      "trusted");
  UF_CHECK(pid.ok());
  kernel->Run();
}

}  // namespace

int main() {
  std::printf("μFork isolation demo — each attack from the paper's threat model (§3.3):\n\n");
  DirectAddressingAttack();
  CapabilityForgeryAttack();
  PrivilegedInstructionAttack();
  ConfusedDeputyAttack();
  StaleCapabilityWithUnsafeCow();
  IsolationDisabled();
  return 0;
}
