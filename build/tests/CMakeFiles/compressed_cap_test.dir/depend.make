# Empty dependencies file for compressed_cap_test.
# This may be replaced when dependencies are built.
