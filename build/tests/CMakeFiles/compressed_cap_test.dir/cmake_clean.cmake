file(REMOVE_RECURSE
  "CMakeFiles/compressed_cap_test.dir/compressed_cap_test.cc.o"
  "CMakeFiles/compressed_cap_test.dir/compressed_cap_test.cc.o.d"
  "compressed_cap_test"
  "compressed_cap_test.pdb"
  "compressed_cap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compressed_cap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
