file(REMOVE_RECURSE
  "CMakeFiles/fork_semantics_test.dir/fork_semantics_test.cc.o"
  "CMakeFiles/fork_semantics_test.dir/fork_semantics_test.cc.o.d"
  "fork_semantics_test"
  "fork_semantics_test.pdb"
  "fork_semantics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fork_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
