# Empty dependencies file for coroutine_lifetime_test.
# This may be replaced when dependencies are built.
