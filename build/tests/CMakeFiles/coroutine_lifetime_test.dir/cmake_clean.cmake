file(REMOVE_RECURSE
  "CMakeFiles/coroutine_lifetime_test.dir/coroutine_lifetime_test.cc.o"
  "CMakeFiles/coroutine_lifetime_test.dir/coroutine_lifetime_test.cc.o.d"
  "coroutine_lifetime_test"
  "coroutine_lifetime_test.pdb"
  "coroutine_lifetime_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coroutine_lifetime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
