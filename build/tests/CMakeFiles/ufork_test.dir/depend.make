# Empty dependencies file for ufork_test.
# This may be replaced when dependencies are built.
