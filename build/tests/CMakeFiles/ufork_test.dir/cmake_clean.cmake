file(REMOVE_RECURSE
  "CMakeFiles/ufork_test.dir/ufork_test.cc.o"
  "CMakeFiles/ufork_test.dir/ufork_test.cc.o.d"
  "ufork_test"
  "ufork_test.pdb"
  "ufork_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ufork_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
