file(REMOVE_RECURSE
  "CMakeFiles/shell_fuzz_test.dir/shell_fuzz_test.cc.o"
  "CMakeFiles/shell_fuzz_test.dir/shell_fuzz_test.cc.o.d"
  "shell_fuzz_test"
  "shell_fuzz_test.pdb"
  "shell_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shell_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
