# Empty dependencies file for shell_fuzz_test.
# This may be replaced when dependencies are built.
