file(REMOVE_RECURSE
  "CMakeFiles/gvector_test.dir/gvector_test.cc.o"
  "CMakeFiles/gvector_test.dir/gvector_test.cc.o.d"
  "gvector_test"
  "gvector_test.pdb"
  "gvector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gvector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
