# Empty dependencies file for gvector_test.
# This may be replaced when dependencies are built.
