# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/capability_test[1]_include.cmake")
include("/root/repo/build/tests/compressed_cap_test[1]_include.cmake")
include("/root/repo/build/tests/frame_test[1]_include.cmake")
include("/root/repo/build/tests/page_table_test[1]_include.cmake")
include("/root/repo/build/tests/address_space_test[1]_include.cmake")
include("/root/repo/build/tests/scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/machine_test[1]_include.cmake")
include("/root/repo/build/tests/kernel_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/coroutine_lifetime_test[1]_include.cmake")
include("/root/repo/build/tests/ufork_test[1]_include.cmake")
include("/root/repo/build/tests/guest_test[1]_include.cmake")
include("/root/repo/build/tests/posix_test[1]_include.cmake")
include("/root/repo/build/tests/fork_semantics_test[1]_include.cmake")
include("/root/repo/build/tests/ipc_test[1]_include.cmake")
include("/root/repo/build/tests/base_test[1]_include.cmake")
include("/root/repo/build/tests/shell_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
include("/root/repo/build/tests/gvector_test[1]_include.cmake")
include("/root/repo/build/tests/kernel_edge_test[1]_include.cmake")
include("/root/repo/build/tests/threads_test[1]_include.cmake")
