# Empty compiler generated dependencies file for bench_fig5_redis_memory.
# This may be replaced when dependencies are built.
