
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fragmentation.cc" "bench/CMakeFiles/bench_fragmentation.dir/bench_fragmentation.cc.o" "gcc" "bench/CMakeFiles/bench_fragmentation.dir/bench_fragmentation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baseline/CMakeFiles/uf_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/uf_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/ufork/CMakeFiles/uf_ufork.dir/DependInfo.cmake"
  "/root/repo/build/src/guest/CMakeFiles/uf_guest.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/uf_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/uf_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/uf_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/cheri/CMakeFiles/uf_cheri.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/uf_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/uf_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
