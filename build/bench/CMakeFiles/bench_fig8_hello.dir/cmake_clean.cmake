file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_hello.dir/bench_fig8_hello.cc.o"
  "CMakeFiles/bench_fig8_hello.dir/bench_fig8_hello.cc.o.d"
  "bench_fig8_hello"
  "bench_fig8_hello.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_hello.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
