# Empty dependencies file for bench_fig8_hello.
# This may be replaced when dependencies are built.
