file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_unixbench.dir/bench_fig9_unixbench.cc.o"
  "CMakeFiles/bench_fig9_unixbench.dir/bench_fig9_unixbench.cc.o.d"
  "bench_fig9_unixbench"
  "bench_fig9_unixbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_unixbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
