file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_faas.dir/bench_fig6_faas.cc.o"
  "CMakeFiles/bench_fig6_faas.dir/bench_fig6_faas.cc.o.d"
  "bench_fig6_faas"
  "bench_fig6_faas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_faas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
