# Empty dependencies file for bench_fig6_faas.
# This may be replaced when dependencies are built.
