file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_redis_save.dir/bench_fig3_redis_save.cc.o"
  "CMakeFiles/bench_fig3_redis_save.dir/bench_fig3_redis_save.cc.o.d"
  "bench_fig3_redis_save"
  "bench_fig3_redis_save.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_redis_save.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
