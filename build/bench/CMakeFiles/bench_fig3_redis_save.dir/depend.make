# Empty dependencies file for bench_fig3_redis_save.
# This may be replaced when dependencies are built.
