file(REMOVE_RECURSE
  "CMakeFiles/nginx_workers.dir/nginx_workers.cpp.o"
  "CMakeFiles/nginx_workers.dir/nginx_workers.cpp.o.d"
  "nginx_workers"
  "nginx_workers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nginx_workers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
