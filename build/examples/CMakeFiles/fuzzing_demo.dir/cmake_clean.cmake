file(REMOVE_RECURSE
  "CMakeFiles/fuzzing_demo.dir/fuzzing_demo.cpp.o"
  "CMakeFiles/fuzzing_demo.dir/fuzzing_demo.cpp.o.d"
  "fuzzing_demo"
  "fuzzing_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzzing_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
