# Empty compiler generated dependencies file for fuzzing_demo.
# This may be replaced when dependencies are built.
