# Empty dependencies file for faas_zygote.
# This may be replaced when dependencies are built.
