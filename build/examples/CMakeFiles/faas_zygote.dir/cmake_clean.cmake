file(REMOVE_RECURSE
  "CMakeFiles/faas_zygote.dir/faas_zygote.cpp.o"
  "CMakeFiles/faas_zygote.dir/faas_zygote.cpp.o.d"
  "faas_zygote"
  "faas_zygote.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faas_zygote.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
