# Empty compiler generated dependencies file for redis_snapshot.
# This may be replaced when dependencies are built.
