file(REMOVE_RECURSE
  "CMakeFiles/redis_snapshot.dir/redis_snapshot.cpp.o"
  "CMakeFiles/redis_snapshot.dir/redis_snapshot.cpp.o.d"
  "redis_snapshot"
  "redis_snapshot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redis_snapshot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
