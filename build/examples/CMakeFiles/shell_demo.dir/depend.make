# Empty dependencies file for shell_demo.
# This may be replaced when dependencies are built.
