file(REMOVE_RECURSE
  "CMakeFiles/shell_demo.dir/shell_demo.cpp.o"
  "CMakeFiles/shell_demo.dir/shell_demo.cpp.o.d"
  "shell_demo"
  "shell_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shell_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
