# Empty dependencies file for uf_base.
# This may be replaced when dependencies are built.
