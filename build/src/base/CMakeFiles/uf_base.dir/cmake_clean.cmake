file(REMOVE_RECURSE
  "CMakeFiles/uf_base.dir/check.cc.o"
  "CMakeFiles/uf_base.dir/check.cc.o.d"
  "CMakeFiles/uf_base.dir/log.cc.o"
  "CMakeFiles/uf_base.dir/log.cc.o.d"
  "CMakeFiles/uf_base.dir/status.cc.o"
  "CMakeFiles/uf_base.dir/status.cc.o.d"
  "libuf_base.a"
  "libuf_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uf_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
