file(REMOVE_RECURSE
  "libuf_base.a"
)
