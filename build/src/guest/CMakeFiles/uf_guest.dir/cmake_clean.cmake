file(REMOVE_RECURSE
  "CMakeFiles/uf_guest.dir/containers.cc.o"
  "CMakeFiles/uf_guest.dir/containers.cc.o.d"
  "CMakeFiles/uf_guest.dir/guest.cc.o"
  "CMakeFiles/uf_guest.dir/guest.cc.o.d"
  "CMakeFiles/uf_guest.dir/tinyalloc.cc.o"
  "CMakeFiles/uf_guest.dir/tinyalloc.cc.o.d"
  "libuf_guest.a"
  "libuf_guest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uf_guest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
