file(REMOVE_RECURSE
  "libuf_guest.a"
)
