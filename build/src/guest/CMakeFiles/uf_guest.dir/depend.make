# Empty dependencies file for uf_guest.
# This may be replaced when dependencies are built.
