file(REMOVE_RECURSE
  "CMakeFiles/uf_cheri.dir/capability.cc.o"
  "CMakeFiles/uf_cheri.dir/capability.cc.o.d"
  "CMakeFiles/uf_cheri.dir/compressed_cap.cc.o"
  "CMakeFiles/uf_cheri.dir/compressed_cap.cc.o.d"
  "libuf_cheri.a"
  "libuf_cheri.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uf_cheri.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
