# Empty dependencies file for uf_cheri.
# This may be replaced when dependencies are built.
