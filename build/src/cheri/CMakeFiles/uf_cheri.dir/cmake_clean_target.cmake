file(REMOVE_RECURSE
  "libuf_cheri.a"
)
