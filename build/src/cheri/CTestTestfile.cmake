# CMake generated Testfile for 
# Source directory: /root/repo/src/cheri
# Build directory: /root/repo/build/src/cheri
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
