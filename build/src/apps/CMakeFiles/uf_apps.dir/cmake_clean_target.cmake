file(REMOVE_RECURSE
  "libuf_apps.a"
)
