# Empty dependencies file for uf_apps.
# This may be replaced when dependencies are built.
