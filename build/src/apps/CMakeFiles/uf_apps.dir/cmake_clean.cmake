file(REMOVE_RECURSE
  "CMakeFiles/uf_apps.dir/faas.cc.o"
  "CMakeFiles/uf_apps.dir/faas.cc.o.d"
  "CMakeFiles/uf_apps.dir/forkfuzz.cc.o"
  "CMakeFiles/uf_apps.dir/forkfuzz.cc.o.d"
  "CMakeFiles/uf_apps.dir/httpd.cc.o"
  "CMakeFiles/uf_apps.dir/httpd.cc.o.d"
  "CMakeFiles/uf_apps.dir/miniredis.cc.o"
  "CMakeFiles/uf_apps.dir/miniredis.cc.o.d"
  "CMakeFiles/uf_apps.dir/shell.cc.o"
  "CMakeFiles/uf_apps.dir/shell.cc.o.d"
  "CMakeFiles/uf_apps.dir/unixbench.cc.o"
  "CMakeFiles/uf_apps.dir/unixbench.cc.o.d"
  "libuf_apps.a"
  "libuf_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uf_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
