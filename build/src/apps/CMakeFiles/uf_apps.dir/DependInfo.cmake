
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/faas.cc" "src/apps/CMakeFiles/uf_apps.dir/faas.cc.o" "gcc" "src/apps/CMakeFiles/uf_apps.dir/faas.cc.o.d"
  "/root/repo/src/apps/forkfuzz.cc" "src/apps/CMakeFiles/uf_apps.dir/forkfuzz.cc.o" "gcc" "src/apps/CMakeFiles/uf_apps.dir/forkfuzz.cc.o.d"
  "/root/repo/src/apps/httpd.cc" "src/apps/CMakeFiles/uf_apps.dir/httpd.cc.o" "gcc" "src/apps/CMakeFiles/uf_apps.dir/httpd.cc.o.d"
  "/root/repo/src/apps/miniredis.cc" "src/apps/CMakeFiles/uf_apps.dir/miniredis.cc.o" "gcc" "src/apps/CMakeFiles/uf_apps.dir/miniredis.cc.o.d"
  "/root/repo/src/apps/shell.cc" "src/apps/CMakeFiles/uf_apps.dir/shell.cc.o" "gcc" "src/apps/CMakeFiles/uf_apps.dir/shell.cc.o.d"
  "/root/repo/src/apps/unixbench.cc" "src/apps/CMakeFiles/uf_apps.dir/unixbench.cc.o" "gcc" "src/apps/CMakeFiles/uf_apps.dir/unixbench.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/guest/CMakeFiles/uf_guest.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/uf_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/uf_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/uf_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/cheri/CMakeFiles/uf_cheri.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/uf_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/uf_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
