file(REMOVE_RECURSE
  "libuf_sched.a"
)
