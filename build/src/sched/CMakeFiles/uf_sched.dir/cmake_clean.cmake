file(REMOVE_RECURSE
  "CMakeFiles/uf_sched.dir/scheduler.cc.o"
  "CMakeFiles/uf_sched.dir/scheduler.cc.o.d"
  "libuf_sched.a"
  "libuf_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uf_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
