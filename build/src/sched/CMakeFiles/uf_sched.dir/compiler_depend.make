# Empty compiler generated dependencies file for uf_sched.
# This may be replaced when dependencies are built.
