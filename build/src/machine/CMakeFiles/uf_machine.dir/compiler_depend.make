# Empty compiler generated dependencies file for uf_machine.
# This may be replaced when dependencies are built.
