file(REMOVE_RECURSE
  "CMakeFiles/uf_machine.dir/machine.cc.o"
  "CMakeFiles/uf_machine.dir/machine.cc.o.d"
  "libuf_machine.a"
  "libuf_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uf_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
