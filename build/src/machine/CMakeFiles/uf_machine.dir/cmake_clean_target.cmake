file(REMOVE_RECURSE
  "libuf_machine.a"
)
