file(REMOVE_RECURSE
  "CMakeFiles/uf_mem.dir/address_space.cc.o"
  "CMakeFiles/uf_mem.dir/address_space.cc.o.d"
  "CMakeFiles/uf_mem.dir/frame_allocator.cc.o"
  "CMakeFiles/uf_mem.dir/frame_allocator.cc.o.d"
  "CMakeFiles/uf_mem.dir/page_table.cc.o"
  "CMakeFiles/uf_mem.dir/page_table.cc.o.d"
  "libuf_mem.a"
  "libuf_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uf_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
