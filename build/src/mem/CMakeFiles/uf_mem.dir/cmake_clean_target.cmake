file(REMOVE_RECURSE
  "libuf_mem.a"
)
