
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/address_space.cc" "src/mem/CMakeFiles/uf_mem.dir/address_space.cc.o" "gcc" "src/mem/CMakeFiles/uf_mem.dir/address_space.cc.o.d"
  "/root/repo/src/mem/frame_allocator.cc" "src/mem/CMakeFiles/uf_mem.dir/frame_allocator.cc.o" "gcc" "src/mem/CMakeFiles/uf_mem.dir/frame_allocator.cc.o.d"
  "/root/repo/src/mem/page_table.cc" "src/mem/CMakeFiles/uf_mem.dir/page_table.cc.o" "gcc" "src/mem/CMakeFiles/uf_mem.dir/page_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/uf_base.dir/DependInfo.cmake"
  "/root/repo/build/src/cheri/CMakeFiles/uf_cheri.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
