# Empty dependencies file for uf_mem.
# This may be replaced when dependencies are built.
