file(REMOVE_RECURSE
  "libuf_kernel.a"
)
