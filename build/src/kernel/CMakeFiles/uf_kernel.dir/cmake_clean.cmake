file(REMOVE_RECURSE
  "CMakeFiles/uf_kernel.dir/fd.cc.o"
  "CMakeFiles/uf_kernel.dir/fd.cc.o.d"
  "CMakeFiles/uf_kernel.dir/kernel.cc.o"
  "CMakeFiles/uf_kernel.dir/kernel.cc.o.d"
  "CMakeFiles/uf_kernel.dir/mqueue.cc.o"
  "CMakeFiles/uf_kernel.dir/mqueue.cc.o.d"
  "CMakeFiles/uf_kernel.dir/pipe.cc.o"
  "CMakeFiles/uf_kernel.dir/pipe.cc.o.d"
  "CMakeFiles/uf_kernel.dir/proc_report.cc.o"
  "CMakeFiles/uf_kernel.dir/proc_report.cc.o.d"
  "CMakeFiles/uf_kernel.dir/vfs.cc.o"
  "CMakeFiles/uf_kernel.dir/vfs.cc.o.d"
  "libuf_kernel.a"
  "libuf_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uf_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
