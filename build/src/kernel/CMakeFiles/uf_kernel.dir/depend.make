# Empty dependencies file for uf_kernel.
# This may be replaced when dependencies are built.
