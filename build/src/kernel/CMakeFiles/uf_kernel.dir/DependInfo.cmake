
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernel/fd.cc" "src/kernel/CMakeFiles/uf_kernel.dir/fd.cc.o" "gcc" "src/kernel/CMakeFiles/uf_kernel.dir/fd.cc.o.d"
  "/root/repo/src/kernel/kernel.cc" "src/kernel/CMakeFiles/uf_kernel.dir/kernel.cc.o" "gcc" "src/kernel/CMakeFiles/uf_kernel.dir/kernel.cc.o.d"
  "/root/repo/src/kernel/mqueue.cc" "src/kernel/CMakeFiles/uf_kernel.dir/mqueue.cc.o" "gcc" "src/kernel/CMakeFiles/uf_kernel.dir/mqueue.cc.o.d"
  "/root/repo/src/kernel/pipe.cc" "src/kernel/CMakeFiles/uf_kernel.dir/pipe.cc.o" "gcc" "src/kernel/CMakeFiles/uf_kernel.dir/pipe.cc.o.d"
  "/root/repo/src/kernel/proc_report.cc" "src/kernel/CMakeFiles/uf_kernel.dir/proc_report.cc.o" "gcc" "src/kernel/CMakeFiles/uf_kernel.dir/proc_report.cc.o.d"
  "/root/repo/src/kernel/vfs.cc" "src/kernel/CMakeFiles/uf_kernel.dir/vfs.cc.o" "gcc" "src/kernel/CMakeFiles/uf_kernel.dir/vfs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/uf_base.dir/DependInfo.cmake"
  "/root/repo/build/src/cheri/CMakeFiles/uf_cheri.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/uf_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/uf_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/uf_sched.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
