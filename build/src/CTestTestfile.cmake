# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("base")
subdirs("cheri")
subdirs("mem")
subdirs("sched")
subdirs("machine")
subdirs("kernel")
subdirs("ufork")
subdirs("baseline")
subdirs("guest")
subdirs("apps")
