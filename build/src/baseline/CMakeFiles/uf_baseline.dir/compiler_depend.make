# Empty compiler generated dependencies file for uf_baseline.
# This may be replaced when dependencies are built.
