file(REMOVE_RECURSE
  "CMakeFiles/uf_baseline.dir/mas_backend.cc.o"
  "CMakeFiles/uf_baseline.dir/mas_backend.cc.o.d"
  "CMakeFiles/uf_baseline.dir/vmclone_backend.cc.o"
  "CMakeFiles/uf_baseline.dir/vmclone_backend.cc.o.d"
  "libuf_baseline.a"
  "libuf_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uf_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
