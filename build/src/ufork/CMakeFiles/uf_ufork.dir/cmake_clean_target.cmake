file(REMOVE_RECURSE
  "libuf_ufork.a"
)
