# Empty compiler generated dependencies file for uf_ufork.
# This may be replaced when dependencies are built.
