file(REMOVE_RECURSE
  "CMakeFiles/uf_ufork.dir/compaction.cc.o"
  "CMakeFiles/uf_ufork.dir/compaction.cc.o.d"
  "CMakeFiles/uf_ufork.dir/relocate.cc.o"
  "CMakeFiles/uf_ufork.dir/relocate.cc.o.d"
  "CMakeFiles/uf_ufork.dir/ufork_backend.cc.o"
  "CMakeFiles/uf_ufork.dir/ufork_backend.cc.o.d"
  "libuf_ufork.a"
  "libuf_ufork.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uf_ufork.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
