// Tests for the POSIX surface added for fork support (§4.5): signals, shared memory (§3.7),
// exec and posix_spawn (U1 / Table 1's "f+e" column).
#include <gtest/gtest.h>

#include "src/apps/unixbench.h"
#include "src/baseline/system.h"
#include "src/guest/guest.h"
#include "tests/guest_test_util.h"

namespace ufork {
namespace {

KernelConfig SmallConfig() {
  KernelConfig config;
  config.layout.heap_size = 1 * kMiB;
  config.layout.mmap_size = 512 * kKiB;
  return config;
}

// --- signals -------------------------------------------------------------------------------

TEST(Signals, HandlerRunsAtDeliveryPoint) {
  auto kernel = MakeUforkKernel(SmallConfig());
  int handled_signal = 0;
  auto pid = kernel->Spawn(
      MakeGuestEntry([&handled_signal](Guest& g) -> SimTask<void> {
        CO_ASSERT_OK(co_await g.Sigaction(
            kSigUsr1, [&handled_signal](Guest&, int sig) -> SimTask<void> {
              handled_signal = sig;
              co_return;
            }));
        auto child = co_await g.Fork([](Guest& cg) -> SimTask<void> {
          auto ppid = co_await cg.GetPPid();
          CO_ASSERT_OK(ppid);
          CO_ASSERT_OK(co_await cg.Kill(*ppid, kSigUsr1));
          co_await cg.Exit(0);
        });
        CO_ASSERT_OK(child);
        (void)co_await g.Wait();  // delivery point: handler runs before/within the wait
        CO_ASSERT_OK(co_await g.CheckSignals());
      }),
      "sig");
  ASSERT_TRUE(pid.ok());
  kernel->Run();
  EXPECT_EQ(handled_signal, kSigUsr1);
}

TEST(Signals, DefaultActionTerminates) {
  auto kernel = MakeUforkKernel(SmallConfig());
  auto pid = kernel->Spawn(
      MakeGuestEntry([](Guest& g) -> SimTask<void> {
        auto child = co_await g.Fork([](Guest& cg) -> SimTask<void> {
          // Park; SIGTERM arrives and the default action terminates at the delivery point.
          for (;;) {
            co_await cg.Nanosleep(Microseconds(50));
          }
        });
        CO_ASSERT_OK(child);
        co_await g.Nanosleep(Microseconds(10));
        CO_ASSERT_OK(co_await g.Kill(*child, kSigTerm));
        auto waited = co_await g.Wait();
        CO_ASSERT_OK(waited);
        EXPECT_EQ(waited->status, 128 + kSigTerm);
      }),
      "sigterm");
  ASSERT_TRUE(pid.ok());
  kernel->Run();
}

TEST(Signals, SigchldIsIgnoredByDefaultAndHandlerFires) {
  auto kernel = MakeUforkKernel(SmallConfig());
  int chld_count = 0;
  auto pid = kernel->Spawn(
      MakeGuestEntry([&chld_count](Guest& g) -> SimTask<void> {
        // First child: default disposition (ignore) — parent must not terminate.
        auto c1 = co_await g.Fork([](Guest& cg) -> SimTask<void> { co_await cg.Exit(0); });
        CO_ASSERT_OK(c1);
        (void)co_await g.Wait();
        // Handler installed: SIGCHLD from the second child must invoke it.
        CO_ASSERT_OK(co_await g.Sigaction(kSigChld,
                                          [&chld_count](Guest&, int) -> SimTask<void> {
                                            ++chld_count;
                                            co_return;
                                          }));
        auto c2 = co_await g.Fork([](Guest& cg) -> SimTask<void> { co_await cg.Exit(0); });
        CO_ASSERT_OK(c2);
        (void)co_await g.Wait();
        CO_ASSERT_OK(co_await g.CheckSignals());
      }),
      "sigchld");
  ASSERT_TRUE(pid.ok());
  kernel->Run();
  EXPECT_GE(chld_count, 1);
}

TEST(Signals, DispositionsInheritedPendingCleared) {
  auto kernel = MakeUforkKernel(SmallConfig());
  bool child_handler_ran = false;
  auto pid = kernel->Spawn(
      MakeGuestEntry([&child_handler_ran](Guest& g) -> SimTask<void> {
        CO_ASSERT_OK(co_await g.Sigaction(
            kSigUsr2, [&child_handler_ran](Guest& hg, int) -> SimTask<void> {
              // Identify which process runs the handler: fork children have a fresh pid.
              auto self = co_await hg.GetPid();
              CO_ASSERT_OK(self);
              if (*self != 1) {
                child_handler_ran = true;
              }
            }));
        // Raise on self but do NOT deliver before forking: the child must start with a
        // clean pending set; the disposition (handler) is inherited.
        CO_ASSERT_OK(co_await g.Kill(1, kSigUsr2));
        auto child = co_await g.Fork([](Guest& cg) -> SimTask<void> {
          CO_ASSERT_OK(co_await cg.CheckSignals());  // nothing pending here
          auto self = co_await cg.GetPid();
          CO_ASSERT_OK(self);
          // Send to self and deliver: the inherited handler must run in the child.
          CO_ASSERT_OK(co_await cg.Kill(*self, kSigUsr2));
          CO_ASSERT_OK(co_await cg.CheckSignals());
          co_await cg.Exit(0);
        });
        CO_ASSERT_OK(child);
        (void)co_await g.Wait();
        CO_ASSERT_OK(co_await g.CheckSignals());  // parent's own pending USR2 delivered here
      }),
      "inherit");
  ASSERT_TRUE(pid.ok());
  kernel->Run();
  EXPECT_TRUE(child_handler_ran);
}

// --- shared memory -------------------------------------------------------------------------

TEST(Shm, CrossProcessCommunication) {
  auto kernel = MakeUforkKernel(SmallConfig());
  uint64_t parent_read = 0;
  auto pid = kernel->Spawn(
      MakeGuestEntry([&parent_read](Guest& g) -> SimTask<void> {
        auto shm = co_await g.ShmOpen("/shm/ring", 2 * kPageSize);
        CO_ASSERT_OK(shm);
        auto window = co_await g.ShmMap(*shm);
        CO_ASSERT_OK(window);
        EXPECT_EQ(window->length(), 2 * kPageSize);
        CO_ASSERT_OK(g.Store<uint64_t>(*window, window->base(), 1));

        auto pipe = co_await g.Pipe();
        CO_ASSERT_OK(pipe);
        const auto [rfd, wfd] = *pipe;
        auto child = co_await g.Fork([shm_id = *shm, wfd = wfd](Guest& cg) -> SimTask<void> {
          // The inherited window is at the same offset in the child's region AND references
          // the same physical frames (kPteShared exempts it from CoW). Map a second window to
          // prove the object is name/id-reachable too.
          auto window2 = co_await cg.ShmMap(shm_id);
          CO_ASSERT_OK(window2);
          auto v = cg.Load<uint64_t>(*window2, window2->base());
          CO_ASSERT_OK(v);
          EXPECT_EQ(*v, 1u) << "writes before fork must be visible";
          CO_ASSERT_OK(cg.Store<uint64_t>(*window2, window2->base() + 8, 0xfeed));
          auto byte = cg.Malloc(16);
          CO_ASSERT_OK(byte);
          CO_ASSERT_OK(co_await cg.Write(wfd, *byte, 1));
          co_await cg.Exit(0);
        });
        CO_ASSERT_OK(child);
        auto byte = g.Malloc(16);
        CO_ASSERT_OK(byte);
        CO_ASSERT_OK(co_await g.Read(rfd, *byte, 1));  // child wrote to the shared window
        auto v = g.Load<uint64_t>(*window, window->base() + 8);
        CO_ASSERT_OK(v);
        parent_read = *v;
        (void)co_await g.Wait();
      }),
      "shm");
  ASSERT_TRUE(pid.ok());
  kernel->Run();
  EXPECT_EQ(parent_read, 0xfeedu) << "child writes through MAP_SHARED must be visible";
}

TEST(Shm, NoCapabilityLaunderingThroughSharedMemory) {
  auto kernel = MakeUforkKernel(SmallConfig());
  auto pid = kernel->Spawn(
      MakeGuestEntry([](Guest& g) -> SimTask<void> {
        auto shm = co_await g.ShmOpen("/shm/x", kPageSize);
        CO_ASSERT_OK(shm);
        auto window = co_await g.ShmMap(*shm);
        CO_ASSERT_OK(window);
        auto block = g.Malloc(64);
        CO_ASSERT_OK(block);
        // Storing a tagged capability through the window must fault: the window lacks
        // StoreCap (capabilities cannot cross μprocess boundaries via shm, §4.3).
        EXPECT_EQ(g.StoreCap(*window, window->base(), *block).code(),
                  Code::kFaultPermission);
        co_return;
      }),
      "launder");
  ASSERT_TRUE(pid.ok());
  kernel->Run();
}

TEST(Shm, UnlinkKeepsLiveMappings) {
  auto kernel = MakeUforkKernel(SmallConfig());
  auto pid = kernel->Spawn(
      MakeGuestEntry([](Guest& g) -> SimTask<void> {
        auto shm = co_await g.ShmOpen("/shm/tmp", kPageSize);
        CO_ASSERT_OK(shm);
        auto window = co_await g.ShmMap(*shm);
        CO_ASSERT_OK(window);
        CO_ASSERT_OK(g.Store<uint64_t>(*window, window->base(), 9));
        CO_ASSERT_OK(co_await g.ShmUnlink("/shm/tmp"));
        // POSIX: the mapping survives unlink.
        auto v = g.Load<uint64_t>(*window, window->base());
        CO_ASSERT_OK(v);
        EXPECT_EQ(*v, 9u);
        // But the name is gone.
        EXPECT_EQ((co_await g.ShmUnlink("/shm/tmp")).code(), Code::kErrNoEnt);
        co_return;
      }),
      "unlink");
  ASSERT_TRUE(pid.ok());
  kernel->Run();
}

// --- exec / spawn --------------------------------------------------------------------------

TEST(Exec, ReplacesImagePreservingPidAndFds) {
  auto kernel = MakeUforkKernel(SmallConfig());
  Pid exec_pid = 0;
  kernel->RegisterProgram("worker", MakeGuestEntry([&exec_pid](Guest& g) -> SimTask<void> {
    auto self = co_await g.GetPid();
    CO_ASSERT_OK(self);
    exec_pid = *self;
    // The descriptor opened before exec is still valid.
    auto msg = g.PlaceString("from-exec");
    CO_ASSERT_OK(msg);
    CO_ASSERT_OK(co_await g.Write(3, *msg, 9));
    co_await g.Exit(5);
  }));
  auto pid = kernel->Spawn(
      MakeGuestEntry([](Guest& g) -> SimTask<void> {
        auto child = co_await g.Fork([](Guest& cg) -> SimTask<void> {
          // U1: fork + exec. Arrange fd 3 to carry output across the exec.
          auto fd = co_await cg.Open("/exec-out", kOpenWrite | kOpenCreate);
          CO_ASSERT_OK(fd);
          CO_ASSERT_OK(co_await cg.Dup2(*fd, 3));
          auto failed = co_await cg.Exec("no-such-program");
          EXPECT_EQ(failed.code(), Code::kErrNoEnt);
          (void)co_await cg.Exec("worker");  // never returns on success
          ADD_FAILURE() << "exec must not return on success";
          co_await cg.Exit(1);
        });
        CO_ASSERT_OK(child);
        auto waited = co_await g.Wait();
        CO_ASSERT_OK(waited);
        EXPECT_EQ(waited->status, 5);
        auto size = co_await g.FileSize("/exec-out");
        CO_ASSERT_OK(size);
        EXPECT_EQ(*size, 9u);
      }),
      "forkexec");
  ASSERT_TRUE(pid.ok());
  kernel->Run();
  EXPECT_GT(exec_pid, 1) << "exec preserves the forked child's PID";
}

TEST(Spawn, PosixSpawnIsAForklessChild) {
  auto kernel = MakeUforkKernel(SmallConfig());
  kernel->RegisterProgram("echo", MakeGuestEntry([](Guest& g) -> SimTask<void> {
    co_await g.Exit(11);
  }));
  auto pid = kernel->Spawn(
      MakeGuestEntry([](Guest& g) -> SimTask<void> {
        // Dirty some parent heap: a spawned child must NOT inherit it (fresh image).
        auto block = g.Malloc(64);
        CO_ASSERT_OK(block);
        auto child = co_await g.SpawnProgram("echo");
        CO_ASSERT_OK(child);
        auto waited = co_await g.Wait();
        CO_ASSERT_OK(waited);
        EXPECT_EQ(waited->pid, *child);
        EXPECT_EQ(waited->status, 11);
        EXPECT_EQ(g.kernel().stats().forks, 0u) << "spawn is not a fork";
      }),
      "spawner");
  ASSERT_TRUE(pid.ok());
  kernel->Run();
}

TEST(Spawn, CheaperThanForkForLargeImages) {
  // Table 1's point about "f+e only" systems: posix_spawn avoids duplicating parent state, so
  // with a big dirty heap spawn should be far cheaper than fork+exec.
  KernelConfig config;
  config.layout.heap_size = 32 * kMiB;
  auto kernel = MakeUforkKernel(config);
  kernel->RegisterProgram("noop", MakeGuestEntry([](Guest& g) -> SimTask<void> {
    co_await g.Exit(0);
  }));
  Cycles spawn_cost = 0;
  Cycles fork_cost = 0;
  auto pid = kernel->Spawn(
      MakeGuestEntry([&spawn_cost, &fork_cost](Guest& g) -> SimTask<void> {
        // End-to-end cost: request to reaped child (the exec half runs in the child, so the
        // fork() call alone would undercount).
        Scheduler& sched = g.kernel().sched();
        Cycles t0 = sched.Now();
        auto spawned = co_await g.SpawnProgram("noop");
        CO_ASSERT_OK(spawned);
        (void)co_await g.Wait();
        spawn_cost = sched.Now() - t0;
        t0 = sched.Now();
        auto forked = co_await g.Fork([](Guest& cg) -> SimTask<void> {
          (void)co_await cg.Exec("noop");
          co_await cg.Exit(1);
        });
        CO_ASSERT_OK(forked);
        (void)co_await g.Wait();
        fork_cost = sched.Now() - t0;
      }),
      "compare");
  ASSERT_TRUE(pid.ok());
  kernel->Run();
  EXPECT_GT(spawn_cost, 0u);
  EXPECT_GT(fork_cost, 0u);
  // fork must duplicate ~32 MB of PTEs; spawn only builds a fresh image.
  EXPECT_LT(spawn_cost, fork_cost);
}

TEST(Exec, ExeclChainReplacesImageRepeatedly) {
  auto kernel = MakeUforkKernel(SmallConfig());
  RegisterExeclHop(*kernel);
  ExeclResult result;
  auto pid = kernel->Spawn(
      MakeGuestEntry([&result](Guest& g) -> SimTask<void> {
        co_await UnixbenchExecl(g, 20, &result);
      }),
      "execl");
  ASSERT_TRUE(pid.ok());
  kernel->Run();
  EXPECT_EQ(result.iterations, 20u);
  EXPECT_GT(result.PerExecUs(), 0.0);
  EXPECT_EQ(kernel->stats().forks, 1u) << "one fork, then a chain of execs";
}

}  // namespace
}  // namespace ufork
