// Tests for GuestVector: growth/reallocation in guest memory, reference-model property test,
// and fork inheritance through the relocated data capability.
#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/baseline/system.h"
#include "src/guest/gvector.h"
#include "tests/guest_test_util.h"

namespace ufork {
namespace {

void RunGuest(GuestFn fn) {
  KernelConfig config;
  config.layout.heap_size = 4 * kMiB;
  auto kernel = MakeUforkKernel(config);
  auto pid = kernel->Spawn(MakeGuestEntry(std::move(fn)), "gvec");
  ASSERT_TRUE(pid.ok());
  kernel->Run();
}

TEST(GuestVectorTest, PushAtPopAcrossGrowth) {
  RunGuest([](Guest& g) -> SimTask<void> {
    auto vec = GuestVector<uint64_t>::Create(g, 2);  // tiny capacity: force reallocations
    CO_ASSERT_OK(vec);
    for (uint64_t i = 0; i < 100; ++i) {
      CO_ASSERT_OK(vec->PushBack(i * i));
    }
    auto size = vec->Size();
    CO_ASSERT_OK(size);
    EXPECT_EQ(*size, 100u);
    for (uint64_t i = 0; i < 100; ++i) {
      auto v = vec->At(i);
      CO_ASSERT_OK(v);
      EXPECT_EQ(*v, i * i);
    }
    auto popped = vec->PopBack();
    CO_ASSERT_OK(popped);
    EXPECT_EQ(*popped, 99u * 99u);
    EXPECT_EQ(vec->At(99).code(), Code::kErrInval);
    CO_ASSERT_OK(vec->Set(0, 777));
    auto head = vec->At(0);
    CO_ASSERT_OK(head);
    EXPECT_EQ(*head, 777u);
    co_return;
  });
}

TEST(GuestVectorTest, EmptyEdgeCases) {
  RunGuest([](Guest& g) -> SimTask<void> {
    auto vec = GuestVector<uint32_t>::Create(g);
    CO_ASSERT_OK(vec);
    EXPECT_EQ(vec->PopBack().code(), Code::kErrInval);
    EXPECT_EQ(vec->At(0).code(), Code::kErrInval);
    EXPECT_EQ(vec->Set(0, 1).code(), Code::kErrInval);
    auto size = vec->Size();
    CO_ASSERT_OK(size);
    EXPECT_EQ(*size, 0u);
    co_return;
  });
}

TEST(GuestVectorTest, PropertyMatchesHostVector) {
  RunGuest([](Guest& g) -> SimTask<void> {
    auto vec = GuestVector<uint64_t>::Create(g, 1);
    CO_ASSERT_OK(vec);
    std::vector<uint64_t> model;
    Rng rng(606);
    for (int step = 0; step < 1500; ++step) {
      const uint64_t op = rng.NextBelow(10);
      if (op < 5 || model.empty()) {
        const uint64_t v = rng.NextU64();
        CO_ASSERT_OK(vec->PushBack(v));
        model.push_back(v);
      } else if (op < 7) {
        const uint64_t i = rng.NextBelow(model.size());
        const uint64_t v = rng.NextU64();
        CO_ASSERT_OK(vec->Set(i, v));
        model[i] = v;
      } else if (op < 9) {
        const uint64_t i = rng.NextBelow(model.size());
        auto v = vec->At(i);
        CO_ASSERT_OK(v);
        CO_ASSERT_EQ(*v, model[i]);
      } else {
        auto v = vec->PopBack();
        CO_ASSERT_OK(v);
        CO_ASSERT_EQ(*v, model.back());
        model.pop_back();
      }
    }
    uint64_t visited = 0;
    CO_ASSERT_OK(vec->ForEach([&](uint64_t i, uint64_t v) -> Result<void> {
      UF_CHECK(v == model[i]);
      ++visited;
      return OkResult();
    }));
    EXPECT_EQ(visited, model.size());
    co_return;
  });
}

TEST(GuestVectorTest, SurvivesForkViaGot) {
  RunGuest([](Guest& g) -> SimTask<void> {
    auto vec = GuestVector<uint64_t>::Create(g, 4);
    CO_ASSERT_OK(vec);
    for (uint64_t i = 0; i < 50; ++i) {
      CO_ASSERT_OK(vec->PushBack(1000 + i));
    }
    CO_ASSERT_OK(g.GotStore(kGotSlotFirstUser, vec->header()));
    auto child = co_await g.Fork([](Guest& cg) -> SimTask<void> {
      auto header = cg.GotLoad(kGotSlotFirstUser);
      CO_ASSERT_OK(header);
      auto child_vec = GuestVector<uint64_t>::Attach(cg, *header);
      // Read the snapshot, then grow it in the child: the parent must see neither the growth
      // nor any writes.
      for (uint64_t i = 0; i < 50; ++i) {
        auto v = child_vec.At(i);
        CO_ASSERT_OK(v);
        CO_ASSERT_EQ(*v, 1000 + i);
      }
      for (uint64_t i = 0; i < 200; ++i) {
        CO_ASSERT_OK(child_vec.PushBack(i));  // forces reallocation in the child
      }
      auto size = child_vec.Size();
      CO_ASSERT_OK(size);
      CO_ASSERT_EQ(*size, 250u);
      co_await cg.Exit(0);
    });
    CO_ASSERT_OK(child);
    auto waited = co_await g.Wait();
    CO_ASSERT_OK(waited);
    EXPECT_EQ(waited->status, 0);
    auto size = vec->Size();
    CO_ASSERT_OK(size);
    EXPECT_EQ(*size, 50u) << "the child's growth must not leak back";
    auto v = vec->At(49);
    CO_ASSERT_OK(v);
    EXPECT_EQ(*v, 1049u);
  });
}

}  // namespace
}  // namespace ufork
