// End-to-end tests for the mini applications (Redis, FaaS/Zygote, httpd, Unixbench) across
// fork backends.
#include <gtest/gtest.h>

#include "src/apps/faas.h"
#include "src/apps/httpd.h"
#include "src/apps/miniredis.h"
#include "src/apps/unixbench.h"
#include "src/baseline/system.h"
#include "tests/guest_test_util.h"

namespace ufork {
namespace {

KernelConfig AppConfig() {
  KernelConfig config;
  config.layout.heap_size = 8 * kMiB;
  return config;
}

std::vector<std::byte> Blob(size_t n, uint8_t seed) {
  std::vector<std::byte> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>(seed + i * 13);
  }
  return v;
}

TEST(MiniRedisTest, SetGetDel) {
  auto kernel = MakeUforkKernel(AppConfig());
  auto pid = kernel->Spawn(
      MakeGuestEntry([](Guest& g) -> SimTask<void> {
        auto db = MiniRedis::Create(g);
        CO_ASSERT_OK(db);
        CO_ASSERT_OK(db->Set("alpha", Blob(100, 1)));
        CO_ASSERT_OK(db->Set("beta", Blob(5000, 2)));
        auto got = db->Get("alpha");
        CO_ASSERT_OK(got);
        CO_ASSERT_TRUE(got->has_value());
        EXPECT_EQ(**got, Blob(100, 1));
        auto missing = db->Get("gamma");
        CO_ASSERT_OK(missing);
        EXPECT_FALSE(missing->has_value());
        auto erased = db->Del("alpha");
        CO_ASSERT_OK(erased);
        EXPECT_TRUE(*erased);
        auto size = db->DbSize();
        CO_ASSERT_OK(size);
        EXPECT_EQ(*size, 1u);
        co_return;
      }),
      "redis");
  ASSERT_TRUE(pid.ok());
  kernel->Run();
}

TEST(MiniRedisTest, SaveAndVerifyDump) {
  auto kernel = MakeUforkKernel(AppConfig());
  auto pid = kernel->Spawn(
      MakeGuestEntry([](Guest& g) -> SimTask<void> {
        auto db = MiniRedis::Create(g);
        CO_ASSERT_OK(db);
        for (int i = 0; i < 20; ++i) {
          CO_ASSERT_OK(db->Set("key-" + std::to_string(i), Blob(2048, static_cast<uint8_t>(i))));
        }
        auto written = co_await db->Save("/dump.rdb");
        CO_ASSERT_OK(written);
        EXPECT_GT(*written, 20u * 2048u);
        auto info = co_await db->VerifyDump("/dump.rdb");
        CO_ASSERT_OK(info);
        EXPECT_EQ(info->entries, 20u);
        EXPECT_EQ(info->value_bytes, 20u * 2048u);
        co_return;
      }),
      "redis-save");
  ASSERT_TRUE(pid.ok());
  kernel->Run();
}

// The headline Redis property: BGSAVE snapshots the database at fork time; writes the parent
// performs while the child serializes do NOT appear in the dump (CoW semantics), and the
// parent's updates survive.
void RunBgSaveSnapshotTest(Kernel& kernel) {
  auto pid = kernel.Spawn(
      MakeGuestEntry([](Guest& g) -> SimTask<void> {
        auto db = MiniRedis::Create(g);
        CO_ASSERT_OK(db);
        for (int i = 0; i < 30; ++i) {
          CO_ASSERT_OK(db->Set("key-" + std::to_string(i), Blob(4096, 7)));
        }
        auto child = co_await db->BgSave("/bg.rdb");
        CO_ASSERT_OK(child);
        // Mutate while the child saves: overwrite, add, delete.
        CO_ASSERT_OK(db->Set("key-0", Blob(4096, 99)));
        CO_ASSERT_OK(db->Set("new-key", Blob(512, 50)));
        auto erased = db->Del("key-1");
        CO_ASSERT_OK(erased);
        auto waited = co_await g.Wait();
        CO_ASSERT_OK(waited);
        EXPECT_EQ(waited->status, 0);
        // The dump reflects the fork-time state: 30 entries, original bytes.
        auto info = co_await db->VerifyDump("/bg.rdb");
        CO_ASSERT_OK(info);
        EXPECT_EQ(info->entries, 30u);
        EXPECT_EQ(info->value_bytes, 30u * 4096u);
        // The parent's post-fork mutations are intact.
        auto v = db->Get("key-0");
        CO_ASSERT_OK(v);
        CO_ASSERT_TRUE(v->has_value());
        EXPECT_EQ(**v, Blob(4096, 99));
        auto size = db->DbSize();
        CO_ASSERT_OK(size);
        EXPECT_EQ(*size, 30u);  // 30 - 1 deleted + 1 added
        co_return;
      }),
      "redis-bgsave");
  ASSERT_TRUE(pid.ok());
  kernel.Run();
}

TEST(MiniRedisTest, BgSaveSnapshotIsolation_UforkCopa) {
  auto kernel = MakeUforkKernel(AppConfig());
  RunBgSaveSnapshotTest(*kernel);
  EXPECT_GT(kernel->machine().cap_load_faults(), 0u) << "CoPA must have fired";
}

TEST(MiniRedisTest, BgSaveSnapshotIsolation_UforkCoa) {
  KernelConfig config = AppConfig();
  config.strategy = ForkStrategy::kCoa;
  auto kernel = MakeUforkKernel(config);
  RunBgSaveSnapshotTest(*kernel);
}

TEST(MiniRedisTest, BgSaveSnapshotIsolation_UforkFullCopy) {
  KernelConfig config = AppConfig();
  config.strategy = ForkStrategy::kFull;
  auto kernel = MakeUforkKernel(config);
  RunBgSaveSnapshotTest(*kernel);
}

TEST(MiniRedisTest, BgSaveSnapshotIsolation_MasBaseline) {
  auto kernel = MakeMasKernel(AppConfig());
  RunBgSaveSnapshotTest(*kernel);
}

TEST(MiniRedisTest, BgSaveSnapshotIsolation_VmClone) {
  auto kernel = MakeVmCloneKernel(AppConfig());
  RunBgSaveSnapshotTest(*kernel);
}

TEST(MiniRedisTest, CopaCopiesLessThanCoa) {
  // CoPA's point (§3.8): child reads of plain data do not copy; only pointer-bearing pages do.
  // Values must be large enough that data pages dominate pointer pages.
  auto run = [](ForkStrategy strategy) {
    KernelConfig config = AppConfig();
    config.strategy = strategy;
    auto kernel = MakeUforkKernel(config);
    auto pid = kernel->Spawn(
        MakeGuestEntry([](Guest& g) -> SimTask<void> {
          auto db = MiniRedis::Create(g);
          CO_ASSERT_OK(db);
          for (int i = 0; i < 10; ++i) {
            CO_ASSERT_OK(db->Set("key-" + std::to_string(i), Blob(64 * 1024, 7)));
          }
          auto child = co_await db->BgSave("/copa.rdb");
          CO_ASSERT_OK(child);
          auto waited = co_await g.Wait();
          CO_ASSERT_OK(waited);
          EXPECT_EQ(waited->status, 0);
          co_return;
        }),
        "redis");
    UF_CHECK(pid.ok());
    kernel->Run();
    return kernel->stats().pages_copied_on_fault;
  };
  const uint64_t copa_pages = run(ForkStrategy::kCopa);
  const uint64_t coa_pages = run(ForkStrategy::kCoa);
  EXPECT_LT(copa_pages, coa_pages / 2)
      << "CoPA should copy far fewer pages than CoA for a read-mostly child";
}

TEST(ZygoteTest, RuntimeSurvivesFork) {
  auto kernel = MakeUforkKernel(AppConfig());
  auto pid = kernel->Spawn(
      MakeGuestEntry([](Guest& g) -> SimTask<void> {
        CO_ASSERT_OK(InitializeZygoteRuntime(g));
        auto parent_value = FloatOperation(g, 100);
        CO_ASSERT_OK(parent_value);
        double child_value = 0.0;
        auto child = co_await g.Fork([&child_value](Guest& cg) -> SimTask<void> {
          auto v = FloatOperation(cg, 100);
          CO_ASSERT_OK(v);
          child_value = *v;
          co_await cg.Exit(0);
        });
        CO_ASSERT_OK(child);
        auto waited = co_await g.Wait();
        CO_ASSERT_OK(waited);
        EXPECT_EQ(waited->status, 0);
        EXPECT_DOUBLE_EQ(child_value, *parent_value)
            << "the forked runtime must compute the same result";
        co_return;
      }),
      "zygote");
  ASSERT_TRUE(pid.ok());
  kernel->Run();
}

TEST(ZygoteTest, CoordinatorCompletesFunctions) {
  KernelConfig config = AppConfig();
  config.cores = 4;
  auto kernel = MakeUforkKernel(config);
  ZygoteResult result;
  auto pid = kernel->Spawn(
      MakeGuestEntry([&result](Guest& g) -> SimTask<void> {
        CO_ASSERT_OK(InitializeZygoteRuntime(g));
        ZygoteParams params;
        params.window = Milliseconds(20);
        params.worker_cores = 3;
        params.float_iterations = 2000;
        co_await ZygoteCoordinator(g, params, &result);
      }),
      "zygote", /*pinned_core=*/0);
  ASSERT_TRUE(pid.ok());
  kernel->Run();
  EXPECT_GT(result.functions_completed, 10u);
  EXPECT_GT(result.FunctionsPerSecond(), 0.0);
}

TEST(HttpdTest, ServesAllRequests) {
  for (int workers : {1, 2}) {
    KernelConfig config = AppConfig();
    config.cores = 4;
    auto kernel = MakeUforkKernel(config);
    HttpdResult result;
    HttpdParams params;
    params.workers = workers;
    params.connections = 4;
    params.requests_per_connection = 25;
    auto pid = kernel->Spawn(
        MakeGuestEntry([params, &result](Guest& g) -> SimTask<void> {
          co_await HttpdBenchmark(g, params, &result);
        }),
        "httpd");
    ASSERT_TRUE(pid.ok());
    kernel->Run();
    EXPECT_EQ(result.requests_completed, 100u) << "workers=" << workers;
    EXPECT_GT(result.elapsed, 0u);
  }
}

TEST(UnixbenchTest, SpawnLoop) {
  auto kernel = MakeUforkKernel(AppConfig());
  SpawnResult result;
  auto pid = kernel->Spawn(
      MakeGuestEntry([&result](Guest& g) -> SimTask<void> {
        co_await UnixbenchSpawn(g, 25, &result);
      }),
      "spawn");
  ASSERT_TRUE(pid.ok());
  kernel->Run();
  EXPECT_EQ(result.iterations, 25u);
  EXPECT_GT(result.ForkLatencyUs(), 0.0);
  EXPECT_EQ(kernel->stats().forks, 25u);
}

TEST(UnixbenchTest, Context1ReachesTarget) {
  auto kernel = MakeUforkKernel(AppConfig());
  Context1Result result;
  auto pid = kernel->Spawn(
      MakeGuestEntry([&result](Guest& g) -> SimTask<void> {
        co_await UnixbenchContext1(g, 1000, &result);
      }),
      "context1");
  ASSERT_TRUE(pid.ok());
  kernel->Run();
  EXPECT_GE(result.round_trips, 499u);
  EXPECT_GT(result.elapsed, 0u);
}

TEST(UnixbenchTest, SpawnWorksOnAllBackends) {
  for (int backend = 0; backend < 3; ++backend) {
    auto kernel = backend == 0   ? MakeUforkKernel(AppConfig())
                  : backend == 1 ? MakeMasKernel(AppConfig())
                                 : MakeVmCloneKernel(AppConfig());
    SpawnResult result;
    auto pid = kernel->Spawn(
        MakeGuestEntry([&result](Guest& g) -> SimTask<void> {
          co_await UnixbenchSpawn(g, 5, &result);
        }),
        "spawn");
    ASSERT_TRUE(pid.ok());
    kernel->Run();
    EXPECT_EQ(result.iterations, 5u) << "backend " << backend;
  }
}

}  // namespace
}  // namespace ufork
