// Lock-domain matrix: the same workloads must be correct under every LockMode, the default
// must stay the single big kernel lock (the golden-cycle pins depend on it), the MAS baseline
// must map to uncontended domains (its old `use_bkl=false` behaviour), and the per-syscall
// counters the SyscallScope maintains must always sum to the kernel-wide syscall total.
#include <gtest/gtest.h>

#include "src/baseline/system.h"
#include "src/guest/guest.h"
#include "src/kernel/proc_report.h"
#include "src/kernel/syscall_table.h"
#include "tests/guest_test_util.h"

namespace ufork {
namespace {

KernelConfig SmallConfig() {
  KernelConfig config;
  config.layout.text_size = 32 * kKiB;
  config.layout.rodata_size = 8 * kKiB;
  config.layout.got_size = 4 * kKiB;
  config.layout.data_size = 8 * kKiB;
  config.layout.heap_size = 256 * kKiB;
  config.layout.stack_size = 32 * kKiB;
  config.layout.tls_size = 4 * kKiB;
  config.layout.mmap_size = 64 * kKiB;
  return config;
}

uint64_t PerSyscallSum(const KernelStats& stats) {
  uint64_t sum = 0;
  for (const SyscallDesc& desc : SyscallTable()) {
    sum += stats.Count(desc.id);
  }
  return sum;
}

// Touches all three lock domains: proc (fork/wait/exit), file (open/write/read/close) and
// ipc (pipe, shm, futex). The child signals the parent through a MAP_SHARED futex word and
// ships a byte through the pipe, so cross-domain interleavings actually happen.
SimTask<void> CrossDomainWorkload(Guest& g) {
  auto fd = co_await g.Open("/lockmode.txt", kOpenWrite | kOpenCreate);
  CO_ASSERT_OK(fd);
  auto line = g.PlaceString("domains");
  CO_ASSERT_OK(line);
  CO_ASSERT_OK(co_await g.Write(*fd, *line, 7));
  CO_ASSERT_OK(co_await g.Close(*fd));

  auto shm = co_await g.ShmOpen("/shm/lockmode", kPageSize);
  CO_ASSERT_OK(shm);
  auto window = co_await g.ShmMap(*shm);
  CO_ASSERT_OK(window);
  CO_ASSERT_OK(g.Store<uint64_t>(*window, window->base(), 0));

  auto pipe_fds = co_await g.Pipe();
  CO_ASSERT_OK(pipe_fds);
  const auto [rfd, wfd] = *pipe_fds;

  auto child = co_await g.Fork([shm_id = *shm, wfd = wfd](Guest& cg) -> SimTask<void> {
    auto w = co_await cg.ShmMap(shm_id);
    CO_ASSERT_OK(w);
    auto ping = cg.PlaceString("!");
    CO_ASSERT_OK(ping);
    CO_ASSERT_OK(co_await cg.Write(wfd, *ping, 1));
    // Give the parent time to reach its futex wait so the sleep/wake pair really happens.
    co_await cg.Nanosleep(Microseconds(50));
    CO_ASSERT_OK(cg.Store<uint64_t>(*w, w->base(), 1));
    (void)co_await cg.FutexWake(*w, w->base(), 1);
    co_await cg.Exit(42);
  });
  CO_ASSERT_OK(child);

  auto buf = g.Malloc(16);
  CO_ASSERT_OK(buf);
  auto got = co_await g.Read(rfd, *buf, 1);
  CO_ASSERT_OK(got);
  CO_ASSERT_EQ(*got, 1);
  for (;;) {
    auto v = g.Load<uint64_t>(*window, window->base());
    CO_ASSERT_OK(v);
    if (*v != 0) {
      break;
    }
    (void)co_await g.FutexWait(*window, window->base(), 0);
  }
  auto waited = co_await g.Wait();
  CO_ASSERT_OK(waited);
  CO_ASSERT_EQ(waited->status, 42);
  CO_ASSERT_OK(co_await g.Close(rfd));
  CO_ASSERT_OK(co_await g.Close(wfd));
}

std::unique_ptr<Kernel> RunWorkload(LockMode mode) {
  KernelConfig config = SmallConfig();
  config.lock_mode = mode;
  auto kernel = MakeUforkKernel(config);
  auto pid = kernel->Spawn(MakeGuestEntry(CrossDomainWorkload), "lockmode");
  UF_CHECK(pid.ok());
  kernel->Run();
  return kernel;
}

TEST(LockDomains, DefaultConfigKeepsTheBigKernelLock) {
  KernelConfig config;
  EXPECT_EQ(config.lock_mode, LockMode::kBigKernelLock);
  auto kernel = MakeUforkKernel(SmallConfig());
  EXPECT_EQ(kernel->lock_mode(), LockMode::kBigKernelLock);
}

TEST(LockDomains, MasBaselineMapsToUncontendedDomains) {
  auto kernel = MakeMasKernel(SmallConfig());
  EXPECT_EQ(kernel->lock_mode(), LockMode::kUncontended);
}

TEST(LockDomains, CrossDomainWorkloadIsCorrectUnderEveryMode) {
  for (const LockMode mode :
       {LockMode::kBigKernelLock, LockMode::kPerService, LockMode::kUncontended}) {
    SCOPED_TRACE(LockModeName(mode));
    auto kernel = RunWorkload(mode);
    EXPECT_EQ(kernel->stats().forks, 1u);
    EXPECT_EQ(kernel->stats().exits, 2u);
  }
}

TEST(LockDomains, PerServiceNeverCompletesLaterThanTheBkl) {
  // Splitting the BKL can only remove waiting: domains that used to serialise now overlap.
  const Cycles bkl = RunWorkload(LockMode::kBigKernelLock)->sched().CompletionTime();
  const Cycles per_service = RunWorkload(LockMode::kPerService)->sched().CompletionTime();
  const Cycles uncontended = RunWorkload(LockMode::kUncontended)->sched().CompletionTime();
  EXPECT_LE(per_service, bkl);
  EXPECT_LE(uncontended, per_service);
}

TEST(LockDomains, PerSyscallCountersSumToKernelTotal) {
  for (const LockMode mode :
       {LockMode::kBigKernelLock, LockMode::kPerService, LockMode::kUncontended}) {
    SCOPED_TRACE(LockModeName(mode));
    auto kernel = RunWorkload(mode);
    const KernelStats& stats = kernel->stats();
    EXPECT_EQ(PerSyscallSum(stats), stats.syscalls);
    // The counts are identical across lock modes — locking changes when calls run, not what
    // runs. Spot-check the rows the workload exercises.
    EXPECT_EQ(stats.Count(Sys::kFork), 1u);
    EXPECT_EQ(stats.Count(Sys::kWait), 1u);
    EXPECT_EQ(stats.Count(Sys::kExit), 2u);
    EXPECT_EQ(stats.Count(Sys::kOpen), 1u);
    EXPECT_EQ(stats.Count(Sys::kPipe), 1u);
    EXPECT_EQ(stats.Count(Sys::kShmMap), 2u);
    EXPECT_GE(stats.Count(Sys::kFutexWait), 1u);
    // check_signals is a delivery point, not a kernel entry: never counted.
    EXPECT_EQ(stats.Count(Sys::kCheckSignals), 0u);
  }
}

TEST(LockDomains, SyscallTableReportEnumeratesEveryRow) {
  auto kernel = RunWorkload(LockMode::kPerService);
  const std::string report = SyscallTableReport(*kernel);
  for (const SyscallDesc& desc : SyscallTable()) {
    EXPECT_NE(report.find(desc.name), std::string::npos) << desc.name;
  }
  EXPECT_NE(report.find("locks=per-service"), std::string::npos);
  EXPECT_NE(report.find("kernel syscalls="), std::string::npos);
}

TEST(LockDomains, MultiprocessContentionStaysBalanced) {
  // Two unrelated process trees hammer different domains concurrently on separate cores. Any
  // double-release or leaked acquire trips the VirtualLock owner CHECKs; completion under
  // per-service locks must not regress past the BKL run.
  auto run = [](LockMode mode) {
    KernelConfig config = SmallConfig();
    config.lock_mode = mode;
    auto kernel = MakeUforkKernel(config);
    auto file_worker = kernel->Spawn(MakeGuestEntry([](Guest& g) -> SimTask<void> {
                                       for (int i = 0; i < 32; ++i) {
                                         auto fd = co_await g.Open(
                                             "/contend.txt", kOpenWrite | kOpenCreate);
                                         CO_ASSERT_OK(fd);
                                         auto b = g.PlaceString("x");
                                         CO_ASSERT_OK(b);
                                         CO_ASSERT_OK(co_await g.Write(*fd, *b, 1));
                                         CO_ASSERT_OK(co_await g.Close(*fd));
                                       }
                                     }),
                                     "file-worker", /*pinned_core=*/0);
    UF_CHECK(file_worker.ok());
    auto ipc_worker = kernel->Spawn(MakeGuestEntry([](Guest& g) -> SimTask<void> {
                                      for (int i = 0; i < 32; ++i) {
                                        auto pipe_fds = co_await g.Pipe();
                                        CO_ASSERT_OK(pipe_fds);
                                        CO_ASSERT_OK(co_await g.Close(pipe_fds->first));
                                        CO_ASSERT_OK(co_await g.Close(pipe_fds->second));
                                      }
                                    }),
                                    "ipc-worker", /*pinned_core=*/1);
    UF_CHECK(ipc_worker.ok());
    kernel->Run();
    return kernel->sched().CompletionTime();
  };
  const Cycles bkl = run(LockMode::kBigKernelLock);
  const Cycles per_service = run(LockMode::kPerService);
  EXPECT_LE(per_service, bkl);
}

}  // namespace
}  // namespace ufork
