// Test helpers for guest-coroutine tests.
//
// gtest's ASSERT_* macros expand to `return;` which is ill-formed inside a coroutine; these
// variants record the failure and co_return instead. Use only inside SimTask<void> coroutines.
#ifndef UFORK_TESTS_GUEST_TEST_UTIL_H_
#define UFORK_TESTS_GUEST_TEST_UTIL_H_

#include <gtest/gtest.h>

#define CO_ASSERT_TRUE(cond)                                 \
  do {                                                       \
    const bool co_assert_ok_ = static_cast<bool>(cond);      \
    EXPECT_TRUE(co_assert_ok_) << #cond;                     \
    if (!co_assert_ok_) {                                    \
      co_return;                                             \
    }                                                        \
  } while (0)

#define CO_ASSERT_OK(expr) CO_ASSERT_OK_IMPL_(CO_CONCAT_(co_assert_res_, __LINE__), expr)
#define CO_ASSERT_OK_IMPL_(tmp, expr)                               \
  do {                                                              \
    const auto& tmp = (expr);                                       \
    EXPECT_TRUE(tmp.ok()) << #expr << " failed: "                   \
                          << ::ufork::CodeName(tmp.code());         \
    if (!tmp.ok()) {                                                \
      co_return;                                                    \
    }                                                               \
  } while (0)
#define CO_CONCAT_(a, b) CO_CONCAT_IMPL_(a, b)
#define CO_CONCAT_IMPL_(a, b) a##b

#define CO_ASSERT_EQ(a, b)       \
  do {                           \
    EXPECT_EQ(a, b);             \
    if (!((a) == (b))) {         \
      co_return;                 \
    }                            \
  } while (0)

#endif  // UFORK_TESTS_GUEST_TEST_UTIL_H_
