// Unit and property tests for the CHERI capability model: monotonicity, sealing, dereference
// checking, and the relocation primitive μFork builds on.
#include "src/cheri/capability.h"

#include <gtest/gtest.h>

#include "src/base/rng.h"

namespace ufork {
namespace {

Capability MakeCap(uint64_t base, uint64_t len, uint32_t perms = kPermAllData) {
  return Capability::Root(base, len, perms);
}

TEST(Capability, DefaultIsUntaggedNull) {
  Capability c;
  EXPECT_FALSE(c.tag());
  EXPECT_EQ(c.address(), 0u);
  EXPECT_EQ(c.CheckAccess(0, 1, kPermLoad).code(), Code::kFaultTag);
}

TEST(Capability, IntegerCarriesValueOnly) {
  Capability c = Capability::Integer(0xdeadbeef);
  EXPECT_FALSE(c.tag());
  EXPECT_EQ(c.address(), 0xdeadbeefu);
}

TEST(Capability, RootSpansRequestedRange) {
  Capability c = MakeCap(0x1000, 0x2000);
  EXPECT_TRUE(c.tag());
  EXPECT_EQ(c.base(), 0x1000u);
  EXPECT_EQ(c.top(), 0x3000u);
  EXPECT_EQ(c.length(), 0x2000u);
  EXPECT_TRUE(c.CheckAccess(0x1000, 0x2000, kPermLoad).ok());
}

TEST(Capability, WithAddressKeepsBoundsAndTag) {
  Capability c = MakeCap(0x1000, 0x2000).WithAddress(0x1500);
  EXPECT_TRUE(c.tag());
  EXPECT_EQ(c.address(), 0x1500u);
  EXPECT_EQ(c.base(), 0x1000u);
}

TEST(Capability, OutOfBoundsCursorKeepsTagButFaultsOnDeref) {
  // CHERI permits out-of-bounds cursors (pointer arithmetic past the end); only dereference
  // faults.
  Capability c = MakeCap(0x1000, 0x1000).WithAddress(0x5000);
  EXPECT_TRUE(c.tag());
  EXPECT_EQ(c.CheckCursorAccess(1, kPermLoad).code(), Code::kFaultBounds);
}

TEST(Capability, WithBoundsNarrows) {
  Capability c = MakeCap(0x1000, 0x2000).WithBounds(0x1800, 0x100);
  EXPECT_TRUE(c.tag());
  EXPECT_EQ(c.base(), 0x1800u);
  EXPECT_EQ(c.top(), 0x1900u);
}

TEST(Capability, WithBoundsCannotGrow) {
  Capability c = MakeCap(0x1000, 0x1000);
  EXPECT_FALSE(c.WithBounds(0x800, 0x100).tag());     // below base
  EXPECT_FALSE(c.WithBounds(0x1f00, 0x200).tag());    // past top
  EXPECT_FALSE(c.WithBounds(0x1000, 0x1001).tag());   // longer than source
}

TEST(Capability, PermsOnlyShrink) {
  Capability c = MakeCap(0, 0x1000, kPermLoad | kPermStore);
  Capability ro = c.WithPermsAnd(kPermLoad);
  EXPECT_TRUE(ro.HasPerms(kPermLoad));
  EXPECT_FALSE(ro.HasPerms(kPermStore));
  // Re-adding a permission via the mask has no effect: AND is intersection.
  Capability back = ro.WithPermsAnd(kPermLoad | kPermStore);
  EXPECT_FALSE(back.HasPerms(kPermStore));
}

TEST(Capability, CheckAccessPermissionFault) {
  Capability ro = MakeCap(0, 0x1000, kPermLoad);
  EXPECT_EQ(ro.CheckAccess(0x10, 8, kPermStore).code(), Code::kFaultPermission);
  EXPECT_TRUE(ro.CheckAccess(0x10, 8, kPermLoad).ok());
}

TEST(Capability, CheckAccessBoundsEdge) {
  Capability c = MakeCap(0x1000, 0x100, kPermLoad);
  EXPECT_TRUE(c.CheckAccess(0x10f8, 8, kPermLoad).ok());     // last 8 bytes
  EXPECT_EQ(c.CheckAccess(0x10f9, 8, kPermLoad).code(), Code::kFaultBounds);
  EXPECT_EQ(c.CheckAccess(0xfff, 1, kPermLoad).code(), Code::kFaultBounds);
}

TEST(Capability, CheckAccessOverflowingRange) {
  Capability c = MakeCap(0x1000, 0x100, kPermLoad);
  EXPECT_EQ(c.CheckAccess(~0ULL - 3, 8, kPermLoad).code(), Code::kFaultBounds);
}

TEST(Capability, CapWidthAccessMustBeAligned) {
  Capability c = MakeCap(0x1000, 0x100, kPermLoad | kPermLoadCap);
  EXPECT_TRUE(c.CheckAccess(0x1010, 16, kPermLoad | kPermLoadCap).ok());
  EXPECT_EQ(c.CheckAccess(0x1018, 16, kPermLoad | kPermLoadCap).code(),
            Code::kFaultAlignment);
}

// --- Sealing ----------------------------------------------------------------------------------

TEST(CapabilitySealing, SealUnsealRoundTrip) {
  Capability data = MakeCap(0x4000, 0x1000);
  Capability sealer = Capability::Root(0, 1024, kPermSeal | kPermUnseal).WithAddress(42);
  auto sealed = data.Sealed(sealer);
  ASSERT_TRUE(sealed.ok());
  EXPECT_TRUE(sealed->sealed());
  EXPECT_EQ(sealed->otype(), 42u);
  // Sealed capabilities cannot be dereferenced or mutated.
  EXPECT_EQ(sealed->CheckAccess(0x4000, 8, kPermLoad).code(), Code::kFaultSeal);
  EXPECT_FALSE(sealed->WithAddress(0x4100).tag());
  EXPECT_FALSE(sealed->WithBounds(0x4000, 16).tag());

  auto unsealed = sealed->Unsealed(sealer);
  ASSERT_TRUE(unsealed.ok());
  EXPECT_FALSE(unsealed->sealed());
  EXPECT_TRUE(unsealed->IdenticalTo(data));
}

TEST(CapabilitySealing, UnsealWrongOtypeFails) {
  Capability data = MakeCap(0x4000, 0x1000);
  Capability sealer = Capability::Root(0, 1024, kPermSeal | kPermUnseal).WithAddress(42);
  auto sealed = data.Sealed(sealer);
  ASSERT_TRUE(sealed.ok());
  Capability wrong = Capability::Root(0, 1024, kPermUnseal).WithAddress(43);
  EXPECT_EQ(sealed->Unsealed(wrong).code(), Code::kFaultSeal);
}

TEST(CapabilitySealing, SealRequiresPermission) {
  Capability data = MakeCap(0x4000, 0x1000);
  Capability no_perm = Capability::Root(0, 1024, kPermUnseal).WithAddress(42);
  EXPECT_EQ(data.Sealed(no_perm).code(), Code::kFaultPermission);
}

TEST(CapabilitySealing, ReservedOtypesRejected) {
  Capability data = MakeCap(0x4000, 0x1000);
  Capability sealer = Capability::Root(0, 1024, kPermSeal).WithAddress(kOtypeSentry);
  EXPECT_EQ(data.Sealed(sealer).code(), Code::kFaultSeal);
}

TEST(CapabilitySealing, SentryInvokeRoundTrip) {
  Capability code = Capability::Root(0x7000, 0x1000, kPermExecute | kPermLoad);
  Capability sentry = code.AsSentry();
  ASSERT_TRUE(sentry.tag());
  EXPECT_TRUE(sentry.IsSentry());
  // A sentry cannot be modified without losing its tag.
  EXPECT_FALSE(sentry.WithAddress(0x7100).tag());
  auto target = sentry.InvokedSentry();
  ASSERT_TRUE(target.ok());
  EXPECT_FALSE(target->sealed());
  EXPECT_EQ(target->base(), 0x7000u);
}

TEST(CapabilitySealing, SentryRequiresExecute) {
  Capability data = MakeCap(0x7000, 0x1000, kPermLoad);
  EXPECT_FALSE(data.AsSentry().tag());
}

TEST(CapabilitySealing, InvokeOfNonSentryFaults) {
  Capability data = MakeCap(0x7000, 0x1000);
  EXPECT_EQ(data.InvokedSentry().code(), Code::kFaultSeal);
}

// --- Relocation primitive ----------------------------------------------------------------------

TEST(CapabilityRelocation, EscapesRegion) {
  Capability inside = MakeCap(0x10000, 0x100).WithAddress(0x10050);
  EXPECT_FALSE(inside.EscapesRegion(0x10000, 0x20000));
  EXPECT_TRUE(inside.EscapesRegion(0x10100, 0x20000));  // base below region
  Capability integer = Capability::Integer(0x5);
  EXPECT_FALSE(integer.EscapesRegion(0x10000, 0x20000));  // integers carry no authority
}

TEST(CapabilityRelocation, RebaseShiftsCursorAndBounds) {
  // Parent region [0x100000, 0x200000), child at [0x900000, 0xa00000).
  Capability parent_ptr = MakeCap(0x150000, 0x1000).WithAddress(0x150010);
  Capability child_ptr = parent_ptr.RelocatedInto(0x100000, 0x900000, 0xa00000);
  EXPECT_TRUE(child_ptr.tag());
  EXPECT_EQ(child_ptr.address(), 0x950010u);
  EXPECT_EQ(child_ptr.base(), 0x950000u);
  EXPECT_EQ(child_ptr.top(), 0x951000u);
  EXPECT_FALSE(child_ptr.EscapesRegion(0x900000, 0xa00000));
}

TEST(CapabilityRelocation, RebaseClampsEscapingBounds) {
  // A capability whose bounds span beyond the parent region is clamped into the child region.
  Capability wide = MakeCap(0x0f0000, 0x200000).WithAddress(0x150000);
  Capability moved = wide.RelocatedInto(0x100000, 0x900000, 0xa00000);
  EXPECT_TRUE(moved.tag());
  EXPECT_GE(moved.base(), 0x900000u);
  EXPECT_LE(moved.top(), 0xa00000u);
}

TEST(CapabilityRelocation, RelocationToLowerAddressWorks) {
  Capability p = MakeCap(0x900000, 0x1000).WithAddress(0x900800);
  Capability c = p.RelocatedInto(0x900000, 0x100000, 0x200000);
  EXPECT_EQ(c.address(), 0x100800u);
}

// Property: relocation preserves the region-relative offset of cursor and bounds for any
// capability fully inside the source region.
TEST(CapabilityRelocationProperty, OffsetPreservingForInRegionCaps) {
  Rng rng(20250706);
  const uint64_t old_lo = 0x10000000;
  const uint64_t new_lo = 0x90000000;
  const uint64_t region = 0x1000000;
  for (int i = 0; i < 2000; ++i) {
    const uint64_t off = rng.NextBelow(region - 16);
    const uint64_t len = 1 + rng.NextBelow(region - off - 1);
    const uint64_t cur = off + rng.NextBelow(len);
    Capability c =
        MakeCap(old_lo + off, len).WithAddress(old_lo + cur);
    Capability r = c.RelocatedInto(old_lo, new_lo, new_lo + region);
    ASSERT_TRUE(r.tag());
    EXPECT_EQ(r.base() - new_lo, off);
    EXPECT_EQ(r.top() - new_lo, off + len);
    EXPECT_EQ(r.address() - new_lo, cur);
    EXPECT_EQ(r.perms(), c.perms());
    EXPECT_FALSE(r.EscapesRegion(new_lo, new_lo + region));
  }
}

// Property: monotonicity — any chain of derivations never widens bounds or adds permissions.
TEST(CapabilityProperty, DerivationChainsAreMonotonic) {
  Rng rng(7);
  for (int trial = 0; trial < 500; ++trial) {
    Capability root = MakeCap(0x1000, 0x100000, kPermAllData | kPermExecute);
    Capability c = root;
    for (int step = 0; step < 10 && c.tag(); ++step) {
      switch (rng.NextBelow(3)) {
        case 0: {
          const uint64_t nb = c.base() + rng.NextBelow(c.length() + 1);
          const uint64_t nl = rng.NextBelow(c.top() - nb + 1);
          c = c.WithBounds(nb, nl);
          break;
        }
        case 1:
          c = c.WithPermsAnd(static_cast<uint32_t>(rng.NextU64()));
          break;
        case 2:
          c = c.WithAddress(rng.NextU64() % kVaTop);
          break;
      }
      if (c.tag()) {
        EXPECT_GE(c.base(), root.base());
        EXPECT_LE(c.top(), root.top());
        EXPECT_EQ(c.perms() & ~root.perms(), 0u);
      }
    }
  }
}

}  // namespace
}  // namespace ufork
