// Shard-determinism matrix (DESIGN.md §4.11).
//
// The sharded host's contract: for a fixed workload, every *guest-visible* outcome — exit
// codes, pipe and message-queue payloads, syscall counts — is identical whether the machine
// runs on 1, 2 or 4 host shards, across all three systems (μFork, MAS, VM-clone). Virtual
// cycle totals are NOT compared at shards > 1: CoW copy-vs-claim refcount races legitimately
// move a bounded amount of copy work between processes (the golden-cycle pins stay
// shards=1-only). PIDs are also excluded — pid allocation strides per shard, so the same
// logical child draws different pids at different shard counts.
//
// The stress tests drive the cross-shard machinery hard: pipe ping-pong between parents and
// children that placement scatters across shards, a many-producer message-queue fan-in, and
// barrier-deferred cross-shard SIGKILL followed by wait/reap. These run under the CI
// ThreadSanitizer job (UFORK_SANITIZE=thread) at shards=4.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "src/baseline/system.h"
#include "src/guest/guest.h"
#include "src/kernel/syscall_table.h"
#include "tests/guest_test_util.h"

namespace ufork {
namespace {

constexpr int kRoots = 4;
constexpr int kChildrenPerRoot = 3;
constexpr uint64_t kPayloadBytes = 32;

KernelConfig DetConfig(int shards) {
  KernelConfig config;
  config.cores = 4;  // divisible by every shard count in the matrix
  config.host_shards = shards;
  config.layout.heap_size = 1 * kMiB;
  return config;
}

// Everything guest-visible one run produces. Multisets: arrival order across shards follows
// host timing; contents may not.
struct RunOutcome {
  std::multiset<int> exit_codes;
  std::multiset<std::string> pipe_payloads;
  std::multiset<std::string> mq_payloads;
  uint64_t forks = 0;
  uint64_t exits = 0;
  uint64_t syscalls = 0;
  std::array<uint64_t, kNumSyscalls> per_syscall{};
};

// Host-side collector shared by every root's coroutine; guest code runs on concurrent shard
// workers, so insertions are mutex-guarded.
struct Collector {
  std::mutex mu;
  RunOutcome out;

  void RecordExit(int code) {
    std::lock_guard<std::mutex> lk(mu);
    out.exit_codes.insert(code);
  }
  void RecordPipe(std::string payload) {
    std::lock_guard<std::mutex> lk(mu);
    out.pipe_payloads.insert(std::move(payload));
  }
  void RecordMq(std::string payload) {
    std::lock_guard<std::mutex> lk(mu);
    out.mq_payloads.insert(std::move(payload));
  }
};

std::string PaddedPayload(const std::string& prefix, int slot) {
  std::string s = prefix + std::to_string(slot);
  s.resize(kPayloadBytes, '.');
  return s;
}

// One root μprocess: forks kChildrenPerRoot children. Each child writes a 32-byte payload
// into its private pipe and sends one mqueue message; the root reads the pipe, reaps every
// child, and root 0 finally drains all kRoots*kChildrenPerRoot messages from the queue.
GuestFn RootFn(int root, Collector* collect) {
  return [root, collect](Guest& g) -> SimTask<void> {
    auto mq = co_await g.MqOpen("/mq/det", /*create=*/true);
    CO_ASSERT_OK(mq);
    for (int c = 0; c < kChildrenPerRoot; ++c) {
      const int slot = root * kChildrenPerRoot + c;
      auto pipe_fds = co_await g.Pipe();
      CO_ASSERT_OK(pipe_fds);
      const auto [rfd, wfd] = *pipe_fds;
      auto child =
          co_await g.Fork([rfd = rfd, wfd = wfd, mq = *mq, slot](Guest& cg) -> SimTask<void> {
            (void)co_await cg.Close(rfd);
            auto payload = cg.PlaceString(PaddedPayload("pipe-", slot));
            CO_ASSERT_OK(payload);
            auto written = co_await cg.Write(wfd, *payload, kPayloadBytes);
            CO_ASSERT_OK(written);
            CO_ASSERT_EQ(static_cast<uint64_t>(*written), kPayloadBytes);
            auto msg = cg.PlaceString(PaddedPayload("mq-", slot));
            CO_ASSERT_OK(msg);
            CO_ASSERT_OK(co_await cg.Write(mq, *msg, kPayloadBytes));
            co_await cg.Exit(40 + slot);
          });
      CO_ASSERT_OK(child);
      CO_ASSERT_OK(co_await g.Close(wfd));
      auto buf = g.Malloc(kPayloadBytes);
      CO_ASSERT_OK(buf);
      auto n = co_await g.Read(rfd, *buf, kPayloadBytes);
      CO_ASSERT_OK(n);
      CO_ASSERT_EQ(static_cast<uint64_t>(*n), kPayloadBytes);
      auto bytes = g.FetchBytes(*buf, kPayloadBytes);
      CO_ASSERT_OK(bytes);
      collect->RecordPipe(
          std::string(reinterpret_cast<const char*>(bytes->data()), bytes->size()));
      CO_ASSERT_OK(co_await g.Close(rfd));
    }
    for (int c = 0; c < kChildrenPerRoot; ++c) {
      auto waited = co_await g.Wait();
      CO_ASSERT_OK(waited);
      collect->RecordExit(waited->status);
    }
    if (root == 0) {
      auto buf = g.Malloc(kPayloadBytes);
      CO_ASSERT_OK(buf);
      for (int m = 0; m < kRoots * kChildrenPerRoot; ++m) {
        auto n = co_await g.Read(*mq, *buf, kPayloadBytes);
        CO_ASSERT_OK(n);
        auto bytes = g.FetchBytes(*buf, static_cast<uint64_t>(*n));
        CO_ASSERT_OK(bytes);
        collect->RecordMq(
            std::string(reinterpret_cast<const char*>(bytes->data()), bytes->size()));
      }
    }
  };
}

template <typename MakeKernel>
RunOutcome RunWorkload(int shards, MakeKernel make_kernel) {
  auto kernel = make_kernel(DetConfig(shards));
  Collector collect;
  for (int root = 0; root < kRoots; ++root) {
    auto pid = kernel->Spawn(MakeGuestEntry(RootFn(root, &collect)),
                             "det-root" + std::to_string(root));
    UF_CHECK(pid.ok());
  }
  kernel->Run();
  RunOutcome out = std::move(collect.out);
  const KernelStats& stats = kernel->stats();
  out.forks = stats.forks;
  out.exits = stats.exits;
  out.syscalls = stats.syscalls;
  for (size_t i = 0; i < kNumSyscalls; ++i) {
    out.per_syscall[i] = stats.per_syscall[i];
  }
  return out;
}

void ExpectSameOutcome(const RunOutcome& a, const RunOutcome& b, const std::string& label) {
  EXPECT_EQ(a.exit_codes, b.exit_codes) << label;
  EXPECT_EQ(a.pipe_payloads, b.pipe_payloads) << label;
  EXPECT_EQ(a.mq_payloads, b.mq_payloads) << label;
  EXPECT_EQ(a.forks, b.forks) << label;
  EXPECT_EQ(a.exits, b.exits) << label;
  EXPECT_EQ(a.syscalls, b.syscalls) << label;
  for (size_t i = 0; i < kNumSyscalls; ++i) {
    EXPECT_EQ(a.per_syscall[i], b.per_syscall[i])
        << label << " per_syscall[" << SyscallTable()[i].name << "]";
  }
}

template <typename MakeKernel>
void RunMatrix(MakeKernel make_kernel, const std::string& system) {
  const RunOutcome one = RunWorkload(1, make_kernel);
  // Sanity on the baseline itself before comparing shard counts against it.
  EXPECT_EQ(one.exit_codes.size(), static_cast<size_t>(kRoots * kChildrenPerRoot)) << system;
  EXPECT_EQ(one.pipe_payloads.size(), static_cast<size_t>(kRoots * kChildrenPerRoot))
      << system;
  EXPECT_EQ(one.mq_payloads.size(), static_cast<size_t>(kRoots * kChildrenPerRoot)) << system;
  for (const int shards : {2, 4}) {
    const RunOutcome sharded = RunWorkload(shards, make_kernel);
    ExpectSameOutcome(one, sharded, system + " @shards=" + std::to_string(shards));
  }
}

TEST(ShardDeterminism, UforkMatrix) {
  RunMatrix([](KernelConfig c) { return MakeUforkKernel(c); }, "ufork");
}

TEST(ShardDeterminism, MasMatrix) {
  RunMatrix([](KernelConfig c) { return MakeMasKernel(c); }, "mas");
}

TEST(ShardDeterminism, VmCloneMatrix) {
  RunMatrix([](KernelConfig c) { return MakeVmCloneKernel(c); }, "vmclone");
}

// Demand paging must not perturb shard determinism: the same workload — now with frame-less
// reservations and fault-driven zero-fill windows on every root and child — stays
// guest-visible-identical at every shard count (the CI TSan matrix runs these rows too).
TEST(ShardDeterminism, UforkDemandPagingMatrix) {
  RunMatrix(
      [](KernelConfig c) {
        c.demand_paging = true;
        return MakeUforkKernel(c);
      },
      "ufork-demand");
}

TEST(ShardDeterminism, MasDemandPagingMatrix) {
  RunMatrix(
      [](KernelConfig c) {
        c.demand_paging = true;
        return MakeMasKernel(c);
      },
      "mas-demand");
}

TEST(ShardDeterminism, VmCloneDemandPagingMatrix) {
  RunMatrix(
      [](KernelConfig c) {
        c.demand_paging = true;
        return MakeVmCloneKernel(c);
      },
      "vmclone-demand");
}

// Repeated same-shard-count runs must be bit-identical in everything RunOutcome captures —
// seed-stability, the property the TSan job soaks.
TEST(ShardDeterminism, RepeatedRunsAreStable) {
  auto make = [](KernelConfig c) { return MakeUforkKernel(c); };
  for (const int shards : {2, 4}) {
    const RunOutcome first = RunWorkload(shards, make);
    const RunOutcome second = RunWorkload(shards, make);
    ExpectSameOutcome(first, second, "repeat @shards=" + std::to_string(shards));
  }
}

// --- cross-shard stress ------------------------------------------------------------------------

// Pipe ping-pong: each root forks one partner child and exchanges kRounds tokens over a pair
// of pipes. Placement scatters partners across shards, so most round trips cross the mailbox
// path twice per round.
constexpr int kPairs = 8;
constexpr int kRounds = 16;
constexpr uint64_t kTokenBytes = 8;

TEST(ShardStress, PipePingPongAcrossShards) {
  auto kernel = MakeUforkKernel(DetConfig(4));
  std::mutex mu;
  std::multiset<int> statuses;
  for (int pair = 0; pair < kPairs; ++pair) {
    GuestFn root = [&mu, &statuses](Guest& g) -> SimTask<void> {
      auto down = co_await g.Pipe();  // parent -> child
      CO_ASSERT_OK(down);
      auto up = co_await g.Pipe();  // child -> parent
      CO_ASSERT_OK(up);
      const auto [drfd, dwfd] = *down;
      const auto [urfd, uwfd] = *up;
      auto child = co_await g.Fork(
          [drfd = drfd, dwfd = dwfd, urfd = urfd, uwfd = uwfd](Guest& cg) -> SimTask<void> {
            (void)co_await cg.Close(dwfd);
            (void)co_await cg.Close(urfd);
            auto buf = cg.Malloc(kTokenBytes);
            CO_ASSERT_OK(buf);
            for (int round = 0; round < kRounds; ++round) {
              auto n = co_await cg.Read(drfd, *buf, kTokenBytes);
              CO_ASSERT_OK(n);
              CO_ASSERT_EQ(static_cast<uint64_t>(*n), kTokenBytes);
              CO_ASSERT_OK(co_await cg.Write(uwfd, *buf, kTokenBytes));
            }
            co_await cg.Exit(7);
          });
      CO_ASSERT_OK(child);
      CO_ASSERT_OK(co_await g.Close(drfd));
      CO_ASSERT_OK(co_await g.Close(uwfd));
      auto token = g.Malloc(kTokenBytes);
      CO_ASSERT_OK(token);
      for (int round = 0; round < kRounds; ++round) {
        CO_ASSERT_OK(co_await g.Write(dwfd, *token, kTokenBytes));
        auto n = co_await g.Read(urfd, *token, kTokenBytes);
        CO_ASSERT_OK(n);
        CO_ASSERT_EQ(static_cast<uint64_t>(*n), kTokenBytes);
      }
      CO_ASSERT_OK(co_await g.Close(dwfd));
      auto waited = co_await g.Wait();
      CO_ASSERT_OK(waited);
      std::lock_guard<std::mutex> lk(mu);
      statuses.insert(waited->status);
    };
    auto pid = kernel->Spawn(MakeGuestEntry(std::move(root)), "pp" + std::to_string(pair));
    ASSERT_TRUE(pid.ok());
  }
  kernel->Run();
  EXPECT_EQ(statuses.size(), static_cast<size_t>(kPairs));
  EXPECT_EQ(*statuses.begin(), 7);
  EXPECT_EQ(*statuses.rbegin(), 7);
}

// Cross-shard SIGKILL: children park in a long nanosleep; their parents kill and reap them.
// Kills whose victim lives on another shard defer to the epoch barrier
// (KernelCore::QueueCrossShardKill); every reaped status must still be -SIGKILL.
TEST(ShardStress, CrossShardKillAndReap) {
  constexpr int kKillRoots = 4;
  constexpr int kVictimsPerRoot = 3;
  auto kernel = MakeUforkKernel(DetConfig(4));
  std::mutex mu;
  std::multiset<int> statuses;
  for (int root = 0; root < kKillRoots; ++root) {
    GuestFn fn = [&mu, &statuses](Guest& g) -> SimTask<void> {
      std::vector<Pid> victims;
      for (int v = 0; v < kVictimsPerRoot; ++v) {
        auto child = co_await g.Fork([](Guest& cg) -> SimTask<void> {
          // Far beyond the test's lifetime: the victim must still be asleep when killed.
          CO_ASSERT_OK(co_await cg.Nanosleep(1'000'000'000));
          co_await cg.Exit(0);  // unreachable
        });
        CO_ASSERT_OK(child);
        victims.push_back(*child);
      }
      for (const Pid victim : victims) {
        CO_ASSERT_OK(co_await g.Kill(victim, kSigKill));
      }
      for (int v = 0; v < kVictimsPerRoot; ++v) {
        auto waited = co_await g.Wait();
        CO_ASSERT_OK(waited);
        std::lock_guard<std::mutex> lk(mu);
        statuses.insert(waited->status);
      }
    };
    auto pid = kernel->Spawn(MakeGuestEntry(std::move(fn)), "killer" + std::to_string(root));
    ASSERT_TRUE(pid.ok());
  }
  kernel->Run();
  EXPECT_EQ(statuses.size(), static_cast<size_t>(kKillRoots * kVictimsPerRoot));
  for (const int status : statuses) {
    EXPECT_EQ(status, -9);
  }
}

}  // namespace
}  // namespace ufork
