// Tests for the base utilities: Result<T>, deterministic RNG, running statistics, units and
// alignment helpers, cost-model arithmetic.
#include <gtest/gtest.h>

#include <set>

#include "src/base/rng.h"
#include "src/base/stats.h"
#include "src/base/status.h"
#include "src/base/units.h"
#include "src/machine/cost_model.h"

namespace ufork {
namespace {

// --- Result<T> -----------------------------------------------------------------------------

Result<int> ParsePositive(int v) {
  if (v <= 0) {
    return Error{Code::kErrInval, "not positive"};
  }
  return v;
}

Result<int> Doubled(int v) {
  UF_ASSIGN_OR_RETURN(const int parsed, ParsePositive(v));
  return parsed * 2;
}

TEST(ResultTest, ValueAndErrorPaths) {
  auto ok = ParsePositive(5);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 5);
  EXPECT_EQ(ok.code(), Code::kOk);

  auto err = ParsePositive(-1);
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.code(), Code::kErrInval);
  EXPECT_EQ(err.error().message, "not positive");
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubled(21), 42);
  EXPECT_EQ(Doubled(-3).code(), Code::kErrInval);
}

TEST(ResultTest, VoidSpecialization) {
  Result<void> ok = OkResult();
  EXPECT_TRUE(ok.ok());
  Result<void> err = Code::kErrNoMem;
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), Code::kErrNoMem);
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(9));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> taken = std::move(r).value();
  EXPECT_EQ(*taken, 9);
}

TEST(ResultTest, CodeNamesAreStable) {
  EXPECT_STREQ(CodeName(Code::kOk), "OK");
  EXPECT_STREQ(CodeName(Code::kFaultBounds), "FAULT_BOUNDS");
  EXPECT_STREQ(CodeName(Code::kFaultCapLoadPage), "FAULT_CAP_LOAD_PAGE");
  EXPECT_STREQ(CodeName(Code::kErrNoSpc), "ENOSPC");
}

// --- Rng -----------------------------------------------------------------------------------

TEST(RngTest, DeterministicPerSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
  Rng c(124);
  Rng d(123);
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    differing += c.NextU64() != d.NextU64() ? 1 : 0;
  }
  EXPECT_GT(differing, 90);
}

TEST(RngTest, NextBelowInRangeAndRoughlyUniform) {
  Rng rng(7);
  std::array<int, 10> histogram{};
  for (int i = 0; i < 10'000; ++i) {
    const uint64_t v = rng.NextBelow(10);
    ASSERT_LT(v, 10u);
    ++histogram[v];
  }
  for (int count : histogram) {
    EXPECT_GT(count, 800);  // ~1000 expected
    EXPECT_LT(count, 1200);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

// --- RunningStats --------------------------------------------------------------------------

TEST(StatsTest, MeanAndStddev) {
  RunningStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.Add(v);
  }
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.stddev(), 2.138, 0.001);  // sample stddev
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(StatsTest, EmptyAndSingle) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  stats.Add(3.5);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.5);
  EXPECT_DOUBLE_EQ(stats.stddev(), 0.0);
}

// --- units ---------------------------------------------------------------------------------

TEST(UnitsTest, TimeConversionsRoundTrip) {
  EXPECT_EQ(Microseconds(54), 135'000u);
  EXPECT_DOUBLE_EQ(ToMicroseconds(Microseconds(54)), 54.0);
  EXPECT_DOUBLE_EQ(ToMilliseconds(Milliseconds(245)), 245.0);
  EXPECT_DOUBLE_EQ(ToSeconds(Seconds(10)), 10.0);
}

TEST(UnitsTest, AlignmentHelpers) {
  EXPECT_EQ(AlignUp(0, 16), 0u);
  EXPECT_EQ(AlignUp(1, 16), 16u);
  EXPECT_EQ(AlignUp(16, 16), 16u);
  EXPECT_EQ(AlignDown(31, 16), 16u);
  EXPECT_TRUE(IsAligned(4096, 4096));
  EXPECT_FALSE(IsAligned(4097, 4096));
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(4096));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(12));
  EXPECT_EQ(CeilDiv(10, 4), 3u);
  EXPECT_EQ(CeilDiv(8, 4), 2u);
}

// --- cost model ----------------------------------------------------------------------------

TEST(CostModelTest, SyscallEntryFlavours) {
  CostModel costs;
  EXPECT_EQ(costs.SyscallEntry(SyscallEntryKind::kSealedEntry), costs.syscall_sealed_entry);
  EXPECT_EQ(costs.SyscallEntry(SyscallEntryKind::kTrap), costs.syscall_trap);
  EXPECT_EQ(costs.SyscallEntry(SyscallEntryKind::kHypercall), costs.hypercall);
  // The design's core asymmetry: sealed entry is dramatically cheaper than a trap (§4.4).
  EXPECT_LT(costs.syscall_sealed_entry * 5, costs.syscall_trap);
}

TEST(CostModelTest, TransferCostsScaleLinearly) {
  CostModel costs;
  EXPECT_EQ(costs.BulkCopy(0), 0u);
  EXPECT_NEAR(static_cast<double>(costs.BulkCopy(3'000'000)),
              3'000'000 / costs.bulk_bytes_per_cycle, 1.0);
  EXPECT_GT(costs.TocttouCopy(1024), costs.tocttou_fixed);
}

}  // namespace
}  // namespace ufork
