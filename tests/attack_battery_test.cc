// Adversarial capability-attack battery + differential fork fuzzing (DESIGN.md §4.14).
//
//   - VerdictsIdenticalAcrossBackendsPagingAndCompaction: the whole battery — forgery,
//     bounds walks, sealed-cap misuse, tag laundering through pipe/mq/VFS/fork/shm — produces
//     the canonical per-attack verdict (contained SIGSEGV with the expected fault code, or a
//     clean errno-only exit) and byte-identical traces + StateDigest across
//     μFork CoPA/CoA/Full, MAS and VM-clone, × {eager, demand paging} × {compaction off/on}.
//   - UafThroughRevocation*: a capability stashed into a victim's region and raced against
//     region teardown is *revoked* (deref faults kFaultTag) when quarantine_freed_regions is
//     on, and flagged unsafe by the harness (stale tag survives the free) when it is off.
//   - ChaosAttackSoak: the battery under every armed injection site replays bit-identically
//     per seed, and the structure-aware fork server survives chaos fork refusals (ENOMEM) and
//     admission pushback (EAGAIN) — counting fork_failures, never aborting the host.
//   - Fuzz bucketing: structure-aware crashes bucket by (fault kind, faulting op) with a
//     replayable first reproducer surfaced in the stats report.
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "src/apps/forkfuzz.h"
#include "src/attack/attack.h"
#include "src/attack/differential.h"
#include "src/baseline/system.h"
#include "src/guest/guest.h"
#include "tests/guest_test_util.h"

namespace ufork {
namespace {

constexpr int kCrashExit = 139;
constexpr double kChaosProbability = 0.02;

KernelConfig BatteryConfig(bool demand_paging, bool compact) {
  KernelConfig config;
  config.layout.heap_size = 1 * kMiB;
  config.demand_paging = demand_paging;
  if (compact) {
    config.compact_budget_pages = 4;
    config.compact_step_interval = 2'000;
    config.quarantine_freed_regions = true;
  }
  return config;
}

struct SystemRow {
  const char* name;
  SystemFactory factory;
  bool supports_compaction;
};

std::vector<SystemRow> Systems() {
  std::vector<SystemRow> rows;
  rows.push_back({"ufork-copa",
                  [](KernelConfig c) {
                    c.strategy = ForkStrategy::kCopa;
                    return MakeUforkKernel(c);
                  },
                  true});
  rows.push_back({"ufork-coa",
                  [](KernelConfig c) {
                    c.strategy = ForkStrategy::kCoa;
                    return MakeUforkKernel(c);
                  },
                  true});
  rows.push_back({"ufork-full",
                  [](KernelConfig c) {
                    c.strategy = ForkStrategy::kFull;
                    return MakeUforkKernel(c);
                  },
                  true});
  rows.push_back({"mas", [](KernelConfig c) { return MakeMasKernel(c); }, false});
  rows.push_back({"vmclone", [](KernelConfig c) { return MakeVmCloneKernel(c); }, false});
  return rows;
}

uint64_t ExpectedFatalCount() {
  uint64_t n = 0;
  for (const BatteryAttack& attack : AttackBattery()) {
    if (attack.expected_fatal != Code::kOk) {
      ++n;
    }
  }
  return n;
}

// Every attack's guest-visible outcome must be the canonical one: the expected contained
// fault (status 139 + the fault code in the flushed trace) or a clean errno-only exit.
void ExpectCanonicalVerdicts(const CampaignResult& result) {
  const std::vector<BatteryAttack>& battery = AttackBattery();
  ASSERT_EQ(result.verdicts.size(), battery.size()) << result.label;
  for (size_t i = 0; i < battery.size(); ++i) {
    const BatteryAttack& attack = battery[i];
    const AttackVerdict& verdict = result.verdicts[i];
    SCOPED_TRACE(result.label + " / " + attack.name);
    EXPECT_FALSE(verdict.spawn_failed);
    EXPECT_FALSE(verdict.trace_lost) << "the trace must flush before the trap";
    if (attack.expected_fatal == Code::kOk) {
      EXPECT_EQ(verdict.status, 0);
      EXPECT_FALSE(verdict.trace.fatal());
    } else {
      EXPECT_EQ(verdict.status, kCrashExit) << "contained SIGSEGV, never a host abort";
      EXPECT_EQ(verdict.trace.fatal_code, attack.expected_fatal);
    }
  }
}

TEST(AttackBattery, VerdictsIdenticalAcrossBackendsPagingAndCompaction) {
  const uint64_t expected_faults = ExpectedFatalCount();
  std::optional<CampaignResult> reference;
  for (const SystemRow& sys : Systems()) {
    for (const bool demand : {false, true}) {
      for (const bool compact : {false, true}) {
        if (compact && !sys.supports_compaction) {
          continue;
        }
        const std::string label = std::string(sys.name) + (demand ? "/demand" : "/eager") +
                                  (compact ? "/compact" : "");
        SCOPED_TRACE(label);
        CampaignResult result =
            RunBatteryCampaign(sys.factory, BatteryConfig(demand, compact), label);
        ExpectCanonicalVerdicts(result);
        EXPECT_EQ(result.faults_contained, expected_faults)
            << "the kernel fault ledger must move in lockstep with contained crashes";
        if (!reference.has_value()) {
          reference = std::move(result);
          continue;
        }
        const std::vector<std::string> diffs = DiffCampaigns(*reference, result);
        for (const std::string& diff : diffs) {
          ADD_FAILURE() << diff;
        }
        EXPECT_EQ(reference->digest, result.digest) << "StateDigest diverged";
      }
    }
  }
}

// Sanity on the trace wire format the children flush and the fuzzer mutates.
TEST(AttackBattery, TraceAndProgramRoundTrip) {
  AttackTrace trace;
  trace.steps.push_back({static_cast<uint8_t>(AttackOp::kPipeLaunder), 0, 3});
  trace.steps.push_back(
      {static_cast<uint8_t>(AttackOp::kBoundsLoadHigh),
       static_cast<int32_t>(Code::kFaultBounds), 0});
  trace.fatal_step = 1;
  trace.fatal_code = Code::kFaultBounds;
  const AttackTrace decoded = AttackTrace::Decode(trace.Encode());
  EXPECT_EQ(decoded.Encode(), trace.Encode());
  EXPECT_EQ(decoded.fatal_step, 1u);
  EXPECT_EQ(decoded.fatal_code, Code::kFaultBounds);

  const AttackProgram program = {{AttackOp::kForgeRawBytes, 7}, {AttackOp::kDerefForged, 0}};
  const AttackProgram round = DecodeAttackProgram(EncodeAttackProgram(program));
  ASSERT_EQ(round.size(), program.size());
  EXPECT_EQ(round[0].op, program[0].op);
  EXPECT_EQ(round[1].arg, program[1].arg);
  // Any byte string decodes (opcodes wrap modulo kNumOps) — the fuzzer's totality property.
  const std::byte junk[] = {std::byte{0xFE}, std::byte{0x41}, std::byte{0x99}, std::byte{0x07}};
  const AttackProgram wild = DecodeAttackProgram(junk);
  ASSERT_EQ(wild.size(), 2u);
  EXPECT_LT(static_cast<size_t>(wild[0].op), kNumAttackOps);
  EXPECT_LT(static_cast<size_t>(wild[1].op), kNumAttackOps);
}

// --- UAF through the quarantine/revocation window --------------------------------------------

TEST(AttackBattery, UafThroughRevocationCaughtWithQuarantine) {
  const UafCampaignResult result = RunUafRevocationCampaign(/*quarantine_on=*/true);
  EXPECT_TRUE(result.tag_at_stash) << "the stash must be live while the victim still is";
  EXPECT_TRUE(result.caught());
  EXPECT_FALSE(result.unsafe());
  EXPECT_FALSE(result.tag_after_free) << "the sweep must revoke the stashed capability";
  EXPECT_EQ(result.deref_code, Code::kFaultTag);
  EXPECT_GE(result.caps_revoked, 1u);
  EXPECT_TRUE(result.invariant_ok);
}

TEST(AttackBattery, UafThroughRevocationUnsafeWithoutQuarantine) {
  const UafCampaignResult result = RunUafRevocationCampaign(/*quarantine_on=*/false);
  EXPECT_TRUE(result.tag_at_stash);
  EXPECT_TRUE(result.unsafe()) << "without quarantine the stale authority must survive — the "
                                  "differential harness flags exactly this";
  EXPECT_FALSE(result.caught());
  EXPECT_TRUE(result.tag_after_free);
  EXPECT_EQ(result.caps_revoked, 0u) << "no sweeper ran, nothing was revoked";
}

// --- chaos × attack cross-product soak -------------------------------------------------------

std::vector<uint64_t> SoakSeeds() {
  std::vector<uint64_t> seeds;
  for (uint64_t s = 1; s <= 8; ++s) {
    seeds.push_back(s);
  }
  if (const char* extra = std::getenv("UFORK_CHAOS_SEEDS"); extra != nullptr) {
    const std::string spec(extra);
    size_t pos = 0;
    while (pos < spec.size()) {
      size_t comma = spec.find(',', pos);
      if (comma == std::string::npos) comma = spec.size();
      const std::string token = spec.substr(pos, comma - pos);
      if (!token.empty()) {
        seeds.push_back(std::strtoull(token.c_str(), nullptr, 10));
      }
      pos = comma + 1;
    }
  }
  return seeds;
}

CampaignResult RunChaosBattery(uint64_t seed) {
  const SystemFactory factory = [](KernelConfig c) { return MakeUforkKernel(c); };
  return RunBatteryCampaign(
      factory, BatteryConfig(/*demand_paging=*/true, /*compact=*/true),
      "ufork-chaos-" + std::to_string(seed), [seed](Kernel& kernel) {
        kernel.fault_injector().ArmAll(FaultPolicy::Probabilistic(kChaosProbability), seed);
      });
}

TEST(ChaosAttackSoak, BatteryReplaysBitIdenticallyPerSeed) {
  for (const uint64_t seed : SoakSeeds()) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const CampaignResult first = RunChaosBattery(seed);
    const CampaignResult replay = RunChaosBattery(seed);
    // Under chaos an attack may be refused with an errno before it reaches its fault — a
    // legitimate outcome. What must hold: the run is a pure function of the seed, and every
    // child either exits cleanly or dies of a *contained* SIGSEGV.
    const std::vector<std::string> diffs = DiffCampaigns(first, replay);
    for (const std::string& diff : diffs) {
      ADD_FAILURE() << "seed " << seed << " replay diverged: " << diff;
    }
    EXPECT_EQ(first.digest, replay.digest);
    ASSERT_EQ(first.verdicts.size(), AttackBattery().size());
    for (const AttackVerdict& verdict : first.verdicts) {
      if (!verdict.spawn_failed) {
        EXPECT_TRUE(verdict.status == 0 || verdict.status == kCrashExit)
            << verdict.attack << ": status " << verdict.status;
      }
    }
  }
}

// --- fork-server robustness + crash bucketing ------------------------------------------------

struct FuzzRun {
  FuzzStats stats;
  uint64_t faults_contained = 0;
  bool finished = false;
};

FuzzRun RunFuzzCampaign(uint64_t seed, uint64_t iterations, bool arm_chaos,
                        const OverloadConfig* overload = nullptr) {
  KernelConfig config;
  config.layout.heap_size = 1 * kMiB;
  auto kernel = MakeUforkKernel(config);
  FuzzRun run;
  FuzzRun* out = &run;
  GuestFn driver = [out, seed, iterations](Guest& g) -> SimTask<void> {
    const FuzzTarget target = MakeAttackBatteryTarget();
    const Result<void> initialized = target.initialize(g);
    if (!initialized.ok()) {
      co_return;
    }
    co_await RunForkServer(g, target, iterations, seed, &out->stats);
    out->finished = true;
  };
  auto pid = kernel->Spawn(MakeGuestEntry(std::move(driver)), "fuzz-server");
  EXPECT_TRUE(pid.ok());
  if (arm_chaos) {
    kernel->fault_injector().ArmAll(FaultPolicy::Probabilistic(kChaosProbability), seed);
  }
  if (overload != nullptr) {
    kernel->admission().Configure(*overload);
  }
  kernel->Run();
  kernel->fault_injector().DisarmAll();
  run.faults_contained = kernel->stats().faults_contained;
  return run;
}

TEST(ForkFuzz, StructureAwareCampaignBucketsByFaultKindAndSite) {
  const FuzzRun run = RunFuzzCampaign(/*seed=*/11, /*iterations=*/60, /*arm_chaos=*/false);
  ASSERT_TRUE(run.finished);
  EXPECT_EQ(run.stats.executions, 60u);
  EXPECT_GT(run.stats.crashes, 0u) << "battery-seeded mutation must find the faults";
  EXPECT_LT(run.stats.crashes, run.stats.executions) << "and some clean runs";
  EXPECT_EQ(run.stats.fork_failures, 0u);
  EXPECT_GE(run.stats.buckets.size(), 2u)
      << "distinct (fault kind, op) pairs must land in distinct buckets";
  for (const auto& [key, bucket] : run.stats.buckets) {
    EXPECT_GT(bucket.count, 0u);
    EXPECT_EQ(bucket.first_seed, 11u);
    EXPECT_FALSE(bucket.first_input.empty()) << "every bucket carries its first reproducer";
  }
  const std::string report = run.stats.Report();
  EXPECT_NE(report.find("fuzz: execs=60"), std::string::npos) << report;
  EXPECT_NE(report.find("replay: seed=11"), std::string::npos) << report;
  EXPECT_NE(report.find("input="), std::string::npos) << report;
}

TEST(ForkFuzz, CampaignIsDeterministicPerSeed) {
  const FuzzRun first = RunFuzzCampaign(/*seed=*/7, /*iterations=*/40, /*arm_chaos=*/false);
  const FuzzRun replay = RunFuzzCampaign(/*seed=*/7, /*iterations=*/40, /*arm_chaos=*/false);
  EXPECT_EQ(first.stats.executions, replay.stats.executions);
  EXPECT_EQ(first.stats.crashes, replay.stats.crashes);
  EXPECT_EQ(first.stats.elapsed, replay.stats.elapsed);
  EXPECT_EQ(first.stats.Report(), replay.stats.Report());
  EXPECT_EQ(first.faults_contained, replay.faults_contained);
}

TEST(ForkFuzz, ForkServerSurvivesChaosWithoutHostAbort) {
  for (const uint64_t seed : {31ull, 32ull, 33ull}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const FuzzRun first = RunFuzzCampaign(seed, /*iterations=*/40, /*arm_chaos=*/true);
    // Survival: the server finishes its campaign no matter what the injector refused. Any
    // fork the injector failed is on the ledger, and skipped cases never count as executed.
    ASSERT_TRUE(first.finished) << "a refused fork must never abort the campaign";
    EXPECT_LE(first.stats.executions, 40u);
    const FuzzRun replay = RunFuzzCampaign(seed, /*iterations=*/40, /*arm_chaos=*/true);
    EXPECT_EQ(first.stats.executions, replay.stats.executions);
    EXPECT_EQ(first.stats.crashes, replay.stats.crashes);
    EXPECT_EQ(first.stats.fork_failures, replay.stats.fork_failures);
    EXPECT_EQ(first.stats.Report(), replay.stats.Report());
  }
}

TEST(ForkFuzz, ForkServerSurvivesAdmissionPushback) {
  // Rejecting admission: watermarks above the total frame count mean every fork is refused
  // with EAGAIN (max_parked=0) from the first case on. The server must retry, give up case
  // by case, and finish with an intact ledger — the pre-PR behaviour was a UF_CHECK abort.
  OverloadConfig overload;
  overload.enabled = true;
  overload.low_watermark = UINT64_MAX / 2;
  overload.critical_watermark = UINT64_MAX / 2;
  overload.clear_watermark = UINT64_MAX / 2;
  overload.max_parked = 0;
  const FuzzRun run =
      RunFuzzCampaign(/*seed=*/5, /*iterations=*/10, /*arm_chaos=*/false, &overload);
  ASSERT_TRUE(run.finished);
  EXPECT_EQ(run.stats.executions, 0u) << "every fork was refused";
  EXPECT_GT(run.stats.fork_failures, 0u);
  EXPECT_EQ(run.stats.crashes, 0u);
}

}  // namespace
}  // namespace ufork
