// Syscall-level exhaustion matrix (DESIGN.md §4.9).
//
// Every resource-acquiring syscall is driven into its failure path with the deterministic
// fault injector and must (a) return the documented errno, (b) leave ZERO observable state
// change — frame counts, descriptor tables, mmap cursors, the process table — and (c) succeed
// when retried after the pressure clears. The whole file runs with check_frame_invariants on,
// so every syscall exit cross-checks frame refcounts against the page tables; a leaked or
// double-freed frame aborts the test at the exact syscall that broke the accounting.
#include <gtest/gtest.h>

#include <string>

#include "src/baseline/system.h"
#include "src/guest/guest.h"
#include "tests/guest_test_util.h"

namespace ufork {
namespace {

KernelConfig SmallConfig() {
  KernelConfig config;
  config.layout.text_size = 32 * kKiB;
  config.layout.rodata_size = 8 * kKiB;
  config.layout.got_size = 4 * kKiB;
  config.layout.data_size = 8 * kKiB;
  config.layout.heap_size = 256 * kKiB;
  config.layout.stack_size = 32 * kKiB;
  config.layout.tls_size = 4 * kKiB;
  config.layout.mmap_size = 64 * kKiB;
  config.check_frame_invariants = true;
  return config;
}

struct System {
  const char* name;
  std::unique_ptr<Kernel> (*make)(KernelConfig config);
};

const System kSystems[] = {
    {"ufork", [](KernelConfig c) { return MakeUforkKernel(c); }},
    {"mas", [](KernelConfig c) { return MakeMasKernel(c, MasParams{}); }},
    {"vmclone", [](KernelConfig c) { return MakeVmCloneKernel(c, VmCloneParams{}); }},
};

void RunOnAllSystems(GuestFn fn) {
  for (const System& system : kSystems) {
    SCOPED_TRACE(system.name);
    auto kernel = system.make(SmallConfig());
    auto pid = kernel->Spawn(MakeGuestEntry(fn), "exhaustion");
    ASSERT_TRUE(pid.ok());
    kernel->Run();
    EXPECT_TRUE(kernel->CheckFrameAccounting().ok());
  }
}

// --- anonymous mmap ----------------------------------------------------------------------------

TEST(Exhaustion, MmapMidAllocationRollsBackCompletely) {
  RunOnAllSystems([](Guest& g) -> SimTask<void> {
    Kernel& k = g.kernel();
    const uint64_t frames0 = k.machine().frames().frames_in_use();
    const uint64_t cursor0 = g.uproc().mmap_cursor;

    // The third of four page allocations fails: the two already-mapped pages must come back.
    k.fault_injector().Arm(FaultSite::kFrameAlloc, FaultPolicy::Nth(3));
    auto failed = co_await g.MmapAnon(4 * kPageSize);
    CO_ASSERT_EQ(failed.code(), Code::kErrNoMem);
    k.fault_injector().DisarmAll();

    CO_ASSERT_EQ(k.machine().frames().frames_in_use(), frames0);
    CO_ASSERT_EQ(g.uproc().mmap_cursor, cursor0);

    // The identical request over the identical cursor succeeds and the memory works.
    auto mapped = co_await g.MmapAnon(4 * kPageSize);
    CO_ASSERT_OK(mapped);
    CO_ASSERT_OK(g.Store<uint64_t>(*mapped, mapped->base(), 0xC0FFEE));
    auto v = g.Load<uint64_t>(*mapped, mapped->base());
    CO_ASSERT_OK(v);
    CO_ASSERT_EQ(*v, 0xC0FFEEu);
  });
}

// --- pipes -------------------------------------------------------------------------------------

TEST(Exhaustion, PipeReservationFailureLeavesNoDescriptors) {
  RunOnAllSystems([](Guest& g) -> SimTask<void> {
    const auto open0 = g.uproc().fds->OpenCount();
    g.kernel().fault_injector().Arm(FaultSite::kPipeReserve, FaultPolicy::OneShot());
    auto failed = co_await g.Pipe();
    CO_ASSERT_EQ(failed.code(), Code::kErrNoMem);
    CO_ASSERT_EQ(g.uproc().fds->OpenCount(), open0);

    // Pressure gone (oneshot disarmed itself): same call succeeds and the pipe carries data.
    auto pipe = co_await g.Pipe();
    CO_ASSERT_OK(pipe);
    auto buf = g.Malloc(32);
    CO_ASSERT_OK(buf);
    auto written = co_await g.Write(pipe->second, *buf, 32);
    CO_ASSERT_OK(written);
    auto read = co_await g.Read(pipe->first, *buf, 32);
    CO_ASSERT_OK(read);
    CO_ASSERT_EQ(*read, 32);
  });
}

TEST(Exhaustion, PipeGrowFailureIsAllOrNothingPerChunk) {
  RunOnAllSystems([](Guest& g) -> SimTask<void> {
    auto pipe = co_await g.Pipe();
    CO_ASSERT_OK(pipe);
    const int rfd = pipe->first;
    const int wfd = pipe->second;
    auto buf = g.Malloc(64);
    CO_ASSERT_OK(buf);

    // First chunk fails with nothing staged: ENOMEM, zero bytes visible to the reader.
    g.kernel().fault_injector().Arm(FaultSite::kPipeGrow, FaultPolicy::Nth(1));
    auto failed = co_await g.Write(wfd, *buf, 64);
    CO_ASSERT_EQ(failed.code(), Code::kErrNoMem);
    g.kernel().fault_injector().DisarmAll();

    auto written = co_await g.Write(wfd, *buf, 64);
    CO_ASSERT_OK(written);
    CO_ASSERT_EQ(*written, 64);
    CO_ASSERT_OK(co_await g.Close(wfd));
    // EOF after exactly the successful write's bytes: the failed write leaked nothing in.
    auto first = co_await g.Read(rfd, *buf, 64);
    CO_ASSERT_OK(first);
    CO_ASSERT_EQ(*first, 64);
    auto eof = co_await g.Read(rfd, *buf, 64);
    CO_ASSERT_OK(eof);
    CO_ASSERT_EQ(*eof, 0);
  });
}

TEST(Exhaustion, PipeGrowMidWriteDeliversShortWriteOfWholeChunks) {
  RunOnAllSystems([](Guest& g) -> SimTask<void> {
    auto pipe = co_await g.Pipe();
    CO_ASSERT_OK(pipe);
    const int rfd = pipe->first;
    const int wfd = pipe->second;

    auto child = co_await g.Fork([wfd, rfd](Guest& cg) -> SimTask<void> {
      CO_ASSERT_OK(co_await cg.Close(rfd));
      auto big = cg.Malloc(kPipeCapacity + 4096);
      CO_ASSERT_OK(big);
      // Chunk 1 fills the ring (succeeds); chunk 2, attempted once the parent drains, fails:
      // POSIX short write of the whole chunks already committed, never a torn chunk.
      cg.kernel().fault_injector().Arm(FaultSite::kPipeGrow, FaultPolicy::Nth(2));
      auto written = co_await cg.Write(wfd, *big, kPipeCapacity + 4096);
      cg.kernel().fault_injector().DisarmAll();
      CO_ASSERT_OK(written);
      CO_ASSERT_EQ(*written, static_cast<int64_t>(kPipeCapacity));
      CO_ASSERT_OK(co_await cg.Close(wfd));
      co_await cg.Exit(0);
    });
    CO_ASSERT_OK(child);
    CO_ASSERT_OK(co_await g.Close(wfd));

    auto buf = g.Malloc(kPipeCapacity);
    CO_ASSERT_OK(buf);
    uint64_t total = 0;
    for (;;) {
      auto n = co_await g.Read(rfd, *buf, kPipeCapacity);
      CO_ASSERT_OK(n);
      if (*n == 0) {
        break;  // EOF
      }
      total += static_cast<uint64_t>(*n);
    }
    // The reader sees exactly the short-written bytes — never a torn chunk.
    CO_ASSERT_EQ(total, kPipeCapacity);
    auto waited = co_await g.Wait();
    CO_ASSERT_OK(waited);
    CO_ASSERT_EQ(waited->status, 0);
  });
}

// --- message queues ----------------------------------------------------------------------------

TEST(Exhaustion, MqCreateFailureLeavesNoQueueBehind) {
  RunOnAllSystems([](Guest& g) -> SimTask<void> {
    g.kernel().fault_injector().Arm(FaultSite::kMqReserve, FaultPolicy::OneShot());
    auto failed = co_await g.MqOpen("/mq/exhausted", /*create=*/true);
    CO_ASSERT_EQ(failed.code(), Code::kErrNoMem);
    // No ghost queue was registered under the name.
    auto absent = co_await g.MqOpen("/mq/exhausted", /*create=*/false);
    CO_ASSERT_EQ(absent.code(), Code::kErrNoEnt);

    auto fd = co_await g.MqOpen("/mq/exhausted", /*create=*/true);
    CO_ASSERT_OK(fd);
  });
}

TEST(Exhaustion, MqSendFailureLeavesTheQueueUntouched) {
  RunOnAllSystems([](Guest& g) -> SimTask<void> {
    auto fd = co_await g.MqOpen("/mq/grow", /*create=*/true);
    CO_ASSERT_OK(fd);
    auto msg = g.PlaceString("first");
    CO_ASSERT_OK(msg);
    CO_ASSERT_OK(co_await g.Write(*fd, *msg, 5));

    // A 3 KiB message charges three 1 KiB chunks; the second fails, so nothing is enqueued.
    auto big = g.Malloc(3 * 1024);
    CO_ASSERT_OK(big);
    g.kernel().fault_injector().Arm(FaultSite::kMqGrow, FaultPolicy::Nth(2));
    auto failed = co_await g.Write(*fd, *big, 3 * 1024);
    CO_ASSERT_EQ(failed.code(), Code::kErrNoMem);
    g.kernel().fault_injector().DisarmAll();

    // The queue still holds exactly the pre-failure message, boundaries intact.
    auto buf = g.Malloc(64);
    CO_ASSERT_OK(buf);
    auto n = co_await g.Read(*fd, *buf, 64);
    CO_ASSERT_OK(n);
    CO_ASSERT_EQ(*n, 5);
    CO_ASSERT_OK(co_await g.Write(*fd, *big, 3 * 1024));
  });
}

// --- ramdisk VFS -------------------------------------------------------------------------------

TEST(Exhaustion, VfsGrowthFailureLeavesFileUntouched) {
  RunOnAllSystems([](Guest& g) -> SimTask<void> {
    auto fd = co_await g.Open("/exhausted", kOpenWrite | kOpenRead | kOpenCreate);
    CO_ASSERT_OK(fd);
    auto hello = g.PlaceString("hello");
    CO_ASSERT_OK(hello);
    CO_ASSERT_OK(co_await g.Write(*fd, *hello, 5));

    // 10 KiB of growth is three 4 KiB blocks; the second fails. POSIX disk-full: ENOSPC, and
    // neither the file size nor its contents may have moved.
    auto big = g.Malloc(10 * 1024);
    CO_ASSERT_OK(big);
    g.kernel().fault_injector().Arm(FaultSite::kVfsGrow, FaultPolicy::Nth(2));
    auto failed = co_await g.Write(*fd, *big, 10 * 1024);
    CO_ASSERT_EQ(failed.code(), Code::kErrNoSpc);
    g.kernel().fault_injector().DisarmAll();

    auto size = co_await g.FileSize("/exhausted");
    CO_ASSERT_OK(size);
    CO_ASSERT_EQ(*size, 5u);
    auto sought = co_await g.Seek(*fd, 0, kSeekSet);
    CO_ASSERT_OK(sought);
    auto back = co_await g.Read(*fd, *hello, 5);
    CO_ASSERT_OK(back);
    auto bytes = g.FetchBytes(*hello, 5);
    CO_ASSERT_OK(bytes);
    CO_ASSERT_EQ(std::string(reinterpret_cast<const char*>(bytes->data()), 5), "hello");

    // Disk pressure gone: the same write lands in full.
    auto sought_end = co_await g.Seek(*fd, 0, kSeekEnd);
    CO_ASSERT_OK(sought_end);
    CO_ASSERT_OK(co_await g.Write(*fd, *big, 10 * 1024));
    auto grown = co_await g.FileSize("/exhausted");
    CO_ASSERT_OK(grown);
    CO_ASSERT_EQ(*grown, 5u + 10 * 1024);
  });
}

// --- fork --------------------------------------------------------------------------------------

TEST(Exhaustion, UforkRegionGrantFailureRollsBack) {
  auto kernel = MakeUforkKernel(SmallConfig());
  auto pid = kernel->Spawn(MakeGuestEntry([](Guest& g) -> SimTask<void> {
                             Kernel& k = g.kernel();
                             const uint64_t frames0 = k.machine().frames().frames_in_use();
                             const uint64_t regions0 = k.address_space().Stats().region_count;

                             k.fault_injector().Arm(FaultSite::kRegionGrant,
                                                    FaultPolicy::OneShot());
                             auto failed = co_await g.Fork([](Guest& cg) -> SimTask<void> {
                               co_await cg.Exit(0);
                             });
                             CO_ASSERT_EQ(failed.code(), Code::kErrNoMem);
                             CO_ASSERT_EQ(k.machine().frames().frames_in_use(), frames0);
                             CO_ASSERT_EQ(k.address_space().Stats().region_count, regions0);
                             auto no_child = co_await g.Wait();
                             CO_ASSERT_EQ(no_child.code(), Code::kErrChild);

                             auto child = co_await g.Fork([](Guest& cg) -> SimTask<void> {
                               co_await cg.Exit(0);
                             });
                             CO_ASSERT_OK(child);
                             auto waited = co_await g.Wait();
                             CO_ASSERT_OK(waited);
                             CO_ASSERT_EQ(waited->status, 0);
                           }),
                           "region-oom");
  ASSERT_TRUE(pid.ok());
  kernel->Run();
  EXPECT_EQ(kernel->stats().forks, 1u);
  EXPECT_EQ(kernel->LivePids().size(), 0u);
}

TEST(Exhaustion, ForkMidCopyInjectionRestoresTheParentExactly) {
  // μFork fails during the proactive eager copies; VM-clone fails during the full image copy.
  // Either way the parent must look exactly as before the fork: same frame count, no ghost
  // child, and — the subtle part — no parent PTE left spuriously demoted to CoW (measured by
  // the parent's write taking no resolvable fault afterwards).
  const System cow_systems[] = {
      {"ufork", [](KernelConfig c) { return MakeUforkKernel(c); }},
      {"vmclone", [](KernelConfig c) { return MakeVmCloneKernel(c, VmCloneParams{}); }},
  };
  for (const System& system : cow_systems) {
    SCOPED_TRACE(system.name);
    auto kernel = system.make(SmallConfig());
    auto pid = kernel->Spawn(MakeGuestEntry([](Guest& g) -> SimTask<void> {
                               Kernel& k = g.kernel();
                               auto block = g.Malloc(64);
                               CO_ASSERT_OK(block);
                               CO_ASSERT_OK(g.Store<uint64_t>(*block, block->base(), 7));
                               const uint64_t frames0 = k.machine().frames().frames_in_use();

                               k.fault_injector().Arm(FaultSite::kFrameAlloc,
                                                      FaultPolicy::Nth(2));
                               auto failed = co_await g.Fork([](Guest& cg) -> SimTask<void> {
                                 co_await cg.Exit(0);
                               });
                               CO_ASSERT_EQ(failed.code(), Code::kErrNoMem);
                               k.fault_injector().DisarmAll();
                               CO_ASSERT_EQ(k.machine().frames().frames_in_use(), frames0);
                               auto no_child = co_await g.Wait();
                               CO_ASSERT_EQ(no_child.code(), Code::kErrChild);

                               // No sharer exists, so this write must not fault.
                               const uint64_t cow0 = k.machine().cow_faults();
                               CO_ASSERT_OK(g.Store<uint64_t>(*block, block->base(), 8));
                               CO_ASSERT_EQ(k.machine().cow_faults(), cow0);

                               auto child = co_await g.Fork([](Guest& cg) -> SimTask<void> {
                                 co_await cg.Exit(0);
                               });
                               CO_ASSERT_OK(child);
                               auto waited = co_await g.Wait();
                               CO_ASSERT_OK(waited);
                             }),
                             "fork-oom");
    ASSERT_TRUE(pid.ok());
    kernel->Run();
    EXPECT_EQ(kernel->stats().forks, 1u);
    EXPECT_EQ(kernel->LivePids().size(), 0u) << "no ghost child after the injected failure";
    EXPECT_TRUE(kernel->CheckFrameAccounting().ok());
  }
}

// --- posix_spawn -------------------------------------------------------------------------------

TEST(Exhaustion, SpawnImageMapFailureRollsBack) {
  for (const System& system : kSystems) {
    SCOPED_TRACE(system.name);
    auto kernel = system.make(SmallConfig());
    kernel->RegisterProgram("worker", MakeGuestEntry([](Guest& g) -> SimTask<void> {
                              co_await g.Exit(5);
                            }));
    auto pid = kernel->Spawn(MakeGuestEntry([](Guest& g) -> SimTask<void> {
                               Kernel& k = g.kernel();
                               const uint64_t frames0 = k.machine().frames().frames_in_use();

                               // Fails ten pages into mapping the fresh image.
                               k.fault_injector().Arm(FaultSite::kFrameAlloc,
                                                      FaultPolicy::Nth(10));
                               auto failed = co_await g.SpawnProgram("worker");
                               CO_ASSERT_EQ(failed.code(), Code::kErrNoMem);
                               k.fault_injector().DisarmAll();
                               CO_ASSERT_EQ(k.machine().frames().frames_in_use(), frames0);
                               auto no_child = co_await g.Wait();
                               CO_ASSERT_EQ(no_child.code(), Code::kErrChild);

                               auto child = co_await g.SpawnProgram("worker");
                               CO_ASSERT_OK(child);
                               auto waited = co_await g.Wait();
                               CO_ASSERT_OK(waited);
                               CO_ASSERT_EQ(waited->status, 5);
                             }),
                             "spawn-oom");
    ASSERT_TRUE(pid.ok());
    kernel->Run();
    EXPECT_EQ(kernel->LivePids().size(), 0u);
    EXPECT_TRUE(kernel->CheckFrameAccounting().ok());
  }
}

// --- crash containment (host CHECK -> guest SIGSEGV) -------------------------------------------

TEST(Exhaustion, UnmappedAccessDeliversSigsegvNotAHostAbort) {
  // A wild access to an unmapped page inside the μprocess's own bounds used to trip a host
  // UF_CHECK in the fault resolvers — one buggy guest took the whole simulated machine down.
  // Now it surfaces as kFaultNotMapped, the guest's trap vector raises SIGSEGV, and the
  // default disposition kills only that μprocess (status 128 + 11); the parent just waits.
  RunOnAllSystems([](Guest& g) -> SimTask<void> {
    auto child = co_await g.Fork([](Guest& cg) -> SimTask<void> {
      const uint64_t unmapped =
          cg.base() + cg.layout().mmap_off() + cg.layout().mmap_size() - kPageSize;
      auto load = cg.Load<uint64_t>(cg.ddc(), unmapped);
      CO_ASSERT_TRUE(!load.ok());
      co_await cg.RaiseFault(load.error());
      ADD_FAILURE() << "default SIGSEGV disposition must terminate the μprocess";
    });
    CO_ASSERT_OK(child);
    auto waited = co_await g.Wait();
    CO_ASSERT_OK(waited);
    CO_ASSERT_EQ(waited->status, 128 + kSigSegv);
    // Containment: the parent (and the kernel) carry on.
    auto pid = co_await g.GetPid();
    CO_ASSERT_OK(pid);
    auto mapped = co_await g.MmapAnon(kPageSize);
    CO_ASSERT_OK(mapped);
  });
}

TEST(Exhaustion, SigsegvHandlerLetsTheFaultingProcessRecover) {
  RunOnAllSystems([](Guest& g) -> SimTask<void> {
    auto child = co_await g.Fork([](Guest& cg) -> SimTask<void> {
      bool handled = false;
      CO_ASSERT_OK(co_await cg.Sigaction(
          kSigSegv, [&handled](Guest&, int signal) -> SimTask<void> {
            handled = signal == kSigSegv;
            co_return;
          }));
      const uint64_t unmapped =
          cg.base() + cg.layout().mmap_off() + cg.layout().mmap_size() - kPageSize;
      auto load = cg.Load<uint64_t>(cg.ddc(), unmapped);
      CO_ASSERT_TRUE(!load.ok());
      co_await cg.RaiseFault(load.error());
      // The handler consumed the signal; the μprocess continues and exits normally.
      CO_ASSERT_TRUE(handled);
      co_await cg.Exit(33);
    });
    CO_ASSERT_OK(child);
    auto waited = co_await g.Wait();
    CO_ASSERT_OK(waited);
    CO_ASSERT_EQ(waited->status, 33);
  });
}

TEST(Exhaustion, CowBreakAllocationFailureIsContainedToTheFaultingProcess) {
  // The CoW/CoPA resolvers allocate frames on demand; under memory pressure that allocation
  // fails MID-ACCESS. The error must reach the faulting guest (which reports it as a fault,
  // dying with SIGSEGV), while the parent's copy of the page stays intact and writable.
  const System cow_systems[] = {
      {"ufork", [](KernelConfig c) { return MakeUforkKernel(c); }},
      {"mas", [](KernelConfig c) { return MakeMasKernel(c, MasParams{}); }},
  };
  for (const System& system : cow_systems) {
    SCOPED_TRACE(system.name);
    auto kernel = system.make(SmallConfig());
    auto pid = kernel->Spawn(MakeGuestEntry([](Guest& g) -> SimTask<void> {
                               auto block = g.Malloc(64);
                               CO_ASSERT_OK(block);
                               CO_ASSERT_OK(g.Store<uint64_t>(*block, block->base(), 1));
                               const Capability shared = *block;

                               auto child =
                                   co_await g.Fork([shared](Guest& cg) -> SimTask<void> {
                                     cg.kernel().fault_injector().Arm(
                                         FaultSite::kFrameAlloc, FaultPolicy::AfterBudget(0));
                                     auto store =
                                         cg.Store<uint64_t>(shared, shared.base(), 99);
                                     cg.kernel().fault_injector().DisarmAll();
                                     CO_ASSERT_TRUE(!store.ok());
                                     co_await cg.RaiseFault(store.error());
                                   });
                               CO_ASSERT_OK(child);
                               auto waited = co_await g.Wait();
                               CO_ASSERT_OK(waited);
                               CO_ASSERT_EQ(waited->status, 128 + kSigSegv);

                               // The parent's view survived the child's failed CoW break.
                               auto v = g.Load<uint64_t>(shared, shared.base());
                               CO_ASSERT_OK(v);
                               CO_ASSERT_EQ(*v, 1u);
                               CO_ASSERT_OK(g.Store<uint64_t>(shared, shared.base(), 2));
                             }),
                             "cow-oom");
    ASSERT_TRUE(pid.ok());
    kernel->Run();
    EXPECT_EQ(kernel->LivePids().size(), 0u);
    EXPECT_TRUE(kernel->CheckFrameAccounting().ok());
  }
}

// --- fault-around batch allocation (window > 1) ------------------------------------------------

// Fixed 4-page windows so a single CoW store over a fork-shared MmapAnon area drives the
// batched kFrameBatch allocation path deterministically (adaptive growth needs a warm-up
// storm; fixed windows do not).
KernelConfig WindowedConfig() {
  KernelConfig config = SmallConfig();
  config.fault_around.max_window = 4;
  config.fault_around.adaptive = false;
  return config;
}

const System kCowWindowSystems[] = {
    {"ufork", [](KernelConfig c) { return MakeUforkKernel(c); }},
    {"mas", [](KernelConfig c) { return MakeMasKernel(c, MasParams{}); }},
};

TEST(Exhaustion, MmapCowWindowBatchFailureDegradesToSinglePage) {
  // The shared-window resolvers allocate the whole fault-around batch up front; if physical
  // memory cannot cover it they must fall back to the single faulting page — the access
  // SUCCEEDS, just without speculation — and the abandoned batch must leak nothing.
  for (const System& system : kCowWindowSystems) {
    SCOPED_TRACE(system.name);
    auto kernel = system.make(WindowedConfig());
    auto pid = kernel->Spawn(
        MakeGuestEntry([](Guest& g) -> SimTask<void> {
          auto area = co_await g.MmapAnon(4 * kPageSize);
          CO_ASSERT_OK(area);
          for (uint64_t i = 0; i < 4; ++i) {
            CO_ASSERT_OK(g.Store<uint64_t>(*area, area->base() + i * kPageSize, 0xA0 + i));
          }
          const Capability shared = *area;
          CO_ASSERT_OK(g.GotStore(kGotSlotFirstUser, shared));

          auto child = co_await g.Fork([](Guest& cg) -> SimTask<void> {
            // The GOT hands the child its OWN (relocated) view of the area — writing through
            // the parent's capability would architecturally target the parent's pages.
            auto mine = cg.GotLoad(kGotSlotFirstUser);
            CO_ASSERT_OK(mine);
            Kernel& k = cg.kernel();
            const uint64_t copied0 = k.stats().pages_copied_on_fault;
            // The 4-page batch fails once; the degraded single-page retry succeeds.
            k.fault_injector().Arm(FaultSite::kFrameBatch, FaultPolicy::Nth(1));
            CO_ASSERT_OK(cg.Store<uint64_t>(*mine, mine->base(), 0xB0));
            k.fault_injector().DisarmAll();
            CO_ASSERT_EQ(k.stats().pages_copied_on_fault, copied0 + 1);

            // Pressure gone: the next fault window batches the remaining three pages.
            CO_ASSERT_OK(cg.Store<uint64_t>(*mine, mine->base() + kPageSize, 0xB1));
            CO_ASSERT_EQ(k.stats().pages_copied_on_fault, copied0 + 4);
            for (uint64_t i = 2; i < 4; ++i) {
              auto inherited = cg.Load<uint64_t>(*mine, mine->base() + i * kPageSize);
              CO_ASSERT_OK(inherited);
              CO_ASSERT_EQ(*inherited, 0xA0 + i);
            }
            co_await cg.Exit(0);
          });
          CO_ASSERT_OK(child);
          auto waited = co_await g.Wait();
          CO_ASSERT_OK(waited);
          CO_ASSERT_EQ(waited->status, 0);

          // The parent's view never moved, and its pages are still writable.
          for (uint64_t i = 0; i < 4; ++i) {
            auto v = g.Load<uint64_t>(shared, shared.base() + i * kPageSize);
            CO_ASSERT_OK(v);
            CO_ASSERT_EQ(*v, 0xA0 + i);
          }
          CO_ASSERT_OK(g.Store<uint64_t>(shared, shared.base(), 0xC0));
        }),
        "batch-oom");
    ASSERT_TRUE(pid.ok());
    kernel->Run();
    EXPECT_EQ(kernel->LivePids().size(), 0u);
    EXPECT_TRUE(kernel->CheckFrameAccounting().ok());
  }
}

TEST(Exhaustion, MmapCowWindowExhaustionIsContainedToTheFaultingProcess) {
  // Persistent pressure: the batch AND its single-page fallback fail. The error must surface
  // to the faulting guest (SIGSEGV containment), with no frame leaked by either attempt and
  // the parent's copies intact.
  for (const System& system : kCowWindowSystems) {
    SCOPED_TRACE(system.name);
    auto kernel = system.make(WindowedConfig());
    auto pid = kernel->Spawn(
        MakeGuestEntry([](Guest& g) -> SimTask<void> {
          auto area = co_await g.MmapAnon(4 * kPageSize);
          CO_ASSERT_OK(area);
          for (uint64_t i = 0; i < 4; ++i) {
            CO_ASSERT_OK(g.Store<uint64_t>(*area, area->base() + i * kPageSize, 0xA0 + i));
          }
          const Capability shared = *area;
          CO_ASSERT_OK(g.GotStore(kGotSlotFirstUser, shared));

          auto child = co_await g.Fork([](Guest& cg) -> SimTask<void> {
            auto mine = cg.GotLoad(kGotSlotFirstUser);
            CO_ASSERT_OK(mine);
            Kernel& k = cg.kernel();
            const uint64_t frames0 = k.machine().frames().frames_in_use();
            k.fault_injector().Arm(FaultSite::kFrameBatch, FaultPolicy::AfterBudget(0));
            auto store = cg.Store<uint64_t>(*mine, mine->base(), 0xB0);
            k.fault_injector().DisarmAll();
            CO_ASSERT_TRUE(!store.ok());
            CO_ASSERT_EQ(k.machine().frames().frames_in_use(), frames0);
            co_await cg.RaiseFault(store.error());
            ADD_FAILURE() << "default SIGSEGV disposition must terminate the μprocess";
          });
          CO_ASSERT_OK(child);
          auto waited = co_await g.Wait();
          CO_ASSERT_OK(waited);
          CO_ASSERT_EQ(waited->status, 128 + kSigSegv);

          for (uint64_t i = 0; i < 4; ++i) {
            auto v = g.Load<uint64_t>(shared, shared.base() + i * kPageSize);
            CO_ASSERT_OK(v);
            CO_ASSERT_EQ(*v, 0xA0 + i);
          }
          CO_ASSERT_OK(g.Store<uint64_t>(shared, shared.base(), 0xC0));
        }),
        "batch-contained");
    ASSERT_TRUE(pid.ok());
    kernel->Run();
    EXPECT_EQ(kernel->LivePids().size(), 0u);
    EXPECT_TRUE(kernel->CheckFrameAccounting().ok());
  }
}

}  // namespace
}  // namespace ufork
