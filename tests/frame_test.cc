// Tests for tagged physical frames: tag-clear-on-overwrite (the invariant the fork relocation
// scan relies on), capability store/load round trips, and frame copies.
#include "src/mem/frame.h"

#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "src/base/rng.h"
#include "src/mem/frame_allocator.h"

namespace ufork {
namespace {

Capability TestCap(uint64_t addr) {
  return Capability::Root(0x1000, 0x100000, kPermAllData).WithAddress(addr);
}

std::span<const std::byte> BytesOf(const uint64_t& v) {
  return std::as_bytes(std::span(&v, 1));
}

TEST(Frame, DataRoundTrip) {
  Frame f;
  const uint64_t v = 0x1122334455667788ULL;
  f.Write(40, BytesOf(v));
  uint64_t out = 0;
  f.Read(40, std::as_writable_bytes(std::span(&out, 1)));
  EXPECT_EQ(out, v);
}

TEST(Frame, CapStoreLoadRoundTrip) {
  Frame f;
  const Capability c = TestCap(0x2040);
  f.StoreCap(32, c);
  EXPECT_TRUE(f.TagAt(32));
  const Capability loaded = f.LoadCap(32);
  EXPECT_TRUE(loaded.IdenticalTo(c));
}

TEST(Frame, IntegerViewOfTaggedGranuleIsCursor) {
  Frame f;
  f.StoreCap(64, TestCap(0xabcd));
  uint64_t low = 0;
  f.Read(64, std::as_writable_bytes(std::span(&low, 1)));
  EXPECT_EQ(low, 0xabcdu);
}

TEST(Frame, DataWriteClearsOverlappingTag) {
  Frame f;
  f.StoreCap(16, TestCap(0x2000));
  // Overwrite one byte inside the granule: the tag must drop (pointer forgery prevention).
  const uint8_t b = 0xff;
  f.Write(20, std::as_bytes(std::span(&b, 1)));
  EXPECT_FALSE(f.TagAt(16));
  // The loaded value is now an integer, not a capability.
  EXPECT_FALSE(f.LoadCap(16).tag());
}

TEST(Frame, DataWriteSpanningGranulesClearsAllTouchedTags) {
  Frame f;
  f.StoreCap(0, TestCap(0x2000));
  f.StoreCap(16, TestCap(0x3000));
  f.StoreCap(32, TestCap(0x4000));
  std::array<std::byte, 20> blob{};
  f.Write(8, blob);  // touches granules 0 and 1, not 2
  EXPECT_FALSE(f.TagAt(0));
  EXPECT_FALSE(f.TagAt(16));
  EXPECT_TRUE(f.TagAt(32));
}

TEST(Frame, UntaggedCapStoreClearsTag) {
  Frame f;
  f.StoreCap(16, TestCap(0x2000));
  f.StoreCap(16, Capability::Integer(99));
  EXPECT_FALSE(f.TagAt(16));
  EXPECT_EQ(f.LoadCap(16).address(), 99u);
}

TEST(Frame, FillClearsTags) {
  Frame f;
  f.StoreCap(128, TestCap(0x2000));
  f.Fill(0, kPageSize, std::byte{0});
  EXPECT_FALSE(f.TagAt(128));
  EXPECT_EQ(f.CountTags(), 0u);
}

TEST(Frame, CopyFromCarriesDataAndTags) {
  Frame a;
  a.StoreCap(48, TestCap(0x9000));
  const uint64_t v = 42;
  a.Write(1024, BytesOf(v));
  Frame b;
  b.CopyFrom(a);
  EXPECT_TRUE(b.TagAt(48));
  EXPECT_TRUE(b.LoadCap(48).IdenticalTo(a.LoadCap(48)));
  uint64_t out = 0;
  b.Read(1024, std::as_writable_bytes(std::span(&out, 1)));
  EXPECT_EQ(out, 42u);
}

TEST(Frame, ForEachTaggedCapVisitsInAddressOrderAndRewrites) {
  Frame f;
  f.StoreCap(96, TestCap(0x9600));
  f.StoreCap(16, TestCap(0x1600));
  f.StoreCap(240, TestCap(0x2400));
  std::vector<uint64_t> offsets;
  f.ForEachTaggedCap([&](uint64_t off, Capability& cap) {
    offsets.push_back(off);
    cap = cap.WithAddress(cap.address() + 0x10);
  });
  EXPECT_EQ(offsets, (std::vector<uint64_t>{16, 96, 240}));
  // Rewrites are visible through both the capability view and the integer view.
  EXPECT_EQ(f.LoadCap(16).address(), 0x1610u);
  uint64_t raw = 0;
  f.Read(96, std::as_writable_bytes(std::span(&raw, 1)));
  EXPECT_EQ(raw, 0x9610u);
}

TEST(Frame, CountTagsMatchesStores) {
  Frame f;
  Rng rng(5);
  uint64_t expected = 0;
  std::array<bool, kGranulesPerPage> tagged{};
  for (int i = 0; i < 300; ++i) {
    const uint64_t g = rng.NextBelow(kGranulesPerPage);
    if (!tagged[g]) {
      tagged[g] = true;
      ++expected;
    }
    f.StoreCap(g * kCapSize, TestCap(0x2000 + g));
  }
  EXPECT_EQ(f.CountTags(), expected);
}

TEST(Frame, HasTagsDropsWhenLastTagClearedByWrite) {
  Frame f;
  f.StoreCap(160, TestCap(0x5000));
  EXPECT_TRUE(f.HasTags());
  const uint32_t v = 0xdeadbeef;
  f.Write(164, std::as_bytes(std::span(&v, 1)));  // clears the only tag
  EXPECT_FALSE(f.HasTags());
  EXPECT_EQ(f.CountTags(), 0u);
}

TEST(Frame, HasTagsDropsWhenLastTagClearedByUntaggedStore) {
  Frame f;
  f.StoreCap(2032, TestCap(0x5000));
  EXPECT_TRUE(f.HasTags());
  f.StoreCap(2032, Capability::Integer(0));
  EXPECT_FALSE(f.HasTags());
}

TEST(Frame, HasTagsDropsWhenLastTagClearedByFill) {
  Frame f;
  f.StoreCap(0, TestCap(0x5000));
  f.StoreCap(kPageSize - kCapSize, TestCap(0x6000));
  EXPECT_TRUE(f.HasTags());
  f.Fill(0, kPageSize, std::byte{0xaa});
  EXPECT_FALSE(f.HasTags());
}

TEST(Frame, LoadCapIntegerFallbackReadsRawBytes) {
  Frame f;
  const uint64_t v = 0x0123456789abcdefULL;
  f.Write(512, BytesOf(v));
  const Capability c = f.LoadCap(512);
  EXPECT_FALSE(c.tag());
  EXPECT_EQ(c.address(), v);
}

TEST(Frame, CopyFromFullyTaggedPage) {
  Frame a;
  for (uint64_t g = 0; g < kGranulesPerPage; ++g) {
    a.StoreCap(g * kCapSize, TestCap(0x2000 + g * kCapSize));
  }
  EXPECT_EQ(a.CountTags(), kGranulesPerPage);
  Frame b;
  b.CopyFrom(a);
  EXPECT_EQ(b.CountTags(), kGranulesPerPage);
  for (uint64_t g = 0; g < kGranulesPerPage; ++g) {
    EXPECT_TRUE(b.LoadCap(g * kCapSize).IdenticalTo(a.LoadCap(g * kCapSize)));
  }
}

TEST(Frame, CopyFromTagFreePageDropsDestinationTags) {
  Frame dst;
  dst.StoreCap(32, TestCap(0x2000));
  dst.StoreCap(4064, TestCap(0x3000));
  Frame src;
  const uint64_t v = 0x5151;
  src.Write(32, BytesOf(v));
  dst.CopyFrom(src);
  EXPECT_FALSE(dst.HasTags());
  EXPECT_EQ(dst.CountTags(), 0u);
  EXPECT_FALSE(dst.LoadCap(32).tag());
  EXPECT_EQ(dst.LoadCap(32).address(), v);
}

TEST(Frame, ForEachTaggedCapAcrossBitmapWordBoundaries) {
  // Granules 0, 63, 64, 127, 128, 191, 192, 255 sit on every 64-bit word edge of the bitmap.
  Frame f;
  const std::vector<uint64_t> granules = {255, 0, 128, 63, 192, 64, 191, 127};
  for (uint64_t g : granules) {
    f.StoreCap(g * kCapSize, TestCap(0x2000 + g));
  }
  std::vector<uint64_t> offsets;
  f.ForEachTaggedCap([&](uint64_t off, Capability& cap) {
    offsets.push_back(off);
    cap = cap.WithAddress(cap.address() + 1);
  });
  std::vector<uint64_t> expected;
  for (uint64_t g : {0, 63, 64, 127, 128, 191, 192, 255}) {
    expected.push_back(g * kCapSize);
  }
  EXPECT_EQ(offsets, expected);
  for (uint64_t g : granules) {
    EXPECT_EQ(f.LoadCap(g * kCapSize).address(), 0x2000 + g + 1);
  }
}

// Naive reference model of the frame's tagged-memory semantics: a byte array plus a granule ->
// capability map. The randomized differential test below drives both implementations with the
// same operation stream and demands identical observable state.
class RefFrame {
 public:
  RefFrame() { data_.fill(std::byte{0}); }

  void Write(uint64_t off, std::span<const std::byte> in) {
    std::memcpy(data_.data() + off, in.data(), in.size());
    ClearRange(off, in.size());
  }

  void Fill(uint64_t off, uint64_t size, std::byte v) {
    std::memset(data_.data() + off, static_cast<int>(v), size);
    ClearRange(off, size);
  }

  void StoreCap(uint64_t off, const Capability& cap) {
    const uint64_t cursor = cap.address();
    std::memcpy(data_.data() + off, &cursor, sizeof(cursor));
    std::memset(data_.data() + off + 8, 0, 8);
    if (cap.tag()) {
      caps_[off / kCapSize] = cap;
    } else {
      caps_.erase(off / kCapSize);
    }
  }

  bool TagAt(uint64_t off) const { return caps_.count(off / kCapSize) > 0; }

  Capability LoadCap(uint64_t off) const {
    auto it = caps_.find(off / kCapSize);
    if (it != caps_.end()) {
      return it->second;
    }
    uint64_t cursor = 0;
    std::memcpy(&cursor, data_.data() + off, sizeof(cursor));
    return Capability::Integer(cursor);
  }

  uint64_t CountTags() const { return caps_.size(); }

  template <typename Fn>
  void ForEachTaggedCap(Fn&& fn) {
    for (auto& [granule, cap] : caps_) {  // std::map iterates in granule order
      const uint64_t off = granule * kCapSize;
      fn(off, cap);
      const uint64_t cursor = cap.address();
      std::memcpy(data_.data() + off, &cursor, sizeof(cursor));
    }
  }

  const std::byte* raw() const { return data_.data(); }

 private:
  void ClearRange(uint64_t off, uint64_t size) {
    if (size == 0) {
      return;
    }
    const uint64_t first = off / kCapSize;
    const uint64_t last = (off + size - 1) / kCapSize;
    for (uint64_t g = first; g <= last; ++g) {
      caps_.erase(g);
    }
  }

  std::array<std::byte, kPageSize> data_;
  std::map<uint64_t, Capability> caps_;
};

void ExpectSameState(const Frame& f, const RefFrame& ref) {
  ASSERT_EQ(f.CountTags(), ref.CountTags());
  ASSERT_EQ(std::memcmp(f.raw(), ref.raw(), kPageSize), 0);
  for (uint64_t g = 0; g < kGranulesPerPage; ++g) {
    const uint64_t off = g * kCapSize;
    ASSERT_EQ(f.TagAt(off), ref.TagAt(off)) << "granule " << g;
    ASSERT_TRUE(f.LoadCap(off).IdenticalTo(ref.LoadCap(off))) << "granule " << g;
  }
}

TEST(Frame, RandomizedDifferentialAgainstMapReference) {
  Frame f;
  RefFrame ref;
  Rng rng(0xf00d);
  for (int iter = 0; iter < 3000; ++iter) {
    switch (rng.NextBelow(6)) {
      case 0: {  // tagged capability store
        const uint64_t off = rng.NextBelow(kGranulesPerPage) * kCapSize;
        const Capability c = TestCap(0x1000 + rng.NextBelow(0xff000));
        f.StoreCap(off, c);
        ref.StoreCap(off, c);
        break;
      }
      case 1: {  // untagged (integer) store
        const uint64_t off = rng.NextBelow(kGranulesPerPage) * kCapSize;
        const Capability c = Capability::Integer(rng.NextU64());
        f.StoreCap(off, c);
        ref.StoreCap(off, c);
        break;
      }
      case 2: {  // data write of 1..64 random bytes
        const uint64_t len = 1 + rng.NextBelow(64);
        const uint64_t off = rng.NextBelow(kPageSize - len + 1);
        std::array<std::byte, 64> buf;
        for (uint64_t i = 0; i < len; ++i) {
          buf[i] = static_cast<std::byte>(rng.NextBelow(256));
        }
        f.Write(off, std::span(buf).first(len));
        ref.Write(off, std::span(buf).first(len));
        break;
      }
      case 3: {  // fill of 0..512 bytes
        const uint64_t len = rng.NextBelow(513);
        const uint64_t off = rng.NextBelow(kPageSize - len + 1);
        const auto v = static_cast<std::byte>(rng.NextBelow(256));
        f.Fill(off, len, v);
        ref.Fill(off, len, v);
        break;
      }
      case 4: {  // relocation-style in-place rewrite of every tagged granule
        const uint64_t delta = rng.NextBelow(256);
        auto rewrite = [&](uint64_t /*off*/, Capability& cap) {
          cap = cap.WithAddress(cap.address() + delta);
        };
        f.ForEachTaggedCap(rewrite);
        ref.ForEachTaggedCap(rewrite);
        break;
      }
      case 5: {  // CopyFrom round trip through a scratch frame
        Frame scratch;
        scratch.StoreCap(0, TestCap(0x7777));  // pre-dirty the destination
        scratch.CopyFrom(f);
        f.CopyFrom(scratch);
        break;
      }
    }
    if (iter % 200 == 0) {
      ExpectSameState(f, ref);
    }
  }
  ExpectSameState(f, ref);
  // The differential state also survives one final copy into a dirty destination.
  Frame copy;
  copy.StoreCap(128, TestCap(0x4000));
  copy.CopyFrom(f);
  ExpectSameState(copy, ref);
}

// --- FrameAllocator ----------------------------------------------------------------------------

TEST(FrameAllocator, AllocateReleaseReuse) {
  FrameAllocator alloc(4);
  auto a = alloc.Allocate();
  auto b = alloc.Allocate();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(alloc.frames_in_use(), 2u);
  alloc.Release(*a);
  EXPECT_EQ(alloc.frames_in_use(), 1u);
  auto c = alloc.Allocate();
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, *a);  // slot reused
}

TEST(FrameAllocator, ReusedFrameIsZeroedAndUntagged) {
  FrameAllocator alloc(2);
  auto a = alloc.Allocate();
  ASSERT_TRUE(a.ok());
  alloc.frame(*a).StoreCap(0, TestCap(0x2000));
  const uint64_t v = 7;
  alloc.frame(*a).Write(100, std::as_bytes(std::span(&v, 1)));
  alloc.Release(*a);
  auto b = alloc.Allocate();
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(alloc.frame(*b).CountTags(), 0u);
  uint64_t out = 1;
  alloc.frame(*b).Read(100, std::as_writable_bytes(std::span(&out, 1)));
  EXPECT_EQ(out, 0u);
}

TEST(FrameAllocator, AllocateForCopyThenCopyFromMatchesSource) {
  FrameAllocator alloc(4);
  auto src = alloc.Allocate();
  ASSERT_TRUE(src.ok());
  alloc.frame(*src).StoreCap(48, TestCap(0x9000));
  const uint64_t v = 0x42;
  alloc.frame(*src).Write(1000, std::as_bytes(std::span(&v, 1)));
  // Dirty a frame with data and tags, release it, then reallocate via the copy path: the
  // recycled frame has unspecified contents, but CopyFrom must fully overwrite them.
  auto scratch = alloc.Allocate();
  ASSERT_TRUE(scratch.ok());
  alloc.frame(*scratch).StoreCap(0, TestCap(0x8000));
  alloc.frame(*scratch).Fill(0, kPageSize, std::byte{0xee});
  alloc.Release(*scratch);
  auto dst = alloc.AllocateForCopy();
  ASSERT_TRUE(dst.ok());
  EXPECT_EQ(*dst, *scratch);  // recycled slot
  alloc.frame(*dst).CopyFrom(alloc.frame(*src));
  EXPECT_EQ(alloc.frame(*dst).CountTags(), 1u);
  EXPECT_TRUE(alloc.frame(*dst).LoadCap(48).IdenticalTo(alloc.frame(*src).LoadCap(48)));
  EXPECT_EQ(std::memcmp(alloc.frame(*dst).raw(), alloc.frame(*src).raw(), kPageSize), 0);
}

TEST(FrameAllocator, AllocateAfterForCopyStillZeroes) {
  FrameAllocator alloc(2);
  auto a = alloc.AllocateForCopy();
  ASSERT_TRUE(a.ok());
  alloc.frame(*a).StoreCap(0, TestCap(0x2000));
  alloc.Release(*a);
  auto b = alloc.Allocate();  // plain Allocate must still hand out a zeroed, tag-free frame
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*b, *a);
  EXPECT_EQ(alloc.frame(*b).CountTags(), 0u);
  uint64_t out = 1;
  alloc.frame(*b).Read(0, std::as_writable_bytes(std::span(&out, 1)));
  EXPECT_EQ(out, 0u);
}

TEST(FrameAllocator, RefcountKeepsFrameAlive) {
  FrameAllocator alloc(2);
  auto a = alloc.Allocate();
  ASSERT_TRUE(a.ok());
  alloc.AddRef(*a);
  EXPECT_EQ(alloc.RefCount(*a), 2u);
  alloc.Release(*a);
  EXPECT_TRUE(alloc.IsLive(*a));
  alloc.Release(*a);
  EXPECT_FALSE(alloc.IsLive(*a));
}

TEST(FrameAllocator, ExhaustionReturnsNoMem) {
  FrameAllocator alloc(2);
  ASSERT_TRUE(alloc.Allocate().ok());
  ASSERT_TRUE(alloc.Allocate().ok());
  EXPECT_EQ(alloc.Allocate().code(), Code::kErrNoMem);
}

TEST(FrameAllocator, PeakTracksHighWaterMark) {
  FrameAllocator alloc(8);
  std::vector<FrameId> ids;
  for (int i = 0; i < 5; ++i) {
    ids.push_back(alloc.Allocate().value());
  }
  for (FrameId id : ids) {
    alloc.Release(id);
  }
  EXPECT_EQ(alloc.peak_frames(), 5u);
  EXPECT_EQ(alloc.frames_in_use(), 0u);
}

}  // namespace
}  // namespace ufork
