// Tests for tagged physical frames: tag-clear-on-overwrite (the invariant the fork relocation
// scan relies on), capability store/load round trips, and frame copies.
#include "src/mem/frame.h"

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/mem/frame_allocator.h"

namespace ufork {
namespace {

Capability TestCap(uint64_t addr) {
  return Capability::Root(0x1000, 0x100000, kPermAllData).WithAddress(addr);
}

std::span<const std::byte> BytesOf(const uint64_t& v) {
  return std::as_bytes(std::span(&v, 1));
}

TEST(Frame, DataRoundTrip) {
  Frame f;
  const uint64_t v = 0x1122334455667788ULL;
  f.Write(40, BytesOf(v));
  uint64_t out = 0;
  f.Read(40, std::as_writable_bytes(std::span(&out, 1)));
  EXPECT_EQ(out, v);
}

TEST(Frame, CapStoreLoadRoundTrip) {
  Frame f;
  const Capability c = TestCap(0x2040);
  f.StoreCap(32, c);
  EXPECT_TRUE(f.TagAt(32));
  const Capability loaded = f.LoadCap(32);
  EXPECT_TRUE(loaded.IdenticalTo(c));
}

TEST(Frame, IntegerViewOfTaggedGranuleIsCursor) {
  Frame f;
  f.StoreCap(64, TestCap(0xabcd));
  uint64_t low = 0;
  f.Read(64, std::as_writable_bytes(std::span(&low, 1)));
  EXPECT_EQ(low, 0xabcdu);
}

TEST(Frame, DataWriteClearsOverlappingTag) {
  Frame f;
  f.StoreCap(16, TestCap(0x2000));
  // Overwrite one byte inside the granule: the tag must drop (pointer forgery prevention).
  const uint8_t b = 0xff;
  f.Write(20, std::as_bytes(std::span(&b, 1)));
  EXPECT_FALSE(f.TagAt(16));
  // The loaded value is now an integer, not a capability.
  EXPECT_FALSE(f.LoadCap(16).tag());
}

TEST(Frame, DataWriteSpanningGranulesClearsAllTouchedTags) {
  Frame f;
  f.StoreCap(0, TestCap(0x2000));
  f.StoreCap(16, TestCap(0x3000));
  f.StoreCap(32, TestCap(0x4000));
  std::array<std::byte, 20> blob{};
  f.Write(8, blob);  // touches granules 0 and 1, not 2
  EXPECT_FALSE(f.TagAt(0));
  EXPECT_FALSE(f.TagAt(16));
  EXPECT_TRUE(f.TagAt(32));
}

TEST(Frame, UntaggedCapStoreClearsTag) {
  Frame f;
  f.StoreCap(16, TestCap(0x2000));
  f.StoreCap(16, Capability::Integer(99));
  EXPECT_FALSE(f.TagAt(16));
  EXPECT_EQ(f.LoadCap(16).address(), 99u);
}

TEST(Frame, FillClearsTags) {
  Frame f;
  f.StoreCap(128, TestCap(0x2000));
  f.Fill(0, kPageSize, std::byte{0});
  EXPECT_FALSE(f.TagAt(128));
  EXPECT_EQ(f.CountTags(), 0u);
}

TEST(Frame, CopyFromCarriesDataAndTags) {
  Frame a;
  a.StoreCap(48, TestCap(0x9000));
  const uint64_t v = 42;
  a.Write(1024, BytesOf(v));
  Frame b;
  b.CopyFrom(a);
  EXPECT_TRUE(b.TagAt(48));
  EXPECT_TRUE(b.LoadCap(48).IdenticalTo(a.LoadCap(48)));
  uint64_t out = 0;
  b.Read(1024, std::as_writable_bytes(std::span(&out, 1)));
  EXPECT_EQ(out, 42u);
}

TEST(Frame, ForEachTaggedCapVisitsInAddressOrderAndRewrites) {
  Frame f;
  f.StoreCap(96, TestCap(0x9600));
  f.StoreCap(16, TestCap(0x1600));
  f.StoreCap(240, TestCap(0x2400));
  std::vector<uint64_t> offsets;
  f.ForEachTaggedCap([&](uint64_t off, Capability& cap) {
    offsets.push_back(off);
    cap = cap.WithAddress(cap.address() + 0x10);
  });
  EXPECT_EQ(offsets, (std::vector<uint64_t>{16, 96, 240}));
  // Rewrites are visible through both the capability view and the integer view.
  EXPECT_EQ(f.LoadCap(16).address(), 0x1610u);
  uint64_t raw = 0;
  f.Read(96, std::as_writable_bytes(std::span(&raw, 1)));
  EXPECT_EQ(raw, 0x9610u);
}

TEST(Frame, CountTagsMatchesStores) {
  Frame f;
  Rng rng(5);
  uint64_t expected = 0;
  std::array<bool, kGranulesPerPage> tagged{};
  for (int i = 0; i < 300; ++i) {
    const uint64_t g = rng.NextBelow(kGranulesPerPage);
    if (!tagged[g]) {
      tagged[g] = true;
      ++expected;
    }
    f.StoreCap(g * kCapSize, TestCap(0x2000 + g));
  }
  EXPECT_EQ(f.CountTags(), expected);
}

// --- FrameAllocator ----------------------------------------------------------------------------

TEST(FrameAllocator, AllocateReleaseReuse) {
  FrameAllocator alloc(4);
  auto a = alloc.Allocate();
  auto b = alloc.Allocate();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(alloc.frames_in_use(), 2u);
  alloc.Release(*a);
  EXPECT_EQ(alloc.frames_in_use(), 1u);
  auto c = alloc.Allocate();
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, *a);  // slot reused
}

TEST(FrameAllocator, ReusedFrameIsZeroedAndUntagged) {
  FrameAllocator alloc(2);
  auto a = alloc.Allocate();
  ASSERT_TRUE(a.ok());
  alloc.frame(*a).StoreCap(0, TestCap(0x2000));
  const uint64_t v = 7;
  alloc.frame(*a).Write(100, std::as_bytes(std::span(&v, 1)));
  alloc.Release(*a);
  auto b = alloc.Allocate();
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(alloc.frame(*b).CountTags(), 0u);
  uint64_t out = 1;
  alloc.frame(*b).Read(100, std::as_writable_bytes(std::span(&out, 1)));
  EXPECT_EQ(out, 0u);
}

TEST(FrameAllocator, RefcountKeepsFrameAlive) {
  FrameAllocator alloc(2);
  auto a = alloc.Allocate();
  ASSERT_TRUE(a.ok());
  alloc.AddRef(*a);
  EXPECT_EQ(alloc.RefCount(*a), 2u);
  alloc.Release(*a);
  EXPECT_TRUE(alloc.IsLive(*a));
  alloc.Release(*a);
  EXPECT_FALSE(alloc.IsLive(*a));
}

TEST(FrameAllocator, ExhaustionReturnsNoMem) {
  FrameAllocator alloc(2);
  ASSERT_TRUE(alloc.Allocate().ok());
  ASSERT_TRUE(alloc.Allocate().ok());
  EXPECT_EQ(alloc.Allocate().code(), Code::kErrNoMem);
}

TEST(FrameAllocator, PeakTracksHighWaterMark) {
  FrameAllocator alloc(8);
  std::vector<FrameId> ids;
  for (int i = 0; i < 5; ++i) {
    ids.push_back(alloc.Allocate().value());
  }
  for (FrameId id : ids) {
    alloc.Release(id);
  }
  EXPECT_EQ(alloc.peak_frames(), 5u);
  EXPECT_EQ(alloc.frames_in_use(), 0u);
}

}  // namespace
}  // namespace ufork
