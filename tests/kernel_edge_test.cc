// Edge-case interactions between subsystems: mmap across fork, exec with live children,
// kill-while-blocked resource cleanup, and fd inheritance of message queues.
#include <gtest/gtest.h>

#include "src/baseline/system.h"
#include "src/guest/guest.h"
#include "tests/guest_test_util.h"

namespace ufork {
namespace {

KernelConfig EdgeConfig() {
  KernelConfig config;
  config.layout.heap_size = 1 * kMiB;
  config.layout.mmap_size = 512 * kKiB;
  return config;
}

TEST(KernelEdge, MmapMemoryIsCowSharedAndRelocatedAcrossFork) {
  auto kernel = MakeUforkKernel(EdgeConfig());
  auto pid = kernel->Spawn(
      MakeGuestEntry([](Guest& g) -> SimTask<void> {
        auto window = co_await g.MmapAnon(8 * kKiB);
        CO_ASSERT_OK(window);
        // Plant data AND a capability in the mmap'd area.
        CO_ASSERT_OK(g.Store<uint64_t>(*window, window->base(), 555));
        auto block = g.Malloc(32);
        CO_ASSERT_OK(block);
        CO_ASSERT_OK(g.StoreAt<uint64_t>(*block, 0, 666));
        CO_ASSERT_OK(g.StoreCap(*window, window->base() + 16, *block));
        const uint64_t window_off = window->base() - g.base();
        auto child = co_await g.Fork([window_off](Guest& cg) -> SimTask<void> {
          const uint64_t child_window = cg.base() + window_off;
          auto v = cg.Load<uint64_t>(cg.ddc(), child_window);
          CO_ASSERT_OK(v);
          EXPECT_EQ(*v, 555u);
          // The planted capability relocates into the child (CoPA on the mmap page).
          auto cap = cg.LoadCap(cg.ddc(), child_window + 16);
          CO_ASSERT_OK(cap);
          CO_ASSERT_TRUE(cap->tag());
          EXPECT_GE(cap->base(), cg.base());
          auto inner = cg.LoadAt<uint64_t>(*cap, 0);
          CO_ASSERT_OK(inner);
          EXPECT_EQ(*inner, 666u);
          // The child can keep mmapping: its cursor was inherited relative to its region.
          auto more = co_await cg.MmapAnon(4 * kKiB);
          CO_ASSERT_OK(more);
          EXPECT_GE(more->base(), cg.base());
          EXPECT_LT(more->top(), cg.base() + cg.uproc().size);
          co_await cg.Exit(0);
        });
        CO_ASSERT_OK(child);
        auto waited = co_await g.Wait();
        CO_ASSERT_OK(waited);
        EXPECT_EQ(waited->status, 0);
      }),
      "mmap-fork");
  ASSERT_TRUE(pid.ok());
  kernel->Run();
}

TEST(KernelEdge, ExecKeepsChildrenWaitable) {
  auto kernel = MakeUforkKernel(EdgeConfig());
  kernel->RegisterProgram("waiter", MakeGuestEntry([](Guest& g) -> SimTask<void> {
    // The exec'd image inherits the pre-exec child and can still reap it.
    auto waited = co_await g.Wait();
    UF_CHECK(waited.ok());
    co_await g.Exit(waited->status == 33 ? 0 : 1);
  }));
  auto pid = kernel->Spawn(
      MakeGuestEntry([](Guest& g) -> SimTask<void> {
        auto outer = co_await g.Fork([](Guest& og) -> SimTask<void> {
          auto inner = co_await og.Fork([](Guest& ig) -> SimTask<void> {
            co_await ig.Nanosleep(Microseconds(100));
            co_await ig.Exit(33);
          });
          CO_ASSERT_OK(inner);
          (void)co_await og.Exec("waiter");  // replaces the image, keeps the child
          co_await og.Exit(9);
        });
        CO_ASSERT_OK(outer);
        auto waited = co_await g.Wait();
        CO_ASSERT_OK(waited);
        EXPECT_EQ(waited->status, 0) << "the exec'd waiter must reap the pre-exec child";
      }),
      "exec-children");
  ASSERT_TRUE(pid.ok());
  kernel->Run();
}

TEST(KernelEdge, KillingBlockedReaderDeliversEpipeSemantics) {
  auto kernel = MakeUforkKernel(EdgeConfig());
  auto pid = kernel->Spawn(
      MakeGuestEntry([](Guest& g) -> SimTask<void> {
        auto pipe_fds = co_await g.Pipe();
        CO_ASSERT_OK(pipe_fds);
        const auto [rfd, wfd] = *pipe_fds;
        auto child = co_await g.Fork([rfd = rfd, wfd = wfd](Guest& cg) -> SimTask<void> {
          (void)co_await cg.Close(wfd);
          auto buf = cg.Malloc(16);
          CO_ASSERT_OK(buf);
          (void)co_await cg.Read(rfd, *buf, 1);  // blocks forever; killed here
          ADD_FAILURE() << "the killed reader must never resume";
          co_await cg.Exit(0);
        });
        CO_ASSERT_OK(child);
        (void)co_await g.Close(rfd);
        co_await g.Nanosleep(Microseconds(10));  // let the child block
        CO_ASSERT_OK(co_await g.Kill(*child));
        auto waited = co_await g.Wait();
        CO_ASSERT_OK(waited);
        EXPECT_EQ(waited->status, -9);
        // The kill closed the child's read end — our write end now has no readers: EPIPE.
        auto buf = g.Malloc(16);
        CO_ASSERT_OK(buf);
        auto written = co_await g.Write(wfd, *buf, 1);
        EXPECT_EQ(written.code(), Code::kErrPipe);
      }),
      "kill-blocked");
  ASSERT_TRUE(pid.ok());
  kernel->Run();
}

TEST(KernelEdge, MqDescriptorsInheritedAcrossForkAndExec) {
  auto kernel = MakeUforkKernel(EdgeConfig());
  kernel->RegisterProgram("mq-writer", MakeGuestEntry([](Guest& g) -> SimTask<void> {
    // fd 0 was arranged (pre-exec) to be the queue.
    auto msg = g.PlaceString("Q");
    UF_CHECK(msg.ok());
    auto n = co_await g.Write(0, *msg, 1);
    co_await g.Exit(n.ok() ? 0 : 1);
  }));
  std::string received;
  auto pid = kernel->Spawn(
      MakeGuestEntry([&received](Guest& g) -> SimTask<void> {
        auto mq = co_await g.MqOpen("/mq/inherit", true);
        CO_ASSERT_OK(mq);
        auto child = co_await g.Fork([mq = *mq](Guest& cg) -> SimTask<void> {
          UF_CHECK((co_await cg.Dup2(mq, 0)).ok());
          (void)co_await cg.Exec("mq-writer");
          co_await cg.Exit(1);
        });
        CO_ASSERT_OK(child);
        auto buf = g.Malloc(16);
        CO_ASSERT_OK(buf);
        auto n = co_await g.Read(*mq, *buf, 16);  // message queues carry across fork+exec
        CO_ASSERT_OK(n);
        auto bytes = g.FetchBytes(*buf, 1);
        CO_ASSERT_OK(bytes);
        received.assign(reinterpret_cast<const char*>(bytes->data()), 1);
        (void)co_await g.Wait();
      }),
      "mq-inherit");
  ASSERT_TRUE(pid.ok());
  kernel->Run();
  EXPECT_EQ(received, "Q");
}

TEST(KernelEdge, MmapZoneIsPerProcess) {
  auto kernel = MakeUforkKernel(EdgeConfig());
  auto pid = kernel->Spawn(
      MakeGuestEntry([](Guest& g) -> SimTask<void> {
        auto a = co_await g.MmapAnon(16 * kKiB);
        CO_ASSERT_OK(a);
        auto child = co_await g.Fork([](Guest& cg) -> SimTask<void> {
          // The child's fresh mappings land in the CHILD's zone, disjoint from everything
          // the parent maps afterwards.
          auto b = co_await cg.MmapAnon(16 * kKiB);
          CO_ASSERT_OK(b);
          EXPECT_GE(b->base(), cg.base());
          co_await cg.Exit(0);
        });
        CO_ASSERT_OK(child);
        auto c = co_await g.MmapAnon(16 * kKiB);
        CO_ASSERT_OK(c);
        EXPECT_GE(c->base(), a->top());
        EXPECT_LT(c->top(), g.base() + g.uproc().size);
        (void)co_await g.Wait();
      }),
      "mmap-zones");
  ASSERT_TRUE(pid.ok());
  kernel->Run();
}

}  // namespace
}  // namespace ufork
