// Tests for the single-address-space region allocator: first fit, coalescing, region lookup
// (used by the fork relocation scanner), ASLR and fragmentation statistics.
#include "src/mem/address_space.h"

#include <gtest/gtest.h>

#include <set>

#include "src/mem/frame.h"

namespace ufork {
namespace {

constexpr uint64_t kLo = 0x100000;
constexpr uint64_t kHi = 0x100000 + 64 * kMiB;

TEST(AddressSpace, AllocateIsAlignedAndInRange) {
  AddressSpace as(kLo, kHi);
  auto r = as.AllocateRegion(1 * kMiB, 2 * kMiB);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(IsAligned(*r, 2 * kMiB));
  EXPECT_GE(*r, kLo);
  EXPECT_LE(*r + 1 * kMiB, kHi);
}

TEST(AddressSpace, RegionsDoNotOverlap) {
  AddressSpace as(kLo, kHi);
  std::vector<std::pair<uint64_t, uint64_t>> regions;
  for (int i = 0; i < 10; ++i) {
    auto r = as.AllocateRegion(3 * kMiB, kPageSize);
    ASSERT_TRUE(r.ok());
    for (const auto& [b, s] : regions) {
      EXPECT_TRUE(*r + 3 * kMiB <= b || b + s <= *r);
    }
    regions.emplace_back(*r, 3 * kMiB);
  }
}

TEST(AddressSpace, FreeCoalescesNeighbours) {
  AddressSpace as(kLo, kHi);
  auto a = as.AllocateRegion(1 * kMiB, kPageSize);
  auto b = as.AllocateRegion(1 * kMiB, kPageSize);
  auto c = as.AllocateRegion(1 * kMiB, kPageSize);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  as.FreeRegion(*a);
  as.FreeRegion(*c);
  as.FreeRegion(*b);  // middle: must merge into one block
  const AddressSpaceStats stats = as.Stats();
  EXPECT_EQ(stats.free_bytes, kHi - kLo);
  EXPECT_EQ(stats.largest_free_block, kHi - kLo);
  EXPECT_EQ(stats.region_count, 0u);
}

TEST(AddressSpace, ExhaustionReturnsNoSpc) {
  AddressSpace as(kLo, kLo + 4 * kMiB);
  ASSERT_TRUE(as.AllocateRegion(4 * kMiB, kPageSize).ok());
  EXPECT_EQ(as.AllocateRegion(kPageSize, kPageSize).code(), Code::kErrNoSpc);
}

TEST(AddressSpace, FragmentationBlocksLargeAllocation) {
  // Allocate alternating regions and free every other one: total free space is sufficient but
  // no contiguous block is — the paper's §6 fragmentation concern.
  AddressSpace as(kLo, kLo + 16 * kMiB);
  std::vector<uint64_t> bases;
  for (int i = 0; i < 16; ++i) {
    bases.push_back(as.AllocateRegion(1 * kMiB, 1 * kMiB).value());
  }
  for (size_t i = 0; i < bases.size(); i += 2) {
    as.FreeRegion(bases[i]);
  }
  const AddressSpaceStats stats = as.Stats();
  EXPECT_EQ(stats.free_bytes, 8 * kMiB);
  EXPECT_EQ(stats.largest_free_block, 1 * kMiB);
  EXPECT_GT(stats.ExternalFragmentation(), 0.8);
  EXPECT_EQ(as.AllocateRegion(2 * kMiB, kPageSize).code(), Code::kErrNoSpc);
  EXPECT_TRUE(as.AllocateRegion(1 * kMiB, kPageSize).ok());
}

TEST(AddressSpace, RegionContainingFindsOwner) {
  AddressSpace as(kLo, kHi);
  auto a = as.AllocateRegion(2 * kMiB, kPageSize);
  auto b = as.AllocateRegion(2 * kMiB, kPageSize);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(as.RegionContaining(*a), *a);
  EXPECT_EQ(as.RegionContaining(*a + 2 * kMiB - 1), *a);
  EXPECT_EQ(as.RegionContaining(*b + 123), *b);
  EXPECT_EQ(as.RegionContaining(kLo - 1), std::nullopt);
  as.FreeRegion(*a);
  EXPECT_EQ(as.RegionContaining(*a), std::nullopt);
  EXPECT_EQ(as.RegionSize(*b), 2 * kMiB);
}

TEST(AddressSpace, SlotFragmentationTracksHolesBelowHighWater) {
  AddressSpace as(kLo, kHi);
  EXPECT_EQ(as.SlotFragmentation(2 * kMiB), 0.0);
  uint64_t bases[4];
  for (auto& base : bases) {
    base = as.AllocateRegion(1 * kMiB, 2 * kMiB).value();
  }
  EXPECT_EQ(as.SlotFragmentation(2 * kMiB), 0.0) << "a packed floor has no pressure";
  as.FreeRegion(bases[1]);
  EXPECT_NEAR(as.SlotFragmentation(2 * kMiB), 0.25, 1e-9);
  as.QuarantineRegion(bases[2]);
  EXPECT_NEAR(as.SlotFragmentation(2 * kMiB), 0.5, 1e-9)
      << "quarantined slots are holes the sweep is about to hand back";
  as.FreeRegion(bases[3]);
  EXPECT_EQ(as.SlotFragmentation(2 * kMiB), 0.0)
      << "free space above the high-water region is tail, not fragmentation";
}

TEST(AddressSpace, AslrRandomizesPlacementDeterministically) {
  std::set<uint64_t> bases_seed1;
  for (int trial = 0; trial < 5; ++trial) {
    AddressSpace as(kLo, kHi);
    as.EnableAslr(/*seed=*/1);
    bases_seed1.insert(as.AllocateRegion(1 * kMiB, kPageSize).value());
  }
  EXPECT_EQ(bases_seed1.size(), 1u) << "same seed must give the same placement";

  std::set<uint64_t> bases;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    AddressSpace as(kLo, kHi);
    as.EnableAslr(seed);
    bases.insert(as.AllocateRegion(1 * kMiB, kPageSize).value());
  }
  EXPECT_GT(bases.size(), 1u) << "different seeds should spread placements";
  for (uint64_t b : bases) {
    EXPECT_GE(b, kLo);
    EXPECT_LE(b + 1 * kMiB, kHi);
  }
}

TEST(AddressSpace, AslrAllocationsStillDisjoint) {
  AddressSpace as(kLo, kHi);
  as.EnableAslr(7);
  std::vector<uint64_t> bases;
  for (int i = 0; i < 12; ++i) {
    auto r = as.AllocateRegion(1 * kMiB, kPageSize);
    ASSERT_TRUE(r.ok());
    bases.push_back(*r);
  }
  std::sort(bases.begin(), bases.end());
  for (size_t i = 1; i < bases.size(); ++i) {
    EXPECT_GE(bases[i] - bases[i - 1], 1 * kMiB);
  }
}

}  // namespace
}  // namespace ufork
