// Tests for the discrete-event scheduler: virtual-time accounting, multi-core parallelism,
// pinning, wait queues, locks, determinism, and kill semantics.
#include "src/sched/scheduler.h"

#include <gtest/gtest.h>

#include "src/sched/sync.h"

namespace ufork {
namespace {

TEST(Scheduler, SingleThreadChargesTime) {
  Scheduler sched(1);
  Cycles observed = 0;
  sched.Spawn(
      [](Scheduler& s, Cycles* out) -> SimTask<void> {
        s.Charge(100);
        *out = s.Now();
        co_return;
      }(sched, &observed),
      "t");
  sched.Run();
  EXPECT_EQ(observed, 100u);
  EXPECT_EQ(sched.CompletionTime(), 100u);
}

TEST(Scheduler, SleepAdvancesVirtualTime) {
  Scheduler sched(1);
  Cycles observed = 0;
  sched.Spawn(
      [](Scheduler& s, Cycles* out) -> SimTask<void> {
        s.Charge(10);
        co_await s.Sleep(1000);
        s.Charge(5);
        *out = s.Now();
      }(sched, &observed),
      "sleeper");
  sched.Run();
  EXPECT_EQ(observed, 1015u);
}

TEST(Scheduler, TwoThreadsOneCoreSerialize) {
  Scheduler sched(1);
  std::vector<std::pair<int, Cycles>> log;
  for (int i = 0; i < 2; ++i) {
    sched.Spawn(
        [](Scheduler& s, int id, std::vector<std::pair<int, Cycles>>* l) -> SimTask<void> {
          s.Charge(100);
          l->emplace_back(id, s.Now());
          co_return;
        }(sched, i, &log),
        "t" + std::to_string(i));
  }
  sched.Run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], std::make_pair(0, Cycles{100}));
  EXPECT_EQ(log[1], std::make_pair(1, Cycles{200}));  // serialized on the single core
}

TEST(Scheduler, TwoThreadsTwoCoresRunInParallel) {
  Scheduler sched(2);
  std::vector<Cycles> ends;
  for (int i = 0; i < 2; ++i) {
    sched.Spawn(
        [](Scheduler& s, std::vector<Cycles>* e) -> SimTask<void> {
          s.Charge(100);
          e->push_back(s.Now());
          co_return;
        }(sched, &ends),
        "t" + std::to_string(i));
  }
  sched.Run();
  ASSERT_EQ(ends.size(), 2u);
  EXPECT_EQ(ends[0], 100u);
  EXPECT_EQ(ends[1], 100u);  // parallel in virtual time
  EXPECT_EQ(sched.CompletionTime(), 100u);
}

TEST(Scheduler, PinnedThreadsShareTheirCore) {
  Scheduler sched(2);
  std::vector<Cycles> ends;
  for (int i = 0; i < 2; ++i) {
    sched.Spawn(
        [](Scheduler& s, std::vector<Cycles>* e) -> SimTask<void> {
          s.Charge(100);
          e->push_back(s.Now());
          co_return;
        }(sched, &ends),
        "pinned" + std::to_string(i), /*pinned_core=*/0);
  }
  sched.Run();
  ASSERT_EQ(ends.size(), 2u);
  EXPECT_EQ(ends[1], 200u);  // both pinned to core 0: serialized despite 2 cores
}

TEST(Scheduler, NestedTaskReturnsValue) {
  Scheduler sched(1);
  int result = 0;
  auto child = [](Scheduler& s) -> SimTask<int> {
    s.Charge(7);
    co_return 41;
  };
  sched.Spawn(
      [](Scheduler& s, decltype(child) c, int* out) -> SimTask<void> {
        const int v = co_await c(s);
        *out = v + 1;
      }(sched, child, &result),
      "parent");
  sched.Run();
  EXPECT_EQ(result, 42);
}

TEST(Scheduler, NestedTaskBlockingUnwindsToScheduler) {
  Scheduler sched(1);
  WaitQueue queue(sched);
  std::vector<int> order;
  auto blocking_child = [](Scheduler&, WaitQueue& q, std::vector<int>* o) -> SimTask<int> {
    o->push_back(1);
    co_await q.Wait();  // suspends the whole coroutine stack
    o->push_back(3);
    co_return 9;
  };
  sched.Spawn(
      [](Scheduler& s, WaitQueue& q, decltype(blocking_child) c,
         std::vector<int>* o) -> SimTask<void> {
        const int v = co_await c(s, q, o);
        o->push_back(v);
      }(sched, queue, blocking_child, &order),
      "blocker");
  sched.Spawn(
      [](Scheduler& s, WaitQueue& q, std::vector<int>* o) -> SimTask<void> {
        s.Charge(500);
        o->push_back(2);
        q.Wake();
        co_return;
      }(sched, queue, &order),
      "waker");
  sched.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 9}));
}

TEST(Scheduler, WakeStampsWakerTime) {
  Scheduler sched(2);
  WaitQueue queue(sched);
  Cycles resumed_at = 0;
  sched.Spawn(
      [](Scheduler& s, WaitQueue& q, Cycles* out) -> SimTask<void> {
        co_await q.Wait();  // blocks at t=0
        *out = s.Now();
      }(sched, queue, &resumed_at),
      "waiter");
  sched.Spawn(
      [](Scheduler& s, WaitQueue& q) -> SimTask<void> {
        s.Charge(2500);
        q.Wake();
        co_return;
      }(sched, queue),
      "waker");
  sched.Run();
  EXPECT_EQ(resumed_at, 2500u);  // not earlier than the waker's clock
}

TEST(Scheduler, ContextSwitchHookCharged) {
  Scheduler sched(1);
  sched.set_context_switch_hook([](SimThread*, SimThread*) -> Cycles { return 1000; });
  std::vector<Cycles> ends;
  for (int i = 0; i < 2; ++i) {
    sched.Spawn(
        [](Scheduler& s, std::vector<Cycles>* e) -> SimTask<void> {
          s.Charge(10);
          e->push_back(s.Now());
          co_return;
        }(sched, &ends),
        "t" + std::to_string(i));
  }
  sched.Run();
  ASSERT_EQ(ends.size(), 2u);
  EXPECT_EQ(ends[0], 1010u);           // switch from idle
  EXPECT_EQ(ends[1], 1010u + 1010u);   // second switch + work
  EXPECT_EQ(sched.context_switches(), 2u);
}

TEST(Scheduler, YieldInterleavesEqualThreads) {
  Scheduler sched(1);
  std::vector<int> order;
  for (int i = 0; i < 2; ++i) {
    sched.Spawn(
        [](Scheduler& s, int id, std::vector<int>* o) -> SimTask<void> {
          for (int k = 0; k < 3; ++k) {
            s.Charge(10);
            o->push_back(id);
            co_await s.Yield();
          }
        }(sched, i, &order),
        "y" + std::to_string(i));
  }
  sched.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 0, 1, 0, 1}));
}

TEST(Scheduler, SpawnFromThreadStartsAtSpawnersTime) {
  Scheduler sched(2);
  Cycles child_start = 0;
  sched.Spawn(
      [](Scheduler& s, Cycles* out) -> SimTask<void> {
        s.Charge(300);
        s.Spawn(
            [](Scheduler& s2, Cycles* o2) -> SimTask<void> {
              *o2 = s2.Now();
              co_return;
            }(s, out),
            "child");
        s.Charge(50);
        co_return;
      }(sched, &child_start),
      "parent");
  sched.Run();
  EXPECT_EQ(child_start, 300u);
}

TEST(Scheduler, KillRemovesReadyThread) {
  Scheduler sched(1);
  bool ran = false;
  ThreadId victim = sched.Spawn(
      [](bool* r) -> SimTask<void> {
        *r = true;
        co_return;
      }(&ran),
      "victim");
  sched.Kill(victim);
  sched.Run();
  EXPECT_FALSE(ran);
  EXPECT_FALSE(sched.IsAlive(victim));
}

TEST(Scheduler, KillBlockedThreadSkippedByWake) {
  Scheduler sched(1);
  WaitQueue queue(sched);
  bool resumed = false;
  ThreadId victim = sched.Spawn(
      [](WaitQueue& q, bool* r) -> SimTask<void> {
        co_await q.Wait();
        *r = true;
      }(queue, &resumed),
      "victim");
  sched.Spawn(
      [](Scheduler& s, WaitQueue& q, ThreadId v) -> SimTask<void> {
        s.Charge(10);
        s.Kill(v);
        q.Wake();
        co_return;
      }(sched, queue, victim),
      "killer");
  sched.Run();
  EXPECT_FALSE(resumed);
}

TEST(VirtualLock, UncontendedAcquireDoesNotSuspend) {
  Scheduler sched(1);
  VirtualLock lock(sched);
  bool done = false;
  sched.Spawn(
      [](Scheduler& s, VirtualLock& l, bool* d) -> SimTask<void> {
        co_await l.Acquire();
        s.Charge(10);
        l.Release();
        *d = true;
      }(sched, lock, &done),
      "t");
  sched.Run();
  EXPECT_TRUE(done);
  EXPECT_FALSE(lock.held());
}

TEST(VirtualLock, ContendedHandoffIsFifoAndTimed) {
  Scheduler sched(3);
  VirtualLock lock(sched);
  std::vector<std::pair<int, Cycles>> critical;
  for (int i = 0; i < 3; ++i) {
    sched.Spawn(
        [](Scheduler& s, VirtualLock& l, int id,
           std::vector<std::pair<int, Cycles>>* log) -> SimTask<void> {
          co_await l.Acquire();
          s.Charge(100);
          log->emplace_back(id, s.Now());
          l.Release();
        }(sched, lock, i, &critical),
        "t" + std::to_string(i));
  }
  sched.Run();
  ASSERT_EQ(critical.size(), 3u);
  // FIFO handoff; each critical section starts after the previous one released.
  EXPECT_EQ(critical[0].first, 0);
  EXPECT_EQ(critical[1].first, 1);
  EXPECT_EQ(critical[2].first, 2);
  EXPECT_EQ(critical[0].second, 100u);
  EXPECT_EQ(critical[1].second, 200u);
  EXPECT_EQ(critical[2].second, 300u);
}

TEST(Scheduler, DeterministicAcrossRuns) {
  auto run_once = []() {
    Scheduler sched(3);
    std::vector<int> order;
    WaitQueue queue(sched);
    for (int i = 0; i < 5; ++i) {
      sched.Spawn(
          [](Scheduler& s, int id, std::vector<int>* o) -> SimTask<void> {
            s.Charge(static_cast<Cycles>(37 * (id + 1)));
            co_await s.Yield();
            s.Charge(11);
            o->push_back(id);
          }(sched, i, &order),
          "t" + std::to_string(i));
    }
    sched.Run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace ufork
