// Golden virtual-time calibration guard.
//
// The simulation is deterministic: for a fixed workload the virtual-cycle total, the fork
// statistics and every kernel counter are exact constants. Host-side optimization PRs (frame
// storage layout, relocation fast paths, allocator recycling, ...) must leave virtual time
// bit-identical — they change how fast the simulator runs, never what it computes. This test
// pins the Fig. 8 hello-fork and a Fig. 4-style CoPA pointer-chase workload to the recorded
// constants; any drift means the cost model or the simulated mechanics changed and every
// EXPERIMENTS.md figure must be re-validated.
//
// If a PR *intentionally* changes simulated behaviour (new cost constant, different fault
// ordering), re-record the constants below from a run of this test and say so in the PR.
#include <gtest/gtest.h>

#include "src/baseline/system.h"
#include "src/guest/guest.h"
#include "tests/guest_test_util.h"

namespace ufork {
namespace {

// Fig. 8 hello-world image (mirrors bench/bench_common.h HelloLayout()).
KernelConfig HelloConfig() {
  KernelConfig config;
  config.layout.text_size = 128 * kKiB;
  config.layout.rodata_size = 16 * kKiB;
  config.layout.got_size = 16 * kKiB;
  config.layout.data_size = 16 * kKiB;
  config.layout.heap_size = 1 * kMiB;
  config.layout.stack_size = 128 * kKiB;
  config.layout.tls_size = 4 * kKiB;
  config.layout.mmap_size = 64 * kKiB;
  return config;
}

struct GoldenRun {
  Cycles completion = 0;       // scheduler virtual time when the system drained
  Cycles fork_latency = 0;     // ForkStats.latency of the first forked child
  ForkStats fork_stats;        // full per-fork counters of that child
  KernelStats stats;           // kernel-wide counters at completion
  uint64_t cow_faults = 0;     // resolvable faults serviced, by kind
  uint64_t cap_load_faults = 0;
  uint64_t chain_sum = 0;      // CoPA workload: payload checksum the child computed
};

// Runs the kernel to completion and snapshots every deterministic counter.
GoldenRun RunGolden(std::unique_ptr<Kernel> kernel, GuestFn main_fn) {
  GoldenRun run;
  auto pid = kernel->Spawn(MakeGuestEntry(std::move(main_fn)), "golden-main");
  UF_CHECK(pid.ok());
  kernel->Run();
  run.completion = kernel->sched().CompletionTime();
  run.stats = kernel->stats();
  run.cow_faults = kernel->machine().cow_faults();
  run.cap_load_faults = kernel->machine().cap_load_faults();
  return run;
}

// --- Fig. 8 hello-fork -------------------------------------------------------------------------

GoldenRun RunHelloFork(std::unique_ptr<Kernel> kernel) {
  GoldenRun run;
  GuestFn main_fn = [&run](Guest& g) -> SimTask<void> {
    GuestFn child_fn = [](Guest& cg) -> SimTask<void> {
      auto line = cg.PlaceString("hello, world\n");
      UF_CHECK(line.ok());
      auto block = cg.Malloc(64);
      UF_CHECK(block.ok());
      co_await cg.Exit(0);
    };
    auto child = co_await g.Fork(std::move(child_fn));
    CO_ASSERT_OK(child);
    Uproc* child_proc = g.kernel().FindUproc(*child);
    CO_ASSERT_TRUE(child_proc != nullptr);
    run.fork_latency = child_proc->fork_stats.latency;
    run.fork_stats = child_proc->fork_stats;
    auto waited = co_await g.Wait();
    CO_ASSERT_OK(waited);
    CO_ASSERT_EQ(waited->status, 0);
  };
  GoldenRun result = RunGolden(std::move(kernel), std::move(main_fn));
  result.fork_latency = run.fork_latency;
  result.fork_stats = run.fork_stats;
  return result;
}

// --- Fig. 4-style CoPA pointer chase -----------------------------------------------------------
//
// The parent builds a linked chain of heap blocks whose links are tagged capabilities spread
// over several pages, plus a capability-free scratch block. The forked child chases the chain
// (each first tagged load from a shared page raises a CoPA fault: copy + relocate), then data-
// writes the scratch block (a plain CoW fault on a never-cap-loaded page).

constexpr uint64_t kChainBlocks = 8;
constexpr uint64_t kBlockBytes = 2048;  // two blocks (plus headers) span each page
constexpr uint64_t kOffNext = 0;        // capability link to the next block
constexpr uint64_t kOffPayload = 16;    // integer payload
constexpr uint64_t kOffScratch = 24;    // block 0 only: region-relative offset of scratch

GoldenRun RunCopaChain(FaultAroundConfig fault_around = {}) {
  GoldenRun run;
  GuestFn main_fn = [&run](Guest& g) -> SimTask<void> {
    Capability prev;
    for (uint64_t i = 0; i < kChainBlocks; ++i) {
      auto block = g.Malloc(kBlockBytes);
      CO_ASSERT_OK(block);
      CO_ASSERT_OK(g.Store<uint64_t>(*block, block->base() + kOffPayload, i + 1));
      if (i == 0) {
        CO_ASSERT_OK(g.GotStore(kGotSlotFirstUser, *block));
      } else {
        CO_ASSERT_OK(g.StoreCap(prev, prev.base() + kOffNext, *block));
      }
      prev = *block;
    }
    CO_ASSERT_OK(g.StoreCap(prev, prev.base() + kOffNext, Capability::Integer(0)));
    auto scratch = g.Malloc(kBlockBytes);
    CO_ASSERT_OK(scratch);
    auto head = g.GotLoad(kGotSlotFirstUser);
    CO_ASSERT_OK(head);
    // Position-independent handoff: the child recomputes the scratch address from its own base.
    CO_ASSERT_OK(
        g.Store<uint64_t>(*head, head->base() + kOffScratch, scratch->base() - g.base()));

    GuestFn child_fn = [](Guest& cg) -> SimTask<void> {
      auto head_cap = cg.GotLoad(kGotSlotFirstUser);
      UF_CHECK(head_cap.ok());
      uint64_t sum = 0;
      Capability cursor = *head_cap;
      while (cursor.tag()) {
        auto payload = cg.Load<uint64_t>(cursor, cursor.base() + kOffPayload);
        UF_CHECK(payload.ok());
        sum += *payload;
        auto next = cg.LoadCap(cursor, cursor.base() + kOffNext);
        UF_CHECK(next.ok());
        cursor = *next;
      }
      auto scratch_off = cg.Load<uint64_t>(*head_cap, head_cap->base() + kOffScratch);
      UF_CHECK(scratch_off.ok());
      UF_CHECK(cg.Store<uint64_t>(cg.ddc(), cg.base() + *scratch_off, sum).ok());
      co_await cg.Exit(static_cast<int>(sum & 0x7f));
    };
    auto child = co_await g.Fork(std::move(child_fn));
    CO_ASSERT_OK(child);
    Uproc* child_proc = g.kernel().FindUproc(*child);
    CO_ASSERT_TRUE(child_proc != nullptr);
    run.fork_latency = child_proc->fork_stats.latency;
    run.fork_stats = child_proc->fork_stats;
    auto waited = co_await g.Wait();
    CO_ASSERT_OK(waited);
    run.chain_sum = static_cast<uint64_t>(waited->status);
  };
  KernelConfig config = HelloConfig();
  config.strategy = ForkStrategy::kCopa;
  config.fault_around = fault_around;
  GoldenRun result = RunGolden(MakeUforkKernel(config), std::move(main_fn));
  result.fork_latency = run.fork_latency;
  result.fork_stats = run.fork_stats;
  result.chain_sum = run.chain_sum;
  return result;
}

// --- recorded constants ------------------------------------------------------------------------
//
// Recorded from the tree at the time this test was introduced (seed + PR 2, which verified the
// rank-select frame rewrite leaves them bit-identical).

TEST(GoldenCycles, UforkHelloFork) {
  const GoldenRun run = RunHelloFork(MakeUforkKernel(HelloConfig()));
  EXPECT_EQ(run.completion, 216830u);
  EXPECT_EQ(run.fork_latency, 137128u);
  EXPECT_EQ(run.fork_stats.pages_mapped, 333u);
  EXPECT_EQ(run.fork_stats.pages_copied_eagerly, 5u);  // GOT + allocator metadata (proactive)
  EXPECT_EQ(run.fork_stats.caps_relocated_eagerly, 3u);
  EXPECT_EQ(run.fork_stats.registers_relocated, 3u);
  EXPECT_EQ(run.fork_stats.bytes_copied_eagerly, 20480u);
  EXPECT_EQ(run.stats.forks, 1u);
  EXPECT_EQ(run.stats.syscalls, 4u);
  EXPECT_EQ(run.stats.pages_copied_on_fault, 1u);
  EXPECT_EQ(run.stats.caps_relocated_on_fault, 0u);
  EXPECT_EQ(run.stats.caps_stripped, 0u);
  EXPECT_EQ(run.stats.faults_taken, 1u);
  EXPECT_EQ(run.stats.pages_resolved_by_faultaround, 0u);
  EXPECT_EQ(run.stats.pages_reclaimed_in_place, 0u);
  EXPECT_EQ(run.stats.speculative_pages_wasted, 0u);
  EXPECT_EQ(run.stats.fault_cycles, 1960u);  // page_fault + frame_alloc+page_copy+tag_scan + pte_update
  EXPECT_EQ(run.cow_faults, 1u);
  EXPECT_EQ(run.cap_load_faults, 0u);
}

TEST(GoldenCycles, MasHelloFork) {
  const GoldenRun run = RunHelloFork(MakeMasKernel(HelloConfig()));
  EXPECT_EQ(run.completion, 571722u);
  EXPECT_EQ(run.fork_latency, 484400u);
  EXPECT_EQ(run.stats.forks, 1u);
  EXPECT_EQ(run.stats.pages_copied_on_fault, 2u);
  EXPECT_EQ(run.stats.faults_taken, 2u);
  EXPECT_EQ(run.stats.pages_resolved_by_faultaround, 0u);
  EXPECT_EQ(run.stats.pages_reclaimed_in_place, 0u);
  EXPECT_EQ(run.cow_faults, 2u);
}

TEST(GoldenCycles, VmCloneHelloFork) {
  const GoldenRun run = RunHelloFork(MakeVmCloneKernel(HelloConfig()));
  EXPECT_EQ(run.completion, 26683084u);
  EXPECT_EQ(run.fork_latency, 26595542u);
  EXPECT_EQ(run.stats.forks, 1u);
}

TEST(GoldenCycles, CopaPointerChase) {
  const GoldenRun run = RunCopaChain();
  EXPECT_EQ(run.chain_sum, kChainBlocks * (kChainBlocks + 1) / 2);  // every payload visited once
  EXPECT_EQ(run.completion, 225512u);
  EXPECT_EQ(run.fork_latency, 137152u);
  EXPECT_EQ(run.fork_stats.pages_mapped, 333u);
  EXPECT_EQ(run.fork_stats.pages_copied_eagerly, 5u);
  EXPECT_EQ(run.fork_stats.caps_relocated_eagerly, 4u);
  EXPECT_EQ(run.fork_stats.registers_relocated, 3u);
  EXPECT_EQ(run.stats.forks, 1u);
  EXPECT_EQ(run.stats.syscalls, 4u);
  EXPECT_EQ(run.stats.pages_copied_on_fault, 5u);
  EXPECT_EQ(run.stats.caps_relocated_on_fault, 7u);
  EXPECT_EQ(run.stats.caps_stripped, 0u);
  EXPECT_EQ(run.stats.faults_taken, 5u);
  EXPECT_EQ(run.stats.pages_resolved_by_faultaround, 0u);
  EXPECT_EQ(run.stats.pages_reclaimed_in_place, 0u);
  EXPECT_EQ(run.stats.speculative_pages_wasted, 0u);
  EXPECT_EQ(run.stats.fault_cycles, 9968u);
  EXPECT_EQ(run.cow_faults, 1u);
  EXPECT_EQ(run.cap_load_faults, 4u);
}

// Same CoPA pointer chase with an 8-page adaptive fault-around window: 3 traps resolve what
// took 5, with 4 extra pages resolved by the window. Two of those were speculative overrun
// past the chain tail — this sparse workload (two blocks per page, 4 data pages total) is
// exactly the shape where fault-around wastes copies, which is why it defaults off and why
// the adaptive controller halves the window on observed waste. Re-record when the
// fault-around mechanics intentionally change.
TEST(GoldenCycles, CopaPointerChaseFaultAround8) {
  FaultAroundConfig fault_around;
  fault_around.max_window = 8;
  fault_around.adaptive = true;
  const GoldenRun run = RunCopaChain(fault_around);
  EXPECT_EQ(run.chain_sum, kChainBlocks * (kChainBlocks + 1) / 2);
  EXPECT_EQ(run.completion, 227472u);
  EXPECT_EQ(run.fork_latency, 137152u);  // fork itself is untouched by fault-around
  EXPECT_EQ(run.stats.forks, 1u);
  EXPECT_EQ(run.stats.faults_taken, 3u);
  EXPECT_EQ(run.stats.pages_resolved_by_faultaround, 4u);
  EXPECT_EQ(run.stats.pages_copied_on_fault, 7u);
  EXPECT_EQ(run.stats.pages_reclaimed_in_place, 0u);
  EXPECT_EQ(run.stats.speculative_pages_wasted, 2u);
  EXPECT_EQ(run.stats.fault_cycles, 11928u);
  // Page-accounting invariant: every resolved page is either copied or reclaimed in place.
  EXPECT_EQ(run.stats.faults_taken + run.stats.pages_resolved_by_faultaround,
            run.stats.pages_copied_on_fault + run.stats.pages_reclaimed_in_place);
}

// --- fault-injection zero-cost guard (DESIGN.md §4.9) ------------------------------------------
//
// The injection registry is compiled into every hot path unconditionally; its entire disabled
// cost must be one predictable branch. These guards pin that claim to the recorded constants:
// with the registry present-but-disarmed, golden virtual time is bit-identical.

TEST(GoldenCycles, DisarmedFaultRegistryIsObservationallyFree) {
  auto kernel = MakeUforkKernel(HelloConfig());
  // Exercise the arm/disarm lifecycle before the run: a previously-armed-then-disarmed
  // registry must be indistinguishable from one that was never touched.
  kernel->fault_injector().ArmAll(FaultPolicy::Probabilistic(1.0), /*seed=*/7);
  kernel->fault_injector().DisarmAll();
  const GoldenRun run = RunHelloFork(std::move(kernel));
  EXPECT_EQ(run.completion, 216830u);
  EXPECT_EQ(run.fork_latency, 137128u);
  EXPECT_EQ(run.stats.fault_cycles, 1960u);
  EXPECT_EQ(run.stats.syscalls, 4u);
}

TEST(GoldenCycles, ArmedThenDisarmedMatchesNeverArmedExactly) {
  const GoldenRun baseline = RunHelloFork(MakeUforkKernel(HelloConfig()));
  auto kernel = MakeUforkKernel(HelloConfig());
  kernel->fault_injector().ArmAll(FaultPolicy::OneShot(), /*seed=*/3);
  kernel->fault_injector().DisarmAll();
  const GoldenRun guarded = RunHelloFork(std::move(kernel));
  EXPECT_EQ(guarded.completion, baseline.completion);
  EXPECT_EQ(guarded.fork_latency, baseline.fork_latency);
  EXPECT_EQ(guarded.stats.forks, baseline.stats.forks);
  EXPECT_EQ(guarded.stats.exits, baseline.stats.exits);
  EXPECT_EQ(guarded.stats.syscalls, baseline.stats.syscalls);
  EXPECT_EQ(guarded.stats.pages_copied_on_fault, baseline.stats.pages_copied_on_fault);
  EXPECT_EQ(guarded.stats.caps_relocated_on_fault, baseline.stats.caps_relocated_on_fault);
  EXPECT_EQ(guarded.stats.faults_taken, baseline.stats.faults_taken);
  EXPECT_EQ(guarded.stats.fault_cycles, baseline.stats.fault_cycles);
  EXPECT_EQ(guarded.stats.regions_tombstoned, baseline.stats.regions_tombstoned);
  EXPECT_EQ(guarded.stats.per_syscall, baseline.stats.per_syscall);
}

// The post-syscall frame-accounting checker is host-side debug instrumentation; switching it
// on must not charge a single virtual cycle.
TEST(GoldenCycles, FrameInvariantCheckerChargesNoVirtualTime) {
  KernelConfig config = HelloConfig();
  config.check_frame_invariants = true;
  const GoldenRun run = RunHelloFork(MakeUforkKernel(config));
  EXPECT_EQ(run.completion, 216830u);
  EXPECT_EQ(run.fork_latency, 137128u);
}

}  // namespace
}  // namespace ufork
