// Syscall error-path matrix: the same POSIX error semantics must hold on all three systems
// (μFork, the CheriBSD-like MAS baseline, the VM-clone baseline), and — critically — every
// error return must leave the kernel lock discipline balanced. Before SyscallScope, each early
// return hand-released the BKL; an asymmetric path deadlocked the next syscall or tripped the
// VirtualLock owner CHECK. These tests walk every early-return branch on every system; the
// fact that each guest program completes proves release-exactly-once on all of them.
#include <gtest/gtest.h>

#include "src/baseline/system.h"
#include "src/guest/guest.h"
#include "tests/guest_test_util.h"

namespace ufork {
namespace {

KernelConfig SmallConfig() {
  KernelConfig config;
  config.layout.text_size = 32 * kKiB;
  config.layout.rodata_size = 8 * kKiB;
  config.layout.got_size = 4 * kKiB;
  config.layout.data_size = 8 * kKiB;
  config.layout.heap_size = 256 * kKiB;
  config.layout.stack_size = 32 * kKiB;
  config.layout.tls_size = 4 * kKiB;
  config.layout.mmap_size = 64 * kKiB;
  return config;
}

struct System {
  const char* name;
  std::unique_ptr<Kernel> (*make)(KernelConfig config);
};

const System kSystems[] = {
    {"ufork", [](KernelConfig c) { return MakeUforkKernel(c); }},
    {"mas", [](KernelConfig c) { return MakeMasKernel(c, MasParams{}); }},
    {"vmclone", [](KernelConfig c) { return MakeVmCloneKernel(c, VmCloneParams{}); }},
};

// Runs `fn` as the init program on each of the three systems.
void RunOnAllSystems(GuestFn fn) {
  for (const System& system : kSystems) {
    SCOPED_TRACE(system.name);
    auto kernel = system.make(SmallConfig());
    auto pid = kernel->Spawn(MakeGuestEntry(fn), "error-matrix");
    ASSERT_TRUE(pid.ok());
    kernel->Run();
  }
}

TEST(SyscallErrors, BadDescriptorReadWriteSeekClose) {
  RunOnAllSystems([](Guest& g) -> SimTask<void> {
    auto buf = g.Malloc(64);
    CO_ASSERT_OK(buf);
    constexpr int kBogusFd = 17;
    auto read = co_await g.Read(kBogusFd, *buf, 8);
    CO_ASSERT_EQ(read.code(), Code::kErrBadFd);
    auto written = co_await g.Write(kBogusFd, *buf, 8);
    CO_ASSERT_EQ(written.code(), Code::kErrBadFd);
    auto sought = co_await g.Seek(kBogusFd, 0, 0);
    CO_ASSERT_EQ(sought.code(), Code::kErrBadFd);
    auto closed = co_await g.Close(kBogusFd);
    CO_ASSERT_EQ(closed.code(), Code::kErrBadFd);
    // The kernel survived four error returns with its lock discipline intact: a real syscall
    // still works.
    auto pid = co_await g.GetPid();
    CO_ASSERT_OK(pid);
  });
}

TEST(SyscallErrors, DoubleCloseReturnsBadFd) {
  RunOnAllSystems([](Guest& g) -> SimTask<void> {
    auto fd = co_await g.Open("/double-close", kOpenWrite | kOpenCreate);
    CO_ASSERT_OK(fd);
    CO_ASSERT_OK(co_await g.Close(*fd));
    auto again = co_await g.Close(*fd);
    CO_ASSERT_EQ(again.code(), Code::kErrBadFd);
  });
}

TEST(SyscallErrors, Dup2OntoSelfIsANoOpAndBadTargetsFail) {
  RunOnAllSystems([](Guest& g) -> SimTask<void> {
    auto fd = co_await g.Open("/dup2", kOpenWrite | kOpenCreate);
    CO_ASSERT_OK(fd);
    // dup2(fd, fd) returns fd without disturbing the open file.
    auto self = co_await g.Dup2(*fd, *fd);
    CO_ASSERT_OK(self);
    CO_ASSERT_EQ(*self, *fd);
    auto line = g.PlaceString("still-open");
    CO_ASSERT_OK(line);
    auto written = co_await g.Write(*fd, *line, 10);
    CO_ASSERT_OK(written);
    CO_ASSERT_EQ(*written, 10);
    // Errors: closed/bogus source, out-of-range target.
    auto bad_old = co_await g.Dup2(17, 5);
    CO_ASSERT_EQ(bad_old.code(), Code::kErrBadFd);
    auto bad_new = co_await g.Dup2(*fd, -1);
    CO_ASSERT_EQ(bad_new.code(), Code::kErrBadFd);
    auto huge_new = co_await g.Dup2(*fd, 1 << 20);
    CO_ASSERT_EQ(huge_new.code(), Code::kErrBadFd);
    CO_ASSERT_OK(co_await g.Close(*fd));
  });
}

TEST(SyscallErrors, WaitWithNoChildrenReturnsEchild) {
  RunOnAllSystems([](Guest& g) -> SimTask<void> {
    auto waited = co_await g.Wait();
    CO_ASSERT_EQ(waited.code(), Code::kErrChild);
    // And again: the ECHILD path must also release exactly once.
    auto again = co_await g.Wait();
    CO_ASSERT_EQ(again.code(), Code::kErrChild);
  });
}

TEST(SyscallErrors, ShmAndMqErrorPaths) {
  RunOnAllSystems([](Guest& g) -> SimTask<void> {
    auto zero = co_await g.ShmOpen("/shm/zero", 0);
    CO_ASSERT_EQ(zero.code(), Code::kErrInval);
    auto map = co_await g.ShmMap(12345);
    CO_ASSERT_EQ(map.code(), Code::kErrBadFd);
    auto unlink = co_await g.ShmUnlink("/shm/none");
    CO_ASSERT_EQ(unlink.code(), Code::kErrNoEnt);
    auto mq = co_await g.MqOpen("/mq/none", /*create=*/false);
    CO_ASSERT_TRUE(!mq.ok());
  });
}

TEST(SyscallErrors, MmapAnonZeroOrMisalignedLengthIsEinval) {
  RunOnAllSystems([](Guest& g) -> SimTask<void> {
    // POSIX: EINVAL for a zero or non-page-multiple length; ENOMEM is reserved for real
    // exhaustion of the zone. Must hold identically on all three systems.
    auto zero = co_await g.MmapAnon(0);
    CO_ASSERT_EQ(zero.code(), Code::kErrInval);
    auto crooked = co_await g.MmapAnon(kPageSize + 1);
    CO_ASSERT_EQ(crooked.code(), Code::kErrInval);
    auto sub_page = co_await g.MmapAnon(123);
    CO_ASSERT_EQ(sub_page.code(), Code::kErrInval);
    // The error returns left the lock discipline balanced: a well-formed request still works.
    auto ok = co_await g.MmapAnon(kPageSize);
    CO_ASSERT_OK(ok);
  });
}

TEST(SyscallErrors, MmapFileErrorPaths) {
  RunOnAllSystems([](Guest& g) -> SimTask<void> {
    auto zero = co_await g.MmapFile("/mmap-err", 0);
    CO_ASSERT_EQ(zero.code(), Code::kErrInval);
    auto crooked = co_await g.MmapFile("/mmap-err", kPageSize - 1);
    CO_ASSERT_EQ(crooked.code(), Code::kErrInval);
    auto missing = co_await g.MmapFile("/no-such-file", kPageSize);
    CO_ASSERT_EQ(missing.code(), Code::kErrNoEnt);
  });
}

TEST(SyscallErrors, SbrkErrorPaths) {
  RunOnAllSystems([](Guest& g) -> SimTask<void> {
    auto brk = co_await g.Sbrk(0);
    CO_ASSERT_OK(brk);
    // The break starts at the static heap top: any growth is ENOMEM (§4.2).
    auto grow = co_await g.Sbrk(kPageSize);
    CO_ASSERT_EQ(grow.code(), Code::kErrNoMem);
    // Shrinking below the allocator's root page is EINVAL.
    auto too_far = co_await g.Sbrk(-static_cast<int64_t>(512 * kMiB));
    CO_ASSERT_EQ(too_far.code(), Code::kErrInval);
    auto unchanged = co_await g.Sbrk(0);
    CO_ASSERT_OK(unchanged);
    CO_ASSERT_EQ(*unchanged, *brk);
  });
}

// --- fork exhaustion: the ghost-child regression ---------------------------------------------
//
// CreateUprocShell registers the child in the process table (and the parent's children list)
// before the backend allocates memory. A failed fork used to leave that shell behind as a
// permanently-kRunning ghost child, so the parent's subsequent wait() blocked forever. These
// tests would hang (and time out) without DestroyUprocShell on the failure paths.

TEST(SyscallErrors, UforkForkExhaustionLeavesNoGhostChild) {
  KernelConfig config = SmallConfig();
  // The image maps 86 pages; leave room for exactly one of fork's two proactive copies so the
  // second fails mid-fork, after the child shell exists.
  config.phys_mem_bytes = 87 * kPageSize;
  auto kernel = MakeUforkKernel(config);
  auto pid = kernel->Spawn(MakeGuestEntry([](Guest& g) -> SimTask<void> {
                             auto child = co_await g.Fork([](Guest& cg) -> SimTask<void> {
                               co_await cg.Exit(0);
                             });
                             CO_ASSERT_EQ(child.code(), Code::kErrNoMem);
                             auto waited = co_await g.Wait();
                             CO_ASSERT_EQ(waited.code(), Code::kErrChild);
                           }),
                           "ufork-oom");
  ASSERT_TRUE(pid.ok());
  kernel->Run();
  EXPECT_EQ(kernel->stats().forks, 0u);
  EXPECT_EQ(kernel->LivePids().size(), 0u) << "the failed fork must not leave a ghost child";
}

TEST(SyscallErrors, VmCloneForkExhaustionLeavesNoGhostChild) {
  KernelConfig config = SmallConfig();
  // The VM clone copies all 86 image pages synchronously; 100 frames fail the copy partway.
  config.phys_mem_bytes = 100 * kPageSize;
  auto kernel = MakeVmCloneKernel(config);
  auto pid = kernel->Spawn(MakeGuestEntry([](Guest& g) -> SimTask<void> {
                             auto child = co_await g.Fork([](Guest& cg) -> SimTask<void> {
                               co_await cg.Exit(0);
                             });
                             CO_ASSERT_EQ(child.code(), Code::kErrNoMem);
                             auto waited = co_await g.Wait();
                             CO_ASSERT_EQ(waited.code(), Code::kErrChild);
                           }),
                           "vmclone-oom");
  ASSERT_TRUE(pid.ok());
  kernel->Run();
  EXPECT_EQ(kernel->stats().forks, 0u);
  EXPECT_EQ(kernel->LivePids().size(), 0u) << "the failed clone must not leave a ghost child";
}

}  // namespace
}  // namespace ufork
