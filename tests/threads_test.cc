// Tests for multi-threaded μprocesses and futexes: threads share the μprocess region (no
// isolation between threads, full isolation between μprocesses), fork copies only the calling
// thread, exit/exec terminate siblings, and futexes synchronize both threads and — through
// MAP_SHARED physical keying — separate μprocesses.
#include <gtest/gtest.h>

#include "src/baseline/system.h"
#include "src/guest/guest.h"
#include "tests/guest_test_util.h"

namespace ufork {
namespace {

KernelConfig ThreadConfig() {
  KernelConfig config;
  config.layout.heap_size = 1 * kMiB;
  config.cores = 4;
  return config;
}

TEST(Threads, SharedMemoryAndJoin) {
  auto kernel = MakeUforkKernel(ThreadConfig());
  auto pid = kernel->Spawn(
      MakeGuestEntry([](Guest& g) -> SimTask<void> {
        auto counter = g.Malloc(16);
        CO_ASSERT_OK(counter);
        CO_ASSERT_OK(g.StoreAt<uint64_t>(*counter, 0, 0));
        std::vector<ThreadId> tids;
        for (int t = 0; t < 3; ++t) {
          // Threads share the address space directly: same capabilities work unchanged.
          auto tid = co_await g.ThreadCreate([counter = *counter](Guest& tg) -> SimTask<void> {
            for (int i = 0; i < 100; ++i) {
              auto v = tg.LoadAt<uint64_t>(counter, 0);
              CO_ASSERT_OK(v);
              CO_ASSERT_OK(tg.StoreAt<uint64_t>(counter, 0, *v + 1));
              // Kernel code serializes on the BKL; guest slices are atomic in the DES, so
              // this read-modify-write needs no further locking here.
              co_await tg.Nanosleep(Microseconds(1));
            }
          });
          CO_ASSERT_OK(tid);
          tids.push_back(*tid);
        }
        for (const ThreadId tid : tids) {
          CO_ASSERT_OK(co_await g.ThreadJoin(tid));
        }
        auto v = g.LoadAt<uint64_t>(*counter, 0);
        CO_ASSERT_OK(v);
        EXPECT_EQ(*v, 300u);
        // Double join / foreign join reports an error.
        EXPECT_EQ((co_await g.ThreadJoin(tids[0])).code(), Code::kErrSrch);
      }),
      "threads");
  ASSERT_TRUE(pid.ok());
  kernel->Run();
}

TEST(Threads, ForkCopiesOnlyTheCallingThread) {
  auto kernel = MakeUforkKernel(ThreadConfig());
  bool sibling_marker_seen_in_child = false;
  auto pid = kernel->Spawn(
      MakeGuestEntry([&sibling_marker_seen_in_child](Guest& g) -> SimTask<void> {
        auto cell = g.Malloc(16);
        CO_ASSERT_OK(cell);
        CO_ASSERT_OK(g.StoreAt<uint64_t>(*cell, 0, 0));
        CO_ASSERT_OK(g.GotStore(kGotSlotFirstUser, *cell));
        // A sibling thread that keeps bumping the cell forever.
        auto tid = co_await g.ThreadCreate([cell = *cell](Guest& tg) -> SimTask<void> {
          for (int i = 0; i < 1000; ++i) {
            CO_ASSERT_OK(tg.StoreAt<uint64_t>(cell, 0, 1));
            co_await tg.Nanosleep(Microseconds(2));
          }
        });
        CO_ASSERT_OK(tid);
        co_await g.Nanosleep(Microseconds(5));  // the sibling has written at least once
        auto child = co_await g.Fork([&sibling_marker_seen_in_child](Guest& cg) -> SimTask<void> {
          // The child got exactly ONE thread. The sibling's pre-fork write is visible (memory
          // was copied); the sibling itself was not duplicated, so the value stays frozen.
          auto cap = cg.GotLoad(kGotSlotFirstUser);
          CO_ASSERT_OK(cap);
          auto before = cg.LoadAt<uint64_t>(*cap, 0);
          CO_ASSERT_OK(before);
          sibling_marker_seen_in_child = *before == 1;
          CO_ASSERT_OK(cg.StoreAt<uint64_t>(*cap, 0, 42));
          co_await cg.Nanosleep(Milliseconds(1));
          auto after = cg.LoadAt<uint64_t>(*cap, 0);
          CO_ASSERT_OK(after);
          EXPECT_EQ(*after, 42u) << "no ghost sibling may be running in the child";
          EXPECT_EQ(cg.uproc().threads.size(), 1u);
          co_await cg.Exit(0);
        });
        CO_ASSERT_OK(child);
        auto waited = co_await g.Wait();
        CO_ASSERT_OK(waited);
        EXPECT_EQ(waited->status, 0);
        CO_ASSERT_OK(co_await g.ThreadJoin(*tid));
      }),
      "fork-thread");
  ASSERT_TRUE(pid.ok());
  kernel->Run();
  EXPECT_TRUE(sibling_marker_seen_in_child);
}

TEST(Threads, ExitTerminatesSiblings) {
  auto kernel = MakeUforkKernel(ThreadConfig());
  int sibling_progress = 0;
  auto pid = kernel->Spawn(
      MakeGuestEntry([&sibling_progress](Guest& g) -> SimTask<void> {
        auto child = co_await g.Fork([&sibling_progress](Guest& cg) -> SimTask<void> {
          auto tid = co_await cg.ThreadCreate([&sibling_progress](Guest& tg) -> SimTask<void> {
            for (;;) {
              ++sibling_progress;
              co_await tg.Nanosleep(Microseconds(10));
            }
          });
          CO_ASSERT_OK(tid);
          co_await cg.Nanosleep(Microseconds(35));
          co_await cg.Exit(0);  // must take the infinite-loop sibling down with it
        });
        CO_ASSERT_OK(child);
        auto waited = co_await g.Wait();
        CO_ASSERT_OK(waited);
        co_await g.Nanosleep(Milliseconds(1));
      }),
      "exit-threads");
  ASSERT_TRUE(pid.ok());
  kernel->Run();  // would deadlock/never drain if the sibling survived
  EXPECT_GT(sibling_progress, 0);
  EXPECT_LT(sibling_progress, 10) << "the sibling must have been stopped by exit()";
}

TEST(Futex, ThreadProducerConsumer) {
  auto kernel = MakeUforkKernel(ThreadConfig());
  std::vector<uint64_t> consumed;
  auto pid = kernel->Spawn(
      MakeGuestEntry([&consumed](Guest& g) -> SimTask<void> {
        // Slot protocol: flag==0 -> empty, flag==1 -> full. One futex word, one data word.
        auto slot = g.Malloc(32);
        CO_ASSERT_OK(slot);
        CO_ASSERT_OK(g.StoreAt<uint64_t>(*slot, 0, 0));
        auto consumer = co_await g.ThreadCreate(
            [slot = *slot, &consumed](Guest& tg) -> SimTask<void> {
              for (int i = 0; i < 5; ++i) {
                for (;;) {
                  auto flag = tg.LoadAt<uint64_t>(slot, 0);
                  CO_ASSERT_OK(flag);
                  if (*flag == 1) {
                    break;
                  }
                  (void)co_await tg.FutexWait(slot, slot.base(), 0);  // wait while empty
                }
                auto value = tg.LoadAt<uint64_t>(slot, 8);
                CO_ASSERT_OK(value);
                consumed.push_back(*value);
                CO_ASSERT_OK(tg.StoreAt<uint64_t>(slot, 0, 0));
                (void)co_await tg.FutexWake(slot, slot.base(), 1);
              }
            });
        CO_ASSERT_OK(consumer);
        for (uint64_t i = 0; i < 5; ++i) {
          for (;;) {
            auto flag = g.LoadAt<uint64_t>(*slot, 0);
            CO_ASSERT_OK(flag);
            if (*flag == 0) {
              break;
            }
            (void)co_await g.FutexWait(*slot, slot->base(), 1);  // wait while full
          }
          CO_ASSERT_OK(g.StoreAt<uint64_t>(*slot, 8, 100 + i));
          CO_ASSERT_OK(g.StoreAt<uint64_t>(*slot, 0, 1));
          (void)co_await g.FutexWake(*slot, slot->base(), 1);
        }
        CO_ASSERT_OK(co_await g.ThreadJoin(*consumer));
      }),
      "futex");
  ASSERT_TRUE(pid.ok());
  kernel->Run();
  EXPECT_EQ(consumed, (std::vector<uint64_t>{100, 101, 102, 103, 104}));
}

TEST(Futex, WaitReturnsEagainOnValueMismatch) {
  auto kernel = MakeUforkKernel(ThreadConfig());
  auto pid = kernel->Spawn(MakeGuestEntry([](Guest& g) -> SimTask<void> {
                             auto word = g.Malloc(16);
                             CO_ASSERT_OK(word);
                             CO_ASSERT_OK(g.StoreAt<uint64_t>(*word, 0, 7));
                             auto r = co_await g.FutexWait(*word, word->base(), 8);
                             EXPECT_EQ(r.code(), Code::kErrAgain);
                           }),
                           "eagain");
  ASSERT_TRUE(pid.ok());
  kernel->Run();
}

TEST(Futex, CrossProcessThroughSharedMemory) {
  // The futex key is the physical location: two μprocesses mapping the same shm object wake
  // each other even though their windows live at different virtual addresses.
  auto kernel = MakeUforkKernel(ThreadConfig());
  uint64_t parent_observed = 0;
  auto pid = kernel->Spawn(
      MakeGuestEntry([&parent_observed](Guest& g) -> SimTask<void> {
        auto shm = co_await g.ShmOpen("/shm/futex", kPageSize);
        CO_ASSERT_OK(shm);
        auto window = co_await g.ShmMap(*shm);
        CO_ASSERT_OK(window);
        CO_ASSERT_OK(g.Store<uint64_t>(*window, window->base(), 0));
        auto child = co_await g.Fork([shm_id = *shm](Guest& cg) -> SimTask<void> {
          auto w = co_await cg.ShmMap(shm_id);  // different VA, same frames
          CO_ASSERT_OK(w);
          co_await cg.Nanosleep(Microseconds(50));
          CO_ASSERT_OK(cg.Store<uint64_t>(*w, w->base(), 99));
          (void)co_await cg.FutexWake(*w, w->base(), 1);
          co_await cg.Exit(0);
        });
        CO_ASSERT_OK(child);
        for (;;) {
          auto v = g.Load<uint64_t>(*window, window->base());
          CO_ASSERT_OK(v);
          if (*v != 0) {
            parent_observed = *v;
            break;
          }
          (void)co_await g.FutexWait(*window, window->base(), 0);
        }
        (void)co_await g.Wait();
      }),
      "shm-futex");
  ASSERT_TRUE(pid.ok());
  kernel->Run();
  EXPECT_EQ(parent_observed, 99u);
}

}  // namespace
}  // namespace ufork
