// Tests for the CHERI-Concentrate-style compressed capability codec: exactness for small
// objects, outward-only rounding, and round-tripping against the exact model.
#include "src/cheri/compressed_cap.h"

#include <gtest/gtest.h>

#include "src/base/rng.h"

namespace ufork {
namespace {

TEST(RepresentableBounds, SmallLengthsAreExact) {
  for (uint64_t len : {0ULL, 1ULL, 16ULL, 4096ULL, (1ULL << kMantissaBits) - 1}) {
    const RepresentableBounds rb = RoundToRepresentable(0x12345, len);
    EXPECT_TRUE(rb.exact) << len;
    EXPECT_EQ(rb.base, 0x12345u);
    EXPECT_EQ(rb.length, len);
  }
}

TEST(RepresentableBounds, LargeUnalignedLengthsRoundOutward) {
  const uint64_t base = 0x100001;  // deliberately misaligned
  const uint64_t len = 100 * kMiB;
  const RepresentableBounds rb = RoundToRepresentable(base, len);
  EXPECT_FALSE(rb.exact);
  EXPECT_LE(rb.base, base);
  EXPECT_GE(rb.base + rb.length, base + len);
}

TEST(RepresentableBounds, AlignmentMaskMakesBoundsExact) {
  const uint64_t len = 64 * kMiB + 12345;
  const uint64_t mask = RepresentableAlignmentMask(len);
  const uint64_t base = 0x123456789ULL & mask;
  // An aligned base with an aligned-up length is exactly representable.
  const uint64_t aligned_len = AlignUp(len, ~mask + 1);
  const RepresentableBounds rb = RoundToRepresentable(base, aligned_len);
  EXPECT_TRUE(rb.exact);
}

TEST(CompressedCap, UntaggedRoundTripsCursorOnly) {
  const Capability c = Capability::Integer(0xabcdef0123456789ULL);
  const CompressedCapBits bits = Compress(c);
  const Capability d = Decompress(bits, /*tag=*/false);
  EXPECT_FALSE(d.tag());
  EXPECT_EQ(d.address(), c.address());
}

TEST(CompressedCap, SmallCapRoundTripsExactly) {
  Capability c = Capability::Root(0x123450, 0x800, kPermLoad | kPermStore)
                     .WithAddress(0x123460);
  const Capability d = Decompress(Compress(c), /*tag=*/true);
  EXPECT_TRUE(d.tag());
  EXPECT_EQ(d.base(), c.base());
  EXPECT_EQ(d.top(), c.top());
  EXPECT_EQ(d.address(), c.address());
  EXPECT_EQ(d.perms(), c.perms());
}

TEST(CompressedCap, SentryRoundTrips) {
  Capability c = Capability::Root(0x4000, 0x1000, kPermExecute | kPermLoad).AsSentry();
  const Capability d = Decompress(Compress(c), /*tag=*/true);
  EXPECT_TRUE(d.IsSentry());
}

TEST(CompressedCap, SealedOtypeRoundTrips) {
  Capability sealer = Capability::Root(0, 1024, kPermSeal).WithAddress(77);
  auto sealed = Capability::Root(0x8000, 0x100, kPermLoad).Sealed(sealer);
  ASSERT_TRUE(sealed.ok());
  const Capability d = Decompress(Compress(*sealed), /*tag=*/true);
  EXPECT_TRUE(d.sealed());
  EXPECT_EQ(d.otype(), 77u);
}

// Property: for random capabilities with in-bounds cursors, decompression yields bounds that
// contain the original object (rounding is outward-only) and identical cursor/perms; when the
// bounds were exactly representable, the round trip is exact.
TEST(CompressedCapProperty, RoundTripContainsOriginal) {
  Rng rng(31337);
  for (int i = 0; i < 5000; ++i) {
    const uint64_t base = rng.NextBelow(kVaTop / 2);
    const uint64_t max_len = kVaTop / 2;
    const uint64_t len = 1 + rng.NextBelow(max_len);
    const uint64_t cursor = base + rng.NextBelow(len);
    Capability c = Capability::Root(0, kVaTop, kPermAllData)
                       .WithBounds(base, len)
                       .WithAddress(cursor);
    ASSERT_TRUE(c.tag());
    const RepresentableBounds rb = RoundToRepresentable(base, len);
    const Capability d = Decompress(Compress(c), /*tag=*/true);
    ASSERT_TRUE(d.tag());
    EXPECT_EQ(d.address(), cursor);
    EXPECT_LE(d.base(), base);
    EXPECT_GE(d.top(), base + len);
    EXPECT_EQ(d.base(), rb.base);
    EXPECT_EQ(d.top(), rb.base + rb.length);
    if (rb.exact) {
      EXPECT_EQ(d.base(), base);
      EXPECT_EQ(d.top(), base + len);
    }
  }
}

}  // namespace
}  // namespace ufork
