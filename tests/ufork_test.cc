// Tests for the μFork engine itself: the relocation scanner, register relocation, chained
// forks, region tombstones, the unsafe-CoW demonstration, ASLR, and address-space compaction.
#include <gtest/gtest.h>

#include "src/baseline/system.h"
#include "src/guest/guest.h"
#include "src/ufork/compaction.h"
#include "src/ufork/relocate.h"
#include "tests/guest_test_util.h"

namespace ufork {
namespace {

KernelConfig TinyConfig() {
  KernelConfig config;
  config.layout.text_size = 32 * kKiB;
  config.layout.rodata_size = 8 * kKiB;
  config.layout.got_size = 4 * kKiB;
  config.layout.data_size = 8 * kKiB;
  config.layout.heap_size = 256 * kKiB;
  config.layout.stack_size = 32 * kKiB;
  config.layout.tls_size = 4 * kKiB;
  config.layout.mmap_size = 64 * kKiB;
  return config;
}

// --- relocation scanner unit tests ---------------------------------------------------------

class RelocateTest : public ::testing::Test {
 protected:
  RelocateTest() : as_(4 * kGiB, 8 * kGiB) {
    parent_base_ = as_.AllocateRegion(kRegionSize, 2 * kMiB).value();
    child_base_ = as_.AllocateRegion(kRegionSize, 2 * kMiB).value();
  }

  Capability ParentCap(uint64_t offset, uint64_t len) {
    return Capability::Root(parent_base_ + offset, len, kPermAllData);
  }

  static constexpr uint64_t kRegionSize = 4 * kMiB;
  AddressSpace as_;
  uint64_t parent_base_ = 0;
  uint64_t child_base_ = 0;
  Frame frame_;
};

TEST_F(RelocateTest, RelocatesParentPointingCaps) {
  frame_.StoreCap(0, ParentCap(0x1000, 64));
  frame_.StoreCap(64, ParentCap(0x2000, 128).WithAddress(parent_base_ + 0x2010));
  const RelocationResult result = RelocateFrameInto(frame_, as_, child_base_, kRegionSize);
  EXPECT_EQ(result.tags_seen, 2u);
  EXPECT_EQ(result.relocated, 2u);
  EXPECT_EQ(result.stripped, 0u);
  EXPECT_EQ(frame_.LoadCap(0).base(), child_base_ + 0x1000);
  EXPECT_EQ(frame_.LoadCap(64).address(), child_base_ + 0x2010);
}

TEST_F(RelocateTest, LeavesChildLocalCapsAlone) {
  const Capability local = Capability::Root(child_base_ + 0x3000, 64, kPermAllData);
  frame_.StoreCap(16, local);
  const RelocationResult result = RelocateFrameInto(frame_, as_, child_base_, kRegionSize);
  EXPECT_EQ(result.relocated, 0u);
  EXPECT_TRUE(frame_.LoadCap(16).IdenticalTo(local));
}

TEST_F(RelocateTest, LeavesIntegersAlone) {
  frame_.StoreCap(32, Capability::Integer(parent_base_ + 0x1000));  // integer that LOOKS like a pointer
  const RelocationResult result = RelocateFrameInto(frame_, as_, child_base_, kRegionSize);
  EXPECT_EQ(result.tags_seen, 0u);
  // No tag, no relocation: this is exactly the misidentification problem (§3.2 C1) that
  // hardware tags solve.
  EXPECT_EQ(frame_.LoadCap(32).address(), parent_base_ + 0x1000);
  EXPECT_FALSE(frame_.LoadCap(32).tag());
}

TEST_F(RelocateTest, StripsCapsIntoUnownedMemory) {
  // A would-be kernel capability leak: points outside any region.
  frame_.StoreCap(48, Capability::Root(1 * kGiB, 4096, kPermAllData));
  const RelocationResult result = RelocateFrameInto(frame_, as_, child_base_, kRegionSize);
  EXPECT_EQ(result.stripped, 1u);
  EXPECT_FALSE(frame_.LoadCap(48).tag());
}

TEST_F(RelocateTest, GrandparentCapsRelocateByOwningRegion) {
  // Chained forks: the frame holds a capability into a THIRD region (the grandparent's).
  const uint64_t gp_base = as_.AllocateRegion(kRegionSize, 2 * kMiB).value();
  frame_.StoreCap(0, Capability::Root(gp_base + 0x5000, 256, kPermAllData));
  const RelocationResult result = RelocateFrameInto(frame_, as_, child_base_, kRegionSize);
  EXPECT_EQ(result.relocated, 1u);
  EXPECT_EQ(frame_.LoadCap(0).base(), child_base_ + 0x5000);
}

TEST_F(RelocateTest, RegisterFileRelocation) {
  RegisterFile regs;
  regs.ddc = ParentCap(0, kRegionSize);
  regs.csp = ParentCap(0x100000, 0x1000).WithAddress(parent_base_ + 0x100800);
  regs.c[0] = ParentCap(0x4000, 64);
  regs.c[1] = Capability::Integer(12345);
  const RelocationResult result =
      RelocateRegisterFile(regs, parent_base_, kRegionSize, child_base_);
  EXPECT_EQ(result.relocated, 3u);
  EXPECT_EQ(regs.ddc.base(), child_base_);
  EXPECT_EQ(regs.csp.address(), child_base_ + 0x100800);
  EXPECT_EQ(regs.c[0].base(), child_base_ + 0x4000);
  EXPECT_EQ(regs.c[1].address(), 12345u);  // integers untouched
}

// --- end-to-end engine behaviour -------------------------------------------------------------

TEST(UforkEngine, UnsafeCowLeaksStaleParentCapability) {
  // The experiment that motivates CoPA (§3.8): classic CoW without capability-load faults
  // lets a child load a stale capability that still points into the PARENT's memory — an
  // isolation violation by construction.
  KernelConfig config = TinyConfig();
  config.strategy = ForkStrategy::kUnsafeCow;
  auto kernel = MakeUforkKernel(config);
  bool violation_observed = false;
  auto pid = kernel->Spawn(
      MakeGuestEntry([&violation_observed](Guest& g) -> SimTask<void> {
        auto block = g.Malloc(64);
        CO_ASSERT_OK(block);
        CO_ASSERT_OK(g.StoreAt<uint64_t>(*block, 0, 7777));
        // Plant a pointer in a heap page that is NOT proactively copied.
        auto pointer_cell = g.Malloc(16);
        CO_ASSERT_OK(pointer_cell);
        CO_ASSERT_OK(g.StoreCap(*pointer_cell, pointer_cell->base(), *block));
        const uint64_t cell_off = pointer_cell->base() - g.base();
        auto child = co_await g.Fork([&violation_observed, cell_off](Guest& cg) -> SimTask<void> {
          // Load the pointer: no load-cap fault fires under UnsafeCoW, so the capability
          // still targets the PARENT region.
          auto stale = cg.LoadCap(cg.ddc(), cg.base() + cell_off);
          CO_ASSERT_OK(stale);
          CO_ASSERT_TRUE(stale->tag());
          const bool points_into_self =
              stale->base() >= cg.base() && stale->base() < cg.base() + cg.uproc().size;
          violation_observed = !points_into_self;
          co_await cg.Exit(0);
        });
        CO_ASSERT_OK(child);
        (void)co_await g.Wait();
      }),
      "unsafe");
  ASSERT_TRUE(pid.ok());
  kernel->Run();
  EXPECT_TRUE(violation_observed)
      << "UnsafeCoW must exhibit the stale-capability leak CoPA exists to prevent";
}

TEST(UforkEngine, CopaPreventsTheSameLeak) {
  KernelConfig config = TinyConfig();
  config.strategy = ForkStrategy::kCopa;
  auto kernel = MakeUforkKernel(config);
  bool confined = false;
  auto pid = kernel->Spawn(
      MakeGuestEntry([&confined](Guest& g) -> SimTask<void> {
        auto block = g.Malloc(64);
        CO_ASSERT_OK(block);
        auto pointer_cell = g.Malloc(16);
        CO_ASSERT_OK(pointer_cell);
        CO_ASSERT_OK(g.StoreCap(*pointer_cell, pointer_cell->base(), *block));
        const uint64_t cell_off = pointer_cell->base() - g.base();
        auto child = co_await g.Fork([&confined, cell_off](Guest& cg) -> SimTask<void> {
          auto relocated = cg.LoadCap(cg.ddc(), cg.base() + cell_off);
          CO_ASSERT_OK(relocated);
          CO_ASSERT_TRUE(relocated->tag());
          confined = relocated->base() >= cg.base() &&
                     relocated->top() <= cg.base() + cg.uproc().size;
          co_await cg.Exit(0);
        });
        CO_ASSERT_OK(child);
        (void)co_await g.Wait();
      }),
      "copa");
  ASSERT_TRUE(pid.ok());
  kernel->Run();
  EXPECT_TRUE(confined);
}

TEST(UforkEngine, ParentExitWithLiveChildTombstonesRegion) {
  auto kernel = MakeUforkKernel(TinyConfig());
  bool child_read_ok = false;
  auto pid = kernel->Spawn(
      MakeGuestEntry([&child_read_ok](Guest& g) -> SimTask<void> {
        // init forks a middle process which forks a grandchild and exits immediately,
        // leaving the grandchild sharing the middle process's frames.
        auto middle = co_await g.Fork([&child_read_ok](Guest& mg) -> SimTask<void> {
          auto block = mg.Malloc(64);
          CO_ASSERT_OK(block);
          CO_ASSERT_OK(mg.StoreAt<uint64_t>(*block, 0, 4242));
          CO_ASSERT_OK(mg.GotStore(kGotSlotFirstUser, *block));
          auto grandchild = co_await mg.Fork([&child_read_ok](Guest& gg) -> SimTask<void> {
            co_await gg.Nanosleep(Milliseconds(2));  // let the middle process exit first
            auto cap = gg.GotLoad(kGotSlotFirstUser);
            CO_ASSERT_OK(cap);
            auto v = gg.LoadAt<uint64_t>(*cap, 0);  // CoPA relocation through a dead region
            CO_ASSERT_OK(v);
            child_read_ok = *v == 4242;
            co_await gg.Exit(0);
          });
          CO_ASSERT_OK(grandchild);
          co_await mg.Exit(0);  // exits while the grandchild still shares frames
        });
        CO_ASSERT_OK(middle);
        (void)co_await g.Wait();
        // The orphaned grandchild is reparented to init (us).
        (void)co_await g.Wait();
      }),
      "init");
  ASSERT_TRUE(pid.ok());
  kernel->Run();
  EXPECT_TRUE(child_read_ok);
  EXPECT_EQ(kernel->stats().regions_tombstoned, 1u)
      << "the middle region must stay reserved for relocation lookups";
}

TEST(UforkEngine, AslrRandomizesChildPlacement) {
  std::set<uint64_t> bases;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    KernelConfig config = TinyConfig();
    config.aslr_seed = seed;
    auto kernel = MakeUforkKernel(config);
    uint64_t child_base = 0;
    auto pid = kernel->Spawn(
        MakeGuestEntry([&child_base](Guest& g) -> SimTask<void> {
          auto child = co_await g.Fork([](Guest& cg) -> SimTask<void> {
            co_await cg.Exit(0);
          });
          CO_ASSERT_OK(child);
          child_base = g.kernel().FindUproc(*child)->base;
          (void)co_await g.Wait();
        }),
        "aslr");
    ASSERT_TRUE(pid.ok());
    kernel->Run();
    bases.insert(child_base);
  }
  EXPECT_GT(bases.size(), 1u);
}

TEST(UforkEngine, ForkFailsCleanlyWhenPhysicalMemoryExhausted) {
  KernelConfig config = TinyConfig();
  // The tiny image maps 86 pages; leave room for exactly one of fork's two proactive copies
  // (GOT + allocator metadata) so the second fails.
  config.phys_mem_bytes = 87 * kPageSize;
  auto kernel = MakeUforkKernel(config);
  Code observed = Code::kOk;
  auto pid = kernel->Spawn(MakeGuestEntry([&observed](Guest& g) -> SimTask<void> {
                             auto child = co_await g.Fork([](Guest& cg) -> SimTask<void> {
                               co_await cg.Exit(0);
                             });
                             observed = child.code();
                             co_return;
                           }),
                           "oom");
  // Either the spawn itself or the fork must report exhaustion, not crash.
  if (pid.ok()) {
    kernel->Run();
    EXPECT_EQ(observed, Code::kErrNoMem);
  } else {
    EXPECT_EQ(pid.code(), Code::kErrNoMem);
  }
}

// --- compaction ----------------------------------------------------------------------------

// Parks the calling μprocess on a named message queue until a waker posts to it — a genuine
// blocking safepoint (sleeps do not stop the DES; blocked waits do).
SimTask<void> ParkOnQueue(Guest& g, const std::string& name) {
  auto fd = co_await g.MqOpen(name, /*create=*/true);
  UF_CHECK(fd.ok());
  auto buf = g.Malloc(16);
  UF_CHECK(buf.ok());
  (void)co_await g.Read(*fd, *buf, 1);
}

GuestFn MakeWaker(std::string queue) {
  GuestFn fn = [queue](Guest& g) -> SimTask<void> {
    auto fd = co_await g.MqOpen(queue, /*create=*/true);
    CO_ASSERT_OK(fd);
    auto buf = g.Malloc(16);
    CO_ASSERT_OK(buf);
    CO_ASSERT_OK(co_await g.Write(*fd, *buf, 1));
  };
  return fn;
}

TEST(Compaction, SlidesParkedRegionLeftAndRelocates) {
  auto kernel = MakeUforkKernel(TinyConfig());
  // A occupies the lowest region and exits; B parks at a safepoint. Compaction slides B into
  // A's hole; B then re-derives its pointers from the relocated GOT.
  auto a = kernel->Spawn(MakeGuestEntry([](Guest& g) -> SimTask<void> {
                           g.Compute(10);
                           co_return;
                         }),
                         "A");
  bool b_ok_after_compaction = false;
  auto b = kernel->Spawn(
      MakeGuestEntry([&b_ok_after_compaction](Guest& g) -> SimTask<void> {
        auto block = g.Malloc(64);
        CO_ASSERT_OK(block);
        CO_ASSERT_OK(g.StoreAt<uint64_t>(*block, 0, 31337));
        CO_ASSERT_OK(g.GotStore(kGotSlotFirstUser, *block));
        co_await ParkOnQueue(g, "/mq/park-b");  // safepoint
        auto cap = g.GotLoad(kGotSlotFirstUser);
        CO_ASSERT_OK(cap);
        CO_ASSERT_TRUE(cap->tag());
        EXPECT_GE(cap->base(), g.base());
        auto v = g.LoadAt<uint64_t>(*cap, 0);
        CO_ASSERT_OK(v);
        b_ok_after_compaction = *v == 31337;
      }),
      "B");
  ASSERT_TRUE(a.ok() && b.ok());
  kernel->sched().set_allow_blocked_exit(true);
  kernel->Run();  // A exits; B parks

  const uint64_t b_base_before = kernel->FindUproc(*b)->base;
  auto stats = CompactAddressSpace(*kernel);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->regions_moved, 1u);
  EXPECT_GT(stats->caps_relocated, 0u);
  EXPECT_LT(kernel->FindUproc(*b)->base, b_base_before);

  ASSERT_TRUE(kernel->Spawn(MakeGuestEntry(MakeWaker("/mq/park-b")), "waker").ok());
  kernel->Run();  // B wakes, re-derives pointers, verifies
  EXPECT_TRUE(b_ok_after_compaction);
}

TEST(Compaction, SkipsRegionsEntangledWithForkPartners) {
  auto kernel = MakeUforkKernel(TinyConfig());
  auto hole = kernel->Spawn(MakeGuestEntry([](Guest& g) -> SimTask<void> {
                              g.Compute(10);
                              co_return;
                            }),
                            "hole");
  auto parent = kernel->Spawn(
      MakeGuestEntry([](Guest& g) -> SimTask<void> {
        auto child = co_await g.Fork([](Guest& cg) -> SimTask<void> {
          co_await ParkOnQueue(cg, "/mq/park-child");
          co_await cg.Exit(0);
        });
        CO_ASSERT_OK(child);
        (void)co_await g.Wait();
      }),
      "parent");
  ASSERT_TRUE(hole.ok() && parent.ok());
  kernel->sched().set_allow_blocked_exit(true);
  kernel->Run();  // hole exits; parent blocked in wait(); child parked, CoW-entangled

  auto stats = CompactAddressSpace(*kernel);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->regions_moved, 0u);
  EXPECT_GE(stats->regions_skipped_shared, 1u) << "CoW-entangled regions must not move";

  ASSERT_TRUE(kernel->Spawn(MakeGuestEntry(MakeWaker("/mq/park-child")), "waker").ok());
  kernel->Run();
}

// Shared setup for the compaction fault-injection tests: A makes a hole, B parks at a
// safepoint with a sentinel value reachable through its GOT, and the test decides what the
// injector does to the compactor. Returns B's pid; `b_ok` reports whether B's pointers still
// resolved after it woke.
Pid ParkVictim(Kernel& kernel, const std::string& queue, bool& b_ok) {
  auto a = kernel.Spawn(MakeGuestEntry([](Guest& g) -> SimTask<void> {
                          g.Compute(10);
                          co_return;
                        }),
                        "A");
  UF_CHECK(a.ok());
  GuestFn victim = [&b_ok, queue](Guest& g) -> SimTask<void> {
    auto block = g.Malloc(64);
    CO_ASSERT_OK(block);
    CO_ASSERT_OK(g.StoreAt<uint64_t>(*block, 0, 31337));
    CO_ASSERT_OK(g.GotStore(kGotSlotFirstUser, *block));
    co_await ParkOnQueue(g, queue);  // safepoint
    auto cap = g.GotLoad(kGotSlotFirstUser);
    CO_ASSERT_OK(cap);
    CO_ASSERT_TRUE(cap->tag());
    auto v = g.LoadAt<uint64_t>(*cap, 0);
    CO_ASSERT_OK(v);
    b_ok = *v == 31337;
  };
  auto b = kernel.Spawn(MakeGuestEntry(std::move(victim)), "B");
  UF_CHECK(b.ok());
  kernel.sched().set_allow_blocked_exit(true);
  kernel.Run();  // A exits; B parks
  return *b;
}

TEST(Compaction, TargetGrantFailureSkipsTheRegionAndDegrades) {
  auto kernel = MakeUforkKernel(TinyConfig());
  bool b_ok = false;
  const Pid b = ParkVictim(*kernel, "/mq/park-grant", b_ok);
  const uint64_t base_before = kernel->FindUproc(b)->base;

  // The target-region grant fails: the sweep must keep the fragmented layout and move on —
  // before §4.9 this was a host CHECK that killed the whole simulated machine.
  kernel->fault_injector().Arm(FaultSite::kCompactTarget, FaultPolicy::OneShot());
  auto degraded = CompactAddressSpace(*kernel);
  ASSERT_TRUE(degraded.ok());
  EXPECT_EQ(degraded->regions_skipped_grant_failed, 1u);
  EXPECT_EQ(degraded->regions_moved, 0u);
  EXPECT_EQ(kernel->FindUproc(b)->base, base_before) << "a skipped region must not move";

  // Pressure gone (oneshot): the next sweep performs the identical move.
  auto retried = CompactAddressSpace(*kernel);
  ASSERT_TRUE(retried.ok());
  EXPECT_EQ(retried->regions_moved, 1u);
  EXPECT_LT(kernel->FindUproc(b)->base, base_before);

  ASSERT_TRUE(kernel->Spawn(MakeGuestEntry(MakeWaker("/mq/park-grant")), "waker").ok());
  kernel->Run();
  EXPECT_TRUE(b_ok);
}

TEST(Compaction, RelocateFailureRollsTheRegionBackInPlace) {
  auto kernel = MakeUforkKernel(TinyConfig());
  bool b_ok = false;
  const Pid b = ParkVictim(*kernel, "/mq/park-abort", b_ok);
  const uint64_t base_before = kernel->FindUproc(b)->base;

  // Fail the relocation scan on the region's second frame: by then one frame's capabilities
  // are already rewritten to the new base, so the abort path must reverse-relocate them,
  // remap every page back, release the target grant — and charge none of it to the stats.
  kernel->fault_injector().Arm(FaultSite::kCompactRelocate, FaultPolicy::Nth(2));
  auto aborted = CompactAddressSpace(*kernel);
  ASSERT_TRUE(aborted.ok());
  EXPECT_EQ(aborted->regions_aborted, 1u);
  EXPECT_EQ(aborted->regions_moved, 0u);
  EXPECT_EQ(aborted->pages_remapped, 0u) << "an aborted move must not leak partial counters";
  EXPECT_EQ(aborted->caps_relocated, 0u);
  EXPECT_EQ(kernel->FindUproc(b)->base, base_before) << "the region must be back in place";
  kernel->fault_injector().DisarmAll();

  auto retried = CompactAddressSpace(*kernel);
  ASSERT_TRUE(retried.ok());
  EXPECT_EQ(retried->regions_moved, 1u);
  EXPECT_LT(kernel->FindUproc(b)->base, base_before);

  // B wakes in the moved region and its sentinel must still resolve — proof the abort left
  // every capability coherent for the later, successful move.
  ASSERT_TRUE(kernel->Spawn(MakeGuestEntry(MakeWaker("/mq/park-abort")), "waker").ok());
  kernel->Run();
  EXPECT_TRUE(b_ok);
}

}  // namespace
}  // namespace ufork
